module mrts

go 1.22
