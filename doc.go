// Package mrts reproduces the DATE 2011 paper "mRTS: Run-Time System for
// Reconfigurable Processors with Multi-Grained Instruction-Set Extensions"
// (W. Ahmed, M. Shafique, L. Bauer, J. Henkel — Karlsruhe Institute of
// Technology) as a self-contained Go library.
//
// The repository contains the complete system stack the paper builds on:
// an architecture model of a multi-grained reconfigurable processor
// (internal/arch, internal/reconfig), the domain model of multi-grained
// instruction-set extensions (internal/ise, internal/iselib), the mRTS
// runtime system itself — profit function, greedy ISE selector, Monitoring
// & Prediction Unit and Execution Control Unit (internal/profit,
// internal/selector, internal/mpu, internal/ecu, internal/core) — the
// state-of-the-art baselines (internal/baseline), a discrete-event
// architecture simulator (internal/sim), and a real simplified H.264
// encoder over synthetic video as the workload substrate (internal/h264,
// internal/video, internal/workload, internal/trace).
//
// The benchmark harness in bench_test.go regenerates every figure of the
// paper's evaluation; see DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-vs-measured comparison.
package mrts
