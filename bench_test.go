package mrts

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (Section 5) and measures the cost of the core algorithms.
//
//	go test -bench=. -benchmem
//
// Figure benches (BenchmarkFig*) run the full experiment pipeline and
// report the headline quantity of the figure as a custom metric; ablation
// benches (BenchmarkAblation*) quantify the design choices DESIGN.md calls
// out; the remaining benches measure the building blocks.

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"mrts/internal/arch"
	"mrts/internal/baseline"
	"mrts/internal/batch"
	"mrts/internal/core"
	"mrts/internal/ecu"
	"mrts/internal/exp"
	"mrts/internal/h264"
	"mrts/internal/ise"
	"mrts/internal/iselib"
	"mrts/internal/mpu"
	"mrts/internal/obs"
	"mrts/internal/profit"
	"mrts/internal/selector"
	"mrts/internal/service"
	"mrts/internal/service/api"
	"mrts/internal/sim"
	"mrts/internal/trace"
	"mrts/internal/video"
	"mrts/internal/workload"
)

var (
	benchOnce sync.Once
	benchW    *workload.Result
	benchRISC *sim.Report
)

// benchWorkload builds the shared experiment workload once: 8 QCIF frames
// with a scene cut, the calibrated regime of the evaluation.
func benchWorkload(b *testing.B) (*workload.Result, *sim.Report) {
	b.Helper()
	benchOnce.Do(func() {
		benchW = workload.MustBuild(workload.Options{
			Frames: 8,
			Video:  video.Options{SceneCuts: []int{4}},
		})
		var err error
		benchRISC, err = sim.RunRISC(benchW.App, benchW.Trace)
		if err != nil {
			panic(err)
		}
	})
	return benchW, benchRISC
}

// --- Figure benches -------------------------------------------------------

// BenchmarkFig1 regenerates the motivational case study: the Performance
// Improvement Factor of the three deblocking-filter ISEs (paper Fig. 1).
func BenchmarkFig1(b *testing.B) {
	var crossovers int
	for i := 0; i < b.N; i++ {
		r := exp.Fig1(10000, 100)
		crossovers = len(r.Crossovers)
	}
	b.ReportMetric(float64(crossovers), "regions-1")
}

// BenchmarkFig2 regenerates the execution behaviour of the deblocking
// filter over the frame sequence (paper Fig. 2).
func BenchmarkFig2(b *testing.B) {
	w, _ := benchWorkload(b)
	b.ResetTimer()
	var changes int
	for i := 0; i < b.N; i++ {
		r := exp.Fig2(w)
		changes = r.Changes
	}
	b.ReportMetric(float64(changes), "best-ISE-changes")
}

// BenchmarkFig8 regenerates the state-of-the-art comparison (paper Fig. 8):
// RISPP-like, offline-optimal, Morpheus/4S-like and mRTS over the fabric
// sweep. Reported metrics are mRTS's average speedups per competitor.
func BenchmarkFig8(b *testing.B) {
	w, _ := benchWorkload(b)
	b.ResetTimer()
	var r exp.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = exp.Fig8(context.Background(), exp.DirectEvaluator(w), 3, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.AvgSpeedup[exp.PolicyRISPP], "avg-vs-RISPP-x")
	b.ReportMetric(r.AvgSpeedup[exp.PolicyOffline], "avg-vs-offline-x")
	b.ReportMetric(r.AvgSpeedup[exp.PolicyMorpheus], "avg-vs-morpheus-x")
}

// BenchmarkFig9 regenerates the heuristic-vs-optimal selection comparison
// (paper Fig. 9) and reports the average and worst percentage difference.
func BenchmarkFig9(b *testing.B) {
	w, _ := benchWorkload(b)
	b.ResetTimer()
	var r exp.Fig9Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = exp.Fig9(context.Background(), exp.DirectEvaluator(w), 3, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Avg, "avg-diff-%")
	b.ReportMetric(r.Worst, "worst-diff-%")
}

// BenchmarkFig10 regenerates the speedup-over-RISC analysis (paper
// Fig. 10) and reports the per-class averages.
func BenchmarkFig10(b *testing.B) {
	w, _ := benchWorkload(b)
	b.ResetTimer()
	var r exp.Fig10Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = exp.Fig10(context.Background(), exp.DirectEvaluator(w), 3, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.AvgByClass[arch.GrainFG], "avg-FG-only-x")
	b.ReportMetric(r.AvgByClass[arch.GrainCG], "avg-CG-only-x")
	b.ReportMetric(r.AvgByClass[arch.GrainMG], "avg-MG-x")
}

// BenchmarkFaults regenerates the graceful-degradation sweep (`mrts-sweep
// -fig faults`): permanent fabric failures at growing loss fractions, the
// four Fig. 8 policies run to completion on what survives. Reported
// metrics are mRTS's slowdown at full loss relative to RISC mode (should
// approach 1) and its advantage over the best static baseline at 50% loss.
func BenchmarkFaults(b *testing.B) {
	w, _ := benchWorkload(b)
	b.ResetTimer()
	var r exp.FaultsResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = exp.Faults(context.Background(), exp.DirectFaultEvaluator(w), exp.FaultsConfig, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := r.Rows[len(r.Rows)-1]
	b.ReportMetric(float64(last.Cycles[exp.PolicyMRTS])/float64(r.RISCCycles), "full-loss-vs-RISC-x")
	for _, row := range r.Rows {
		if row.Fraction == 0.5 {
			b.ReportMetric(row.AdvantageStatic, "half-loss-vs-static-x")
		}
	}
}

// BenchmarkOverhead regenerates the Section 5.4 analysis: the mRTS
// selection overhead in cycles per trigger instruction.
func BenchmarkOverhead(b *testing.B) {
	w, _ := benchWorkload(b)
	b.ResetTimer()
	var r exp.OverheadResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = exp.Overhead(w, arch.Config{NPRC: 2, NCG: 2})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.CyclesPerSelection, "cycles/selection")
	b.ReportMetric(100*r.VisiblePerBlockShare, "visible-%-of-block")
}

// --- Ablation benches (design choices of DESIGN.md Section 5) -------------

// ablate runs mRTS with the given options on the 2 PRC / 2 CG combination
// and reports the speedup over RISC mode.
func ablate(b *testing.B, opts core.Options) {
	w, risc := benchWorkload(b)
	cfg := arch.Config{NPRC: 2, NCG: 2}
	b.ResetTimer()
	var rep *sim.Report
	for i := 0; i < b.N; i++ {
		m, err := core.New(cfg, opts)
		if err != nil {
			b.Fatal(err)
		}
		rep, err = sim.Run(w.App, w.Trace, m)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Speedup(risc), "speedup-x")
	b.ReportMetric(100*rep.ModeShare(ecu.MonoCG), "monoCG-%")
}

// BenchmarkAblationBaselineMRTS is the reference point for the ablations:
// full mRTS.
func BenchmarkAblationBaselineMRTS(b *testing.B) {
	ablate(b, core.Options{ChargeOverhead: true})
}

// BenchmarkAblationNoMonoCG removes the monoCG-Extension from the ECU.
func BenchmarkAblationNoMonoCG(b *testing.B) {
	ablate(b, core.Options{ChargeOverhead: true, ECU: ecu.Options{DisableMonoCG: true}})
}

// BenchmarkAblationNoIntermediate removes intermediate-ISE execution from
// the ECU: kernels wait in RISC/monoCG until the selected ISE is complete.
func BenchmarkAblationNoIntermediate(b *testing.B) {
	ablate(b, core.Options{ChargeOverhead: true, ECU: ecu.Options{DisableIntermediate: true}})
}

// BenchmarkAblationFGTunedProfit swaps the multi-grained profit function
// for the RISPP-style FG-tuned cost model (keeping everything else).
func BenchmarkAblationFGTunedProfit(b *testing.B) {
	ablate(b, core.Options{ChargeOverhead: true, Model: profit.FGTuned})
}

// BenchmarkAblationNoMPU disables the run-time forecast correction.
func BenchmarkAblationNoMPU(b *testing.B) {
	ablate(b, core.Options{ChargeOverhead: true, MPU: []mpu.Option{mpu.Disabled()}})
}

// BenchmarkAblationOptimalSelector replaces the greedy heuristic with the
// exhaustive optimal selection (overhead not charged — quality bound).
func BenchmarkAblationOptimalSelector(b *testing.B) {
	ablate(b, core.Options{Select: selector.Optimal})
}

// --- Building-block benches ------------------------------------------------

// BenchmarkProfitFunction measures one profit-function evaluation — the
// unit of the Section 5.4 overhead model.
func BenchmarkProfitFunction(b *testing.B) {
	app := iselib.MustNewApplication()
	k := app.Kernel("sad")
	e := k.ISEs[1]
	p := profit.Params{E: 2000, TF: 3000, TB: 400}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profit.Profit(k, e, nil, p, profit.Multigrained)
	}
}

// BenchmarkGreedySelection measures one run of the Fig. 6 selection
// algorithm over a full functional block.
func BenchmarkGreedySelection(b *testing.B) {
	w, _ := benchWorkload(b)
	blk := w.App.Block("enc")
	triggers := w.Trace.ProfileFor("enc", "P")
	req := selector.Request{
		Block:    blk,
		Triggers: triggers,
		Fabric:   ise.EmptyFabric{PRC: 3, CG: 3},
		Model:    profit.Multigrained,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := selector.Greedy(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalSelection measures the exhaustive selection on the same
// block — the cost that makes it infeasible at run time (paper
// Section 4.1).
func BenchmarkOptimalSelection(b *testing.B) {
	w, _ := benchWorkload(b)
	blk := w.App.Block("enc")
	triggers := w.Trace.ProfileFor("enc", "P")
	req := selector.Request{
		Block:    blk,
		Triggers: triggers,
		Fabric:   ise.EmptyFabric{PRC: 3, CG: 3},
		Model:    profit.Multigrained,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := selector.Optimal(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectionCached measures a full trigger-instruction reaction
// (MPU forecast, selection, commit) in the selection cache's steady state:
// the repetitive frame-to-frame case the fast path targets. The hit-rate
// metric confirms the loop is served from the cache.
func BenchmarkSelectionCached(b *testing.B) {
	w, _ := benchWorkload(b)
	blk := w.App.Block("enc")
	triggers := w.Trace.ProfileFor("enc", "P")
	m := core.MustNew(arch.Config{NPRC: 2, NCG: 2}, core.Options{ChargeOverhead: true})
	// Cold trigger, then one on the settled fabric: the second fills the
	// cache entry every following trigger replays.
	const settled = 50_000_000
	if _, err := m.OnTrigger(blk, "P", triggers, 0); err != nil {
		b.Fatal(err)
	}
	if _, err := m.OnTrigger(blk, "P", triggers, settled); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.OnTrigger(blk, "P", triggers, settled); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := m.Stats()
	b.ReportMetric(float64(st.CacheHits)/float64(st.Selections), "hit-rate")
}

// BenchmarkSelectionObserved is BenchmarkSelectionCached with a
// decision-trace recorder attached: the cost of tracing the hot path. The
// observer-off case (BenchmarkSelectionCached) must stay allocation-free
// with respect to observation — the baseline check pins its allocs/op.
func BenchmarkSelectionObserved(b *testing.B) {
	w, _ := benchWorkload(b)
	blk := w.App.Block("enc")
	triggers := w.Trace.ProfileFor("enc", "P")
	m := core.MustNew(arch.Config{NPRC: 2, NCG: 2}, core.Options{ChargeOverhead: true})
	rec := obs.New()
	m.SetObserver(rec)
	const settled = 50_000_000
	if _, err := m.OnTrigger(blk, "P", triggers, 0); err != nil {
		b.Fatal(err)
	}
	if _, err := m.OnTrigger(blk, "P", triggers, settled); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.OnTrigger(blk, "P", triggers, settled); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 0 {
			rec.Reset() // bound the event buffer; Reset keeps the recorder attached
		}
	}
}

// BenchmarkSelectionUncached is the same trigger reaction with the cache
// disabled — the before/after contrast for BenchmarkSelectionCached.
func BenchmarkSelectionUncached(b *testing.B) {
	w, _ := benchWorkload(b)
	blk := w.App.Block("enc")
	triggers := w.Trace.ProfileFor("enc", "P")
	m := core.MustNew(arch.Config{NPRC: 2, NCG: 2}, core.Options{ChargeOverhead: true})
	m.SetSelectionCacheSize(-1)
	const settled = 50_000_000
	if _, err := m.OnTrigger(blk, "P", triggers, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.OnTrigger(blk, "P", triggers, settled); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyIncremental stresses the incremental greedy on a large
// synthetic library, where multi-round selections give the per-candidate
// profit memo something to save; saved-frac reports the share of modelled
// evaluations answered from the memo. Under the port-aware Multigrained
// model nearly every claim queues reconfiguration work, so exact
// invalidation leaves little to save; under PortBlind (the paper's
// original profit function) only shared data paths invalidate, and the
// memo carries most of the later rounds.
func BenchmarkGreedyIncremental(b *testing.B) {
	blk, triggers := iselib.GenerateBlock("inc", 6, 60, 11)
	for _, bm := range []struct {
		name string
		m    profit.Model
	}{
		{"multigrained", profit.Multigrained},
		{"portblind", profit.PortBlind},
	} {
		req := selector.Request{
			Block:    blk,
			Triggers: triggers,
			Fabric:   ise.EmptyFabric{PRC: 4, CG: 3},
			Model:    bm.m,
		}
		b.Run(bm.name, func(b *testing.B) {
			b.ReportAllocs()
			var last selector.Result
			for i := 0; i < b.N; i++ {
				res, err := selector.Greedy(req)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			if last.Evaluations > 0 {
				b.ReportMetric(float64(last.SavedEvaluations)/float64(last.Evaluations), "saved-frac")
			}
		})
	}
}

// BenchmarkKnapsackDP measures the offline multi-choice knapsack over the
// whole application.
func BenchmarkKnapsackDP(b *testing.B) {
	app := iselib.MustNewApplication()
	var groups [][]selector.Option
	for _, blk := range app.Blocks {
		for _, k := range blk.Kernels {
			var opts []selector.Option
			for _, e := range k.ISEs {
				opts = append(opts, selector.Option{
					Label: e.ID, PRC: e.CostPRC(), CG: e.CostCG(),
					Profit: profit.SteadyStateProfit(k, e, 10000),
				})
			}
			groups = append(groups, opts)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		selector.MultiChoiceKnapsack(groups, 4, 3)
	}
}

// BenchmarkEncoderFrame measures encoding one QCIF frame — the workload
// substrate's cost.
func BenchmarkEncoderFrame(b *testing.B) {
	gen, err := video.NewGenerator(176, 144, 1, video.Options{})
	if err != nil {
		b.Fatal(err)
	}
	enc, err := h264.NewEncoder(176, 144, h264.Config{})
	if err != nil {
		b.Fatal(err)
	}
	frames := gen.Sequence(2)
	if _, err := enc.EncodeFrame(frames[0]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.EncodeFrame(frames[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorRun measures one full simulator run (events/op scale
// with the workload).
func BenchmarkSimulatorRun(b *testing.B) {
	w, _ := benchWorkload(b)
	m := core.MustNew(arch.Config{NPRC: 2, NCG: 2}, core.Options{ChargeOverhead: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(w.App, w.Trace, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceMerge measures the single-core schedule merge of one
// functional-block iteration.
func BenchmarkTraceMerge(b *testing.B) {
	w, _ := benchWorkload(b)
	var it *trace.Iteration
	for i := range w.Trace.Iterations {
		if w.Trace.Iterations[i].Block == "me" {
			it = &w.Trace.Iterations[i]
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.Merge(it.Loads)
	}
}

// BenchmarkRISPPLike / BenchmarkMorpheus / BenchmarkOfflineOptimal measure
// a full simulated run under each baseline on the 2/2 combination.
func BenchmarkRISPPLike(b *testing.B) {
	w, _ := benchWorkload(b)
	r, err := baseline.NewRISPPLike(arch.Config{NPRC: 2, NCG: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(w.App, w.Trace, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMorpheus(b *testing.B) {
	w, _ := benchWorkload(b)
	r, err := baseline.NewMorpheus4S(arch.Config{NPRC: 2, NCG: 2}, w.App, w.Trace)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(w.App, w.Trace, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOfflineOptimal(b *testing.B) {
	w, _ := benchWorkload(b)
	r, err := baseline.NewOfflineOptimal(arch.Config{NPRC: 2, NCG: 2}, w.App, w.Trace)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(w.App, w.Trace, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectorScalability measures the greedy Fig. 6 heuristic across
// synthetic library sizes up to the paper's extremes (6 kernels x 60 ISEs,
// a nominal combination space beyond 78 million).
func BenchmarkSelectorScalability(b *testing.B) {
	for _, sz := range []struct{ n, m int }{
		{2, 8}, {4, 20}, {6, 60}, {10, 60},
	} {
		blk, triggers := iselib.GenerateBlock("s", sz.n, sz.m, 11)
		req := selector.Request{
			Block:    blk,
			Triggers: triggers,
			Fabric:   ise.EmptyFabric{PRC: 4, CG: 3},
			Model:    profit.Multigrained,
		}
		b.Run(fmt.Sprintf("%dx%d", sz.n, sz.m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := selector.Greedy(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimalScalability shows why the exhaustive algorithm cannot
// run on the processor: branch-and-bound still explodes combinatorially
// as the library grows.
func BenchmarkOptimalScalability(b *testing.B) {
	for _, sz := range []struct{ n, m int }{
		{2, 8}, {4, 12}, {5, 12}, {6, 12},
	} {
		blk, triggers := iselib.GenerateBlock("s", sz.n, sz.m, 13)
		req := selector.Request{
			Block:    blk,
			Triggers: triggers,
			Fabric:   ise.EmptyFabric{PRC: 3, CG: 3},
			Model:    profit.Multigrained,
		}
		b.Run(fmt.Sprintf("%dx%d", sz.n, sz.m), func(b *testing.B) {
			nodes := 0
			for i := 0; i < b.N; i++ {
				res, err := selector.Optimal(req)
				if err != nil {
					b.Fatal(err)
				}
				nodes = res.Rounds
			}
			// Explored branch-and-bound nodes: the quantity the
			// tightened upper bound shrinks.
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkAblationPortBlindProfit removes the configuration-port
// awareness from the profit estimate (the paper's original formulation):
// reconfigurations are costed as if the ports were idle.
func BenchmarkAblationPortBlindProfit(b *testing.B) {
	ablate(b, core.Options{ChargeOverhead: true, Model: profit.PortBlind})
}

// --- Batch engine benches --------------------------------------------------

// batchLattice builds the free-capacity request lattice of the batch
// benchmarks over the 4x20 synthetic library — the scalability case of the
// CI guard — extended past the block's demand bound so saturation clamping
// (selector.DemandBound) gives the shared memo real duplicates to absorb,
// the way oversized fabric combinations repeat in a real sweep.
func batchLattice() []selector.Request {
	blk, triggers := iselib.GenerateBlock("s", 4, 20, 11)
	bp, bc := selector.DemandBound(blk)
	var reqs []selector.Request
	for p := 0; p <= bp+4; p++ {
		for c := 0; c <= bc+4; c++ {
			reqs = append(reqs, selector.Request{
				Block:    blk,
				Triggers: triggers,
				Fabric:   ise.EmptyFabric{PRC: p, CG: c},
				Model:    profit.Multigrained,
			})
		}
	}
	return reqs
}

// BenchmarkBatchSelection compares one sweep-worth of greedy selections
// evaluated sequentially against selector.Batch: the batch half spreads
// the lattice over GOMAXPROCS workers and answers clamp-duplicate points
// from the shared memo. Results are byte-identical either way (pinned in
// internal/selector); only wall-clock may differ.
func BenchmarkBatchSelection(b *testing.B) {
	reqs := batchLattice()
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range reqs {
				if _, err := selector.Greedy(q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		var hits, total uint64
		for i := 0; i < b.N; i++ {
			memo := selector.NewMemo(0)
			if _, err := selector.Batch(reqs, 0, memo); err != nil {
				b.Fatal(err)
			}
			st := memo.Stats()
			hits, total = st.Hits, st.Hits+st.Misses
		}
		b.ReportMetric(float64(hits), "seed-hits")
		b.ReportMetric(float64(total), "points")
	})
}

// BenchmarkSweepWallclock measures the figure pipeline (Fig. 8 + 9 + 10 —
// the core of `mrts-sweep -fig all`) end to end. "sequential" is the
// pre-batch behaviour: the direct evaluator on a single worker. "batch" is
// the batch engine with the default worker pool, point deduplication
// across figures and the shared selection memo; point-replays counts the
// simulations the engine never re-ran.
func BenchmarkSweepWallclock(b *testing.B) {
	w, _ := benchWorkload(b)
	figs := func(ctx context.Context, eval exp.Evaluator) error {
		if _, err := exp.Fig8(ctx, eval, 3, 2); err != nil {
			return err
		}
		if _, err := exp.Fig9(ctx, eval, 3, 2); err != nil {
			return err
		}
		_, err := exp.Fig10(ctx, eval, 3, 2)
		return err
	}
	b.Run("sequential", func(b *testing.B) {
		ctx := exp.WithWorkers(context.Background(), 1)
		for i := 0; i < b.N; i++ {
			if err := figs(ctx, exp.DirectEvaluator(w)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		var st batch.Stats
		for i := 0; i < b.N; i++ {
			eng := batch.New(w, 0)
			if err := figs(context.Background(), eng.Evaluator()); err != nil {
				b.Fatal(err)
			}
			st = eng.Stats()
		}
		b.ReportMetric(float64(st.PointHits), "point-replays")
		b.ReportMetric(float64(st.SeedHits), "seed-hits")
	})
}

var (
	phasedBenchOnce sync.Once
	phasedBenchW    *workload.Result
)

// phasedBenchWorkload builds the shared dynamic control-flow workload
// once: the phase sweep's default shape at divergence 0.5.
func phasedBenchWorkload(b testing.TB) *workload.Result {
	b.Helper()
	phasedBenchOnce.Do(func() {
		phasedBenchW = workload.MustBuild(workload.Options{
			Seed:   1,
			Phased: &workload.PhasedOptions{Divergence: 0.5},
		})
	})
	return phasedBenchW
}

// BenchmarkPhasedPrediction measures one full mRTS run per MPU predictor
// kind on a dynamic control-flow workload — the cost of the phase-aware
// forecasters relative to the back-propagation baseline, with each run's
// mean absolute forecast error reported alongside.
func BenchmarkPhasedPrediction(b *testing.B) {
	w := phasedBenchWorkload(b)
	for _, k := range mpu.Kinds() {
		kind := mpu.Kind(k)
		b.Run(k, func(b *testing.B) {
			var rep *sim.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = exp.RunPointPredictor(nil, w, arch.Config{NPRC: 2, NCG: 2}, kind, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Forecast.Total.MeanAbsE(), "abs-err/obs")
		})
	}
}

// TestPhasedPredictionOverheadBounded is the MRTS_BENCH_SMOKE speed guard
// of the phase-aware forecasters: a full mRTS run with the phase or decay
// predictor must not cost more than 1.5x the back-propagation run on the
// same dynamic workload — the accuracy win must not be bought with
// simulation-loop overhead. (In practice the better forecasters are
// faster: fewer mispredicted selections means fewer reconfigurations.)
func TestPhasedPredictionOverheadBounded(t *testing.T) {
	if os.Getenv("MRTS_BENCH_SMOKE") == "" {
		t.Skip("set MRTS_BENCH_SMOKE=1 to run the phased-prediction overhead guard")
	}
	w := phasedBenchWorkload(t)
	run := func(k mpu.Kind) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exp.RunPointPredictor(nil, w, arch.Config{NPRC: 2, NCG: 2}, k, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	base := run(mpu.KindBackProp)
	for _, k := range []mpu.Kind{mpu.KindPhase, mpu.KindDecay} {
		got := run(k)
		t.Logf("%s %d ns/op vs backprop %d ns/op", k, got.NsPerOp(), base.NsPerOp())
		if float64(got.NsPerOp()) > 1.5*float64(base.NsPerOp()) {
			t.Errorf("%s predictor run costs %d ns/op, more than 1.5x backprop's %d ns/op",
				k, got.NsPerOp(), base.NsPerOp())
		}
	}
}

// TestBatchNotSlowerThanSequential is the CI guard of the batch engine's
// reason to exist: on the 4x20 scalability case, selector.Batch must not
// be slower than the plain sequential loop over the same requests.
// Benchmarking inside a test is noisy on shared runners, so the guard is
// opt-in (MRTS_BENCH_SMOKE=1) and allows 20% slack.
func TestBatchNotSlowerThanSequential(t *testing.T) {
	if os.Getenv("MRTS_BENCH_SMOKE") == "" {
		t.Skip("set MRTS_BENCH_SMOKE=1 to run the batch-vs-sequential guard")
	}
	reqs := batchLattice()
	seq := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range reqs {
				if _, err := selector.Greedy(q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	bat := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := selector.Batch(reqs, 0, selector.NewMemo(0)); err != nil {
				b.Fatal(err)
			}
		}
	})
	t.Logf("sequential %d ns/op, batch %d ns/op (%d points)", seq.NsPerOp(), bat.NsPerOp(), len(reqs))
	if float64(bat.NsPerOp()) > 1.2*float64(seq.NsPerOp()) {
		t.Errorf("batch selection is slower than sequential: %d ns/op vs %d ns/op",
			bat.NsPerOp(), seq.NsPerOp())
	}
}

// --- Service benches -------------------------------------------------------

// BenchmarkServiceCacheHit measures a job that is fully served from the
// mrts-serve result cache: the same simulation point submitted through the
// job queue after a warm-up run. Compare against BenchmarkServiceColdJob
// for the amortisation the cache buys.
func BenchmarkServiceCacheHit(b *testing.B) {
	s := service.New(service.Options{Workers: 1})
	defer s.Close()
	spec := api.JobSpec{
		Type:     api.JobSim,
		Workload: api.WorkloadSpec{Frames: 2, Seed: 1},
		PRC:      2, CG: 1, Policy: "mrts",
	}
	runServiceJob(b, s, spec) // warm the workload and result caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runServiceJob(b, s, spec)
		if res.CacheMisses != 0 {
			b.Fatalf("warm job missed the cache (%d misses)", res.CacheMisses)
		}
	}
}

// BenchmarkServiceColdJob measures a job whose point is not cached: every
// iteration evaluates a fabric combination the server has not seen, so the
// full simulation runs (the workload itself stays cached, as it would for
// a daemon sweeping one sequence).
func BenchmarkServiceColdJob(b *testing.B) {
	s := service.New(service.Options{Workers: 1, ResultCacheSize: 1})
	defer s.Close()
	base := api.JobSpec{
		Type:     api.JobSim,
		Workload: api.WorkloadSpec{Frames: 2, Seed: 1},
		Policy:   "mrts",
	}
	runServiceJob(b, s, base) // build the workload outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := base
		spec.PRC = 1 + i%64
		spec.CG = 1 + i/64
		res := runServiceJob(b, s, spec)
		if res.CacheHits != 0 {
			b.Fatalf("cold job hit the cache at iteration %d", i)
		}
	}
}

// BenchmarkServiceThroughput measures end-to-end jobs/sec through the
// whole service pipeline — admission, idempotency table, queue, worker
// dispatch, result delivery — with the simulation itself served from the
// warm result cache, so the number isolates the service machinery the
// cluster layer multiplies across nodes.
func BenchmarkServiceThroughput(b *testing.B) {
	s := service.New(service.Options{Workers: 4, QueueDepth: 512})
	defer s.Close()
	spec := api.JobSpec{
		Type:     api.JobSim,
		Workload: api.WorkloadSpec{Frames: 2, Seed: 1},
		PRC:      2, CG: 1, Policy: "mrts",
	}
	runServiceJob(b, s, spec) // warm the workload and result caches
	var failure atomic.Value
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			job, err := s.Submit(spec)
			if err == nil {
				err = s.Wait(ctx, job)
			}
			if err != nil {
				failure.Store(err)
				return
			}
		}
	})
	b.StopTimer()
	if err, ok := failure.Load().(error); ok {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
}

func runServiceJob(b *testing.B, s *service.Server, spec api.JobSpec) *api.JobResult {
	b.Helper()
	job, err := s.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Wait(context.Background(), job); err != nil {
		b.Fatal(err)
	}
	st := s.Status(job, true)
	if st.State != api.StateDone {
		b.Fatalf("job %s: %s", st.State, st.Error)
	}
	return st.Result
}
