// Command mrts-case regenerates the paper's motivational case study:
// Fig. 1 (Performance Improvement Factor of three deblocking-filter ISEs
// over the number of kernel executions) and Fig. 2 (execution behaviour of
// the deblocking filter over a frame sequence).
//
// Usage:
//
//	mrts-case            # both figures
//	mrts-case -fig 1 -max 6000 -step 100
package main

import (
	"flag"
	"fmt"
	"os"

	"mrts/internal/exp"
	"mrts/internal/video"
	"mrts/internal/workload"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "figure to regenerate: 1|2|all")
		max    = flag.Int64("max", 6000, "Fig. 1: maximum execution count")
		step   = flag.Int64("step", 200, "Fig. 1: execution-count step")
		frames = flag.Int("frames", 16, "Fig. 2: video frames to encode")
		seed   = flag.Uint64("seed", 1, "Fig. 2: synthetic video seed")
		chart  = flag.Bool("chart", false, "render Fig. 1 as an ASCII line chart")
	)
	flag.Parse()

	if *fig == "1" || *fig == "all" {
		r := exp.Fig1(*max, *step)
		if *chart {
			r.RenderChart(os.Stdout)
		} else {
			r.Render(os.Stdout)
		}
	}
	if *fig == "2" || *fig == "all" {
		if *fig == "all" {
			fmt.Println()
		}
		w, err := workload.Build(workload.Options{
			Frames: *frames,
			Seed:   *seed,
			Video:  video.Options{SceneCuts: []int{*frames / 3, 2 * *frames / 3}},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrts-case:", err)
			os.Exit(1)
		}
		r2 := exp.Fig2(w)
		if *chart {
			r2.RenderChart(os.Stdout)
		} else {
			r2.Render(os.Stdout)
		}
	}
}
