// Command mrts-encode runs the instrumented H.264 encoder over synthetic
// video and writes the resulting workload trace (trigger-instruction
// forecasts plus ground-truth kernel loads) as JSON, for inspection or
// replay by external tooling.
//
// Usage:
//
//	mrts-encode -frames 16 -o trace.json
//	mrts-encode -frames 8 -width 352 -height 288 -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"mrts/internal/h264"
	"mrts/internal/video"
	"mrts/internal/workload"
)

func encoderConfig(qp int) h264.Config {
	return h264.Config{QP: qp}
}

func main() {
	var (
		frames   = flag.Int("frames", 16, "video frames to encode")
		width    = flag.Int("width", 176, "frame width (multiple of 16)")
		height   = flag.Int("height", 144, "frame height (multiple of 16)")
		seed     = flag.Uint64("seed", 1, "synthetic video seed")
		qp       = flag.Int("qp", 24, "encoder quantisation parameter")
		out      = flag.String("o", "", "output trace file (default stdout)")
		stats    = flag.Bool("stats", false, "print per-frame encoder statistics instead of the trace")
		sceneCut = flag.Int("scenecut", 0, "scene-cut frame (0 = defaults at 1/3 and 2/3)")
		bitsOut  = flag.String("bitstream", "", "also write the concatenated frame bitstreams to this file")
	)
	flag.Parse()

	cuts := []int{*frames / 3, 2 * *frames / 3}
	if *sceneCut > 0 {
		cuts = []int{*sceneCut}
	}
	w, err := workload.Build(workload.Options{
		Width:   *width,
		Height:  *height,
		Frames:  *frames,
		Seed:    *seed,
		Video:   video.Options{SceneCuts: cuts},
		Encoder: encoderConfig(*qp),
	})
	if err != nil {
		fatal(err)
	}

	if *bitsOut != "" {
		bf, err := os.Create(*bitsOut)
		if err != nil {
			fatal(err)
		}
		var total int64
		for _, st := range w.Frames {
			n, err := bf.Write(st.Stream)
			if err != nil {
				fatal(err)
			}
			total += int64(n)
		}
		if err := bf.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mrts-encode: wrote %d bitstream bytes for %d frames to %s\n",
			total, len(w.Frames), *bitsOut)
	}

	if *stats {
		fmt.Printf("%6s %8s %8s %8s %10s %8s\n", "frame", "intra", "inter", "skip", "bits", "PSNR")
		for _, st := range w.Frames {
			fmt.Printf("%6d %8d %8d %8d %10d %8.2f\n",
				st.Frame, st.Intra, st.Inter, st.Skip, st.Bits, st.PSNR)
		}
		return
	}

	f := os.Stdout
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	if err := w.Trace.Encode(f); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrts-encode:", err)
	os.Exit(1)
}
