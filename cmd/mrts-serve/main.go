// Command mrts-serve runs the mRTS simulation service: a long-lived
// daemon that accepts simulation, figure and sweep jobs over HTTP/JSON,
// executes them on a bounded worker pool, and amortises repeated work
// with a content-addressed result cache and a shared workload cache.
//
// Usage:
//
//	mrts-serve -addr :8341 -workers 8
//	mrts-serve -journal /var/lib/mrts -rate 50 -drain 30s
//
// With -journal, every accepted job is recorded in a write-ahead journal
// before it is acknowledged; on restart the daemon replays the journal,
// restores completed results and re-runs whatever was queued or in
// flight when the previous process died. -rate/-burst enable per-client
// token-bucket admission control (rejections carry Retry-After). On
// SIGINT/SIGTERM the daemon flips /readyz to 503, stops admitting jobs
// and waits up to -drain for in-flight work before exiting.
//
// Endpoints: POST/GET /v1/jobs, GET /v1/jobs/{id},
// POST /v1/jobs/{id}/cancel, POST /v1/sweep (ndjson stream),
// GET /healthz, GET /readyz, GET /metrics. Submit jobs with
// cmd/mrts-submit or plain curl; see the README's "Running as a
// service" and "Running in production" sections.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mrts/internal/service"
	"mrts/internal/service/journal"
)

func main() {
	var (
		addr       = flag.String("addr", ":8341", "listen address")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 256, "maximum queued jobs")
		cacheSize  = flag.Int("cache", 4096, "result cache capacity (points)")
		wcacheSize = flag.Int("wcache", 16, "workload cache capacity (built traces)")
		timeout    = flag.Duration("timeout", 10*time.Minute, "default per-job execution timeout")
		journalDir = flag.String("journal", "", "directory for the write-ahead job journal; empty disables durability")
		rate       = flag.Float64("rate", 0, "per-client submissions per second (0 = unlimited)")
		burst      = flag.Int("burst", 0, "per-client burst size (0 = ceil(rate))")
		drain      = flag.Duration("drain", 30*time.Second, "max time to wait for in-flight jobs on shutdown")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	)
	flag.Parse()

	var j *journal.Journal
	if *journalDir != "" {
		var err error
		j, err = journal.Open(*journalDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrts-serve: journal:", err)
			os.Exit(1)
		}
		st := j.Stats()
		fmt.Fprintf(os.Stderr, "mrts-serve: journal %s: %d records replayed, %d skipped\n",
			*journalDir, st.Replayed, st.ReplaySkipped)
	}

	// The pprof listener gets its own mux and server — never
	// http.DefaultServeMux, which any imported package can register
	// handlers on — and shuts down with the API server below.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{Addr: *pprofAddr, Handler: mux}
		go func() {
			fmt.Fprintf(os.Stderr, "mrts-serve: pprof on %s\n", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "mrts-serve: pprof:", err)
			}
		}()
	}

	s := service.New(service.Options{
		Workers:           *workers,
		QueueDepth:        *queue,
		ResultCacheSize:   *cacheSize,
		WorkloadCacheSize: *wcacheSize,
		JobTimeout:        *timeout,
		Journal:           j, // server owns it and closes it
		RatePerSec:        *rate,
		RateBurst:         *burst,
	})
	defer s.Close()
	if n := s.RecoveredJobs(); n > 0 {
		fmt.Fprintf(os.Stderr, "mrts-serve: re-running %d unfinished jobs from the journal\n", n)
	}

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "mrts-serve: listening on %s\n", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "mrts-serve:", err)
		os.Exit(1)
	case sig := <-sigc:
		// Graceful drain: /readyz goes 503 and submissions are refused
		// immediately, then in-flight jobs get up to -drain to finish
		// before Close cancels whatever is left.
		fmt.Fprintf(os.Stderr, "mrts-serve: %s, draining (up to %s)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "mrts-serve:", err)
		}
		_ = srv.Shutdown(ctx)
		if pprofSrv != nil {
			_ = pprofSrv.Shutdown(ctx)
		}
	}
}
