// Command mrts-serve runs the mRTS simulation service: a long-lived
// daemon that accepts simulation, figure and sweep jobs over HTTP/JSON,
// executes them on a bounded worker pool, and amortises repeated work
// with a content-addressed result cache and a shared workload cache.
//
// Usage:
//
//	mrts-serve -addr :8341 -workers 8
//
// Endpoints: POST/GET /v1/jobs, GET /v1/jobs/{id},
// POST /v1/jobs/{id}/cancel, POST /v1/sweep (ndjson stream),
// GET /healthz, GET /metrics. Submit jobs with cmd/mrts-submit or plain
// curl; see the README's "Running as a service" section.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mrts/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8341", "listen address")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 256, "maximum queued jobs")
		cacheSize  = flag.Int("cache", 4096, "result cache capacity (points)")
		wcacheSize = flag.Int("wcache", 16, "workload cache capacity (built traces)")
		timeout    = flag.Duration("timeout", 10*time.Minute, "default per-job execution timeout")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	)
	flag.Parse()

	// The pprof listener gets its own mux and server — never
	// http.DefaultServeMux, which any imported package can register
	// handlers on — and shuts down with the API server below.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{Addr: *pprofAddr, Handler: mux}
		go func() {
			fmt.Fprintf(os.Stderr, "mrts-serve: pprof on %s\n", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "mrts-serve: pprof:", err)
			}
		}()
	}

	s := service.New(service.Options{
		Workers:           *workers,
		QueueDepth:        *queue,
		ResultCacheSize:   *cacheSize,
		WorkloadCacheSize: *wcacheSize,
		JobTimeout:        *timeout,
	})
	defer s.Close()

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "mrts-serve: listening on %s\n", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "mrts-serve:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "mrts-serve: %s, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if pprofSrv != nil {
			_ = pprofSrv.Shutdown(ctx)
		}
	}
}
