// Command mrts-isa runs the encoder micro-kernels on the functional
// hardware models — the LEON-class RISC core (internal/leon) and a CG-EDPE
// of the coarse-grained fabric (internal/cgedpe) — and prints the measured
// cycle counts next to the ISE library's latency constants. This is the
// calibration evidence behind the latency numbers the runtime system
// selects on.
//
//	mrts-isa
package main

import (
	"fmt"
	"os"

	"mrts/internal/arch"
	"mrts/internal/cgedpe"
	"mrts/internal/fgfabric"
	"mrts/internal/h264"
	"mrts/internal/ise"
	"mrts/internal/iselib"
	"mrts/internal/leon"
)

func main() {
	app := iselib.MustNewApplication()

	cur := make([]byte, 256)
	ref := make([]byte, 256)
	for i := range cur {
		cur[i] = byte(i * 7)
		ref[i] = byte(i*5 + 3)
	}
	coeffs := [16]int32{120, -55, 910, 3, -4, 0, 66, -2000, 8, 0, 1, -1, 300, -300, 12, 99}

	fmt.Println("Micro-kernel calibration: functional hardware models vs. ISE library")
	fmt.Printf("%-22s %14s %14s %8s\n", "kernel / target", "measured (cy)", "library (cy)", "ratio")

	row := func(name string, measured int64, library arch.Cycles) {
		fmt.Printf("%-22s %14d %14d %8.2f\n", name, measured, library,
			float64(library)/float64(measured))
	}

	// RISC-mode measurements on the LEON model.
	sadV, sadCy, err := leon.MeasureSAD(cur, ref)
	check(err)
	row("sad @ LEON", sadCy, app.Kernel(ise.KernelID(h264.KernelSAD)).RISCLatency)

	_, quantCy, err := leon.MeasureQuant(coeffs, 13107, 43690, 17)
	check(err)
	row("quant @ LEON", quantCy, app.Kernel(ise.KernelID(h264.KernelQuant)).RISCLatency)

	_, bsCy, err := leon.MeasureBS(false, false, false, false, 1, 1)
	check(err)
	row("bs @ LEON", bsCy, app.Kernel(ise.KernelID(h264.KernelBS)).RISCLatency)

	var blkRISC [16]int32
	for i := range blkRISC {
		blkRISC[i] = int32(i*13 - 90)
	}
	_, dctRISCCy, err := leon.MeasureDCT(blkRISC)
	check(err)
	row("dct @ LEON", dctRISCCy, app.Kernel(ise.KernelID(h264.KernelDCT)).RISCLatency)

	rows := [4][4]uint8{
		{100, 100, 104, 104}, {100, 101, 105, 104},
		{99, 100, 103, 104}, {101, 100, 105, 106},
	}
	_, filtCy, err := leon.MeasureFilt(rows, 20, 6, 2)
	check(err)
	row("filt @ LEON", filtCy, app.Kernel(ise.KernelID(h264.KernelFilt)).RISCLatency)

	// CG-fabric measurements on the EDPE model.
	sadCGV, sadCGCy, err := cgedpe.MeasureSAD(cur, ref)
	check(err)
	row("sad @ CG-EDPE", sadCGCy, app.Kernel(ise.KernelID(h264.KernelSAD)).ISEByID("sad.cg1").FullLatency())

	var blk [16]int32
	for i := range blk {
		blk[i] = int32(i*13 - 90)
	}
	_, dctCGCy, err := cgedpe.MeasureDCT(blk)
	check(err)
	row("dct @ CG-EDPE", dctCGCy, app.Kernel(ise.KernelID(h264.KernelDCT)).ISEByID("dct.cg1").FullLatency())

	_, quantCGCy, err := cgedpe.MeasureQuant(coeffs, 13107, 43690, 17)
	check(err)
	row("quant @ CG-EDPE", quantCGCy, app.Kernel(ise.KernelID(h264.KernelQuant)).ISEByID("quant.cg1").FullLatency())

	var resid [16]int32
	for i := range resid {
		resid[i] = int32(i*7 - 50)
	}
	_, satdCGCy, err := cgedpe.MeasureSATD(resid)
	check(err)
	row("satd @ CG-EDPE", satdCGCy, app.Kernel(ise.KernelID(h264.KernelSATD)).ISEByID("satd.cg1").FullLatency())

	if sadV != sadCGV {
		fmt.Fprintf(os.Stderr, "mrts-isa: models disagree on SAD: %d vs %d\n", sadV, sadCGV)
		os.Exit(1)
	}

	fmt.Printf("\nmeasured SAD speedup on the CG fabric: %.1fx (both models agree on the value %d)\n",
		float64(sadCy)/float64(sadCGCy), sadV)

	fmt.Printf("\nFG configuration path: a %d-byte partial bitstream at %d KB/s streams in %.2f ms (constant: %.2f ms)\n",
		fgfabric.BytesPerDataPath, arch.FGReconfigBandwidthKBps,
		fgfabric.StreamCycles(fgfabric.BytesPerDataPath).Millis(),
		arch.FGReconfigCycles.Millis())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrts-isa:", err)
		os.Exit(1)
	}
}
