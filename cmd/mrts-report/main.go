// Command mrts-report regenerates the complete evaluation in one run and
// emits a self-contained markdown report: every figure of the paper
// (Figs. 1, 2, 8, 9, 10), the Section 5.4 overhead analysis, the
// fabric-sharing sweep, the multi-tenant virtualization sweep, and the
// hardware-model calibration table. It is the tool behind EXPERIMENTS.md.
//
//	mrts-report > report.md
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"mrts/internal/arch"
	"mrts/internal/cgedpe"
	"mrts/internal/exp"
	"mrts/internal/h264"
	"mrts/internal/ise"
	"mrts/internal/iselib"
	"mrts/internal/leon"
	"mrts/internal/video"
	"mrts/internal/workload"
)

func main() {
	var (
		frames  = flag.Int("frames", 16, "video frames to encode")
		seed    = flag.Uint64("seed", 1, "synthetic video seed")
		maxPRC  = flag.Int("maxprc", 4, "maximum PRC count of the sweeps")
		maxCG   = flag.Int("maxcg", 3, "maximum CG-EDPE count of the sweeps")
		tenants = flag.Int("tenants", 8, "largest tenant count of the virtualization sweep")
		mix     = flag.String("mix", "skewed", "tenant mix of the virtualization sweep: uniform|skewed|priority")
	)
	flag.Parse()
	out := os.Stdout

	base := workload.Options{
		Frames: *frames,
		Seed:   *seed,
		Video:  video.Options{SceneCuts: []int{*frames / 3, 2 * *frames / 3}},
	}
	w, err := workload.Build(base)
	check(err)
	ctx := context.Background()
	eval := exp.DirectEvaluator(w)

	fmt.Fprintf(out, "# mRTS evaluation report\n\n")
	fmt.Fprintf(out, "Workload: %d QCIF frames, seed %d, scene cuts at %d and %d; fabric sweep PRCs 0-%d x CG-EDPEs 0-%d.\n\n",
		*frames, *seed, *frames/3, 2**frames/3, *maxPRC, *maxCG)

	section := func(title string) { fmt.Fprintf(out, "\n## %s\n\n```\n", title) }
	endSection := func() { fmt.Fprintf(out, "```\n") }

	section("Fig. 1 — motivational case study (pif regions)")
	fig1 := exp.Fig1(6000, 200)
	fig1.RenderChart(out)
	fmt.Fprintf(out, "crossovers at %v executions\n", fig1.Crossovers)
	endSection()

	section("Fig. 2 — deblocking-filter execution behaviour")
	exp.Fig2(w).Render(out)
	endSection()

	section("Fig. 8 — comparison with state-of-the-art")
	fig8, err := exp.Fig8(ctx, eval, *maxPRC, *maxCG)
	check(err)
	fig8.Render(out)
	endSection()

	section("Fig. 9 — selection heuristic vs. optimal algorithm")
	fig9, err := exp.Fig9(ctx, eval, *maxPRC, *maxCG)
	check(err)
	fig9.Render(out)
	endSection()

	section("Fig. 10 — speedup over RISC mode")
	fig10, err := exp.Fig10(ctx, eval, min(*maxPRC, 3), *maxCG)
	check(err)
	fig10.Render(out)
	endSection()

	section("Section 5.4 — runtime-system overhead")
	ovh, err := exp.Overhead(w, arch.Config{NPRC: 2, NCG: 2})
	check(err)
	ovh.Render(out)
	endSection()

	section("Fabric sharing — run-time adaptation vs. recompiled oracle")
	shared, err := exp.Shared(ctx, w, arch.Config{NPRC: *maxPRC, NCG: *maxCG})
	check(err)
	shared.Render(out)
	endSection()

	section("Virtualization — static partitions vs. migrating hypervisor")
	ten, err := exp.Tenants(ctx, exp.DirectWorkloads(), base,
		arch.Config{NPRC: *maxPRC, NCG: *maxCG}, *tenants, *mix)
	check(err)
	ten.Render(out)
	endSection()

	section("Hardware-model calibration")
	calibration(out)
	endSection()
}

// calibration reproduces the mrts-isa table.
func calibration(out *os.File) {
	app := iselib.MustNewApplication()
	cur := make([]byte, 256)
	ref := make([]byte, 256)
	for i := range cur {
		cur[i] = byte(i * 7)
		ref[i] = byte(i*5 + 3)
	}
	coeffs := [16]int32{120, -55, 910, 3, -4, 0, 66, -2000, 8, 0, 1, -1, 300, -300, 12, 99}
	var blk [16]int32
	for i := range blk {
		blk[i] = int32(i*13 - 90)
	}
	fmt.Fprintf(out, "%-22s %14s %14s %8s\n", "kernel / target", "measured (cy)", "library (cy)", "ratio")
	row := func(name string, measured int64, library arch.Cycles) {
		fmt.Fprintf(out, "%-22s %14d %14d %8.2f\n", name, measured, library, float64(library)/float64(measured))
	}
	_, c1, err := leon.MeasureSAD(cur, ref)
	check(err)
	row("sad @ LEON", c1, app.Kernel(ise.KernelID(h264.KernelSAD)).RISCLatency)
	_, c2, err := leon.MeasureQuant(coeffs, 13107, 43690, 17)
	check(err)
	row("quant @ LEON", c2, app.Kernel(ise.KernelID(h264.KernelQuant)).RISCLatency)
	_, c3, err := leon.MeasureBS(false, false, false, false, 1, 1)
	check(err)
	row("bs @ LEON", c3, app.Kernel(ise.KernelID(h264.KernelBS)).RISCLatency)
	_, c4, err := leon.MeasureDCT(blk)
	check(err)
	row("dct @ LEON", c4, app.Kernel(ise.KernelID(h264.KernelDCT)).RISCLatency)
	_, c5, err := cgedpe.MeasureSAD(cur, ref)
	check(err)
	row("sad @ CG-EDPE", c5, app.Kernel(ise.KernelID(h264.KernelSAD)).ISEByID("sad.cg1").FullLatency())
	_, c6, err := cgedpe.MeasureDCT(blk)
	check(err)
	row("dct @ CG-EDPE", c6, app.Kernel(ise.KernelID(h264.KernelDCT)).ISEByID("dct.cg1").FullLatency())
	_, c7, err := cgedpe.MeasureQuant(coeffs, 13107, 43690, 17)
	check(err)
	row("quant @ CG-EDPE", c7, app.Kernel(ise.KernelID(h264.KernelQuant)).ISEByID("quant.cg1").FullLatency())
	rows := [4][4]uint8{
		{100, 100, 104, 104}, {100, 101, 105, 104},
		{99, 100, 103, 104}, {101, 100, 105, 106},
	}
	_, c8, err := leon.MeasureFilt(rows, 20, 6, 2)
	check(err)
	row("filt @ LEON", c8, app.Kernel(ise.KernelID(h264.KernelFilt)).RISCLatency)
	var resid [16]int32
	for i := range resid {
		resid[i] = int32(i*7 - 50)
	}
	_, c9, err := cgedpe.MeasureSATD(resid)
	check(err)
	row("satd @ CG-EDPE", c9, app.Kernel(ise.KernelID(h264.KernelSATD)).ISEByID("satd.cg1").FullLatency())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrts-report:", err)
		os.Exit(1)
	}
}
