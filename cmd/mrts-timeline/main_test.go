package main

import (
	"bytes"
	"strings"
	"testing"

	"mrts/internal/obs"
)

// goodTrace builds a small two-run trace through the real recorder, so
// the tests exercise exactly the wire format the simulator writes.
func goodTrace(t *testing.T) string {
	t.Helper()
	r := obs.New()
	r.SetRun("mRTS/2x1")
	r.Record(obs.Event{Cycle: 0, Source: obs.SourceSim, Kind: obs.KindRun, Detail: "policy=mRTS fabric=2x1"})
	r.Record(obs.Event{Cycle: 10, Source: obs.SourceReconfig, Kind: obs.KindConfig, Path: "CG0", Latency: 90, Ready: 100})
	r.Record(obs.Event{Cycle: 120, Source: obs.SourceReconfig, Kind: obs.KindRetry, Path: "CG0", Latency: 40, Ready: 160})
	r.Record(obs.Event{Cycle: 200, Source: obs.SourceECU, Kind: obs.KindDispatch, Kernel: "sad", Mode: "full-ISE", Latency: 30})
	r.Record(obs.Event{Cycle: 240, Source: obs.SourceSim, Kind: obs.KindFault, Detail: "cg-transient"})
	r.SetRun("RISC/2x1")
	r.Record(obs.Event{Cycle: 0, Source: obs.SourceSim, Kind: obs.KindRun, Detail: "policy=RISC"})
	r.Record(obs.Event{Cycle: 50, Source: obs.SourceECU, Kind: obs.KindDispatch, Kernel: "sad", Mode: "RISC", Latency: 80})
	return r.JSONL()
}

func render(t *testing.T, cfg config, trace string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(cfg, strings.NewReader(trace), &out, &errw)
	return code, out.String(), errw.String()
}

func TestRenderIntactTrace(t *testing.T) {
	code, out, errw := render(t, config{width: 40}, goodTrace(t))
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errw)
	}
	for _, want := range []string{"run mRTS/2x1", "run RISC/2x1", "policy=mRTS fabric=2x1", "CG0", "sad"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lost %q:\n%s", want, out)
		}
	}
	if errw != "" {
		t.Errorf("clean trace produced stderr: %q", errw)
	}
}

func TestEmptyTraceNoPanic(t *testing.T) {
	code, out, errw := render(t, config{width: 40}, "")
	if code == 0 {
		t.Error("empty trace reported success")
	}
	if !strings.Contains(errw, "no events") {
		t.Errorf("stderr = %q, want a 'no events' diagnostic", errw)
	}
	if out != "" {
		t.Errorf("empty trace wrote to stdout: %q", out)
	}
}

// A trace truncated mid-line — the file a SIGKILLed writer leaves behind
// — renders every intact event and reports the torn tail.
func TestTruncatedTraceRendersWhatItCan(t *testing.T) {
	trace := goodTrace(t)
	trace = trace[:len(trace)-15] // tear the final line mid-JSON
	code, out, errw := render(t, config{width: 40}, trace)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errw)
	}
	if !strings.Contains(out, "run mRTS/2x1") {
		t.Errorf("intact run not rendered:\n%s", out)
	}
	if !strings.Contains(errw, "skipped 1 malformed trace line") {
		t.Errorf("stderr = %q, want a skipped-line report", errw)
	}
}

// Corrupt garbage lines in the middle are skipped with their 1-based
// line numbers; the surrounding events still render.
func TestCorruptLinesSkippedAndReported(t *testing.T) {
	lines := strings.Split(strings.TrimRight(goodTrace(t), "\n"), "\n")
	mixed := strings.Join([]string{
		lines[0],
		"!!! not json !!!",
		lines[1],
		`{"cycle": "a string where a number belongs"}`,
		strings.Join(lines[2:], "\n"),
	}, "\n") + "\n"
	code, out, errw := render(t, config{width: 40}, mixed)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errw)
	}
	if !strings.Contains(errw, "skipped 2 malformed trace line(s): 2, 4") {
		t.Errorf("stderr = %q, want lines 2 and 4 reported", errw)
	}
	for _, want := range []string{"run mRTS/2x1", "run RISC/2x1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lost %q after corruption:\n%s", want, out)
		}
	}
}

func TestAllLinesCorruptIsNoEvents(t *testing.T) {
	code, _, errw := render(t, config{width: 40}, "oops\nstill not json\n")
	if code == 0 {
		t.Error("fully corrupt trace reported success")
	}
	if !strings.Contains(errw, "skipped 2 malformed trace line") || !strings.Contains(errw, "no events") {
		t.Errorf("stderr = %q, want skip report and 'no events'", errw)
	}
}

func TestRunSelector(t *testing.T) {
	code, out, _ := render(t, config{width: 40, runSel: "RISC/2x1"}, goodTrace(t))
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if strings.Contains(out, "run mRTS/2x1") || !strings.Contains(out, "run RISC/2x1") {
		t.Errorf("-run did not filter:\n%s", out)
	}

	code, _, errw := render(t, config{width: 40, runSel: "nope"}, goodTrace(t))
	if code == 0 || !strings.Contains(errw, `run "nope" not in trace`) {
		t.Errorf("unknown run: code=%d stderr=%q", code, errw)
	}
}

func TestCSVOutput(t *testing.T) {
	code, out, _ := render(t, config{width: 40, csvOut: true}, goodTrace(t))
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	rows := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(rows) != 8 { // header + 7 events
		t.Errorf("csv rows = %d, want 8:\n%s", len(rows), out)
	}
	if !strings.HasPrefix(rows[0], "run,tenant,cycle,source,kind") {
		t.Errorf("csv header = %q", rows[0])
	}
}

// observeTrace carries scored MPU observations: two blocks with distinct
// forecast errors plus one error-free observation.
func observeTrace(t *testing.T) string {
	t.Helper()
	r := obs.New()
	r.SetRun("mRTS/2x2")
	r.Record(obs.Event{Cycle: 0, Source: obs.SourceSim, Kind: obs.KindRun, Detail: "policy=mRTS fabric=2x2"})
	r.Record(obs.Event{Cycle: 100, Source: obs.SourceMPU, Kind: obs.KindObserve, Block: "me", Kernel: "sad", E: 120, Err: 30})
	r.Record(obs.Event{Cycle: 200, Source: obs.SourceMPU, Kind: obs.KindObserve, Block: "me", Kernel: "sad", E: 110, Err: 10})
	r.Record(obs.Event{Cycle: 300, Source: obs.SourceMPU, Kind: obs.KindObserve, Block: "dbf", Kernel: "lf", E: 40})
	return r.JSONL()
}

func TestForecastErrorSummary(t *testing.T) {
	code, out, errw := render(t, config{width: 40, summary: true}, observeTrace(t))
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errw)
	}
	if !strings.Contains(out, "forecast |err| per observation") {
		t.Fatalf("summary lost the forecast rollup:\n%s", out)
	}
	// me: (30+10)/2 = 20.0; dbf: unscored events average to zero.
	for _, want := range []string{"me", "20.0 over 2 obs", "dbf", "0.0 over 1 obs"} {
		if !strings.Contains(out, want) {
			t.Errorf("rollup lost %q:\n%s", want, out)
		}
	}

	// Traces with no forecast errors (older recorders, perfect static
	// runs) must not grow a misleading all-zero rollup.
	code, out, _ = render(t, config{width: 40, summary: true}, goodTrace(t))
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if strings.Contains(out, "forecast |err|") {
		t.Errorf("error-free trace grew a forecast rollup:\n%s", out)
	}
}

func TestCSVErrColumn(t *testing.T) {
	code, out, _ := render(t, config{width: 40, csvOut: true}, observeTrace(t))
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	rows := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(rows[0], ",tb,err,profit") {
		t.Errorf("csv header lost the err column: %q", rows[0])
	}
	if !strings.Contains(out, "mpu,observe,me,,sad,,,,,0,0,120,0,0,30,") {
		t.Errorf("csv row lost the forecast error:\n%s", out)
	}
}

func TestZeroWidthClamped(t *testing.T) {
	// Degenerate -width values must not divide by zero or panic.
	if code, _, _ := render(t, config{width: 0}, goodTrace(t)); code != 0 {
		t.Errorf("width 0: exit = %d", code)
	}
	if code, _, _ := render(t, config{width: -5}, goodTrace(t)); code != 0 {
		t.Errorf("width -5: exit = %d", code)
	}
}

func TestSkipReportElidesLongTail(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 15; i++ {
		sb.WriteString("garbage\n")
	}
	sb.WriteString(goodTrace(t))
	_, _, errw := render(t, config{width: 40}, sb.String())
	if !strings.Contains(errw, "... (5 more)") {
		t.Errorf("stderr = %q, want elided tail for 15 skips", errw)
	}
}

// tenantTrace builds a hypervisor-style trace: two tenants interleaved in
// one run, with a migration and a repartition event.
func tenantTrace(t *testing.T) string {
	t.Helper()
	r := obs.New()
	r.SetRun("vfabric/4x3")
	r.SetTenant("t0")
	r.Record(obs.Event{Cycle: 0, Source: obs.SourceSim, Kind: obs.KindRun, Detail: "policy=mRTS prc=2 cg=1"})
	r.Record(obs.Event{Cycle: 10, Source: obs.SourceReconfig, Kind: obs.KindConfig, Path: "FG0", Latency: 90, Ready: 100})
	r.SetTenant("t1")
	r.Record(obs.Event{Cycle: 20, Source: obs.SourceReconfig, Kind: obs.KindConfig, Path: "FG0", Latency: 90, Ready: 110})
	r.SetTenant("t0")
	r.Record(obs.Event{Cycle: 300, Source: obs.SourceVFabric, Kind: obs.KindRepartition, Detail: "prc=[0,3) cg=[0,2)"})
	r.Record(obs.Event{Cycle: 300, Source: obs.SourceReconfig, Kind: obs.KindMigrate, Path: "FG0", Latency: 120, Ready: 420})
	r.SetTenant("")
	return r.JSONL()
}

func TestTenantLanesAndMarks(t *testing.T) {
	code, out, errw := render(t, config{width: 40}, tenantTrace(t))
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errw)
	}
	for _, want := range []string{"t0:FG0", "t1:FG0", "M", "-- hypervisor --", "repartition", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lost %q:\n%s", want, out)
		}
	}
}

func TestTenantSelector(t *testing.T) {
	code, out, _ := render(t, config{width: 40, tenantSel: "t1"}, tenantTrace(t))
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if strings.Contains(out, "-- hypervisor --") {
		t.Errorf("t1 view shows t0's repartition:\n%s", out)
	}
	// Only one tenant survives the filter, so lanes drop the prefix.
	if !strings.Contains(out, "FG0") {
		t.Errorf("t1's path lane missing:\n%s", out)
	}

	code, _, errw := render(t, config{width: 40, tenantSel: "nope"}, tenantTrace(t))
	if code == 0 || !strings.Contains(errw, `tenant "nope" not in trace (tenants: t0, t1)`) {
		t.Errorf("unknown tenant: code=%d stderr=%q", code, errw)
	}
}

func TestCSVTenantColumn(t *testing.T) {
	code, out, _ := render(t, config{width: 40, csvOut: true}, tenantTrace(t))
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "vfabric/4x3,t1,20,reconfig,config") {
		t.Errorf("csv rows lost the tenant column:\n%s", out)
	}
}
