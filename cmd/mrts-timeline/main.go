// Command mrts-timeline renders a decision trace (the JSONL stream written
// by mrts-sim/mrts-sweep -trace or returned by trace-capturing service
// jobs) into per-container Gantt-style timelines: one lane per data path
// showing configuration-port activity (streaming, retries, evictions) and
// one lane per kernel showing the ECU's execution-mode choices, with fault
// deliveries marked on a separate lane.
//
// Usage:
//
//	mrts-sim -prc 2 -cg 1 -trace run.jsonl
//	mrts-timeline run.jsonl
//	mrts-timeline -csv run.jsonl > run.csv
//	mrts-timeline -run 'mRTS/2x1' -width 100 run.jsonl
//
// Lane characters: '=' configuration streaming, 'R' retry backoff after a
// CRC failure, 'x' eviction, 'M' live migration; dispatch lanes use
// r/m/i/F for RISC/monoCG/intermediate/full-ISE executions; '!' marks a
// fault delivery and '#' a hypervisor repartition.
//
// Multi-tenant traces (the vfabric hypervisor) tag every event with its
// tenant: lanes are prefixed with the tenant name, repartitions get their
// own lane, and -tenant restricts rendering to one tenant's events.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"mrts/internal/arch"
	"mrts/internal/obs"
)

func main() {
	var cfg config
	flag.IntVar(&cfg.width, "width", 72, "timeline width in columns")
	flag.StringVar(&cfg.runSel, "run", "", "render only this run label (default: every run in the trace)")
	flag.StringVar(&cfg.tenantSel, "tenant", "", "render only this tenant's events (multi-tenant traces)")
	flag.BoolVar(&cfg.csvOut, "csv", false, "emit flat CSV rows instead of the text timeline")
	flag.BoolVar(&cfg.summary, "summary", false, "print only the per-run event summary, no lanes")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mrts-timeline [flags] <trace.jsonl | ->\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrts-timeline:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	os.Exit(run(cfg, in, os.Stdout, os.Stderr))
}

type config struct {
	width     int
	runSel    string
	tenantSel string
	csvOut    bool
	summary   bool
}

// run renders the trace read from in. It reads leniently: malformed or
// truncated lines (a crashed writer, a corrupted file) are skipped and
// reported to errw, and everything intact is still rendered. The return
// value is the process exit code.
func run(cfg config, in io.Reader, out, errw io.Writer) int {
	if cfg.width < 1 {
		cfg.width = 1
	}
	events, skipped, err := obs.ReadAllLenient(in)
	if err != nil {
		fmt.Fprintln(errw, "mrts-timeline:", err)
		return 1
	}
	if n := len(skipped); n > 0 {
		fmt.Fprintf(errw, "mrts-timeline: skipped %d malformed trace line(s): %s\n", n, joinLines(skipped))
	}
	if len(events) == 0 {
		fmt.Fprintln(errw, "mrts-timeline: trace holds no events")
		return 1
	}
	if cfg.tenantSel != "" {
		kept := events[:0]
		for _, ev := range events {
			if ev.Tenant == cfg.tenantSel {
				kept = append(kept, ev)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(errw, "mrts-timeline: tenant %q not in trace (tenants: %s)\n",
				cfg.tenantSel, strings.Join(tenantNames(events), ", "))
			return 1
		}
		events = kept
	}

	runs := groupRuns(events)
	if cfg.runSel != "" {
		if evs, ok := runs.byRun[cfg.runSel]; ok {
			runs = runGroups{order: []string{cfg.runSel}, byRun: map[string][]obs.Event{cfg.runSel: evs}}
		} else {
			fmt.Fprintf(errw, "mrts-timeline: run %q not in trace (runs: %s)\n", cfg.runSel, strings.Join(runs.order, ", "))
			return 1
		}
	}

	if cfg.csvOut {
		if err := writeCSV(out, runs); err != nil {
			fmt.Fprintln(errw, "mrts-timeline:", err)
			return 1
		}
		return 0
	}
	for i, r := range runs.order {
		if i > 0 {
			fmt.Fprintln(out)
		}
		renderRun(out, r, runs.byRun[r], cfg.width, cfg.summary)
	}
	return 0
}

// joinLines formats skipped line numbers compactly, eliding long tails.
func joinLines(lines []int) string {
	const maxShown = 10
	parts := make([]string, 0, maxShown+1)
	for i, n := range lines {
		if i == maxShown {
			parts = append(parts, fmt.Sprintf("... (%d more)", len(lines)-maxShown))
			break
		}
		parts = append(parts, strconv.Itoa(n))
	}
	return strings.Join(parts, ", ")
}

// tenantNames lists the distinct tenant tags of a trace in first-seen order.
func tenantNames(events []obs.Event) []string {
	seen := map[string]bool{}
	var names []string
	for _, ev := range events {
		if ev.Tenant != "" && !seen[ev.Tenant] {
			seen[ev.Tenant] = true
			names = append(names, ev.Tenant)
		}
	}
	return names
}

type runGroups struct {
	order []string
	byRun map[string][]obs.Event
}

func groupRuns(events []obs.Event) runGroups {
	g := runGroups{byRun: make(map[string][]obs.Event)}
	for _, ev := range events {
		if _, ok := g.byRun[ev.Run]; !ok {
			g.order = append(g.order, ev.Run)
		}
		g.byRun[ev.Run] = append(g.byRun[ev.Run], ev)
	}
	return g
}

// span is one rendered interval on a lane. Priority resolves overlaps
// within a column: faults and retries beat plain streaming.
type span struct {
	from, to arch.Cycles
	ch       byte
	prio     int
}

type lane struct {
	name  string
	spans []span
	note  string
}

func (l *lane) add(from, to arch.Cycles, ch byte, prio int) {
	if to < from {
		to = from
	}
	l.spans = append(l.spans, span{from: from, to: to, ch: ch, prio: prio})
}

func modeChar(mode string) byte {
	switch mode {
	case "RISC":
		return 'r'
	case "monoCG":
		return 'm'
	case "intermediate":
		return 'i'
	case "full-ISE":
		return 'F'
	}
	return '?'
}

func renderRun(w io.Writer, run string, events []obs.Event, width int, summaryOnly bool) {
	if run == "" {
		run = "(unlabelled)"
	}
	var meta string
	counts := map[string]int{}
	var maxCycle arch.Cycles
	// Scored MPU observations carry the absolute forecast error of the
	// prediction the selector acted on; roll them up per block so the
	// summary shows where prediction wins and loses.
	type errAgg struct {
		n   int
		abs int64
	}
	ferr := map[string]*errAgg{}
	var ferrAbs int64
	for _, ev := range events {
		counts[ev.Source+"/"+ev.Kind]++
		if ev.Cycle > maxCycle {
			maxCycle = ev.Cycle
		}
		if ev.Ready > maxCycle {
			maxCycle = ev.Ready
		}
		if ev.Kind == obs.KindRun && meta == "" {
			meta = ev.Detail
		}
		if ev.Source == obs.SourceMPU && ev.Kind == obs.KindObserve {
			a, ok := ferr[ev.Block]
			if !ok {
				a = &errAgg{}
				ferr[ev.Block] = a
			}
			a.n++
			a.abs += ev.Err
			ferrAbs += ev.Err
		}
	}
	if meta != "" {
		fmt.Fprintf(w, "run %s  (%s)\n", run, meta)
	} else {
		fmt.Fprintf(w, "run %s\n", run)
	}
	fmt.Fprintf(w, "  %d events over %.2f Mcycles\n", len(events), maxCycle.MCycles())
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "    %-20s %d\n", k, counts[k])
	}
	// Older traces predate the err field; a rollup of all-zero errors
	// would misread as perfect prediction, so it only prints when at
	// least one observation carries an error.
	if ferrAbs > 0 {
		fmt.Fprintf(w, "  forecast |err| per observation (executions), by block:\n")
		blocks := make([]string, 0, len(ferr))
		for b := range ferr {
			blocks = append(blocks, b)
		}
		sort.Strings(blocks)
		for _, b := range blocks {
			a := ferr[b]
			fmt.Fprintf(w, "    %-20s %.1f over %d obs\n", b, float64(a.abs)/float64(a.n), a.n)
		}
	}
	if summaryOnly || maxCycle == 0 {
		return
	}

	// Build lanes: reconfiguration per data path, dispatch per kernel, one
	// fault lane, and — in multi-tenant traces — one repartition lane. When
	// several tenants share the trace their lanes are kept apart by
	// prefixing names with the tenant tag.
	multiTenant := len(tenantNames(events)) > 1
	laneName := func(ev obs.Event, name string) string {
		if multiTenant && ev.Tenant != "" {
			return ev.Tenant + ":" + name
		}
		return name
	}
	paths := map[string]*lane{}
	kernels := map[string]*lane{}
	var faults, reparts lane
	faults.name = "faults"
	reparts.name = "repartition"
	get := func(m map[string]*lane, name string) *lane {
		l, ok := m[name]
		if !ok {
			l = &lane{name: name}
			m[name] = l
		}
		return l
	}
	for _, ev := range events {
		switch {
		case ev.Source == obs.SourceReconfig && ev.Kind == obs.KindConfig:
			get(paths, laneName(ev, ev.Path)).add(ev.Ready-ev.Latency, ev.Ready, '=', 1)
		case ev.Source == obs.SourceReconfig && ev.Kind == obs.KindRetry:
			get(paths, laneName(ev, ev.Path)).add(ev.Ready-ev.Latency, ev.Ready, 'R', 2)
		case ev.Source == obs.SourceReconfig && ev.Kind == obs.KindEvict:
			get(paths, laneName(ev, ev.Path)).add(ev.Cycle, ev.Cycle, 'x', 3)
		case ev.Source == obs.SourceReconfig && ev.Kind == obs.KindMigrate:
			get(paths, laneName(ev, ev.Path)).add(ev.Ready-ev.Latency, ev.Ready, 'M', 2)
		case ev.Source == obs.SourceECU && ev.Kind == obs.KindDispatch:
			get(kernels, laneName(ev, ev.Kernel)).add(ev.Cycle, ev.Cycle+ev.Latency, modeChar(ev.Mode), 1)
		case ev.Source == obs.SourceSim && ev.Kind == obs.KindFault:
			faults.add(ev.Cycle, ev.Cycle, '!', 3)
		case ev.Source == obs.SourceVFabric && ev.Kind == obs.KindRepartition:
			reparts.add(ev.Cycle, ev.Cycle, '#', 3)
		}
	}

	perCol := (int64(maxCycle) + int64(width) - 1) / int64(width)
	if perCol == 0 {
		perCol = 1
	}
	fmt.Fprintf(w, "  timeline: %d columns, %d cycles each ('=' config stream, R retry, x evict, M migrate; r/m/i/F exec modes; ! fault, # repartition)\n", width, perCol)

	render := func(l *lane, count int) {
		row := make([]byte, width)
		prios := make([]int, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range l.spans {
			c0 := int(int64(s.from) / perCol)
			c1 := int(int64(s.to) / perCol)
			if c0 >= width {
				c0 = width - 1
			}
			if c1 >= width {
				c1 = width - 1
			}
			for c := c0; c <= c1; c++ {
				if s.prio >= prios[c] {
					row[c] = s.ch
					prios[c] = s.prio
				}
			}
		}
		fmt.Fprintf(w, "  %-14s |%s| %d\n", l.name, row, count)
	}

	if len(paths) > 0 {
		fmt.Fprintf(w, "  -- reconfiguration (per data path) --\n")
		for _, name := range sortedKeys(paths) {
			render(paths[name], len(paths[name].spans))
		}
	}
	if len(kernels) > 0 {
		fmt.Fprintf(w, "  -- dispatch (per kernel) --\n")
		for _, name := range sortedKeys(kernels) {
			render(kernels[name], len(kernels[name].spans))
		}
	}
	if len(faults.spans) > 0 {
		fmt.Fprintf(w, "  -- faults --\n")
		render(&faults, len(faults.spans))
	}
	if len(reparts.spans) > 0 {
		fmt.Fprintf(w, "  -- hypervisor --\n")
		render(&reparts, len(reparts.spans))
	}
}

func sortedKeys(m map[string]*lane) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// writeCSV emits every event as one flat row, preserving trace order.
func writeCSV(w io.Writer, runs runGroups) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"run", "tenant", "cycle", "source", "kind", "block", "phase", "kernel", "ise",
		"path", "fabric", "mode", "level", "round", "e", "tf", "tb", "err",
		"profit", "latency", "ready", "detail",
	}); err != nil {
		return err
	}
	for _, run := range runs.order {
		for _, ev := range runs.byRun[run] {
			rec := []string{
				ev.Run,
				ev.Tenant,
				strconv.FormatInt(int64(ev.Cycle), 10),
				ev.Source, ev.Kind, ev.Block, ev.Phase, ev.Kernel, ev.ISE,
				ev.Path, ev.Fabric, ev.Mode,
				strconv.Itoa(ev.Level), strconv.Itoa(ev.Round),
				strconv.FormatInt(ev.E, 10),
				strconv.FormatInt(ev.TF, 10),
				strconv.FormatInt(ev.TB, 10),
				strconv.FormatInt(ev.Err, 10),
				strconv.FormatFloat(ev.Profit, 'g', -1, 64),
				strconv.FormatInt(int64(ev.Latency), 10),
				strconv.FormatInt(int64(ev.Ready), 10),
				ev.Detail,
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
