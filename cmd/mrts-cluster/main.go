// Command mrts-cluster runs one member of a sharded mrts-serve cluster:
// N of these processes, each configured with the same static member
// list, behave as one logical simulation service. A consistent-hash
// ring routes every job to an owning node by spec fingerprint (warm
// caches stay warm), each node replicates its journal records to a
// follower so a killed node's unfinished jobs are re-run elsewhere to
// byte-identical results, and idle nodes steal queued work from hot
// shards.
//
// Usage (three nodes on one host):
//
//	mrts-cluster -id a -addr :8341 -members a=http://127.0.0.1:8341,b=http://127.0.0.1:8342,c=http://127.0.0.1:8343 -dir /var/lib/mrts/a
//	mrts-cluster -id b -addr :8342 -members ... -dir /var/lib/mrts/b
//	mrts-cluster -id c -addr :8343 -members ... -dir /var/lib/mrts/c
//
// Submit to any member with cmd/mrts-submit (-addr takes a comma list
// for failover): non-owners redirect submissions to the owner, and
// status lookups fan out server-side, so every member answers for every
// job — including jobs adopted from a dead member.
//
// With -dir, the node keeps its own write-ahead journal in <dir>/journal
// and the replica streams received from peers in <dir>/replica-<peer>.
// On SIGINT/SIGTERM the node drains like mrts-serve.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"mrts/internal/cluster"
	"mrts/internal/netfault"
	"mrts/internal/service"
	"mrts/internal/service/journal"
)

func main() {
	var (
		id         = flag.String("id", "", "this node's member ID (must appear in -members)")
		addr       = flag.String("addr", ":8341", "listen address")
		membersArg = flag.String("members", "", "static member list: id=url,id=url,... (every node gets the same list)")
		dir        = flag.String("dir", "", "node data directory (journal + replica streams); empty disables durability")
		addrFile   = flag.String("addrfile", "", "write the actual listen address to this file once bound (tests)")

		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 256, "maximum queued jobs")
		cacheSize  = flag.Int("cache", 4096, "result cache capacity (points)")
		wcacheSize = flag.Int("wcache", 16, "workload cache capacity (built traces)")
		timeout    = flag.Duration("timeout", 10*time.Minute, "default per-job execution timeout")
		rate       = flag.Float64("rate", 0, "per-client submissions per second (0 = unlimited)")
		burst      = flag.Int("burst", 0, "per-client burst size (0 = ceil(rate))")
		drain      = flag.Duration("drain", 30*time.Second, "max time to wait for in-flight jobs on shutdown")

		probe        = flag.Duration("probe", time.Second, "peer liveness probe interval")
		probeTimeout = flag.Duration("probetimeout", 0, "per-attempt probe deadline (0 = probe interval)")
		deadAfter    = flag.Int("deadafter", 3, "consecutive failed probes before a peer is declared suspect")
		suspectGrace = flag.Duration("suspectgrace", 0, "how long a suspect peer keeps failing before it is declared dead and adopted from (0 = 2x probe interval)")
		steal        = flag.Duration("steal", 250*time.Millisecond, "work-steal poll interval (negative disables)")

		netfaultSpec = flag.String("netfault", "", "seeded network-fault injection for chaos runs, e.g. seed=42,drop=0.02,dup=0.02,partitions=1,horizon=30s (empty disables; see internal/netfault)")
	)
	flag.Parse()

	members, err := parseMembers(*membersArg)
	if err != nil {
		fatal(err)
	}

	var j *journal.Journal
	if *dir != "" {
		j, err = journal.Open(filepath.Join(*dir, "journal"))
		if err != nil {
			fatal(fmt.Errorf("journal: %w", err))
		}
		st := j.Stats()
		fmt.Fprintf(os.Stderr, "mrts-cluster[%s]: journal: %d records replayed, %d skipped\n",
			*id, st.Replayed, st.ReplaySkipped)
	}

	s := service.New(service.Options{
		Workers:           *workers,
		QueueDepth:        *queue,
		ResultCacheSize:   *cacheSize,
		WorkloadCacheSize: *wcacheSize,
		JobTimeout:        *timeout,
		Journal:           j,
		RatePerSec:        *rate,
		RateBurst:         *burst,
		Node:              *id,
	})
	defer s.Close()
	if n := s.RecoveredJobs(); n > 0 {
		fmt.Fprintf(os.Stderr, "mrts-cluster[%s]: re-running %d unfinished jobs from the journal\n", *id, n)
	}

	var nf *netfault.Network
	if *netfaultSpec != "" {
		seed, opts, err := netfault.ParseSpec(*netfaultSpec)
		if err != nil {
			fatal(err)
		}
		var ids []string
		for _, m := range members {
			ids = append(ids, m.ID)
		}
		opts.Members = ids
		nf, err = netfault.New(seed, opts)
		if err != nil {
			fatal(err)
		}
		nf.Start(time.Now())
		fmt.Fprintf(os.Stderr, "mrts-cluster[%s]: netfault seed %d active: %s\n",
			*id, seed, strings.Join(nf.Windows(), "; "))
	}

	node, err := cluster.New(cluster.Config{
		Self:          *id,
		Members:       members,
		Dir:           *dir,
		ProbeInterval: *probe,
		ProbeTimeout:  *probeTimeout,
		DeadAfter:     *deadAfter,
		SuspectGrace:  *suspectGrace,
		StealInterval: *steal,
		NetFault:      nf,
	}, s)
	if err != nil {
		fatal(err)
	}
	defer node.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal(err)
		}
	}
	srv := &http.Server{Handler: node.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "mrts-cluster[%s]: listening on %s (%d members)\n",
		*id, ln.Addr(), len(members))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "mrts-cluster[%s]: %s, draining (up to %s)\n", *id, sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "mrts-cluster[%s]: %v\n", *id, err)
		}
		_ = srv.Shutdown(ctx)
	}
}

// parseMembers parses "id=url,id=url,...".
func parseMembers(s string) ([]cluster.Member, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-members is required (id=url,id=url,...)")
	}
	var out []cluster.Member
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad member %q (want id=url)", part)
		}
		out = append(out, cluster.Member{ID: id, Addr: strings.TrimRight(url, "/")})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrts-cluster:", err)
	os.Exit(1)
}
