// Command mrts-sweep regenerates the fabric-combination sweeps of the
// paper's evaluation: Fig. 8 (state-of-the-art comparison), Fig. 9
// (heuristic vs. optimal selection) and Fig. 10 (speedup over RISC mode),
// plus the Section 5.4 overhead analysis.
//
// Usage:
//
//	mrts-sweep -fig 8            # one figure
//	mrts-sweep -fig all          # everything
//	mrts-sweep -fig 10 -frames 16 -maxprc 3 -maxcg 3
//	mrts-sweep -fig faults       # graceful-degradation sweep
//	mrts-sweep -fig tenants -tenants 4 -mix skewed  # hypervisor sweep
//	mrts-sweep -fig phase        # predictor comparison on dynamic control flow
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"mrts/internal/arch"
	"mrts/internal/batch"
	"mrts/internal/exp"
	"mrts/internal/fault"
	"mrts/internal/obs"
	"mrts/internal/sim"
	"mrts/internal/video"
	"mrts/internal/workload"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "figure to regenerate: "+strings.Join(exp.FigNames, "|")+"|all")
		frames     = flag.Int("frames", 16, "video frames to encode")
		seed       = flag.Uint64("seed", 1, "synthetic video seed")
		maxPRC     = flag.Int("maxprc", 4, "maximum PRC count of the sweep")
		maxCG      = flag.Int("maxcg", 3, "maximum CG-EDPE count of the sweep")
		chart      = flag.Bool("chart", false, "render ASCII charts instead of tables where available")
		faultSeed  = flag.Uint64("faultseed", 1, "fault-schedule seed of the faults sweep")
		tenants    = flag.Int("tenants", 4, "largest tenant count of the tenant sweep")
		mix        = flag.String("mix", "uniform", "tenant mix of the tenant sweep: "+strings.Join(exp.TenantMixes, "|"))
		workers    = flag.Int("workers", 0, "sweep worker-pool size (default GOMAXPROCS)")
		direct     = flag.Bool("direct", false, "bypass the batch engine: no point deduplication, no cross-point selection reuse (results are byte-identical either way)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (after the sweep) to this file")
		traceOut   = flag.String("trace", "", "write the decision traces of every point (JSONL, one run label per point) to this file; render with mrts-timeline (implies -direct: every point must actually run to be traced)")
	)
	flag.Parse()

	if *fig != "all" && !exp.ValidFig(*fig) {
		fatal(fmt.Errorf("unknown figure %q (valid: %s, all)", *fig, strings.Join(exp.FigNames, ", ")))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // materialise the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	base := workload.Options{
		Frames: *frames,
		Seed:   *seed,
		Video:  video.Options{SceneCuts: []int{*frames / 3, 2 * *frames / 3}},
	}
	w, err := workload.Build(base)
	if err != nil {
		fatal(err)
	}

	ctx := context.Background()
	if *workers != 0 {
		ctx = exp.WithWorkers(ctx, *workers)
	}
	eval := exp.DirectEvaluator(w)
	feval := exp.DirectFaultEvaluator(w)

	// The batch engine deduplicates repeated points and shares selection
	// work across sweep points; tracing needs every point to really run,
	// so it falls back to the direct evaluators.
	var eng *batch.Engine
	if !*direct && *traceOut == "" {
		eng = batch.New(w, 0)
		eval = eng.Evaluator()
		feval = eng.FaultEvaluator()
		// The tenant sweep builds its per-tenant instances itself; hand
		// it the engine's memo through the context.
		ctx = exp.WithSelectionMemo(ctx, eng.Memo())
	}

	start := time.Now()
	summary := func() {
		elapsed := time.Since(start)
		poolSize := *workers
		if poolSize <= 0 {
			poolSize = runtime.GOMAXPROCS(0)
		}
		if eng == nil {
			fmt.Fprintf(os.Stderr, "mrts-sweep: done in %.2fs (%d workers, direct evaluation)\n",
				elapsed.Seconds(), poolSize)
			return
		}
		st := eng.Stats()
		fmt.Fprintf(os.Stderr,
			"mrts-sweep: %d points in %.2fs (%.1f points/sec, %d workers); %d point replays, %d/%d selections seeded\n",
			st.Points, elapsed.Seconds(), float64(st.Points)/elapsed.Seconds(), poolSize,
			st.PointHits, st.SeedHits, st.SeedHits+st.SeedMisses)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		// Points run concurrently (ParMap), so each gets its own labelled
		// in-memory recorder; completed traces are appended whole under the
		// mutex, keeping every run's lines contiguous and monotonic.
		var mu sync.Mutex
		flush := func(rec *obs.Recorder) {
			mu.Lock()
			defer mu.Unlock()
			if err := rec.WriteJSONL(f); err != nil {
				fatal(err)
			}
		}
		eval = func(ctx context.Context, cfg arch.Config, p exp.Policy) (*sim.Report, error) {
			rec := obs.New()
			rec.SetRun(fmt.Sprintf("%s/%dx%d", p, cfg.NPRC, cfg.NCG))
			rep, err := exp.RunPointObserved(ctx, w, cfg, p, 0, fault.Options{}, rec)
			if err == nil {
				flush(rec)
			}
			return rep, err
		}
		feval = func(ctx context.Context, cfg arch.Config, p exp.Policy, seed uint64, fo fault.Options) (*sim.Report, error) {
			rec := obs.New()
			rec.SetRun(fmt.Sprintf("%s/%dx%d/fail%d+%d", p, cfg.NPRC, cfg.NCG, fo.FailPRC, fo.FailCG))
			rep, err := exp.RunPointObserved(ctx, w, cfg, p, seed, fo, rec)
			if err == nil {
				flush(rec)
			}
			return rep, err
		}
	}

	run := func(name string) {
		switch name {
		case "8":
			r, err := exp.Fig8(ctx, eval, *maxPRC, *maxCG)
			if err != nil {
				fatal(err)
			}
			if *chart {
				r.RenderChart(os.Stdout)
			} else {
				r.Render(os.Stdout)
			}
		case "9":
			r, err := exp.Fig9(ctx, eval, *maxPRC, *maxCG)
			if err != nil {
				fatal(err)
			}
			r.Render(os.Stdout)
		case "10":
			r, err := exp.Fig10(ctx, eval, min(*maxPRC, 3), *maxCG)
			if err != nil {
				fatal(err)
			}
			if *chart {
				r.RenderChart(os.Stdout)
			} else {
				r.Render(os.Stdout)
			}
		case "mix":
			for _, total := range []int{3, 5, 7} {
				r, err := exp.MixFrontier(ctx, eval, total)
				if err != nil {
					fatal(err)
				}
				r.Render(os.Stdout)
				fmt.Println()
			}
		case "shared":
			r, err := exp.Shared(ctx, w, arch.Config{NPRC: 4, NCG: 3})
			if err != nil {
				fatal(err)
			}
			r.Render(os.Stdout)
		case "overhead":
			r, err := exp.Overhead(w, arch.Config{NPRC: 2, NCG: 2})
			if err != nil {
				fatal(err)
			}
			r.Render(os.Stdout)
		case "faults":
			r, err := exp.Faults(ctx, feval, exp.FaultsConfig, *faultSeed)
			if err != nil {
				fatal(err)
			}
			r.Render(os.Stdout)
		case "tenants":
			r, err := exp.Tenants(ctx, exp.DirectWorkloads(), base,
				arch.Config{NPRC: *maxPRC, NCG: *maxCG}, *tenants, *mix)
			if err != nil {
				fatal(err)
			}
			r.Render(os.Stdout)
		case "phase":
			r, err := exp.Phase(ctx, exp.DirectWorkloads(), arch.Config{}, *seed)
			if err != nil {
				fatal(err)
			}
			r.Render(os.Stdout)
		default:
			fatal(fmt.Errorf("unknown figure %q (valid: %s, all)", name, strings.Join(exp.FigNames, ", ")))
		}
	}

	if *fig == "all" {
		for i, name := range []string{"8", "9", "10", "overhead", "shared"} {
			if i > 0 {
				fmt.Println()
			}
			run(name)
		}
		summary()
		return
	}
	run(*fig)
	summary()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrts-sweep:", err)
	os.Exit(1)
}
