// Command mrts-bench maintains BENCH_BASELINE.json, the committed
// performance baseline of the selection fast path, and checks fresh
// benchmark runs against it.
//
//	go run ./cmd/mrts-bench -write   # refresh the committed baseline
//	go run ./cmd/mrts-bench -check   # CI: fail on gross regressions
//
// The check is deliberately coarse — it fails only on >2x ns/op or
// allocs/op regressions — so it survives noisy shared CI runners while
// still catching accidental "reintroduced the allocation storm" or
// "quadratic loop snuck back in" classes of regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// defaultPattern selects the fast, deterministic micro/meso benches of the
// selection fast path; the figure-level benches are too slow and noisy for
// a CI guard.
const defaultPattern = "BenchmarkProfitFunction$|BenchmarkGreedySelection$|BenchmarkOptimalSelection$|" +
	"BenchmarkSelectionCached$|BenchmarkSelectionUncached$|BenchmarkSelectionObserved$|BenchmarkGreedyIncremental|" +
	"BenchmarkSelectorScalability|BenchmarkOptimalScalability|BenchmarkServiceThroughput$|" +
	"BenchmarkBatchSelection|BenchmarkSweepWallclock|BenchmarkPhasedPrediction"

type metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type baseline struct {
	Comment    string             `json:"_comment"`
	Pattern    string             `json:"pattern"`
	Benchtime  string             `json:"benchtime"`
	Benchmarks map[string]metrics `json:"benchmarks"`
}

func main() {
	var (
		write     = flag.Bool("write", false, "run the benchmarks and (re)write the baseline file")
		check     = flag.Bool("check", false, "run the benchmarks and compare against the baseline file")
		file      = flag.String("baseline", "BENCH_BASELINE.json", "baseline file path")
		pattern   = flag.String("bench", defaultPattern, "benchmark pattern to run")
		benchtime = flag.String("benchtime", "100ms", "go test -benchtime value (durations let go test pick a stable iteration count per bench)")
		factor    = flag.Float64("factor", 2.0, "failure threshold: fresh > factor * baseline")
	)
	flag.Parse()
	if *write == *check {
		fatal(fmt.Errorf("exactly one of -write or -check is required"))
	}

	fresh, err := runBenchmarks(*pattern, *benchtime)
	if err != nil {
		fatal(err)
	}
	if len(fresh) == 0 {
		fatal(fmt.Errorf("pattern %q matched no benchmarks", *pattern))
	}

	if *write {
		b := baseline{
			Comment: "Benchmark baseline for the CI regression guard; regenerate with: go run ./cmd/mrts-bench -write " +
				"(numbers are machine-dependent — refresh on the machine class CI uses)",
			Pattern:    *pattern,
			Benchtime:  *benchtime,
			Benchmarks: fresh,
		}
		out, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*file, append(out, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("mrts-bench: wrote %d benchmarks to %s\n", len(fresh), *file)
		return
	}

	raw, err := os.ReadFile(*file)
	if err != nil {
		fatal(fmt.Errorf("%w (generate it with: go run ./cmd/mrts-bench -write)", err))
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *file, err))
	}

	failures := 0
	for name, want := range base.Benchmarks {
		got, ok := fresh[name]
		if !ok {
			fmt.Printf("FAIL %s: in baseline but not produced by this run — renamed or deleted? "+
				"regenerate with: go run ./cmd/mrts-bench -write\n", name)
			failures++
			continue
		}
		// 100 ns of absolute slack so sub-microsecond benches are not
		// tripped by timer granularity on slow shared runners.
		if want.NsPerOp > 0 && got.NsPerOp > *factor*want.NsPerOp+100 {
			fmt.Printf("FAIL %s: %.1f ns/op vs baseline %.1f (>%.1fx)\n", name, got.NsPerOp, want.NsPerOp, *factor)
			failures++
		}
		// +1 alloc of slack so 0->1 or 1->2 jitter on tiny counts does
		// not trip the 2x rule.
		if got.AllocsPerOp > *factor*want.AllocsPerOp+1 {
			fmt.Printf("FAIL %s: %.0f allocs/op vs baseline %.0f (>%.1fx+1)\n", name, got.AllocsPerOp, want.AllocsPerOp, *factor)
			failures++
		}
	}
	for name := range fresh {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("note: %s has no baseline entry (add it with: go run ./cmd/mrts-bench -write)\n", name)
		}
	}
	if failures > 0 {
		fatal(fmt.Errorf("%d benchmark regression(s) against %s", failures, *file))
	}
	fmt.Printf("mrts-bench: %d benchmarks within %.1fx of %s\n", len(base.Benchmarks), *factor, *file)
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkGreedySelection-4   1000   6192 ns/op   224 B/op   3 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func runBenchmarks(pattern, benchtime string) (map[string]metrics, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchmem", "-benchtime", benchtime, "-count", "1", ".")
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	results := make(map[string]metrics)
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name, rest := m[1], m[2]
		mt := metrics{}
		fields := strings.Fields(rest)
		// Fields come in "value unit" pairs; custom metrics (hit-rate,
		// nodes, saved-frac) are skipped.
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q in line %q: %w", fields[i], line, err)
			}
			switch fields[i+1] {
			case "ns/op":
				mt.NsPerOp = v
			case "B/op":
				mt.BPerOp = v
			case "allocs/op":
				mt.AllocsPerOp = v
			}
		}
		results[name] = mt
	}
	return results, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrts-bench:", err)
	os.Exit(1)
}
