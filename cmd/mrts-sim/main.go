// Command mrts-sim runs one simulation: the H.264 encoder workload on a
// multi-grained reconfigurable processor with a chosen fabric budget and
// runtime policy, and prints the cycle accounting.
//
// Usage:
//
//	mrts-sim -prc 2 -cg 1 -policy mrts -frames 16
//	mrts-sim -phased -divergence 0.75 -predictor phase   # dynamic control flow
//
// Policies: mrts, rispp, morpheus, offline, optimal, risc.
// Predictors (mrts only): backprop (default), phase, decay.
package main

import (
	"flag"
	"fmt"
	"os"

	"mrts/internal/arch"
	"mrts/internal/ecu"
	"mrts/internal/exp"
	"mrts/internal/fault"
	"mrts/internal/mpu"
	"mrts/internal/obs"
	"mrts/internal/service/api"
	"mrts/internal/sim"
	"mrts/internal/video"
	"mrts/internal/workload"
)

func main() {
	var (
		prc       = flag.Int("prc", 2, "number of PRCs (fine-grained fabric)")
		cgN       = flag.Int("cg", 1, "number of CG-EDPEs (coarse-grained fabric)")
		policy    = flag.String("policy", "mrts", "runtime policy: mrts|rispp|morpheus|offline|optimal|risc")
		frames    = flag.Int("frames", 16, "video frames to encode")
		seed      = flag.Uint64("seed", 1, "synthetic video seed")
		sceneCut  = flag.Int("scenecut", 8, "frame of the scene cut (0 = none)")
		verbose   = flag.Bool("v", false, "print per-block and reconfiguration details")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON (for scripting)")
		outFile   = flag.String("o", "", "write the JSON report to this file (in addition to stdout output)")
		traceOut  = flag.String("trace", "", "write the decision trace (JSONL) to this file; render it with mrts-timeline")
		predictor = flag.String("predictor", "", "MPU predictor kind for the mrts policy: backprop|phase|decay (default backprop)")
		phased    = flag.Bool("phased", false, "run a dynamic control-flow workload instead of the encoder (see -divergence)")
		diverg    = flag.Float64("divergence", 0.5, "control-flow divergence of the -phased workload in [0, 1]")
	)
	flag.Parse()

	opts := workload.Options{Frames: *frames, Seed: *seed}
	if *phased {
		d := *diverg
		if d == 0 {
			d = -1 // explicit zero, not "use the default"
		}
		opts = workload.Options{Seed: *seed, Phased: &workload.PhasedOptions{Divergence: d}}
	} else if *sceneCut > 0 {
		opts.Video = video.Options{SceneCuts: []int{*sceneCut}}
	}
	w, err := workload.Build(opts)
	if err != nil {
		fatal(err)
	}

	cfg := arch.Config{NPRC: *prc, NCG: *cgN}
	pol, err := exp.ParsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	kind, err := mpu.ParseKind(*predictor)
	if err != nil {
		fatal(err)
	}
	if *predictor != "" && pol != exp.PolicyMRTS {
		fatal(fmt.Errorf("-predictor only applies to the mrts policy, not %q", pol))
	}

	var rec *obs.Recorder
	if *traceOut != "" {
		rec = obs.New()
		rec.SetRun(fmt.Sprintf("%s/%dx%d", pol, cfg.NPRC, cfg.NCG))
	}
	var rep *sim.Report
	if *predictor != "" {
		rep, err = exp.RunPointPredictor(nil, w, cfg, kind, rec)
	} else {
		rep, err = exp.RunPointObserved(nil, w, cfg, pol, 0, fault.Options{}, rec)
	}
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteJSONL(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mrts-sim: wrote %d trace events to %s\n", rec.Len(), *traceOut)
	}
	ref, err := exp.RunPoint(nil, w, arch.Config{}, exp.PolicyRISC)
	if err != nil {
		fatal(err)
	}

	if *outFile != "" || *jsonOut {
		r := api.NewReport(rep, ref)
		b, err := api.MarshalIndentReport(&r)
		if err != nil {
			fatal(err)
		}
		if *outFile != "" {
			if err := os.WriteFile(*outFile, b, 0o644); err != nil {
				fatal(err)
			}
		}
		if *jsonOut {
			os.Stdout.Write(b)
			return
		}
	}

	fmt.Printf("policy        %s\n", rep.Policy)
	fmt.Printf("fabric        %d PRC / %d CG-EDPE\n", cfg.NPRC, cfg.NCG)
	fmt.Printf("frames        %d  (iterations: %d, kernel executions: %d)\n",
		*frames, rep.Iterations, rep.Executions)
	fmt.Printf("total         %.2f Mcycles (%.1f ms @400MHz)\n",
		rep.TotalCycles.MCycles(), rep.TotalCycles.Millis())
	fmt.Printf("speedup       %.2fx vs RISC-mode (%.2f Mcycles)\n",
		rep.Speedup(ref), ref.TotalCycles.MCycles())
	fmt.Printf("exec modes    RISC %.1f%%  monoCG %.1f%%  intermediate %.1f%%  full-ISE %.1f%%\n",
		100*rep.ModeShare(ecu.RISC), 100*rep.ModeShare(ecu.MonoCG),
		100*rep.ModeShare(ecu.Intermediate), 100*rep.ModeShare(ecu.Full))
	fmt.Printf("overhead      %.3f Mcycles visible (%.2f%% of total)\n",
		rep.OverheadCycles.MCycles(), 100*float64(rep.OverheadCycles)/float64(rep.TotalCycles))
	if !rep.Forecast.Total.IsZero() {
		fmt.Printf("forecast      %s predictor: mean |err| %.1f executions over %d scored observations\n",
			rep.Forecast.Predictor, rep.Forecast.Total.MeanAbsE(), rep.Forecast.Total.Samples)
	}

	if *verbose {
		fmt.Printf("software      %.2f Mcycles, kernels %.2f Mcycles\n",
			rep.SoftwareCycles.MCycles(), rep.KernelCycles.MCycles())
		for _, fb := range []string{"me", "enc", "dbf"} {
			if c, ok := rep.BlockCycles[fb]; ok {
				fmt.Printf("block %-6s  %.2f Mcycles over %d iterations\n",
					fb, c.MCycles(), rep.BlockIterations[fb])
			}
		}
		rc := rep.Reconfig
		fmt.Printf("reconfig      FG %d (%.2f Mcycles busy), CG %d (%.3f Mcycles busy), evictions %d, monoCG loads %d\n",
			rc.FGReconfigs, rc.FGBusyCycles.MCycles(), rc.CGReconfigs, rc.CGBusyCycles.MCycles(),
			rc.Evictions, rc.MonoCGLoads)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrts-sim:", err)
	os.Exit(1)
}
