// Command mrts-submit runs simulations against a shared mrts-serve
// daemon instead of simulating in-process. A figure submission prints
// byte-identical output to the offline cmd/mrts-sweep for the same
// parameters — but repeated submissions are served from the daemon's
// result cache without re-simulation.
//
// Usage:
//
//	mrts-submit -fig 8                    # Fig. 8 via the daemon
//	mrts-submit -fig all                  # the full evaluation
//	mrts-submit -prc 2 -cg 1 -policy mrts # one simulation, JSON report
//	mrts-submit -stream -maxprc 2 -maxcg 2 # streamed per-point sweep
//	mrts-submit -metrics                  # the daemon's /metrics page
//
// Fault scenarios attach to single simulations and sweeps (-failprc,
// -failcg, -flapprc, -flapcg, -corruptfg, -corruptcg, -faultseed), and
// `-fig faults` regenerates the graceful-degradation sweep. Transient
// submission failures (daemon restarting, connection refused, HTTP
// 429/502/503/504) are retried up to -retries attempts with capped
// exponential backoff; when the daemon answers with a Retry-After hint
// (rate limited, queue full, draining) the client sleeps for the hinted
// duration instead, capped at the policy's maximum delay.
//
// `-fig tenants` regenerates the multi-tenant hypervisor sweep; -tenants
// bounds the largest tenant count and -mix picks the demand mix
// (uniform, skewed, or priority).
//
// The workload flags (-frames, -seed) and sweep bounds (-maxprc, -maxcg)
// default to the same values as cmd/mrts-sweep.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mrts/internal/service/api"
	"mrts/internal/service/client"
)

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8341", "mrts-serve base URL, or a comma list of cluster member URLs (failover)")
		fig     = flag.String("fig", "", "figure to regenerate: "+strings.Join(api.Figs, "|")+"|all (empty = single simulation)")
		prc     = flag.Int("prc", 2, "number of PRCs (single simulation)")
		cgN     = flag.Int("cg", 1, "number of CG-EDPEs (single simulation)")
		policy  = flag.String("policy", "mrts", "runtime policy (single simulation)")
		frames  = flag.Int("frames", 16, "video frames to encode")
		seed    = flag.Uint64("seed", 1, "synthetic video seed")
		maxPRC  = flag.Int("maxprc", 4, "maximum PRC count of sweeps")
		maxCG   = flag.Int("maxcg", 3, "maximum CG-EDPE count of sweeps")
		stream  = flag.Bool("stream", false, "stream an mRTS point sweep over /v1/sweep instead of submitting a job")
		timeout = flag.Duration("timeout", 15*time.Minute, "client-side wait timeout")
		poll    = flag.Duration("poll", 50*time.Millisecond, "job poll interval")
		outFile = flag.String("o", "", "also write the result (text or JSON report) to this file")
		metrics = flag.Bool("metrics", false, "print the daemon's /metrics page and exit")
		cancel  = flag.String("cancel", "", "cancel the job with this ID and exit")
		nowait  = flag.Bool("nowait", false, "submit without waiting; print the job ID")
		retries = flag.Int("retries", 3, "attempts per API call for transient daemon errors (1 = no retry)")
		hedge   = flag.Duration("hedge", 0, "hedged submission: race the next cluster member when the preferred one has not answered within this delay (0 disables; needs a comma list in -addr)")

		failPRC   = flag.Int("failprc", 0, "fault scenario: PRCs failing permanently")
		failCG    = flag.Int("failcg", 0, "fault scenario: CG-EDPEs failing permanently")
		flapPRC   = flag.Int("flapprc", 0, "fault scenario: PRCs failing transiently and recovering")
		flapCG    = flag.Int("flapcg", 0, "fault scenario: CG-EDPEs failing transiently and recovering")
		corruptFG = flag.Int("corruptfg", 0, "fault scenario: corrupted FG bitstream transfers")
		corruptCG = flag.Int("corruptcg", 0, "fault scenario: corrupted CG configuration transfers")
		faultSeed = flag.Uint64("faultseed", 1, "fault-schedule seed")
		horizonM  = flag.Float64("horizon", 0, "fault horizon in Mcycles (0 = a tenth of the RISC reference run)")

		tenants = flag.Int("tenants", 0, "largest tenant count of the tenant sweep (-fig tenants; 0 = daemon default)")
		mix     = flag.String("mix", "", "tenant mix of the tenant sweep: uniform|skewed|priority (empty = uniform)")
	)
	flag.Parse()

	ctx, stop := context.WithTimeout(context.Background(), *timeout)
	defer stop()
	c := newClient(*addr, *retries, *hedge)

	faults := &api.FaultSpec{
		Seed: *faultSeed, FailPRC: *failPRC, FailCG: *failCG,
		FlapPRC: *flapPRC, FlapCG: *flapCG,
		CorruptFG: *corruptFG, CorruptCG: *corruptCG,
		HorizonMCycles: *horizonM,
	}
	if *failPRC+*failCG+*flapPRC+*flapCG+*corruptFG+*corruptCG == 0 && *fig != "faults" {
		faults = nil // benign scenario: submit the plain spec
	}

	switch {
	case *metrics:
		text, err := c.Metrics(ctx)
		fatalIf(err)
		fmt.Print(text)
		return
	case *cancel != "":
		st, err := c.Cancel(ctx, *cancel)
		fatalIf(err)
		fmt.Printf("job %s: %s\n", st.ID, st.State)
		return
	}

	// The same workload cmd/mrts-sweep builds by default: scene cuts at
	// one and two thirds of the sequence.
	wl := api.WorkloadSpec{
		Frames:    *frames,
		Seed:      *seed,
		SceneCuts: []int{*frames / 3, 2 * *frames / 3},
	}

	if *stream {
		streamSweep(ctx, c, wl, faults, *maxPRC, *maxCG)
		return
	}

	var out string
	switch *fig {
	case "":
		spec := api.JobSpec{Type: api.JobSim, Workload: wl, PRC: *prc, CG: *cgN, Policy: *policy, Faults: faults}
		st := runJob(ctx, c, spec, *poll, *nowait)
		if st == nil {
			return
		}
		b, err := marshalReport(st)
		fatalIf(err)
		out = string(b)
	case "all":
		for i, name := range []string{"8", "9", "10", "overhead", "shared"} {
			if i > 0 {
				out += "\n"
			}
			st := runJob(ctx, c, figSpec(name, wl, nil, *maxPRC, *maxCG), *poll, *nowait)
			if st == nil {
				return
			}
			out += st.Result.Text
		}
	default:
		spec := figSpec(*fig, wl, faults, *maxPRC, *maxCG)
		if *fig == "tenants" {
			// Tenant bounds only apply to the tenant sweep; the daemon
			// rejects them on any other figure.
			spec.Tenants = *tenants
			spec.Mix = *mix
		}
		st := runJob(ctx, c, spec, *poll, *nowait)
		if st == nil {
			return
		}
		out = st.Result.Text
	}
	fmt.Print(out)
	if *outFile != "" {
		fatalIf(os.WriteFile(*outFile, []byte(out), 0o644))
	}
}

// jobClient is the slice of the client API mrts-submit uses; both the
// single-daemon client.Client and the failover client.Cluster satisfy
// it, so -addr can name one daemon or a comma list of cluster members.
type jobClient interface {
	Submit(ctx context.Context, spec api.JobSpec) (string, error)
	Wait(ctx context.Context, id string, interval time.Duration) (*api.JobStatus, error)
	Cancel(ctx context.Context, id string) (*api.JobStatus, error)
	Sweep(ctx context.Context, req api.SweepRequest, onEvent func(api.SweepEvent)) (*api.SweepEvent, error)
	Metrics(ctx context.Context) (string, error)
}

// newClient builds a plain client for one address or a failover client
// for a comma list of cluster member addresses. A positive hedge makes
// cluster submissions race the next member instead of waiting out a
// timeout on the preferred one (same Idempotency-Key, so at most one
// job is created however many attempts land).
func newClient(addr string, retries int, hedge time.Duration) jobClient {
	addrs := strings.Split(addr, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	if len(addrs) == 1 {
		c := client.New(addrs[0])
		c.Retry = client.RetryPolicy{MaxAttempts: retries}
		return c
	}
	cc := client.NewCluster(addrs)
	cc.Retry = client.RetryPolicy{MaxAttempts: retries}
	cc.Hedge = hedge
	return cc
}

func figSpec(name string, wl api.WorkloadSpec, faults *api.FaultSpec, maxPRC, maxCG int) api.JobSpec {
	return api.JobSpec{Type: api.JobFig, Workload: wl, Fig: name, MaxPRC: maxPRC, MaxCG: maxCG, Faults: faults}
}

// runJob submits and (unless nowait) waits; a nil return means the ID was
// printed and the caller should stop.
func runJob(ctx context.Context, c jobClient, spec api.JobSpec, poll time.Duration, nowait bool) *api.JobStatus {
	id, err := c.Submit(ctx, spec)
	fatalIf(err)
	if nowait {
		fmt.Println(id)
		return nil
	}
	st, err := c.Wait(ctx, id, poll)
	fatalIf(err)
	if st.State != api.StateDone {
		fatalIf(fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error))
	}
	fmt.Fprintf(os.Stderr, "mrts-submit: job %s done in %.3fs (cache: %d hits, %d misses)\n",
		st.ID, st.Result.ElapsedSec, st.Result.CacheHits, st.Result.CacheMisses)
	return st
}

// streamSweep runs the mRTS policy over the full fabric sweep through the
// streaming endpoint, printing each point as it completes. A fault
// scenario, when given, applies to every point.
func streamSweep(ctx context.Context, c jobClient, wl api.WorkloadSpec, faults *api.FaultSpec, maxPRC, maxCG int) {
	var points []api.Point
	for p := 0; p <= maxPRC; p++ {
		for cg := 0; cg <= maxCG; cg++ {
			if p == 0 && cg == 0 {
				continue
			}
			points = append(points, api.Point{PRC: p, CG: cg, Policy: "mrts"})
		}
	}
	final, err := c.Sweep(ctx, api.SweepRequest{Workload: wl, Points: points, Faults: faults}, func(ev api.SweepEvent) {
		src := "sim"
		if ev.Cached {
			src = "hit"
		}
		if ev.Error != "" {
			fmt.Printf("%d/%d  ERROR %s\n", ev.Point.PRC, ev.Point.CG, ev.Error)
			return
		}
		fmt.Printf("%d/%d  %10.2f Mcycles  %5.2fx  [%s]\n",
			ev.Point.PRC, ev.Point.CG, float64(ev.Report.TotalCycles)/1e6, ev.Report.Speedup, src)
	})
	fatalIf(err)
	fmt.Printf("sweep: %d points (%d failed) in %.3fs\n", final.Completed, final.Failed, final.ElapsedSec)
}

func marshalReport(st *api.JobStatus) ([]byte, error) {
	return api.MarshalIndentReport(st.Result.Report)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrts-submit:", err)
		os.Exit(1)
	}
}
