// Chaos: crash the mrts-serve daemon with SIGKILL mid-sweep and watch
// the write-ahead journal put every job back. The demo builds the real
// cmd/mrts-serve binary, runs it with -journal, submits a batch of
// jobs, kills the process before they finish, restarts it on the same
// journal and shows that every job completes with the result an
// uninterrupted daemon would have produced.
//
//	go run ./examples/chaos
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"mrts/internal/service/api"
	"mrts/internal/service/client"
)

func main() {
	tmp, err := os.MkdirTemp("", "mrts-chaos-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)
	journalDir := filepath.Join(tmp, "journal")

	// 1. Build the real daemon binary so SIGKILL hits the server itself,
	// not a `go run` wrapper that would swallow the signal.
	bin := filepath.Join(tmp, "mrts-serve")
	fmt.Println("building cmd/mrts-serve ...")
	build := exec.Command("go", "build", "-o", bin, "./cmd/mrts-serve")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		log.Fatal("build: ", err)
	}
	addr := freeAddr()

	start := func() *exec.Cmd {
		cmd := exec.Command(bin, "-addr", addr, "-workers", "2", "-journal", journalDir)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		return cmd
	}
	c := client.New("http://" + addr)
	c.Retry = client.RetryPolicy{MaxAttempts: 60, BaseDelay: 50 * time.Millisecond, MaxDelay: 250 * time.Millisecond}
	ctx := context.Background()

	// 2. First incarnation: submit a batch of figure and simulation jobs.
	fmt.Println("\n--- incarnation 1: submitting jobs ---")
	srv := start()
	waitHealthy(ctx, c)
	w := api.WorkloadSpec{Frames: 12, Seed: 1}
	specs := []api.JobSpec{
		{Type: api.JobFig, Workload: w, Fig: "8", MaxPRC: 3, MaxCG: 2},
		{Type: api.JobFig, Workload: w, Fig: "overhead"},
		{Type: api.JobSim, Workload: w, PRC: 2, CG: 1, Policy: "mrts"},
		{Type: api.JobSim, Workload: w, PRC: 1, CG: 2, Policy: "mrts"},
	}
	ids := make([]string, len(specs))
	for i, spec := range specs {
		id, err := c.Submit(ctx, spec)
		if err != nil {
			log.Fatal("submit: ", err)
		}
		ids[i] = id
		fmt.Printf("  accepted %s (%s %s)\n", id, spec.Type, spec.Fig)
	}

	// 3. Pull the plug mid-flight. SIGKILL: no drain, no cleanup, the
	// same thing a power cut or an OOM kill would do.
	time.Sleep(200 * time.Millisecond)
	fmt.Println("\n--- SIGKILL mid-sweep ---")
	_ = srv.Process.Kill()
	_, _ = srv.Process.Wait()
	if fi, err := os.Stat(filepath.Join(journalDir, "journal.jsonl")); err == nil {
		fmt.Printf("  journal survives the crash: %d bytes\n", fi.Size())
	}

	// 4. Second incarnation on the same journal: completed results come
	// back from the journal, unfinished jobs are re-enqueued and re-run
	// under their original IDs.
	fmt.Println("\n--- incarnation 2: replaying the journal ---")
	srv = start()
	defer func() { _ = srv.Process.Kill() }()
	waitHealthy(ctx, c)
	for i, id := range ids {
		st, err := c.Wait(ctx, id, 25*time.Millisecond)
		if err != nil {
			log.Fatalf("job %s lost after crash: %v", id, err)
		}
		fmt.Printf("  %s -> %s (spec %d)\n", id, st.State, i)
	}

	// 5. The recovered figure is byte-identical to a fresh, uninterrupted
	// run of the same job: deterministic jobs + journal replay means a
	// crash changes nothing about the science.
	recovered, err := c.Job(ctx, ids[0])
	if err != nil {
		log.Fatal(err)
	}
	rerunID, err := c.Submit(ctx, specs[0]) // same spec, fresh job
	if err != nil {
		log.Fatal(err)
	}
	rerun, err := c.Wait(ctx, rerunID, 25*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	same := recovered.Result != nil && rerun.Result != nil && recovered.Result.Text == rerun.Result.Text
	fmt.Printf("\nrecovered figure == uninterrupted figure: %v (%d bytes)\n",
		same, len(recovered.Result.Text))
	if !same {
		log.Fatal("crash recovery changed the output")
	}

	// 6. Finish with the graceful path for contrast: SIGTERM drains
	// in-flight work before the process exits.
	fmt.Println("\n--- SIGTERM: graceful drain ---")
	_ = srv.Process.Signal(syscall.SIGTERM)
	_, _ = srv.Process.Wait()
	fmt.Println("done: zero jobs lost across one crash and one drain")
}

func freeAddr() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitHealthy(ctx context.Context, c *client.Client) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := c.Healthz(ctx); err == nil {
			return
		}
		if time.Now().After(deadline) {
			log.Fatal("daemon never became healthy")
		}
		time.Sleep(25 * time.Millisecond)
	}
}
