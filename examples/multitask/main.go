// Multitask demonstrates run-time varying fabric budgets (paper Section 1:
// the reconfigurable fabric is shared among various tasks). The example
// drives the runtime system manually — trigger, executions, block end — so
// it can reserve fabric for a competing task in the middle of the run and
// show how the next ISE selection adapts to the shrunken budget.
//
//	go run ./examples/multitask
package main

import (
	"fmt"
	"log"

	"mrts/internal/arch"
	"mrts/internal/core"
	"mrts/internal/ise"
	"mrts/internal/mpu"
	"mrts/internal/trace"
	"mrts/internal/video"
	"mrts/internal/workload"
)

func main() {
	w, err := workload.Build(workload.Options{
		Frames: 6,
		Video:  video.Options{SceneCuts: nil},
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := arch.Config{NPRC: 2, NCG: 3}
	rts, err := core.New(cfg, core.Options{ChargeOverhead: true})
	if err != nil {
		log.Fatal(err)
	}
	rts.Reset()

	fmt.Printf("fabric budget: %d PRC / %d CG-EDPE\n", cfg.NPRC, cfg.NCG)
	fmt.Println("a competing task reserves 1 PRC + 2 CG-EDPEs from frame 3 on")

	var t arch.Cycles
	frame := -1
	for i := range w.Trace.Iterations {
		it := &w.Trace.Iterations[i]
		if it.Seq != frame {
			frame = it.Seq
			if frame == 3 {
				// The other task arrives: shrink our budget.
				// Reservations cannot displace pinned data paths,
				// so release the current selection first.
				rts.Controller().EvictAll()
				if err := rts.Controller().Reserve(1, 2); err != nil {
					log.Fatal(err)
				}
				fmt.Println("--- competing task arrived: budget now 1 PRC / 1 CG ---")
			}
		}

		blk := w.App.Block(it.Block)
		profile := w.Trace.ProfileFor(it.Block, it.Phase)
		visible, err := rts.OnTrigger(blk, it.Phase, profile, t)
		if err != nil {
			log.Fatal(err)
		}
		t += visible + it.Prologue

		if it.Block == "me" {
			var picks []string
			for _, k := range blk.Kernels {
				if e := rts.Selected(k.ID); e != nil {
					picks = append(picks, fmt.Sprintf("%s(%s)", e.ID, e.Grain()))
				}
			}
			fmt.Printf("frame %d: motion-estimation selection %v\n", it.Seq, picks)
		}

		// Execute the block's kernel schedule.
		var obs []mpu.Observation
		counts := map[ise.KernelID]int64{}
		for _, ev := range trace.Merge(it.Loads) {
			k := blk.Kernel(ev.Kernel)
			t += ev.Gap
			d := rts.Execute(k, t)
			t += d.Latency
			counts[ev.Kernel]++
		}
		for _, l := range it.Loads {
			obs = append(obs, mpu.Observation{Kernel: l.Kernel, E: counts[l.Kernel], TF: 0, TB: 0})
		}
		rts.OnBlockEnd(blk, it.Phase, profile, obs, t)
	}
	fmt.Printf("total: %.2f Mcycles for 6 frames under a varying budget\n", t.MCycles())
}
