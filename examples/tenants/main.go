// Tenants demonstrates the multi-tenant fabric hypervisor: two encoder
// instances with very different amounts of remaining work share one
// 4 PRC / 3 CG-EDPE fabric. The static hypervisor fixes the partition up
// front, so the short tenant's share sits idle after it finishes; the
// migrating hypervisor repartitions at epoch boundaries and live-migrates
// the long tenant's configured ISEs into the reclaimed containers.
//
//	go run ./examples/tenants
package main

import (
	"fmt"
	"log"

	"mrts/internal/arch"
	"mrts/internal/core"
	"mrts/internal/exp"
	"mrts/internal/vfabric"
	"mrts/internal/video"
	"mrts/internal/workload"
)

func main() {
	mk := func(frames int, seed uint64, cuts []int) *workload.Result {
		w, err := workload.Build(workload.Options{Frames: frames, Seed: seed,
			Video: video.Options{SceneCuts: cuts}})
		if err != nil {
			log.Fatal(err)
		}
		return w
	}
	short := mk(2, 3, nil)
	medium := mk(4, 2, nil)
	longA := mk(8, 1, []int{3, 6})
	longB := mk(8, 4, nil)

	phys := arch.Config{NPRC: 6, NCG: 4}
	// The short tenant sits at the low end of the container index space:
	// when it finishes, the windows behind it slide left — partially
	// overlapping their old shares — so the migrating run shows live
	// migration of configured data paths, not just window growth.
	tenants := []vfabric.Tenant{
		{Name: "short", App: short.App, Trace: short.Trace, Build: builder(short)},
		{Name: "longA", App: longA.App, Trace: longA.Trace, Build: builder(longA)},
		{Name: "medium", App: medium.App, Trace: medium.Trace, Build: builder(medium)},
		{Name: "longB", App: longB.App, Trace: longB.Trace, Build: builder(longB)},
	}

	fmt.Printf("physical fabric: %d PRCs / %d CG-EDPEs, tenants: short (2 frames), longA (8), medium (4), longB (8)\n\n",
		phys.NPRC, phys.NCG)
	for _, migrate := range []bool{false, true} {
		rep, err := vfabric.Run(tenants, vfabric.Options{Physical: phys, Migrate: migrate})
		if err != nil {
			log.Fatal(err)
		}
		mode := "static "
		if migrate {
			mode = "migrate"
		}
		fmt.Printf("%s  makespan %8.2f Mcycles  repartitions %d  paths migrated %d (%d cycles on the port)\n",
			mode, rep.Makespan.MCycles(), rep.Repartitions, rep.Migrations, rep.MigrationCycles)
		for _, t := range rep.Tenants {
			fmt.Printf("  tenant %-6s %8.2f Mcycles  final share prc=%s cg=%s\n",
				t.Name, t.Report.TotalCycles.MCycles(), t.Partition.PRC, t.Partition.CG)
		}
	}
}

// builder constructs the tenant's mRTS instance for a fabric budget.
func builder(w *workload.Result) func(arch.Config) (core.RuntimeSystem, error) {
	return func(cfg arch.Config) (core.RuntimeSystem, error) {
		return exp.NewPolicy(exp.PolicyMRTS, cfg, w.App, w.Trace)
	}
}
