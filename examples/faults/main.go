// Faults: inject container failures, an outage and bitstream corruptions
// into an mRTS run and watch the runtime system degrade gracefully instead
// of aborting. The same seed always produces the same schedule and the
// same report; a zero-rate scenario is bit-identical to a fault-free run.
//
//	go run ./examples/faults
package main

import (
	"fmt"
	"log"

	"mrts/internal/arch"
	"mrts/internal/core"
	"mrts/internal/ecu"
	"mrts/internal/fault"
	"mrts/internal/sim"
	"mrts/internal/video"
	"mrts/internal/workload"
)

func main() {
	// 1. Build the workload and the fault-free reference runs.
	w, err := workload.Build(workload.Options{
		Frames: 8,
		Video:  video.Options{SceneCuts: []int{4}},
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := arch.Config{NPRC: 2, NCG: 2}
	rts, err := core.New(cfg, core.Options{ChargeOverhead: true})
	if err != nil {
		log.Fatal(err)
	}
	clean, err := sim.Run(w.App, w.Trace, rts)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := sim.RunRISC(w.App, w.Trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabric %s, healthy: %.2f Mcycles (%.2fx over RISC)\n\n",
		cfg, clean.TotalCycles.MCycles(), clean.Speedup(ref))

	// 2. Draw a seeded fault scenario: one PRC and one CG-EDPE fail
	//    permanently, another CG-EDPE flaps (fails and recovers), and two
	//    CG bitstream corruptions force configuration retries. Failure
	//    times are spread over the first half of the healthy run.
	opts := fault.Options{
		FailPRC:   1,
		FailCG:    1,
		FlapCG:    1,
		CorruptCG: 2,
		Horizon:   clean.TotalCycles / 2,
	}
	sched := fault.MustSchedule(42, opts)
	fmt.Printf("scenario (seed %d): %d faults scheduled (incl. corruptions)\n",
		sched.Seed(), sched.Len())
	for _, ev := range sched.Events() {
		fmt.Printf("  %v\n", ev)
	}
	fmt.Println()

	// 3. Replay the same trace with the schedule interleaved. The run
	//    completes: the ECU falls back through intermediate ISEs, the
	//    monoCG-Extension and RISC mode, and mRTS re-selects over the
	//    surviving fabric at every fault event.
	rep, err := sim.RunOpts(w.App, w.Trace, rts, sim.Options{Faults: sched})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("faulted:  %.2f Mcycles (%.2fx over RISC, %.0f%% slower than healthy)\n",
		rep.TotalCycles.MCycles(), rep.Speedup(ref),
		100*(float64(rep.TotalCycles)/float64(clean.TotalCycles)-1))
	f := rep.Fault
	fmt.Printf("faults:   %d events, %d units failed, %d recovered\n",
		f.Events, f.UnitsFailed, f.UnitsRecovered)
	fmt.Printf("port:     %d CRC failures, %d retries, %d cycles of backoff\n",
		f.CRCFailures, f.Retries, f.RetryCycles)
	fmt.Printf("reaction: %d re-selections, %d invalidations, %d ISEs degraded\n",
		f.Reselections, f.Invalidations, f.Degradations)
	fmt.Printf("dispatch: %.1f%% full-ISE, %.1f%% intermediate, %.1f%% monoCG, %.1f%% RISC\n\n",
		100*rep.ModeShare(ecu.Full), 100*rep.ModeShare(ecu.Intermediate),
		100*rep.ModeShare(ecu.MonoCG), 100*rep.ModeShare(ecu.RISC))

	// 4. Determinism: the same seed replays byte-for-byte.
	again, err := sim.RunOpts(w.App, w.Trace, rts, sim.Options{Faults: fault.MustSchedule(42, opts)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay with the same seed: %.2f Mcycles, identical = %v\n",
		again.TotalCycles.MCycles(), again.TotalCycles == rep.TotalCycles)
}
