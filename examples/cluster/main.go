// Cluster: run three mrts-cluster nodes as one logical service, watch
// submissions route to owners by spec fingerprint, SIGKILL one node
// mid-flight, and verify that its follower adopts and re-runs every
// unfinished job to byte-identical results — zero jobs lost.
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"mrts/internal/service/api"
	"mrts/internal/service/client"
)

func main() {
	tmp, err := os.MkdirTemp("", "mrts-cluster-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	// 1. Build the real node binary so SIGKILL hits the node itself.
	bin := filepath.Join(tmp, "mrts-cluster")
	fmt.Println("building cmd/mrts-cluster ...")
	build := exec.Command("go", "build", "-o", bin, "./cmd/mrts-cluster")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		log.Fatal("build: ", err)
	}

	// 2. Three members on one host, all configured with the same list.
	ids := []string{"a", "b", "c"}
	addrs := make([]string, len(ids))
	var memberList []string
	for i, id := range ids {
		addrs[i] = freeAddr()
		memberList = append(memberList, fmt.Sprintf("%s=http://%s", id, addrs[i]))
	}
	members := strings.Join(memberList, ",")

	procs := make(map[string]*exec.Cmd, len(ids))
	start := func(i int) {
		id := ids[i]
		cmd := exec.Command(bin,
			"-id", id, "-addr", addrs[i], "-members", members,
			"-dir", filepath.Join(tmp, id), "-workers", "2",
			"-probe", "100ms", "-deadafter", "2", "-steal", "50ms")
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		procs[id] = cmd
	}
	for i := range ids {
		start(i)
	}
	defer func() {
		for _, p := range procs {
			_ = p.Process.Kill()
		}
	}()

	urls := make([]string, len(addrs))
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	cc := client.NewCluster(urls)
	cc.Retry = client.RetryPolicy{MaxAttempts: 60, BaseDelay: 50 * time.Millisecond, MaxDelay: 250 * time.Millisecond}
	ctx := context.Background()
	waitHealthy(ctx, cc)
	fmt.Printf("\n--- 3-node cluster up: %s ---\n", members)

	// 3. Submit a batch; the ring spreads ownership across the members.
	w := api.WorkloadSpec{Frames: 12, Seed: 1}
	specs := []api.JobSpec{
		{Type: api.JobFig, Workload: w, Fig: "8", MaxPRC: 3, MaxCG: 2},
		{Type: api.JobFig, Workload: w, Fig: "overhead"},
		{Type: api.JobSim, Workload: w, PRC: 2, CG: 1, Policy: "mrts"},
		{Type: api.JobSim, Workload: w, PRC: 1, CG: 2, Policy: "mrts"},
		{Type: api.JobSim, Workload: w, PRC: 3, CG: 1, Policy: "mrts"},
		{Type: api.JobSim, Workload: api.WorkloadSpec{Frames: 12, Seed: 2}, PRC: 2, CG: 2, Policy: "mrts"},
	}
	ids2 := make([]string, len(specs))
	for i, spec := range specs {
		id, err := cc.Submit(ctx, spec)
		if err != nil {
			log.Fatal("submit: ", err)
		}
		ids2[i] = id
		fmt.Printf("  accepted %s (%s %s)\n", id, spec.Type, spec.Fig)
	}

	// 4. SIGKILL one member while work is still in flight. Its follower
	// holds the replicated journal records and adopts the orphans.
	time.Sleep(150 * time.Millisecond)
	victim := "b"
	fmt.Printf("\n--- SIGKILL node %s mid-flight ---\n", victim)
	_ = procs[victim].Process.Kill()
	_, _ = procs[victim].Process.Wait()
	delete(procs, victim)

	// 5. Every job still completes, served by the survivors.
	for i, id := range ids2 {
		st, err := cc.Wait(ctx, id, 25*time.Millisecond)
		if err != nil {
			log.Fatalf("job %s lost after node kill: %v", id, err)
		}
		fmt.Printf("  %s -> %s (spec %d)\n", id, st.State, i)
		if st.State != api.StateDone {
			log.Fatalf("job %s finished %s: %s", id, st.State, st.Error)
		}
	}

	// 6. Determinism check: a fresh run of spec 0 on the degraded
	// cluster reproduces the same bytes.
	orig, err := cc.Job(ctx, ids2[0])
	if err != nil {
		log.Fatal(err)
	}
	rerunID, err := cc.Submit(ctx, specs[0])
	if err != nil {
		log.Fatal(err)
	}
	rerun, err := cc.Wait(ctx, rerunID, 25*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	same := orig.Result != nil && rerun.Result != nil && orig.Result.Text == rerun.Result.Text
	fmt.Printf("\nfigure after node kill == fresh run: %v (%d bytes)\n", same, len(orig.Result.Text))
	if !same {
		log.Fatal("node failure changed the output")
	}
	fmt.Println("done: zero jobs lost across one node kill")
}

func freeAddr() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitHealthy(ctx context.Context, cc *client.Cluster) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := cc.Healthz(ctx); err == nil {
			return
		}
		if time.Now().After(deadline) {
			log.Fatal("cluster never became healthy")
		}
		time.Sleep(25 * time.Millisecond)
	}
}
