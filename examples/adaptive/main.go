// Adaptive demonstrates the Monitoring & Prediction Unit: the trigger
// instructions embedded in the binary carry forecasts from an offline
// profiling run on *different* content, so at deployment they are stale;
// the MPU's error back-propagation pulls them towards the observed
// behaviour, frame by frame, and re-adapts after every scene cut.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"mrts/internal/arch"
	"mrts/internal/core"
	"mrts/internal/h264"
	"mrts/internal/ise"
	"mrts/internal/mpu"
	"mrts/internal/sim"
	"mrts/internal/trace"
	"mrts/internal/video"
	"mrts/internal/workload"
)

func main() {
	// Deployment content with two hard scene cuts; the profile forecasts
	// come from a separate generic profiling sequence (ProfileSeed).
	w, err := workload.Build(workload.Options{
		Frames: 12,
		Seed:   5,
		Video:  video.Options{SceneCuts: []int{4, 8}},
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := arch.Config{NPRC: 2, NCG: 2}
	rts, err := core.New(cfg, core.Options{ChargeOverhead: true})
	if err != nil {
		log.Fatal(err)
	}
	rts.Reset()

	// Drive the runtime system manually so we can watch the forecast of
	// the deblocking filter kernel before each trigger instruction.
	filt := ise.KernelID(h264.KernelFilt)
	fmt.Println("deblocking filter: profile forecast vs MPU forecast vs actual executions")
	fmt.Printf("%6s %6s %10s %10s %10s %10s\n", "frame", "phase", "profile", "forecast", "actual", "error")

	var t arch.Cycles
	for i := range w.Trace.Iterations {
		it := &w.Trace.Iterations[i]
		blk := w.App.Block(it.Block)
		profile := w.Trace.ProfileFor(it.Block, it.Phase)

		if it.Block == "dbf" {
			var prof, fore ise.Trigger
			for _, tr := range profile {
				if tr.Kernel == filt {
					prof = tr
					fore = rts.Predictor().Forecast("dbf#"+it.Phase, tr)
				}
			}
			var actual int64
			for _, l := range it.Loads {
				if l.Kernel == filt {
					actual = l.E
				}
			}
			errPct := 100 * float64(fore.E-actual) / float64(actual)
			fmt.Printf("%6d %6s %10d %10d %10d %+9.1f%%\n",
				it.Seq, it.Phase, prof.E, fore.E, actual, errPct)
		}

		visible, err := rts.OnTrigger(blk, it.Phase, profile, t)
		if err != nil {
			log.Fatal(err)
		}
		t += visible + it.Prologue
		counts := map[ise.KernelID]int64{}
		for _, ev := range trace.Merge(it.Loads) {
			k := blk.Kernel(ev.Kernel)
			t += ev.Gap
			d := rts.Execute(k, t)
			t += d.Latency
			counts[ev.Kernel]++
		}
		var obs []mpu.Observation
		for _, l := range it.Loads {
			obs = append(obs, mpu.Observation{Kernel: l.Kernel, E: counts[l.Kernel]})
		}
		rts.OnBlockEnd(blk, it.Phase, profile, obs, t)
	}

	// End-to-end comparison against static forecasts.
	ref, err := sim.RunRISC(w.App, w.Trace)
	if err != nil {
		log.Fatal(err)
	}
	withMPU, err := sim.Run(w.App, w.Trace, rts)
	if err != nil {
		log.Fatal(err)
	}
	static, err := core.New(cfg, core.Options{
		ChargeOverhead: true,
		MPU:            []mpu.Option{mpu.Disabled()},
		Name:           "mRTS (static forecasts)",
	})
	if err != nil {
		log.Fatal(err)
	}
	withoutMPU, err := sim.Run(w.App, w.Trace, static)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nend to end (%d PRC / %d CG): MPU %.2f Mcycles (%.2fx) vs static forecasts %.2f Mcycles (%.2fx)\n",
		cfg.NPRC, cfg.NCG,
		withMPU.TotalCycles.MCycles(), withMPU.Speedup(ref),
		withoutMPU.TotalCycles.MCycles(), withoutMPU.Speedup(ref))
	fmt.Println("(with phase-aware trigger instructions the static forecasts are already")
	fmt.Println(" close; the MPU's value is the shrinking forecast error above)")
}
