// Codec demonstrates the workload substrate on its own: the simplified
// H.264 encoder compresses synthetic 4:2:0 video into a real bitstream and
// the decoder reconstructs every frame bit-exactly against the encoder's
// reference — the property that keeps the kernel-invocation counts the
// runtime-system experiments rely on honest.
//
//	go run ./examples/codec
package main

import (
	"bytes"
	"fmt"
	"log"

	"mrts/internal/h264"
	"mrts/internal/video"
)

func main() {
	const w, h, frames = 176, 144, 8

	gen, err := video.NewGenerator(w, h, 42, video.Options{SceneCuts: []int{4}})
	if err != nil {
		log.Fatal(err)
	}
	enc, err := h264.NewEncoder(w, h, h264.Config{QP: 24})
	if err != nil {
		log.Fatal(err)
	}
	dec, err := h264.NewDecoder(w, h)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("encoding %d QCIF frames (QP 24) and decoding them back\n\n", frames)
	fmt.Printf("%6s %6s %6s %6s %9s %7s %7s  %s\n",
		"frame", "intra", "inter", "skip", "bytes", "PSNR", "sad/MB", "bit-exact")

	var totalBits int64
	for i := 0; i < frames; i++ {
		src := gen.Next()
		st, err := enc.EncodeFrame(src)
		if err != nil {
			log.Fatal(err)
		}
		decoded, err := dec.DecodeFrame(st.Stream)
		if err != nil {
			log.Fatal(err)
		}
		exact := bytes.Equal(decoded.Y, enc.Reconstructed().Y) &&
			bytes.Equal(decoded.Cb, enc.Reconstructed().Cb) &&
			bytes.Equal(decoded.Cr, enc.Reconstructed().Cr)
		mbs := (w / 16) * (h / 16)
		fmt.Printf("%6d %6d %6d %6d %9d %7.2f %7.1f  %v\n",
			i, st.Intra, st.Inter, st.Skip, len(st.Stream), st.PSNR,
			float64(st.Counts[h264.KernelSAD])/float64(mbs), exact)
		if !exact {
			log.Fatal("decoder does not match the encoder reconstruction")
		}
		totalBits += st.Bits
	}
	fmt.Printf("\ntotal %d bits (%.1f kbit/frame); every frame decoded bit-exactly\n",
		totalBits, float64(totalBits)/frames/1000)
	fmt.Println("the per-frame kernel counts above (e.g. SAD per macroblock) are what")
	fmt.Println("the trigger instructions forecast and the mRTS selector acts on")
}
