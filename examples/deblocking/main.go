// Deblocking reproduces the paper's motivational case study (Section 2) as
// a program: the H.264 deblocking filter kernel with three ISEs — pure-FG,
// pure-CG and multi-grained — whose Performance Improvement Factor (Eq. 1)
// dominates in different execution-count regions, and a demonstration that
// the mRTS selector indeed picks a different ISE as the forecast changes.
//
//	go run ./examples/deblocking
package main

import (
	"fmt"
	"log"

	"mrts/internal/ise"
	"mrts/internal/iselib"
	"mrts/internal/profit"
	"mrts/internal/selector"
)

func main() {
	k := iselib.CaseStudyKernel()
	blk := iselib.CaseStudyBlock()

	fmt.Println("Case study: H.264 deblocking filter with three ISEs")
	fmt.Printf("RISC-mode latency: %d cycles/execution\n\n", k.RISCLatency)
	for i, e := range k.ISEs {
		fmt.Printf("ISE-%d (%s): %d data paths, full latency %d cycles, reconfiguration %.3f ms\n",
			i+1, e.Grain(), e.NumDataPaths(), e.FullLatency(),
			e.TotalReconfigCycles().Millis())
	}

	// Part 1: the pif regions (paper Fig. 1).
	fmt.Println("\nPerformance Improvement Factor by execution count:")
	fmt.Printf("%10s %9s %9s %9s  %s\n", "executions", "ISE-1", "ISE-2", "ISE-3", "best")
	for _, e := range []int64{100, 500, 1000, 1600, 2000, 2800, 4000, 8000} {
		best, bestPIF := 0, -1.0
		var pifs [3]float64
		for i, ext := range k.ISEs {
			pifs[i] = profit.PIF(k, ext, e)
			if pifs[i] > bestPIF {
				best, bestPIF = i+1, pifs[i]
			}
		}
		fmt.Printf("%10d %9.2f %9.2f %9.2f  ISE-%d\n", e, pifs[0], pifs[1], pifs[2], best)
	}

	// Part 2: the run-time selector reacts to the forecast (paper
	// Fig. 2's consequence). The same kernel, three different trigger
	// forecasts, a fabric with 2 PRCs and 2 CG-EDPEs.
	fmt.Println("\nmRTS selection under different trigger forecasts (2 PRC / 2 CG):")
	for _, tc := range []struct {
		name string
		e    int64
	}{
		{"calm frame", 300},
		{"busy frame", 2200},
		{"scene cut", 12000},
	} {
		res, err := selector.Greedy(selector.Request{
			Block: blk,
			Triggers: []ise.Trigger{{
				Kernel: k.ID, E: tc.e, TF: 2000, TB: 300,
			}},
			Fabric: ise.EmptyFabric{PRC: 2, CG: 2},
			Model:  profit.Multigrained,
		})
		if err != nil {
			log.Fatal(err)
		}
		choice := "none (RISC mode)"
		if sel := res.ByKernel(k.ID); sel != nil {
			choice = fmt.Sprintf("%s (%s, %d cycles/execution)",
				sel.ID, sel.Grain(), sel.FullLatency())
		}
		fmt.Printf("  %-12s e=%6d -> %s\n", tc.name, tc.e, choice)
	}
}
