// Quickstart: encode synthetic video, replay the workload on a
// multi-grained reconfigurable processor with 2 PRCs and 2 CG-EDPEs under
// the mRTS runtime system, and print the speedup over RISC-mode execution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mrts/internal/arch"
	"mrts/internal/core"
	"mrts/internal/ecu"
	"mrts/internal/sim"
	"mrts/internal/video"
	"mrts/internal/workload"
)

func main() {
	// 1. Build the workload: the instrumented H.264 encoder runs over
	//    deterministic synthetic video and emits a trace of functional-
	//    block iterations with trigger-instruction forecasts.
	w, err := workload.Build(workload.Options{
		Frames: 8,
		Video:  video.Options{SceneCuts: []int{4}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d frames, %d block iterations, %d kernels\n",
		len(w.Frames), len(w.Trace.Iterations), len(w.App.KernelIDs()))

	// 2. Create the runtime system for a fabric budget of 2 Partially
	//    Reconfigurable Containers and 2 CG-EDPEs.
	cfg := arch.Config{NPRC: 2, NCG: 2}
	rts, err := core.New(cfg, core.Options{ChargeOverhead: true})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Replay the trace on the architecture simulator, once under mRTS
	//    and once in pure RISC mode as the reference.
	rep, err := sim.Run(w.App, w.Trace, rts)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := sim.RunRISC(w.App, w.Trace)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report.
	fmt.Printf("fabric:   %d PRC / %d CG-EDPE\n", cfg.NPRC, cfg.NCG)
	fmt.Printf("RISC:     %.2f Mcycles\n", ref.TotalCycles.MCycles())
	fmt.Printf("mRTS:     %.2f Mcycles  -> %.2fx speedup\n",
		rep.TotalCycles.MCycles(), rep.Speedup(ref))
	fmt.Printf("dispatch: %.1f%% full-ISE, %.1f%% intermediate, %.1f%% monoCG, %.1f%% RISC\n",
		100*rep.ModeShare(ecu.Full), 100*rep.ModeShare(ecu.Intermediate),
		100*rep.ModeShare(ecu.MonoCG), 100*rep.ModeShare(ecu.RISC))
	st := rts.Stats()
	fmt.Printf("selector: %d selections, %d profit evaluations, %.0f cycles/selection\n",
		st.Selections, st.Evaluations,
		float64(st.OverheadTotal)/float64(st.Selections))
}
