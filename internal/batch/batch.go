// Package batch is the batch sweep-evaluation engine: it wraps the
// experiment harness's point evaluators (exp.Evaluator, exp.FaultEvaluator)
// with two layers of cross-point reuse that leave every simulated cycle
// untouched:
//
//   - a point-level report memo, deduplicating identical (config, policy,
//     seed, fault-scenario) evaluations across figures and concurrent
//     sweeps (the "-fig all" pipeline re-evaluates the RISC reference and
//     overlapping combinations many times), with singleflight semantics so
//     racing workers share one simulation;
//   - a workload-wide selection memo (selector.Memo) attached to every
//     greedy-selector policy the evaluators build, so the ISE selection
//     computed at one sweep point seeds neighbouring points whose selector
//     inputs coincide once free capacity is clamped at the block's demand
//     bound (see selector.DemandBound).
//
// Both layers replay exact, fingerprint-keyed results, so batch output is
// byte-identical to direct evaluation for every policy, with and without
// faults — pinned by the identity tests in this package.
package batch

import (
	"context"
	"sync"
	"sync/atomic"

	"mrts/internal/arch"
	"mrts/internal/exp"
	"mrts/internal/fault"
	"mrts/internal/selector"
	"mrts/internal/sim"
	"mrts/internal/workload"
)

// Stats is a snapshot of an Engine's reuse counters.
type Stats struct {
	// Points counts point evaluations requested; PointHits of those were
	// replayed from the point-level report memo (or joined an identical
	// in-flight evaluation) instead of simulating.
	Points    int64
	PointHits int64
	// SeedHits / SeedMisses are the shared selection memo's traffic: the
	// selections answered across policy instances and sweep points
	// without re-running the greedy algorithm, versus computed for real.
	SeedHits   uint64
	SeedMisses uint64
}

// pointKey identifies one simulation exactly: the fabric budget, the
// policy, and the fault scenario with its seed. Simulations are
// deterministic functions of this key (for a fixed workload), which is
// what makes the report memo sound.
type pointKey struct {
	cfg  arch.Config
	pol  exp.Policy
	seed uint64
	fo   fault.Options
}

// pointEntry is a singleflight slot: the first goroutine to claim the key
// runs the simulation inside once; concurrent requesters block on it and
// share the result.
type pointEntry struct {
	once sync.Once
	rep  *sim.Report
	err  error
}

// Engine evaluates sweep points over one workload with cross-point reuse.
// It is safe for concurrent use; one Engine is meant to serve a whole
// sweep job (all figures, all policies). Reports returned by its
// evaluators are shared across callers and must be treated as read-only —
// the aggregation code in internal/exp already does.
type Engine struct {
	w    *workload.Result
	memo *selector.Memo

	mu     sync.Mutex
	points map[pointKey]*pointEntry

	requests atomic.Int64
	hits     atomic.Int64
}

// New creates an engine over the workload. memoSize bounds the shared
// selection memo (selector.DefaultMemoSize if <= 0).
func New(w *workload.Result, memoSize int) *Engine {
	return &Engine{
		w:      w,
		memo:   selector.NewMemo(memoSize),
		points: make(map[pointKey]*pointEntry),
	}
}

// Workload returns the workload the engine evaluates on.
func (e *Engine) Workload() *workload.Result { return e.w }

// Memo returns the engine's shared selection memo, for callers that drive
// additional harness entry points (e.g. the tenant sweep) under the same
// cross-point reuse via exp.WithSelectionMemo.
func (e *Engine) Memo() *selector.Memo { return e.memo }

// Stats returns a snapshot of the engine's reuse counters.
func (e *Engine) Stats() Stats {
	ms := e.memo.Stats()
	return Stats{
		Points:     e.requests.Load(),
		PointHits:  e.hits.Load(),
		SeedHits:   ms.Hits,
		SeedMisses: ms.Misses,
	}
}

// Evaluator returns the engine's fault-free point evaluator, the drop-in
// replacement for exp.DirectEvaluator.
func (e *Engine) Evaluator() exp.Evaluator {
	return func(ctx context.Context, cfg arch.Config, p exp.Policy) (*sim.Report, error) {
		return e.eval(ctx, cfg, p, 0, fault.Options{})
	}
}

// FaultEvaluator returns the engine's fault-scenario evaluator, the
// drop-in replacement for exp.DirectFaultEvaluator.
func (e *Engine) FaultEvaluator() exp.FaultEvaluator {
	return func(ctx context.Context, cfg arch.Config, p exp.Policy, seed uint64, fo fault.Options) (*sim.Report, error) {
		if fo.IsZero() {
			// A benign scenario runs the plain fault-free path whatever
			// its seed, horizon or flap-length fields say (no schedule is
			// built); normalising the key lets it share the fault-free
			// point's memo entry.
			seed, fo = 0, fault.Options{}
		}
		return e.eval(ctx, cfg, p, seed, fo)
	}
}

func (e *Engine) eval(ctx context.Context, cfg arch.Config, p exp.Policy, seed uint64, fo fault.Options) (*sim.Report, error) {
	e.requests.Add(1)
	key := pointKey{cfg: cfg, pol: p, seed: seed, fo: fo}

	e.mu.Lock()
	ent, ok := e.points[key]
	if !ok {
		ent = &pointEntry{}
		e.points[key] = ent
	}
	e.mu.Unlock()
	if ok {
		e.hits.Add(1)
	}

	ent.once.Do(func() {
		ent.rep, ent.err = exp.RunPointFaults(
			exp.WithSelectionMemo(ctx, e.memo), e.w, cfg, p, seed, fo)
	})
	if ent.err != nil {
		// Do not cache failures: a cancelled context would otherwise
		// poison the point for later, healthy requests.
		e.mu.Lock()
		if e.points[key] == ent {
			delete(e.points, key)
		}
		e.mu.Unlock()
		return nil, ent.err
	}
	return ent.rep, nil
}
