package batch

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"mrts/internal/arch"
	"mrts/internal/exp"
	"mrts/internal/fault"
	"mrts/internal/sim"
	"mrts/internal/video"
	"mrts/internal/workload"
)

// batchWorkload mirrors the exp package's integration fixture: the
// calibrated QCIF regime with a shortened sequence, so full simulations
// run in milliseconds.
var batchWorkload = workload.MustBuild(workload.Options{
	Frames: 8,
	Video:  video.Options{SceneCuts: []int{4}},
})

// batchPolicies is every policy the identity guard covers: the Fig. 8
// competitors plus the RISC reference and the online-optimal selector
// (which keeps its exact algorithm — the shared memo only attaches to
// greedy-default systems).
var batchPolicies = append([]exp.Policy{exp.PolicyRISC, exp.PolicyOptimal}, exp.Fig8Policies...)

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBatchIdenticalEveryPolicy is the batch engine's determinism guard:
// for every policy, a report served through the engine (point memo +
// shared selection memo) must be byte-identical (JSON) to a direct
// evaluation. The engine may only remove host-side work, never change a
// simulated cycle.
func TestBatchIdenticalEveryPolicy(t *testing.T) {
	ctx := context.Background()
	cfg := arch.Config{NPRC: 2, NCG: 2}
	eng := New(batchWorkload, 0)
	eval := eng.Evaluator()
	for _, p := range batchPolicies {
		p := p
		t.Run(string(p), func(t *testing.T) {
			pc := cfg
			if p == exp.PolicyRISC {
				pc = arch.Config{}
			}
			batched, err := eval(ctx, pc, p)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := exp.RunPoint(ctx, batchWorkload, pc, p)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := mustJSON(t, batched), mustJSON(t, direct); !bytes.Equal(a, b) {
				t.Errorf("batched report differs from direct:\n%s\n%s", a, b)
			}
		})
	}
}

// TestBatchIdenticalUnderFaults extends the guard to faulted runs: fault
// events invalidate selections mid-run, and the re-selections must replay
// identically whether or not they were seeded from the shared memo.
func TestBatchIdenticalUnderFaults(t *testing.T) {
	ctx := context.Background()
	cfg := arch.Config{NPRC: 2, NCG: 2}
	fo := fault.Options{FailPRC: 1, FailCG: 1, Horizon: 1_000_000}
	const seed = 7

	eng := New(batchWorkload, 0)
	feval := eng.FaultEvaluator()
	for _, p := range exp.Fig8Policies {
		p := p
		t.Run(string(p), func(t *testing.T) {
			batched, err := feval(ctx, cfg, p, seed, fo)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := exp.RunPointFaults(ctx, batchWorkload, cfg, p, seed, fo)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := mustJSON(t, batched), mustJSON(t, direct); !bytes.Equal(a, b) {
				t.Errorf("batched faulted report differs from direct:\n%s\n%s", a, b)
			}
		})
	}
}

// cacheSizer is implemented by runtime systems carrying an L1 selection
// cache (*core.MRTS).
type cacheSizer interface{ SetSelectionCacheSize(n int) }

// TestBatchIdenticalCacheOff compares the engine (shared memo on top of
// the default L1 selection cache) against ground truth with every cache
// disabled: the L2 memo must not change output even relative to a fully
// uncached run.
func TestBatchIdenticalCacheOff(t *testing.T) {
	cfg := arch.Config{NPRC: 2, NCG: 2}
	eng := New(batchWorkload, 0)
	batched, err := eng.Evaluator()(context.Background(), cfg, exp.PolicyMRTS)
	if err != nil {
		t.Fatal(err)
	}

	rts, err := exp.NewPolicy(exp.PolicyMRTS, cfg, batchWorkload.App, batchWorkload.Trace)
	if err != nil {
		t.Fatal(err)
	}
	rts.(cacheSizer).SetSelectionCacheSize(-1)
	uncached, err := sim.Run(batchWorkload.App, batchWorkload.Trace, rts)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := mustJSON(t, batched), mustJSON(t, uncached); !bytes.Equal(a, b) {
		t.Errorf("batched report differs from cache-off ground truth:\n%s\n%s", a, b)
	}
}

// TestFaultsSweepSeededIdentical runs the whole degradation sweep through
// the engine and directly, and requires identical results plus real
// cross-point reuse: rows share their pre-fault selection prefixes, so the
// shared memo must score hits.
func TestFaultsSweepSeededIdentical(t *testing.T) {
	ctx := context.Background()
	cfg := arch.Config{NPRC: 2, NCG: 2}
	eng := New(batchWorkload, 0)

	seeded, err := exp.Faults(ctx, eng.FaultEvaluator(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := exp.Faults(ctx, exp.DirectFaultEvaluator(batchWorkload), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := mustJSON(t, seeded), mustJSON(t, direct); !bytes.Equal(a, b) {
		t.Errorf("seeded faults sweep differs from direct:\n%s\n%s", a, b)
	}

	st := eng.Stats()
	if st.Points == 0 {
		t.Fatal("engine saw no points")
	}
	if st.SeedHits == 0 {
		t.Error("faults sweep scored no seed hits; rows share pre-fault prefixes and should seed each other")
	}
}

// TestTenantsSeededIdentical pins the tenant sweep under the shared memo:
// results with a memo on the context must be byte-identical to results
// without one, and the K=1 static/migrating pair (identical runs) must
// guarantee seed hits.
func TestTenantsSeededIdentical(t *testing.T) {
	base := workload.Options{Frames: 8, Video: video.Options{SceneCuts: []int{4}}}
	phys := arch.Config{NPRC: 2, NCG: 2}
	ctx := context.Background()

	eng := New(batchWorkload, 0)
	seeded, err := exp.Tenants(exp.WithSelectionMemo(ctx, eng.Memo()),
		exp.DirectWorkloads(), base, phys, 2, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := exp.Tenants(ctx, exp.DirectWorkloads(), base, phys, 2, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	if a, b := mustJSON(t, seeded), mustJSON(t, direct); !bytes.Equal(a, b) {
		t.Errorf("seeded tenant sweep differs from direct:\n%s\n%s", a, b)
	}
	if hits := eng.Memo().Stats().Hits; hits == 0 {
		t.Error("tenant sweep scored no seed hits; the static and migrating halves run identical tenants")
	}
}

// TestPointMemoSingleflight exercises the point-level report memo: racing
// requests for one point share a single simulation, repeat requests replay
// it, and every caller gets the same report.
func TestPointMemoSingleflight(t *testing.T) {
	eng := New(batchWorkload, 0)
	eval := eng.Evaluator()
	cfg := arch.Config{NPRC: 1, NCG: 1}

	const n = 8
	reports := make([]*sim.Report, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := eval(context.Background(), cfg, exp.PolicyMRTS)
			if err != nil {
				t.Error(err)
				return
			}
			reports[i] = rep
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if reports[i] != reports[0] {
			t.Fatalf("request %d got a different report object", i)
		}
	}
	st := eng.Stats()
	if st.Points != n {
		t.Errorf("Points = %d, want %d", st.Points, n)
	}
	if st.PointHits != n-1 {
		t.Errorf("PointHits = %d, want %d (one simulation, %d replays)", st.PointHits, n-1, n-1)
	}
}

// TestBenignFaultNormalised pins the fault evaluator's key normalisation:
// a benign scenario (zero fail counts) runs the fault-free path whatever
// its seed or horizon say, so it must share the fault-free point's memo
// entry rather than simulate again.
func TestBenignFaultNormalised(t *testing.T) {
	eng := New(batchWorkload, 0)
	cfg := arch.Config{NPRC: 1, NCG: 1}
	ctx := context.Background()

	plain, err := eng.Evaluator()(ctx, cfg, exp.PolicyMRTS)
	if err != nil {
		t.Fatal(err)
	}
	benign, err := eng.FaultEvaluator()(ctx, cfg, exp.PolicyMRTS, 99, fault.Options{Horizon: 12345})
	if err != nil {
		t.Fatal(err)
	}
	if plain != benign {
		t.Error("benign fault scenario did not share the fault-free point's memo entry")
	}
	if st := eng.Stats(); st.PointHits != 1 {
		t.Errorf("PointHits = %d, want 1", st.PointHits)
	}
}
