// Package trace defines the workload traces the architecture simulator
// replays: per functional-block iteration, the kernels that actually
// execute, how often, and the software cycles around them. A trace also
// carries the static profile triggers that the application programmer would
// embed in the binary as trigger instructions (paper Section 4); at run
// time the MPU refines those forecasts iteration by iteration.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"mrts/internal/arch"
	"mrts/internal/ise"
)

// KernelLoad describes one kernel's activity in one block iteration.
type KernelLoad struct {
	Kernel ise.KernelID `json:"kernel"`
	// E is the number of executions in this iteration (ground truth).
	E int64 `json:"e"`
	// GapSW is the pure-software time preceding each execution (loop
	// control, address generation, data marshalling on the core).
	GapSW arch.Cycles `json:"gap_sw"`
}

// Iteration is one dynamic instance of a functional block (e.g. the
// deblocking filter of one video frame).
type Iteration struct {
	// Block is the functional-block ID.
	Block string `json:"block"`
	// Seq orders iterations of the same block (e.g. the frame number).
	Seq int `json:"seq"`
	// Phase discriminates trigger instructions of the same block that
	// sit on different program paths — e.g. the I-frame and P-frame
	// loops of a video encoder carry distinct trigger instructions with
	// separately profiled forecasts. Empty means the block has a single
	// trigger instruction.
	Phase string `json:"phase,omitempty"`
	// Prologue is the software time between the trigger instruction and
	// the first kernel-related code of the block.
	Prologue arch.Cycles `json:"prologue"`
	// Loads lists the kernels that execute in this iteration.
	Loads []KernelLoad `json:"loads"`
}

// TotalExecutions sums the execution counts of the iteration.
func (it *Iteration) TotalExecutions() int64 {
	var n int64
	for _, l := range it.Loads {
		n += l.E
	}
	return n
}

// Trace is a full application run.
type Trace struct {
	// App names the application the trace belongs to.
	App string `json:"app"`
	// Profile maps a profile key — see ProfileKey — to the static
	// trigger instruction the programmer embedded for that program path
	// (obtained from offline profiling).
	Profile map[string][]ise.Trigger `json:"profile"`
	// Iterations is the dynamic block sequence in program order.
	Iterations []Iteration `json:"iterations"`

	// merged memoizes Merge(Iterations[i].Loads) for every iteration. A
	// trace is immutable once built but replayed once per (policy,
	// resource-point) pair of a sweep, so re-deriving the merged schedule
	// per run is pure waste. Built lazily by MergedLoads, safe for
	// concurrent replays via mergeOnce.
	merged    [][]Event
	mergeOnce sync.Once
}

// MergedLoads returns the merged single-core execution schedule of
// iteration i — Merge(tr.Iterations[i].Loads), computed once per trace and
// shared by every subsequent replay. Callers must not mutate the returned
// slice. The trace must not be modified after the first call.
func (tr *Trace) MergedLoads(i int) []Event {
	tr.mergeOnce.Do(func() {
		tr.merged = make([][]Event, len(tr.Iterations))
		for j := range tr.Iterations {
			tr.merged[j] = Merge(tr.Iterations[j].Loads)
		}
	})
	return tr.merged[i]
}

// Validate checks the trace against an application.
func (tr *Trace) Validate(app *ise.Application) error {
	for i := range tr.Iterations {
		it := &tr.Iterations[i]
		blk := app.Block(it.Block)
		if blk == nil {
			return fmt.Errorf("trace: iteration %d references unknown block %q", i, it.Block)
		}
		for _, l := range it.Loads {
			if blk.Kernel(l.Kernel) == nil {
				return fmt.Errorf("trace: iteration %d (block %q) references unknown kernel %q", i, it.Block, l.Kernel)
			}
			if l.E < 0 || l.GapSW < 0 {
				return fmt.Errorf("trace: iteration %d kernel %q has negative load", i, l.Kernel)
			}
		}
	}
	for id, ts := range tr.Profile {
		block := id
		if i := strings.IndexByte(id, '#'); i >= 0 {
			block = id[:i]
		}
		if app.Block(block) == nil {
			return fmt.Errorf("trace: profile references unknown block %q", id)
		}
		for _, t := range ts {
			if err := t.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Event is one kernel execution slot in the merged single-core schedule of
// a block iteration.
type Event struct {
	Kernel ise.KernelID
	// Gap is the software time preceding this execution.
	Gap arch.Cycles
}

// Merge interleaves the kernel loads of an iteration into the single-core
// execution order. Executions of different kernels are merged by fractional
// position ((j+0.5)/E), modelling the loop structure of real functional
// blocks where kernels alternate per macroblock; ties break by kernel ID so
// the schedule is deterministic.
func Merge(loads []KernelLoad) []Event {
	type cursor struct {
		load KernelLoad
		next int64
	}
	var total int64
	curs := make([]cursor, 0, len(loads))
	for _, l := range loads {
		if l.E <= 0 {
			continue
		}
		total += l.E
		curs = append(curs, cursor{load: l})
	}
	sort.Slice(curs, func(i, j int) bool { return curs[i].load.Kernel < curs[j].load.Kernel })
	events := make([]Event, 0, total)
	for int64(len(events)) < total {
		best := -1
		var bestPos float64
		for i := range curs {
			c := &curs[i]
			if c.next >= c.load.E {
				continue
			}
			pos := (float64(c.next) + 0.5) / float64(c.load.E)
			if best < 0 || pos < bestPos {
				best, bestPos = i, pos
			}
		}
		c := &curs[best]
		events = append(events, Event{Kernel: c.load.Kernel, Gap: c.load.GapSW})
		c.next++
	}
	return events
}

// RISCTriggers computes the trigger tuple {K, e, tf, tb} of one iteration
// under RISC-mode timing: the wall-clock time to each kernel's first
// execution and the average wall-clock gap between consecutive executions
// when every execution takes the kernel's RISC latency. This is the offline
// profiling run that seeds the static trigger instructions.
func RISCTriggers(app *ise.Application, it *Iteration) ([]ise.Trigger, error) {
	blk := app.Block(it.Block)
	if blk == nil {
		return nil, fmt.Errorf("trace: unknown block %q", it.Block)
	}
	type track struct {
		first   arch.Cycles
		lastEnd arch.Cycles
		gaps    arch.Cycles
		n       int64
	}
	tracks := make(map[ise.KernelID]*track, len(it.Loads))
	t := it.Prologue
	for _, ev := range Merge(it.Loads) {
		k := blk.Kernel(ev.Kernel)
		if k == nil {
			return nil, fmt.Errorf("trace: unknown kernel %q in block %q", ev.Kernel, it.Block)
		}
		t += ev.Gap
		tr := tracks[ev.Kernel]
		if tr == nil {
			tr = &track{first: t}
			tracks[ev.Kernel] = tr
		} else {
			tr.gaps += t - tr.lastEnd
		}
		tr.n++
		t += k.RISCLatency
		tr.lastEnd = t
	}
	out := make([]ise.Trigger, 0, len(tracks))
	for _, l := range it.Loads {
		tr, ok := tracks[l.Kernel]
		if !ok {
			continue
		}
		var tb arch.Cycles
		if tr.n > 1 {
			tb = tr.gaps / arch.Cycles(tr.n-1)
		}
		out = append(out, ise.Trigger{Kernel: l.Kernel, E: tr.n, TF: tr.first, TB: tb})
	}
	return out, nil
}

// ProfileKey is the Profile map key of a block's trigger instruction on
// the given program path.
func ProfileKey(block, phase string) string {
	if phase == "" {
		return block
	}
	return block + "#" + phase
}

// ProfileFor returns the static trigger instruction for one iteration,
// falling back to the block's phase-less profile if the phase has none.
func (tr *Trace) ProfileFor(block, phase string) []ise.Trigger {
	if ts, ok := tr.Profile[ProfileKey(block, phase)]; ok {
		return ts
	}
	return tr.Profile[block]
}

// BuildProfile computes the static per-block (and per-phase) trigger
// instructions from the whole trace by averaging the RISC-mode trigger
// tuples over all iterations of each block's program path, and stores them
// in tr.Profile.
func (tr *Trace) BuildProfile(app *ise.Application) error {
	type acc struct {
		e, tf, tb float64
		n         int64
	}
	accs := make(map[string]map[ise.KernelID]*acc)
	order := make(map[string][]ise.KernelID)
	for i := range tr.Iterations {
		it := &tr.Iterations[i]
		trig, err := RISCTriggers(app, it)
		if err != nil {
			return err
		}
		key := ProfileKey(it.Block, it.Phase)
		m := accs[key]
		if m == nil {
			m = make(map[ise.KernelID]*acc)
			accs[key] = m
		}
		for _, t := range trig {
			a := m[t.Kernel]
			if a == nil {
				a = &acc{}
				m[t.Kernel] = a
				order[key] = append(order[key], t.Kernel)
			}
			a.e += float64(t.E)
			a.tf += float64(t.TF)
			a.tb += float64(t.TB)
			a.n++
		}
	}
	tr.Profile = make(map[string][]ise.Trigger, len(accs))
	for block, m := range accs {
		ts := make([]ise.Trigger, 0, len(m))
		for _, kid := range order[block] {
			a := m[kid]
			n := float64(a.n)
			ts = append(ts, ise.Trigger{
				Kernel: kid,
				E:      int64(a.e/n + 0.5),
				TF:     arch.Cycles(a.tf/n + 0.5),
				TB:     arch.Cycles(a.tb/n + 0.5),
			})
		}
		tr.Profile[block] = ts
	}
	return nil
}

// Encode writes the trace as JSON.
func (tr *Trace) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}

// Decode reads a JSON trace.
func Decode(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return &tr, nil
}

// Summary aggregates a trace for reports: iterations and executions per
// block, and per-kernel execution totals.
type Summary struct {
	Iterations      int
	Executions      int64
	BlockIterations map[string]int
	KernelTotals    map[ise.KernelID]int64
}

// Summarize computes the trace summary.
func (tr *Trace) Summarize() Summary {
	s := Summary{
		BlockIterations: make(map[string]int),
		KernelTotals:    make(map[ise.KernelID]int64),
	}
	for i := range tr.Iterations {
		it := &tr.Iterations[i]
		s.Iterations++
		s.BlockIterations[it.Block]++
		for _, l := range it.Loads {
			s.Executions += l.E
			s.KernelTotals[l.Kernel] += l.E
		}
	}
	return s
}
