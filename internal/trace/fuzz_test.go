package trace

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the trace decoder.
func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	tr := &Trace{App: "seed", Iterations: []Iteration{{Block: "b", Loads: []KernelLoad{{Kernel: "k", E: 3}}}}}
	if err := tr.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("{}"))
	f.Add([]byte("not json"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Decode(bytes.NewReader(data))
	})
}
