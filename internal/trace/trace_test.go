package trace

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"mrts/internal/arch"
	"mrts/internal/ise"
)

func testApp(t *testing.T) *ise.Application {
	t.Helper()
	mk := func(id string, lat arch.Cycles) *ise.Kernel {
		return &ise.Kernel{
			ID: ise.KernelID(id), RISCLatency: lat,
			ISEs: []*ise.ISE{{
				ID: id + ".cg1", Kernel: ise.KernelID(id),
				DataPaths: []ise.DataPath{{ID: ise.DataPathID(id + "_cg"), Kind: arch.CG, CGs: 1}},
				Latencies: []arch.Cycles{lat / 2},
			}},
		}
	}
	blk := &ise.FunctionalBlock{ID: "b", Kernels: []*ise.Kernel{mk("x", 100), mk("y", 200)}}
	app, err := ise.NewApplication("test", blk)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestMergeCounts(t *testing.T) {
	loads := []KernelLoad{
		{Kernel: "x", E: 3, GapSW: 10},
		{Kernel: "y", E: 2, GapSW: 20},
	}
	events := Merge(loads)
	if len(events) != 5 {
		t.Fatalf("merged %d events, want 5", len(events))
	}
	counts := map[ise.KernelID]int{}
	for _, ev := range events {
		counts[ev.Kernel]++
	}
	if counts["x"] != 3 || counts["y"] != 2 {
		t.Errorf("counts = %v", counts)
	}
}

func TestMergeInterleaves(t *testing.T) {
	// Equal counts interleave strictly by fractional position.
	loads := []KernelLoad{
		{Kernel: "a", E: 4, GapSW: 1},
		{Kernel: "b", E: 4, GapSW: 1},
	}
	events := Merge(loads)
	for i := 0; i < len(events); i += 2 {
		if events[i].Kernel == events[i+1].Kernel {
			t.Fatalf("events %d/%d not interleaved: %v", i, i+1, events)
		}
	}
}

func TestMergeDeterministic(t *testing.T) {
	loads := []KernelLoad{
		{Kernel: "z", E: 5, GapSW: 1},
		{Kernel: "a", E: 3, GapSW: 2},
		{Kernel: "m", E: 7, GapSW: 3},
	}
	a, b := Merge(loads), Merge(loads)
	if !reflect.DeepEqual(a, b) {
		t.Error("Merge is not deterministic")
	}
	// Order of loads must not matter.
	rev := []KernelLoad{loads[2], loads[1], loads[0]}
	c := Merge(rev)
	if !reflect.DeepEqual(a, c) {
		t.Error("Merge depends on load order")
	}
}

func TestMergeSkipsZeroLoads(t *testing.T) {
	events := Merge([]KernelLoad{{Kernel: "x", E: 0, GapSW: 1}})
	if len(events) != 0 {
		t.Errorf("zero-count load produced %d events", len(events))
	}
}

func TestRISCTriggersSingleKernel(t *testing.T) {
	app := testApp(t)
	it := &Iteration{
		Block:    "b",
		Prologue: 50,
		Loads:    []KernelLoad{{Kernel: "x", E: 3, GapSW: 10}},
	}
	trig, err := RISCTriggers(app, it)
	if err != nil {
		t.Fatal(err)
	}
	if len(trig) != 1 {
		t.Fatalf("got %d triggers", len(trig))
	}
	tr := trig[0]
	// First execution after prologue + gap.
	if tr.TF != 60 {
		t.Errorf("TF = %d, want 60", tr.TF)
	}
	// Gap between end of one execution and start of next = GapSW.
	if tr.TB != 10 {
		t.Errorf("TB = %d, want 10", tr.TB)
	}
	if tr.E != 3 {
		t.Errorf("E = %d, want 3", tr.E)
	}
}

func TestRISCTriggersInterleaved(t *testing.T) {
	app := testApp(t)
	it := &Iteration{
		Block: "b",
		Loads: []KernelLoad{
			{Kernel: "x", E: 2, GapSW: 10},
			{Kernel: "y", E: 2, GapSW: 10},
		},
	}
	trig, err := RISCTriggers(app, it)
	if err != nil {
		t.Fatal(err)
	}
	byK := map[ise.KernelID]ise.Trigger{}
	for _, tr := range trig {
		byK[tr.Kernel] = tr
	}
	// The wall-clock gap between two x executions includes y's RISC
	// latency (200) and software gaps.
	if byK["x"].TB <= 10 {
		t.Errorf("x TB = %d, should include interleaved y executions", byK["x"].TB)
	}
	if byK["x"].TF >= byK["y"].TF && byK["y"].TF >= byK["x"].TF {
		t.Error("both kernels cannot start at the same instant on one core")
	}
}

func TestRISCTriggersUnknownBlock(t *testing.T) {
	app := testApp(t)
	if _, err := RISCTriggers(app, &Iteration{Block: "nope"}); err == nil {
		t.Error("unknown block accepted")
	}
}

func TestBuildProfileAverages(t *testing.T) {
	app := testApp(t)
	tr := &Trace{
		App: "test",
		Iterations: []Iteration{
			{Block: "b", Seq: 0, Loads: []KernelLoad{{Kernel: "x", E: 10, GapSW: 5}}},
			{Block: "b", Seq: 1, Loads: []KernelLoad{{Kernel: "x", E: 30, GapSW: 5}}},
		},
	}
	if err := tr.BuildProfile(app); err != nil {
		t.Fatal(err)
	}
	prof := tr.Profile["b"]
	if len(prof) != 1 {
		t.Fatalf("profile has %d triggers", len(prof))
	}
	if prof[0].E != 20 {
		t.Errorf("profile E = %d, want 20 (average of 10 and 30)", prof[0].E)
	}
}

func TestValidate(t *testing.T) {
	app := testApp(t)
	good := &Trace{
		App:        "test",
		Iterations: []Iteration{{Block: "b", Loads: []KernelLoad{{Kernel: "x", E: 1}}}},
	}
	if err := good.Validate(app); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}

	bad := &Trace{Iterations: []Iteration{{Block: "zzz"}}}
	if bad.Validate(app) == nil {
		t.Error("unknown block accepted")
	}
	bad = &Trace{Iterations: []Iteration{{Block: "b", Loads: []KernelLoad{{Kernel: "nope", E: 1}}}}}
	if bad.Validate(app) == nil {
		t.Error("unknown kernel accepted")
	}
	bad = &Trace{Iterations: []Iteration{{Block: "b", Loads: []KernelLoad{{Kernel: "x", E: -1}}}}}
	if bad.Validate(app) == nil {
		t.Error("negative load accepted")
	}
	bad = &Trace{Profile: map[string][]ise.Trigger{"zzz": nil}}
	if bad.Validate(app) == nil {
		t.Error("profile for unknown block accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := &Trace{
		App: "test",
		Profile: map[string][]ise.Trigger{
			"b": {{Kernel: "x", E: 5, TF: 10, TB: 20}},
		},
		Iterations: []Iteration{
			{Block: "b", Seq: 0, Prologue: 100, Loads: []KernelLoad{{Kernel: "x", E: 5, GapSW: 3}}},
		},
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", tr, got)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewBufferString("{broken")); err == nil {
		t.Error("garbage decoded")
	}
}

func TestIterationTotalExecutions(t *testing.T) {
	it := Iteration{Loads: []KernelLoad{{Kernel: "x", E: 3}, {Kernel: "y", E: 4}}}
	if it.TotalExecutions() != 7 {
		t.Errorf("TotalExecutions = %d", it.TotalExecutions())
	}
}

// Property: Merge output length always equals the sum of loads, and per-
// kernel counts are preserved, for random load sets.
func TestMergePreservesCountsProperty(t *testing.T) {
	f := func(e1, e2, e3 uint8) bool {
		loads := []KernelLoad{
			{Kernel: "a", E: int64(e1 % 50), GapSW: 1},
			{Kernel: "b", E: int64(e2 % 50), GapSW: 2},
			{Kernel: "c", E: int64(e3 % 50), GapSW: 3},
		}
		events := Merge(loads)
		counts := map[ise.KernelID]int64{}
		for _, ev := range events {
			counts[ev.Kernel]++
		}
		return counts["a"] == int64(e1%50) &&
			counts["b"] == int64(e2%50) &&
			counts["c"] == int64(e3%50)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	tr := &Trace{
		Iterations: []Iteration{
			{Block: "a", Loads: []KernelLoad{{Kernel: "x", E: 3}, {Kernel: "y", E: 4}}},
			{Block: "a", Loads: []KernelLoad{{Kernel: "x", E: 5}}},
			{Block: "b", Loads: []KernelLoad{{Kernel: "z", E: 1}}},
		},
	}
	s := tr.Summarize()
	if s.Iterations != 3 || s.Executions != 13 {
		t.Errorf("summary = %+v", s)
	}
	if s.BlockIterations["a"] != 2 || s.BlockIterations["b"] != 1 {
		t.Errorf("block iterations = %v", s.BlockIterations)
	}
	if s.KernelTotals["x"] != 8 || s.KernelTotals["y"] != 4 || s.KernelTotals["z"] != 1 {
		t.Errorf("kernel totals = %v", s.KernelTotals)
	}
}
