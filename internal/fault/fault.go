// Package fault is a seeded, fully deterministic fault-injection engine for
// the multi-grained reconfigurable fabric. It produces a time-ordered
// schedule of fabric events — permanent PRC/CG-EDPE failures, transient
// configuration (bitstream) corruptions detected by a CRC-style check after
// streaming, and intermittent containers that fail and later recover —
// parameterised by per-fabric counts over a time horizon, and replayable
// byte-for-byte from a seed.
//
// The paper's central claim is that a run-time system beats static
// selection because fabric availability changes under its feet; faults are
// the sharpest instance of such a change. A Schedule is immutable and
// shareable across concurrent runs; each run obtains its own Engine cursor
// via Schedule.Engine.
//
// Determinism notes: event times are drawn from independent per-category
// splitmix64 streams, so the k-th permanent PRC failure lands at the same
// time regardless of how many further failures a scenario requests. A
// degradation sweep that grows the failure count row by row therefore adds
// failures to a fixed prefix instead of reshuffling the whole schedule —
// which is what makes measured degradation curves monotone and comparable.
package fault

import (
	"fmt"
	"sort"

	"mrts/internal/arch"
)

// Kind classifies a fault event.
type Kind int

const (
	// PermanentFail kills one container of the event's fabric forever.
	PermanentFail Kind = iota
	// TransientDown takes one container of the event's fabric down; a
	// matching Recover event follows DownCycles later.
	TransientDown
	// Recover returns one transiently-down container to service.
	Recover
	// Corrupt marks the next configuration attempts on the event's fabric
	// as corrupted (CRC check fails after streaming); the reconfiguration
	// controller retries with bounded backoff. Corrupt events are consumed
	// by the configuration port, not delivered to the runtime system.
	Corrupt
)

func (k Kind) String() string {
	switch k {
	case PermanentFail:
		return "permanent-fail"
	case TransientDown:
		return "transient-down"
	case Recover:
		return "recover"
	case Corrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one entry of a fault schedule.
type Event struct {
	// Time is when the event strikes, in core clock cycles.
	Time arch.Cycles
	// Kind is what happens.
	Kind Kind
	// Fabric is which fabric it happens to.
	Fabric arch.FabricKind
	// Runs is, for Corrupt events, how many consecutive configuration
	// attempts the corruption spoils (>= 1). Zero for container events.
	Runs int
}

func (e Event) String() string {
	if e.Kind == Corrupt {
		return fmt.Sprintf("@%d %s %s x%d", e.Time, e.Fabric, e.Kind, e.Runs)
	}
	return fmt.Sprintf("@%d %s %s", e.Time, e.Fabric, e.Kind)
}

// Options parameterise a fault schedule. The zero value is the benign
// no-fault scenario.
type Options struct {
	// FailPRC / FailCG are the numbers of permanent container failures
	// per fabric, spread over the horizon.
	FailPRC int
	FailCG  int

	// FlapPRC / FlapCG are the numbers of intermittent outages per
	// fabric: a container goes down and recovers DownCycles later.
	FlapPRC int
	FlapCG  int
	// DownCycles is the outage length of one flap (default 500_000).
	DownCycles arch.Cycles

	// CorruptFG / CorruptCG are the numbers of bitstream-corruption
	// events per fabric. Each spoils MaxRun-bounded consecutive
	// configuration attempts on that fabric's port.
	CorruptFG int
	CorruptCG int
	// MaxRun bounds the consecutive corrupted attempts of one Corrupt
	// event (default 1; the run length is drawn uniformly from 1..MaxRun).
	MaxRun int

	// Horizon is the time window events are drawn from. Required (> 0)
	// whenever any event count is non-zero.
	Horizon arch.Cycles
}

// IsZero reports whether the options describe the benign scenario.
func (o Options) IsZero() bool {
	return o.FailPRC == 0 && o.FailCG == 0 &&
		o.FlapPRC == 0 && o.FlapCG == 0 &&
		o.CorruptFG == 0 && o.CorruptCG == 0
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	for _, c := range []struct {
		name string
		n    int
	}{
		{"FailPRC", o.FailPRC}, {"FailCG", o.FailCG},
		{"FlapPRC", o.FlapPRC}, {"FlapCG", o.FlapCG},
		{"CorruptFG", o.CorruptFG}, {"CorruptCG", o.CorruptCG},
	} {
		if c.n < 0 {
			return fmt.Errorf("fault: negative %s %d", c.name, c.n)
		}
	}
	if o.DownCycles < 0 {
		return fmt.Errorf("fault: negative DownCycles %d", o.DownCycles)
	}
	if o.MaxRun < 0 {
		return fmt.Errorf("fault: negative MaxRun %d", o.MaxRun)
	}
	if !o.IsZero() && o.Horizon <= 0 {
		return fmt.Errorf("fault: horizon %d must be positive when events are requested", o.Horizon)
	}
	return nil
}

const (
	// DefaultDownCycles is the outage length of one intermittent flap:
	// 5 ms at the core clock, i.e. a handful of functional-block
	// iterations.
	DefaultDownCycles arch.Cycles = 500_000
	// DefaultMaxRun is the default bound on consecutive corrupted
	// configuration attempts per Corrupt event.
	DefaultMaxRun = 1
)

// rng is a splitmix64 stream (Steele et al., "Fast splittable pseudorandom
// number generators"): tiny, full-period, and — unlike math/rand's global
// source — owned by the schedule, so generation is reproducible and
// race-free by construction.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// cycles draws a uniform time in [0, horizon).
func (r *rng) cycles(horizon arch.Cycles) arch.Cycles {
	return arch.Cycles(r.next() % uint64(horizon))
}

// intn draws a uniform int in [1, n].
func (r *rng) oneTo(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 + int(r.next()%uint64(n))
}

// stream derives an independent sub-stream for an event category. Each
// category consumes only its own stream, so growing one count never
// perturbs the times of another category — or of that category's prefix.
func stream(seed uint64, category uint64) *rng {
	base := rng{s: seed}
	for i := uint64(0); i <= category; i++ {
		base.next()
	}
	return &rng{s: base.next() ^ (category+1)*0xd1342543de82ef95}
}

// Schedule is an immutable, time-ordered fault schedule. Safe for
// concurrent use; per-run cursor state lives in Engine.
type Schedule struct {
	seed uint64
	opts Options

	// events holds the container events (fail / down / recover), sorted
	// by time, ties broken deterministically.
	events []Event
	// corrupt holds the corruption events per fabric kind, sorted by
	// time; they feed the reconfiguration controller's CRC verifier.
	corrupt [2][]Event
}

// NewSchedule draws a schedule from the seed and options.
func NewSchedule(seed uint64, opts Options) (*Schedule, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.DownCycles == 0 {
		opts.DownCycles = DefaultDownCycles
	}
	if opts.MaxRun == 0 {
		opts.MaxRun = DefaultMaxRun
	}
	s := &Schedule{seed: seed, opts: opts}

	type cat struct {
		id     uint64
		n      int
		kind   Kind
		fabric arch.FabricKind
	}
	cats := []cat{
		{0, opts.FailPRC, PermanentFail, arch.FG},
		{1, opts.FailCG, PermanentFail, arch.CG},
		{2, opts.FlapPRC, TransientDown, arch.FG},
		{3, opts.FlapCG, TransientDown, arch.CG},
		{4, opts.CorruptFG, Corrupt, arch.FG},
		{5, opts.CorruptCG, Corrupt, arch.CG},
	}
	for _, c := range cats {
		if c.n == 0 {
			continue
		}
		r := stream(seed, c.id)
		for i := 0; i < c.n; i++ {
			at := r.cycles(opts.Horizon)
			switch c.kind {
			case Corrupt:
				runs := r.oneTo(opts.MaxRun)
				s.corrupt[c.fabric] = append(s.corrupt[c.fabric],
					Event{Time: at, Kind: Corrupt, Fabric: c.fabric, Runs: runs})
			case TransientDown:
				s.events = append(s.events,
					Event{Time: at, Kind: TransientDown, Fabric: c.fabric},
					Event{Time: at + opts.DownCycles, Kind: Recover, Fabric: c.fabric})
			default:
				s.events = append(s.events, Event{Time: at, Kind: c.kind, Fabric: c.fabric})
			}
		}
	}
	order := func(evs []Event) {
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].Time != evs[j].Time {
				return evs[i].Time < evs[j].Time
			}
			if evs[i].Fabric != evs[j].Fabric {
				return evs[i].Fabric < evs[j].Fabric
			}
			return evs[i].Kind < evs[j].Kind
		})
	}
	order(s.events)
	order(s.corrupt[arch.FG])
	order(s.corrupt[arch.CG])
	return s, nil
}

// MustSchedule is NewSchedule for options known to be valid.
func MustSchedule(seed uint64, opts Options) *Schedule {
	s, err := NewSchedule(seed, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Seed returns the seed the schedule was drawn from.
func (s *Schedule) Seed() uint64 { return s.seed }

// Options returns the (defaulted) options the schedule was drawn with.
func (s *Schedule) Options() Options { return s.opts }

// Events returns a copy of the container-event schedule in time order.
func (s *Schedule) Events() []Event {
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Corruptions returns a copy of the corruption events of the fabric kind.
func (s *Schedule) Corruptions(kind arch.FabricKind) []Event {
	out := make([]Event, len(s.corrupt[kind]))
	copy(out, s.corrupt[kind])
	return out
}

// Len returns the total number of events in the schedule.
func (s *Schedule) Len() int {
	return len(s.events) + len(s.corrupt[arch.FG]) + len(s.corrupt[arch.CG])
}

// Engine returns a fresh replay cursor over the schedule. Each simulation
// run must use its own Engine; the Schedule itself is never mutated.
type Engine struct {
	sched *Schedule
	// next indexes the first undelivered container event.
	next int
	// corrupt[k] is the remaining corruption queue of fabric k; head
	// first. remaining counts the head event's unconsumed run units.
	corrupt   [2][]Event
	remaining [2]int
}

// Engine returns a fresh cursor positioned at time zero.
func (s *Schedule) Engine() *Engine {
	e := &Engine{sched: s}
	for k := range e.corrupt {
		e.corrupt[k] = s.corrupt[k]
		if len(e.corrupt[k]) > 0 {
			e.remaining[k] = e.corrupt[k][0].Runs
		}
	}
	return e
}

// Next returns the container events due at or before now, in schedule
// order, advancing the cursor past them.
func (e *Engine) Next(now arch.Cycles) []Event {
	start := e.next
	for e.next < len(e.sched.events) && e.sched.events[e.next].Time <= now {
		e.next++
	}
	return e.sched.events[start:e.next]
}

// Pending reports whether undelivered container events remain.
func (e *Engine) Pending() bool { return e.next < len(e.sched.events) }

// Corrupted implements the reconfiguration controller's CRC verifier: it
// reports whether a configuration attempt on the fabric kind completing at
// time `at` streams a corrupted bitstream. Each call consumes one run unit
// of the head corruption event once that event's time has passed, so a
// retry after backoff sees the next unit (and eventually a clean stream).
func (e *Engine) Corrupted(kind arch.FabricKind, at arch.Cycles) bool {
	q := e.corrupt[kind]
	if len(q) == 0 || q[0].Time > at {
		return false
	}
	e.remaining[kind]--
	if e.remaining[kind] <= 0 {
		e.corrupt[kind] = q[1:]
		if len(e.corrupt[kind]) > 0 {
			e.remaining[kind] = e.corrupt[kind][0].Runs
		}
	}
	return true
}
