package fault

import (
	"reflect"
	"testing"

	"mrts/internal/arch"
)

func TestScheduleReproducible(t *testing.T) {
	opts := Options{
		FailPRC: 3, FailCG: 2, FlapPRC: 2, FlapCG: 1,
		CorruptFG: 4, CorruptCG: 3, MaxRun: 3,
		Horizon: 10_000_000,
	}
	a := MustSchedule(42, opts)
	b := MustSchedule(42, opts)
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatalf("same seed, different container events:\n%v\n%v", a.Events(), b.Events())
	}
	for _, k := range []arch.FabricKind{arch.FG, arch.CG} {
		if !reflect.DeepEqual(a.Corruptions(k), b.Corruptions(k)) {
			t.Fatalf("same seed, different %v corruptions", k)
		}
	}
	c := MustSchedule(43, opts)
	if reflect.DeepEqual(a.Events(), c.Events()) {
		t.Fatalf("different seeds produced identical container events")
	}
}

// TestSchedulePrefixStable is the property the degradation sweep depends
// on: the schedule with N failures of one category must be a superset of
// the schedule with N-1 — growing a count appends events, it never
// reshuffles the ones already drawn, in any category.
func TestSchedulePrefixStable(t *testing.T) {
	base := Options{FailPRC: 2, FailCG: 1, FlapPRC: 1, CorruptFG: 2, Horizon: 5_000_000}
	grown := base
	grown.FailPRC = 4
	grown.CorruptCG = 3

	timesOf := func(s *Schedule, kind Kind, fabric arch.FabricKind) []arch.Cycles {
		var out []arch.Cycles
		for _, ev := range s.Events() {
			if ev.Kind == kind && ev.Fabric == fabric {
				out = append(out, ev.Time)
			}
		}
		return out
	}
	a, b := MustSchedule(7, base), MustSchedule(7, grown)

	small := timesOf(a, PermanentFail, arch.FG)
	big := timesOf(b, PermanentFail, arch.FG)
	if len(small) != 2 || len(big) != 4 {
		t.Fatalf("want 2 and 4 PRC failures, got %d and %d", len(small), len(big))
	}
	bigSet := map[arch.Cycles]bool{}
	for _, at := range big {
		bigSet[at] = true
	}
	for _, at := range small {
		if !bigSet[at] {
			t.Fatalf("failure at %d from the smaller schedule missing in the grown one", at)
		}
	}
	// Untouched categories are byte-identical.
	for _, probe := range []struct {
		kind   Kind
		fabric arch.FabricKind
	}{
		{PermanentFail, arch.CG},
		{TransientDown, arch.FG},
		{Recover, arch.FG},
	} {
		if !reflect.DeepEqual(timesOf(a, probe.kind, probe.fabric), timesOf(b, probe.kind, probe.fabric)) {
			t.Fatalf("growing FailPRC/CorruptCG perturbed %v %v times", probe.fabric, probe.kind)
		}
	}
	if !reflect.DeepEqual(a.Corruptions(arch.FG), b.Corruptions(arch.FG)) {
		t.Fatalf("growing other categories perturbed FG corruptions")
	}
}

func TestScheduleFlapsPair(t *testing.T) {
	opts := Options{FlapPRC: 3, DownCycles: 1000, Horizon: 1_000_000}
	s := MustSchedule(1, opts)
	downs := map[arch.Cycles]bool{}
	var nDown, nRec int
	for _, ev := range s.Events() {
		switch ev.Kind {
		case TransientDown:
			nDown++
			downs[ev.Time] = true
		case Recover:
			nRec++
			if !downs[ev.Time-1000] {
				t.Fatalf("recover at %d has no matching down at %d", ev.Time, ev.Time-1000)
			}
		default:
			t.Fatalf("unexpected %v in a flap-only schedule", ev)
		}
	}
	if nDown != 3 || nRec != 3 {
		t.Fatalf("want 3 downs and 3 recovers, got %d and %d", nDown, nRec)
	}
	// Events are time-ordered.
	evs := s.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatalf("events out of order: %v before %v", evs[i-1], evs[i])
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{FailPRC: -1, Horizon: 1},
		{DownCycles: -1},
		{MaxRun: -1},
		{FailCG: 1}, // events without a horizon
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", o)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options should validate: %v", err)
	}
	if !(Options{}).IsZero() {
		t.Errorf("zero options should report IsZero")
	}
	if (Options{CorruptFG: 1, Horizon: 1}).IsZero() {
		t.Errorf("corruption-only options must not report IsZero")
	}
}

func TestEngineNextAndPending(t *testing.T) {
	s := MustSchedule(9, Options{FailPRC: 4, Horizon: 1_000_000})
	e := s.Engine()
	if !e.Pending() {
		t.Fatalf("fresh engine reports no pending events")
	}
	var got []Event
	// Deliver in two arbitrary slices; the union must be the schedule.
	mid := s.Events()[1].Time
	got = append(got, e.Next(mid)...)
	if len(got) < 2 {
		t.Fatalf("Next(%d) delivered %d events, want >= 2", mid, len(got))
	}
	got = append(got, e.Next(2_000_000)...)
	if !reflect.DeepEqual(got, s.Events()) {
		t.Fatalf("delivered events %v != schedule %v", got, s.Events())
	}
	if e.Pending() {
		t.Fatalf("drained engine still pending")
	}
	if evs := e.Next(3_000_000); len(evs) != 0 {
		t.Fatalf("drained engine delivered %v", evs)
	}
}

func TestEngineCorruptionConsumed(t *testing.T) {
	// One corruption event with a known run length: the first Runs
	// attempts after its time fail the CRC check, then the port is clean.
	s := MustSchedule(3, Options{CorruptFG: 1, MaxRun: 3, Horizon: 1_000_000})
	ev := s.Corruptions(arch.FG)[0]
	e := s.Engine()

	if e.Corrupted(arch.FG, ev.Time-1) {
		t.Fatalf("corruption consumed before its time")
	}
	if e.Corrupted(arch.CG, ev.Time+1) {
		t.Fatalf("FG corruption leaked onto the CG port")
	}
	for i := 0; i < ev.Runs; i++ {
		if !e.Corrupted(arch.FG, ev.Time+arch.Cycles(i)) {
			t.Fatalf("attempt %d of %d not corrupted", i+1, ev.Runs)
		}
	}
	if e.Corrupted(arch.FG, ev.Time+1_000_000) {
		t.Fatalf("corruption outlived its run length %d", ev.Runs)
	}

	// A second engine over the same schedule replays identically —
	// cursors do not share consumption state.
	e2 := s.Engine()
	if !e2.Corrupted(arch.FG, ev.Time) {
		t.Fatalf("fresh engine did not replay the corruption")
	}
}

func TestScheduleDefaults(t *testing.T) {
	s := MustSchedule(1, Options{FlapCG: 1, CorruptCG: 1, Horizon: 1000})
	o := s.Options()
	if o.DownCycles != DefaultDownCycles {
		t.Errorf("DownCycles = %d, want default %d", o.DownCycles, DefaultDownCycles)
	}
	if o.MaxRun != DefaultMaxRun {
		t.Errorf("MaxRun = %d, want default %d", o.MaxRun, DefaultMaxRun)
	}
	if s.Len() != 3 { // down + recover + corrupt
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if s.Seed() != 1 {
		t.Errorf("Seed = %d, want 1", s.Seed())
	}
}
