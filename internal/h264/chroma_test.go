package h264

import (
	"testing"
	"testing/quick"

	"mrts/internal/video"
)

func TestHadamard2Involution(t *testing.T) {
	f := func(vals [4]int16) bool {
		var b Block2
		for i, v := range vals {
			b[i] = int32(v)
		}
		orig := b
		Hadamard2(&b)
		Hadamard2(&b)
		for i := range b {
			if b[i] != 4*orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuantDC2(t *testing.T) {
	var zero Block2
	if QuantDC2(&zero, 24) != 0 {
		t.Error("zero DC block has non-zero levels")
	}
	b := Block2{40000, -40000, 3, 0}
	nz := QuantDC2(&b, 24)
	if nz == 0 {
		t.Fatal("large DC levels vanished")
	}
	if b[0] <= 0 || b[1] >= 0 {
		t.Error("signs lost in chroma DC quantisation")
	}
}

func TestPredictChromaDC(t *testing.T) {
	f := video.NewFrame(32, 32)
	// Top neighbours 60, left neighbours 180 for the chroma block at
	// chroma coordinates (8, 8).
	for i := 0; i < 8; i++ {
		f.CbSet(8+i, 7, 60)
		f.CbSet(7, 8+i, 180)
	}
	got := PredictChromaDC(f.CbAt, 8, 8)
	want := int32((8*60 + 8*180 + 8) >> 4)
	if got != want {
		t.Errorf("chroma DC prediction = %d, want %d", got, want)
	}
}

func TestMotionCompensateChroma(t *testing.T) {
	f := video.NewFrame(64, 64)
	for y := 0; y < f.CH(); y++ {
		for x := 0; x < f.CW(); x++ {
			f.CbSet(x, y, uint8((x*5+y*11)%251))
		}
	}
	var buf [64]uint8
	mv := MV{12, -8} // half-pel luma vector -> chroma displacement (3, -2)
	MotionCompensateChroma(f.CbAt, 16, 16, mv, buf[:])
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			want := f.CbAt(8+3+x, 8-2+y)
			if buf[y*8+x] != want {
				t.Fatalf("sample (%d,%d) = %d, want %d", x, y, buf[y*8+x], want)
			}
		}
	}
}

// chromaEdgeFrame builds a frame whose Cb plane has a vertical step at
// chroma x=4.
func chromaEdgeFrame(lo, hi uint8) *video.Frame {
	f := video.NewFrame(16, 16)
	for y := 0; y < f.CH(); y++ {
		for x := 0; x < f.CW(); x++ {
			v := lo
			if x >= 4 {
				v = hi
			}
			f.CbSet(x, y, v)
			f.CrSet(x, y, v)
		}
	}
	return f
}

func TestFilterChromaEdgeSmooths(t *testing.T) {
	f := chromaEdgeFrame(100, 104)
	if !FilterChromaEdge(f, 4, 0, true, BSIntra, 30) {
		t.Fatal("small chroma step not filtered")
	}
	gap := int(f.CbAt(4, 0)) - int(f.CbAt(3, 0))
	if gap >= 4 {
		t.Errorf("chroma gap after filtering = %d", gap)
	}
}

func TestFilterChromaEdgePreservesRealEdges(t *testing.T) {
	f := chromaEdgeFrame(30, 220)
	if FilterChromaEdge(f, 4, 0, true, BSIntra, 30) {
		t.Error("real chroma edge was smoothed")
	}
}

func TestFilterChromaEdgeBSNone(t *testing.T) {
	f := chromaEdgeFrame(100, 104)
	if FilterChromaEdge(f, 4, 0, true, BSNone, 30) {
		t.Error("BS 0 chroma edge filtered")
	}
}

func TestEncoderChromaReconstruction(t *testing.T) {
	// Encode content with strong chroma structure and verify the chroma
	// planes reconstruct with low error.
	g, err := video.NewGenerator(64, 48, 11, video.Options{Objects: 3})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(64, 48, Config{QP: 20})
	if err != nil {
		t.Fatal(err)
	}
	frame := g.Next()
	if _, err := enc.EncodeFrame(frame); err != nil {
		t.Fatal(err)
	}
	rec := enc.ref
	var sse, n float64
	for i := range frame.Cb {
		d := float64(frame.Cb[i]) - float64(rec.Cb[i])
		sse += d * d
		d = float64(frame.Cr[i]) - float64(rec.Cr[i])
		sse += d * d
		n += 2
	}
	mse := sse / n
	if mse > 120 {
		t.Errorf("chroma MSE = %.1f, reconstruction broken", mse)
	}
}

func TestEncoderChromaCountsPresent(t *testing.T) {
	g, _ := video.NewGenerator(64, 48, 3, video.Options{})
	enc, _ := NewEncoder(64, 48, Config{})
	st, err := enc.EncodeFrame(g.Next())
	if err != nil {
		t.Fatal(err)
	}
	mbs := int64((64 / 16) * (48 / 16))
	// Intra frame: 16 luma + 8 chroma DCT blocks per MB.
	if st.Counts[KernelDCT] != 24*mbs {
		t.Errorf("dct invocations = %d, want %d", st.Counts[KernelDCT], 24*mbs)
	}
	if st.Counts[KernelQuant] != 24*mbs {
		t.Errorf("quant invocations = %d, want %d", st.Counts[KernelQuant], 24*mbs)
	}
}
