package h264

import (
	"testing"
	"testing/quick"
)

func TestZigzagIsPermutation(t *testing.T) {
	seen := [16]bool{}
	for _, idx := range zigzag4 {
		if idx < 0 || idx > 15 || seen[idx] {
			t.Fatalf("zigzag4 is not a permutation: %v", zigzag4)
		}
		seen[idx] = true
	}
	// Starts at DC, ends at the highest frequency.
	if zigzag4[0] != 0 || zigzag4[15] != 15 {
		t.Errorf("zigzag endpoints: %d .. %d", zigzag4[0], zigzag4[15])
	}
}

func TestCAVLCEmptyBlock(t *testing.T) {
	var b Block4
	st := EstimateCAVLC(&b)
	if st.TotalCoeffs != 0 || st.Bits != 1 {
		t.Errorf("empty block: %+v, want 0 coeffs / 1 bit", st)
	}
}

func TestCAVLCCountsCoefficients(t *testing.T) {
	b := Block4{5, -1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	st := EstimateCAVLC(&b)
	if st.TotalCoeffs != 3 {
		t.Errorf("TotalCoeffs = %d, want 3", st.TotalCoeffs)
	}
	if st.Bits <= 3 {
		t.Errorf("Bits = %d, implausibly small", st.Bits)
	}
}

func TestCAVLCTrailingOnes(t *testing.T) {
	// In scan order: 5 (DC), then +/-1s at the tail.
	b := Block4{}
	b[zigzag4[0]] = 5
	b[zigzag4[1]] = -1
	b[zigzag4[2]] = 1
	st := EstimateCAVLC(&b)
	if st.TrailingOnes != 2 {
		t.Errorf("TrailingOnes = %d, want 2", st.TrailingOnes)
	}
}

func TestCAVLCTrailingOnesCapped(t *testing.T) {
	b := Block4{}
	for i := 0; i < 5; i++ {
		b[zigzag4[i]] = 1
	}
	st := EstimateCAVLC(&b)
	if st.TrailingOnes > 3 {
		t.Errorf("TrailingOnes = %d, spec caps at 3", st.TrailingOnes)
	}
	if st.TotalCoeffs != 5 {
		t.Errorf("TotalCoeffs = %d, want 5", st.TotalCoeffs)
	}
}

func TestCAVLCTotalZeros(t *testing.T) {
	// Zeros *between* non-zero coefficients count; the tail after the
	// last non-zero does not.
	b := Block4{}
	b[zigzag4[0]] = 3
	b[zigzag4[3]] = 2 // two zeros between
	st := EstimateCAVLC(&b)
	if st.TotalZeros != 2 {
		t.Errorf("TotalZeros = %d, want 2", st.TotalZeros)
	}
}

func TestCAVLCBitsGrowWithLevels(t *testing.T) {
	small := Block4{2}
	large := Block4{2000}
	if EstimateCAVLC(&small).Bits >= EstimateCAVLC(&large).Bits {
		t.Error("larger level should cost more bits")
	}
}

func TestCAVLCBitsGrowWithDensity(t *testing.T) {
	sparse := Block4{9}
	var dense Block4
	for i := range dense {
		dense[i] = 9
	}
	if EstimateCAVLC(&sparse).Bits >= EstimateCAVLC(&dense).Bits {
		t.Error("denser block should cost more bits")
	}
}

func TestCAVLCPositiveBitsProperty(t *testing.T) {
	f := func(vals [16]int8) bool {
		var b Block4
		nz := 0
		for i, v := range vals {
			b[i] = int32(v)
			if v != 0 {
				nz++
			}
		}
		st := EstimateCAVLC(&b)
		return st.Bits >= 1 && st.TotalCoeffs == nz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLevelBits(t *testing.T) {
	if levelBits(1) != 2 { // 1 bit magnitude + sign
		t.Errorf("levelBits(1) = %d", levelBits(1))
	}
	if levelBits(2) >= levelBits(200) {
		t.Error("levelBits must grow with magnitude")
	}
}
