package h264

import (
	"testing"
	"testing/quick"
)

func TestDCT4DC(t *testing.T) {
	var b Block4
	for i := range b {
		b[i] = 10
	}
	DCT4(&b)
	if b[0] != 160 {
		t.Errorf("DC coefficient = %d, want 16*10", b[0])
	}
	for i := 1; i < 16; i++ {
		if b[i] != 0 {
			t.Errorf("AC coefficient %d = %d, want 0 for flat block", i, b[i])
		}
	}
}

func TestDCT4Linear(t *testing.T) {
	// The forward transform is linear: DCT(a+b) = DCT(a) + DCT(b).
	f := func(av, bv [16]int16) bool {
		var a, b, sum Block4
		for i := range a {
			a[i] = int32(av[i] % 128)
			b[i] = int32(bv[i] % 128)
			sum[i] = a[i] + b[i]
		}
		DCT4(&a)
		DCT4(&b)
		DCT4(&sum)
		for i := range sum {
			if sum[i] != a[i]+b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTransformQuantPipelineError(t *testing.T) {
	// The real invariant of the H.264 integer transform: the full
	// DCT -> Quant -> Dequant -> IDCT pipeline reconstructs any
	// pixel-range residual within a small multiple of the quantiser
	// step (the scaling lives in Quant/Dequant, not in the raw
	// transform pair).
	for _, qp := range []int{0, 6, 12, 24, 36, 51} {
		bound := int32(2*QStep(qp)) + 2
		f := func(vals [16]int16) bool {
			var b Block4
			for i, v := range vals {
				b[i] = int32(v % 256)
			}
			orig := b
			DCT4(&b)
			Quant(&b, qp, false)
			Dequant(&b, qp)
			IDCT4(&b)
			for i := range b {
				d := b[i] - orig[i]
				if d < 0 {
					d = -d
				}
				if d > bound {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("qp %d: %v", qp, err)
		}
	}
}

func TestIDCTZero(t *testing.T) {
	var b Block4
	IDCT4(&b)
	if b != (Block4{}) {
		t.Error("IDCT of zero block not zero")
	}
}

func TestHadamardInvolution(t *testing.T) {
	// The 4x4 Hadamard transform is self-inverse up to a factor 16.
	f := func(vals [16]int16) bool {
		var b Block4
		for i, v := range vals {
			b[i] = int32(v % 1024)
		}
		orig := b
		Hadamard4(&b)
		Hadamard4(&b)
		for i := range b {
			if b[i] != orig[i]*16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSATDZeroForZero(t *testing.T) {
	if SATD4(Block4{}) != 0 {
		t.Error("SATD of zero block should be 0")
	}
}

func TestSATDNonNegative(t *testing.T) {
	f := func(vals [16]int16) bool {
		var b Block4
		for i, v := range vals {
			b[i] = int32(v % 256)
		}
		return SATD4(b) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSATDScalesWithEnergy(t *testing.T) {
	small := Block4{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	var large Block4
	for i := range large {
		large[i] = 50
	}
	if SATD4(small) >= SATD4(large) {
		t.Error("SATD of a flat bright residual should exceed a single small one")
	}
}
