package h264

import "fmt"

// Bitstream serialisation. The encoder emits an actual bit-exact stream —
// macroblock headers, motion vectors and quantised coefficients — through
// a BitWriter with the Exp-Golomb codes H.264 uses for its syntax
// elements. The format is this encoder's own (not a decodable H.264
// elementary stream), but every bit the rate statistics report is really
// written, and BitReader decodes the stream back for verification.

// BitWriter accumulates bits MSB-first into a byte buffer.
type BitWriter struct {
	buf  []byte
	bits int // total bits written
}

// WriteBit appends one bit.
func (w *BitWriter) WriteBit(b int) {
	byteIdx := w.bits >> 3
	if byteIdx == len(w.buf) {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[byteIdx] |= 1 << (7 - uint(w.bits&7))
	}
	w.bits++
}

// WriteBits appends the low n bits of v, most significant first (n <= 32).
func (w *BitWriter) WriteBits(v uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(int(v >> uint(i) & 1))
	}
}

// WriteUE appends v with the unsigned Exp-Golomb code: (leading zeros for
// the bit length of v+1) followed by v+1.
func (w *BitWriter) WriteUE(v uint32) {
	code := v + 1
	n := 0
	for t := code; t > 1; t >>= 1 {
		n++
	}
	for i := 0; i < n; i++ {
		w.WriteBit(0)
	}
	w.WriteBits(code, n+1)
}

// WriteSE appends v with the signed Exp-Golomb mapping
// (0, 1, -1, 2, -2, ...).
func (w *BitWriter) WriteSE(v int32) {
	var u uint32
	if v > 0 {
		u = uint32(2*v - 1)
	} else {
		u = uint32(-2 * v)
	}
	w.WriteUE(u)
}

// Bits returns the number of bits written so far.
func (w *BitWriter) Bits() int { return w.bits }

// Bytes returns the stream, zero-padded to a byte boundary.
func (w *BitWriter) Bytes() []byte { return w.buf }

// Reset clears the writer for reuse.
func (w *BitWriter) Reset() {
	w.buf = w.buf[:0]
	w.bits = 0
}

// BitReader consumes a stream produced by BitWriter.
type BitReader struct {
	buf []byte
	pos int // bit position
}

// NewBitReader wraps a byte buffer.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBit consumes one bit.
func (r *BitReader) ReadBit() (int, error) {
	byteIdx := r.pos >> 3
	if byteIdx >= len(r.buf) {
		return 0, fmt.Errorf("h264: bitstream exhausted at bit %d", r.pos)
	}
	b := int(r.buf[byteIdx] >> (7 - uint(r.pos&7)) & 1)
	r.pos++
	return b, nil
}

// ReadBits consumes n bits, MSB first.
func (r *BitReader) ReadBits(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint32(b)
	}
	return v, nil
}

// ReadUE decodes an unsigned Exp-Golomb code.
func (r *BitReader) ReadUE() (uint32, error) {
	zeros := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 32 {
			return 0, fmt.Errorf("h264: malformed Exp-Golomb code")
		}
	}
	rest, err := r.ReadBits(zeros)
	if err != nil {
		return 0, err
	}
	return 1<<uint(zeros) | rest - 1, nil
}

// ReadSE decodes a signed Exp-Golomb code.
func (r *BitReader) ReadSE() (int32, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	if u&1 == 1 {
		return int32(u/2 + 1), nil
	}
	return -int32(u / 2), nil
}

// Pos returns the current bit position.
func (r *BitReader) Pos() int { return r.pos }

// writeBlock serialises a quantised 4x4 block in zig-zag order:
// significance run-length plus signed levels, trailing zeros elided.
func writeBlock(w *BitWriter, b *Block4) {
	lastNZ := -1
	for i := 15; i >= 0; i-- {
		if b[zigzag4[i]] != 0 {
			lastNZ = i
			break
		}
	}
	w.WriteUE(uint32(lastNZ + 1)) // number of scan positions that follow
	for i := 0; i <= lastNZ; i++ {
		w.WriteSE(b[zigzag4[i]])
	}
}

// readBlock decodes a block written by writeBlock.
func readBlock(r *BitReader, b *Block4) error {
	*b = Block4{}
	n, err := r.ReadUE()
	if err != nil {
		return err
	}
	if n > 16 {
		return fmt.Errorf("h264: block scan length %d out of range", n)
	}
	for i := 0; i < int(n); i++ {
		v, err := r.ReadSE()
		if err != nil {
			return err
		}
		b[zigzag4[i]] = v
	}
	return nil
}
