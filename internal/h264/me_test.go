package h264

import (
	"testing"

	"mrts/internal/video"
)

// shiftedFrames builds a reference frame with smooth aperiodic texture
// (bilinearly interpolated random grid — the SAD surface then decreases
// towards the true displacement, as for natural video) and a current frame
// whose content is the reference shifted by (dx, dy).
func shiftedFrames(w, h, dx, dy int) (cur, ref *video.Frame) {
	const cell = 8
	rng := video.NewRNG(1234)
	gw, gh := w/cell+2, h/cell+2
	grid := make([]int, gw*gh)
	for i := range grid {
		grid[i] = rng.Intn(256)
	}
	ref = video.NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			gx, gy := x/cell, y/cell
			fx, fy := x%cell, y%cell
			v00 := grid[gy*gw+gx]
			v10 := grid[gy*gw+gx+1]
			v01 := grid[(gy+1)*gw+gx]
			v11 := grid[(gy+1)*gw+gx+1]
			top := v00*(cell-fx) + v10*fx
			bot := v01*(cell-fx) + v11*fx
			ref.Set(x, y, uint8((top*(cell-fy)+bot*fy)/(cell*cell)))
		}
	}
	cur = video.NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			cur.Set(x, y, ref.At(x+dx, y+dy))
		}
	}
	return cur, ref
}

func TestSAD16IdenticalIsZero(t *testing.T) {
	cur, _ := shiftedFrames(64, 64, 0, 0)
	if sad := SAD16(cur, cur, 16, 16, MV{}); sad != 0 {
		t.Errorf("SAD of identical blocks = %d", sad)
	}
}

func TestSAD16Positive(t *testing.T) {
	cur, ref := shiftedFrames(64, 64, 3, 2)
	if sad := SAD16(cur, ref, 16, 16, MV{}); sad <= 0 {
		t.Errorf("SAD of shifted content = %d, want positive", sad)
	}
}

func TestMotionSearchFindsShift(t *testing.T) {
	for _, shift := range []MV{{2, 1}, {-3, 2}, {4, -4}, {0, 3}} {
		cur, ref := shiftedFrames(96, 96, shift.X, shift.Y)
		res := MotionSearch(cur, ref, 32, 32, 8, 0)
		want := MV{2 * shift.X, 2 * shift.Y} // result is in half-pel units
		if res.MV != want {
			t.Errorf("shift %v: found %v (SAD %d)", shift, res.MV, res.SAD)
		}
		if res.SAD != 0 {
			t.Errorf("shift %v: best SAD = %d, want 0", shift, res.SAD)
		}
	}
}

func TestMotionSearchEarlySkip(t *testing.T) {
	cur, ref := shiftedFrames(64, 64, 0, 0)
	res := MotionSearch(cur, ref, 16, 16, 8, 100)
	if !res.Skip {
		t.Error("static block not skipped")
	}
	if res.Candidates != 1 {
		t.Errorf("skip path evaluated %d candidates, want 1", res.Candidates)
	}
	if res.MV != (MV{}) {
		t.Errorf("skip MV = %v, want zero", res.MV)
	}
}

func TestMotionSearchCandidateCount(t *testing.T) {
	cur, ref := shiftedFrames(96, 96, 5, 5)
	res := MotionSearch(cur, ref, 32, 32, 8, 0)
	// 1 zero-MV + 9x9 coarse grid minus centre + up to 8 integer and 8
	// half-pel refinement candidates.
	max := int64(1 + 80 + 8 + 8)
	if res.Candidates < 10 || res.Candidates > max {
		t.Errorf("candidates = %d, want in [10, %d]", res.Candidates, max)
	}
}

func TestMotionSearchDeterministicTieBreak(t *testing.T) {
	// A completely flat pair of frames: every candidate has SAD equal to
	// zero; the search must deterministically keep the zero MV (skip).
	cur := video.NewFrame(64, 64)
	ref := video.NewFrame(64, 64)
	res := MotionSearch(cur, ref, 16, 16, 4, 0)
	if res.MV != (MV{}) {
		t.Errorf("flat frames: MV = %v, want {0 0} by tie-break", res.MV)
	}
}

func TestMVLess(t *testing.T) {
	if !less(MV{1, 0}, MV{2, 0}) {
		t.Error("shorter vector should order first")
	}
	if !less(MV{0, -1}, MV{0, 1}) {
		t.Error("equal length: lexicographic order")
	}
	if less(MV{1, 1}, MV{1, 1}) {
		t.Error("equal vectors are not less")
	}
}

func TestMotionCompensateInteger(t *testing.T) {
	_, ref := shiftedFrames(64, 64, 0, 0)
	var buf [64]uint8
	mv := MV{6, -4} // integer displacement (3, -2) in half-pel units
	for q := 0; q < 4; q++ {
		MotionCompensate(ref, 16, 16, q, mv, buf[:])
		ox, oy := (q&1)*8, (q>>1)*8
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				want := ref.At(16+ox+x+3, 16+oy+y-2)
				if buf[y*8+x] != want {
					t.Fatalf("quadrant %d sample (%d,%d) = %d, want %d", q, x, y, buf[y*8+x], want)
				}
			}
		}
	}
}

func TestMotionCompensateHalfPel(t *testing.T) {
	_, ref := shiftedFrames(64, 64, 0, 0)
	var buf [64]uint8
	mv := MV{1, 0} // horizontal half position
	MotionCompensate(ref, 16, 16, 0, mv, buf[:])
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			want := LumaHalfPel(ref, (16+x)<<1+1, (16+y)<<1)
			if buf[y*8+x] != want {
				t.Fatalf("sample (%d,%d) = %d, want %d", x, y, buf[y*8+x], want)
			}
		}
	}
}

func TestMotionSearchFindsHalfPelShift(t *testing.T) {
	// Build cur as the exact half-pel interpolation of ref displaced by
	// (1, 0) half-pel: the search must find that vector with SAD 0.
	_, ref := shiftedFrames(96, 96, 0, 0)
	cur := video.NewFrame(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			cur.Set(x, y, LumaHalfPel(ref, x<<1+1, y<<1))
		}
	}
	res := MotionSearch(cur, ref, 32, 32, 8, 0)
	if res.MV != (MV{1, 0}) {
		t.Errorf("found %v (SAD %d), want half-pel {1 0}", res.MV, res.SAD)
	}
	if res.SAD != 0 {
		t.Errorf("SAD = %d, want 0", res.SAD)
	}
}
