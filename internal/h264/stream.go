package h264

import "fmt"

// Frame serialisation: every frame the encoder produces is written to an
// actual bit-exact stream (this encoder's own format, built from the
// Exp-Golomb primitives H.264 uses). FrameStats.Bits counts the bits
// really written; ParseStream re-parses a frame structurally and recovers
// the macroblock mode distribution — the integration tests verify it
// matches the encoder's bookkeeping.

// Macroblock type codes in the stream.
const (
	mbTypeSkip  = 0
	mbTypeInter = 1
	mbTypeIntra = 2
)

// writeFrameHeader starts a frame in the stream.
func (e *Encoder) writeFrameHeader(intra bool) {
	e.bw.WriteUE(uint32(e.frameNo))
	e.bw.WriteUE(uint32(e.cfg.QP))
	if intra {
		e.bw.WriteBit(1)
	} else {
		e.bw.WriteBit(0)
	}
}

// writeChromaDC serialises a quantised 2x2 chroma DC block.
func (e *Encoder) writeChromaDC(dc *Block2) {
	for _, v := range dc {
		e.bw.WriteSE(v)
	}
}

// StreamStats is the outcome of structurally parsing one frame's stream.
type StreamStats struct {
	Frame int
	QP    int
	Intra int
	Inter int
	Skip  int
	// Coefficients counts the non-zero levels decoded across all blocks.
	Coefficients int
}

// ParseStream re-parses a frame written by EncodeFrame for the given
// picture dimensions and returns the macroblock statistics. It fails on
// any structural inconsistency — the round-trip test that keeps the writer
// honest.
func ParseStream(stream []byte, w, h int) (StreamStats, error) {
	var st StreamStats
	r := NewBitReader(stream)
	frame, err := r.ReadUE()
	if err != nil {
		return st, err
	}
	qp, err := r.ReadUE()
	if err != nil {
		return st, err
	}
	if _, err := r.ReadBit(); err != nil { // intra-frame flag
		return st, err
	}
	st.Frame = int(frame)
	st.QP = int(qp)

	mbs := (w / 16) * (h / 16)
	var blk Block4
	readBlocks := func(n int) error {
		for i := 0; i < n; i++ {
			if err := readBlock(r, &blk); err != nil {
				return err
			}
			for _, v := range blk {
				if v != 0 {
					st.Coefficients++
				}
			}
		}
		return nil
	}
	readChroma := func() error {
		for p := 0; p < 2; p++ {
			if err := readBlocks(4); err != nil {
				return err
			}
			for i := 0; i < 4; i++ { // chroma DC
				if v, err := r.ReadSE(); err != nil {
					return err
				} else if v != 0 {
					st.Coefficients++
				}
			}
		}
		return nil
	}

	for mb := 0; mb < mbs; mb++ {
		mbType, err := r.ReadUE()
		if err != nil {
			return st, fmt.Errorf("h264: macroblock %d: %w", mb, err)
		}
		switch mbType {
		case mbTypeSkip:
			st.Skip++
		case mbTypeInter:
			st.Inter++
			if _, err := r.ReadSE(); err != nil { // mv.X
				return st, err
			}
			if _, err := r.ReadSE(); err != nil { // mv.Y
				return st, err
			}
			if err := readBlocks(16); err != nil {
				return st, err
			}
			if err := readChroma(); err != nil {
				return st, err
			}
		case mbTypeIntra:
			st.Intra++
			for b := 0; b < 16; b++ {
				if _, err := r.ReadUE(); err != nil { // intra mode
					return st, err
				}
				if err := readBlocks(1); err != nil {
					return st, err
				}
			}
			if err := readBlocks(1); err != nil { // luma DC
				return st, err
			}
			if err := readChroma(); err != nil {
				return st, err
			}
		default:
			return st, fmt.Errorf("h264: macroblock %d: unknown type %d", mb, mbType)
		}
	}
	return st, nil
}
