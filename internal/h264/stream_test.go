package h264

import (
	"testing"

	"mrts/internal/video"
)

// encodeFrames encodes n frames and returns their stats.
func encodeFrames(t *testing.T, n int, cfg Config) []*FrameStats {
	t.Helper()
	g, err := video.NewGenerator(64, 48, 21, video.Options{Objects: 2})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(64, 48, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []*FrameStats
	for i := 0; i < n; i++ {
		st, err := enc.EncodeFrame(g.Next())
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, st)
	}
	return out
}

func TestStreamParsesBack(t *testing.T) {
	for i, st := range encodeFrames(t, 4, Config{QP: 22}) {
		ps, err := ParseStream(st.Stream, 64, 48)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ps.Frame != i {
			t.Errorf("frame number = %d, want %d", ps.Frame, i)
		}
		if ps.QP != 22 {
			t.Errorf("QP = %d, want 22", ps.QP)
		}
		if ps.Intra != st.Intra || ps.Inter != st.Inter || ps.Skip != st.Skip {
			t.Errorf("frame %d: parsed modes %d/%d/%d, encoder counted %d/%d/%d",
				i, ps.Intra, ps.Inter, ps.Skip, st.Intra, st.Inter, st.Skip)
		}
	}
}

func TestStreamBitsMatchLength(t *testing.T) {
	for i, st := range encodeFrames(t, 2, Config{}) {
		if st.Bits <= 0 {
			t.Fatalf("frame %d: no bits", i)
		}
		// The buffer is the bit count rounded up to bytes.
		wantBytes := (st.Bits + 7) / 8
		if int64(len(st.Stream)) != wantBytes {
			t.Errorf("frame %d: stream %d bytes for %d bits", i, len(st.Stream), st.Bits)
		}
	}
}

func TestStreamCoefficientsScaleWithQP(t *testing.T) {
	fine := encodeFrames(t, 1, Config{QP: 14})[0]
	coarse := encodeFrames(t, 1, Config{QP: 40})[0]
	pf, err := ParseStream(fine.Stream, 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := ParseStream(coarse.Stream, 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Coefficients <= pc.Coefficients {
		t.Errorf("fine QP coefficients (%d) should exceed coarse (%d)", pf.Coefficients, pc.Coefficients)
	}
}

func TestStreamRejectsTruncation(t *testing.T) {
	st := encodeFrames(t, 1, Config{})[0]
	if _, err := ParseStream(st.Stream[:len(st.Stream)/2], 64, 48); err == nil {
		t.Error("truncated stream parsed without error")
	}
}

func TestStreamRejectsCorruption(t *testing.T) {
	st := encodeFrames(t, 1, Config{})[0]
	bad := append([]byte(nil), st.Stream...)
	// Flip bits near the start (the frame header / first MB type): the
	// parser must either fail or at minimum produce a different MB
	// distribution — it must not crash.
	bad[1] ^= 0xFF
	ps, err := ParseStream(bad, 64, 48)
	if err == nil {
		orig, _ := ParseStream(st.Stream, 64, 48)
		if ps == orig {
			t.Error("corrupted stream parsed identically")
		}
	}
}
