package h264

import (
	"reflect"
	"testing"

	"mrts/internal/video"
)

func testSequence(frames int) []*video.Frame {
	g, err := video.NewGenerator(64, 48, 7, video.Options{Objects: 2})
	if err != nil {
		panic(err)
	}
	return g.Sequence(frames)
}

func TestNewEncoderValidatesSize(t *testing.T) {
	if _, err := NewEncoder(100, 48, Config{}); err == nil {
		t.Error("width not multiple of 16 accepted")
	}
	if _, err := NewEncoder(0, 0, Config{}); err == nil {
		t.Error("zero size accepted")
	}
}

func TestFirstFrameAllIntra(t *testing.T) {
	e, _ := NewEncoder(64, 48, Config{})
	st, err := e.EncodeFrame(testSequence(1)[0])
	if err != nil {
		t.Fatal(err)
	}
	mbs := (64 / 16) * (48 / 16)
	if st.Intra != mbs || st.Inter != 0 || st.Skip != 0 {
		t.Errorf("frame 0: intra=%d inter=%d skip=%d, want all %d intra", st.Intra, st.Inter, st.Skip, mbs)
	}
	if st.Counts[KernelSAD] != 0 {
		t.Error("intra frame ran motion estimation")
	}
	if st.Counts[KernelIPred] == 0 || st.Counts[KernelDCT] == 0 {
		t.Error("intra frame missing ipred/dct kernel invocations")
	}
	// One luma-DC Hadamard plus two chroma-DC Hadamards per intra MB.
	if st.Counts[KernelHadamard] != int64(3*mbs) {
		t.Errorf("hadamard invocations = %d, want %d (three per intra MB)", st.Counts[KernelHadamard], 3*mbs)
	}
}

func TestStaticSceneSkips(t *testing.T) {
	// Two identical frames: every macroblock of frame 1 should skip.
	f := video.NewFrame(64, 48)
	for i := range f.Y {
		f.Y[i] = uint8(i % 200)
	}
	e, _ := NewEncoder(64, 48, Config{QP: 20, SkipThreshold: 2000})
	if _, err := e.EncodeFrame(f); err != nil {
		t.Fatal(err)
	}
	st, err := e.EncodeFrame(f.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if st.Skip == 0 {
		t.Errorf("no skipped macroblocks on a static frame: %+v", st)
	}
	// Skips still run motion compensation (4 quadrants per MB).
	if st.Counts[KernelMC] < int64(st.Skip)*4 {
		t.Errorf("mc invocations = %d for %d skips", st.Counts[KernelMC], st.Skip)
	}
}

func TestDeblockCountsShape(t *testing.T) {
	e, _ := NewEncoder(64, 48, Config{})
	st, err := e.EncodeFrame(testSequence(1)[0])
	if err != nil {
		t.Fatal(err)
	}
	// bs runs on every internal luma 4x4 edge: (w/4-1)*(h/4) vertical +
	// (w/4)*(h/4-1) horizontal; chroma reuses the luma strengths.
	w4, h4 := 64/4, 48/4
	wantBS := int64((w4-1)*h4 + w4*(h4-1))
	if st.Counts[KernelBS] != wantBS {
		t.Errorf("bs invocations = %d, want %d", st.Counts[KernelBS], wantBS)
	}
	// All blocks are intra, so every edge filters — luma edges plus the
	// chroma edges on every second luma boundary.
	chroma := int64((w4/2-1)*h4 + w4*(h4/2-1))
	if st.Counts[KernelFilt] != wantBS+chroma {
		t.Errorf("filt invocations = %d, want %d on an all-intra frame", st.Counts[KernelFilt], wantBS+chroma)
	}
}

func TestInterFrameUsesMotionEstimation(t *testing.T) {
	e, _ := NewEncoder(64, 48, Config{SkipThreshold: 1})
	seq := testSequence(2)
	if _, err := e.EncodeFrame(seq[0]); err != nil {
		t.Fatal(err)
	}
	st, err := e.EncodeFrame(seq[1])
	if err != nil {
		t.Fatal(err)
	}
	if st.Counts[KernelSAD] == 0 {
		t.Error("inter frame ran no SAD")
	}
	if st.Intra+st.Inter+st.Skip != (64/16)*(48/16) {
		t.Error("macroblock modes do not add up")
	}
}

func TestEncoderDeterministic(t *testing.T) {
	run := func() []*FrameStats {
		e, _ := NewEncoder(64, 48, Config{})
		var out []*FrameStats
		for _, f := range testSequence(3) {
			st, err := e.EncodeFrame(f)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, st)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if !reflect.DeepEqual(a[i].Counts, b[i].Counts) {
			t.Fatalf("frame %d counts differ between identical runs", i)
		}
	}
}

func TestEncoderReconstructionQuality(t *testing.T) {
	e, _ := NewEncoder(64, 48, Config{QP: 20})
	seq := testSequence(4)
	for i, f := range seq {
		st, err := e.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if st.PSNR < 28 {
			t.Errorf("frame %d PSNR = %.1f dB, want >= 28 (encoder is broken)", i, st.PSNR)
		}
		if st.Bits <= 0 {
			t.Errorf("frame %d produced no bits", i)
		}
	}
}

func TestEncoderQPAffectsRate(t *testing.T) {
	bits := func(qp int) int64 {
		e, _ := NewEncoder(64, 48, Config{QP: qp})
		st, err := e.EncodeFrame(testSequence(1)[0])
		if err != nil {
			t.Fatal(err)
		}
		return st.Bits
	}
	if bits(16) <= bits(36) {
		t.Error("lower QP should produce more bits")
	}
}

func TestEncoderFrameSizeMismatch(t *testing.T) {
	e, _ := NewEncoder(64, 48, Config{})
	if _, err := e.EncodeFrame(video.NewFrame(32, 32)); err == nil {
		t.Error("mismatched frame size accepted")
	}
}

func TestForceIntraEvery(t *testing.T) {
	e, _ := NewEncoder(64, 48, Config{ForceIntraEvery: 2})
	seq := testSequence(4)
	mbs := (64 / 16) * (48 / 16)
	for i, f := range seq {
		st, err := e.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 && st.Intra != mbs {
			t.Errorf("frame %d: %d intra MBs, want forced %d", i, st.Intra, mbs)
		}
	}
}

func TestFunctionalBlocksCoverAllKernels(t *testing.T) {
	all := map[string]bool{}
	for _, fb := range FunctionalBlocks {
		for _, k := range fb.Kernels {
			if all[k] {
				t.Errorf("kernel %s appears in two functional blocks", k)
			}
			all[k] = true
		}
	}
	for _, k := range []string{
		KernelSAD, KernelSATD, KernelIPred, KernelDCT, KernelQuant,
		KernelIQuant, KernelIDCT, KernelHadamard, KernelMC, KernelCAVLC,
		KernelBS, KernelFilt,
	} {
		if !all[k] {
			t.Errorf("kernel %s not assigned to a functional block", k)
		}
	}
}
