package h264

import "mrts/internal/video"

// 4:2:0 chroma coding. Each macroblock covers one 8x8 block per chroma
// plane: four 4x4 residual transforms plus the 2x2 DC Hadamard of the
// standard's chroma path. Chroma prediction is DC for intra macroblocks
// and motion compensation with the halved luma vector for inter ones.
// The invocations feed the same kernels as luma (dct, quant, cavlc, ...):
// the reconfigurable data paths process 4x4 blocks regardless of plane.

// Block2 is a 2x2 chroma DC block.
type Block2 [4]int32

// Hadamard2 applies the 2x2 Hadamard transform (self-inverse up to a
// factor 4) used for the chroma DC coefficients.
func Hadamard2(b *Block2) {
	s0 := b[0] + b[1]
	d0 := b[0] - b[1]
	s1 := b[2] + b[3]
	d1 := b[2] - b[3]
	b[0] = s0 + s1
	b[1] = d0 + d1
	b[2] = s0 - s1
	b[3] = d0 - d1
}

// QuantDC2 quantises a 2x2 chroma DC block and reports non-zero levels.
func QuantDC2(b *Block2, qp int) int {
	qbits := uint(16 + qp/6)
	f := int64(1) << qbits / 3
	m := int64(mf[0][qp%6])
	nz := 0
	for i := range b {
		c := int64(b[i])
		neg := c < 0
		if neg {
			c = -c
		}
		level := int32((c*m + f) >> qbits)
		if level != 0 {
			nz++
		}
		if neg {
			level = -level
		}
		b[i] = level
	}
	return nz
}

// chromaPlane abstracts Cb vs Cr access on a frame.
type chromaPlane struct {
	at  func(x, y int) uint8
	set func(x, y int, v uint8)
}

func planesOf(f *video.Frame) [2]chromaPlane {
	return [2]chromaPlane{
		{at: f.CbAt, set: f.CbSet},
		{at: f.CrAt, set: f.CrSet},
	}
}

// PredictChromaDC computes the DC prediction of the 8x8 chroma block whose
// top-left chroma coordinate is (cx, cy), from the reconstructed
// neighbours (top row and left column), mirroring intra chroma DC mode.
func PredictChromaDC(at func(x, y int) uint8, cx, cy int) int32 {
	var sum int32
	for i := 0; i < 8; i++ {
		sum += int32(at(cx+i, cy-1))
		sum += int32(at(cx-1, cy+i))
	}
	return (sum + 8) >> 4
}

// MotionCompensateChroma fills dst (64 samples, row-major 8x8) with the
// chroma prediction of the macroblock at luma position (mbx, mby)
// displaced by the half-pel luma vector mv (quartered and rounded to the
// chroma integer grid).
func MotionCompensateChroma(at func(x, y int) uint8, mbx, mby int, mv MV, dst []uint8) {
	cx, cy := mbx/2+mv.X/4, mby/2+mv.Y/4
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			dst[y*8+x] = at(cx+x, cy+y)
		}
	}
}

// encodeChromaMB codes both chroma planes of one macroblock: prediction
// (intra DC or motion compensation), 4x4 transforms, the 2x2 DC Hadamard
// path and reconstruction. Kernel invocations are counted into st.
func (e *Encoder) encodeChromaMB(cur, rec *video.Frame, mbx, mby int, intra bool, mv MV, st *FrameStats) {
	curP := planesOf(cur)
	recP := planesOf(rec)
	cx, cy := mbx/2, mby/2

	for p := 0; p < 2; p++ {
		// Prediction.
		var pred [64]int32
		if intra {
			dc := PredictChromaDC(recP[p].at, cx, cy)
			st.Counts[KernelIPred]++
			for i := range pred {
				pred[i] = dc
			}
		} else {
			var buf [64]uint8
			MotionCompensateChroma(planesOf(e.ref)[p].at, mbx, mby, mv, buf[:])
			st.Counts[KernelMC]++
			for i, v := range buf {
				pred[i] = int32(v)
			}
		}

		// Four 4x4 residual transforms + DC collection.
		var dc Block2
		blocks := [4]Block4{}
		coded := [4]bool{}
		for q := 0; q < 4; q++ {
			ox, oy := (q&1)*4, (q>>1)*4
			var resid Block4
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					resid[y*4+x] = int32(curP[p].at(cx+ox+x, cy+oy+y)) - pred[(oy+y)*8+ox+x]
				}
			}
			DCT4(&resid)
			st.Counts[KernelDCT]++
			dc[q] = resid[0]
			nz := Quant(&resid, e.cfg.QP, intra)
			st.Counts[KernelQuant]++
			writeBlock(&e.bw, &resid)
			if nz > 0 {
				st.Counts[KernelCAVLC]++
				Dequant(&resid, e.cfg.QP)
				st.Counts[KernelIQuant]++
				IDCT4(&resid)
				st.Counts[KernelIDCT]++
				coded[q] = true
				blocks[q] = resid
			}
		}

		// Chroma DC path: 2x2 Hadamard, quantisation, serialisation.
		Hadamard2(&dc)
		st.Counts[KernelHadamard]++
		if nz := QuantDC2(&dc, e.cfg.QP); nz > 0 {
			st.Counts[KernelCAVLC]++
		}
		e.writeChromaDC(&dc)

		// Reconstruction.
		for q := 0; q < 4; q++ {
			ox, oy := (q&1)*4, (q>>1)*4
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					v := pred[(oy+y)*8+ox+x]
					if coded[q] {
						v += blocks[q][y*4+x]
					}
					recP[p].set(cx+ox+x, cy+oy+y, clipPixel(v))
				}
			}
		}
	}
}

// copyChromaMB motion-compensates both chroma planes of a skipped
// macroblock straight into the reconstruction.
func (e *Encoder) copyChromaMB(rec *video.Frame, mbx, mby int, mv MV, st *FrameStats) {
	refP := planesOf(e.ref)
	recP := planesOf(rec)
	var buf [64]uint8
	cx, cy := mbx/2, mby/2
	for p := 0; p < 2; p++ {
		MotionCompensateChroma(refP[p].at, mbx, mby, mv, buf[:])
		st.Counts[KernelMC]++
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				recP[p].set(cx+x, cy+y, buf[y*8+x])
			}
		}
	}
}

// FilterChromaEdge applies the deblocking filter to one 2-sample chroma
// edge segment on both planes. (x, y) is the chroma coordinate of the
// first sample on the q side. Chroma filtering reuses the luma boundary
// strength, as in the standard. It reports whether any sample changed.
func FilterChromaEdge(rec *video.Frame, x, y int, vertical bool, bs int, qp int) bool {
	if bs == BSNone {
		return false
	}
	alpha := alphaOf(qp)
	beta := betaOf(qp)
	if alpha == 0 {
		return false
	}
	tc0 := int32(bs)
	planes := planesOf(rec)
	changed := false
	for p := 0; p < 2; p++ {
		for i := 0; i < 2; i++ {
			var p1, p0, q0, q1 int32
			var setP0, setQ0 func(uint8)
			if vertical {
				yy := y + i
				p1 = int32(planes[p].at(x-2, yy))
				p0 = int32(planes[p].at(x-1, yy))
				q0 = int32(planes[p].at(x, yy))
				q1 = int32(planes[p].at(x+1, yy))
				pp, px := planes[p], x
				setP0 = func(v uint8) { pp.set(px-1, yy, v) }
				setQ0 = func(v uint8) { pp.set(px, yy, v) }
			} else {
				xx := x + i
				p1 = int32(planes[p].at(xx, y-2))
				p0 = int32(planes[p].at(xx, y-1))
				q0 = int32(planes[p].at(xx, y))
				q1 = int32(planes[p].at(xx, y+1))
				pp, py := planes[p], y
				setP0 = func(v uint8) { pp.set(xx, py-1, v) }
				setQ0 = func(v uint8) { pp.set(xx, py, v) }
			}
			d0 := abs32(q0 - p0)
			if d0 >= alpha || abs32(p1-p0) >= beta || abs32(q1-q0) >= beta {
				continue
			}
			delta := clip3(((q0-p0)<<2+(p1-q1)+4)>>3, -tc0, tc0)
			if delta == 0 {
				continue
			}
			setP0(clipPixel(p0 + delta))
			setQ0(clipPixel(q0 - delta))
			changed = true
		}
	}
	return changed
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}
