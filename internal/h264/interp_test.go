package h264

import (
	"testing"

	"mrts/internal/video"
)

func flatFrame(v uint8) *video.Frame {
	f := video.NewFrame(32, 32)
	for i := range f.Y {
		f.Y[i] = v
	}
	return f
}

func TestSixTapIdentityOnFlat(t *testing.T) {
	// The 6-tap filter preserves constant signals (taps sum to 32).
	if got := sixTap(100, 100, 100, 100, 100, 100); got != 100 {
		t.Errorf("sixTap on flat = %d, want 100", got)
	}
}

func TestSixTapClips(t *testing.T) {
	if got := sixTap(255, 0, 0, 0, 0, 255); got < 0 || got > 255 {
		t.Errorf("sixTap out of range: %d", got)
	}
	// Overshoot clipping: strong positive centre taps.
	if got := sixTap(0, 0, 255, 255, 0, 0); got != 255 {
		t.Errorf("sixTap = %d, want clipped 255", got)
	}
}

func TestLumaHalfPelIntegerPosition(t *testing.T) {
	f := flatFrame(0)
	f.Set(5, 7, 99)
	if got := LumaHalfPel(f, 10, 14); got != 99 {
		t.Errorf("integer position = %d, want 99", got)
	}
}

func TestLumaHalfPelFlat(t *testing.T) {
	// All fractional positions of a flat frame stay flat.
	f := flatFrame(73)
	for _, pos := range [][2]int{{11, 14}, {10, 15}, {11, 15}} {
		if got := LumaHalfPel(f, pos[0], pos[1]); got != 73 {
			t.Errorf("position %v = %d, want 73", pos, got)
		}
	}
}

func TestLumaHalfPelHorizontalRamp(t *testing.T) {
	// On a linear horizontal ramp, the horizontal half position is the
	// midpoint of its integer neighbours.
	f := video.NewFrame(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			f.Set(x, y, uint8(4*x))
		}
	}
	got := LumaHalfPel(f, 2*10+1, 2*16)
	want := uint8((4*10 + 4*11) / 2)
	if got != want {
		t.Errorf("half position on ramp = %d, want %d", got, want)
	}
}

func TestSAD16HalfPelIntegerFastPath(t *testing.T) {
	cur, ref := shiftedFrames(64, 64, 2, 1)
	intSAD := SAD16(cur, ref, 16, 16, MV{2, 1})
	halfSAD := SAD16HalfPel(cur, ref, 16, 16, MV{4, 2})
	if intSAD != halfSAD {
		t.Errorf("integer fast path differs: %d vs %d", intSAD, halfSAD)
	}
}

func TestSAD16HalfPelZeroOnExactInterpolation(t *testing.T) {
	_, ref := shiftedFrames(64, 64, 0, 0)
	cur := video.NewFrame(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			cur.Set(x, y, LumaHalfPel(ref, x<<1, y<<1+1))
		}
	}
	if sad := SAD16HalfPel(cur, ref, 16, 16, MV{0, 1}); sad != 0 {
		t.Errorf("SAD = %d, want 0 for exact interpolation", sad)
	}
}
