package h264

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPosClass(t *testing.T) {
	// (0,0) even/even -> 0, (1,1) odd/odd -> 2, (1,0)/(0,1) -> 1.
	if posClass(0) != 0 {
		t.Error("index 0 should be class 0")
	}
	if posClass(5) != 2 { // (x=1,y=1)
		t.Error("index 5 should be class 2")
	}
	if posClass(1) != 1 || posClass(4) != 1 {
		t.Error("mixed positions should be class 1")
	}
	counts := [3]int{}
	for i := 0; i < 16; i++ {
		counts[posClass(i)]++
	}
	if counts != [3]int{4, 8, 4} {
		t.Errorf("class distribution = %v, want [4 8 4]", counts)
	}
}

func TestQuantZeroBlock(t *testing.T) {
	var b Block4
	if nz := Quant(&b, 24, true); nz != 0 {
		t.Errorf("zero block has %d non-zero levels", nz)
	}
	if b != (Block4{}) {
		t.Error("zero block changed")
	}
}

func TestQuantKillsSmallCoefficients(t *testing.T) {
	b := Block4{3, 0, 0, 0}
	if nz := Quant(&b, 36, false); nz != 0 {
		t.Errorf("tiny coefficient survived coarse quantisation: %v", b)
	}
}

func TestQuantPreservesSign(t *testing.T) {
	f := func(v int16, qpRaw uint8) bool {
		qp := int(qpRaw) % 30 // moderate QPs so values survive
		b := Block4{int32(v)*16 + 16000, 0, 0, 0}
		if v < 0 {
			b[0] = int32(v)*16 - 16000
		}
		orig := b[0]
		Quant(&b, qp, false)
		if orig > 0 && b[0] < 0 {
			return false
		}
		if orig < 0 && b[0] > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantNonZeroCount(t *testing.T) {
	b := Block4{16000, -16000, 2, 0, 16000}
	nz := Quant(&b, 24, false)
	got := 0
	for _, v := range b {
		if v != 0 {
			got++
		}
	}
	if got != nz {
		t.Errorf("reported %d non-zero, block has %d", nz, got)
	}
}

func TestQuantIntraLargerDeadZone(t *testing.T) {
	// Intra uses f = 2^qbits/3, inter 2^qbits/6: a value that rounds up
	// in intra mode may round down in inter mode, never the opposite.
	f := func(v uint16, qpRaw uint8) bool {
		qp := int(qpRaw) % 52
		bi := Block4{int32(v), 0}
		bp := bi
		Quant(&bi, qp, true)
		Quant(&bp, qp, false)
		return bi[0] >= bp[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQStepDoublesEverySix(t *testing.T) {
	for qp := 0; qp <= 45; qp++ {
		r := QStep(qp+6) / QStep(qp)
		if math.Abs(r-2) > 1e-9 {
			t.Fatalf("QStep(%d+6)/QStep(%d) = %v, want 2", qp, qp, r)
		}
	}
	if QStep(0) != 0.625 {
		t.Errorf("QStep(0) = %v, want 0.625", QStep(0))
	}
}

func TestDequantScalesWithQP(t *testing.T) {
	// Rescaling the same levels 6 QP higher doubles the output — the
	// defining property of the H.264 quantiser design.
	for qp := 0; qp <= 40; qp += 5 {
		a := Block4{7, -3, 12, 1, 5, -9, 2, 4, 0, 1, -1, 6, 3, -2, 8, -5}
		b := a
		Dequant(&a, qp)
		Dequant(&b, qp+6)
		for i := range a {
			if b[i] != 2*a[i] {
				t.Fatalf("qp %d index %d: %d vs %d, want exact doubling", qp, i, a[i], b[i])
			}
		}
	}
}

func TestQuantDCAndDequantDC(t *testing.T) {
	b := Block4{25600, -25600, 12800, 0}
	nz := QuantDC(&b, 24)
	if nz == 0 {
		t.Fatal("DC levels vanished")
	}
	if b[1] >= 0 {
		t.Error("sign lost in DC quantisation")
	}
	DequantDC(&b, 24)
	if b[0] <= 0 || b[1] >= 0 {
		t.Error("DC dequantisation sign/magnitude wrong")
	}
	// Low QP path (shift < 2) must not panic and must keep signs.
	c := Block4{1000, -1000}
	QuantDC(&c, 3)
	DequantDC(&c, 3)
	if c[0] < 0 || c[1] > 0 {
		t.Error("low-QP DC path wrong")
	}
}
