package h264

import (
	"fmt"

	"mrts/internal/video"
)

// Decoder reconstructs frames from the encoder's bitstream. It mirrors the
// encoder's reconstruction path operation for operation — prediction from
// the decoded frame, dequantisation, inverse transform, in-loop
// deblocking — so a decoded frame is bit-exact against the encoder's own
// reconstruction. The round trip is the strongest integration test of the
// codec substrate and keeps the stream format honest: everything the
// decoder needs must really be in the bits.
type Decoder struct {
	w, h    int
	ref     *video.Frame // previous decoded frame
	frameNo int
}

// NewDecoder creates a decoder for w x h video (multiples of 16).
func NewDecoder(w, h int) (*Decoder, error) {
	if w <= 0 || h <= 0 || w%16 != 0 || h%16 != 0 {
		return nil, fmt.Errorf("h264: frame size %dx%d is not a multiple of 16", w, h)
	}
	return &Decoder{w: w, h: h}, nil
}

// DecodeFrame reconstructs one frame from its bitstream.
func (d *Decoder) DecodeFrame(stream []byte) (*video.Frame, error) {
	r := NewBitReader(stream)
	frame, err := r.ReadUE()
	if err != nil {
		return nil, err
	}
	qpU, err := r.ReadUE()
	if err != nil {
		return nil, err
	}
	qp := int(qpU)
	if _, err := r.ReadBit(); err != nil { // intra-frame flag (informative)
		return nil, err
	}
	if int(frame) != d.frameNo {
		return nil, fmt.Errorf("h264: stream is frame %d, decoder expects %d", frame, d.frameNo)
	}

	rec := video.NewFrame(d.w, d.h)
	info := make([]BlockInfo, (d.w/4)*(d.h/4))
	infoAt := func(bx, by int) *BlockInfo { return &info[(by/4)*(d.w/4)+(bx/4)] }

	for my := 0; my < d.h/16; my++ {
		for mx := 0; mx < d.w/16; mx++ {
			if err := d.decodeMB(r, rec, mx*16, my*16, qp, infoAt); err != nil {
				return nil, fmt.Errorf("h264: macroblock (%d,%d): %w", mx, my, err)
			}
		}
	}
	runDeblock(rec, info, d.w, d.h, qp, nil)

	d.ref = rec
	d.frameNo++
	return rec, nil
}

func (d *Decoder) decodeMB(r *BitReader, rec *video.Frame, mbx, mby, qp int, infoAt func(int, int) *BlockInfo) error {
	mbType, err := r.ReadUE()
	if err != nil {
		return err
	}
	switch mbType {
	case mbTypeSkip:
		if d.ref == nil {
			return fmt.Errorf("skip macroblock in the first frame")
		}
		var buf [64]uint8
		for q := 0; q < 4; q++ {
			MotionCompensate(d.ref, mbx, mby, q, MV{}, buf[:])
			writeQuadrant(rec, mbx, mby, q, buf[:])
		}
		d.copyChromaSkip(rec, mbx, mby)
		for by := mby; by < mby+16; by += 4 {
			for bx := mbx; bx < mbx+16; bx += 4 {
				*infoAt(bx, by) = BlockInfo{}
			}
		}
		return nil

	case mbTypeInter:
		if d.ref == nil {
			return fmt.Errorf("inter macroblock in the first frame")
		}
		mvx, err := r.ReadSE()
		if err != nil {
			return err
		}
		mvy, err := r.ReadSE()
		if err != nil {
			return err
		}
		mv := MV{int(mvx), int(mvy)}
		if err := d.decodeInterLuma(r, rec, mbx, mby, mv, qp, infoAt); err != nil {
			return err
		}
		return d.decodeChroma(r, rec, mbx, mby, false, mv, qp)

	case mbTypeIntra:
		if err := d.decodeIntraLuma(r, rec, mbx, mby, qp, infoAt); err != nil {
			return err
		}
		return d.decodeChroma(r, rec, mbx, mby, true, MV{}, qp)

	default:
		return fmt.Errorf("unknown macroblock type %d", mbType)
	}
}

func (d *Decoder) decodeIntraLuma(r *BitReader, rec *video.Frame, mbx, mby, qp int, infoAt func(int, int) *BlockInfo) error {
	for by := mby; by < mby+16; by += 4 {
		for bx := mbx; bx < mbx+16; bx += 4 {
			modeU, err := r.ReadUE()
			if err != nil {
				return err
			}
			if modeU >= uint32(numIntraModes) {
				return fmt.Errorf("intra mode %d out of range", modeU)
			}
			var levels Block4
			if err := readBlock(r, &levels); err != nil {
				return err
			}
			var pred Block4
			PredictIntra4(rec, bx, by, IntraMode(modeU), &pred)
			coded := reconstructBlock(&levels, qp)
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					rec.Set(bx+x, by+y, clipPixel(pred[y*4+x]+levels[y*4+x]))
				}
			}
			*infoAt(bx, by) = BlockInfo{Intra: true, Coded: coded}
		}
	}
	// Luma DC block (rate-estimation path): consume, not reconstructed.
	var dc Block4
	return readBlock(r, &dc)
}

func (d *Decoder) decodeInterLuma(r *BitReader, rec *video.Frame, mbx, mby int, mv MV, qp int, infoAt func(int, int) *BlockInfo) error {
	var pred [256]int32
	var buf [64]uint8
	for q := 0; q < 4; q++ {
		MotionCompensate(d.ref, mbx, mby, q, mv, buf[:])
		ox, oy := (q&1)*8, (q>>1)*8
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				pred[(oy+y)*16+ox+x] = int32(buf[y*8+x])
			}
		}
	}
	for by := 0; by < 16; by += 4 {
		for bx := 0; bx < 16; bx += 4 {
			var levels Block4
			if err := readBlock(r, &levels); err != nil {
				return err
			}
			coded := reconstructBlock(&levels, qp)
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					rec.Set(mbx+bx+x, mby+by+y, clipPixel(pred[(by+y)*16+bx+x]+levels[y*4+x]))
				}
			}
			*infoAt(mbx+bx, mby+by) = BlockInfo{Coded: coded, MV: mv}
		}
	}
	return nil
}

// decodeChroma mirrors encodeChromaMB's reconstruction path.
func (d *Decoder) decodeChroma(r *BitReader, rec *video.Frame, mbx, mby int, intra bool, mv MV, qp int) error {
	recP := planesOf(rec)
	var refP [2]chromaPlane
	if d.ref != nil {
		refP = planesOf(d.ref)
	}
	cx, cy := mbx/2, mby/2

	for p := 0; p < 2; p++ {
		var pred [64]int32
		if intra {
			dc := PredictChromaDC(recP[p].at, cx, cy)
			for i := range pred {
				pred[i] = dc
			}
		} else {
			var buf [64]uint8
			MotionCompensateChroma(refP[p].at, mbx, mby, mv, buf[:])
			for i, v := range buf {
				pred[i] = int32(v)
			}
		}
		for q := 0; q < 4; q++ {
			var levels Block4
			if err := readBlock(r, &levels); err != nil {
				return err
			}
			coded := reconstructBlockMode(&levels, qp)
			ox, oy := (q&1)*4, (q>>1)*4
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					v := pred[(oy+y)*8+ox+x]
					if coded {
						v += levels[y*4+x]
					}
					recP[p].set(cx+ox+x, cy+oy+y, clipPixel(v))
				}
			}
		}
		// Chroma DC path: consume the four signed values.
		for i := 0; i < 4; i++ {
			if _, err := r.ReadSE(); err != nil {
				return err
			}
		}
	}
	return nil
}

// reconstructBlock turns quantised levels into a spatial residual in place
// (dequantisation + inverse transform); it reports whether the block was
// coded. Uncoded blocks become zero, mirroring the encoder.
func reconstructBlock(levels *Block4, qp int) bool {
	coded := false
	for _, v := range levels {
		if v != 0 {
			coded = true
			break
		}
	}
	if !coded {
		*levels = Block4{}
		return false
	}
	Dequant(levels, qp)
	IDCT4(levels)
	return true
}

// reconstructBlockMode matches the chroma path, where the encoder adds the
// residual only for coded blocks (identical arithmetic, kept separate for
// symmetry with encodeChromaMB).
func reconstructBlockMode(levels *Block4, qp int) bool {
	return reconstructBlock(levels, qp)
}

// copyChromaSkip copies the chroma planes of a skipped macroblock from the
// reference (zero motion).
func (d *Decoder) copyChromaSkip(rec *video.Frame, mbx, mby int) {
	refP := planesOf(d.ref)
	recP := planesOf(rec)
	cx, cy := mbx/2, mby/2
	for p := 0; p < 2; p++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				recP[p].set(cx+x, cy+y, refP[p].at(cx+x, cy+y))
			}
		}
	}
}
