package h264

import (
	"testing"
	"testing/quick"

	"mrts/internal/video"
)

func TestBoundaryStrength(t *testing.T) {
	cases := []struct {
		name string
		p, q BlockInfo
		want int
	}{
		{"both plain", BlockInfo{}, BlockInfo{}, BSNone},
		{"p intra", BlockInfo{Intra: true}, BlockInfo{}, BSIntra},
		{"q intra", BlockInfo{}, BlockInfo{Intra: true}, BSIntra},
		{"p coded", BlockInfo{Coded: true}, BlockInfo{}, BSCoded},
		{"mv far", BlockInfo{MV: MV{4, 0}}, BlockInfo{}, BSMV},
		{"mv near", BlockInfo{MV: MV{1, 1}}, BlockInfo{MV: MV{2, 2}}, BSNone},
		{"mv negative far", BlockInfo{MV: MV{0, -5}}, BlockInfo{}, BSMV},
	}
	for _, c := range cases {
		if got := BoundaryStrength(c.p, c.q); got != c.want {
			t.Errorf("%s: BS = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestBoundaryStrengthIntraDominates(t *testing.T) {
	p := BlockInfo{Intra: true, Coded: true, MV: MV{9, 9}}
	if BoundaryStrength(p, BlockInfo{}) != BSIntra {
		t.Error("intra must dominate coded and MV conditions")
	}
}

func TestAlphaBetaTables(t *testing.T) {
	if alphaOf(15) != 0 || betaOf(15) != 0 {
		t.Error("thresholds must be 0 below index 16 (filtering disabled)")
	}
	prev := int32(0)
	for idx := 16; idx <= 51; idx++ {
		a := alphaOf(idx)
		if a < prev {
			t.Errorf("alpha not monotone at %d: %d < %d", idx, a, prev)
		}
		prev = a
		if b := betaOf(idx); b != int32(idx/2-7) {
			t.Errorf("beta(%d) = %d", idx, b)
		}
	}
	// Clamped beyond 51.
	if alphaOf(60) != alphaOf(51) {
		t.Error("alpha not clamped at 51")
	}
}

// edgeFrame builds a frame with a sharp vertical edge at x=8: left half at
// lo, right half at hi.
func edgeFrame(lo, hi uint8) *video.Frame {
	f := video.NewFrame(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if x < 8 {
				f.Set(x, y, lo)
			} else {
				f.Set(x, y, hi)
			}
		}
	}
	return f
}

func TestFilterEdgeSmoothsBlockingArtifact(t *testing.T) {
	// A small step (within alpha/beta) across a block edge is smoothed.
	f := edgeFrame(100, 104)
	changed := FilterEdge(f, 8, 0, true, BSCoded, 30)
	if !changed {
		t.Fatal("small blocking step not filtered")
	}
	// The step must have shrunk.
	gap := int(f.At(8, 1)) - int(f.At(7, 1))
	if gap >= 4 {
		t.Errorf("edge gap after filtering = %d, want < 4", gap)
	}
}

func TestFilterEdgePreservesRealEdges(t *testing.T) {
	// A large step (a real object edge, |p0-q0| >= alpha) is preserved.
	f := edgeFrame(30, 220)
	before := f.Clone()
	FilterEdge(f, 8, 0, true, BSCoded, 30)
	for i := range f.Y {
		if f.Y[i] != before.Y[i] {
			t.Fatal("real edge was smoothed away")
		}
	}
}

func TestFilterEdgeBSNone(t *testing.T) {
	f := edgeFrame(100, 104)
	if FilterEdge(f, 8, 0, true, BSNone, 30) {
		t.Error("BS 0 edge filtered")
	}
}

func TestFilterEdgeLowQPDisabled(t *testing.T) {
	f := edgeFrame(100, 104)
	if FilterEdge(f, 8, 0, true, BSCoded, 10) {
		t.Error("filtering below index 16 should be disabled")
	}
}

func TestFilterEdgeHorizontal(t *testing.T) {
	f := video.NewFrame(16, 16)
	for y := 0; y < 16; y++ {
		v := uint8(100)
		if y >= 8 {
			v = 104
		}
		for x := 0; x < 16; x++ {
			f.Set(x, y, v)
		}
	}
	if !FilterEdge(f, 0, 8, false, BSIntra, 30) {
		t.Fatal("horizontal edge not filtered")
	}
	gap := int(f.At(1, 8)) - int(f.At(1, 7))
	if gap >= 4 {
		t.Errorf("horizontal gap after filtering = %d", gap)
	}
}

func TestFilterEdgePixelsStayInRange(t *testing.T) {
	f := func(lo, hi uint8, qpRaw uint8, bsRaw uint8) bool {
		qp := int(qpRaw) % 52
		bs := int(bsRaw)%3 + 1
		fr := edgeFrame(lo, hi)
		FilterEdge(fr, 8, 0, true, bs, qp)
		// uint8 storage cannot leave range, but the filter must also
		// not corrupt samples away from the edge.
		for y := 0; y < 16; y++ {
			for x := 0; x < 16; x++ {
				if x == 7 || x == 8 {
					continue
				}
				want := lo
				if x >= 8 {
					want = hi
				}
				if fr.At(x, y) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClip3(t *testing.T) {
	if clip3(5, -2, 2) != 2 || clip3(-5, -2, 2) != -2 || clip3(1, -2, 2) != 1 {
		t.Error("clip3 wrong")
	}
}

func TestClipPixel(t *testing.T) {
	if clipPixel(-3) != 0 || clipPixel(300) != 255 || clipPixel(42) != 42 {
		t.Error("clipPixel wrong")
	}
}
