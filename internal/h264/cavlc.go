package h264

// CAVLC-style entropy-coding cost model: the "cavlc" kernel scans a
// quantised 4x4 block in zig-zag order and estimates the number of bits the
// context-adaptive variable-length coder would spend — coefficient tokens,
// trailing ones, level codes, total-zeros and run-before codes. The bit
// estimate follows the structure (not the exact tables) of the standard;
// the kernel's control-dominant bit/byte-level nature is what matters for
// the reproduction.

// zigzag4 is the 4x4 zig-zag scan order.
var zigzag4 = [16]int{0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15}

// CAVLCStats summarises one coded block.
type CAVLCStats struct {
	TotalCoeffs  int
	TrailingOnes int
	TotalZeros   int
	Bits         int
}

// EstimateCAVLC scans the block and estimates its CAVLC bit cost.
func EstimateCAVLC(b *Block4) CAVLCStats {
	var st CAVLCStats
	// Scan in reverse zig-zag to find trailing ones and runs.
	lastNZ := -1
	for i := 15; i >= 0; i-- {
		if b[zigzag4[i]] != 0 {
			lastNZ = i
			break
		}
	}
	if lastNZ < 0 {
		st.Bits = 1 // coded_block_flag / empty token
		return st
	}
	trailing := true
	for i := lastNZ; i >= 0; i-- {
		v := b[zigzag4[i]]
		if v == 0 {
			if st.TotalCoeffs > 0 {
				st.TotalZeros++
			}
			continue
		}
		st.TotalCoeffs++
		a := v
		if a < 0 {
			a = -a
		}
		if trailing && a == 1 && st.TrailingOnes < 3 {
			st.TrailingOnes++
			st.Bits++ // sign bit only
		} else {
			trailing = false
			st.Bits += levelBits(a)
		}
	}
	// coeff_token: roughly 2 bits + 2 per coefficient beyond the first.
	st.Bits += 2 + 2*max0(st.TotalCoeffs-1)
	// total_zeros and run_before.
	st.Bits += zerosBits(st.TotalZeros)
	st.Bits += st.TotalCoeffs - 1 // one run code between coefficients
	if st.Bits < 1 {
		st.Bits = 1
	}
	return st
}

// levelBits approximates the Exp-Golomb-like level code length.
func levelBits(a int32) int {
	bits := 1 // sign
	n := 0
	for v := a; v > 0; v >>= 1 {
		n++
	}
	bits += 2*n - 1
	return bits
}

func zerosBits(z int) int {
	if z == 0 {
		return 1
	}
	n := 0
	for v := z; v > 0; v >>= 1 {
		n++
	}
	return n + 2
}

func max0(v int) int {
	if v < 0 {
		return 0
	}
	return v
}
