package h264

import "mrts/internal/video"

// IntraMode enumerates the supported 4x4 intra prediction modes.
type IntraMode int

const (
	// IntraDC predicts the mean of the available neighbours.
	IntraDC IntraMode = iota
	// IntraVertical extends the row above downwards.
	IntraVertical
	// IntraHorizontal extends the column left rightwards.
	IntraHorizontal
	numIntraModes
)

func (m IntraMode) String() string {
	switch m {
	case IntraDC:
		return "DC"
	case IntraVertical:
		return "V"
	case IntraHorizontal:
		return "H"
	default:
		return "?"
	}
}

// PredictIntra4 fills pred (16 samples) with the intra prediction of mode m
// for the 4x4 block whose top-left corner is (bx, by) in rec. Neighbouring
// samples come from the (partially) reconstructed frame, as in a real
// encoder. This is the control-dominant "ipred" kernel.
func PredictIntra4(rec *video.Frame, bx, by int, m IntraMode, pred *Block4) {
	switch m {
	case IntraVertical:
		for x := 0; x < 4; x++ {
			v := int32(rec.At(bx+x, by-1))
			pred[x] = v
			pred[4+x] = v
			pred[8+x] = v
			pred[12+x] = v
		}
	case IntraHorizontal:
		for y := 0; y < 4; y++ {
			v := int32(rec.At(bx-1, by+y))
			pred[y*4+0] = v
			pred[y*4+1] = v
			pred[y*4+2] = v
			pred[y*4+3] = v
		}
	default: // IntraDC
		var sum int32
		for i := 0; i < 4; i++ {
			sum += int32(rec.At(bx+i, by-1))
			sum += int32(rec.At(bx-1, by+i))
		}
		dc := (sum + 4) >> 3
		for i := range pred {
			pred[i] = dc
		}
	}
}

// IntraCost evaluates one intra mode of a 4x4 block: prediction, residual,
// and SATD cost. The counters record one "ipred" and one "satd" kernel
// invocation each.
func IntraCost(cur, rec *video.Frame, bx, by int, m IntraMode) int32 {
	var pred Block4
	PredictIntra4(rec, bx, by, m, &pred)
	var resid Block4
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			resid[y*4+x] = int32(cur.At(bx+x, by+y)) - pred[y*4+x]
		}
	}
	return SATD4(resid)
}

// BestIntraMode tries all modes of a 4x4 block and returns the cheapest
// mode and its SATD cost; modes is the number of modes evaluated (kernel
// invocations for both "ipred" and "satd").
func BestIntraMode(cur, rec *video.Frame, bx, by int) (best IntraMode, cost int32, modes int) {
	cost = 1 << 30
	for m := IntraMode(0); m < numIntraModes; m++ {
		c := IntraCost(cur, rec, bx, by, m)
		modes++
		if c < cost {
			cost = c
			best = m
		}
	}
	return best, cost, modes
}
