package h264

import (
	"testing"

	"mrts/internal/video"
)

// FuzzParseStream feeds arbitrary bytes to the frame parser: it must
// return an error or statistics, never panic or loop.
func FuzzParseStream(f *testing.F) {
	// Seed with a real frame and a few degenerate inputs.
	g, err := video.NewGenerator(32, 32, 5, video.Options{})
	if err != nil {
		f.Fatal(err)
	}
	enc, err := NewEncoder(32, 32, Config{})
	if err != nil {
		f.Fatal(err)
	}
	st, err := enc.EncodeFrame(g.Next())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(st.Stream)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0xAA})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ParseStream(data, 32, 32)
	})
}

// FuzzBitReaderExpGolomb checks the Exp-Golomb decoder never panics and,
// when it succeeds, re-encoding fits within the consumed bits.
func FuzzBitReaderExpGolomb(f *testing.F) {
	f.Add([]byte{0b10000000})
	f.Add([]byte{0b00100110, 0xF0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewBitReader(data)
		v, err := r.ReadUE()
		if err != nil {
			return
		}
		var w BitWriter
		w.WriteUE(v)
		if w.Bits() > r.Pos() {
			t.Fatalf("re-encoding ue(%d) uses %d bits, reader consumed %d", v, w.Bits(), r.Pos())
		}
	})
}
