package h264

// H.264 4x4 quantisation. Coefficient positions fall into three classes
// depending on the parity of their coordinates; each class has its own
// multiplication factor MF (forward) and rescale factor V (inverse),
// indexed by QP mod 6 (ITU-T H.264 Table 8-15 equivalents).

// posClass returns 0 for (even,even), 1 for mixed, 2 for (odd,odd)
// coefficient positions.
func posClass(idx int) int {
	x, y := idx&3, idx>>2
	switch {
	case x&1 == 0 && y&1 == 0:
		return 0
	case x&1 == 1 && y&1 == 1:
		return 2
	default:
		return 1
	}
}

// mf[class][qp%6] is the forward quantisation multiplier.
var mf = [3][6]int32{
	{13107, 11916, 10082, 9362, 8192, 7282},
	{8066, 7490, 6554, 5825, 5243, 4559},
	{5243, 4660, 4194, 3647, 3355, 2893},
}

// vTab[class][qp%6] is the inverse quantisation rescale factor.
var vTab = [3][6]int32{
	{10, 11, 13, 14, 16, 18},
	{13, 14, 16, 18, 20, 23},
	{16, 18, 20, 23, 25, 29},
}

// Quant quantises a transformed block in place and returns the number of
// non-zero levels. intra selects the larger dead-zone offset (f = 2^qbits/3
// for intra, 2^qbits/6 for inter).
func Quant(b *Block4, qp int, intra bool) int {
	qbits := uint(15 + qp/6)
	var f int32
	if intra {
		f = int32(1) << qbits / 3
	} else {
		f = int32(1) << qbits / 6
	}
	rem := qp % 6
	nz := 0
	for i := range b {
		c := int64(b[i])
		neg := c < 0
		if neg {
			c = -c
		}
		level := int32((c*int64(mf[posClass(i)][rem]) + int64(f)) >> qbits)
		if level != 0 {
			nz++
		}
		if neg {
			level = -level
		}
		b[i] = level
	}
	return nz
}

// Dequant rescales quantised levels in place; the result feeds IDCT4, whose
// final >>6 removes the remaining scaling.
func Dequant(b *Block4, qp int) {
	shift := uint(qp / 6)
	rem := qp % 6
	for i := range b {
		b[i] = (b[i] * vTab[posClass(i)][rem]) << shift
	}
}

// QuantDC quantises the Hadamard-transformed intra-16x16 DC block (class-0
// factors, doubled dead zone per the standard's DC path).
func QuantDC(b *Block4, qp int) int {
	qbits := uint(16 + qp/6)
	f := int32(1) << qbits / 3
	m := int64(mf[0][qp%6])
	nz := 0
	for i := range b {
		c := int64(b[i])
		neg := c < 0
		if neg {
			c = -c
		}
		level := int32((c*m + int64(f)) >> qbits)
		if level != 0 {
			nz++
		}
		if neg {
			level = -level
		}
		b[i] = level
	}
	return nz
}

// DequantDC rescales a quantised DC block.
func DequantDC(b *Block4, qp int) {
	v := vTab[0][qp%6]
	shift := qp / 6
	for i := range b {
		if shift >= 2 {
			b[i] = (b[i] * v) << uint(shift-2)
		} else {
			b[i] = (b[i] * v) >> uint(2-shift)
		}
	}
}

// QStep returns the (approximate) quantiser step size for a QP, doubling
// every 6 QP as in H.264. Exposed for tests and rate statistics.
func QStep(qp int) float64 {
	base := []float64{0.625, 0.6875, 0.8125, 0.875, 1.0, 1.125}
	s := base[qp%6]
	for i := 0; i < qp/6; i++ {
		s *= 2
	}
	return s
}
