package h264

import "mrts/internal/video"

// Half-pel luma interpolation with the H.264 6-tap filter
// (1, -5, 20, 20, -5, 1)/32. Motion vectors throughout the encoder are in
// half-pel units: even components address integer sample positions, odd
// components the interpolated half positions.

// sixTap applies the 6-tap filter to six neighbouring samples and returns
// the rounded, clipped result.
func sixTap(a, b, c, d, e, f int32) int32 {
	v := (a - 5*b + 20*c + 20*d - 5*e + f + 16) >> 5
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// LumaHalfPel returns the luma sample of ref at the half-pel coordinate
// (hx, hy) (half-pel units: integer positions are even values).
func LumaHalfPel(ref *video.Frame, hx, hy int) uint8 {
	ix, iy := hx>>1, hy>>1
	fracX, fracY := hx&1, hy&1
	switch {
	case fracX == 0 && fracY == 0:
		return ref.At(ix, iy)
	case fracX == 1 && fracY == 0:
		// Horizontal half position between (ix, iy) and (ix+1, iy).
		return uint8(sixTap(
			int32(ref.At(ix-2, iy)), int32(ref.At(ix-1, iy)), int32(ref.At(ix, iy)),
			int32(ref.At(ix+1, iy)), int32(ref.At(ix+2, iy)), int32(ref.At(ix+3, iy))))
	case fracX == 0 && fracY == 1:
		// Vertical half position.
		return uint8(sixTap(
			int32(ref.At(ix, iy-2)), int32(ref.At(ix, iy-1)), int32(ref.At(ix, iy)),
			int32(ref.At(ix, iy+1)), int32(ref.At(ix, iy+2)), int32(ref.At(ix, iy+3))))
	default:
		// Centre position: 6-tap vertically over horizontally
		// interpolated half-row values (two-stage, as in the standard).
		h := func(y int) int32 {
			return sixTap(
				int32(ref.At(ix-2, y)), int32(ref.At(ix-1, y)), int32(ref.At(ix, y)),
				int32(ref.At(ix+1, y)), int32(ref.At(ix+2, y)), int32(ref.At(ix+3, y)))
		}
		return uint8(sixTap(h(iy-2), h(iy-1), h(iy), h(iy+1), h(iy+2), h(iy+3)))
	}
}

// SAD16HalfPel returns the 16x16 SAD between cur at (mbx, mby) and ref
// displaced by the half-pel vector mv. Integer vectors take the direct
// path; fractional ones interpolate on the fly.
func SAD16HalfPel(cur, ref *video.Frame, mbx, mby int, mv MV) int32 {
	if mv.X&1 == 0 && mv.Y&1 == 0 {
		return SAD16(cur, ref, mbx, mby, MV{mv.X >> 1, mv.Y >> 1})
	}
	var sad int32
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			d := int32(cur.At(mbx+x, mby+y)) -
				int32(LumaHalfPel(ref, (mbx+x)<<1+mv.X, (mby+y)<<1+mv.Y))
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}
