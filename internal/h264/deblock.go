package h264

import "mrts/internal/video"

// In-loop deblocking filter (simplified H.264): per 4-pixel edge segment a
// boundary strength is computed from the coding decisions of the adjacent
// blocks (the control-dominant, bit-level "bs" kernel of the paper's
// motivational case study), and where the strength and the sample gradients
// demand it, a short low-pass filter modifies the edge samples (the
// data-dominant "filt" kernel).

// BS levels.
const (
	BSNone  = 0
	BSCoded = 1
	BSMV    = 2
	BSIntra = 3
)

// alphaTable / betaTable follow the closed forms underlying the H.264
// threshold tables: alpha grows exponentially with the index, beta
// linearly; both are zero below index 16 (filtering disabled).
func alphaOf(idx int) int32 {
	if idx < 16 {
		return 0
	}
	if idx > 51 {
		idx = 51
	}
	// 0.8 * (2^(idx/6) - 1), in integer arithmetic.
	p := int32(1) << uint(idx/6)
	frac := []int32{0, 1, 2, 3, 4, 5}[idx%6]
	v := p + p*frac/6 - 1
	return v * 4 / 5
}

func betaOf(idx int) int32 {
	if idx < 16 {
		return 0
	}
	if idx > 51 {
		idx = 51
	}
	return int32(idx/2 - 7)
}

// BlockInfo carries the per-4x4-block coding decisions the boundary
// strength depends on.
type BlockInfo struct {
	Intra bool
	Coded bool
	MV    MV
}

// BoundaryStrength computes the filter strength across the edge between
// blocks p and q (bit/byte-level decision logic).
func BoundaryStrength(p, q BlockInfo) int {
	switch {
	case p.Intra || q.Intra:
		return BSIntra
	case p.Coded || q.Coded:
		return BSCoded
	default:
		dx := p.MV.X - q.MV.X
		dy := p.MV.Y - q.MV.Y
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dx >= 2 || dy >= 2 { // >= 1 pel in half-pel units
			return BSMV
		}
		return BSNone
	}
}

// FilterEdge applies the deblocking filter to one 4-sample edge segment.
// vertical selects a vertical edge (samples left/right) versus horizontal
// (samples above/below). (x, y) is the first sample of the segment on the
// q side. It returns whether any sample was modified.
func FilterEdge(rec *video.Frame, x, y int, vertical bool, bs int, qp int) bool {
	if bs == BSNone {
		return false
	}
	alpha := alphaOf(qp)
	beta := betaOf(qp)
	if alpha == 0 {
		return false
	}
	tc0 := int32(bs) // simplified clipping table: tc grows with bs
	changed := false
	for i := 0; i < 4; i++ {
		var p1, p0, q0, q1 int32
		var setP0, setQ0 func(uint8)
		if vertical {
			yy := y + i
			p1 = int32(rec.At(x-2, yy))
			p0 = int32(rec.At(x-1, yy))
			q0 = int32(rec.At(x, yy))
			q1 = int32(rec.At(x+1, yy))
			setP0 = func(v uint8) { rec.Set(x-1, yy, v) }
			setQ0 = func(v uint8) { rec.Set(x, yy, v) }
		} else {
			xx := x + i
			p1 = int32(rec.At(xx, y-2))
			p0 = int32(rec.At(xx, y-1))
			q0 = int32(rec.At(xx, y))
			q1 = int32(rec.At(xx, y+1))
			setP0 = func(v uint8) { rec.Set(xx, y-1, v) }
			setQ0 = func(v uint8) { rec.Set(xx, y, v) }
		}
		d0 := q0 - p0
		if d0 < 0 {
			d0 = -d0
		}
		d1 := p1 - p0
		if d1 < 0 {
			d1 = -d1
		}
		d2 := q1 - q0
		if d2 < 0 {
			d2 = -d2
		}
		if d0 >= alpha || d1 >= beta || d2 >= beta {
			continue
		}
		delta := clip3(((q0-p0)<<2+(p1-q1)+4)>>3, -tc0, tc0)
		if delta == 0 {
			continue
		}
		setP0(clipPixel(p0 + delta))
		setQ0(clipPixel(q0 - delta))
		changed = true
	}
	return changed
}

func clip3(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clipPixel(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
