package h264

import (
	"testing"
	"testing/quick"
)

func TestBitWriterSingleBits(t *testing.T) {
	var w BitWriter
	for _, b := range []int{1, 0, 1, 1, 0, 0, 0, 1, 1} {
		w.WriteBit(b)
	}
	if w.Bits() != 9 {
		t.Errorf("bits = %d", w.Bits())
	}
	buf := w.Bytes()
	if len(buf) != 2 || buf[0] != 0b10110001 || buf[1] != 0b10000000 {
		t.Errorf("bytes = %08b", buf)
	}
}

func TestBitRoundTripBits(t *testing.T) {
	f := func(v uint32, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		v &= 1<<uint(n) - 1
		var w BitWriter
		w.WriteBits(v, n)
		r := NewBitReader(w.Bytes())
		got, err := r.ReadBits(n)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestExpGolombRoundTripUE(t *testing.T) {
	f := func(v uint32) bool {
		v %= 1 << 24
		var w BitWriter
		w.WriteUE(v)
		r := NewBitReader(w.Bytes())
		got, err := r.ReadUE()
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestExpGolombRoundTripSE(t *testing.T) {
	f := func(v int16) bool {
		var w BitWriter
		w.WriteSE(int32(v))
		r := NewBitReader(w.Bytes())
		got, err := r.ReadSE()
		return err == nil && got == int32(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestExpGolombKnownCodes(t *testing.T) {
	// ue(0) = "1", ue(1) = "010", ue(2) = "011", ue(3) = "00100".
	cases := []struct {
		v    uint32
		bits int
	}{{0, 1}, {1, 3}, {2, 3}, {3, 5}, {6, 5}, {7, 7}}
	for _, c := range cases {
		var w BitWriter
		w.WriteUE(c.v)
		if w.Bits() != c.bits {
			t.Errorf("ue(%d) = %d bits, want %d", c.v, w.Bits(), c.bits)
		}
	}
}

func TestBitReaderExhaustion(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err == nil {
		t.Error("read past end accepted")
	}
}

func TestBitReaderMalformedUE(t *testing.T) {
	// 40 zero bits: no marker bit within the 32-zero limit.
	r := NewBitReader(make([]byte, 5))
	if _, err := r.ReadUE(); err == nil {
		t.Error("malformed Exp-Golomb accepted")
	}
}

func TestBlockRoundTrip(t *testing.T) {
	f := func(vals [16]int8) bool {
		var b Block4
		for i, v := range vals {
			b[i] = int32(v)
		}
		var w BitWriter
		writeBlock(&w, &b)
		r := NewBitReader(w.Bytes())
		var got Block4
		if err := readBlock(r, &got); err != nil {
			return false
		}
		return got == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBlockWriteElidesTrailingZeros(t *testing.T) {
	sparse := Block4{5} // only the DC coefficient
	var w BitWriter
	writeBlock(&w, &sparse)
	var wDense BitWriter
	dense := Block4{5, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	writeBlock(&wDense, &dense)
	if w.Bits() >= wDense.Bits() {
		t.Errorf("sparse block (%d bits) should be cheaper than dense (%d bits)",
			w.Bits(), wDense.Bits())
	}
}

func TestBitWriterReset(t *testing.T) {
	var w BitWriter
	w.WriteUE(100)
	w.Reset()
	if w.Bits() != 0 || len(w.Bytes()) != 0 {
		t.Error("Reset did not clear the writer")
	}
}
