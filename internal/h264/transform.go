// Package h264 implements a simplified but functionally real H.264-style
// video encoder: full-search motion estimation, 4x4 integer transform and
// quantisation, intra prediction, an in-loop deblocking filter with
// boundary-strength decisions, and CAVLC-style bit estimation. It is the
// workload substrate of the mRTS reproduction: every invocation of a
// compute kernel is counted, and those content-dependent counts drive the
// trigger-instruction traces the runtime-system experiments replay
// (substituting the paper's H.264 encoder binary and video sequences).
package h264

// Block4 is a 4x4 residual/coefficient block in row-major order.
type Block4 [16]int32

// DCT4 applies the H.264 4x4 forward core transform Y = C*X*C^T with
//
//	C = | 1  1  1  1 |
//	    | 2  1 -1 -2 |
//	    | 1 -1 -1  1 |
//	    | 1 -2  2 -1 |
func DCT4(b *Block4) {
	var t Block4
	// Rows.
	for i := 0; i < 4; i++ {
		r := i * 4
		s0 := b[r+0] + b[r+3]
		s1 := b[r+1] + b[r+2]
		d0 := b[r+0] - b[r+3]
		d1 := b[r+1] - b[r+2]
		t[r+0] = s0 + s1
		t[r+1] = 2*d0 + d1
		t[r+2] = s0 - s1
		t[r+3] = d0 - 2*d1
	}
	// Columns.
	for i := 0; i < 4; i++ {
		s0 := t[i+0] + t[i+12]
		s1 := t[i+4] + t[i+8]
		d0 := t[i+0] - t[i+12]
		d1 := t[i+4] - t[i+8]
		b[i+0] = s0 + s1
		b[i+4] = 2*d0 + d1
		b[i+8] = s0 - s1
		b[i+12] = d0 - 2*d1
	}
}

// IDCT4 applies the H.264 4x4 inverse core transform including the final
// rounding shift (>>6), inverting DCT4 up to the standard's scaling.
func IDCT4(b *Block4) {
	var t Block4
	// Rows.
	for i := 0; i < 4; i++ {
		r := i * 4
		s0 := b[r+0] + b[r+2]
		s1 := b[r+0] - b[r+2]
		s2 := (b[r+1] >> 1) - b[r+3]
		s3 := b[r+1] + (b[r+3] >> 1)
		t[r+0] = s0 + s3
		t[r+1] = s1 + s2
		t[r+2] = s1 - s2
		t[r+3] = s0 - s3
	}
	// Columns.
	for i := 0; i < 4; i++ {
		s0 := t[i+0] + t[i+8]
		s1 := t[i+0] - t[i+8]
		s2 := (t[i+4] >> 1) - t[i+12]
		s3 := t[i+4] + (t[i+12] >> 1)
		b[i+0] = (s0 + s3 + 32) >> 6
		b[i+4] = (s1 + s2 + 32) >> 6
		b[i+8] = (s1 - s2 + 32) >> 6
		b[i+12] = (s0 - s3 + 32) >> 6
	}
}

// Hadamard4 applies the 4x4 Hadamard transform (used for the intra-16x16
// luma DC coefficients and inside SATD).
func Hadamard4(b *Block4) {
	var t Block4
	for i := 0; i < 4; i++ {
		r := i * 4
		s0 := b[r+0] + b[r+3]
		s1 := b[r+1] + b[r+2]
		d0 := b[r+0] - b[r+3]
		d1 := b[r+1] - b[r+2]
		t[r+0] = s0 + s1
		t[r+1] = d0 + d1
		t[r+2] = s0 - s1
		t[r+3] = d0 - d1
	}
	for i := 0; i < 4; i++ {
		s0 := t[i+0] + t[i+12]
		s1 := t[i+4] + t[i+8]
		d0 := t[i+0] - t[i+12]
		d1 := t[i+4] - t[i+8]
		b[i+0] = s0 + s1
		b[i+4] = d0 + d1
		b[i+8] = s0 - s1
		b[i+12] = d0 - d1
	}
}

// SATD4 returns the sum of absolute Hadamard-transformed differences of a
// 4x4 residual block: the cost metric of intra mode decision.
func SATD4(b Block4) int32 {
	Hadamard4(&b)
	var s int32
	for _, v := range b {
		if v < 0 {
			v = -v
		}
		s += v
	}
	// Normalisation by 2 as in common SATD implementations.
	return s / 2
}
