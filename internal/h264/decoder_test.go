package h264

import (
	"bytes"
	"testing"

	"mrts/internal/video"
)

func TestNewDecoderValidates(t *testing.T) {
	if _, err := NewDecoder(30, 48); err == nil {
		t.Error("non-multiple-of-16 width accepted")
	}
}

// TestDecoderBitExactRoundTrip is the codec's strongest integration test:
// decoding the bitstream must reproduce the encoder's own reconstruction
// bit-exactly on every plane, frame after frame.
func TestDecoderBitExactRoundTrip(t *testing.T) {
	for _, qp := range []int{18, 24, 32} {
		g, err := video.NewGenerator(64, 48, 31, video.Options{Objects: 3})
		if err != nil {
			t.Fatal(err)
		}
		enc, err := NewEncoder(64, 48, Config{QP: qp})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := NewDecoder(64, 48)
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 5; f++ {
			st, err := enc.EncodeFrame(g.Next())
			if err != nil {
				t.Fatal(err)
			}
			got, err := dec.DecodeFrame(st.Stream)
			if err != nil {
				t.Fatalf("qp %d frame %d: decode: %v", qp, f, err)
			}
			want := enc.Reconstructed()
			if !bytes.Equal(got.Y, want.Y) {
				t.Fatalf("qp %d frame %d: luma mismatch (%d bytes)", qp, f, diffCount(got.Y, want.Y))
			}
			if !bytes.Equal(got.Cb, want.Cb) || !bytes.Equal(got.Cr, want.Cr) {
				t.Fatalf("qp %d frame %d: chroma mismatch (Cb %d, Cr %d bytes)",
					qp, f, diffCount(got.Cb, want.Cb), diffCount(got.Cr, want.Cr))
			}
		}
	}
}

func diffCount(a, b []byte) int {
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

func TestDecoderRejectsWrongFrameOrder(t *testing.T) {
	g, _ := video.NewGenerator(32, 32, 3, video.Options{})
	enc, _ := NewEncoder(32, 32, Config{})
	st0, err := enc.EncodeFrame(g.Next())
	if err != nil {
		t.Fatal(err)
	}
	st1, err := enc.EncodeFrame(g.Next())
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := NewDecoder(32, 32)
	if _, err := dec.DecodeFrame(st1.Stream); err == nil {
		t.Error("decoding frame 1 before frame 0 accepted")
	}
	if _, err := dec.DecodeFrame(st0.Stream); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderRejectsInterInFirstFrame(t *testing.T) {
	// Hand-craft a stream whose first macroblock claims to be inter.
	var w BitWriter
	w.WriteUE(0) // frame 0
	w.WriteUE(24)
	w.WriteBit(0)
	w.WriteUE(mbTypeInter)
	w.WriteSE(0)
	w.WriteSE(0)
	dec, _ := NewDecoder(32, 32)
	if _, err := dec.DecodeFrame(w.Bytes()); err == nil {
		t.Error("inter macroblock without a reference accepted")
	}
}

func TestDecoderRejectsTruncatedStream(t *testing.T) {
	g, _ := video.NewGenerator(32, 32, 3, video.Options{})
	enc, _ := NewEncoder(32, 32, Config{})
	st, err := enc.EncodeFrame(g.Next())
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := NewDecoder(32, 32)
	if _, err := dec.DecodeFrame(st.Stream[:len(st.Stream)/3]); err == nil {
		t.Error("truncated stream decoded")
	}
}

func TestDecodedQualityMatchesEncoderPSNR(t *testing.T) {
	g, _ := video.NewGenerator(64, 48, 13, video.Options{Objects: 2})
	enc, _ := NewEncoder(64, 48, Config{QP: 20})
	dec, _ := NewDecoder(64, 48)
	src := g.Next()
	st, err := enc.EncodeFrame(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.DecodeFrame(st.Stream)
	if err != nil {
		t.Fatal(err)
	}
	if p := psnr(src, got); p < st.PSNR-0.01 || p > st.PSNR+0.01 {
		t.Errorf("decoded PSNR %.2f differs from encoder-reported %.2f", p, st.PSNR)
	}
}
