package h264

import (
	"testing"

	"mrts/internal/video"
)

// neighbourFrame prepares a reconstructed frame where the block at (8, 8)
// has top neighbours = 50 and left neighbours = 200.
func neighbourFrame() *video.Frame {
	f := video.NewFrame(16, 16)
	for x := 0; x < 16; x++ {
		f.Set(x, 7, 50) // row above
	}
	for y := 0; y < 16; y++ {
		f.Set(7, y, 200) // column left
	}
	return f
}

func TestPredictIntraVertical(t *testing.T) {
	f := neighbourFrame()
	var pred Block4
	PredictIntra4(f, 8, 8, IntraVertical, &pred)
	for i, v := range pred {
		if v != 50 {
			t.Fatalf("vertical prediction [%d] = %d, want 50", i, v)
		}
	}
}

func TestPredictIntraHorizontal(t *testing.T) {
	f := neighbourFrame()
	var pred Block4
	PredictIntra4(f, 8, 8, IntraHorizontal, &pred)
	for i, v := range pred {
		if v != 200 {
			t.Fatalf("horizontal prediction [%d] = %d, want 200", i, v)
		}
	}
}

func TestPredictIntraDC(t *testing.T) {
	f := neighbourFrame()
	var pred Block4
	PredictIntra4(f, 8, 8, IntraDC, &pred)
	want := int32((4*50 + 4*200 + 4) >> 3)
	for i, v := range pred {
		if v != want {
			t.Fatalf("DC prediction [%d] = %d, want %d", i, v, want)
		}
	}
}

func TestBestIntraModePicksVerticalForVerticalStripes(t *testing.T) {
	// Content that continues the row above exactly: vertical wins.
	f := video.NewFrame(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			f.Set(x, y, uint8(40+x*10))
		}
	}
	mode, cost, modes := BestIntraMode(f, f, 8, 8)
	if mode != IntraVertical {
		t.Errorf("mode = %v, want V", mode)
	}
	if cost != 0 {
		t.Errorf("cost = %d, want 0 (perfect prediction)", cost)
	}
	if modes != int(numIntraModes) {
		t.Errorf("modes evaluated = %d", modes)
	}
}

func TestBestIntraModePicksHorizontalForHorizontalStripes(t *testing.T) {
	f := video.NewFrame(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			f.Set(x, y, uint8(40+y*10))
		}
	}
	mode, cost, _ := BestIntraMode(f, f, 8, 8)
	if mode != IntraHorizontal || cost != 0 {
		t.Errorf("mode = %v cost = %d, want H / 0", mode, cost)
	}
}

func TestIntraCostNonNegative(t *testing.T) {
	f := neighbourFrame()
	for m := IntraMode(0); m < numIntraModes; m++ {
		if c := IntraCost(f, f, 8, 8, m); c < 0 {
			t.Errorf("mode %v cost = %d", m, c)
		}
	}
}

func TestIntraModeString(t *testing.T) {
	if IntraDC.String() != "DC" || IntraVertical.String() != "V" || IntraHorizontal.String() != "H" {
		t.Error("mode strings wrong")
	}
	if IntraMode(9).String() != "?" {
		t.Error("unknown mode string wrong")
	}
}
