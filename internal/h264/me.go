package h264

import "mrts/internal/video"

// MV is a motion vector in half-pel units: even components address integer
// sample positions, odd components the 6-tap interpolated half positions.
type MV struct{ X, Y int }

// IsInteger reports whether both components are integer-pel.
func (v MV) IsInteger() bool { return v.X&1 == 0 && v.Y&1 == 0 }

// SAD16 returns the sum of absolute differences between the 16x16 block of
// cur at (mbx, mby) and the block of ref displaced by mv — here mv is in
// *integer*-pel units (the integer search stage). This is the
// data-dominant "sad" kernel of the motion-estimation functional block.
func SAD16(cur, ref *video.Frame, mbx, mby int, mv MV) int32 {
	var sad int32
	for y := 0; y < 16; y++ {
		cy := mby + y
		ry := mby + y + mv.Y
		for x := 0; x < 16; x++ {
			d := int32(cur.At(mbx+x, cy)) - int32(ref.At(mbx+x+mv.X, ry))
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

// MotionResult is the outcome of the search for one macroblock.
type MotionResult struct {
	// MV is the best vector in half-pel units.
	MV MV
	// SAD is the best matching cost.
	SAD int32
	// Candidates is the number of SAD kernel invocations spent.
	Candidates int64
	// Skip reports that the zero-MV cost was below the skip threshold
	// and the search terminated early.
	Skip bool
}

// MotionSearch finds the best motion vector for the macroblock at
// (mbx, mby) with a three-stage search: a coarse full search on a stride-2
// integer grid inside ±searchRange, a ±1 integer-pel refinement, and a
// ±1 half-pel refinement with on-the-fly 6-tap interpolation. A zero-MV
// early-skip check makes the kernel count content-dependent: static areas
// cost one SAD, moving areas the full search. The result vector is in
// half-pel units.
func MotionSearch(cur, ref *video.Frame, mbx, mby, searchRange int, skipThreshold int32) MotionResult {
	res := MotionResult{}
	best := SAD16(cur, ref, mbx, mby, MV{})
	res.Candidates++
	res.SAD = best
	if best <= skipThreshold {
		res.Skip = true
		return res
	}
	// Coarse stride-2 integer full search.
	intMV := MV{}
	for dy := -searchRange; dy <= searchRange; dy += 2 {
		for dx := -searchRange; dx <= searchRange; dx += 2 {
			if dx == 0 && dy == 0 {
				continue
			}
			s := SAD16(cur, ref, mbx, mby, MV{dx, dy})
			res.Candidates++
			if s < res.SAD || (s == res.SAD && less(MV{dx, dy}, intMV)) {
				res.SAD = s
				intMV = MV{dx, dy}
			}
		}
	}
	// ±1 integer refinement.
	center := intMV
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			mv := MV{center.X + dx, center.Y + dy}
			s := SAD16(cur, ref, mbx, mby, mv)
			res.Candidates++
			if s < res.SAD || (s == res.SAD && less(mv, intMV)) {
				res.SAD = s
				intMV = mv
			}
		}
	}
	// ±1 half-pel refinement around the integer optimum.
	res.MV = MV{intMV.X * 2, intMV.Y * 2}
	hcenter := res.MV
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			mv := MV{hcenter.X + dx, hcenter.Y + dy}
			s := SAD16HalfPel(cur, ref, mbx, mby, mv)
			res.Candidates++
			if s < res.SAD || (s == res.SAD && less(mv, res.MV)) {
				res.SAD = s
				res.MV = mv
			}
		}
	}
	return res
}

// less orders motion vectors for deterministic tie-breaking (prefer short,
// then lexicographic).
func less(a, b MV) bool {
	la := a.X*a.X + a.Y*a.Y
	lb := b.X*b.X + b.Y*b.Y
	if la != lb {
		return la < lb
	}
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.X < b.X
}

// MotionCompensate fills dst (64 samples, row-major) with the 8x8 quadrant
// q (0..3) of the macroblock at (mbx, mby) predicted from ref displaced by
// the half-pel vector mv. Integer vectors copy directly; fractional ones
// run the 6-tap interpolation. This is the "mc" kernel; it is invoked once
// per 8x8 quadrant.
func MotionCompensate(ref *video.Frame, mbx, mby int, q int, mv MV, dst []uint8) {
	ox := (q & 1) * 8
	oy := (q >> 1) * 8
	if mv.IsInteger() {
		ix, iy := mv.X>>1, mv.Y>>1
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				dst[y*8+x] = ref.At(mbx+ox+x+ix, mby+oy+y+iy)
			}
		}
		return
	}
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			dst[y*8+x] = LumaHalfPel(ref, (mbx+ox+x)<<1+mv.X, (mby+oy+y)<<1+mv.Y)
		}
	}
}
