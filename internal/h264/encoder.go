package h264

import (
	"fmt"
	"math"

	"mrts/internal/video"
)

// Kernel names of the encoder's compute-intensive loops, grouped by the
// functional block they belong to. The ISE library (internal/iselib) maps
// them to kernels of the multi-grained processor.
const (
	// Motion-estimation / mode-decision functional block.
	KernelSAD   = "sad"
	KernelSATD  = "satd"
	KernelIPred = "ipred"
	// Encoding-engine functional block.
	KernelDCT      = "dct"
	KernelQuant    = "quant"
	KernelIQuant   = "iquant"
	KernelIDCT     = "idct"
	KernelHadamard = "hadamard"
	KernelMC       = "mc"
	KernelCAVLC    = "cavlc"
	// In-loop deblocking-filter functional block.
	KernelBS   = "bs"
	KernelFilt = "filt"
)

// FunctionalBlocks maps each functional block of the encoder to its
// kernels, in pipeline order.
var FunctionalBlocks = []struct {
	ID      string
	Name    string
	Kernels []string
}{
	{ID: "me", Name: "Motion Estimation & Mode Decision", Kernels: []string{KernelSAD, KernelSATD, KernelIPred}},
	{ID: "enc", Name: "Encoding Engine", Kernels: []string{KernelMC, KernelDCT, KernelQuant, KernelCAVLC, KernelIQuant, KernelIDCT, KernelHadamard}},
	{ID: "dbf", Name: "In-Loop Deblocking Filter", Kernels: []string{KernelBS, KernelFilt}},
}

// FrameStats records what encoding one frame cost.
type FrameStats struct {
	Frame  int
	Counts map[string]int64
	Intra  int // intra-coded macroblocks
	Inter  int // inter-coded macroblocks
	Skip   int // skipped macroblocks
	// Bits is the exact size of the frame's serialised stream.
	Bits int64
	// Stream is the frame's serialised bitstream (the encoder's own
	// format; see ParseStream).
	Stream []byte
	PSNR   float64
}

// Config tunes the encoder.
//
// For the three tunables below a real zero is meaningful (QP 0 is the
// finest quantiser, SearchRange 0 is zero-MV-only motion search,
// SkipThreshold 0 disables skipping), but the zero value selects the
// documented default. Pass any negative value to request an explicit
// zero; Canonical folds every negative spelling to -1 so all of them
// hash to the same cache key.
type Config struct {
	// QP is the quantisation parameter (default 28; negative = QP 0).
	QP int
	// SearchRange is the motion-search range in pels (default 8;
	// negative = 0, zero-MV only).
	SearchRange int
	// SkipThreshold is the zero-MV SAD below which a macroblock is
	// skipped (default 600; negative = 0, never skip).
	SkipThreshold int32
	// ForceIntraEvery inserts periodic intra frames (0 = only frame 0).
	ForceIntraEvery int
}

// Canonical returns the configuration with every default applied, for
// content-addressed cache keys. Explicit-zero sentinels normalise to -1.
func (c Config) Canonical() Config {
	c.defaults()
	if c.QP < 0 {
		c.QP = -1
	}
	if c.SearchRange < 0 {
		c.SearchRange = -1
	}
	if c.SkipThreshold < 0 {
		c.SkipThreshold = -1
	}
	return c
}

func (c *Config) defaults() {
	if c.QP == 0 {
		c.QP = 28
	}
	if c.SearchRange == 0 {
		c.SearchRange = 8
	}
	if c.SkipThreshold == 0 {
		c.SkipThreshold = 600
	}
}

// effective resolves the explicit-zero sentinels to the values the
// encoding loops use.
func (c *Config) effective() {
	c.defaults()
	if c.QP < 0 {
		c.QP = 0
	}
	if c.SearchRange < 0 {
		c.SearchRange = 0
	}
	if c.SkipThreshold < 0 {
		c.SkipThreshold = 0
	}
}

// Encoder encodes a frame sequence and counts kernel invocations.
type Encoder struct {
	cfg     Config
	w, h    int
	mbW     int
	mbH     int
	ref     *video.Frame // previous reconstructed frame
	frameNo int
	bw      BitWriter // per-frame bitstream
}

// NewEncoder creates an encoder for w x h video. Dimensions must be
// multiples of 16 (macroblock size).
func NewEncoder(w, h int, cfg Config) (*Encoder, error) {
	if w <= 0 || h <= 0 || w%16 != 0 || h%16 != 0 {
		return nil, fmt.Errorf("h264: frame size %dx%d is not a multiple of 16", w, h)
	}
	cfg.effective()
	return &Encoder{cfg: cfg, w: w, h: h, mbW: w / 16, mbH: h / 16}, nil
}

// FrameNo returns the index the next EncodeFrame call will encode.
func (e *Encoder) FrameNo() int { return e.frameNo }

// Reconstructed returns the most recent reconstructed frame (the decoder
// reference), or nil before the first EncodeFrame.
func (e *Encoder) Reconstructed() *video.Frame { return e.ref }

// EncodeFrame encodes one frame against the previous reconstructed frame
// and returns the per-kernel invocation counts.
func (e *Encoder) EncodeFrame(cur *video.Frame) (*FrameStats, error) {
	if cur.W != e.w || cur.H != e.h {
		return nil, fmt.Errorf("h264: frame size %dx%d does not match encoder %dx%d", cur.W, cur.H, e.w, e.h)
	}
	st := &FrameStats{Frame: e.frameNo, Counts: make(map[string]int64)}
	rec := video.NewFrame(e.w, e.h)
	forceIntra := e.ref == nil ||
		(e.cfg.ForceIntraEvery > 0 && e.frameNo%e.cfg.ForceIntraEvery == 0)
	e.bw.Reset()
	e.writeFrameHeader(forceIntra)

	// Per-4x4-block coding info for the deblocking filter.
	info := make([]BlockInfo, (e.w/4)*(e.h/4))
	infoAt := func(bx, by int) *BlockInfo { return &info[(by/4)*(e.w/4)+(bx/4)] }

	for my := 0; my < e.mbH; my++ {
		for mx := 0; mx < e.mbW; mx++ {
			mbx, mby := mx*16, my*16
			e.encodeMB(cur, rec, mbx, mby, forceIntra, st, infoAt)
		}
	}

	// In-loop deblocking over the reconstructed frame.
	e.deblock(rec, info, st)

	st.PSNR = psnr(cur, rec)
	st.Bits = int64(e.bw.Bits())
	st.Stream = append([]byte(nil), e.bw.Bytes()...)
	e.ref = rec
	e.frameNo++
	return st, nil
}

func (e *Encoder) encodeMB(cur, rec *video.Frame, mbx, mby int, forceIntra bool, st *FrameStats, infoAt func(int, int) *BlockInfo) {
	intra := forceIntra
	var motion MotionResult
	if !forceIntra {
		// --- Motion estimation & mode decision functional block ---
		motion = MotionSearch(cur, e.ref, mbx, mby, e.cfg.SearchRange, e.cfg.SkipThreshold)
		st.Counts[KernelSAD] += motion.Candidates
		if motion.Skip {
			// Skip macroblock: motion-compensated copy, no coding.
			e.bw.WriteUE(mbTypeSkip)
			var buf [64]uint8
			for q := 0; q < 4; q++ {
				MotionCompensate(e.ref, mbx, mby, q, motion.MV, buf[:])
				st.Counts[KernelMC]++
				writeQuadrant(rec, mbx, mby, q, buf[:])
			}
			e.copyChromaMB(rec, mbx, mby, motion.MV, st)
			for by := mby; by < mby+16; by += 4 {
				for bx := mbx; bx < mbx+16; bx += 4 {
					*infoAt(bx, by) = BlockInfo{MV: motion.MV}
				}
			}
			st.Skip++
			return
		}
		// Intra estimate on the four corner 4x4 blocks (sub-sampled
		// mode decision, as fast encoders do).
		var intraEst int32
		for _, off := range [4][2]int{{0, 0}, {12, 0}, {0, 12}, {12, 12}} {
			_, cost, modes := BestIntraMode(cur, rec, mbx+off[0], mby+off[1])
			st.Counts[KernelIPred] += int64(modes)
			st.Counts[KernelSATD] += int64(modes)
			intraEst += cost
		}
		intraEst *= 4 // scale the 4 sampled blocks to all 16
		intra = intraEst < motion.SAD
	}

	if intra {
		e.bw.WriteUE(mbTypeIntra)
		e.encodeIntraMB(cur, rec, mbx, mby, st, infoAt)
		e.encodeChromaMB(cur, rec, mbx, mby, true, MV{}, st)
		st.Intra++
		return
	}
	e.bw.WriteUE(mbTypeInter)
	e.bw.WriteSE(int32(motion.MV.X))
	e.bw.WriteSE(int32(motion.MV.Y))
	e.encodeInterMB(cur, rec, mbx, mby, motion.MV, st, infoAt)
	e.encodeChromaMB(cur, rec, mbx, mby, false, motion.MV, st)
	st.Inter++
}

func (e *Encoder) encodeIntraMB(cur, rec *video.Frame, mbx, mby int, st *FrameStats, infoAt func(int, int) *BlockInfo) {
	var dcBlock Block4
	dcIdx := 0
	for by := mby; by < mby+16; by += 4 {
		for bx := mbx; bx < mbx+16; bx += 4 {
			mode, _, modes := BestIntraMode(cur, rec, bx, by)
			st.Counts[KernelIPred] += int64(modes)
			st.Counts[KernelSATD] += int64(modes)
			e.bw.WriteUE(uint32(mode))

			var pred Block4
			PredictIntra4(rec, bx, by, mode, &pred)
			st.Counts[KernelIPred]++

			var resid Block4
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					resid[y*4+x] = int32(cur.At(bx+x, by+y)) - pred[y*4+x]
				}
			}
			DCT4(&resid)
			st.Counts[KernelDCT]++
			dcBlock[dcIdx] = resid[0]
			dcIdx++
			nz := Quant(&resid, e.cfg.QP, true)
			st.Counts[KernelQuant]++
			writeBlock(&e.bw, &resid)

			coded := nz > 0
			if coded {
				st.Counts[KernelCAVLC]++
				Dequant(&resid, e.cfg.QP)
				st.Counts[KernelIQuant]++
				IDCT4(&resid)
				st.Counts[KernelIDCT]++
			} else {
				resid = Block4{}
			}
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					rec.Set(bx+x, by+y, clipPixel(pred[y*4+x]+resid[y*4+x]))
				}
			}
			*infoAt(bx, by) = BlockInfo{Intra: true, Coded: coded}
		}
	}
	// Luma-DC Hadamard path (the DC coefficients' own transform and
	// entropy coding).
	Hadamard4(&dcBlock)
	st.Counts[KernelHadamard]++
	if nz := QuantDC(&dcBlock, e.cfg.QP); nz > 0 {
		st.Counts[KernelCAVLC]++
	}
	writeBlock(&e.bw, &dcBlock)
}

func (e *Encoder) encodeInterMB(cur, rec *video.Frame, mbx, mby int, mv MV, st *FrameStats, infoAt func(int, int) *BlockInfo) {
	var pred [256]int32
	var buf [64]uint8
	for q := 0; q < 4; q++ {
		MotionCompensate(e.ref, mbx, mby, q, mv, buf[:])
		st.Counts[KernelMC]++
		ox, oy := (q&1)*8, (q>>1)*8
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				pred[(oy+y)*16+ox+x] = int32(buf[y*8+x])
			}
		}
	}
	for by := 0; by < 16; by += 4 {
		for bx := 0; bx < 16; bx += 4 {
			var resid Block4
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					resid[y*4+x] = int32(cur.At(mbx+bx+x, mby+by+y)) - pred[(by+y)*16+bx+x]
				}
			}
			DCT4(&resid)
			st.Counts[KernelDCT]++
			nz := Quant(&resid, e.cfg.QP, false)
			st.Counts[KernelQuant]++
			writeBlock(&e.bw, &resid)

			coded := nz > 0
			if coded {
				st.Counts[KernelCAVLC]++
				Dequant(&resid, e.cfg.QP)
				st.Counts[KernelIQuant]++
				IDCT4(&resid)
				st.Counts[KernelIDCT]++
			} else {
				resid = Block4{}
			}
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					rec.Set(mbx+bx+x, mby+by+y, clipPixel(pred[(by+y)*16+bx+x]+resid[y*4+x]))
				}
			}
			*infoAt(mbx+bx, mby+by) = BlockInfo{Coded: coded, MV: mv}
		}
	}
}

// deblock runs the in-loop deblocking filter functional block over the
// reconstructed frame, counting kernel invocations.
func (e *Encoder) deblock(rec *video.Frame, info []BlockInfo, st *FrameStats) {
	runDeblock(rec, info, e.w, e.h, e.cfg.QP, st.Counts)
}

// runDeblock applies the in-loop deblocking filter; it is shared by the
// encoder and the decoder (which passes nil counts) so both sides filter
// identically — a requirement for bit-exact reconstruction.
func runDeblock(rec *video.Frame, info []BlockInfo, w, h, qp int, counts map[string]int64) {
	w4 := w / 4
	at := func(bx, by int) BlockInfo { return info[by*w4+bx] }
	count := func(k string) {
		if counts != nil {
			counts[k]++
		}
	}
	// Vertical edges (filter left edge of every 4x4 block except column 0).
	for by := 0; by < h/4; by++ {
		for bx := 1; bx < w4; bx++ {
			bs := BoundaryStrength(at(bx-1, by), at(bx, by))
			count(KernelBS)
			if bs != BSNone {
				FilterEdge(rec, bx*4, by*4, true, bs, qp)
				count(KernelFilt)
			}
		}
	}
	// Horizontal edges.
	for by := 1; by < h/4; by++ {
		for bx := 0; bx < w4; bx++ {
			bs := BoundaryStrength(at(bx, by-1), at(bx, by))
			count(KernelBS)
			if bs != BSNone {
				FilterEdge(rec, bx*4, by*4, false, bs, qp)
				count(KernelFilt)
			}
		}
	}
	// Chroma edges sit on every second luma 4x4 boundary and reuse the
	// luma boundary strength (no extra bs kernel invocations).
	for by := 0; by < h/4; by++ {
		for bx := 2; bx < w4; bx += 2 {
			bs := BoundaryStrength(at(bx-1, by), at(bx, by))
			if bs != BSNone {
				FilterChromaEdge(rec, bx*2, by*2, true, bs, qp)
				count(KernelFilt)
			}
		}
	}
	for by := 2; by < h/4; by += 2 {
		for bx := 0; bx < w4; bx++ {
			bs := BoundaryStrength(at(bx, by-1), at(bx, by))
			if bs != BSNone {
				FilterChromaEdge(rec, bx*2, by*2, false, bs, qp)
				count(KernelFilt)
			}
		}
	}
}

func writeQuadrant(rec *video.Frame, mbx, mby, q int, buf []uint8) {
	ox, oy := (q&1)*8, (q>>1)*8
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			rec.Set(mbx+ox+x, mby+oy+y, buf[y*8+x])
		}
	}
}

func psnr(a, b *video.Frame) float64 {
	var sse float64
	for i := range a.Y {
		d := float64(a.Y[i]) - float64(b.Y[i])
		sse += d * d
	}
	if sse == 0 {
		return 99
	}
	mse := sse / float64(len(a.Y))
	return 10 * math.Log10(255*255/mse)
}
