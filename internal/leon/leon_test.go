package leon

import (
	"testing"
	"testing/quick"
)

func run(t *testing.T, src string, setup func(*CPU)) *CPU {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c := New(1024)
	if setup != nil {
		setup(c)
	}
	c.Load(prog)
	if err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestALUBasics(t *testing.T) {
	c := run(t, `
		movi r1, 7
		movi r2, 5
		add  r3, r1, r2
		sub  r4, r1, r2
		mul  r5, r1, r2
		div  r6, r1, r2
		and  r7, r1, r2
		or   r8, r1, r2
		xor  r9, r1, r2
		halt
	`, nil)
	want := map[int]int32{3: 12, 4: 2, 5: 35, 6: 1, 7: 5, 8: 7, 9: 2}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, c.Regs[r], v)
		}
	}
}

func TestShifts(t *testing.T) {
	c := run(t, `
		movi r1, -8
		sll  r2, r1, 1
		srl  r3, r1, 1
		sra  r4, r1, 1
		halt
	`, nil)
	if c.Regs[2] != -16 {
		t.Errorf("sll = %d", c.Regs[2])
	}
	if c.Regs[3] != 0x7FFFFFFC {
		t.Errorf("srl = %d", c.Regs[3])
	}
	if c.Regs[4] != -4 {
		t.Errorf("sra = %d", c.Regs[4])
	}
}

func TestR0Hardwired(t *testing.T) {
	c := run(t, `
		movi r0, 99
		addi r0, r0, 5
		add  r1, r0, r0
		halt
	`, nil)
	if c.Regs[0] != 0 || c.Regs[1] != 0 {
		t.Errorf("r0 = %d, r1 = %d; r0 must stay zero", c.Regs[0], c.Regs[1])
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	c := run(t, `
		movi r1, -123456
		st   r1, r0, 100
		ld   r2, r0, 100
		movi r3, 200
		stb  r3, r0, 104
		ldub r4, r0, 104
		halt
	`, nil)
	if c.Regs[2] != -123456 {
		t.Errorf("word round trip = %d", c.Regs[2])
	}
	if c.Regs[4] != 200 {
		t.Errorf("byte round trip = %d", c.Regs[4])
	}
}

func TestLoopAndBranch(t *testing.T) {
	// Sum 1..10.
	c := run(t, `
		movi r1, 0   ; i
		movi r2, 0   ; sum
		movi r3, 10
	loop:
		addi r1, r1, 1
		add  r2, r2, r1
		bne  r1, r3, loop
		halt
	`, nil)
	if c.Regs[2] != 55 {
		t.Errorf("sum = %d, want 55", c.Regs[2])
	}
}

func TestCycleAccounting(t *testing.T) {
	c := run(t, `
		movi r1, 1   ; 1 cycle
		ld   r2, r0, 0  ; 2 cycles
		mul  r3, r1, r1 ; 4 cycles
		halt            ; 0
	`, nil)
	if c.Cycles != 7 {
		t.Errorf("cycles = %d, want 7", c.Cycles)
	}
	if c.Instructions != 4 {
		t.Errorf("instructions = %d, want 4", c.Instructions)
	}
}

func TestTakenBranchPenalty(t *testing.T) {
	taken := run(t, `
		movi r1, 1
		beq  r1, r1, out
		nop
	out:	halt
	`, nil)
	notTaken := run(t, `
		movi r1, 1
		beq  r1, r0, out
		nop
	out:	halt
	`, nil)
	if taken.Cycles != notTaken.Cycles {
		// taken: movi(1) + beq(1+1) = 3; not taken: movi + beq(1) + nop = 3.
		t.Logf("taken %d vs not taken %d cycles", taken.Cycles, notTaken.Cycles)
	}
	// halt retires too: movi+beq+halt vs movi+beq+nop+halt.
	if taken.Instructions != 3 || notTaken.Instructions != 4 {
		t.Errorf("instruction counts %d/%d, want 3/4", taken.Instructions, notTaken.Instructions)
	}
}

func TestRunawayBudget(t *testing.T) {
	prog := MustAssemble(`
	loop:	jmp loop
	`)
	c := New(64)
	c.Load(prog)
	if err := c.Run(1000); err == nil {
		t.Error("infinite loop not caught by the instruction budget")
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2, r3",
		"add r1, r2",       // wrong arity
		"add r1, r2, r99",  // bad register
		"movi r1, zz",      // bad immediate
		"beq r1, r2, nope", // undefined label
		"dup: nop\ndup: nop",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("assembled invalid program %q", src)
		}
	}

	c := New(16)
	c.Load(MustAssemble("ld r1, r0, 100\nhalt"))
	if err := c.Run(10); err == nil {
		t.Error("out-of-range load accepted")
	}
	c2 := New(16)
	c2.Load(MustAssemble("movi r1, 0\ndiv r2, r1, r1\nhalt"))
	if err := c2.Run(10); err == nil {
		t.Error("division by zero accepted")
	}
}

func TestMeasureSADMatchesGo(t *testing.T) {
	f := func(seed uint8) bool {
		cur := make([]byte, 256)
		ref := make([]byte, 256)
		s := uint32(seed) + 1
		next := func() byte {
			s = s*1664525 + 1013904223
			return byte(s >> 16)
		}
		var want int32
		for i := range cur {
			cur[i], ref[i] = next(), next()
			d := int32(cur[i]) - int32(ref[i])
			if d < 0 {
				d = -d
			}
			want += d
		}
		sad, cycles, err := MeasureSAD(cur, ref)
		return err == nil && sad == want && cycles > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMeasureSADCycles(t *testing.T) {
	cur := make([]byte, 256)
	ref := make([]byte, 256)
	_, cycles, err := MeasureSAD(cur, ref)
	if err != nil {
		t.Fatal(err)
	}
	// 64 iterations of a ~45-cycle loop body: the measured RISC-mode
	// cost of an optimised word-at-a-time SAD.
	if cycles < 2000 || cycles > 4000 {
		t.Errorf("SAD cycles = %d, expected in [2000, 4000]", cycles)
	}
}

func TestMeasureQuantMatchesGo(t *testing.T) {
	coeffs := [16]int32{100, -200, 3000, -4, 0, 77, -880, 12345, -1, 9, 0, 0, 4096, -4096, 64, -64}
	const mf, f, qbits = 13107, 43690, 17
	out, cycles, err := MeasureQuant(coeffs, mf, f, qbits)
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 0 {
		t.Error("no cycles measured")
	}
	for i, c := range coeffs {
		neg := c < 0
		if neg {
			c = -c
		}
		want := (c*mf + f) >> qbits
		if neg {
			want = -want
		}
		if out[i] != want {
			t.Errorf("coeff %d: level %d, want %d", i, out[i], want)
		}
	}
}

func TestMeasureBSMatchesGo(t *testing.T) {
	cases := []struct {
		pI, qI, pC, qC bool
		dx, dy         int32
		want           int32
	}{
		{true, false, false, false, 0, 0, 3},
		{false, true, true, true, 9, 9, 3},
		{false, false, true, false, 0, 0, 1},
		{false, false, false, false, 2, 0, 2},
		{false, false, false, false, 0, -2, 2},
		{false, false, false, false, 1, 1, 0},
		{false, false, false, false, 0, 0, 0},
	}
	for _, c := range cases {
		got, cycles, err := MeasureBS(c.pI, c.qI, c.pC, c.qC, c.dx, c.dy)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("BS(%+v) = %d, want %d", c, got, c.want)
		}
		if cycles <= 0 || cycles > 200 {
			t.Errorf("BS cycles = %d", cycles)
		}
	}
}

func TestMeasureDCTMatchesReference(t *testing.T) {
	// Compare against an independent Go evaluation of the same
	// butterflies (the h264 package's DCT4 is cross-checked in the
	// iselib calibration tests to avoid an import here).
	ref := func(b [16]int32) [16]int32 {
		var tm [16]int32
		for i := 0; i < 4; i++ {
			r := i * 4
			s0, s1 := b[r+0]+b[r+3], b[r+1]+b[r+2]
			d0, d1 := b[r+0]-b[r+3], b[r+1]-b[r+2]
			tm[r+0], tm[r+1], tm[r+2], tm[r+3] = s0+s1, 2*d0+d1, s0-s1, d0-2*d1
		}
		var out [16]int32
		for i := 0; i < 4; i++ {
			s0, s1 := tm[i+0]+tm[i+12], tm[i+4]+tm[i+8]
			d0, d1 := tm[i+0]-tm[i+12], tm[i+4]-tm[i+8]
			out[i+0], out[i+4], out[i+8], out[i+12] = s0+s1, 2*d0+d1, s0-s1, d0-2*d1
		}
		return out
	}
	blk := [16]int32{5, -3, 120, 44, -90, 7, 0, 1, 33, -33, 8, -8, 250, -250, 100, -100}
	got, cycles, err := MeasureDCT(blk)
	if err != nil {
		t.Fatal(err)
	}
	if want := ref(blk); got != want {
		t.Errorf("DCT mismatch:\n got %v\nwant %v", got, want)
	}
	if cycles < 150 || cycles > 500 {
		t.Errorf("DCT cycles = %d, want a few hundred", cycles)
	}
}

func TestMeasureFiltMatchesGo(t *testing.T) {
	// Reference implementation of the same per-row filter.
	ref := func(rows [4][4]uint8, alpha, beta, tc int32) [4][4]uint8 {
		out := rows
		for r := 0; r < 4; r++ {
			p1, p0 := int32(rows[r][0]), int32(rows[r][1])
			q0, q1 := int32(rows[r][2]), int32(rows[r][3])
			abs := func(v int32) int32 {
				if v < 0 {
					return -v
				}
				return v
			}
			if abs(q0-p0) >= alpha || abs(p1-p0) >= beta || abs(q1-q0) >= beta {
				continue
			}
			delta := ((q0-p0)<<2 + p1 - q1 + 4) >> 3
			if delta < -tc {
				delta = -tc
			}
			if delta > tc {
				delta = tc
			}
			out[r][1] = uint8(p0 + delta)
			out[r][2] = uint8(q0 - delta)
		}
		return out
	}

	cases := [][4][4]uint8{
		{{100, 100, 104, 104}, {100, 101, 105, 104}, {90, 100, 108, 110}, {100, 100, 100, 100}},
		{{30, 30, 220, 220}, {10, 20, 200, 210}, {0, 0, 255, 255}, {128, 128, 128, 128}},
	}
	for i, rows := range cases {
		got, cycles, err := MeasureFilt(rows, 20, 6, 2)
		if err != nil {
			t.Fatal(err)
		}
		if want := ref(rows, 20, 6, 2); got != want {
			t.Errorf("case %d:\n got %v\nwant %v", i, got, want)
		}
		if cycles <= 0 || cycles > 400 {
			t.Errorf("case %d: cycles = %d", i, cycles)
		}
	}
}
