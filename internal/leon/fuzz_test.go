package leon

import "testing"

// FuzzAssemble feeds arbitrary text to the assembler: it must return a
// program or an error, never panic.
func FuzzAssemble(f *testing.F) {
	f.Add("movi r1, 5\nhalt")
	f.Add("loop: addi r1, r1, 1\nbne r1, r2, loop\nhalt")
	f.Add("x: y: z:")
	f.Add("add r1 r2 r3")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			return
		}
		// Whatever assembles must also execute without panicking
		// (errors and budget exhaustion are fine).
		c := New(64)
		c.Load(prog)
		_ = c.Run(1000)
	})
}
