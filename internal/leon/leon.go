// Package leon is a small functional instruction-set simulator for a
// LEON-class (SPARC V8 flavoured) 32-bit RISC core — the core processor of
// the paper's platform (Section 5.1). It executes register/memory programs
// with a simple per-opcode cycle model and is used to *measure* the
// RISC-mode latencies of the encoder's compute kernels (internal/leon's
// kernels.go), grounding the latency constants of the ISE library in
// executable code rather than hand-waving.
//
// The machine: 32 general registers (r0 hardwired to zero), byte-addressed
// little-endian memory, MIPS-style compare-and-branch instructions (a
// simplification over SPARC's condition codes that does not change cycle
// counts), and the classic single-issue timing of LEON3: 1 cycle for ALU
// operations, 2 for loads/stores, 4 for multiply, 35 for divide, 2 for
// taken branches.
package leon

import "fmt"

// Op enumerates the supported operations.
type Op uint8

// Operations. Three-register forms unless noted; *I forms take an
// immediate in place of the second source.
const (
	OpNop Op = iota
	OpHalt
	// ALU
	OpAdd
	OpAddI
	OpSub
	OpSubI
	OpAnd
	OpAndI
	OpOr
	OpOrI
	OpXor
	OpSll  // shift left logical (immediate amount)
	OpSrl  // shift right logical (immediate amount)
	OpSra  // shift right arithmetic (immediate amount)
	OpSllV // shift left logical (register amount)
	OpSrlV // shift right logical (register amount)
	OpSraV // shift right arithmetic (register amount)
	OpMul
	OpDiv
	OpMovI // rd = imm
	// Memory
	OpLd   // rd = mem32[rs+imm]
	OpLdUB // rd = zero-extended mem8[rs+imm]
	OpSt   // mem32[rs+imm] = rt
	OpStB  // mem8[rs+imm] = low byte of rt
	// Control
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBle
	OpBgt
	OpJmp
)

var opNames = map[Op]string{
	OpNop: "nop", OpHalt: "halt",
	OpAdd: "add", OpAddI: "addi", OpSub: "sub", OpSubI: "subi",
	OpAnd: "and", OpAndI: "andi", OpOr: "or", OpOrI: "ori", OpXor: "xor",
	OpSll: "sll", OpSrl: "srl", OpSra: "sra",
	OpSllV: "sllv", OpSrlV: "srlv", OpSraV: "srav",
	OpMul: "mul", OpDiv: "div", OpMovI: "movi",
	OpLd: "ld", OpLdUB: "ldub", OpSt: "st", OpStB: "stb",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBle: "ble", OpBgt: "bgt", OpJmp: "jmp",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// opCycles is the per-opcode cycle cost (LEON3-style single issue).
var opCycles = map[Op]int64{
	OpNop: 1, OpHalt: 0,
	OpAdd: 1, OpAddI: 1, OpSub: 1, OpSubI: 1,
	OpAnd: 1, OpAndI: 1, OpOr: 1, OpOrI: 1, OpXor: 1,
	OpSll: 1, OpSrl: 1, OpSra: 1, OpSllV: 1, OpSrlV: 1, OpSraV: 1,
	OpMul: 4, OpDiv: 35, OpMovI: 1,
	OpLd: 2, OpLdUB: 2, OpSt: 2, OpStB: 2,
	// Branches cost 1 when not taken; +1 applied when taken. Jmp 2.
	OpBeq: 1, OpBne: 1, OpBlt: 1, OpBge: 1, OpBle: 1, OpBgt: 1,
	OpJmp: 2,
}

const takenBranchPenalty = 1

// Instr is one decoded instruction.
type Instr struct {
	Op         Op
	Rd, Rs, Rt uint8
	Imm        int32
	// Target is the branch/jump destination (instruction index).
	Target int
}

// CPU is the simulator state.
type CPU struct {
	Regs [32]int32
	Mem  []byte
	PC   int
	// Cycles accumulates the executed cycle count.
	Cycles int64
	// Instructions counts retired instructions.
	Instructions int64

	prog []Instr
}

// New creates a CPU with the given memory size in bytes.
func New(memSize int) *CPU {
	return &CPU{Mem: make([]byte, memSize)}
}

// Load installs a program and resets PC (registers and memory are kept so
// callers can set up inputs first or reuse state between runs).
func (c *CPU) Load(prog []Instr) {
	c.prog = prog
	c.PC = 0
}

// ResetCounters clears the cycle and instruction counters.
func (c *CPU) ResetCounters() {
	c.Cycles = 0
	c.Instructions = 0
}

func (c *CPU) mem32(addr int32) (int, error) {
	a := int(addr)
	if a < 0 || a+4 > len(c.Mem) {
		return 0, fmt.Errorf("leon: memory access at %d out of range (size %d)", a, len(c.Mem))
	}
	return a, nil
}

// Step executes one instruction. It returns false when the program halted.
func (c *CPU) Step() (bool, error) {
	if c.PC < 0 || c.PC >= len(c.prog) {
		return false, fmt.Errorf("leon: PC %d outside program (len %d)", c.PC, len(c.prog))
	}
	in := c.prog[c.PC]
	c.Cycles += opCycles[in.Op]
	c.Instructions++
	next := c.PC + 1

	rs := c.Regs[in.Rs]
	rt := c.Regs[in.Rt]
	setRd := func(v int32) {
		if in.Rd != 0 {
			c.Regs[in.Rd] = v
		}
	}

	switch in.Op {
	case OpNop:
	case OpHalt:
		return false, nil
	case OpAdd:
		setRd(rs + rt)
	case OpAddI:
		setRd(rs + in.Imm)
	case OpSub:
		setRd(rs - rt)
	case OpSubI:
		setRd(rs - in.Imm)
	case OpAnd:
		setRd(rs & rt)
	case OpAndI:
		setRd(rs & in.Imm)
	case OpOr:
		setRd(rs | rt)
	case OpOrI:
		setRd(rs | in.Imm)
	case OpXor:
		setRd(rs ^ rt)
	case OpSll:
		setRd(rs << (uint(in.Imm) & 31))
	case OpSrl:
		setRd(int32(uint32(rs) >> (uint(in.Imm) & 31)))
	case OpSra:
		setRd(rs >> (uint(in.Imm) & 31))
	case OpSllV:
		setRd(rs << (uint32(rt) & 31))
	case OpSrlV:
		setRd(int32(uint32(rs) >> (uint32(rt) & 31)))
	case OpSraV:
		setRd(rs >> (uint32(rt) & 31))
	case OpMul:
		setRd(rs * rt)
	case OpDiv:
		if rt == 0 {
			return false, fmt.Errorf("leon: division by zero at PC %d", c.PC)
		}
		setRd(rs / rt)
	case OpMovI:
		setRd(in.Imm)
	case OpLd:
		a, err := c.mem32(rs + in.Imm)
		if err != nil {
			return false, err
		}
		setRd(int32(uint32(c.Mem[a]) | uint32(c.Mem[a+1])<<8 |
			uint32(c.Mem[a+2])<<16 | uint32(c.Mem[a+3])<<24))
	case OpLdUB:
		a := int(rs + in.Imm)
		if a < 0 || a >= len(c.Mem) {
			return false, fmt.Errorf("leon: byte access at %d out of range", a)
		}
		setRd(int32(c.Mem[a]))
	case OpSt:
		a, err := c.mem32(rs + in.Imm)
		if err != nil {
			return false, err
		}
		v := uint32(rt)
		c.Mem[a] = byte(v)
		c.Mem[a+1] = byte(v >> 8)
		c.Mem[a+2] = byte(v >> 16)
		c.Mem[a+3] = byte(v >> 24)
	case OpStB:
		a := int(rs + in.Imm)
		if a < 0 || a >= len(c.Mem) {
			return false, fmt.Errorf("leon: byte access at %d out of range", a)
		}
		c.Mem[a] = byte(uint32(rt))
	case OpBeq, OpBne, OpBlt, OpBge, OpBle, OpBgt:
		taken := false
		switch in.Op {
		case OpBeq:
			taken = rs == rt
		case OpBne:
			taken = rs != rt
		case OpBlt:
			taken = rs < rt
		case OpBge:
			taken = rs >= rt
		case OpBle:
			taken = rs <= rt
		case OpBgt:
			taken = rs > rt
		}
		if taken {
			c.Cycles += takenBranchPenalty
			next = in.Target
		}
	case OpJmp:
		next = in.Target
	default:
		return false, fmt.Errorf("leon: unknown opcode %d at PC %d", in.Op, c.PC)
	}
	c.PC = next
	return true, nil
}

// Run executes until halt or until maxInstructions retire.
func (c *CPU) Run(maxInstructions int64) error {
	start := c.Instructions
	for {
		ok, err := c.Step()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if c.Instructions-start >= maxInstructions {
			return fmt.Errorf("leon: instruction budget %d exhausted (runaway program?)", maxInstructions)
		}
	}
}
