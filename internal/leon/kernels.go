package leon

import "fmt"

// Micro-kernel programs for the encoder's compute loops, written in the
// simulator's assembly. Running them yields *measured* RISC-mode cycle
// counts for the kernels whose latencies the ISE library models
// (internal/iselib); the calibration test in iselib checks the library
// constants against these measurements. The SAD routine processes packed
// words (four pixels per load) as an optimised library routine would.

// Memory layout of the SAD kernel: current block at curAddr, reference
// block at refAddr (both 256 bytes, row-major 16x16), result word at
// sadResultAddr.
const (
	sadCurAddr    = 0
	sadRefAddr    = 256
	sadResultAddr = 512
)

// sadByteStep is the unrolled per-byte absolute-difference accumulation:
// extract low bytes, branchless abs-diff, accumulate, shift next byte in.
const sadByteStep = `
        andi r7, r5, 255
        andi r8, r6, 255
        sub  r9, r7, r8
        sra  r10, r9, 31
        xor  r9, r9, r10
        sub  r9, r9, r10
        add  r4, r4, r9
        srl  r5, r5, 8
        srl  r6, r6, 8
`

var sadProgram = MustAssemble(`
        ; r1 cur ptr, r2 ref ptr, r3 word index, r4 accumulator
        movi r1, ` + fmt.Sprint(sadCurAddr) + `
        movi r2, ` + fmt.Sprint(sadRefAddr) + `
        movi r3, 0
        movi r4, 0
        movi r11, 64            ; 64 words = 256 pixels
loop:   ld   r5, r1, 0
        ld   r6, r2, 0
` + sadByteStep + sadByteStep + sadByteStep + sadByteStep + `
        addi r1, r1, 4
        addi r2, r2, 4
        addi r3, r3, 1
        bne  r3, r11, loop
        st   r4, r0, ` + fmt.Sprint(sadResultAddr) + `
        halt
`)

// MeasureSAD executes the 16x16 SAD micro-kernel over the two 256-byte
// blocks and returns the SAD value and the cycle count.
func MeasureSAD(cur, ref []byte) (int32, int64, error) {
	if len(cur) != 256 || len(ref) != 256 {
		return 0, 0, fmt.Errorf("leon: SAD blocks must be 256 bytes, got %d/%d", len(cur), len(ref))
	}
	c := New(1024)
	copy(c.Mem[sadCurAddr:], cur)
	copy(c.Mem[sadRefAddr:], ref)
	c.Load(sadProgram)
	if err := c.Run(1_000_000); err != nil {
		return 0, 0, err
	}
	sad := int32(uint32(c.Mem[sadResultAddr]) | uint32(c.Mem[sadResultAddr+1])<<8 |
		uint32(c.Mem[sadResultAddr+2])<<16 | uint32(c.Mem[sadResultAddr+3])<<24)
	return sad, c.Cycles, nil
}

// Memory layout of the quantisation kernel: sixteen int32 coefficients at
// quantInAddr, sixteen quantised levels at quantOutAddr.
const (
	quantInAddr  = 0
	quantOutAddr = 64
)

var quantProgram = MustAssemble(`
        ; r1 in ptr, r2 out ptr, r3 counter, r12 MF, r13 f, r14 qbits
        movi r1, ` + fmt.Sprint(quantInAddr) + `
        movi r2, ` + fmt.Sprint(quantOutAddr) + `
        movi r3, 0
        movi r11, 16
loop:   ld   r5, r1, 0
        sra  r10, r5, 31        ; sign mask
        xor  r5, r5, r10
        sub  r5, r5, r10        ; |c|
        mul  r5, r5, r12        ; |c| * MF
        add  r5, r5, r13        ; + f
        srav r5, r5, r14        ; >> qbits
        xor  r5, r5, r10        ; restore sign
        sub  r5, r5, r10
        st   r5, r2, 0
        addi r1, r1, 4
        addi r2, r2, 4
        addi r3, r3, 1
        bne  r3, r11, loop
        halt
`)

// MeasureQuant executes the 4x4 quantisation micro-kernel with the given
// multiplication factor, dead-zone offset and shift, and returns the
// quantised levels and the cycle count.
func MeasureQuant(coeffs [16]int32, mf, f int32, qbits int32) ([16]int32, int64, error) {
	c := New(256)
	for i, v := range coeffs {
		u := uint32(v)
		a := quantInAddr + 4*i
		c.Mem[a] = byte(u)
		c.Mem[a+1] = byte(u >> 8)
		c.Mem[a+2] = byte(u >> 16)
		c.Mem[a+3] = byte(u >> 24)
	}
	c.Regs[12] = mf
	c.Regs[13] = f
	c.Regs[14] = qbits
	c.Load(quantProgram)
	if err := c.Run(1_000_000); err != nil {
		return [16]int32{}, 0, err
	}
	var out [16]int32
	for i := range out {
		a := quantOutAddr + 4*i
		out[i] = int32(uint32(c.Mem[a]) | uint32(c.Mem[a+1])<<8 |
			uint32(c.Mem[a+2])<<16 | uint32(c.Mem[a+3])<<24)
	}
	return out, c.Cycles, nil
}

// Memory layout of the boundary-strength kernel: six input words (p intra,
// q intra, p coded, q coded, |dmvx|, |dmvy| precomputed as absolute
// half-pel differences... the kernel computes the absolutes itself from
// signed inputs) and one output word.
const (
	bsInAddr  = 0 // 6 words
	bsOutAddr = 32
)

var bsProgram = MustAssemble(`
        ; Boundary strength per paper/encoder rules:
        ; intra on either side -> 3; coded -> 1; |dmv| >= 2 -> 2; else 0.
        ld   r1, r0, ` + fmt.Sprint(bsInAddr+0) + `   ; p intra
        ld   r2, r0, ` + fmt.Sprint(bsInAddr+4) + `   ; q intra
        or   r1, r1, r2
        movi r9, 0
        beq  r1, r0, coded
        movi r9, 3
        jmp  done
coded:  ld   r3, r0, ` + fmt.Sprint(bsInAddr+8) + `   ; p coded
        ld   r4, r0, ` + fmt.Sprint(bsInAddr+12) + `  ; q coded
        or   r3, r3, r4
        beq  r3, r0, mv
        movi r9, 1
        jmp  done
mv:     ld   r5, r0, ` + fmt.Sprint(bsInAddr+16) + `  ; dmvx (signed)
        sra  r10, r5, 31
        xor  r5, r5, r10
        sub  r5, r5, r10
        ld   r6, r0, ` + fmt.Sprint(bsInAddr+20) + `  ; dmvy (signed)
        sra  r10, r6, 31
        xor  r6, r6, r10
        sub  r6, r6, r10
        movi r7, 2
        bge  r5, r7, far
        bge  r6, r7, far
        jmp  done
far:    movi r9, 2
done:   st   r9, r0, ` + fmt.Sprint(bsOutAddr) + `
        halt
`)

// MeasureBS executes the boundary-strength micro-kernel and returns the
// strength and the cycle count.
func MeasureBS(pIntra, qIntra, pCoded, qCoded bool, dmvx, dmvy int32) (int32, int64, error) {
	c := New(64)
	setWord := func(addr int, v int32) {
		u := uint32(v)
		c.Mem[addr] = byte(u)
		c.Mem[addr+1] = byte(u >> 8)
		c.Mem[addr+2] = byte(u >> 16)
		c.Mem[addr+3] = byte(u >> 24)
	}
	b2i := func(b bool) int32 {
		if b {
			return 1
		}
		return 0
	}
	setWord(bsInAddr+0, b2i(pIntra))
	setWord(bsInAddr+4, b2i(qIntra))
	setWord(bsInAddr+8, b2i(pCoded))
	setWord(bsInAddr+12, b2i(qCoded))
	setWord(bsInAddr+16, dmvx)
	setWord(bsInAddr+20, dmvy)
	c.Load(bsProgram)
	if err := c.Run(10_000); err != nil {
		return 0, 0, err
	}
	bs := int32(uint32(c.Mem[bsOutAddr]) | uint32(c.Mem[bsOutAddr+1])<<8 |
		uint32(c.Mem[bsOutAddr+2])<<16 | uint32(c.Mem[bsOutAddr+3])<<24)
	return bs, c.Cycles, nil
}

// Memory layout of the DCT kernel: sixteen int32 coefficients at address 0,
// transformed in place (row pass then column pass).
const dctAddr = 0

// dctButterflies is the shared 1-D butterfly body: c0..c3 in r20..r23,
// results t0..t3 in r28..r31.
const dctButterflies = `
        add  r24, r20, r23   ; s0 = c0 + c3
        add  r25, r21, r22   ; s1 = c1 + c2
        sub  r26, r20, r23   ; d0 = c0 - c3
        sub  r27, r21, r22   ; d1 = c1 - c2
        add  r28, r24, r25   ; t0 = s0 + s1
        sll  r29, r26, 1
        add  r29, r29, r27   ; t1 = 2*d0 + d1
        sub  r30, r24, r25   ; t2 = s0 - s1
        sll  r31, r27, 1
        sub  r31, r26, r31   ; t3 = d0 - 2*d1
`

var dctProgram = MustAssemble(`
        ; Row pass: elements 4 bytes apart, rows 16 bytes apart.
        movi r1, ` + fmt.Sprint(dctAddr) + `
        movi r3, 0
        movi r11, 4
rows:   ld   r20, r1, 0
        ld   r21, r1, 4
        ld   r22, r1, 8
        ld   r23, r1, 12
` + dctButterflies + `
        st   r28, r1, 0
        st   r29, r1, 4
        st   r30, r1, 8
        st   r31, r1, 12
        addi r1, r1, 16
        addi r3, r3, 1
        bne  r3, r11, rows
        ; Column pass: elements 16 bytes apart, columns 4 bytes apart.
        movi r1, ` + fmt.Sprint(dctAddr) + `
        movi r3, 0
cols:   ld   r20, r1, 0
        ld   r21, r1, 16
        ld   r22, r1, 32
        ld   r23, r1, 48
` + dctButterflies + `
        st   r28, r1, 0
        st   r29, r1, 16
        st   r30, r1, 32
        st   r31, r1, 48
        addi r1, r1, 4
        addi r3, r3, 1
        bne  r3, r11, cols
        halt
`)

// MeasureDCT executes the 4x4 forward-transform micro-kernel in place and
// returns the coefficients and the cycle count.
func MeasureDCT(block [16]int32) ([16]int32, int64, error) {
	c := New(256)
	for i, v := range block {
		u := uint32(v)
		a := dctAddr + 4*i
		c.Mem[a] = byte(u)
		c.Mem[a+1] = byte(u >> 8)
		c.Mem[a+2] = byte(u >> 16)
		c.Mem[a+3] = byte(u >> 24)
	}
	c.Load(dctProgram)
	if err := c.Run(1_000_000); err != nil {
		return block, 0, err
	}
	var out [16]int32
	for i := range out {
		a := dctAddr + 4*i
		out[i] = int32(uint32(c.Mem[a]) | uint32(c.Mem[a+1])<<8 |
			uint32(c.Mem[a+2])<<16 | uint32(c.Mem[a+3])<<24)
	}
	return out, c.Cycles, nil
}

// Memory layout of the edge-filter kernel: four rows of four samples
// (p1, p0, q0, q1) as bytes at filtAddr, row stride 4; alpha/beta/tc are
// preloaded into registers. Filtered p0/q0 are written back in place.
const filtAddr = 0

var filtProgram = MustAssemble(`
        ; r12 alpha, r13 beta, r14 tc, r1 row pointer, r3 row counter
        movi r1, ` + fmt.Sprint(filtAddr) + `
        movi r3, 0
        movi r11, 4
row:    ldub r4, r1, 0          ; p1
        ldub r5, r1, 1          ; p0
        ldub r6, r1, 2          ; q0
        ldub r7, r1, 3          ; q1
        sub  r8, r6, r5         ; q0 - p0
        sra  r10, r8, 31
        xor  r9, r8, r10
        sub  r9, r9, r10        ; |q0 - p0|
        bge  r9, r12, next      ; >= alpha: leave the edge alone
        sub  r9, r4, r5
        sra  r10, r9, 31
        xor  r9, r9, r10
        sub  r9, r9, r10        ; |p1 - p0|
        bge  r9, r13, next
        sub  r9, r7, r6
        sra  r10, r9, 31
        xor  r9, r9, r10
        sub  r9, r9, r10        ; |q1 - q0|
        bge  r9, r13, next
        sll  r9, r8, 2          ; 4*(q0 - p0)
        add  r9, r9, r4
        sub  r9, r9, r7         ; + p1 - q1
        addi r9, r9, 4
        sra  r9, r9, 3          ; delta before clipping
        sub  r10, r0, r14       ; -tc
        bge  r9, r10, cliphi
        add  r9, r10, r0        ; delta = -tc
cliphi: ble  r9, r14, apply
        add  r9, r14, r0        ; delta = +tc
apply:  add  r5, r5, r9         ; p0 + delta
        sub  r6, r6, r9         ; q0 - delta
        stb  r5, r1, 1
        stb  r6, r1, 2
next:   addi r1, r1, 4
        addi r3, r3, 1
        bne  r3, r11, row
        halt
`)

// MeasureFilt executes the deblocking edge-filter micro-kernel over one
// 4-row edge segment. rows holds (p1, p0, q0, q1) per row; the returned
// rows carry the filtered samples.
func MeasureFilt(rows [4][4]uint8, alpha, beta, tc int32) ([4][4]uint8, int64, error) {
	c := New(64)
	for r := 0; r < 4; r++ {
		for i := 0; i < 4; i++ {
			c.Mem[filtAddr+4*r+i] = rows[r][i]
		}
	}
	c.Regs[12] = alpha
	c.Regs[13] = beta
	c.Regs[14] = tc
	c.Load(filtProgram)
	if err := c.Run(100_000); err != nil {
		return rows, 0, err
	}
	var out [4][4]uint8
	for r := 0; r < 4; r++ {
		for i := 0; i < 4; i++ {
			out[r][i] = c.Mem[filtAddr+4*r+i]
		}
	}
	return out, c.Cycles, nil
}
