package leon

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates a small assembly dialect into a program. One
// instruction per line; `;` or `#` start comments; labels end with `:`.
//
//	        movi r2, 16        ; rd, imm
//	loop:   ldub r4, r1, 0     ; rd, rs, offset
//	        add  r5, r5, r4    ; rd, rs, rt
//	        addi r1, r1, 1
//	        bne  r1, r2, loop  ; rs, rt, label
//	        st   r5, r3, 0     ; value, base, offset
//	        halt
func Assemble(src string) ([]Instr, error) {
	type pending struct {
		instrIdx int
		label    string
		line     int
	}
	var prog []Instr
	labels := map[string]int{}
	var fixups []pending

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Leading labels (possibly followed by an instruction).
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if label == "" || strings.ContainsAny(label, " \t,") {
				return nil, fmt.Errorf("leon: line %d: malformed label %q", lineNo+1, label)
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("leon: line %d: duplicate label %q", lineNo+1, label)
			}
			labels[label] = len(prog)
			line = strings.TrimSpace(line[colon+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}

		fields := strings.Fields(line)
		mnemonic := strings.ToLower(fields[0])
		rest := strings.TrimSpace(line[len(fields[0]):])
		var args []string
		if rest != "" {
			for _, a := range strings.Split(rest, ",") {
				args = append(args, strings.TrimSpace(a))
			}
		}

		in, label, err := encode(mnemonic, args)
		if err != nil {
			return nil, fmt.Errorf("leon: line %d: %w", lineNo+1, err)
		}
		if label != "" {
			fixups = append(fixups, pending{len(prog), label, lineNo + 1})
		}
		prog = append(prog, in)
	}

	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("leon: line %d: undefined label %q", f.line, f.label)
		}
		prog[f.instrIdx].Target = target
	}
	return prog, nil
}

// MustAssemble panics on error; for the static kernel programs.
func MustAssemble(src string) []Instr {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

var mnemonics = map[string]Op{
	"nop": OpNop, "halt": OpHalt,
	"add": OpAdd, "addi": OpAddI, "sub": OpSub, "subi": OpSubI,
	"and": OpAnd, "andi": OpAndI, "or": OpOr, "ori": OpOrI, "xor": OpXor,
	"sll": OpSll, "srl": OpSrl, "sra": OpSra,
	"sllv": OpSllV, "srlv": OpSrlV, "srav": OpSraV,
	"mul": OpMul, "div": OpDiv, "movi": OpMovI,
	"ld": OpLd, "ldub": OpLdUB, "st": OpSt, "stb": OpStB,
	"beq": OpBeq, "bne": OpBne, "blt": OpBlt, "bge": OpBge,
	"ble": OpBle, "bgt": OpBgt, "jmp": OpJmp,
}

func parseReg(s string) (uint8, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return int32(v), nil
}

// encode builds one instruction; a non-empty label return means the Target
// needs fixing up once all labels are known.
func encode(mnemonic string, args []string) (Instr, string, error) {
	op, ok := mnemonics[mnemonic]
	if !ok {
		return Instr{}, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	in := Instr{Op: op}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s expects %d operands, got %d", mnemonic, n, len(args))
		}
		return nil
	}
	var err error
	switch op {
	case OpNop, OpHalt:
		return in, "", need(0)
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpMul, OpDiv, OpSllV, OpSrlV, OpSraV:
		if err = need(3); err != nil {
			return in, "", err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, "", err
		}
		if in.Rs, err = parseReg(args[1]); err != nil {
			return in, "", err
		}
		in.Rt, err = parseReg(args[2])
		return in, "", err
	case OpAddI, OpSubI, OpAndI, OpOrI, OpSll, OpSrl, OpSra, OpLd, OpLdUB:
		if err = need(3); err != nil {
			return in, "", err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, "", err
		}
		if in.Rs, err = parseReg(args[1]); err != nil {
			return in, "", err
		}
		in.Imm, err = parseImm(args[2])
		return in, "", err
	case OpSt, OpStB:
		if err = need(3); err != nil {
			return in, "", err
		}
		if in.Rt, err = parseReg(args[0]); err != nil {
			return in, "", err
		}
		if in.Rs, err = parseReg(args[1]); err != nil {
			return in, "", err
		}
		in.Imm, err = parseImm(args[2])
		return in, "", err
	case OpMovI:
		if err = need(2); err != nil {
			return in, "", err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, "", err
		}
		in.Imm, err = parseImm(args[1])
		return in, "", err
	case OpBeq, OpBne, OpBlt, OpBge, OpBle, OpBgt:
		if err = need(3); err != nil {
			return in, "", err
		}
		if in.Rs, err = parseReg(args[0]); err != nil {
			return in, "", err
		}
		if in.Rt, err = parseReg(args[1]); err != nil {
			return in, "", err
		}
		return in, args[2], nil
	case OpJmp:
		if err = need(1); err != nil {
			return in, "", err
		}
		return in, args[0], nil
	}
	return in, "", fmt.Errorf("unhandled mnemonic %q", mnemonic)
}
