package reconfig

import (
	"testing"

	"mrts/internal/arch"
	"mrts/internal/ise"
)

func fgDP(id string) ise.DataPath {
	return ise.DataPath{ID: ise.DataPathID(id), Kind: arch.FG, PRCs: 1}
}
func cgDP(id string) ise.DataPath {
	return ise.DataPath{ID: ise.DataPathID(id), Kind: arch.CG, CGs: 1}
}

func mkISE(id string, dps ...ise.DataPath) *ise.ISE {
	lats := make([]arch.Cycles, len(dps))
	for i := range lats {
		lats[i] = arch.Cycles(100 - 10*i)
	}
	return &ise.ISE{ID: id, Kernel: "k", DataPaths: dps, Latencies: lats}
}

func newCtrl(t *testing.T, prc, cg int) *Controller {
	t.Helper()
	c, err := NewController(arch.Config{NPRC: prc, NCG: cg})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewControllerValidates(t *testing.T) {
	if _, err := NewController(arch.Config{NPRC: -1}); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestRequestTiming(t *testing.T) {
	c := newCtrl(t, 2, 2)
	ready, err := c.Request(fgDP("a"), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if ready != 1000+arch.FGReconfigCycles {
		t.Errorf("ready = %d, want %d", ready, 1000+arch.FGReconfigCycles)
	}
	if c.IsConfigured("a") {
		t.Error("data path configured before reconfiguration completes")
	}
	c.Advance(ready)
	if !c.IsConfigured("a") {
		t.Error("data path not configured after completion")
	}
}

func TestRequestIdempotent(t *testing.T) {
	c := newCtrl(t, 1, 0)
	r1, _ := c.Request(fgDP("a"), 0)
	r2, err := c.Request(fgDP("a"), 500)
	if err != nil || r2 != r1 {
		t.Errorf("re-request changed ready time: %d vs %d (%v)", r2, r1, err)
	}
}

func TestFGPortSerialises(t *testing.T) {
	c := newCtrl(t, 2, 0)
	r1, _ := c.Request(fgDP("a"), 0)
	r2, _ := c.Request(fgDP("b"), 0)
	if r2 != r1+arch.FGReconfigCycles {
		t.Errorf("second FG reconfiguration at %d, want %d (serial port)", r2, r1+arch.FGReconfigCycles)
	}
}

func TestCGAndFGPortsIndependent(t *testing.T) {
	c := newCtrl(t, 1, 1)
	rf, _ := c.Request(fgDP("a"), 0)
	rc, _ := c.Request(cgDP("b"), 0)
	if rc >= rf {
		t.Errorf("CG context load (%d) should not wait for the FG port (%d)", rc, rf)
	}
	if rc != arch.CGReconfigCycles {
		t.Errorf("CG ready = %d, want %d", rc, arch.CGReconfigCycles)
	}
}

func TestCapacityExhausted(t *testing.T) {
	c := newCtrl(t, 1, 0)
	if _, err := c.Request(fgDP("a"), 0); err != nil {
		t.Fatal(err)
	}
	// "a" is pinned, so there is nothing to evict.
	if _, err := c.Request(fgDP("b"), 0); err == nil {
		t.Error("over-capacity request accepted")
	}
}

func TestLazyEviction(t *testing.T) {
	c := newCtrl(t, 1, 0)
	e1 := mkISE("e1", fgDP("a"))
	e2 := mkISE("e2", fgDP("b"))
	if _, err := c.CommitSelection([]*ise.ISE{e1}, 0); err != nil {
		t.Fatal(err)
	}
	c.Advance(arch.FGReconfigCycles)
	if !c.IsConfigured("a") {
		t.Fatal("a not configured")
	}
	// Committing an empty selection unpins but must NOT evict.
	if _, err := c.CommitSelection(nil, arch.FGReconfigCycles); err != nil {
		t.Fatal(err)
	}
	if !c.IsConfigured("a") {
		t.Error("unpinned data path evicted eagerly")
	}
	// Committing e2 needs the PRC: now "a" is evicted.
	if _, err := c.CommitSelection([]*ise.ISE{e2}, arch.FGReconfigCycles); err != nil {
		t.Fatal(err)
	}
	if c.IsConfigured("a") {
		t.Error("a should have been evicted to make room for b")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestRecommitKeepsConfiguredPaths(t *testing.T) {
	c := newCtrl(t, 1, 1)
	e := mkISE("e", fgDP("a"), cgDP("b"))
	done, err := c.CommitSelection([]*ise.ISE{e}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Advance(done[0])
	// Re-committing the same selection must not schedule anything new.
	before := c.Stats()
	done2, err := c.CommitSelection([]*ise.ISE{e}, done[0])
	if err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.FGReconfigs != before.FGReconfigs || after.CGReconfigs != before.CGReconfigs {
		t.Error("re-commit scheduled redundant reconfigurations")
	}
	if done2[0] != done[0] {
		t.Errorf("re-commit completion %d, want %d", done2[0], done[0])
	}
}

func TestCommitCompletionTimes(t *testing.T) {
	c := newCtrl(t, 2, 1)
	e := mkISE("e", fgDP("a"), cgDP("b"), fgDP("c"))
	done, err := c.CommitSelection([]*ise.ISE{e}, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := arch.Cycles(100) + 2*arch.FGReconfigCycles // two serial FG loads dominate
	if done[0] != want {
		t.Errorf("completion = %d, want %d", done[0], want)
	}
}

func TestConfiguredPrefix(t *testing.T) {
	c := newCtrl(t, 2, 1)
	e := mkISE("e", fgDP("a"), cgDP("b"), fgDP("c"))
	if _, err := c.CommitSelection([]*ise.ISE{e}, 0); err != nil {
		t.Fatal(err)
	}
	c.Advance(arch.CGReconfigCycles)
	// CG path "b" is ready but prefix stops at unconfigured "a".
	if got := c.ConfiguredPrefix(e); got != 0 {
		t.Errorf("prefix = %d, want 0", got)
	}
	c.Advance(arch.FGReconfigCycles)
	if got := c.ConfiguredPrefix(e); got != 2 {
		t.Errorf("prefix = %d, want 2 (a and b)", got)
	}
	c.Advance(2 * arch.FGReconfigCycles)
	if got := c.ConfiguredPrefix(e); got != 3 {
		t.Errorf("prefix = %d, want 3", got)
	}
}

func TestReserve(t *testing.T) {
	c := newCtrl(t, 2, 2)
	if err := c.Reserve(1, 1); err != nil {
		t.Fatal(err)
	}
	if c.FreePRC() != 1 || c.FreeCG() != 1 {
		t.Errorf("free after reserve = %d/%d, want 1/1", c.FreePRC(), c.FreeCG())
	}
	if err := c.Reserve(3, 0); err == nil {
		t.Error("over-budget reservation accepted")
	}
	if err := c.Reserve(-1, 0); err == nil {
		t.Error("negative reservation accepted")
	}
	prc, cg := c.Reserved()
	if prc != 1 || cg != 1 {
		t.Errorf("Reserved = %d/%d", prc, cg)
	}
}

func TestReserveEvictsUnpinned(t *testing.T) {
	c := newCtrl(t, 1, 0)
	if _, err := c.CommitSelection([]*ise.ISE{mkISE("e", fgDP("a"))}, 0); err != nil {
		t.Fatal(err)
	}
	// Pinned: reservation must fail.
	if err := c.Reserve(1, 0); err == nil {
		t.Error("reservation evicted a pinned data path")
	}
	// Unpin by committing nothing, then the reservation may evict.
	if _, err := c.CommitSelection(nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Reserve(1, 0); err != nil {
		t.Errorf("reservation failed despite evictable path: %v", err)
	}
	if c.IsConfigured("a") {
		t.Error("path survived reservation")
	}
}

func TestMonoCG(t *testing.T) {
	c := newCtrl(t, 0, 1)
	k := &ise.Kernel{
		ID: "k", RISCLatency: 100,
		MonoCG: ise.MonoCGExt{Latency: 50, Instructions: 16},
	}
	ready, ok := c.AcquireMonoCG(k, 1000)
	if !ok {
		t.Fatal("monoCG not acquired on free CG-EDPE")
	}
	if ready != 1000+k.MonoCG.ReconfigCycles() {
		t.Errorf("monoCG ready = %d", ready)
	}
	// Occupies the EDPE.
	if c.FreeCG() != 0 {
		t.Errorf("FreeCG = %d after monoCG, want 0", c.FreeCG())
	}
	// Idempotent.
	r2, ok := c.AcquireMonoCG(k, 2000)
	if !ok || r2 != ready {
		t.Error("second acquire should return existing slot")
	}
	if got, ok := c.MonoCGReady("k"); !ok || got != ready {
		t.Error("MonoCGReady wrong")
	}
	c.ReleaseMonoCG("k")
	if _, ok := c.MonoCGReady("k"); ok {
		t.Error("monoCG survived release")
	}
	if c.FreeCG() != 1 {
		t.Error("CG-EDPE not freed")
	}
}

func TestMonoCGUnavailable(t *testing.T) {
	c := newCtrl(t, 0, 1)
	plain := &ise.Kernel{ID: "p", RISCLatency: 100}
	if _, ok := c.AcquireMonoCG(plain, 0); ok {
		t.Error("kernel without monoCG acquired a slot")
	}
	k := &ise.Kernel{ID: "k", RISCLatency: 100, MonoCG: ise.MonoCGExt{Latency: 50, Instructions: 8}}
	k2 := &ise.Kernel{ID: "k2", RISCLatency: 100, MonoCG: ise.MonoCGExt{Latency: 50, Instructions: 8}}
	if _, ok := c.AcquireMonoCG(k, 0); !ok {
		t.Fatal("first acquire failed")
	}
	if _, ok := c.AcquireMonoCG(k2, 0); ok {
		t.Error("second monoCG acquired without free CG-EDPE")
	}
}

func TestMonoCGEvictsUnpinnedCG(t *testing.T) {
	c := newCtrl(t, 0, 1)
	if _, err := c.CommitSelection([]*ise.ISE{mkISE("e", cgDP("d"))}, 0); err != nil {
		t.Fatal(err)
	}
	// Unpin the CG data path, then monoCG may take the EDPE.
	if _, err := c.CommitSelection(nil, 100); err != nil {
		t.Fatal(err)
	}
	k := &ise.Kernel{ID: "k", RISCLatency: 100, MonoCG: ise.MonoCGExt{Latency: 50, Instructions: 8}}
	if _, ok := c.AcquireMonoCG(k, 200); !ok {
		t.Error("monoCG failed to evict unpinned CG data path")
	}
}

func TestCommitReleasesMonoCG(t *testing.T) {
	c := newCtrl(t, 0, 1)
	k := &ise.Kernel{ID: "k", RISCLatency: 100, MonoCG: ise.MonoCGExt{Latency: 50, Instructions: 8}}
	if _, ok := c.AcquireMonoCG(k, 0); !ok {
		t.Fatal("acquire failed")
	}
	if _, err := c.CommitSelection([]*ise.ISE{mkISE("e", cgDP("d"))}, 100); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.MonoCGReady("k"); ok {
		t.Error("monoCG slot survived a new selection commit")
	}
}

func TestSelectionView(t *testing.T) {
	c := newCtrl(t, 2, 2)
	if _, err := c.CommitSelection([]*ise.ISE{mkISE("e", fgDP("a"), cgDP("b"))}, 0); err != nil {
		t.Fatal(err)
	}
	v := c.SelectionView()
	// The whole budget counts as free for a new selection.
	if v.FreePRC() != 2 || v.FreeCG() != 2 {
		t.Errorf("selection view free = %d/%d, want 2/2", v.FreePRC(), v.FreeCG())
	}
	c.Advance(arch.FGReconfigCycles)
	if !v.IsConfigured("a") {
		t.Error("selection view must expose configured data paths")
	}
	// Port backlog is relative to the controller's time.
	pv, ok := v.(ise.PortView)
	if !ok {
		t.Fatal("selection view must implement PortView")
	}
	if got := pv.PortBacklog(arch.FG); got != 0 {
		t.Errorf("FG backlog = %d, want 0 after completion", got)
	}
	c2 := newCtrl(t, 2, 2)
	if _, err := c2.Request(fgDP("x"), 0); err != nil {
		t.Fatal(err)
	}
	pv2 := c2.SelectionView().(ise.PortView)
	if got := pv2.PortBacklog(arch.FG); got != arch.FGReconfigCycles {
		t.Errorf("FG backlog = %d, want %d", got, arch.FGReconfigCycles)
	}
	// Reservations shrink the selection view.
	if err := c2.Reserve(1, 1); err != nil {
		t.Fatal(err)
	}
	v2 := c2.SelectionView()
	if v2.FreePRC() != 1 || v2.FreeCG() != 1 {
		t.Errorf("reserved selection view = %d/%d, want 1/1", v2.FreePRC(), v2.FreeCG())
	}
}

func TestEvictAllAndReset(t *testing.T) {
	c := newCtrl(t, 1, 1)
	if _, err := c.CommitSelection([]*ise.ISE{mkISE("e", fgDP("a"), cgDP("b"))}, 0); err != nil {
		t.Fatal(err)
	}
	c.EvictAll()
	if len(c.ConfiguredPaths()) != 0 {
		t.Error("paths survived EvictAll")
	}
	c.Reset()
	if c.Now() != 0 {
		t.Error("Reset did not clear time")
	}
	if c.FreePRC() != 1 || c.FreeCG() != 1 {
		t.Error("Reset did not restore capacity")
	}
}

func TestConfiguredPathsSorted(t *testing.T) {
	c := newCtrl(t, 0, 3)
	for _, id := range []string{"zz", "aa", "mm"} {
		if _, err := c.Request(cgDP(id), 0); err != nil {
			t.Fatal(err)
		}
	}
	c.Advance(10 * arch.CGReconfigCycles)
	got := c.ConfiguredPaths()
	if len(got) != 3 || got[0] != "aa" || got[1] != "mm" || got[2] != "zz" {
		t.Errorf("ConfiguredPaths = %v, want sorted", got)
	}
}

func TestAdvanceMonotone(t *testing.T) {
	c := newCtrl(t, 0, 0)
	c.Advance(100)
	c.Advance(50)
	if c.Now() != 100 {
		t.Errorf("time moved backwards: %d", c.Now())
	}
}

func TestEvictionOrderDeterministic(t *testing.T) {
	// Two unpinned paths with equal readiness: the smaller ID goes first.
	c := newCtrl(t, 0, 2)
	if _, err := c.CommitSelection([]*ise.ISE{mkISE("e1", cgDP("b")), mkISE("e2", cgDP("a"))}, 0); err != nil {
		t.Fatal(err)
	}
	c.Advance(10 * arch.CGReconfigCycles)
	if _, err := c.CommitSelection([]*ise.ISE{mkISE("e3", cgDP("c"))}, c.Now()); err != nil {
		t.Fatal(err)
	}
	// One of a/b evicted; with equal ready times "a" has the smaller
	// ready (requested first: b then a — serial CG port => b earlier).
	// The eviction rule is (ready, ID) ascending, so "b" goes first.
	if c.IsConfigured("b") && !c.IsConfigured("a") {
		t.Error("eviction order not deterministic: b should have been evicted before a")
	}
}

func TestCommitSelectionOverBudgetFails(t *testing.T) {
	c := newCtrl(t, 1, 0)
	tooBig := mkISE("big", fgDP("x"), fgDP("y"))
	if _, err := c.CommitSelection([]*ise.ISE{tooBig}, 0); err == nil {
		t.Error("selection larger than the fabric accepted")
	}
}
