package reconfig

import (
	"fmt"
	"testing"
	"testing/quick"

	"mrts/internal/arch"
	"mrts/internal/ise"
)

// TestControllerInvariantsUnderRandomOps drives the controller with random
// operation sequences (requests, commits, monoCG acquisitions, releases,
// reservations, time advances) and checks the fabric invariants after
// every step:
//
//   - occupancy never exceeds the budget (free counters never negative);
//   - a pinned data path of the current selection is never evicted;
//   - ready times never precede the request time;
//   - IsConfigured implies a recorded ready time in the past.
func TestControllerInvariantsUnderRandomOps(t *testing.T) {
	type op struct {
		Kind uint8
		A, B uint8
	}
	mkDP := func(i int) ise.DataPath {
		if i%2 == 0 {
			return ise.DataPath{ID: ise.DataPathID(fmt.Sprintf("fg%d", i)), Kind: arch.FG, PRCs: 1}
		}
		return ise.DataPath{ID: ise.DataPathID(fmt.Sprintf("cg%d", i)), Kind: arch.CG, CGs: 1}
	}
	mono := &ise.Kernel{
		ID: "mk", RISCLatency: 100,
		MonoCG: ise.MonoCGExt{Latency: 50, Instructions: 8},
	}

	f := func(ops []op) bool {
		c, err := NewController(arch.Config{NPRC: 3, NCG: 3})
		if err != nil {
			return false
		}
		now := arch.Cycles(0)
		var currentSelection []*ise.ISE
		for _, o := range ops {
			now += arch.Cycles(o.B) * 1000
			switch o.Kind % 5 {
			case 0: // request a single data path
				d := mkDP(int(o.A) % 8)
				_, existed := c.ReadyTime(d.ID)
				ready, err := c.Request(d, now)
				// A *newly scheduled* reconfiguration cannot complete
				// before it was requested; re-requests of present
				// paths legitimately return past ready times.
				if err == nil && !existed && ready < now {
					t.Logf("ready %d before request time %d", ready, now)
					return false
				}
			case 1: // commit a selection of 1-2 small ISEs
				n := int(o.A)%2 + 1
				var sel []*ise.ISE
				for i := 0; i < n; i++ {
					d := mkDP((int(o.A) + i) % 8)
					sel = append(sel, &ise.ISE{
						ID: fmt.Sprintf("e%d_%d", o.A, i), Kernel: ise.KernelID(fmt.Sprintf("k%d", i)),
						DataPaths: []ise.DataPath{d},
						Latencies: []arch.Cycles{10},
					})
				}
				if _, err := c.CommitSelection(sel, now); err != nil {
					return false // selections of <= 2 units always fit 3/3
				}
				currentSelection = sel
			case 2: // monoCG
				c.AcquireMonoCG(mono, now)
			case 3:
				c.ReleaseMonoCG(mono.ID)
			case 4: // reservation (may legitimately fail)
				_ = c.Reserve(int(o.A)%2, int(o.B)%2)
			}

			// Invariants.
			if c.FreePRC() < 0 || c.FreeCG() < 0 {
				t.Logf("negative free capacity: %d/%d", c.FreePRC(), c.FreeCG())
				return false
			}
			for _, e := range currentSelection {
				for _, d := range e.DataPaths {
					if _, ok := c.ReadyTime(d.ID); !ok {
						t.Logf("pinned data path %s evicted", d.ID)
						return false
					}
				}
			}
			for _, id := range c.ConfiguredPaths() {
				ready, ok := c.ReadyTime(id)
				if !ok || ready > c.Now() {
					t.Logf("configured path %s with future ready time", id)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPortMonotonicity verifies that FG reconfigurations scheduled later
// never complete earlier (the serial configuration port preserves order).
func TestPortMonotonicity(t *testing.T) {
	c, err := NewController(arch.Config{NPRC: 8, NCG: 0})
	if err != nil {
		t.Fatal(err)
	}
	var last arch.Cycles
	for i := 0; i < 8; i++ {
		d := ise.DataPath{ID: ise.DataPathID(fmt.Sprintf("d%d", i)), Kind: arch.FG, PRCs: 1}
		ready, err := c.Request(d, arch.Cycles(i)*100)
		if err != nil {
			t.Fatal(err)
		}
		if ready <= last {
			t.Fatalf("reconfiguration %d completes at %d, before predecessor %d", i, ready, last)
		}
		last = ready
	}
}
