package reconfig

import (
	"errors"
	"testing"

	"mrts/internal/arch"
	"mrts/internal/ise"
)

// scriptVerifier fails the CRC check for the first n attempts per fabric.
type scriptVerifier struct {
	bad [2]int
	// calls counts check invocations per fabric, for bounding assertions.
	calls [2]int
}

func (v *scriptVerifier) Corrupted(kind arch.FabricKind, at arch.Cycles) bool {
	v.calls[kind]++
	if v.bad[kind] > 0 {
		v.bad[kind]--
		return true
	}
	return false
}

func TestFailUnitEvictsAndInvalidates(t *testing.T) {
	c := newCtrl(t, 2, 0)
	if _, err := c.CommitSelection([]*ise.ISE{mkISE("e1", fgDP("a")), mkISE("e2", fgDP("b"))}, 0); err != nil {
		t.Fatal(err)
	}
	c.Advance(10 * arch.FGReconfigCycles)

	if !c.FailUnit(arch.FG, true) {
		t.Fatal("FailUnit found no healthy PRC")
	}
	if c.Fabric().AvailablePRC() != 1 {
		t.Errorf("available PRCs = %d, want 1", c.Fabric().AvailablePRC())
	}
	// Capacity invariant restored: one pinned path had to go, despite the
	// pin — the hardware underneath is gone.
	if c.occupiedPRC() != 1 {
		t.Errorf("occupied PRCs = %d after failure, want 1", c.occupiedPRC())
	}
	lost := c.TakeInvalidated()
	if len(lost) != 1 {
		t.Fatalf("invalidated = %v, want exactly one data path", lost)
	}
	if got := c.TakeInvalidated(); len(got) != 0 {
		t.Errorf("second TakeInvalidated = %v, want drained", got)
	}
	st := c.Stats()
	if st.UnitsFailed != 1 || st.FaultEvictions != 1 {
		t.Errorf("UnitsFailed=%d FaultEvictions=%d, want 1/1", st.UnitsFailed, st.FaultEvictions)
	}

	// Fail the second PRC, then a third failure has nothing left to kill.
	if !c.FailUnit(arch.FG, true) {
		t.Fatal("second FailUnit failed")
	}
	if c.FailUnit(arch.FG, true) {
		t.Error("FailUnit succeeded on an empty fabric")
	}
}

func TestFailUnitTransientRecovers(t *testing.T) {
	c := newCtrl(t, 1, 1)
	if !c.FailUnit(arch.CG, false) {
		t.Fatal("transient failure rejected")
	}
	if c.FreeCG() != 0 {
		t.Errorf("FreeCG = %d during outage, want 0", c.FreeCG())
	}
	if !c.RecoverUnit(arch.CG) {
		t.Fatal("RecoverUnit found no suspect container")
	}
	if c.FreeCG() != 1 {
		t.Errorf("FreeCG = %d after recovery, want 1", c.FreeCG())
	}
	// A permanent failure cannot be recovered.
	c.FailUnit(arch.CG, true)
	if c.RecoverUnit(arch.CG) {
		t.Error("RecoverUnit resurrected a permanently failed container")
	}
	st := c.Stats()
	if st.UnitsFailed != 2 || st.UnitsRecovered != 1 {
		t.Errorf("UnitsFailed=%d UnitsRecovered=%d, want 2/1", st.UnitsFailed, st.UnitsRecovered)
	}
}

func TestRetryBoundedAndAccounted(t *testing.T) {
	c := newCtrl(t, 1, 0)
	v := &scriptVerifier{}
	v.bad[arch.FG] = 1 // first attempt corrupted, second clean
	c.SetVerifier(v)

	dur := arch.FGReconfigCycles
	ready, err := c.Request(fgDP("a"), 0)
	if err != nil {
		t.Fatal(err)
	}
	// attempt 1: [0, dur) corrupted; backoff dur/4; attempt 2 completes at
	// dur + dur/4 + dur.
	want := dur + configBackoff(dur, 1) + dur
	if ready != want {
		t.Errorf("ready = %d, want %d (one retry with backoff)", ready, want)
	}
	st := c.Stats()
	if st.CRCFailures != 1 || st.Retries != 1 {
		t.Errorf("CRCFailures=%d Retries=%d, want 1/1", st.CRCFailures, st.Retries)
	}
	if st.RetryCycles != configBackoff(dur, 1) {
		t.Errorf("RetryCycles = %d, want %d", st.RetryCycles, configBackoff(dur, 1))
	}
	if st.FGBusyCycles != 2*dur {
		t.Errorf("FGBusyCycles = %d, want %d (two streamed attempts)", st.FGBusyCycles, 2*dur)
	}
	if v.calls[arch.FG] != 2 {
		t.Errorf("verifier consulted %d times, want 2", v.calls[arch.FG])
	}
}

func TestRetryExhaustionDeclaresFailure(t *testing.T) {
	c := newCtrl(t, 2, 0)
	v := &scriptVerifier{}
	v.bad[arch.FG] = 1000 // every attempt corrupted
	c.SetVerifier(v)

	_, err := c.Request(fgDP("a"), 0)
	if !errors.Is(err, ErrConfigFailed) {
		t.Fatalf("err = %v, want ErrConfigFailed", err)
	}
	// The loop is provably bounded: exactly MaxConfigAttempts attempts.
	if v.calls[arch.FG] != MaxConfigAttempts {
		t.Errorf("attempts = %d, want %d", v.calls[arch.FG], MaxConfigAttempts)
	}
	st := c.Stats()
	if st.CRCFailures != MaxConfigAttempts || st.Retries != MaxConfigAttempts-1 {
		t.Errorf("CRCFailures=%d Retries=%d, want %d/%d",
			st.CRCFailures, st.Retries, MaxConfigAttempts, MaxConfigAttempts-1)
	}
	// The target container was declared permanently failed.
	if c.Fabric().AvailablePRC() != 1 {
		t.Errorf("available PRCs = %d after exhaustion, want 1", c.Fabric().AvailablePRC())
	}
	if st.UnitsFailed != 1 {
		t.Errorf("UnitsFailed = %d, want 1", st.UnitsFailed)
	}
	// The failed configuration was not installed.
	if _, ok := c.ReadyTime("a"); ok {
		t.Error("failed data path left in the configured set")
	}
}

func TestCommitSelectionSafeSkips(t *testing.T) {
	c := newCtrl(t, 1, 1)
	v := &scriptVerifier{}
	v.bad[arch.FG] = 1000 // FG port permanently corrupted
	c.SetVerifier(v)

	e1 := mkISE("e1", cgDP("c"))            // CG only: unaffected
	e2 := mkISE("e2", fgDP("a"), cgDP("b")) // FG path dies under retry
	res := c.CommitSelectionSafe([]*ise.ISE{e1, e2}, 0)
	if len(res.Skipped) != 1 || res.Skipped[0] != 1 {
		t.Fatalf("Skipped = %v, want [1]", res.Skipped)
	}
	if res.Done[0] == 0 {
		t.Error("surviving ISE has no completion time")
	}
	if res.Done[1] != 0 {
		t.Errorf("skipped ISE has completion time %d", res.Done[1])
	}
	c.Advance(res.Done[0])
	if !c.IsConfigured("c") {
		t.Error("surviving ISE's data path not configured")
	}

	// With a healthy fabric, Safe behaves exactly like the strict commit.
	c2 := newCtrl(t, 1, 1)
	sel := []*ise.ISE{mkISE("e", fgDP("x"), cgDP("y"))}
	strictDone, err := newCtrl(t, 1, 1).CommitSelection(sel, 0)
	if err != nil {
		t.Fatal(err)
	}
	safe := c2.CommitSelectionSafe(sel, 0)
	if len(safe.Skipped) != 0 || safe.Done[0] != strictDone[0] {
		t.Errorf("healthy Safe commit = %+v, strict done = %v", safe, strictDone)
	}
}

func TestCommitSelectionSafeOverBudget(t *testing.T) {
	// The surviving fabric is too small for the ISE: skipped, not aborted.
	c := newCtrl(t, 1, 0)
	c.FailUnit(arch.FG, true)
	res := c.CommitSelectionSafe([]*ise.ISE{mkISE("e", fgDP("a"))}, 0)
	if len(res.Skipped) != 1 {
		t.Fatalf("Skipped = %v, want the one over-budget ISE", res.Skipped)
	}
}

func TestResetClearsFaultState(t *testing.T) {
	c := newCtrl(t, 1, 1)
	v := &scriptVerifier{}
	v.bad[arch.FG] = 1000
	c.SetVerifier(v)
	_, _ = c.Request(fgDP("a"), 0)
	c.FailUnit(arch.CG, true)

	c.Reset()
	if c.Fabric().AvailablePRC() != 1 || c.Fabric().AvailableCG() != 1 {
		t.Error("Reset did not restore fabric health")
	}
	if got := c.TakeInvalidated(); len(got) != 0 {
		t.Errorf("Reset left invalidation log %v", got)
	}
	// Verifier is gone: configurations are clean again.
	if _, err := c.Request(fgDP("b"), 0); err != nil {
		t.Errorf("post-Reset request failed: %v", err)
	}
	if st := c.Stats(); st.CRCFailures != 0 {
		t.Errorf("Reset left CRCFailures = %d", st.CRCFailures)
	}
}

func TestConfigBackoffCapped(t *testing.T) {
	dur := arch.Cycles(1000)
	if b := configBackoff(dur, 1); b != 250 {
		t.Errorf("backoff(1) = %d, want 250", b)
	}
	if b := configBackoff(dur, 2); b != 500 {
		t.Errorf("backoff(2) = %d, want 500", b)
	}
	if b := configBackoff(dur, 10); b != dur {
		t.Errorf("backoff(10) = %d, want capped at %d", b, dur)
	}
}
