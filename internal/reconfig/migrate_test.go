package reconfig

import (
	"testing"

	"mrts/internal/arch"
	"mrts/internal/obs"
)

func TestRepartitionValidatesCapacity(t *testing.T) {
	c := newCtrl(t, 4, 0)
	if _, _, err := c.Repartition(arch.FG, 5, 0, 0); err == nil {
		t.Error("capacity above the fabric accepted")
	}
	if _, _, err := c.Repartition(arch.FG, -1, 0, 0); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestRepartitionSetsReservation(t *testing.T) {
	c := newCtrl(t, 4, 3)
	if _, _, err := c.Repartition(arch.FG, 2, 2, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Repartition(arch.CG, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if prc, cg := c.Reserved(); prc != 2 || cg != 2 {
		t.Errorf("reservation = %d/%d, want 2/2", prc, cg)
	}
	if c.FreePRC() != 2 || c.FreeCG() != 1 {
		t.Errorf("free = %d/%d, want 2/1", c.FreePRC(), c.FreeCG())
	}
}

func TestRepartitionRetainedKeepsOldestMigratesNewest(t *testing.T) {
	c := newCtrl(t, 4, 0)
	ra, _ := c.Request(fgDP("a"), 0)
	rb, _ := c.Request(fgDP("b"), 0) // streams after a: newer ready time
	c.Advance(rb)

	// Same capacity, one container retained: the newer path ("b") must be
	// re-streamed, the older ("a") stays configured.
	migrated, last, err := c.Repartition(arch.FG, 2, 1, rb)
	if err != nil {
		t.Fatal(err)
	}
	if migrated != 1 {
		t.Fatalf("migrated = %d, want 1", migrated)
	}
	if want := rb + arch.FGReconfigCycles; last != want {
		t.Errorf("migration completes at %d, want %d", last, want)
	}
	if got, _ := c.ReadyTime("a"); got != ra {
		t.Errorf("retained path re-streamed: ready %d, want %d", got, ra)
	}
	if got, _ := c.ReadyTime("b"); got != last {
		t.Errorf("migrated path ready %d, want %d", got, last)
	}
	st := c.Stats()
	if st.Migrations != 1 || st.MigrationCycles != arch.FGReconfigCycles {
		t.Errorf("migration stats = %d/%d", st.Migrations, st.MigrationCycles)
	}
}

func TestRepartitionFullOverlapMigratesNothing(t *testing.T) {
	c := newCtrl(t, 4, 0)
	c.Request(fgDP("a"), 0)
	c.Request(fgDP("b"), 0)
	migrated, _, err := c.Repartition(arch.FG, 3, 3, arch.FGReconfigCycles*3)
	if err != nil || migrated != 0 {
		t.Fatalf("migrated = %d (%v), want 0 on full overlap", migrated, err)
	}
	if c.Stats().Migrations != 0 {
		t.Error("migration counted on full overlap")
	}
}

func TestRepartitionShrinkEvictsOverflow(t *testing.T) {
	c := newCtrl(t, 3, 0)
	c.Request(fgDP("a"), 0)
	c.Request(fgDP("b"), 0)
	c.Request(fgDP("c"), 0)
	rec := obs.New()
	c.SetObserver(rec)
	migrated, _, err := c.Repartition(arch.FG, 1, 0, arch.FGReconfigCycles*4)
	if err != nil {
		t.Fatal(err)
	}
	// Two paths evicted to fit the one-container share, the survivor
	// (zero retained) migrated.
	st := c.Stats()
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if migrated != 1 || st.Migrations != 1 {
		t.Errorf("migrated = %d (stats %d), want 1", migrated, st.Migrations)
	}
	if lost := c.TakeInvalidated(); len(lost) != 2 {
		t.Errorf("invalidated = %v, want the 2 evicted paths", lost)
	}
	var sawMigrate bool
	for _, ev := range rec.Events() {
		if ev.Kind == obs.KindMigrate {
			sawMigrate = true
			if ev.Fabric != "FG" || ev.Path == "" {
				t.Errorf("migrate event missing fields: %+v", ev)
			}
		}
	}
	if !sawMigrate {
		t.Error("no migrate event recorded")
	}
}

func TestRepartitionGrowRestoresCapacity(t *testing.T) {
	c := newCtrl(t, 4, 2)
	if _, _, err := c.Repartition(arch.FG, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if c.FreePRC() != 1 {
		t.Fatalf("free after shrink = %d, want 1", c.FreePRC())
	}
	if _, _, err := c.Repartition(arch.FG, 4, 1, 0); err != nil {
		t.Fatal(err)
	}
	if c.FreePRC() != 4 {
		t.Errorf("free after grow = %d, want 4", c.FreePRC())
	}
}
