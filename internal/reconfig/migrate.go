package reconfig

import (
	"fmt"
	"sort"

	"mrts/internal/arch"
	"mrts/internal/obs"
)

// Repartition resizes the controller's usable share of one fabric to
// `capacity` containers, live-migrating configured data paths that no
// longer sit inside the new share. The vfabric hypervisor calls it at an
// epoch boundary, with the tenant drained (no execution in flight):
//
//   - The reservation is set to fabric − capacity, so FreePRC/FreeCG and
//     the SelectionView immediately reflect the new share. Unlike Reserve,
//     a shrink never fails on pinned paths — the containers are being
//     taken away, so pinned paths are migrated or evicted instead.
//   - Shrink overflow is resolved by evictOverflow: monoCG contexts go
//     first (cheapest to reload), then unpinned paths, then pinned ones,
//     every evicted path logged for ISE invalidation via TakeInvalidated.
//   - `retained` is the number of containers shared between the old and
//     new windows (arch.Window.Overlap). Data paths pack oldest-first into
//     the window, so the oldest paths covering `retained` units stay put;
//     every newer surviving path sits on a container the tenant lost and
//     is re-streamed into its new share through the configuration port at
//     full destination reconfiguration cost (CRC retries included — a
//     migration that exhausts its retry budget declares the destination
//     container failed and the path is lost, logged for invalidation).
//
// It returns the number of paths migrated and the time the last migration
// completes (now if none). The caller advances its clock past nothing —
// migration cost is paid through port backlog, exactly like any other
// reconfiguration.
func (c *Controller) Repartition(kind arch.FabricKind, capacity, retained int, now arch.Cycles) (int, arch.Cycles, error) {
	var total int
	if kind == arch.FG {
		total = c.cfg.NPRC
	} else {
		total = c.cfg.NCG
	}
	if capacity < 0 || capacity > total {
		return 0, now, fmt.Errorf("reconfig: repartition capacity %d outside fabric of %d", capacity, total)
	}
	if retained < 0 {
		retained = 0
	}
	if retained > capacity {
		retained = capacity
	}
	c.Advance(now)
	if kind == arch.FG {
		c.reservedPRC = total - capacity
	} else {
		c.reservedCG = total - capacity
	}
	// Shrinks can leave more units occupied than the new share holds;
	// evict the overflow before deciding what migrates.
	c.evictOverflow(kind)

	// Surviving paths of this kind, oldest first: the retained prefix of
	// the old window keeps them configured, the rest moved containers.
	var survivors []*slot
	occupied := 0
	for _, s := range c.paths {
		if s.dp.Kind != kind {
			continue
		}
		survivors = append(survivors, s)
		occupied += s.dp.PRCs + s.dp.CGs
	}
	move := occupied - retained
	if move <= 0 {
		return 0, now, nil
	}
	sort.Slice(survivors, func(i, j int) bool {
		if survivors[i].ready != survivors[j].ready {
			return survivors[i].ready < survivors[j].ready
		}
		return survivors[i].dp.ID < survivors[j].dp.ID
	})

	migrated := 0
	last := now
	kept := 0
	for _, s := range survivors {
		units := s.dp.PRCs + s.dp.CGs
		if kept+units <= retained {
			kept += units
			continue
		}
		ready, ok := c.schedule(s.dp, now)
		if !ok {
			// The destination container died under retry exhaustion: the
			// path is lost in transit.
			c.declareFailed(kind)
			if _, alive := c.paths[s.dp.ID]; alive {
				c.removePath(s)
				c.stats.Evictions++
				c.invalidated = append(c.invalidated, s.dp.ID)
			}
			continue
		}
		// The migrated path is unconfigured until it finishes re-streaming:
		// moving its ready time forward can downgrade steering decisions,
		// so the change version must advance.
		s.ready = ready
		c.version++
		c.stats.Migrations++
		c.stats.MigrationCycles += s.dp.ReconfigCycles()
		if ready > last {
			last = ready
		}
		if c.obsr != nil {
			c.obsr.Record(obs.Event{
				Cycle: c.now, Source: obs.SourceReconfig, Kind: obs.KindMigrate,
				Path: string(s.dp.ID), Fabric: kind.String(),
				Ready: ready, Latency: s.dp.ReconfigCycles(),
			})
		}
		migrated++
	}
	return migrated, last, nil
}
