// Package reconfig implements the reconfiguration controller of the
// multi-grained processor: it owns the fabric inventory (PRCs, CG-EDPEs),
// schedules data-path reconfigurations — serially through the single
// fine-grained configuration port, and via context streaming for the
// coarse-grained fabric — tracks completion times, and manages
// monoCG-Extension slots for the Execution Control Unit.
//
// Configured data paths are not torn down eagerly: when a new selection is
// committed, the data paths of the previous selection merely lose their
// pin and are evicted lazily, only when capacity is actually needed. This
// matches the RISPP-style fabric management the paper builds on — a data
// path that survives until the same functional block is entered again
// costs nothing to "reconfigure".
package reconfig

import (
	"errors"
	"fmt"
	"sort"

	"mrts/internal/arch"
	"mrts/internal/ise"
	"mrts/internal/obs"
)

// Stats accumulates controller activity for the experiment reports. The
// fault-related counters carry omitempty tags so that the serialised form
// of a fault-free run is byte-identical to the pre-fault encoding.
type Stats struct {
	// FGReconfigs / CGReconfigs count scheduled data-path
	// reconfigurations per fabric.
	FGReconfigs int64
	CGReconfigs int64
	// FGBusyCycles / CGBusyCycles are the cycles the configuration ports
	// spent streaming.
	FGBusyCycles arch.Cycles
	CGBusyCycles arch.Cycles
	// Evictions counts configured or in-flight data paths removed to
	// make room.
	Evictions int64
	// MonoCGLoads counts monoCG-Extension context loads.
	MonoCGLoads int64

	// CRCFailures counts configuration attempts whose streamed bitstream
	// failed the CRC-style check.
	CRCFailures int64 `json:",omitempty"`
	// Retries counts configurations re-streamed after a CRC failure.
	Retries int64 `json:",omitempty"`
	// RetryCycles accumulates the deterministic backoff delays inserted
	// between configuration attempts.
	RetryCycles arch.Cycles `json:",omitempty"`
	// UnitsFailed counts containers taken out of service (fault events
	// plus containers declared failed after exhausted retries).
	UnitsFailed int64 `json:",omitempty"`
	// UnitsRecovered counts containers returning from transient outages.
	UnitsRecovered int64 `json:",omitempty"`
	// FaultEvictions counts data paths lost because their container
	// failed underneath them (a subset of Evictions).
	FaultEvictions int64 `json:",omitempty"`

	// Migrations counts configured data paths live-migrated between
	// containers by a vFabric repartition; MigrationCycles accumulates
	// their destination reconfiguration cost. Zero outside hypervisor
	// runs, so single-tenant encodings are unchanged.
	Migrations      int64       `json:",omitempty"`
	MigrationCycles arch.Cycles `json:",omitempty"`
}

// Retry bounds of the configuration port: a corrupted bitstream is
// re-streamed after a deterministic, exponentially growing backoff, at
// most MaxConfigAttempts times in total, after which the target container
// is declared failed. The loop is therefore provably bounded.
const MaxConfigAttempts = 3

// ErrConfigFailed marks a data-path configuration abandoned after
// MaxConfigAttempts corrupted streaming attempts; the target container has
// been declared failed.
var ErrConfigFailed = errors.New("configuration failed after retries")

// Verifier is the CRC-style configuration check the fault engine plugs
// into the controller: it reports whether the configuration attempt on the
// fabric kind completing at time `at` streamed a corrupted bitstream.
// Implementations may consume internal state per call (each attempt checks
// one streamed bitstream). A nil Verifier means every attempt is clean.
type Verifier interface {
	Corrupted(kind arch.FabricKind, at arch.Cycles) bool
}

type slot struct {
	dp     ise.DataPath
	ready  arch.Cycles
	pinned bool
}

type monoSlot struct {
	kernel ise.KernelID
	ready  arch.Cycles
}

// Controller is the reconfiguration controller. Methods take the current
// simulation time where it matters; Advance moves the controller's notion
// of "now" forward for the FabricView queries.
type Controller struct {
	cfg         arch.Config
	reservedPRC int
	reservedCG  int

	now arch.Cycles

	// paths holds every data path that is configured or in flight.
	paths map[ise.DataPathID]*slot
	// fgPortEnd / cgPortEnd are the times the configuration ports become
	// free again.
	fgPortEnd arch.Cycles
	cgPortEnd arch.Cycles

	monos map[ise.KernelID]*monoSlot

	// occPRC / occCG mirror the PRC / CG-EDPE units held by c.paths. The
	// free-capacity queries run once per kernel execution via the ECU, so
	// they must not iterate the paths map; every insert and delete keeps
	// these counters in sync instead (occupiedCG adds len(monos) on top).
	occPRC int
	occCG  int
	// version counts state changes that can downgrade an execution-steering
	// decision: data-path removals, ready-time changes (migration) and
	// monoCG releases. The ECU's steady-state decision cache is valid only
	// while the version is unchanged. Additions do not bump it — a new data
	// path can only improve a later decision, never invalidate a cached
	// full-ISE or monoCG one.
	version uint64

	// fabric tracks per-container health; all-healthy (the initial and
	// fault-free state) makes the capacity arithmetic identical to the
	// plain budget counts.
	fabric *arch.Fabric
	// verifier is the CRC check applied to every configuration attempt
	// (nil outside fault scenarios: every attempt is clean).
	verifier Verifier
	// obsr records configuration-port and fault events when tracing is on
	// (nil otherwise — the observer is strictly a tap).
	obsr *obs.Recorder
	// invalidated logs data paths lost to container failures since the
	// last TakeInvalidated call, for the runtime system to invalidate
	// the ISEs that reference them.
	invalidated []ise.DataPathID

	stats Stats
}

var _ ise.FabricView = (*Controller)(nil)

// NewController creates a controller for the given fabric budget.
func NewController(cfg arch.Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{
		cfg:    cfg,
		paths:  make(map[ise.DataPathID]*slot),
		monos:  make(map[ise.KernelID]*monoSlot),
		fabric: arch.NewFabric(cfg),
	}, nil
}

// Config returns the fabric budget the controller manages.
func (c *Controller) Config() arch.Config { return c.cfg }

// Stats returns a snapshot of the accumulated activity counters.
func (c *Controller) Stats() Stats { return c.stats }

// Now returns the controller's current time.
func (c *Controller) Now() arch.Cycles { return c.now }

// Advance moves the controller's clock forward. Time never moves backwards.
func (c *Controller) Advance(now arch.Cycles) {
	if now > c.now {
		c.now = now
	}
}

// Reset clears all configuration state and statistics; only the budget
// survives. Simulation runs Reset the controller first, so every report's
// counters cover exactly one run.
func (c *Controller) Reset() {
	c.paths = make(map[ise.DataPathID]*slot)
	c.monos = make(map[ise.KernelID]*monoSlot)
	c.occPRC, c.occCG = 0, 0
	c.version++
	c.fgPortEnd, c.cgPortEnd = 0, 0
	c.now = 0
	c.reservedPRC, c.reservedCG = 0, 0
	c.fabric.Reset()
	c.verifier = nil
	c.obsr = nil
	c.invalidated = nil
	c.stats = Stats{}
}

// SetVerifier installs (or, with nil, removes) the CRC-style configuration
// check. The simulator installs the fault engine's verifier after Reset,
// so a reused controller never carries a stale verifier across runs.
func (c *Controller) SetVerifier(v Verifier) { c.verifier = v }

// SetObserver installs (or, with nil, removes) the decision-trace recorder.
// Like the verifier, it is cleared by Reset and re-installed by the
// simulator per run, so a reused controller never streams into a stale
// trace.
func (c *Controller) SetObserver(r *obs.Recorder) { c.obsr = r }

// Fabric exposes the per-container health state (read-mostly; mutate it
// through FailUnit / RecoverUnit so capacity overflows are handled).
func (c *Controller) Fabric() *arch.Fabric { return c.fabric }

// occupiedPRC/occupiedCG include in-flight data paths: a PRC is unusable
// from the moment its partial bitstream starts streaming.
func (c *Controller) occupiedPRC() int { return c.occPRC }

func (c *Controller) occupiedCG() int { return c.occCG + len(c.monos) }

// Version returns the controller's change version: it advances whenever a
// data path is removed or re-scheduled or a monoCG slot is released —
// exactly the events that can invalidate a previously optimal
// execution-steering decision. See ecu's decision cache.
func (c *Controller) Version() uint64 { return c.version }

// FreePRC implements ise.FabricView: healthy PRCs neither occupied nor
// reserved.
func (c *Controller) FreePRC() int {
	return c.fabric.AvailablePRC() - c.reservedPRC - c.occupiedPRC()
}

// FreeCG implements ise.FabricView: healthy CG-EDPEs neither occupied nor
// reserved.
func (c *Controller) FreeCG() int {
	return c.fabric.AvailableCG() - c.reservedCG - c.occupiedCG()
}

// IsConfigured implements ise.FabricView: the data path is present and its
// reconfiguration has completed at the controller's current time.
func (c *Controller) IsConfigured(id ise.DataPathID) bool {
	s, ok := c.paths[id]
	return ok && s.ready <= c.now
}

// ReadyTime reports when the data path will be (or was) configured.
func (c *Controller) ReadyTime(id ise.DataPathID) (arch.Cycles, bool) {
	s, ok := c.paths[id]
	if !ok {
		return 0, false
	}
	return s.ready, true
}

// ConfiguredPrefix returns the length of the longest prefix of the ISE's
// data-path list whose members are all configured at the current time.
// This is the best available intermediate ISE (paper Section 4.1).
func (c *Controller) ConfiguredPrefix(e *ise.ISE) int {
	n := 0
	for _, d := range e.DataPaths {
		if !c.IsConfigured(d.ID) {
			break
		}
		n++
	}
	return n
}

// Reserve marks fabric as occupied by other tasks (run-time sharing,
// paper Section 1). Growing a reservation evicts unpinned data paths if
// necessary; it fails if pinned paths or monoCG slots are in the way.
func (c *Controller) Reserve(prc, cg int) error {
	if prc < 0 || cg < 0 {
		return fmt.Errorf("reconfig: negative reservation %d/%d", prc, cg)
	}
	if prc > c.cfg.NPRC || cg > c.cfg.NCG {
		return fmt.Errorf("reconfig: reservation %d/%d exceeds fabric %d/%d", prc, cg, c.cfg.NPRC, c.cfg.NCG)
	}
	needPRC := prc - c.reservedPRC - c.FreePRC()
	needCG := cg - c.reservedCG - c.FreeCG()
	if needPRC > 0 && c.evict(arch.FG, needPRC) < needPRC {
		return fmt.Errorf("reconfig: cannot reserve %d PRCs: pinned data paths in the way", prc)
	}
	if needCG > 0 && c.evict(arch.CG, needCG) < needCG {
		return fmt.Errorf("reconfig: cannot reserve %d CG-EDPEs: pinned data paths in the way", cg)
	}
	c.reservedPRC, c.reservedCG = prc, cg
	return nil
}

// Reserved returns the current reservation.
func (c *Controller) Reserved() (prc, cg int) { return c.reservedPRC, c.reservedCG }

// evict removes unpinned data paths of the given fabric kind until at least
// `units` capacity units have been freed or no candidates remain; it
// returns the units actually freed. Eviction order is deterministic:
// oldest ready time first, ties by ID.
func (c *Controller) evict(kind arch.FabricKind, units int) int {
	return c.evictPass(kind, units, false, false)
}

// evictPass is the eviction worker: it removes data paths of the kind with
// the given pin state until `units` capacity units are freed. record logs
// the removed paths as fault-invalidated (container failures only).
func (c *Controller) evictPass(kind arch.FabricKind, units int, pinned, record bool) int {
	var cands []*slot
	for _, s := range c.paths {
		if s.pinned != pinned || s.dp.Kind != kind {
			continue
		}
		cands = append(cands, s)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ready != cands[j].ready {
			return cands[i].ready < cands[j].ready
		}
		return cands[i].dp.ID < cands[j].dp.ID
	})
	freed := 0
	for _, s := range cands {
		if freed >= units {
			break
		}
		c.removePath(s)
		c.stats.Evictions++
		if record {
			c.stats.FaultEvictions++
			c.invalidated = append(c.invalidated, s.dp.ID)
		}
		if c.obsr != nil {
			detail := "capacity"
			if record {
				detail = "fault"
			}
			c.obsr.Record(obs.Event{
				Cycle: c.now, Source: obs.SourceReconfig, Kind: obs.KindEvict,
				Path: string(s.dp.ID), Fabric: kind.String(), Detail: detail,
			})
		}
		freed += s.dp.PRCs + s.dp.CGs
	}
	return freed
}

// removePath deletes one data path and keeps the occupancy counters and
// change version in sync. Every `delete(c.paths, ...)` must go through it.
func (c *Controller) removePath(s *slot) {
	delete(c.paths, s.dp.ID)
	c.occPRC -= s.dp.PRCs
	c.occCG -= s.dp.CGs
	c.version++
}

// evictOverflow restores the capacity invariant after a container of the
// kind was lost: occupied + reserved must not exceed the healthy count.
// Unlike normal lazy eviction the pin cannot save a data path here — the
// hardware underneath it is gone — so pinned paths go too, after monoCG
// contexts (cheapest to drop) and unpinned paths. Every removed path is
// logged for the runtime system to invalidate the ISEs referencing it.
func (c *Controller) evictOverflow(kind arch.FabricKind) {
	var overflow int
	if kind == arch.FG {
		overflow = c.occupiedPRC() + c.reservedPRC - c.fabric.AvailablePRC()
	} else {
		overflow = c.occupiedCG() + c.reservedCG - c.fabric.AvailableCG()
	}
	if overflow <= 0 {
		return
	}
	if kind == arch.CG && len(c.monos) > 0 {
		ids := make([]ise.KernelID, 0, len(c.monos))
		for id := range c.monos {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if overflow <= 0 {
				break
			}
			delete(c.monos, id)
			c.version++
			overflow--
		}
	}
	if overflow > 0 {
		overflow -= c.evictPass(kind, overflow, false, true)
	}
	if overflow > 0 {
		c.evictPass(kind, overflow, true, true)
	}
}

// FailUnit takes one healthy container of the kind out of service —
// permanently (a hard fault) or transiently (Suspect; RecoverUnit returns
// it). Data paths and monoCG contexts that no longer fit on the surviving
// fabric are evicted, pinned or not, and logged for invalidation. It
// reports whether a healthy container was left to fail.
func (c *Controller) FailUnit(kind arch.FabricKind, permanent bool) bool {
	if !c.fabric.Fail(kind, permanent) {
		return false
	}
	c.stats.UnitsFailed++
	if c.obsr != nil {
		detail := "transient"
		if permanent {
			detail = "permanent"
		}
		c.obsr.Record(obs.Event{
			Cycle: c.now, Source: obs.SourceReconfig, Kind: obs.KindUnitFail,
			Fabric: kind.String(), Detail: detail,
		})
	}
	c.evictOverflow(kind)
	return true
}

// RecoverUnit returns one transiently-down container of the kind to
// service. It reports whether a suspect container existed.
func (c *Controller) RecoverUnit(kind arch.FabricKind) bool {
	if !c.fabric.Recover(kind) {
		return false
	}
	c.stats.UnitsRecovered++
	if c.obsr != nil {
		c.obsr.Record(obs.Event{
			Cycle: c.now, Source: obs.SourceReconfig, Kind: obs.KindUnitUp,
			Fabric: kind.String(),
		})
	}
	return true
}

// TakeInvalidated drains the log of data paths lost to container failures
// since the last call, sorted for determinism. The runtime system uses it
// to invalidate the ISEs whose data paths are gone.
func (c *Controller) TakeInvalidated() []ise.DataPathID {
	out := c.invalidated
	c.invalidated = nil
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// declareFailed marks one container of the kind permanently failed after a
// configuration exhausted its retry budget on it.
func (c *Controller) declareFailed(kind arch.FabricKind) {
	if c.fabric.Fail(kind, true) {
		c.stats.UnitsFailed++
		if c.obsr != nil {
			c.obsr.Record(obs.Event{
				Cycle: c.now, Source: obs.SourceReconfig, Kind: obs.KindUnitFail,
				Fabric: kind.String(), Detail: "retries exhausted",
			})
		}
		c.evictOverflow(kind)
	}
}

// Request schedules the reconfiguration of a single data path at time now,
// unless it is already configured or in flight. Unpinned data paths are
// evicted on demand to make room. The requested path is pinned. It returns
// the time the data path becomes available.
func (c *Controller) Request(d ise.DataPath, now arch.Cycles) (arch.Cycles, error) {
	c.Advance(now)
	if s, ok := c.paths[d.ID]; ok {
		s.pinned = true
		return s.ready, nil
	}
	switch d.Kind {
	case arch.FG:
		if need := d.PRCs - c.FreePRC(); need > 0 {
			c.evict(arch.FG, need)
		}
		if d.PRCs > c.FreePRC() {
			return 0, fmt.Errorf("reconfig: no free PRC for data path %q (need %d, free %d)", d.ID, d.PRCs, c.FreePRC())
		}
	case arch.CG:
		if need := d.CGs - c.FreeCG(); need > 0 {
			c.evict(arch.CG, need)
		}
		if d.CGs > c.FreeCG() {
			return 0, fmt.Errorf("reconfig: no free CG-EDPE for data path %q (need %d, free %d)", d.ID, d.CGs, c.FreeCG())
		}
	}
	ready, ok := c.schedule(d, now)
	if !ok {
		c.declareFailed(d.Kind)
		return ready, fmt.Errorf("reconfig: data path %q: %w", d.ID, ErrConfigFailed)
	}
	c.paths[d.ID] = &slot{dp: d, ready: ready, pinned: true}
	c.occPRC += d.PRCs
	c.occCG += d.CGs
	return ready, nil
}

// schedule streams the data path's configuration through its fabric's
// port. Every attempt occupies the port for the full reconfiguration
// latency; a corrupted attempt (CRC check fails after streaming) is
// retried after a deterministic exponential backoff, at most
// MaxConfigAttempts times in total. It returns the completion time and
// whether a clean configuration was achieved. Without a verifier the loop
// body runs exactly once and the accounting matches the fault-free model.
func (c *Controller) schedule(d ise.DataPath, now arch.Cycles) (arch.Cycles, bool) {
	dur := d.ReconfigCycles()
	portEnd := &c.cgPortEnd
	busy := &c.stats.CGBusyCycles
	if d.Kind == arch.FG {
		portEnd = &c.fgPortEnd
		busy = &c.stats.FGBusyCycles
		c.stats.FGReconfigs++
	} else {
		c.stats.CGReconfigs++
	}
	start := maxCycles(now, *portEnd)
	for attempt := 1; ; attempt++ {
		end := start + dur
		*busy += dur
		// Events are stamped with the controller clock (the request time),
		// not the — possibly future — port-streaming window, so trace
		// timestamps stay monotonic; the window is [Ready-Latency, Ready].
		if c.verifier == nil || !c.verifier.Corrupted(d.Kind, end) {
			*portEnd = end
			if c.obsr != nil {
				c.obsr.Record(obs.Event{
					Cycle: c.now, Source: obs.SourceReconfig, Kind: obs.KindConfig,
					Path: string(d.ID), Fabric: d.Kind.String(), Ready: end, Latency: dur,
				})
			}
			return end, true
		}
		c.stats.CRCFailures++
		if attempt >= MaxConfigAttempts {
			*portEnd = end
			if c.obsr != nil {
				c.obsr.Record(obs.Event{
					Cycle: c.now, Source: obs.SourceReconfig, Kind: obs.KindRetry,
					Path: string(d.ID), Fabric: d.Kind.String(), Ready: end, Latency: dur,
					Detail: "abandoned: attempts exhausted",
				})
			}
			return end, false
		}
		c.stats.Retries++
		b := configBackoff(dur, attempt)
		c.stats.RetryCycles += b
		if c.obsr != nil {
			c.obsr.Record(obs.Event{
				Cycle: c.now, Source: obs.SourceReconfig, Kind: obs.KindRetry,
				Path: string(d.ID), Fabric: d.Kind.String(), Ready: end, Latency: b,
				Detail: "CRC failure, re-streaming after backoff",
			})
		}
		start = end + b
	}
}

// configBackoff is the deterministic backoff inserted after corrupted
// attempt number `attempt` (1-based): a quarter of the reconfiguration
// latency, doubling per attempt, capped at one full latency.
func configBackoff(dur arch.Cycles, attempt int) arch.Cycles {
	b := (dur / 4) << uint(attempt-1)
	if b > dur {
		b = dur
	}
	return b
}

// CommitSelection installs the data paths of a newly selected ISE set: the
// previous selection's pins are dropped (the paths stay until capacity is
// needed), monoCG slots are released, and missing data paths are scheduled
// in the order the ISEs were selected (priority order). It returns the
// per-ISE completion times.
func (c *Controller) CommitSelection(selected []*ise.ISE, now arch.Cycles) ([]arch.Cycles, error) {
	done, _, err := c.commit(selected, now, false)
	return done, err
}

// CommitResult reports a fault-tolerant commit: Done holds the per-ISE
// completion times (zero for skipped entries); Skipped holds the indices
// of ISEs whose data paths could not be configured on the surviving
// fabric. Already-configured prefixes of skipped ISEs stay on the fabric,
// so the ECU can still dispatch them as intermediate ISEs.
type CommitResult struct {
	Done    []arch.Cycles
	Skipped []int
}

// CommitSelectionSafe is the fault-tolerant variant of CommitSelection:
// an ISE whose configuration fails — the surviving fabric is too small, or
// a container dies under retry exhaustion — is skipped instead of aborting
// the commit, and the remaining ISEs are still installed. With a healthy
// fabric it behaves exactly like CommitSelection.
func (c *Controller) CommitSelectionSafe(selected []*ise.ISE, now arch.Cycles) CommitResult {
	done, skipped, _ := c.commit(selected, now, true)
	return CommitResult{Done: done, Skipped: skipped}
}

func (c *Controller) commit(selected []*ise.ISE, now arch.Cycles, tolerate bool) ([]arch.Cycles, []int, error) {
	c.Advance(now)
	for _, s := range c.paths {
		s.pinned = false
	}
	// monoCG slots do not survive a new selection: the CG-EDPEs they
	// borrow must be available for the committed data paths.
	c.releaseAllMono()

	// Pin already-present paths first so they cannot be evicted by the
	// requests below.
	for _, e := range selected {
		for _, d := range e.DataPaths {
			if s, ok := c.paths[d.ID]; ok {
				s.pinned = true
			}
		}
	}
	done := make([]arch.Cycles, len(selected))
	var skipped []int
	for i, e := range selected {
		var last arch.Cycles = now
		var fail error
		for _, d := range e.DataPaths {
			ready, err := c.Request(d, now)
			if err != nil {
				fail = err
				break
			}
			if ready > last {
				last = ready
			}
		}
		if fail != nil {
			if !tolerate {
				return nil, nil, fmt.Errorf("reconfig: committing ISE %q: %w", e.ID, fail)
			}
			skipped = append(skipped, i)
			continue
		}
		done[i] = last
	}
	return done, skipped, nil
}

// SelectionView returns the fabric view the ISE selector works with when a
// trigger instruction arrives: the whole (unreserved) budget counts as
// free — the previous selection is about to be replaced and its data paths
// are evictable — while IsConfigured still reflects what is physically on
// the fabric, so covered and shared data paths are recognised.
func (c *Controller) SelectionView() ise.FabricView {
	return selectionView{c: c}
}

type selectionView struct{ c *Controller }

func (v selectionView) FreePRC() int { return v.c.fabric.AvailablePRC() - v.c.reservedPRC }
func (v selectionView) FreeCG() int  { return v.c.fabric.AvailableCG() - v.c.reservedCG }
func (v selectionView) IsConfigured(id ise.DataPathID) bool {
	return v.c.IsConfigured(id)
}

// PortBacklog implements ise.PortView: remaining busy time of the fabric's
// configuration port relative to the controller's current time.
func (v selectionView) PortBacklog(kind arch.FabricKind) arch.Cycles {
	var end arch.Cycles
	if kind == arch.FG {
		end = v.c.fgPortEnd
	} else {
		end = v.c.cgPortEnd
	}
	if end <= v.c.now {
		return 0
	}
	return end - v.c.now
}

// EvictAll removes every configured and in-flight data path and monoCG slot.
func (c *Controller) EvictAll() {
	c.stats.Evictions += int64(len(c.paths))
	c.paths = make(map[ise.DataPathID]*slot)
	c.occPRC, c.occCG = 0, 0
	c.version++
	c.releaseAllMono()
}

// AcquireMonoCG loads the kernel's monoCG-Extension into a free CG-EDPE at
// time now and returns the time it becomes executable. Unpinned CG data
// paths may be evicted to free an EDPE (their contexts reload in
// microseconds). If the kernel already holds a monoCG slot, the existing
// ready time is returned.
func (c *Controller) AcquireMonoCG(k *ise.Kernel, now arch.Cycles) (arch.Cycles, bool) {
	if !k.MonoCG.Available() {
		return 0, false
	}
	c.Advance(now)
	if m, ok := c.monos[k.ID]; ok {
		return m.ready, true
	}
	if c.FreeCG() < 1 {
		c.evict(arch.CG, 1)
	}
	if c.FreeCG() < 1 {
		return 0, false
	}
	ready := now + k.MonoCG.ReconfigCycles()
	c.monos[k.ID] = &monoSlot{kernel: k.ID, ready: ready}
	c.stats.MonoCGLoads++
	c.stats.CGBusyCycles += k.MonoCG.ReconfigCycles()
	return ready, true
}

// MonoCGReady reports whether the kernel holds a monoCG slot and when it is
// (or was) ready.
func (c *Controller) MonoCGReady(id ise.KernelID) (arch.Cycles, bool) {
	m, ok := c.monos[id]
	if !ok {
		return 0, false
	}
	return m.ready, true
}

// ReleaseMonoCG frees the kernel's monoCG slot, if any.
func (c *Controller) ReleaseMonoCG(id ise.KernelID) {
	if _, ok := c.monos[id]; ok {
		delete(c.monos, id)
		c.version++
	}
}

func (c *Controller) releaseAllMono() {
	if len(c.monos) == 0 {
		return
	}
	for id := range c.monos {
		delete(c.monos, id)
	}
	c.version++
}

// ConfiguredPaths returns the IDs of all fully configured data paths at the
// current time, sorted for determinism.
func (c *Controller) ConfiguredPaths() []ise.DataPathID {
	var out []ise.DataPathID
	for id, s := range c.paths {
		if s.ready <= c.now {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func maxCycles(a, b arch.Cycles) arch.Cycles {
	if a > b {
		return a
	}
	return b
}
