// Package cgedpe is a functional model of one CG-EDPE — the coarse-grained
// processing element of the paper's platform (Section 5.1): 80-bit
// instruction words with two ALU slots issued in parallel, two 32x32-bit
// register files, a context memory of 32 instructions (2-cycle context
// switch), a zero-overhead loop instruction, a 32-bit load/store unit into
// the fabric's scratch-pad, and the published operation timing (ALU ops in
// a single cycle, multiply 2, divide 10).
//
// Like internal/leon for the core processor, the model exists to *measure*
// the execution latency of kernels mapped to the CG fabric: the CG-ISE
// latency constants of the ISE library are checked against context
// programs executed here.
package cgedpe

import "fmt"

// Op enumerates the ALU/memory operations of one slot.
type Op uint8

// Slot operations. Absd and Sad4 are the sub-word multimedia operations
// coarse-grained arrays provide (the paper motivates the CG fabric with
// exactly this class of (sub-)word processing).
const (
	OpNop Op = iota
	OpMov
	OpMovI
	OpAdd
	OpAddI
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpSra
	OpMul
	OpDiv
	// Absd computes |a - b|.
	OpAbsd
	// Sad4 accumulates the four packed byte absolute differences of a
	// and b into the destination (dst += SAD of 4 byte lanes).
	OpSad4
	// Ld loads a 32-bit word from scratch-pad address a+imm.
	OpLd
	// St stores b to scratch-pad address a+imm.
	OpSt
	OpHalt
)

// slotCycles is the per-operation latency contribution of a slot.
var slotCycles = map[Op]int64{
	OpNop: 1, OpMov: 1, OpMovI: 1, OpAdd: 1, OpAddI: 1, OpSub: 1,
	OpAnd: 1, OpOr: 1, OpXor: 1, OpShl: 1, OpShr: 1, OpSra: 1,
	OpMul: 2, OpDiv: 10, OpAbsd: 1, OpSad4: 1,
	OpLd: 1, OpSt: 1, OpHalt: 0,
}

// Reg addresses one of the 64 registers: 0..31 in register file 0,
// 32..63 in register file 1.
type Reg uint8

// Slot is one of the two parallel operations of an instruction word.
type Slot struct {
	Op     Op
	Dst    Reg
	A, B   Reg
	Imm    int32
	UseImm bool // B is replaced by Imm
}

// Instr is one 80-bit CG instruction word: two slots issued together, or a
// zero-overhead loop marker.
type Instr struct {
	SlotA, SlotB Slot
	// LoopCount > 0 marks a zero-overhead loop over the next LoopBody
	// instructions, repeated LoopCount times.
	LoopCount int32
	LoopBody  int
}

// Loop builds a zero-overhead loop instruction.
func Loop(count int32, body int) Instr {
	return Instr{LoopCount: count, LoopBody: body}
}

// Word builds a two-slot instruction.
func Word(a, b Slot) Instr { return Instr{SlotA: a, SlotB: b} }

// Single builds an instruction with only slot A active.
func Single(a Slot) Instr { return Instr{SlotA: a, SlotB: Slot{Op: OpNop}} }

// EDPE is the processing-element state.
type EDPE struct {
	Regs [64]int32
	// Scratch is the fabric's scratch-pad memory (byte addressed,
	// 32-bit load/store unit).
	Scratch []byte
	// Cycles accumulates execution time, including context switches.
	Cycles int64
	// ContextSwitches counts 32-instruction context boundaries crossed.
	ContextSwitches int64

	prog []Instr
	pc   int
}

// ContextSize is the instruction capacity of the context memory.
const ContextSize = 32

// ContextSwitchCycles is the cost of switching to the next stored context.
const ContextSwitchCycles = 2

// New creates an EDPE with the given scratch-pad size.
func New(scratchBytes int) *EDPE {
	return &EDPE{Scratch: make([]byte, scratchBytes)}
}

// Load installs a context program. Programs longer than ContextSize span
// multiple contexts; crossing a context boundary costs ContextSwitchCycles.
// Zero-overhead loops must fit within one context (the loop hardware
// addresses the context memory), which Load validates.
func (e *EDPE) Load(prog []Instr) error {
	for i, in := range prog {
		if in.LoopCount > 0 {
			if in.LoopBody <= 0 {
				return fmt.Errorf("cgedpe: loop at %d with empty body", i)
			}
			end := i + in.LoopBody
			if end >= len(prog) {
				return fmt.Errorf("cgedpe: loop at %d exceeds program", i)
			}
			if i/ContextSize != end/ContextSize {
				return fmt.Errorf("cgedpe: loop at %d crosses a context boundary", i)
			}
			for j := i + 1; j <= end; j++ {
				if prog[j].LoopCount > 0 {
					return fmt.Errorf("cgedpe: nested zero-overhead loop at %d", j)
				}
			}
		}
	}
	e.prog = prog
	e.pc = 0
	return nil
}

func (e *EDPE) reg(r Reg) int32 { return e.Regs[r&63] }

func (e *EDPE) setReg(r Reg, v int32) { e.Regs[r&63] = v }

func (e *EDPE) execSlot(s Slot, isA bool) (halt bool, err error) {
	b := e.reg(s.B)
	if s.UseImm {
		b = s.Imm
	}
	a := e.reg(s.A)
	switch s.Op {
	case OpNop:
	case OpHalt:
		return true, nil
	case OpMov:
		e.setReg(s.Dst, a)
	case OpMovI:
		e.setReg(s.Dst, s.Imm)
	case OpAdd:
		e.setReg(s.Dst, a+b)
	case OpAddI:
		e.setReg(s.Dst, a+s.Imm)
	case OpSub:
		e.setReg(s.Dst, a-b)
	case OpAnd:
		e.setReg(s.Dst, a&b)
	case OpOr:
		e.setReg(s.Dst, a|b)
	case OpXor:
		e.setReg(s.Dst, a^b)
	case OpShl:
		e.setReg(s.Dst, a<<(uint32(b)&31))
	case OpShr:
		e.setReg(s.Dst, int32(uint32(a)>>(uint32(b)&31)))
	case OpSra:
		e.setReg(s.Dst, a>>(uint32(b)&31))
	case OpMul:
		e.setReg(s.Dst, a*b)
	case OpDiv:
		if b == 0 {
			return false, fmt.Errorf("cgedpe: division by zero")
		}
		e.setReg(s.Dst, a/b)
	case OpAbsd:
		d := a - b
		if d < 0 {
			d = -d
		}
		e.setReg(s.Dst, d)
	case OpSad4:
		var sum int32
		for i := 0; i < 4; i++ {
			ba := int32(uint32(a) >> (8 * i) & 0xFF)
			bb := int32(uint32(b) >> (8 * i) & 0xFF)
			d := ba - bb
			if d < 0 {
				d = -d
			}
			sum += d
		}
		e.setReg(s.Dst, e.reg(s.Dst)+sum)
	case OpLd:
		addr := int(a + s.Imm)
		if addr < 0 || addr+4 > len(e.Scratch) {
			return false, fmt.Errorf("cgedpe: load at %d out of scratch-pad range", addr)
		}
		e.setReg(s.Dst, int32(uint32(e.Scratch[addr])|uint32(e.Scratch[addr+1])<<8|
			uint32(e.Scratch[addr+2])<<16|uint32(e.Scratch[addr+3])<<24))
	case OpSt:
		addr := int(a + s.Imm)
		if addr < 0 || addr+4 > len(e.Scratch) {
			return false, fmt.Errorf("cgedpe: store at %d out of scratch-pad range", addr)
		}
		v := uint32(b)
		e.Scratch[addr] = byte(v)
		e.Scratch[addr+1] = byte(v >> 8)
		e.Scratch[addr+2] = byte(v >> 16)
		e.Scratch[addr+3] = byte(v >> 24)
	default:
		return false, fmt.Errorf("cgedpe: unknown op %d", s.Op)
	}
	_ = isA
	return false, nil
}

// Run executes the loaded context program to completion (OpHalt in any
// slot) and returns an error on fault or when maxWords instruction words
// have issued without halting.
func (e *EDPE) Run(maxWords int64) error {
	type loopState struct {
		start, end int
		remaining  int32
	}
	var loop *loopState
	var issued int64
	for {
		if e.pc < 0 || e.pc >= len(e.prog) {
			return fmt.Errorf("cgedpe: PC %d outside program", e.pc)
		}
		in := e.prog[e.pc]

		if in.LoopCount > 0 {
			if in.LoopCount > 1 {
				loop = &loopState{start: e.pc + 1, end: e.pc + in.LoopBody, remaining: in.LoopCount - 1}
			}
			// The loop set-up word itself issues in one cycle.
			e.Cycles++
			e.pc++
			continue
		}

		// Structural constraint: one memory access per word (single
		// 32-bit load/store unit).
		if isMem(in.SlotA.Op) && isMem(in.SlotB.Op) {
			return fmt.Errorf("cgedpe: two memory operations in one word at PC %d", e.pc)
		}

		cost := slotCycles[in.SlotA.Op]
		if c := slotCycles[in.SlotB.Op]; c > cost {
			cost = c
		}
		if in.SlotA.Op == OpHalt || in.SlotB.Op == OpHalt {
			cost = 0 // halting consumes no issue cycle
		}
		e.Cycles += cost

		haltA, err := e.execSlot(in.SlotA, true)
		if err != nil {
			return err
		}
		haltB, err := e.execSlot(in.SlotB, false)
		if err != nil {
			return err
		}
		if haltA || haltB {
			return nil
		}

		issued++
		if issued >= maxWords {
			return fmt.Errorf("cgedpe: word budget %d exhausted", maxWords)
		}

		next := e.pc + 1
		if loop != nil && e.pc == loop.end {
			if loop.remaining > 0 {
				loop.remaining--
				next = loop.start // zero overhead: no extra cycle
			} else {
				loop = nil
			}
		}
		// Context boundary crossing costs a context switch.
		if next/ContextSize != e.pc/ContextSize && next < len(e.prog) {
			e.Cycles += ContextSwitchCycles
			e.ContextSwitches++
		}
		e.pc = next
	}
}

func isMem(o Op) bool { return o == OpLd || o == OpSt }
