package cgedpe

import (
	"testing"
	"testing/quick"

	"mrts/internal/h264"
	"mrts/internal/video"
)

func TestBasicALU(t *testing.T) {
	e := New(64)
	prog := []Instr{
		Word(Slot{Op: OpMovI, Dst: 1, Imm: 7}, Slot{Op: OpMovI, Dst: 33, Imm: 5}),
		Word(Slot{Op: OpAdd, Dst: 2, A: 1, B: 33}, Slot{Op: OpSub, Dst: 34, A: 1, B: 33}),
		Word(Slot{Op: OpMul, Dst: 3, A: 1, B: 33}, Slot{Op: OpNop}),
		Single(Slot{Op: OpHalt}),
	}
	if err := e.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.Regs[2] != 12 || e.Regs[34] != 2 || e.Regs[3] != 35 {
		t.Errorf("regs = %d %d %d", e.Regs[2], e.Regs[34], e.Regs[3])
	}
	// movi(1) + add/sub word(1) + mul word(2) = 4 cycles.
	if e.Cycles != 4 {
		t.Errorf("cycles = %d, want 4", e.Cycles)
	}
}

func TestDualIssueCostIsMaxOfSlots(t *testing.T) {
	e := New(64)
	prog := []Instr{
		Word(Slot{Op: OpDiv, Dst: 1, A: 2, B: 3}, Slot{Op: OpAdd, Dst: 33, A: 4, B: 5}),
		Single(Slot{Op: OpHalt}),
	}
	e.Regs[3] = 1
	if err := e.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if e.Cycles != 10 { // div dominates the word
		t.Errorf("cycles = %d, want 10", e.Cycles)
	}
}

func TestZeroOverheadLoop(t *testing.T) {
	// Accumulate 1 ten times: loop body of one word.
	e := New(64)
	prog := []Instr{
		Single(Slot{Op: OpMovI, Dst: 1, Imm: 0}),
		Loop(10, 1),
		Single(Slot{Op: OpAddI, Dst: 1, A: 1, Imm: 1}),
		Single(Slot{Op: OpHalt}),
	}
	if err := e.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(1000); err != nil {
		t.Fatal(err)
	}
	if e.Regs[1] != 10 {
		t.Errorf("loop executed %d times, want 10", e.Regs[1])
	}
	// movi 1 + loop setup 1 + 10 body words (zero loop overhead) = 12.
	if e.Cycles != 12 {
		t.Errorf("cycles = %d, want 12 (zero-overhead loop)", e.Cycles)
	}
}

func TestLoadValidatesLoops(t *testing.T) {
	e := New(64)
	if err := e.Load([]Instr{Loop(3, 0), Single(Slot{Op: OpHalt})}); err == nil {
		t.Error("empty loop body accepted")
	}
	if err := e.Load([]Instr{Loop(3, 9)}); err == nil {
		t.Error("loop exceeding program accepted")
	}
	if err := e.Load([]Instr{
		Loop(3, 2), Loop(2, 1), Single(Slot{Op: OpNop}), Single(Slot{Op: OpHalt}),
	}); err == nil {
		t.Error("nested zero-overhead loop accepted")
	}
}

func TestSingleLoadStoreUnit(t *testing.T) {
	e := New(64)
	prog := []Instr{
		Word(Slot{Op: OpLd, Dst: 1, A: 0}, Slot{Op: OpSt, A: 0, B: 1}),
		Single(Slot{Op: OpHalt}),
	}
	if err := e.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err == nil {
		t.Error("two memory operations in one word accepted")
	}
}

func TestContextSwitchCost(t *testing.T) {
	// A straight-line program of 40 words crosses one context boundary.
	var prog []Instr
	for i := 0; i < 40; i++ {
		prog = append(prog, Single(Slot{Op: OpAddI, Dst: 1, A: 1, Imm: 1}))
	}
	prog = append(prog, Single(Slot{Op: OpHalt}))
	e := New(64)
	if err := e.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(1000); err != nil {
		t.Fatal(err)
	}
	if e.ContextSwitches != 1 {
		t.Errorf("context switches = %d, want 1", e.ContextSwitches)
	}
	// 40 single-cycle words + 1 switch * 2 cycles = 42.
	if e.Cycles != 42 {
		t.Errorf("cycles = %d, want 42", e.Cycles)
	}
}

func TestScratchBounds(t *testing.T) {
	e := New(8)
	if err := e.Load([]Instr{
		Single(Slot{Op: OpLd, Dst: 1, A: 0, Imm: 100}),
		Single(Slot{Op: OpHalt}),
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err == nil {
		t.Error("out-of-range scratch access accepted")
	}
}

func TestSad4Op(t *testing.T) {
	e := New(64)
	// a = bytes 10,20,30,40; b = bytes 12,18,35,40 -> SAD 2+2+5+0 = 9.
	a := int32(10) | 20<<8 | 30<<16 | 40<<24
	b := int32(12) | 18<<8 | 35<<16 | 40<<24
	prog := []Instr{
		Word(Slot{Op: OpMovI, Dst: 1, Imm: a}, Slot{Op: OpMovI, Dst: 33, Imm: b}),
		Single(Slot{Op: OpMovI, Dst: 2, Imm: 100}),
		Single(Slot{Op: OpSad4, Dst: 2, A: 1, B: 33}),
		Single(Slot{Op: OpHalt}),
	}
	if err := e.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if e.Regs[2] != 109 { // accumulates onto the previous value
		t.Errorf("sad4 accumulator = %d, want 109", e.Regs[2])
	}
}

func TestMeasureSADMatchesGo(t *testing.T) {
	f := func(seed uint8) bool {
		rng := video.NewRNG(uint64(seed) + 1)
		cur := make([]byte, 256)
		ref := make([]byte, 256)
		var want int32
		for i := range cur {
			cur[i] = byte(rng.Intn(256))
			ref[i] = byte(rng.Intn(256))
			d := int32(cur[i]) - int32(ref[i])
			if d < 0 {
				d = -d
			}
			want += d
		}
		sad, cycles, err := MeasureSAD(cur, ref)
		return err == nil && sad == want && cycles > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMeasureSADCycles(t *testing.T) {
	cur := make([]byte, 256)
	ref := make([]byte, 256)
	_, cycles, err := MeasureSAD(cur, ref)
	if err != nil {
		t.Fatal(err)
	}
	// 64 iterations x 3 words + setup: the CG fabric streams a 16x16
	// SAD in ~200 cycles — the ISE library's sad.cg1 figure.
	if cycles < 150 || cycles > 260 {
		t.Errorf("SAD cycles = %d, want ~200", cycles)
	}
}

func TestMeasureDCTMatchesReference(t *testing.T) {
	f := func(vals [16]int16) bool {
		var blk [16]int32
		var ref h264.Block4
		for i, v := range vals {
			blk[i] = int32(v % 256)
			ref[i] = int32(v % 256)
		}
		got, cycles, err := MeasureDCT(blk)
		if err != nil || cycles <= 0 {
			return false
		}
		h264.DCT4(&ref)
		for i := range got {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeasureQuantMatchesReference(t *testing.T) {
	coeffs := [16]int32{100, -200, 3000, -4, 0, 77, -880, 12345, -1, 9, 0, 0, 4096, -4096, 64, -64}
	const mf, f, qbits = 13107, 43690, 17
	out, cycles, err := MeasureQuant(coeffs, mf, f, qbits)
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 0 {
		t.Error("no cycles measured")
	}
	for i, c := range coeffs {
		neg := c < 0
		if neg {
			c = -c
		}
		want := (c*mf + f) >> qbits
		if neg {
			want = -want
		}
		if out[i] != want {
			t.Errorf("coeff %d: level %d, want %d", i, out[i], want)
		}
	}
}

func TestMeasureSATDMatchesReference(t *testing.T) {
	f := func(vals [16]int16) bool {
		var blk [16]int32
		var ref h264.Block4
		for i, v := range vals {
			blk[i] = int32(v % 256)
			ref[i] = blk[i]
		}
		got, cycles, err := MeasureSATD(blk)
		if err != nil || cycles <= 0 {
			return false
		}
		return got == h264.SATD4(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeasureSATDCycles(t *testing.T) {
	var blk [16]int32
	for i := range blk {
		blk[i] = int32(i * 3)
	}
	_, cycles, err := MeasureSATD(blk)
	if err != nil {
		t.Fatal(err)
	}
	// Two Hadamard passes plus the absolute-sum loop: ~150 cycles — the
	// library's satd.cg1 (140) regime.
	if cycles < 100 || cycles > 250 {
		t.Errorf("SATD cycles = %d, want ~150", cycles)
	}
}
