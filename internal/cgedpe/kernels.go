package cgedpe

import "fmt"

// Context programs for the encoder kernels mapped to the CG fabric. The
// measured cycle counts ground the CG-ISE latencies of the ISE library:
// one EDPE streaming a 16x16 SAD through its Sad4 unit takes ~200 cycles —
// the library's sad.cg1 figure.

// Register allocation used by the kernel contexts.
const (
	rCur  Reg = 1
	rAcc  Reg = 3
	rA    Reg = 4
	rC0   Reg = 8
	rC1   Reg = 9
	rC2   Reg = 10
	rC3   Reg = 11
	rS0   Reg = 12
	rS1   Reg = 13
	rD0   Reg = 14
	rD1   Reg = 15
	rT0   Reg = 16
	rT1   Reg = 17
	rT2   Reg = 18
	rT3   Reg = 19
	rTmp  Reg = 20
	rTmp2 Reg = 21
	rM    Reg = 22
	// Second register file.
	rRef Reg = 33
	rB   Reg = 36
)

// sadContext: 16x16 SAD of two packed byte blocks (cur at 0, ref at 256),
// one word (four pixels) per iteration through the Sad4 unit.
func sadContext() []Instr {
	return []Instr{
		Word(Slot{Op: OpMovI, Dst: rCur, Imm: 0}, Slot{Op: OpMovI, Dst: rRef, Imm: 256}),
		Single(Slot{Op: OpMovI, Dst: rAcc, Imm: 0}),
		Loop(64, 3),
		Word(Slot{Op: OpLd, Dst: rA, A: rCur}, Slot{Op: OpAddI, Dst: rCur, A: rCur, Imm: 4}),
		Word(Slot{Op: OpLd, Dst: rB, A: rRef}, Slot{Op: OpAddI, Dst: rRef, A: rRef, Imm: 4}),
		Single(Slot{Op: OpSad4, Dst: rAcc, A: rA, B: rB}),
		Single(Slot{Op: OpHalt}),
	}
}

// MeasureSAD runs the SAD context over two 256-byte blocks and returns the
// SAD and the cycle count.
func MeasureSAD(cur, ref []byte) (int32, int64, error) {
	if len(cur) != 256 || len(ref) != 256 {
		return 0, 0, fmt.Errorf("cgedpe: SAD blocks must be 256 bytes")
	}
	e := New(1024)
	copy(e.Scratch[0:], cur)
	copy(e.Scratch[256:], ref)
	if err := e.Load(sadContext()); err != nil {
		return 0, 0, err
	}
	if err := e.Run(100_000); err != nil {
		return 0, 0, err
	}
	return e.reg(rAcc), e.Cycles, nil
}

// dctPass builds one 1-D pass of the H.264 forward transform over four
// 4-element vectors: in-stride selects row (4 bytes) or column (16 bytes)
// element spacing, baseInc advances to the next vector.
func dctPass(elemStride, baseInc int32) []Instr {
	return []Instr{
		Loop(4, 14),
		Single(Slot{Op: OpLd, Dst: rC0, A: rCur, Imm: 0}),
		Single(Slot{Op: OpLd, Dst: rC1, A: rCur, Imm: elemStride}),
		Single(Slot{Op: OpLd, Dst: rC2, A: rCur, Imm: 2 * elemStride}),
		Single(Slot{Op: OpLd, Dst: rC3, A: rCur, Imm: 3 * elemStride}),
		Word(Slot{Op: OpAdd, Dst: rS0, A: rC0, B: rC3}, Slot{Op: OpAdd, Dst: rS1, A: rC1, B: rC2}),
		Word(Slot{Op: OpSub, Dst: rD0, A: rC0, B: rC3}, Slot{Op: OpSub, Dst: rD1, A: rC1, B: rC2}),
		Word(Slot{Op: OpAdd, Dst: rT0, A: rS0, B: rS1}, Slot{Op: OpShl, Dst: rTmp, A: rD0, Imm: 1, UseImm: true}),
		Word(Slot{Op: OpAdd, Dst: rT1, A: rTmp, B: rD1}, Slot{Op: OpSub, Dst: rT2, A: rS0, B: rS1}),
		Single(Slot{Op: OpShl, Dst: rTmp2, A: rD1, Imm: 1, UseImm: true}),
		Single(Slot{Op: OpSub, Dst: rT3, A: rD0, B: rTmp2}),
		Single(Slot{Op: OpSt, A: rCur, B: rT0, Imm: 0}),
		Single(Slot{Op: OpSt, A: rCur, B: rT1, Imm: elemStride}),
		Single(Slot{Op: OpSt, A: rCur, B: rT2, Imm: 2 * elemStride}),
		Word(Slot{Op: OpSt, A: rCur, B: rT3, Imm: 3 * elemStride},
			Slot{Op: OpAddI, Dst: rCur, A: rCur, Imm: baseInc}),
	}
}

// dctContext: the full 4x4 forward transform on sixteen int32 values at
// scratch-pad address 0 (row-major), in place: a row pass then a column
// pass.
func dctContext() []Instr {
	prog := []Instr{Single(Slot{Op: OpMovI, Dst: rCur, Imm: 0})}
	// Row pass: elements 4 bytes apart, rows 16 bytes apart.
	prog = append(prog, dctPass(4, 16)...)
	// Reset base, column pass: elements 16 bytes apart, columns 4 apart.
	prog = append(prog, Single(Slot{Op: OpMovI, Dst: rCur, Imm: 0}))
	prog = append(prog, dctPass(16, 4)...)
	prog = append(prog, Single(Slot{Op: OpHalt}))
	return prog
}

// MeasureDCT runs the 4x4 forward-transform context on the block and
// returns the transformed coefficients and the cycle count.
func MeasureDCT(block [16]int32) ([16]int32, int64, error) {
	e := New(256)
	for i, v := range block {
		u := uint32(v)
		a := 4 * i
		e.Scratch[a] = byte(u)
		e.Scratch[a+1] = byte(u >> 8)
		e.Scratch[a+2] = byte(u >> 16)
		e.Scratch[a+3] = byte(u >> 24)
	}
	if err := e.Load(dctContext()); err != nil {
		return block, 0, err
	}
	if err := e.Run(100_000); err != nil {
		return block, 0, err
	}
	var out [16]int32
	for i := range out {
		a := 4 * i
		out[i] = int32(uint32(e.Scratch[a]) | uint32(e.Scratch[a+1])<<8 |
			uint32(e.Scratch[a+2])<<16 | uint32(e.Scratch[a+3])<<24)
	}
	return out, e.Cycles, nil
}

// Quantisation context registers: MF, f and qbits are preloaded by
// MeasureQuant.
const (
	rMF    Reg = 48
	rF     Reg = 49
	rQBits Reg = 50
)

// quantContext quantises sixteen coefficient magnitudes at scratch-pad
// address 0 in place: |c|*MF + f >> qbits (the sign lives in the store
// path of the real data path).
func quantContext() []Instr {
	return []Instr{
		Single(Slot{Op: OpMovI, Dst: rCur, Imm: 0}),
		Loop(16, 8),
		Single(Slot{Op: OpLd, Dst: rA, A: rCur}),
		Single(Slot{Op: OpSra, Dst: rM, A: rA, Imm: 31, UseImm: true}),
		Single(Slot{Op: OpXor, Dst: rA, A: rA, B: rM}),
		Single(Slot{Op: OpSub, Dst: rA, A: rA, B: rM}),
		Single(Slot{Op: OpMul, Dst: rA, A: rA, B: rMF}),
		Single(Slot{Op: OpAdd, Dst: rA, A: rA, B: rF}),
		Single(Slot{Op: OpShr, Dst: rA, A: rA, B: rQBits}),
		Word(Slot{Op: OpSt, A: rCur, B: rA}, Slot{Op: OpAddI, Dst: rCur, A: rCur, Imm: 4}),
		Single(Slot{Op: OpHalt}),
	}
}

// MeasureQuant runs the quantisation context over the coefficients. The
// returned levels carry the signs restored by the wrapper for
// verification.
func MeasureQuant(coeffs [16]int32, mf, f, qbits int32) ([16]int32, int64, error) {
	prog := quantContext()
	e := New(256)
	for i, v := range coeffs {
		c := v
		if c < 0 {
			c = -c
		}
		u := uint32(c)
		a := 4 * i
		e.Scratch[a] = byte(u)
		e.Scratch[a+1] = byte(u >> 8)
		e.Scratch[a+2] = byte(u >> 16)
		e.Scratch[a+3] = byte(u >> 24)
	}
	e.Regs[rMF] = mf
	e.Regs[rF] = f
	e.Regs[rQBits] = qbits
	if err := e.Load(prog); err != nil {
		return coeffs, 0, err
	}
	if err := e.Run(100_000); err != nil {
		return coeffs, 0, err
	}
	var out [16]int32
	for i := range out {
		a := 4 * i
		v := int32(uint32(e.Scratch[a]) | uint32(e.Scratch[a+1])<<8 |
			uint32(e.Scratch[a+2])<<16 | uint32(e.Scratch[a+3])<<24)
		if coeffs[i] < 0 {
			v = -v
		}
		out[i] = v
	}
	return out, e.Cycles, nil
}

// satdPass builds one 1-D Hadamard pass (t0 = s0+s1, t1 = d0+d1,
// t2 = s0-s1, t3 = d0-d1) over four 4-element vectors.
func satdPass(elemStride, baseInc int32) []Instr {
	return []Instr{
		Loop(4, 12),
		Single(Slot{Op: OpLd, Dst: rC0, A: rCur, Imm: 0}),
		Single(Slot{Op: OpLd, Dst: rC1, A: rCur, Imm: elemStride}),
		Single(Slot{Op: OpLd, Dst: rC2, A: rCur, Imm: 2 * elemStride}),
		Single(Slot{Op: OpLd, Dst: rC3, A: rCur, Imm: 3 * elemStride}),
		Word(Slot{Op: OpAdd, Dst: rS0, A: rC0, B: rC3}, Slot{Op: OpAdd, Dst: rS1, A: rC1, B: rC2}),
		Word(Slot{Op: OpSub, Dst: rD0, A: rC0, B: rC3}, Slot{Op: OpSub, Dst: rD1, A: rC1, B: rC2}),
		Word(Slot{Op: OpAdd, Dst: rT0, A: rS0, B: rS1}, Slot{Op: OpAdd, Dst: rT1, A: rD0, B: rD1}),
		Word(Slot{Op: OpSub, Dst: rT2, A: rS0, B: rS1}, Slot{Op: OpSub, Dst: rT3, A: rD0, B: rD1}),
		Single(Slot{Op: OpSt, A: rCur, B: rT0, Imm: 0}),
		Single(Slot{Op: OpSt, A: rCur, B: rT1, Imm: elemStride}),
		Single(Slot{Op: OpSt, A: rCur, B: rT2, Imm: 2 * elemStride}),
		Word(Slot{Op: OpSt, A: rCur, B: rT3, Imm: 3 * elemStride},
			Slot{Op: OpAddI, Dst: rCur, A: rCur, Imm: baseInc}),
	}
}

// MeasureSATD runs the 4x4 SATD context on the residual block and returns
// the SATD value (normalised by 2, as the encoder's cost metric does) and
// the cycle count.
func MeasureSATD(block [16]int32) (int32, int64, error) {
	// The absolute-sum tail above cannot accumulate in the same word
	// that computes the absolute value; build the context with a
	// three-word loop body instead.
	prog := []Instr{Single(Slot{Op: OpMovI, Dst: rCur, Imm: 0})}
	prog = append(prog, satdPass(4, 16)...)
	prog = append(prog, Single(Slot{Op: OpMovI, Dst: rCur, Imm: 0}))
	prog = append(prog, satdPass(16, 4)...)
	prog = append(prog,
		Word(Slot{Op: OpMovI, Dst: rCur, Imm: 0}, Slot{Op: OpMovI, Dst: rAcc, Imm: 0}))
	// The zero-overhead loop hardware addresses one context: pad the
	// absolute-sum loop to the next 32-instruction context.
	for len(prog)%ContextSize != 0 {
		prog = append(prog, Single(Slot{Op: OpNop}))
	}
	prog = append(prog,
		Loop(16, 3),
		Single(Slot{Op: OpLd, Dst: rA, A: rCur}),
		Word(Slot{Op: OpAbsd, Dst: rTmp, A: rA, Imm: 0, UseImm: true},
			Slot{Op: OpAddI, Dst: rCur, A: rCur, Imm: 4}),
		Single(Slot{Op: OpAdd, Dst: rAcc, A: rAcc, B: rTmp}),
		Single(Slot{Op: OpHalt}),
	)
	e := New(256)
	for i, v := range block {
		u := uint32(v)
		a := 4 * i
		e.Scratch[a] = byte(u)
		e.Scratch[a+1] = byte(u >> 8)
		e.Scratch[a+2] = byte(u >> 16)
		e.Scratch[a+3] = byte(u >> 24)
	}
	if err := e.Load(prog); err != nil {
		return 0, 0, err
	}
	if err := e.Run(100_000); err != nil {
		return 0, 0, err
	}
	return e.reg(rAcc) / 2, e.Cycles, nil
}
