package exp

import (
	"fmt"
	"io"

	"mrts/internal/arch"
	"mrts/internal/core"
	"mrts/internal/sim"
	"mrts/internal/workload"
)

// OverheadResult quantifies the run-time system's own cost (paper
// Section 5.4).
type OverheadResult struct {
	Config arch.Config
	// Selections is the number of trigger instructions processed.
	Selections int64
	// Evaluations is the number of profit-function evaluations.
	Evaluations int64
	// CyclesPerSelection is the total selection cost per trigger
	// instruction (the paper reports <3000 cycles on average).
	CyclesPerSelection float64
	// CyclesPerKernel divides the cost by the number of kernels selected.
	CyclesPerKernel float64
	// VisibleShare is the critical-path overhead as a fraction of the
	// total execution time (the paper reports ~1.9% of an average
	// functional block, hidden after the first selection).
	VisibleShare float64
	// HiddenShare is the fraction of the selection cost that overlapped
	// with reconfiguration (invisible on the critical path).
	HiddenShare float64
	// AvgBlockCycles is the average functional-block iteration time.
	AvgBlockCycles float64
	// VisiblePerBlockShare is the visible overhead per selection as a
	// fraction of the average functional-block iteration time.
	VisiblePerBlockShare float64
}

// Overhead measures the mRTS implementation overhead (paper Section 5.4)
// on the given fabric combination.
func Overhead(w *workload.Result, cfg arch.Config) (OverheadResult, error) {
	res := OverheadResult{Config: cfg}
	m, err := core.New(cfg, core.Options{ChargeOverhead: true})
	if err != nil {
		return res, err
	}
	rep, err := sim.Run(w.App, w.Trace, m)
	if err != nil {
		return res, err
	}
	st := m.Stats()
	res.Selections = st.Selections
	res.Evaluations = st.Evaluations
	if st.Selections > 0 {
		res.CyclesPerSelection = float64(st.OverheadTotal) / float64(st.Selections)
	}
	var kernels int64
	for _, b := range w.App.Blocks {
		kernels += int64(len(b.Kernels))
	}
	if kernels > 0 && rep.Iterations > 0 {
		perIter := kernels / int64(len(w.App.Blocks))
		if perIter > 0 {
			res.CyclesPerKernel = res.CyclesPerSelection / float64(perIter)
		}
	}
	if rep.TotalCycles > 0 {
		res.VisibleShare = float64(rep.OverheadCycles) / float64(rep.TotalCycles)
	}
	if st.OverheadTotal > 0 {
		res.HiddenShare = float64(st.OverheadTotal-st.OverheadVisible) / float64(st.OverheadTotal)
	}
	if rep.Iterations > 0 {
		res.AvgBlockCycles = float64(rep.TotalCycles) / float64(rep.Iterations)
		if res.AvgBlockCycles > 0 && st.Selections > 0 {
			visPerSel := float64(st.OverheadVisible) / float64(st.Selections)
			res.VisiblePerBlockShare = visPerSel / res.AvgBlockCycles
		}
	}
	return res, nil
}

// Render writes the overhead analysis.
func (r OverheadResult) Render(w io.Writer) {
	fprintf(w, "Section 5.4: mRTS implementation overhead (%d PRC / %d CG)\n", r.Config.NPRC, r.Config.NCG)
	fprintf(w, "selections (trigger instructions):     %d\n", r.Selections)
	fprintf(w, "profit-function evaluations:           %d\n", r.Evaluations)
	fprintf(w, "cycles per selection:                  %s (paper: <3000)\n", fmtF(r.CyclesPerSelection))
	fprintf(w, "cycles per kernel selected:            %s\n", fmtF(r.CyclesPerKernel))
	fprintf(w, "visible overhead / total time:         %.2f%%\n", 100*r.VisibleShare)
	fprintf(w, "visible overhead / avg block:          %.2f%% (paper: ~1.9%%)\n", 100*r.VisiblePerBlockShare)
	fprintf(w, "hidden behind reconfiguration:         %.1f%% of selection cost\n", 100*r.HiddenShare)
}

func fmtF(v float64) string { return fmt.Sprintf("%.0f", v) }
