package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"mrts/internal/arch"
	"mrts/internal/fault"
	"mrts/internal/obs"
)

// TestObserverByteIdenticalEveryPolicy is the determinism guard of the
// observability layer: for every Fig. 8 policy (plus RISC), a full
// simulation with a decision-trace recorder attached must produce a report
// byte-identical (JSON) to an unobserved run. The recorder is a tap — it
// may never feed back into the simulation.
func TestObserverByteIdenticalEveryPolicy(t *testing.T) {
	ctx := context.Background()
	cfg := arch.Config{NPRC: 2, NCG: 2}
	for _, p := range append([]Policy{PolicyRISC}, Fig8Policies...) {
		p := p
		t.Run(string(p), func(t *testing.T) {
			pc := cfg
			if p == PolicyRISC {
				pc = arch.Config{}
			}
			plain, err := RunPoint(ctx, expWorkload, pc, p)
			if err != nil {
				t.Fatal(err)
			}
			rec := obs.New()
			observed, err := RunPointObserved(ctx, expWorkload, pc, p, 0, fault.Options{}, rec)
			if err != nil {
				t.Fatal(err)
			}
			a, _ := json.Marshal(plain)
			b, _ := json.Marshal(observed)
			if !bytes.Equal(a, b) {
				t.Errorf("observed report differs from unobserved:\n%s\n%s", a, b)
			}
			if rec.Len() == 0 {
				t.Error("recorder captured nothing — the observer was never installed")
			}
		})
	}
}

// TestObserverByteIdenticalUnderFaults extends the guard to a faulted run,
// where the trace additionally carries fault deliveries, evictions and
// re-selections — the densest instrumentation paths.
func TestObserverByteIdenticalUnderFaults(t *testing.T) {
	cfg := arch.Config{NPRC: 2, NCG: 2}
	fo := fault.Options{FailPRC: 1, FailCG: 1, Horizon: 1_000_000}
	const seed = 7

	plain, err := RunPointFaults(context.Background(), expWorkload, cfg, PolicyMRTS, seed, fo)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	observed, err := RunPointObserved(context.Background(), expWorkload, cfg, PolicyMRTS, seed, fo, rec)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(observed)
	if !bytes.Equal(a, b) {
		t.Errorf("faulted observed report differs from unobserved:\n%s\n%s", a, b)
	}
	if observed.Fault.IsZero() {
		t.Error("fault scenario injected nothing; the guard did not exercise the fault paths")
	}
	var faults int
	for _, ev := range rec.Events() {
		if ev.Source == obs.SourceSim && ev.Kind == obs.KindFault {
			faults++
		}
	}
	if faults == 0 {
		t.Error("no fault deliveries in the trace of a faulted run")
	}
}

// TestObserverTimestampsMonotonic pins the Event.Cycle contract: events are
// stamped with the simulation clock at record time, so within one run the
// trace is non-decreasing in Cycle — the property mrts-timeline and any
// streaming consumer rely on. Config spans carry their completion in Ready,
// never by stamping a future Cycle.
func TestObserverTimestampsMonotonic(t *testing.T) {
	cfg := arch.Config{NPRC: 2, NCG: 1}
	fo := fault.Options{FailPRC: 1, Horizon: 1_000_000}
	rec := obs.New()
	rec.SetRun("mono")
	if _, err := RunPointObserved(context.Background(), expWorkload, cfg, PolicyMRTS, 3, fo, rec); err != nil {
		t.Fatal(err)
	}
	evs := rec.Events()
	if len(evs) == 0 {
		t.Fatal("empty trace")
	}
	last := map[string]arch.Cycles{}
	for i, ev := range evs {
		if ev.Cycle < last[ev.Run] {
			t.Fatalf("event %d (%s/%s) at cycle %d after cycle %d: trace not monotonic",
				i, ev.Source, ev.Kind, ev.Cycle, last[ev.Run])
		}
		last[ev.Run] = ev.Cycle
	}
}

// TestObservedTraceRoundTrips drives a recorded run through the JSONL
// serialisation and back — the pipeline between the -trace flags and
// cmd/mrts-timeline.
func TestObservedTraceRoundTrips(t *testing.T) {
	rec := obs.New()
	rec.SetRun("mrts/1x1")
	if _, err := RunPointObserved(context.Background(), expWorkload, arch.Config{NPRC: 1, NCG: 1}, PolicyMRTS, 0, fault.Options{}, rec); err != nil {
		t.Fatal(err)
	}
	got, err := obs.ReadAll(strings.NewReader(rec.JSONL()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != rec.Len() {
		t.Fatalf("round trip lost events: %d read, %d recorded", len(got), rec.Len())
	}
	// Spot-check the structure the timeline renderer keys on.
	var haveRunMarker, haveConfig, haveDispatch bool
	for _, ev := range got {
		if ev.Run != "mrts/1x1" {
			t.Fatalf("event lost its run label: %+v", ev)
		}
		switch {
		case ev.Source == obs.SourceSim && ev.Kind == obs.KindRun:
			haveRunMarker = true
		case ev.Source == obs.SourceReconfig && ev.Kind == obs.KindConfig:
			haveConfig = true
			if ev.Path == "" || ev.Ready < ev.Cycle || ev.Latency <= 0 {
				t.Fatalf("config span malformed: %+v", ev)
			}
		case ev.Source == obs.SourceECU && ev.Kind == obs.KindDispatch:
			haveDispatch = true
			if ev.Kernel == "" || ev.Mode == "" {
				t.Fatalf("dispatch event malformed: %+v", ev)
			}
		}
	}
	if !haveRunMarker || !haveConfig || !haveDispatch {
		t.Errorf("trace misses expected layers: run=%v config=%v dispatch=%v",
			haveRunMarker, haveConfig, haveDispatch)
	}
}
