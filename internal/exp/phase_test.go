package exp

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mrts/internal/arch"
	"mrts/internal/mpu"
)

var (
	phaseSweepOnce sync.Once
	phaseSweepRes  PhaseResult
	phaseSweepErr  error
)

// phaseSweep runs the default sweep once and shares the result across the
// read-only tests (the sweep itself takes a few seconds).
func phaseSweep(t *testing.T) PhaseResult {
	t.Helper()
	phaseSweepOnce.Do(func() {
		phaseSweepRes, phaseSweepErr = Phase(context.Background(), DirectWorkloads(), arch.Config{}, 1)
	})
	if phaseSweepErr != nil {
		t.Fatal(phaseSweepErr)
	}
	return phaseSweepRes
}

func TestPhaseSweepShape(t *testing.T) {
	res := phaseSweep(t)
	if len(res.Rows) != len(PhaseDivergences) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(PhaseDivergences))
	}
	for i, row := range res.Rows {
		if row.Divergence != PhaseDivergences[i] {
			t.Errorf("row %d divergence = %v, want %v", i, row.Divergence, PhaseDivergences[i])
		}
		if row.RISCCycles <= 0 {
			t.Errorf("row %d: no RISC reference", i)
		}
		if row.Samples <= 0 {
			t.Errorf("row %d: no scored forecast observations", i)
		}
		for _, k := range PhasePredictors {
			if row.Cycles[k] <= 0 {
				t.Errorf("row %d: predictor %s did not run", i, k)
			}
			if row.SpeedupRISC[k] <= 1 {
				t.Errorf("row %d: predictor %s speedup %.2f, want > 1 (mRTS must beat RISC)",
					i, k, row.SpeedupRISC[k])
			}
		}
	}
	// Static row: the predictors tie at zero forecast error once the
	// first-iteration transient is past — with no divergence the profile
	// is exact.
	for _, k := range PhasePredictors {
		if err := res.Rows[0].MeanAbsErr[k]; err != 0 {
			t.Errorf("static row: predictor %s mean error %.1f, want 0", k, err)
		}
	}
}

// TestPhasePredictorReducesForecastError pins the PR's acceptance
// criterion: on a dynamic control-flow workload at least one phase-aware
// predictor measurably reduces the mean absolute forecast error relative
// to the pinned back-propagation baseline.
func TestPhasePredictorReducesForecastError(t *testing.T) {
	res := phaseSweep(t)
	improved := false
	for _, row := range res.Rows {
		if row.Divergence == 0 {
			continue
		}
		base := row.MeanAbsErr[mpu.KindBackProp]
		for _, k := range []mpu.Kind{mpu.KindPhase, mpu.KindDecay} {
			// "Measurably": at least 5% below the baseline, not a tie.
			if row.MeanAbsErr[k] < base*0.95 {
				improved = true
			}
		}
	}
	if !improved {
		t.Error("no phase-aware predictor beat back-propagation on any dynamic row")
	}
}

func TestPhaseSweepDeterministic(t *testing.T) {
	a := phaseSweep(t)
	// A fresh sweep, not the cached one: same seed, same result.
	b, err := Phase(context.Background(), DirectWorkloads(), arch.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("repeat phase sweeps with one seed diverged")
	}
	var ra, rb strings.Builder
	a.Render(&ra)
	b.Render(&rb)
	if ra.String() != rb.String() {
		t.Error("repeat phase sweep renders differ")
	}
}

func TestPhaseRenderMentionsPredictors(t *testing.T) {
	var sb strings.Builder
	phaseSweep(t).Render(&sb)
	out := sb.String()
	for _, k := range PhasePredictors {
		if !strings.Contains(out, string(k)) {
			t.Errorf("render lacks predictor column %q:\n%s", k, out)
		}
	}
}

// TestReportSurfacesForecastErrors covers the sim wiring: an mRTS run
// carries its MPU error accounting in Report.Forecast, a RISC run (no
// predictor) reports none.
func TestReportSurfacesForecastErrors(t *testing.T) {
	w, err := DirectWorkloads()(context.Background(), phaseOptions(1, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunPoint(context.Background(), w, arch.Config{NPRC: 1, NCG: 1}, PolicyMRTS)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Forecast.Total.Samples == 0 {
		t.Error("mRTS report has no forecast error accounting")
	}
	if rep.Forecast.Predictor != string(mpu.KindBackProp) {
		t.Errorf("report predictor = %q, want the back-propagation default", rep.Forecast.Predictor)
	}
	risc, err := RunPoint(context.Background(), w, arch.Config{}, PolicyRISC)
	if err != nil {
		t.Fatal(err)
	}
	if !risc.Forecast.Total.IsZero() {
		t.Errorf("RISC report carries forecast errors: %+v", risc.Forecast.Total)
	}
}
