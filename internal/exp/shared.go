package exp

import (
	"context"
	"io"
	"math"

	"mrts/internal/arch"
	"mrts/internal/baseline"
	"mrts/internal/core"
	"mrts/internal/sim"
	"mrts/internal/workload"
)

// SharedRow is one fabric-sharing level of the multi-task experiment: a
// competing task permanently occupies part of the fabric, and mRTS adapts
// its selections to what is left.
type SharedRow struct {
	// ReservedPRC/ReservedCG is the fabric the competing task holds.
	ReservedPRC, ReservedCG int
	// Effective is the budget left for the application.
	Effective arch.Config
	// MRTSCycles is mRTS running on the full machine with the
	// reservation applied at run time — no recompilation.
	MRTSCycles arch.Cycles
	// OracleCycles is the offline-optimal selection *recompiled* for the
	// effective budget: the best a static scheme could do if it knew the
	// sharing level in advance.
	OracleCycles arch.Cycles
	// Speedup is mRTS versus RISC mode.
	Speedup float64
	// Retention is OracleCycles / MRTSCycles: how mRTS's purely
	// run-time adaptation compares with the recompiled oracle (1.0
	// matches it; above 1.0 the run-time system is faster than even a
	// statically recompiled selection, thanks to per-block
	// time-multiplexing and ECU steering).
	Retention float64
}

// SharedResult is the full sharing sweep.
type SharedResult struct {
	Full arch.Config
	Rows []SharedRow
	// MinRetention is the worst-case share of the recompiled oracle's
	// performance that run-time adaptation retains.
	MinRetention float64
}

// Shared runs the multi-task fabric-sharing experiment (paper Section 1
// motivates run-time selection with fabric "shared among various tasks"):
// for every reservation level, mRTS adapts at run time on the full machine
// while the yardstick is an offline-optimal selection recompiled for the
// shrunken budget. A run-time system is valuable exactly when it tracks
// that oracle without recompilation.
func Shared(ctx context.Context, w *workload.Result, full arch.Config) (SharedResult, error) {
	res := SharedResult{Full: full, MinRetention: math.Inf(1)}
	risc, err := RunPoint(ctx, w, arch.Config{}, PolicyRISC)
	if err != nil {
		return res, err
	}

	type level struct{ prc, cg int }
	var levels []level
	for prc := 0; prc < full.NPRC; prc++ {
		for cg := 0; cg < full.NCG; cg++ {
			levels = append(levels, level{prc, cg})
		}
	}

	rows, err := ParMap(ctx, len(levels), func(ctx context.Context, i int) (SharedRow, error) {
		if err := ctx.Err(); err != nil {
			return SharedRow{}, context.Cause(ctx)
		}
		lv := levels[i]
		row := SharedRow{
			ReservedPRC: lv.prc,
			ReservedCG:  lv.cg,
			Effective:   arch.Config{NPRC: full.NPRC - lv.prc, NCG: full.NCG - lv.cg},
		}
		m, err := core.New(full, core.Options{ChargeOverhead: true})
		if err != nil {
			return row, err
		}
		rep, err := sim.RunReserved(w.App, w.Trace, m, lv.prc, lv.cg)
		if err != nil {
			return row, err
		}
		row.MRTSCycles = rep.TotalCycles
		row.Speedup = rep.Speedup(risc)

		oracle, err := baseline.NewOfflineOptimal(row.Effective, w.App, w.Trace)
		if err != nil {
			return row, err
		}
		orep, err := sim.Run(w.App, w.Trace, oracle)
		if err != nil {
			return row, err
		}
		row.OracleCycles = orep.TotalCycles
		row.Retention = float64(orep.TotalCycles) / float64(rep.TotalCycles)
		return row, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	for _, row := range rows {
		if row.Retention < res.MinRetention {
			res.MinRetention = row.Retention
		}
	}
	return res, nil
}

// Render writes the sharing sweep as a text table.
func (r SharedResult) Render(w io.Writer) {
	fprintf(w, "Fabric sharing: mRTS adapting at run time vs. offline-optimal recompiled per budget\n")
	fprintf(w, "full machine: %d PRC / %d CG-EDPE\n\n", r.Full.NPRC, r.Full.NCG)
	fprintf(w, "%-10s %-10s %12s %12s %9s %10s\n",
		"reserved", "effective", "mRTS (M)", "oracle (M)", "speedup", "retention")
	for _, row := range r.Rows {
		fprintf(w, "%d/%-8d %d/%-8d %12.2f %12.2f %8.2fx %9.2f%%\n",
			row.ReservedPRC, row.ReservedCG,
			row.Effective.NPRC, row.Effective.NCG,
			row.MRTSCycles.MCycles(), row.OracleCycles.MCycles(),
			row.Speedup, 100*row.Retention)
	}
	fprintf(w, "\nworst-case retention of the recompiled oracle's performance: %.1f%%\n", 100*r.MinRetention)
}
