package exp

import (
	"io"

	"mrts/internal/h264"
	"mrts/internal/ise"
	"mrts/internal/iselib"
	"mrts/internal/profit"
	"mrts/internal/workload"
)

// Fig2Row is one frame of the Fig. 2 series: how often the deblocking
// filter kernel executes within the functional block of that frame, and
// which of the three case-study ISEs the pif ranks best at that count.
type Fig2Row struct {
	Frame      int
	Executions int64
	// BestISE is 1, 2 or 3 (paper numbering: FG, CG, MG).
	BestISE int
}

// Fig2Result is the full Fig. 2 series.
type Fig2Result struct {
	Rows []Fig2Row
	// Changes counts how often the best ISE flips between consecutive
	// frames — the paper's argument for run-time selection.
	Changes int
}

// Fig2 reproduces the execution behaviour of the H.264 deblocking filter
// (paper Fig. 2): the number of kernel executions within the deblocking
// functional block varies from frame to frame with the video content, so
// the performance-wise best ISE changes over time.
func Fig2(w *workload.Result) Fig2Result {
	k := iselib.CaseStudyKernel()
	var res Fig2Result
	prev := 0
	for i := range w.Trace.Iterations {
		it := &w.Trace.Iterations[i]
		if it.Block != "dbf" {
			continue
		}
		var execs int64
		for _, l := range it.Loads {
			if l.Kernel == ise.KernelID(h264.KernelFilt) {
				execs = l.E
			}
		}
		best, bestPIF := 0, -1.0
		for j, ext := range k.ISEs {
			if p := profit.PIF(k, ext, execs); p > bestPIF {
				best, bestPIF = j+1, p
			}
		}
		if prev != 0 && best != prev {
			res.Changes++
		}
		prev = best
		res.Rows = append(res.Rows, Fig2Row{Frame: it.Seq, Executions: execs, BestISE: best})
	}
	return res
}

// Render writes the series as a text table.
func (r Fig2Result) Render(w io.Writer) {
	fprintf(w, "Fig. 2: Deblocking-filter executions per functional-block iteration\n")
	fprintf(w, "%6s %12s  %s\n", "frame", "executions", "best suited")
	for _, row := range r.Rows {
		fprintf(w, "%6d %12d  ISE-%d\n", row.Frame, row.Executions, row.BestISE)
	}
	fprintf(w, "best-ISE changes across frames: %d\n", r.Changes)
}
