package exp

import (
	"io"

	"mrts/internal/iselib"
	"mrts/internal/profit"
)

// Fig1Row is one x-position of the Fig. 1 case study: the Performance
// Improvement Factor (Eq. 1) of the three deblocking-filter ISEs at a given
// number of kernel executions.
type Fig1Row struct {
	Executions int64
	// PIF holds the pif of ISE-1 (pure FG), ISE-2 (pure CG) and ISE-3
	// (multi-grained), in paper order.
	PIF [3]float64
	// Best is the 1-based index of the dominating ISE at this point.
	Best int
}

// Fig1Result is the full Fig. 1 series.
type Fig1Result struct {
	Rows []Fig1Row
	// Crossovers lists the execution counts at which the dominating ISE
	// changes (the paper's three-region structure yields two of them).
	Crossovers []int64
}

// Fig1 reproduces the motivational case study (paper Fig. 1): the pif of
// the three ISEs of the H.264 deblocking filter for execution counts from
// step to max. The expected structure: ISE-2 (CG) dominates for few
// executions, ISE-3 (MG) in the middle region, ISE-1 (FG) for many.
func Fig1(max, step int64) Fig1Result {
	k := iselib.CaseStudyKernel()
	var res Fig1Result
	prevBest := 0
	for e := step; e <= max; e += step {
		row := Fig1Row{Executions: e}
		for i, ext := range k.ISEs {
			row.PIF[i] = profit.PIF(k, ext, e)
		}
		row.Best = 1
		for i := 1; i < 3; i++ {
			if row.PIF[i] > row.PIF[row.Best-1] {
				row.Best = i + 1
			}
		}
		if prevBest != 0 && row.Best != prevBest {
			res.Crossovers = append(res.Crossovers, e)
		}
		prevBest = row.Best
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render writes the series as a text table.
func (r Fig1Result) Render(w io.Writer) {
	fprintf(w, "Fig. 1: Performance Improvement Factor of three deblocking-filter ISEs\n")
	fprintf(w, "%10s %10s %10s %10s  %s\n", "executions", "ISE-1(FG)", "ISE-2(CG)", "ISE-3(MG)", "best")
	for _, row := range r.Rows {
		fprintf(w, "%10d %10.3f %10.3f %10.3f  ISE-%d\n",
			row.Executions, row.PIF[0], row.PIF[1], row.PIF[2], row.Best)
	}
	fprintf(w, "region crossovers at executions: %v\n", r.Crossovers)
}
