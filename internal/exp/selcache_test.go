package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"mrts/internal/arch"
	"mrts/internal/fault"
	"mrts/internal/sim"
)

// cacheSizer is implemented by runtime systems carrying a selection cache
// (*core.MRTS); static policies (Morpheus-4S, offline optimal, RISC) have
// no selection loop to cache.
type cacheSizer interface{ SetSelectionCacheSize(n int) }

// TestSelectionCacheIdenticalEveryPolicy is the determinism guard of the
// selection fast path: for every Fig. 8 policy (plus RISC), a full
// simulation with the selection cache enabled (the default) must produce a
// report byte-identical (JSON) to one with the cache disabled. The cache
// may only remove host-side work, never change a simulated cycle.
func TestSelectionCacheIdenticalEveryPolicy(t *testing.T) {
	ctx := context.Background()
	cfg := arch.Config{NPRC: 2, NCG: 2}
	for _, p := range append([]Policy{PolicyRISC}, Fig8Policies...) {
		p := p
		t.Run(string(p), func(t *testing.T) {
			pc := cfg
			if p == PolicyRISC {
				pc = arch.Config{}
			}
			withCache, err := RunPoint(ctx, expWorkload, pc, p)
			if err != nil {
				t.Fatal(err)
			}

			rts, err := NewPolicy(p, pc, expWorkload.App, expWorkload.Trace)
			if err != nil {
				t.Fatal(err)
			}
			if c, ok := rts.(cacheSizer); ok {
				c.SetSelectionCacheSize(-1)
			}
			noCache, err := sim.Run(expWorkload.App, expWorkload.Trace, rts)
			if err != nil {
				t.Fatal(err)
			}

			a, _ := json.Marshal(withCache)
			b, _ := json.Marshal(noCache)
			if !bytes.Equal(a, b) {
				t.Errorf("cache-on report differs from cache-off:\n%s\n%s", a, b)
			}
		})
	}
}

// TestSelectionCacheIdenticalUnderFaults extends the guard to a faulted
// run: fault events invalidate the cache mid-run, and the re-selections
// after each event must still replay identically to an uncached run.
func TestSelectionCacheIdenticalUnderFaults(t *testing.T) {
	cfg := arch.Config{NPRC: 2, NCG: 2}
	fo := fault.Options{FailPRC: 1, FailCG: 1, Horizon: 1_000_000}
	const seed = 7

	withCache, err := RunPointFaults(context.Background(), expWorkload, cfg, PolicyMRTS, seed, fo)
	if err != nil {
		t.Fatal(err)
	}

	rts, err := NewPolicy(PolicyMRTS, cfg, expWorkload.App, expWorkload.Trace)
	if err != nil {
		t.Fatal(err)
	}
	rts.(cacheSizer).SetSelectionCacheSize(-1)
	sched, err := fault.NewSchedule(seed, fo)
	if err != nil {
		t.Fatal(err)
	}
	noCache, err := sim.RunOpts(expWorkload.App, expWorkload.Trace, rts, sim.Options{Faults: sched})
	if err != nil {
		t.Fatal(err)
	}

	a, _ := json.Marshal(withCache)
	b, _ := json.Marshal(noCache)
	if !bytes.Equal(a, b) {
		t.Errorf("faulted cache-on report differs from cache-off:\n%s\n%s", a, b)
	}
	if withCache.Fault.IsZero() {
		t.Error("fault scenario injected nothing; the guard did not exercise invalidation")
	}
}
