package exp

import (
	"context"
	"io"

	"mrts/internal/arch"
	"mrts/internal/stats"
)

// Fig10Row is one fabric combination of the RISC-mode speedup analysis
// (paper Fig. 10).
type Fig10Row struct {
	Config arch.Config
	// Class groups the combination: FG-only, CG-only or multi-grained.
	Class arch.Grain
	// Speedup of mRTS versus pure RISC-mode execution.
	Speedup float64
}

// Fig10Result is the full analysis.
type Fig10Result struct {
	Rows []Fig10Row
	// Avg is the average speedup over all combinations (the line in the
	// paper's figure); AvgByClass splits it by combination class.
	Avg        float64
	AvgByClass map[arch.Grain]float64
	MaxByClass map[arch.Grain]float64
}

// Fig10 reproduces the general speedup analysis (paper Fig. 10): mRTS's
// application speedup over RISC-mode execution for every fabric
// combination, grouped into FG-only, CG-only and multi-grained classes.
// The paper's shape: FG-only combinations reach 1.8-2.2x, while
// multi-grained combinations exceed 5x, and 1 PRC + 1 CG-EDPE beats
// considerably larger single-grain budgets.
func Fig10(ctx context.Context, eval Evaluator, maxPRC, maxCG int) (Fig10Result, error) {
	res := Fig10Result{
		AvgByClass: map[arch.Grain]float64{},
		MaxByClass: map[arch.Grain]float64{},
	}
	risc, err := eval(ctx, arch.Config{}, PolicyRISC)
	if err != nil {
		return res, err
	}
	combos := Combos(maxPRC, maxCG, false)
	rows, err := ParMap(ctx, len(combos), func(ctx context.Context, i int) (Fig10Row, error) {
		cfg := combos[i]
		rep, err := eval(ctx, cfg, PolicyMRTS)
		if err != nil {
			return Fig10Row{}, err
		}
		return Fig10Row{Config: cfg, Class: cfg.Class(), Speedup: rep.Speedup(risc)}, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	byClass := map[arch.Grain][]float64{}
	var all []float64
	for _, row := range rows {
		byClass[row.Class] = append(byClass[row.Class], row.Speedup)
		all = append(all, row.Speedup)
	}
	res.Avg = stats.Mean(all)
	for c, xs := range byClass {
		res.AvgByClass[c] = stats.Mean(xs)
		res.MaxByClass[c] = stats.Max(xs)
	}
	return res, nil
}

// Render writes the analysis as a text table, grouped by class the way the
// paper's figure sorts its x-axis.
func (r Fig10Result) Render(w io.Writer) {
	fprintf(w, "Fig. 10: mRTS speedup compared to RISC-mode\n")
	for _, class := range []arch.Grain{arch.GrainFG, arch.GrainCG, arch.GrainMG} {
		fprintf(w, "\n%s combinations:\n", class)
		for _, row := range r.Rows {
			if row.Class != class {
				continue
			}
			fprintf(w, "  %d PRC / %d CG: %6.2fx\n", row.Config.NPRC, row.Config.NCG, row.Speedup)
		}
		fprintf(w, "  class average %.2fx, max %.2fx\n", r.AvgByClass[class], r.MaxByClass[class])
	}
	fprintf(w, "\noverall average speedup %.2fx\n", r.Avg)
}
