// Package exp is the experiment harness: one entry point per table/figure
// of the paper's evaluation (Section 5). Each function runs the complete
// pipeline — workload, policies, simulator — and returns the same rows or
// series the paper reports, plus a text renderer used by the command-line
// tools and the benchmark harness.
//
// EXPERIMENTS.md records the paper-vs-measured comparison for every entry
// point here.
package exp

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"mrts/internal/arch"
	"mrts/internal/baseline"
	"mrts/internal/core"
	"mrts/internal/ise"
	"mrts/internal/sim"
	"mrts/internal/trace"
	"mrts/internal/workload"
)

// Policy identifies a runtime system in experiment rows.
type Policy string

// Policies of the Fig. 8 comparison, in the paper's bar order.
const (
	PolicyRISPP    Policy = "RISPP-like"
	PolicyOffline  Policy = "Offline-optimal"
	PolicyMorpheus Policy = "Morpheus/4S-like"
	PolicyMRTS     Policy = "mRTS"
	PolicyOptimal  Policy = "Online-optimal"
	PolicyRISC     Policy = "RISC-mode"
)

// shortNames maps the command-line spellings to policies. It is the single
// policy-name table shared by the CLIs and the service API.
var shortNames = map[string]Policy{
	"mrts":     PolicyMRTS,
	"rispp":    PolicyRISPP,
	"morpheus": PolicyMorpheus,
	"offline":  PolicyOffline,
	"optimal":  PolicyOptimal,
	"risc":     PolicyRISC,
}

// PolicyNames returns the valid short policy names, sorted.
func PolicyNames() []string {
	names := make([]string, 0, len(shortNames))
	for n := range shortNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParsePolicy resolves a short command-line name ("mrts", "rispp", ...) or a
// canonical Policy string to a Policy. The error lists the valid names.
func ParsePolicy(name string) (Policy, error) {
	if p, ok := shortNames[strings.ToLower(name)]; ok {
		return p, nil
	}
	for _, p := range []Policy{PolicyRISPP, PolicyOffline, PolicyMorpheus, PolicyMRTS, PolicyOptimal, PolicyRISC} {
		if name == string(p) {
			return p, nil
		}
	}
	return "", fmt.Errorf("exp: unknown policy %q (valid: %s)", name, strings.Join(PolicyNames(), ", "))
}

// NewPolicy builds a runtime system by name for the given fabric budget.
func NewPolicy(p Policy, cfg arch.Config, app *ise.Application, tr *trace.Trace) (core.RuntimeSystem, error) {
	switch p {
	case PolicyMRTS:
		return core.New(cfg, core.Options{ChargeOverhead: true})
	case PolicyRISPP:
		return baseline.NewRISPPLike(cfg)
	case PolicyMorpheus:
		return baseline.NewMorpheus4S(cfg, app, tr)
	case PolicyOffline:
		return baseline.NewOfflineOptimal(cfg, app, tr)
	case PolicyOptimal:
		return baseline.NewOnlineOptimal(cfg)
	case PolicyRISC:
		return core.NewRISCOnly(), nil
	default:
		return nil, fmt.Errorf("exp: unknown policy %q", p)
	}
}

// FigNames are the figure/sweep names the CLIs and the service accept, in
// presentation order. It is the single figure-name table shared by
// mrts-sweep, mrts-submit and the service API.
var FigNames = []string{"8", "9", "10", "overhead", "shared", "mix", "faults", "tenants", "phase"}

// ValidFig reports whether name is a known figure name.
func ValidFig(name string) bool {
	for _, f := range FigNames {
		if name == f {
			return true
		}
	}
	return false
}

// Evaluator evaluates one (fabric combination, policy) point of a sweep.
// The figure harnesses are written against this single job-execution path,
// so the same aggregation code runs whether points are simulated directly
// (DirectEvaluator) or served from a result cache by the mrts-serve daemon.
type Evaluator func(ctx context.Context, cfg arch.Config, p Policy) (*sim.Report, error)

// DirectEvaluator returns an Evaluator that simulates every point on the
// given workload, with no caching.
func DirectEvaluator(w *workload.Result) Evaluator {
	return func(ctx context.Context, cfg arch.Config, p Policy) (*sim.Report, error) {
		return RunPoint(ctx, w, cfg, p)
	}
}

// RunPoint builds and runs one policy on the workload — the unit of work of
// every sweep. The context is checked before the (non-interruptible)
// simulation starts, so cancelled sweeps stop at point granularity.
func RunPoint(ctx context.Context, w *workload.Result, cfg arch.Config, p Policy) (*sim.Report, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, context.Cause(ctx)
		}
	}
	rts, err := NewPolicy(p, cfg, w.App, w.Trace)
	if err != nil {
		return nil, err
	}
	attachMemo(ctx, rts)
	return sim.Run(w.App, w.Trace, rts)
}

// Combos enumerates fabric combinations the way Fig. 8 orders its x-axis:
// the PRC count is the outer digit, the CG-EDPE count the inner one.
func Combos(maxPRC, maxCG int, includeRISC bool) []arch.Config {
	var out []arch.Config
	for p := 0; p <= maxPRC; p++ {
		for c := 0; c <= maxCG; c++ {
			if p == 0 && c == 0 && !includeRISC {
				continue
			}
			out = append(out, arch.Config{NPRC: p, NCG: c})
		}
	}
	return out
}

func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
