package exp

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"mrts/internal/arch"
	"mrts/internal/workload"
)

var tenantsTestBase = workload.Options{Frames: 4}

func TestTenantWorkloadMixes(t *testing.T) {
	base := tenantsTestBase.Canonical()
	for _, mix := range TenantMixes {
		o0, w0, err := TenantWorkload(tenantsTestBase, 0, mix)
		if err != nil {
			t.Fatalf("%s: %v", mix, err)
		}
		// Tenant 0 always runs the base workload: the K=1 sweep point is
		// the single-application pipeline under every mix.
		if !reflect.DeepEqual(o0, base) {
			t.Errorf("%s: tenant 0 options %+v != base %+v", mix, o0, base)
		}
		o1, w1, err := TenantWorkload(tenantsTestBase, 1, mix)
		if err != nil {
			t.Fatalf("%s: %v", mix, err)
		}
		if o1.Seed == o0.Seed {
			t.Errorf("%s: tenant 1 shares tenant 0's seed", mix)
		}
		switch mix {
		case "skewed":
			if o1.Frames >= o0.Frames {
				t.Errorf("skewed: tenant 1 frames %d not shorter than %d", o1.Frames, o0.Frames)
			}
		case "priority":
			if w0 != 4 || w1 != 2 {
				t.Errorf("priority: weights %d/%d, want 4/2", w0, w1)
			}
		default:
			if w0 != 1 || w1 != 1 {
				t.Errorf("%s: weights %d/%d, want 1/1", mix, w0, w1)
			}
		}
	}
	if _, _, err := TenantWorkload(tenantsTestBase, 0, "nope"); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestTenantsSweep(t *testing.T) {
	ctx := context.Background()
	phys := arch.Config{NPRC: 4, NCG: 3}
	res, err := Tenants(ctx, DirectWorkloads(), tenantsTestBase, phys, 3, "skewed")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}

	// K=1: one tenant owning the full fabric is exactly the Fig. 8
	// pipeline's mRTS point; both arbitration modes must reproduce it.
	w, err := workload.Build(tenantsTestBase)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunPoint(ctx, w, phys, PolicyMRTS)
	if err != nil {
		t.Fatal(err)
	}
	k1 := res.Rows[0]
	if k1.StaticMakespan != ref.TotalCycles || k1.MigratingMakespan != ref.TotalCycles {
		t.Errorf("K=1 makespans %d/%d != Fig. 8 pipeline %d",
			k1.StaticMakespan, k1.MigratingMakespan, ref.TotalCycles)
	}
	if k1.StaticFairness != 1 || k1.MigratingFairness != 1 {
		t.Errorf("K=1 fairness %f/%f, want 1", k1.StaticFairness, k1.MigratingFairness)
	}
	if k1.Repartitions != 0 || k1.Migrations != 0 {
		t.Errorf("K=1 repartitioned (%d) or migrated (%d)", k1.Repartitions, k1.Migrations)
	}

	for _, row := range res.Rows {
		if row.StaticAggSpeedup <= 0 || row.MigratingAggSpeedup <= 0 {
			t.Errorf("K=%d: non-positive aggregate speedup", row.K)
		}
		if row.StaticFairness < 0 || row.StaticFairness > 1.0000001 ||
			row.MigratingFairness < 0 || row.MigratingFairness > 1.0000001 {
			t.Errorf("K=%d: fairness outside [0,1]: %f/%f",
				row.K, row.StaticFairness, row.MigratingFairness)
		}
	}

	// The rendered table is deterministic across runs.
	res2, err := Tenants(ctx, DirectWorkloads(), tenantsTestBase, phys, 3, "skewed")
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	res.Render(&a)
	res2.Render(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical tenant sweeps rendered differently")
	}
}

func TestTenantsValidates(t *testing.T) {
	ctx := context.Background()
	phys := arch.Config{NPRC: 2, NCG: 1}
	if _, err := Tenants(ctx, DirectWorkloads(), tenantsTestBase, phys, 0, "uniform"); err == nil {
		t.Error("maxK=0 accepted")
	}
	if _, err := Tenants(ctx, DirectWorkloads(), tenantsTestBase, phys, 2, "bogus"); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestJain(t *testing.T) {
	if j := jain([]float64{1, 1, 1}); j < 0.999999 {
		t.Errorf("jain(equal) = %f, want 1", j)
	}
	if j := jain([]float64{1, 0, 0, 0}); j > 0.2500001 || j < 0.2499999 {
		t.Errorf("jain(one of four) = %f, want 0.25", j)
	}
	if j := jain(nil); j != 1 {
		t.Errorf("jain(nil) = %f, want 1", j)
	}
}
