package exp

import (
	"context"
	"io"

	"mrts/internal/arch"
	"mrts/internal/ecu"
	"mrts/internal/fault"
	"mrts/internal/sim"
	"mrts/internal/workload"
)

// FaultEvaluator evaluates one (fabric combination, policy, fault
// scenario) point of a degradation sweep. The zero fault.Options value is
// the benign scenario and must behave exactly like Evaluator.
type FaultEvaluator func(ctx context.Context, cfg arch.Config, p Policy, seed uint64, fo fault.Options) (*sim.Report, error)

// DirectFaultEvaluator returns a FaultEvaluator that simulates every point
// on the given workload, with no caching.
func DirectFaultEvaluator(w *workload.Result) FaultEvaluator {
	return func(ctx context.Context, cfg arch.Config, p Policy, seed uint64, fo fault.Options) (*sim.Report, error) {
		return RunPointFaults(ctx, w, cfg, p, seed, fo)
	}
}

// RunPointFaults is RunPoint under a fault scenario: the schedule is drawn
// from (seed, fo) and interleaved with the trace. Zero options run the
// plain fault-free path.
func RunPointFaults(ctx context.Context, w *workload.Result, cfg arch.Config, p Policy, seed uint64, fo fault.Options) (*sim.Report, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, context.Cause(ctx)
		}
	}
	rts, err := NewPolicy(p, cfg, w.App, w.Trace)
	if err != nil {
		return nil, err
	}
	attachMemo(ctx, rts)
	var sched *fault.Schedule
	if !fo.IsZero() {
		if sched, err = fault.NewSchedule(seed, fo); err != nil {
			return nil, err
		}
	}
	return sim.RunOpts(w.App, w.Trace, rts, sim.Options{Faults: sched})
}

// FaultsFractions are the fabric-loss fractions of the degradation sweep.
var FaultsFractions = []float64{0, 0.25, 0.5, 0.75, 1.0}

// FaultsConfig is the fabric budget the degradation sweep runs on: large
// enough that every loss fraction maps to a distinct container count.
var FaultsConfig = arch.Config{NPRC: 4, NCG: 4}

// FaultsRow is one loss fraction of the degradation sweep.
type FaultsRow struct {
	// Fraction is the fraction of each fabric failed permanently.
	Fraction float64
	// FailPRC / FailCG are the container counts that fraction maps to.
	FailPRC int
	FailCG  int
	// Cycles holds the execution time per policy.
	Cycles map[Policy]arch.Cycles
	// SpeedupRISC is each policy's speedup over the RISC reference.
	SpeedupRISC map[Policy]float64
	// AdvantageStatic is mRTS's speedup over the best static baseline
	// (offline-optimal or Morpheus/4S) at this loss level.
	AdvantageStatic float64
	// Reselections / Degradations / RISCShare describe mRTS's reaction:
	// selections re-run on fault events, ISEs dropped for lack of
	// surviving fabric, and the fraction of executions that fell back to
	// RISC mode.
	Reselections int64
	Degradations int64
	RISCShare    float64
}

// FaultsResult is the full degradation sweep.
type FaultsResult struct {
	Config     arch.Config
	Seed       uint64
	RISCCycles arch.Cycles
	// Horizon is the window the failures were spread over.
	Horizon arch.Cycles
	Rows    []FaultsRow
}

// Faults measures graceful degradation under permanent fabric failures:
// for each loss fraction, that share of PRCs and CG-EDPEs fails at seeded
// times spread over the first tenth of the RISC-mode execution time, and
// the four policies of the Fig. 8 comparison run to completion on what
// survives. Failure times are drawn from per-category streams, so each
// row's failures are a superset of the previous row's — degradation curves
// are therefore directly comparable across rows.
//
// Expected shape: every policy degrades monotonically; mRTS never aborts
// and converges to RISC-mode at 100% loss; at partial loss mRTS keeps an
// advantage over the static baselines because it re-selects over the
// surviving fabric while their compile-time selections silently lose ISEs.
func Faults(ctx context.Context, eval FaultEvaluator, cfg arch.Config, seed uint64) (FaultsResult, error) {
	if cfg == (arch.Config{}) {
		cfg = FaultsConfig
	}
	res := FaultsResult{Config: cfg, Seed: seed}
	risc, err := eval(ctx, arch.Config{}, PolicyRISC, seed, fault.Options{})
	if err != nil {
		return res, err
	}
	res.RISCCycles = risc.TotalCycles
	res.Horizon = risc.TotalCycles / 10

	rows, err := ParMap(ctx, len(FaultsFractions), func(ctx context.Context, i int) (FaultsRow, error) {
		f := FaultsFractions[i]
		row := FaultsRow{
			Fraction:    f,
			FailPRC:     int(f*float64(cfg.NPRC) + 0.5),
			FailCG:      int(f*float64(cfg.NCG) + 0.5),
			Cycles:      map[Policy]arch.Cycles{},
			SpeedupRISC: map[Policy]float64{},
		}
		fo := fault.Options{FailPRC: row.FailPRC, FailCG: row.FailCG, Horizon: res.Horizon}
		for _, p := range Fig8Policies {
			rep, err := eval(ctx, cfg, p, seed, fo)
			if err != nil {
				return row, err
			}
			row.Cycles[p] = rep.TotalCycles
			row.SpeedupRISC[p] = float64(res.RISCCycles) / float64(rep.TotalCycles)
			if p == PolicyMRTS {
				row.Reselections = rep.Fault.Reselections
				row.Degradations = rep.Fault.Degradations
				row.RISCShare = rep.ModeShare(ecu.RISC)
			}
		}
		bestStatic := row.Cycles[PolicyOffline]
		if c := row.Cycles[PolicyMorpheus]; c < bestStatic {
			bestStatic = c
		}
		row.AdvantageStatic = float64(bestStatic) / float64(row.Cycles[PolicyMRTS])
		return row, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// Render writes the degradation sweep as a text table.
func (r FaultsResult) Render(w io.Writer) {
	fprintf(w, "Graceful degradation under permanent fabric failures (config %s, seed %d)\n", r.Config, r.Seed)
	fprintf(w, "RISC-mode reference: %.2f Mcycles; failures land in the first %.2f Mcycles\n\n",
		r.RISCCycles.MCycles(), r.Horizon.MCycles())
	fprintf(w, "%-6s %-7s %12s %12s %12s %12s | %8s %8s %6s %6s %6s\n",
		"lost", "dead", "RISPP-like", "Offline-opt", "Morph+4S", "mRTS",
		"vs RISC", "vs stat", "resel", "degr", "risc%")
	for _, row := range r.Rows {
		fprintf(w, "%4.0f%%  %d+%-5d %12.2f %12.2f %12.2f %12.2f | %8.2f %8.2f %6d %6d %5.1f%%\n",
			row.Fraction*100, row.FailPRC, row.FailCG,
			row.Cycles[PolicyRISPP].MCycles(),
			row.Cycles[PolicyOffline].MCycles(),
			row.Cycles[PolicyMorpheus].MCycles(),
			row.Cycles[PolicyMRTS].MCycles(),
			row.SpeedupRISC[PolicyMRTS],
			row.AdvantageStatic,
			row.Reselections, row.Degradations, row.RISCShare*100)
	}
	fprintf(w, "\n(dead = failed PRCs + failed CG-EDPEs; vs stat = mRTS speedup over the best static baseline;\n")
	fprintf(w, " resel/degr = mRTS fault re-selections and ISEs dropped for lack of surviving fabric.)\n")
}
