package exp

import (
	"context"
	"io"

	"mrts/internal/arch"
	"mrts/internal/stats"
)

// Fig8Row is one fabric combination of the state-of-the-art comparison
// (paper Fig. 8): execution times of the four policies plus the speedups of
// mRTS over each competitor.
type Fig8Row struct {
	Config arch.Config
	// Cycles holds the execution time per policy.
	Cycles map[Policy]arch.Cycles
	// Speedup of mRTS versus each competitor.
	Speedup map[Policy]float64
}

// Fig8Result is the full comparison.
type Fig8Result struct {
	// RISCCycles is the execution time of the first x-axis combination
	// (no reconfigurable fabric at all).
	RISCCycles arch.Cycles
	Rows       []Fig8Row
	// AvgSpeedup / MaxSpeedup aggregate mRTS's speedup per competitor
	// over all combinations (the numbers quoted in paper Section 5.2).
	AvgSpeedup map[Policy]float64
	MaxSpeedup map[Policy]float64
}

// Fig8Policies are the competitors, in the paper's bar order.
var Fig8Policies = []Policy{PolicyRISPP, PolicyOffline, PolicyMorpheus, PolicyMRTS}

// Fig8 reproduces the comparison with state-of-the-art approaches (paper
// Fig. 8): execution time of the whole H.264 encoder for every combination
// of PRCs (0..maxPRC) and CG-EDPEs (0..maxCG) under the RISPP-like,
// offline-optimal, Morpheus/4S-like and mRTS policies. Every point goes
// through eval (see Evaluator), so a caching evaluator serves repeated
// sweeps without re-simulation.
//
// Expected shape (paper Section 5.2): mRTS is fastest or tied everywhere;
// it matches RISPP-like when no CG-EDPE is available and approaches the
// loosely coupled schemes on single-grain combinations; the largest gaps
// appear on multi-grained combinations.
func Fig8(ctx context.Context, eval Evaluator, maxPRC, maxCG int) (Fig8Result, error) {
	res := Fig8Result{
		AvgSpeedup: map[Policy]float64{},
		MaxSpeedup: map[Policy]float64{},
	}
	risc, err := eval(ctx, arch.Config{}, PolicyRISC)
	if err != nil {
		return res, err
	}
	res.RISCCycles = risc.TotalCycles

	combos := Combos(maxPRC, maxCG, false)
	rows, err := ParMap(ctx, len(combos), func(ctx context.Context, i int) (Fig8Row, error) {
		cfg := combos[i]
		row := Fig8Row{
			Config:  cfg,
			Cycles:  map[Policy]arch.Cycles{},
			Speedup: map[Policy]float64{},
		}
		for _, p := range Fig8Policies {
			rep, err := eval(ctx, cfg, p)
			if err != nil {
				return row, err
			}
			row.Cycles[p] = rep.TotalCycles
		}
		for _, p := range Fig8Policies[:3] {
			row.Speedup[p] = float64(row.Cycles[p]) / float64(row.Cycles[PolicyMRTS])
		}
		return row, nil
	})
	if err != nil {
		return res, err
	}
	ratios := map[Policy][]float64{}
	for _, row := range rows {
		for _, p := range Fig8Policies[:3] {
			ratios[p] = append(ratios[p], row.Speedup[p])
		}
	}
	res.Rows = rows
	for p, rs := range ratios {
		res.AvgSpeedup[p] = stats.Mean(rs)
		res.MaxSpeedup[p] = stats.Max(rs)
	}
	return res, nil
}

// Render writes the comparison as a text table.
func (r Fig8Result) Render(w io.Writer) {
	fprintf(w, "Fig. 8: Comparison with state-of-the-art (execution time, Mcycles)\n")
	fprintf(w, "RISC-mode (combination 0/0): %.2f Mcycles\n\n", r.RISCCycles.MCycles())
	fprintf(w, "%-6s %12s %12s %12s %12s | %8s %8s %8s\n",
		"P/C", "RISPP-like", "Offline-opt", "Morph+4S", "mRTS",
		"vs RISPP", "vs Offl", "vs Morph")
	for _, row := range r.Rows {
		fprintf(w, "%d/%-4d %12.2f %12.2f %12.2f %12.2f | %8.2f %8.2f %8.2f\n",
			row.Config.NPRC, row.Config.NCG,
			row.Cycles[PolicyRISPP].MCycles(),
			row.Cycles[PolicyOffline].MCycles(),
			row.Cycles[PolicyMorpheus].MCycles(),
			row.Cycles[PolicyMRTS].MCycles(),
			row.Speedup[PolicyRISPP],
			row.Speedup[PolicyOffline],
			row.Speedup[PolicyMorpheus])
	}
	fprintf(w, "\nmRTS speedup vs RISPP-like:       avg %.2fx, max %.2fx (paper: avg 1.3x, max 1.8x)\n",
		r.AvgSpeedup[PolicyRISPP], r.MaxSpeedup[PolicyRISPP])
	fprintf(w, "mRTS speedup vs Offline-optimal:  avg %.2fx, max %.2fx (paper: avg 1.45x, max 2.2x)\n",
		r.AvgSpeedup[PolicyOffline], r.MaxSpeedup[PolicyOffline])
	fprintf(w, "mRTS speedup vs Morpheus/4S-like: avg %.2fx, max %.2fx (paper: avg 1.78x, max 2.3x)\n",
		r.AvgSpeedup[PolicyMorpheus], r.MaxSpeedup[PolicyMorpheus])
}
