package exp

import (
	"context"

	"mrts/internal/arch"
	"mrts/internal/fault"
	"mrts/internal/obs"
	"mrts/internal/sim"
	"mrts/internal/workload"
)

// RunPointObserved is RunPoint with a decision-trace recorder attached and
// an optional fault scenario: the unit of work behind the CLIs' -trace
// flag and the service's trace-capturing jobs. A nil recorder (or zero
// fault options) degrades to the plain path; either way the report is
// byte-identical to an unobserved run — the recorder is strictly a tap.
func RunPointObserved(ctx context.Context, w *workload.Result, cfg arch.Config, p Policy, seed uint64, fo fault.Options, rec *obs.Recorder) (*sim.Report, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, context.Cause(ctx)
		}
	}
	rts, err := NewPolicy(p, cfg, w.App, w.Trace)
	if err != nil {
		return nil, err
	}
	var sched *fault.Schedule
	if !fo.IsZero() {
		if sched, err = fault.NewSchedule(seed, fo); err != nil {
			return nil, err
		}
	}
	return sim.RunOpts(w.App, w.Trace, rts, sim.Options{Faults: sched, Observer: rec})
}
