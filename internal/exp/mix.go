package exp

import (
	"context"
	"io"

	"mrts/internal/arch"
)

// MixRow is one fabric mix of the equal-area frontier: a fixed total number
// of reconfigurable units split between PRCs and CG-EDPEs.
type MixRow struct {
	Config  arch.Config
	Speedup float64
}

// MixResult is the frontier for one total-area budget.
type MixResult struct {
	Total int
	Rows  []MixRow
	// Best is the mix with the highest speedup.
	Best MixRow
}

// MixFrontier extends the paper's Fig. 10 observation ("1 PRC + 1 CG-EDPE
// performs significantly better than even 3 PRCs") into a full equal-area
// analysis: for a fixed total unit count, it sweeps every PRC/CG split and
// reports mRTS's speedup — answering the architecture question of how a
// silicon budget should be divided between the fabrics.
func MixFrontier(ctx context.Context, eval Evaluator, total int) (MixResult, error) {
	res := MixResult{Total: total}
	risc, err := eval(ctx, arch.Config{}, PolicyRISC)
	if err != nil {
		return res, err
	}
	cfgs := make([]arch.Config, 0, total+1)
	for prc := 0; prc <= total; prc++ {
		cfgs = append(cfgs, arch.Config{NPRC: prc, NCG: total - prc})
	}
	rows, err := ParMap(ctx, len(cfgs), func(ctx context.Context, i int) (MixRow, error) {
		rep, err := eval(ctx, cfgs[i], PolicyMRTS)
		if err != nil {
			return MixRow{}, err
		}
		return MixRow{Config: cfgs[i], Speedup: rep.Speedup(risc)}, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	for _, r := range rows {
		if r.Speedup > res.Best.Speedup {
			res.Best = r
		}
	}
	return res, nil
}

// Render writes the frontier as a text table with bars.
func (r MixResult) Render(w io.Writer) {
	fprintf(w, "Fabric mix frontier: %d reconfigurable units split between PRCs and CG-EDPEs\n", r.Total)
	var max float64
	for _, row := range r.Rows {
		if row.Speedup > max {
			max = row.Speedup
		}
	}
	for _, row := range r.Rows {
		marker := ""
		if row.Config == r.Best.Config {
			marker = "  <- best"
		}
		fprintf(w, "%d PRC + %d CG  %s %.2fx%s\n",
			row.Config.NPRC, row.Config.NCG, bar(row.Speedup, max, 36), row.Speedup, marker)
	}
}
