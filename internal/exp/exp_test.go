package exp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"mrts/internal/arch"
	"mrts/internal/video"
	"mrts/internal/workload"
)

// expWorkload is shared across the integration tests in this package; the
// sweeps are the most expensive tests in the repository. It uses the
// calibrated QCIF frame size (the experiments' regime: functional-block
// windows a few multiples of the FG reconfiguration time) with a shortened
// sequence.
var expWorkload = workload.MustBuild(workload.Options{
	Frames: 8,
	Video:  video.Options{SceneCuts: []int{4}},
})

func TestFig1ThreeRegions(t *testing.T) {
	r := Fig1(6000, 100)
	if len(r.Rows) != 60 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if len(r.Crossovers) != 2 {
		t.Fatalf("crossovers = %v, want exactly 2 (three regions)", r.Crossovers)
	}
	// Region order: ISE-2 (CG) first, ISE-3 (MG) middle, ISE-1 (FG) last.
	if r.Rows[0].Best != 2 {
		t.Errorf("first region dominated by ISE-%d, want ISE-2", r.Rows[0].Best)
	}
	if last := r.Rows[len(r.Rows)-1]; last.Best != 1 {
		t.Errorf("last region dominated by ISE-%d, want ISE-1", last.Best)
	}
	mid := r.Rows[len(r.Rows)/3]
	if mid.Best != 3 {
		t.Errorf("middle region dominated by ISE-%d, want ISE-3", mid.Best)
	}
}

func TestFig1PIFMonotone(t *testing.T) {
	r := Fig1(6000, 200)
	for i := 1; i < len(r.Rows); i++ {
		for j := 0; j < 3; j++ {
			if r.Rows[i].PIF[j] < r.Rows[i-1].PIF[j]-1e-9 {
				t.Fatalf("pif of ISE-%d decreased at %d executions", j+1, r.Rows[i].Executions)
			}
		}
	}
}

func TestFig2SeriesAndVariation(t *testing.T) {
	r := Fig2(expWorkload)
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d, want one per frame", len(r.Rows))
	}
	// Execution counts must vary across frames (the paper's argument).
	min, max := r.Rows[0].Executions, r.Rows[0].Executions
	for _, row := range r.Rows {
		if row.Executions < min {
			min = row.Executions
		}
		if row.Executions > max {
			max = row.Executions
		}
		if row.BestISE < 1 || row.BestISE > 3 {
			t.Errorf("frame %d: best ISE %d", row.Frame, row.BestISE)
		}
	}
	if max < 2*min {
		t.Errorf("executions hardly vary: %d..%d", min, max)
	}
	if r.Changes < 1 {
		t.Error("the best ISE never changes across frames")
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := Fig8(context.Background(), DirectEvaluator(expWorkload), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 { // 3x3 minus 0/0
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.RISCCycles <= 0 {
		t.Fatal("no RISC reference")
	}
	for _, row := range r.Rows {
		mrts := row.Cycles[PolicyMRTS]
		if mrts <= 0 {
			t.Fatalf("combo %v: no mRTS cycles", row.Config)
		}
		// mRTS never slower than RISC mode.
		if mrts > r.RISCCycles {
			t.Errorf("combo %v: mRTS slower than RISC", row.Config)
		}
		// The headline claim: mRTS at least roughly matches every
		// competitor everywhere (small tolerance for transients).
		for _, p := range Fig8Policies[:3] {
			if float64(mrts) > 1.06*float64(row.Cycles[p]) {
				t.Errorf("combo %v: mRTS (%d) notably slower than %s (%d)",
					row.Config, mrts, p, row.Cycles[p])
			}
		}
	}
	// Paper: mRTS ~ RISPP-like when no CG-EDPE is available.
	for _, row := range r.Rows {
		if row.Config.NCG != 0 {
			continue
		}
		ratio := float64(row.Cycles[PolicyRISPP]) / float64(row.Cycles[PolicyMRTS])
		if ratio < 0.97 || ratio > 1.03 {
			t.Errorf("FG-only combo %v: mRTS/RISPP ratio %v, want ~1", row.Config, ratio)
		}
	}
	// Averages computed over all rows.
	for _, p := range Fig8Policies[:3] {
		if r.AvgSpeedup[p] <= 0 || r.MaxSpeedup[p] < r.AvgSpeedup[p] {
			t.Errorf("aggregate speedups wrong for %s: avg %v max %v", p, r.AvgSpeedup[p], r.MaxSpeedup[p])
		}
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := Fig9(context.Background(), DirectEvaluator(expWorkload), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.DiffPercent < 0 {
			t.Errorf("combo %v: negative difference", row.Config)
		}
		if row.DiffPercent > 25 {
			t.Errorf("combo %v: heuristic loses %v%% to optimal", row.Config, row.DiffPercent)
		}
	}
	if r.Worst < r.Avg {
		t.Error("worst < average")
	}
}

func TestFig10Shape(t *testing.T) {
	r, err := Fig10(context.Background(), DirectEvaluator(expWorkload), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.Speedup < 1 {
			t.Errorf("combo %v: speedup %v < 1", row.Config, row.Speedup)
		}
		if row.Class != row.Config.Class() {
			t.Errorf("combo %v: class %v", row.Config, row.Class)
		}
	}
	// The paper's core result: multi-grained combinations beat
	// single-grain ones on average.
	if r.AvgByClass[arch.GrainMG] <= r.AvgByClass[arch.GrainFG] {
		t.Errorf("MG average (%v) not above FG-only (%v)",
			r.AvgByClass[arch.GrainMG], r.AvgByClass[arch.GrainFG])
	}
	if r.MaxByClass[arch.GrainMG] < r.MaxByClass[arch.GrainCG] {
		t.Errorf("MG max (%v) below CG-only max (%v)",
			r.MaxByClass[arch.GrainMG], r.MaxByClass[arch.GrainCG])
	}
}

func TestOverheadWithinPaperBounds(t *testing.T) {
	r, err := Overhead(expWorkload, arch.Config{NPRC: 2, NCG: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Selections == 0 || r.Evaluations == 0 {
		t.Fatal("no selections measured")
	}
	// Paper Section 5.4: less than 3000 cycles per selection.
	if r.CyclesPerSelection <= 0 || r.CyclesPerSelection >= 3000 {
		t.Errorf("cycles per selection = %v, want (0, 3000)", r.CyclesPerSelection)
	}
	// Visible overhead is a small share of the execution time.
	if r.VisibleShare < 0 || r.VisibleShare > 0.05 {
		t.Errorf("visible share = %v", r.VisibleShare)
	}
	if r.HiddenShare < 0 || r.HiddenShare > 1 {
		t.Errorf("hidden share = %v", r.HiddenShare)
	}
}

func TestCombos(t *testing.T) {
	all := Combos(1, 1, true)
	if len(all) != 4 {
		t.Errorf("combos with RISC = %d", len(all))
	}
	noRISC := Combos(1, 1, false)
	if len(noRISC) != 3 {
		t.Errorf("combos without RISC = %d", len(noRISC))
	}
	for _, c := range noRISC {
		if c.IsRISCOnly() {
			t.Error("0/0 included")
		}
	}
}

func TestNewPolicyUnknown(t *testing.T) {
	if _, err := NewPolicy("bogus", arch.Config{}, expWorkload.App, expWorkload.Trace); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRenderers(t *testing.T) {
	var buf bytes.Buffer
	Fig1(2000, 500).Render(&buf)
	Fig2(expWorkload).Render(&buf)
	if r, err := Fig8(context.Background(), DirectEvaluator(expWorkload), 1, 1); err == nil {
		r.Render(&buf)
	} else {
		t.Fatal(err)
	}
	if r, err := Fig9(context.Background(), DirectEvaluator(expWorkload), 1, 1); err == nil {
		r.Render(&buf)
	} else {
		t.Fatal(err)
	}
	if r, err := Fig10(context.Background(), DirectEvaluator(expWorkload), 1, 1); err == nil {
		r.Render(&buf)
	} else {
		t.Fatal(err)
	}
	if r, err := Overhead(expWorkload, arch.Config{NPRC: 1, NCG: 1}); err == nil {
		r.Render(&buf)
	} else {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. 1", "Fig. 2", "Fig. 8", "Fig. 9", "Fig. 10", "Section 5.4"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
	// Render must tolerate a nil writer.
	Fig1(1000, 500).Render(nil)
}

func TestRenderCharts(t *testing.T) {
	var buf bytes.Buffer
	fig1 := Fig1(3000, 100)
	fig1.RenderChart(&buf)
	out := buf.String()
	if !strings.Contains(out, "Fig. 1 (chart)") {
		t.Error("Fig. 1 chart header missing")
	}
	// All three curves must appear.
	for _, glyph := range []string{"1", "2", "3"} {
		if !strings.Contains(out, glyph) {
			t.Errorf("curve glyph %s missing from chart", glyph)
		}
	}

	buf.Reset()
	r8, err := Fig8(context.Background(), DirectEvaluator(expWorkload), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r8.RenderChart(&buf)
	if !strings.Contains(buf.String(), "RISC") || !strings.Contains(buf.String(), "#") {
		t.Error("Fig. 8 chart missing bars")
	}

	buf.Reset()
	r10, err := Fig10(context.Background(), DirectEvaluator(expWorkload), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r10.RenderChart(&buf)
	if !strings.Contains(buf.String(), "MG:") {
		t.Error("Fig. 10 chart missing class groups")
	}

	// Nil writers must not panic.
	fig1.RenderChart(nil)
	r8.RenderChart(nil)
	r10.RenderChart(nil)
}

func TestBarScaling(t *testing.T) {
	if bar(10, 10, 20) != strings.Repeat("#", 20) {
		t.Error("full bar wrong")
	}
	if bar(5, 10, 20) != strings.Repeat("#", 10) {
		t.Error("half bar wrong")
	}
	if got := bar(0.0001, 10, 20); got != "#" {
		t.Errorf("tiny positive value should render one glyph, got %q", got)
	}
	if bar(1, 0, 20) != "" {
		t.Error("zero max should render nothing")
	}
}

func TestSharedSweep(t *testing.T) {
	r, err := Shared(context.Background(), expWorkload, arch.Config{NPRC: 2, NCG: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 { // reservations 0..1 x 0..1
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Effective.NPRC+row.ReservedPRC != 2 || row.Effective.NCG+row.ReservedCG != 2 {
			t.Errorf("budgets do not add up: %+v", row)
		}
		if row.Speedup < 1 {
			t.Errorf("reservation %d/%d: speedup %v < 1", row.ReservedPRC, row.ReservedCG, row.Speedup)
		}
		// Run-time adaptation must stay within a reasonable factor of
		// the recompiled-oracle selection (in practice it beats it).
		if row.Retention < 0.85 {
			t.Errorf("reservation %d/%d: retention %v", row.ReservedPRC, row.ReservedCG, row.Retention)
		}
	}
	// More reservation means less fabric means no more speed.
	if r.Rows[0].Speedup < r.Rows[len(r.Rows)-1].Speedup {
		t.Error("speedup should not grow as the budget shrinks")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fabric sharing") {
		t.Error("render missing header")
	}
}

func TestSyntheticWorkloadRunsUnderAllPolicies(t *testing.T) {
	w, err := workload.Synthetic(3, 4, 16, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	risc, err := RunPoint(context.Background(), w, arch.Config{}, PolicyRISC)
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.Config{NPRC: 2, NCG: 2}
	for _, p := range []Policy{PolicyMRTS, PolicyRISPP, PolicyMorpheus, PolicyOffline} {
		rep, err := RunPoint(context.Background(), w, cfg, p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if rep.TotalCycles > risc.TotalCycles {
			t.Errorf("%s slower than RISC on the synthetic workload", p)
		}
	}
}

func TestMixFrontier(t *testing.T) {
	r, err := MixFrontier(context.Background(), DirectEvaluator(expWorkload), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 splits of 4 units", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Config.NPRC+row.Config.NCG != 4 {
			t.Errorf("split %v does not sum to 4", row.Config)
		}
		if row.Speedup < 1 {
			t.Errorf("split %v: speedup %v < 1", row.Config, row.Speedup)
		}
	}
	// The paper's architecture point: a mixed split beats the pure-FG
	// extreme at equal area.
	pureFG := r.Rows[len(r.Rows)-1] // 4 PRC + 0 CG
	if r.Best.Config == pureFG.Config {
		t.Errorf("pure FG split should not be the frontier optimum")
	}
	if r.Best.Config.Class() != arch.GrainMG {
		t.Logf("best mix %v is not multi-grained (workload-dependent)", r.Best.Config)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "<- best") {
		t.Error("render missing best marker")
	}
}

// TestFig1Golden pins the exact case-study numbers: they follow
// analytically from Eq. 1 and the ISE library constants, so any change to
// either shows up here.
func TestFig1Golden(t *testing.T) {
	r := Fig1(3000, 1000)
	var buf bytes.Buffer
	r.Render(&buf)
	golden := []string{
		"      1000      4.040      5.333      4.762  ISE-2",
		"      2000      5.333      5.333      5.555  ISE-3",
		"      3000      5.970      5.333      5.882  ISE-1",
		"region crossovers at executions: [2000 3000]",
	}
	out := buf.String()
	for _, want := range golden {
		if !strings.Contains(out, want) {
			t.Errorf("golden line missing:\n%s\n--- got ---\n%s", want, out)
		}
	}
}

func TestParMap(t *testing.T) {
	ctx := context.Background()
	// Order preserved.
	out, err := ParMap(ctx, 20, func(_ context.Context, i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	// Errors propagate; all workers complete.
	_, err = ParMap(ctx, 10, func(_ context.Context, i int) (int, error) {
		if i == 7 {
			return 0, fmt.Errorf("boom")
		}
		return i, nil
	})
	if err == nil || err.Error() != "boom" {
		t.Errorf("error not propagated: %v", err)
	}
	// Zero items.
	if out, err := ParMap(ctx, 0, func(context.Context, int) (int, error) { return 0, nil }); err != nil || len(out) != 0 {
		t.Error("empty ParMap wrong")
	}
}

func TestParMapStopsDispatchAfterError(t *testing.T) {
	// After the first error no further indices are dispatched, and the
	// context handed to in-flight calls is cancelled so they can bail.
	var started atomic.Int64
	boom := errors.New("boom")
	_, err := ParMap(context.Background(), 1000, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, boom
		}
		select {
		case <-ctx.Done():
			return 0, context.Cause(ctx)
		default:
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Dispatch is serialised through an unbuffered channel, so once the
	// error cancels the context at most the worker count of extra calls
	// can already be in flight.
	if n := started.Load(); n >= 1000 {
		t.Errorf("all %d indices dispatched despite early error", n)
	}
}

func TestParMapCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ParMap(ctx, 50, func(context.Context, int) (int, error) { return 0, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunPointCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunPoint(ctx, expWorkload, arch.Config{NPRC: 1, NCG: 1}, PolicyMRTS); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]Policy{
		"mrts": PolicyMRTS, "rispp": PolicyRISPP, "morpheus": PolicyMorpheus,
		"offline": PolicyOffline, "optimal": PolicyOptimal, "risc": PolicyRISC,
		string(PolicyMRTS): PolicyMRTS,
	} {
		got, err := ParsePolicy(name)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	_, err := ParsePolicy("nope")
	if err == nil || !strings.Contains(err.Error(), "mrts") {
		t.Errorf("ParsePolicy(nope) error should list valid names, got %v", err)
	}
}

func TestFig2Chart(t *testing.T) {
	var buf bytes.Buffer
	Fig2(expWorkload).RenderChart(&buf)
	out := buf.String()
	if !strings.Contains(out, "Fig. 2 (chart)") || !strings.Contains(out, "ISE-") {
		t.Errorf("Fig. 2 chart incomplete:\n%s", out)
	}
}
