package exp

import (
	"context"
	"runtime"

	"mrts/internal/core"
	"mrts/internal/selector"
)

// workersKey carries a ParMap worker-count override through a context.
type workersKey struct{}

// WithWorkers returns a context that caps the worker pool of every ParMap
// sweep under it at n (n <= 0 restores the GOMAXPROCS default). Figure
// harnesses thread their context into ParMap unchanged, so callers tune
// sweep parallelism without new parameters on every entry point. The
// worker count never affects results — ParMap writes by index — only
// wall-clock and peak memory.
func WithWorkers(ctx context.Context, n int) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, workersKey{}, n)
}

// workersFromContext returns the WithWorkers override, or 0 for default.
func workersFromContext(ctx context.Context) int {
	if ctx == nil {
		return 0
	}
	if n, ok := ctx.Value(workersKey{}).(int); ok && n > 0 {
		return n
	}
	return 0
}

// memoKey carries a shared selection memo through a context.
type memoKey struct{}

// WithSelectionMemo returns a context under which every greedy-selector
// policy built by the figure harnesses (RunPoint, RunPointFaults, the
// tenant sweep's per-tenant instances) gets memo attached via
// (*core.MRTS).SetSharedMemo. One memo may serve many workloads, policies
// and sweep points concurrently: its keys fingerprint the selector's
// entire input surface including block object identity, so entries never
// collide across workloads, and a hit replays exactly the Result the
// selector would compute — simulated timelines stay byte-identical with
// or without the memo. This is the cross-point reuse layer of the batch
// sweep engine (internal/batch).
func WithSelectionMemo(ctx context.Context, memo *selector.Memo) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, memoKey{}, memo)
}

// attachMemo hands the context's shared selection memo (if any) to the
// runtime system (if it accepts one). Policies with a custom selection
// algorithm — the online-optimal yardstick — refuse it themselves.
func attachMemo(ctx context.Context, rts core.RuntimeSystem) {
	if ctx == nil {
		return
	}
	memo, ok := ctx.Value(memoKey{}).(*selector.Memo)
	if !ok || memo == nil {
		return
	}
	if m, ok := rts.(interface {
		SetSharedMemo(*selector.Memo) bool
	}); ok {
		m.SetSharedMemo(memo)
	}
}

// defaultWorkers resolves the effective ParMap worker count for n items:
// the WithWorkers override (GOMAXPROCS otherwise), clamped to n so a
// small sweep never spawns idle goroutines.
func defaultWorkers(ctx context.Context, n int) int {
	workers := workersFromContext(ctx)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}
