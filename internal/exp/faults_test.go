package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"mrts/internal/arch"
	"mrts/internal/fault"
)

// TestZeroFaultIdenticalEveryPolicy is the repo-wide determinism guard
// demanded by the fault subsystem: for every policy, a run with a
// zero-rate fault scenario must produce a report byte-identical (JSON) to
// the plain fault-free run. This pins the property that threading the
// fault engine through arch, reconfig, core and sim changed nothing about
// existing results.
func TestZeroFaultIdenticalEveryPolicy(t *testing.T) {
	ctx := context.Background()
	cfg := arch.Config{NPRC: 2, NCG: 2}
	for _, p := range append([]Policy{PolicyRISC}, Fig8Policies...) {
		p := p
		t.Run(string(p), func(t *testing.T) {
			pc := cfg
			if p == PolicyRISC {
				pc = arch.Config{}
			}
			plain, err := RunPoint(ctx, expWorkload, pc, p)
			if err != nil {
				t.Fatal(err)
			}
			faulted, err := RunPointFaults(ctx, expWorkload, pc, p, 99, fault.Options{})
			if err != nil {
				t.Fatal(err)
			}
			a, _ := json.Marshal(plain)
			b, _ := json.Marshal(faulted)
			if !bytes.Equal(a, b) {
				t.Errorf("zero-fault report differs from plain run:\n%s\n%s", a, b)
			}
		})
	}
}

func TestRunPointFaultsReproducible(t *testing.T) {
	ctx := context.Background()
	cfg := arch.Config{NPRC: 2, NCG: 2}
	fo := fault.Options{FailPRC: 1, FailCG: 1, Horizon: 1_000_000}
	a, err := RunPointFaults(ctx, expWorkload, cfg, PolicyMRTS, 5, fo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPointFaults(ctx, expWorkload, cfg, PolicyMRTS, 5, fo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed and options, different reports")
	}
	if a.Fault.IsZero() {
		t.Error("faulted run reports no fault activity")
	}
}

func TestRunPointFaultsValidates(t *testing.T) {
	// Events without a horizon must be rejected, not silently ignored.
	_, err := RunPointFaults(context.Background(), expWorkload,
		arch.Config{NCG: 1}, PolicyMRTS, 1, fault.Options{FailCG: 1})
	if err == nil {
		t.Fatal("horizon-less fault options accepted")
	}
}

func TestFaultsSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("degradation sweep is expensive")
	}
	ctx := context.Background()
	r, err := Faults(ctx, DirectFaultEvaluator(expWorkload), FaultsConfig, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(FaultsFractions) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(FaultsFractions))
	}

	// Graceful degradation: mRTS slows down monotonically with fabric
	// loss, never aborts, and lands on the RISC reference at 100% loss.
	for i, row := range r.Rows {
		mrts := row.Cycles[PolicyMRTS]
		if mrts == 0 {
			t.Fatalf("row %.0f%%: mRTS run aborted", row.Fraction*100)
		}
		if i > 0 && mrts < r.Rows[i-1].Cycles[PolicyMRTS] {
			t.Errorf("mRTS sped up under more faults: %d at %.0f%% < %d at %.0f%%",
				mrts, row.Fraction*100, r.Rows[i-1].Cycles[PolicyMRTS], r.Rows[i-1].Fraction*100)
		}
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if first.Fraction != 0 || last.Fraction != 1 {
		t.Fatalf("fractions = %v..%v, want 0..1", first.Fraction, last.Fraction)
	}
	// At full loss the run converges to RISC mode: the failures land in
	// the first tenth of the reference time, so early frames still run
	// accelerated, but the bulk executes on the bare core — the total
	// approaches the RISC reference instead of aborting.
	if ratio := float64(last.Cycles[PolicyMRTS]) / float64(r.RISCCycles); ratio < 0.5 || ratio > 1.2 {
		t.Errorf("mRTS at 100%% loss = %.2fx RISC, want near 1 (within [0.5, 1.2])", ratio)
	}
	if last.RISCShare < 0.5 || last.RISCShare <= first.RISCShare {
		t.Errorf("RISC share at 100%% loss = %.2f (vs %.2f healthy), want dominant and growing",
			last.RISCShare, first.RISCShare)
	}
	if last.Cycles[PolicyMRTS] < 2*first.Cycles[PolicyMRTS] {
		t.Errorf("full fabric loss barely hurt: %d vs healthy %d",
			last.Cycles[PolicyMRTS], first.Cycles[PolicyMRTS])
	}
	// The run-time advantage: at partial loss mRTS beats the best static
	// baseline, which cannot re-select over the surviving fabric.
	var anyAdvantage bool
	for _, row := range r.Rows[1 : len(r.Rows)-1] {
		if row.AdvantageStatic > 1.05 {
			anyAdvantage = true
		}
		if row.Reselections == 0 {
			t.Errorf("row %.0f%%: mRTS never re-selected despite failures", row.Fraction*100)
		}
	}
	if !anyAdvantage {
		t.Error("mRTS never beat the static baselines at partial loss")
	}

	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Graceful degradation") || !strings.Contains(out, "100%") {
		t.Errorf("render missing expected content:\n%s", out)
	}
}

func TestValidFig(t *testing.T) {
	for _, name := range FigNames {
		if !ValidFig(name) {
			t.Errorf("ValidFig(%q) = false for a listed figure", name)
		}
	}
	for _, name := range []string{"", "7", "fault", "ALL"} {
		if ValidFig(name) {
			t.Errorf("ValidFig(%q) = true", name)
		}
	}
}
