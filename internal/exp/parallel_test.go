package exp

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestParMapOrderAndBound(t *testing.T) {
	var inFlight, peak atomic.Int64
	out, err := ParMap(context.Background(), 100, func(ctx context.Context, i int) (int, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer inFlight.Add(-1)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if int(peak.Load()) > runtime.GOMAXPROCS(0) {
		t.Errorf("peak concurrency %d above GOMAXPROCS %d", peak.Load(), runtime.GOMAXPROCS(0))
	}
}

func TestParMapFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := ParMap(context.Background(), 1000, func(ctx context.Context, i int) (int, error) {
		calls.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls.Load() >= 1000 {
		t.Error("error did not stop dispatch")
	}
}

// TestParMapCancelMidSweepNoLeak cancels the context while points are in
// flight and asserts every worker goroutine exits: ParMap must return the
// cancellation cause promptly, and the goroutine count must fall back to
// its pre-call baseline.
func TestParMapCancelMidSweepNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancelCause(context.Background())
	cause := errors.New("operator abort")
	started := make(chan struct{}, 1)
	var running atomic.Int64
	done := make(chan error, 1)
	go func() {
		_, err := ParMap(ctx, 10_000, func(ctx context.Context, i int) (int, error) {
			running.Add(1)
			defer running.Add(-1)
			select {
			case started <- struct{}{}:
			default:
			}
			// Simulate a point that honors cancellation, as RunPoint does.
			select {
			case <-ctx.Done():
				return 0, context.Cause(ctx)
			case <-time.After(time.Millisecond):
				return i, nil
			}
		})
		done <- err
	}()

	<-started // at least one point is mid-flight
	cancel(cause)

	select {
	case err := <-done:
		if !errors.Is(err, cause) {
			t.Fatalf("err = %v, want the cancellation cause", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ParMap did not return after cancellation")
	}

	// Every worker must have exited; poll because goroutine teardown is
	// asynchronous after wg.Wait returns.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if running.Load() == 0 && runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running points, %d goroutines (baseline %d)",
				running.Load(), runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestParMapZeroPoints(t *testing.T) {
	out, err := ParMap(context.Background(), 0, func(ctx context.Context, i int) (int, error) {
		t.Error("called for empty input")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

// TestParMapZeroPointsSpawnsNothing pins the n=0 fast path: no worker
// goroutines at all (the old implementation clamped the pool to one).
func TestParMapZeroPointsSpawnsNothing(t *testing.T) {
	runtime.Gosched()
	before := runtime.NumGoroutine()
	for trial := 0; trial < 100; trial++ {
		if _, err := ParMap[int](context.Background(), 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutine count grew from %d to %d on empty sweeps", before, g)
	}
}

// TestParMapWithWorkers pins the WithWorkers override and the n-clamp:
// the pool is exactly min(override, n) goroutines.
func TestParMapWithWorkers(t *testing.T) {
	for _, tc := range []struct{ n, override, wantPool int }{
		{n: 3, override: 8, wantPool: 3}, // clamp to n: no idle workers
		{n: 16, override: 2, wantPool: 2},
	} {
		runtime.Gosched()
		before := runtime.NumGoroutine()

		var running atomic.Int64
		release := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			_, err := ParMap(WithWorkers(context.Background(), tc.override), tc.n,
				func(ctx context.Context, i int) (int, error) {
					running.Add(1)
					defer running.Add(-1)
					<-release
					return i, nil
				})
			done <- err
		}()

		// Wait until the pool is saturated: every worker blocks in f, so
		// the running count equals the pool size.
		deadline := time.Now().Add(5 * time.Second)
		for running.Load() < int64(tc.wantPool) {
			if time.Now().After(deadline) {
				t.Fatalf("n=%d override=%d: only %d workers running, want %d",
					tc.n, tc.override, running.Load(), tc.wantPool)
			}
			time.Sleep(time.Millisecond)
		}
		// Give any excess worker a chance to show up, then assert the
		// pool never exceeded the clamp — neither in f (running) nor as
		// idle goroutines (NumGoroutine: baseline + driver + pool; the
		// dispatcher runs inside the driver goroutine).
		time.Sleep(20 * time.Millisecond)
		if got := running.Load(); got != int64(tc.wantPool) {
			t.Errorf("n=%d override=%d: %d concurrent calls, want exactly %d",
				tc.n, tc.override, got, tc.wantPool)
		}
		if g := runtime.NumGoroutine(); g > before+1+tc.wantPool {
			t.Errorf("n=%d override=%d: %d goroutines (baseline %d): pool larger than %d",
				tc.n, tc.override, g, before, tc.wantPool)
		}
		close(release)
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
