package exp

import (
	"context"
	"io"

	"mrts/internal/arch"
	"mrts/internal/core"
	"mrts/internal/mpu"
	"mrts/internal/obs"
	"mrts/internal/sim"
	"mrts/internal/workload"
)

// PhasePredictors are the MPU predictor kinds the phase sweep compares,
// in presentation order. Back-propagation is the paper's pinned baseline;
// the other two are the phase-aware alternatives it is measured against.
var PhasePredictors = []mpu.Kind{mpu.KindBackProp, mpu.KindPhase, mpu.KindDecay}

// PhaseDivergences are the control-flow divergence levels of the sweep
// (effective values; 0 is the explicitly static workload).
var PhaseDivergences = []float64{0, 0.25, 0.5, 0.75, 1.0}

// PhaseConfig is the default fabric budget of the phase sweep.
var PhaseConfig = arch.Config{NPRC: 2, NCG: 2}

// PhaseRow is one divergence level: every predictor on the same workload.
type PhaseRow struct {
	// Divergence is the effective control-flow divergence of the
	// workload this row ran on.
	Divergence float64
	// RISCCycles is the row's RISC-mode reference.
	RISCCycles arch.Cycles
	// Cycles / SpeedupRISC hold execution time and speedup per predictor
	// kind.
	Cycles      map[mpu.Kind]arch.Cycles
	SpeedupRISC map[mpu.Kind]float64
	// MeanAbsErr is each predictor's mean absolute execution-count
	// forecast error over the scored observations of the run, and
	// Samples the (predictor-independent) number of scored observations.
	MeanAbsErr map[mpu.Kind]float64
	Samples    int64
}

// PhaseResult is the full phase-aware prediction sweep.
type PhaseResult struct {
	Config   arch.Config
	Seed     uint64
	Workload workload.PhasedOptions
	Rows     []PhaseRow
}

// phaseOptions builds the workload options for one divergence level,
// spelling the explicit zero with the negative sentinel.
func phaseOptions(seed uint64, d float64) workload.Options {
	p := workload.PhasedOptions{Divergence: d}
	if d == 0 {
		p.Divergence = -1
	}
	return workload.Options{Seed: seed, Phased: &p}
}

// Phase sweeps MPU predictor kinds over dynamic control-flow workloads of
// increasing divergence (workload.PhasedOptions). Each row builds one
// phased workload, takes a RISC-mode reference, then runs mRTS once per
// predictor kind — identical except for the forecaster — and reports both
// the end-to-end speedup and the mean absolute forecast error the run's
// scored observations accumulated (sim.Report.Forecast).
//
// Expected shape: at zero divergence the predictors tie — the workload is
// static and every forecaster converges. At low-to-high divergence back-
// propagation's single moving average chases regime switches while the
// phase-table and decay predictors track them and hold a lower error,
// which is what buys them their speedup edge on branchy workloads. At
// full divergence the data-dependent noise approaches the regime spacing
// and regime matching loses its edge — no predictor beats the global
// average on white noise.
func Phase(ctx context.Context, wp WorkloadProvider, cfg arch.Config, seed uint64) (PhaseResult, error) {
	if cfg == (arch.Config{}) {
		cfg = PhaseConfig
	}
	res := PhaseResult{Config: cfg, Seed: seed}
	res.Workload = workload.PhasedOptions{}.Canonical()

	rows, err := ParMap(ctx, len(PhaseDivergences), func(ctx context.Context, i int) (PhaseRow, error) {
		d := PhaseDivergences[i]
		row := PhaseRow{
			Divergence:  d,
			Cycles:      map[mpu.Kind]arch.Cycles{},
			SpeedupRISC: map[mpu.Kind]float64{},
			MeanAbsErr:  map[mpu.Kind]float64{},
		}
		w, err := wp(ctx, phaseOptions(seed, d))
		if err != nil {
			return row, err
		}
		risc, err := RunPoint(ctx, w, arch.Config{}, PolicyRISC)
		if err != nil {
			return row, err
		}
		row.RISCCycles = risc.TotalCycles
		for _, k := range PhasePredictors {
			rep, err := runPhasePoint(ctx, w, cfg, k)
			if err != nil {
				return row, err
			}
			row.Cycles[k] = rep.TotalCycles
			row.SpeedupRISC[k] = float64(row.RISCCycles) / float64(rep.TotalCycles)
			row.MeanAbsErr[k] = rep.Forecast.Total.MeanAbsE()
			row.Samples = rep.Forecast.Total.Samples
		}
		return row, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// runPhasePoint runs mRTS with the given predictor kind — the only knob
// that varies within a row.
func runPhasePoint(ctx context.Context, w *workload.Result, cfg arch.Config, k mpu.Kind) (*sim.Report, error) {
	return RunPointPredictor(ctx, w, cfg, k, nil)
}

// RunPointPredictor is RunPoint for mRTS with an explicit MPU predictor
// kind, optionally capturing the decision trace. It is the seam mrts-sim's
// -predictor flag and the phase sweep share; with mpu.KindBackProp it is
// behaviourally identical to RunPoint with PolicyMRTS.
func RunPointPredictor(ctx context.Context, w *workload.Result, cfg arch.Config, k mpu.Kind, rec *obs.Recorder) (*sim.Report, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, context.Cause(ctx)
		}
	}
	rts, err := core.New(cfg, core.Options{
		ChargeOverhead: true,
		MPU:            []mpu.Option{mpu.WithPredictor(k)},
		Name:           "mRTS/" + string(k),
	})
	if err != nil {
		return nil, err
	}
	attachMemo(ctx, rts)
	return sim.RunOpts(w.App, w.Trace, rts, sim.Options{Observer: rec})
}

// Render writes the phase sweep as a text table.
func (r PhaseResult) Render(w io.Writer) {
	fprintf(w, "Phase-aware prediction on dynamic control-flow workloads (config %s, seed %d)\n", r.Config, r.Seed)
	fprintf(w, "Workload: %d blocks x %d kernels, %d rounds, %d regimes; divergence scales regime\n",
		r.Workload.Blocks, r.Workload.Kernels, r.Workload.Rounds, r.Workload.Phases)
	fprintf(w, "switches, count noise and mid-iteration shifts. err = mean |forecast - observed| executions.\n\n")
	fprintf(w, "%-6s %-8s", "diverg", "samples")
	for _, k := range PhasePredictors {
		fprintf(w, " %9s %8s", k, "err")
	}
	fprintf(w, "\n")
	for _, row := range r.Rows {
		fprintf(w, "%5.2f  %-8d", row.Divergence, row.Samples)
		for _, k := range PhasePredictors {
			fprintf(w, " %8.2fx %8.1f", row.SpeedupRISC[k], row.MeanAbsErr[k])
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\n(speedups vs the row's RISC-mode reference; every mRTS column differs only in the MPU\n")
	fprintf(w, " forecaster — back-propagation is the paper's baseline.)\n")
}
