package exp

import (
	"context"
	"fmt"
	"io"

	"mrts/internal/arch"
	"mrts/internal/core"
	"mrts/internal/vfabric"
	"mrts/internal/workload"
)

// TenantMixes are the tenant-population scenarios of the tenant sweep, in
// presentation order. Tenant 0 always runs the base workload, so a K=1
// sweep point is the single-application configuration of the Fig. 8
// pipeline under every mix.
//
//   - uniform: every tenant encodes a full-length sequence of its own
//     content (per-tenant seeds), equal weights.
//   - skewed: tenants 1..K-1 encode half-length sequences — they finish
//     early and the migrating hypervisor reclaims their containers for
//     the straggler.
//   - priority: uniform content with weight tiers 4/2/1/1/...; the
//     hypervisor hands the high-priority tenants proportionally more
//     fabric.
var TenantMixes = []string{"uniform", "skewed", "priority"}

// ValidMix reports whether name is a known tenant mix.
func ValidMix(name string) bool {
	for _, m := range TenantMixes {
		if name == m {
			return true
		}
	}
	return false
}

// TenantWorkload returns tenant i's workload options and weight under the
// mix. Tenant 0 is always the base options with weight per the mix tier.
func TenantWorkload(base workload.Options, i int, mix string) (workload.Options, int, error) {
	opts := base.Canonical()
	weight := 1
	switch mix {
	case "uniform":
	case "skewed":
		if i > 0 {
			opts.Frames = max(2, opts.Frames/2)
		}
	case "priority":
		switch i {
		case 0:
			weight = 4
		case 1:
			weight = 2
		}
	default:
		return opts, 0, fmt.Errorf("exp: unknown tenant mix %q", mix)
	}
	if i > 0 {
		opts.Seed = opts.Seed + uint64(i)
		opts.ProfileSeed = opts.Seed + 1000
	}
	return opts.Canonical(), weight, nil
}

// WorkloadProvider resolves workload options to a built workload — the
// seam through which the service's singleflight workload cache serves
// tenant sweeps. DirectWorkloads builds uncached.
type WorkloadProvider func(ctx context.Context, opts workload.Options) (*workload.Result, error)

// DirectWorkloads is the uncached WorkloadProvider the CLIs use.
func DirectWorkloads() WorkloadProvider {
	return func(_ context.Context, opts workload.Options) (*workload.Result, error) {
		return workload.Build(opts)
	}
}

// TenantsRow is one tenant count of the sweep: both arbitration modes on
// the same tenant set.
type TenantsRow struct {
	K int
	// Makespan is the completion time of the slowest tenant.
	StaticMakespan    arch.Cycles
	MigratingMakespan arch.Cycles
	// AggSpeedup is the aggregate speedup over all-software execution:
	// the summed RISC-mode times of every tenant divided by the summed
	// achieved times.
	StaticAggSpeedup    float64
	MigratingAggSpeedup float64
	// Fairness is Jain's index over the tenants' weight-normalised
	// speedups (1.0 = perfectly weighted-fair).
	StaticFairness    float64
	MigratingFairness float64
	// Repartitions / Migrations count the migrating hypervisor's epoch
	// activity (always zero for the static half).
	Repartitions int64
	Migrations   int64
}

// TenantsResult is the full tenant sweep.
type TenantsResult struct {
	Physical arch.Config
	Mix      string
	Rows     []TenantsRow
}

// Tenants sweeps the tenant count K = 1..maxK under the mix: for every K
// the same tenant set runs once under a static partition and once under
// the migrating hypervisor, every tenant an independent mRTS instance.
// The K=1 point is a single application owning the whole fabric — byte-
// identical to the Fig. 8 pipeline's mRTS run, pinned by tests.
func Tenants(ctx context.Context, wp WorkloadProvider, base workload.Options, phys arch.Config, maxK int, mix string) (TenantsResult, error) {
	res := TenantsResult{Physical: phys, Mix: mix}
	if maxK < 1 {
		return res, fmt.Errorf("exp: tenant sweep needs maxK >= 1, got %d", maxK)
	}
	if !ValidMix(mix) {
		return res, fmt.Errorf("exp: unknown tenant mix %q", mix)
	}

	// Build every tenant's workload and RISC-mode reference once, shared
	// read-only across the K rows.
	type tenantIn struct {
		w      *workload.Result
		weight int
		risc   arch.Cycles
	}
	ins := make([]tenantIn, maxK)
	for i := range ins {
		opts, weight, err := TenantWorkload(base, i, mix)
		if err != nil {
			return res, err
		}
		w, err := wp(ctx, opts)
		if err != nil {
			return res, fmt.Errorf("exp: tenant %d workload: %w", i, err)
		}
		ref, err := RunPoint(ctx, w, arch.Config{}, PolicyRISC)
		if err != nil {
			return res, fmt.Errorf("exp: tenant %d RISC reference: %w", i, err)
		}
		ins[i] = tenantIn{w: w, weight: weight, risc: ref.TotalCycles}
	}

	tenantsFor := func(k int) []vfabric.Tenant {
		out := make([]vfabric.Tenant, k)
		for i := 0; i < k; i++ {
			w := ins[i].w
			out[i] = vfabric.Tenant{
				App:    w.App,
				Trace:  w.Trace,
				Weight: ins[i].weight,
				Build: func(cfg arch.Config) (core.RuntimeSystem, error) {
					rts, err := NewPolicy(PolicyMRTS, cfg, w.App, w.Trace)
					if err == nil {
						// Tenant instances share the sweep's cross-point
						// memo too: entries key on block object identity,
						// so distinct tenant workloads never collide.
						attachMemo(ctx, rts)
					}
					return rts, err
				},
			}
		}
		return out
	}

	rows, err := ParMap(ctx, maxK, func(ctx context.Context, i int) (TenantsRow, error) {
		k := i + 1
		if err := ctx.Err(); err != nil {
			return TenantsRow{}, context.Cause(ctx)
		}
		st, err := vfabric.Run(tenantsFor(k), vfabric.Options{Physical: phys})
		if err != nil {
			return TenantsRow{}, fmt.Errorf("exp: K=%d static: %w", k, err)
		}
		mg, err := vfabric.Run(tenantsFor(k), vfabric.Options{Physical: phys, Migrate: true})
		if err != nil {
			return TenantsRow{}, fmt.Errorf("exp: K=%d migrating: %w", k, err)
		}
		row := TenantsRow{
			K:                 k,
			StaticMakespan:    st.Makespan,
			MigratingMakespan: mg.Makespan,
			Repartitions:      mg.Repartitions,
			Migrations:        mg.Migrations,
		}
		risc := make([]arch.Cycles, k)
		weights := make([]int, k)
		for j := 0; j < k; j++ {
			risc[j] = ins[j].risc
			weights[j] = ins[j].weight
		}
		row.StaticAggSpeedup, row.StaticFairness = tenantScores(st, risc, weights)
		row.MigratingAggSpeedup, row.MigratingFairness = tenantScores(mg, risc, weights)
		return row, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// tenantScores folds a hypervisor report into the sweep's two quality
// columns: aggregate speedup over all-software execution (summed RISC
// times over summed achieved times) and Jain fairness of the
// weight-normalised per-tenant speedups.
func tenantScores(rep *vfabric.Report, risc []arch.Cycles, weights []int) (agg, fair float64) {
	var riscSum, gotSum float64
	xs := make([]float64, 0, len(rep.Tenants))
	for i, tr := range rep.Tenants {
		got := float64(tr.Report.TotalCycles)
		rc := float64(risc[i])
		riscSum += rc
		gotSum += got
		xs = append(xs, (rc/got)/float64(weights[i]))
	}
	if gotSum > 0 {
		agg = riscSum / gotSum
	}
	return agg, jain(xs)
}

// jain is Jain's fairness index: (Σx)² / (n·Σx²), 1.0 when all equal.
func jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Render writes the sweep as a text table.
func (r TenantsResult) Render(w io.Writer) {
	fprintf(w, "Tenant sweep: static partition vs migrating hypervisor (mix=%s, fabric %d/%d)\n",
		r.Mix, r.Physical.NPRC, r.Physical.NCG)
	fprintf(w, "%-3s %14s %14s | %9s %9s | %9s %9s | %7s %7s\n",
		"K", "static Mcyc", "migrate Mcyc",
		"agg-spd", "agg-spd", "fairness", "fairness", "repart", "paths")
	fprintf(w, "%-3s %14s %14s | %9s %9s | %9s %9s | %7s %7s\n",
		"", "(makespan)", "(makespan)",
		"static", "migrate", "static", "migrate", "", "moved")
	for _, row := range r.Rows {
		fprintf(w, "%-3d %14.2f %14.2f | %9.2f %9.2f | %9.3f %9.3f | %7d %7d\n",
			row.K,
			row.StaticMakespan.MCycles(), row.MigratingMakespan.MCycles(),
			row.StaticAggSpeedup, row.MigratingAggSpeedup,
			row.StaticFairness, row.MigratingFairness,
			row.Repartitions, row.Migrations)
	}
}
