package exp

import (
	"context"
	"io"

	"mrts/internal/arch"
	"mrts/internal/stats"
)

// Fig9Row is one fabric combination of the heuristic-vs-optimal comparison
// (paper Fig. 9).
type Fig9Row struct {
	Config arch.Config
	// HeuristicCycles / OptimalCycles are the execution times under the
	// greedy ISE selection algorithm and the exhaustive optimal one.
	HeuristicCycles arch.Cycles
	OptimalCycles   arch.Cycles
	// DiffPercent is the percentage difference between the performance
	// improvements (over RISC mode) of the two algorithms.
	DiffPercent float64
}

// Fig9Result is the full comparison.
type Fig9Result struct {
	Rows []Fig9Row
	// Avg/Worst aggregate the percentage differences.
	Avg   float64
	Worst float64
	// WorstConfig is the combination with the largest difference.
	WorstConfig arch.Config
}

// Fig9 reproduces the ISE-selection-algorithm quality analysis (paper
// Fig. 9): the percentage difference between the performance improvement of
// the optimal run-time selection and the greedy heuristic, per fabric
// combination. The paper reports differences within ~3% whenever at least
// one CG-fabric is available, and a worst case of ~11% on a PRC-only
// combination, where the heuristic gives most PRCs to one kernel while the
// optimal algorithm splits them between the two most important kernels.
func Fig9(ctx context.Context, eval Evaluator, maxPRC, maxCG int) (Fig9Result, error) {
	var res Fig9Result
	risc, err := eval(ctx, arch.Config{}, PolicyRISC)
	if err != nil {
		return res, err
	}
	combos := Combos(maxPRC, maxCG, false)
	rows, err := ParMap(ctx, len(combos), func(ctx context.Context, i int) (Fig9Row, error) {
		cfg := combos[i]
		row := Fig9Row{Config: cfg}
		heur, err := eval(ctx, cfg, PolicyMRTS)
		if err != nil {
			return row, err
		}
		opt, err := eval(ctx, cfg, PolicyOptimal)
		if err != nil {
			return row, err
		}
		impH := float64(risc.TotalCycles - heur.TotalCycles)
		impO := float64(risc.TotalCycles - opt.TotalCycles)
		d := stats.PercentDiff(impO, impH)
		if d < 0 {
			// The heuristic occasionally beats the "optimal"
			// algorithm on the real timeline, because both optimise
			// the profit estimate, not the simulated future.
			d = 0
		}
		row.HeuristicCycles = heur.TotalCycles
		row.OptimalCycles = opt.TotalCycles
		row.DiffPercent = d
		return row, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	var diffs []float64
	for _, row := range rows {
		diffs = append(diffs, row.DiffPercent)
		if row.DiffPercent > res.Worst {
			res.Worst = row.DiffPercent
			res.WorstConfig = row.Config
		}
	}
	res.Avg = stats.Mean(diffs)
	return res, nil
}

// Render writes the comparison as a text table.
func (r Fig9Result) Render(w io.Writer) {
	fprintf(w, "Fig. 9: ISE selection algorithm vs. optimal (run-time) algorithm\n")
	fprintf(w, "%-6s %14s %14s %10s\n", "P/C", "heuristic (M)", "optimal (M)", "diff %")
	for _, row := range r.Rows {
		fprintf(w, "%d/%-4d %14.2f %14.2f %10.2f\n",
			row.Config.NPRC, row.Config.NCG,
			row.HeuristicCycles.MCycles(), row.OptimalCycles.MCycles(), row.DiffPercent)
	}
	fprintf(w, "\naverage difference %.2f%%, worst %.2f%% at combination %d PRC / %d CG (paper: worst ~11%% at a PRC-only combination)\n",
		r.Avg, r.Worst, r.WorstConfig.NPRC, r.WorstConfig.NCG)
}
