package exp

import (
	"context"
	"sync"
)

// ParMap evaluates f(ctx, 0..n-1) concurrently (bounded by the WithWorkers
// override, GOMAXPROCS by default, and never exceeding n — a small sweep
// spawns no idle goroutines, and n <= 0 spawns none at all) and returns
// the results in index order, in a pre-sized output slice. The first error
// wins: no further indices are dispatched after it, the context passed to
// in-flight calls is cancelled so they can bail out early, and the
// remaining workers are still awaited. Cancelling ctx has the same effect
// and surfaces its cause. Simulation runs are independent — each builds
// its own runtime system and only reads the shared workload — so the
// fabric sweeps parallelise over combinations.
func ParMap[T any](ctx context.Context, n int, f func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		if err := ctx.Err(); err != nil {
			return nil, context.Cause(ctx)
		}
		return make([]T, 0), nil
	}
	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	out := make([]T, n)
	workers := defaultWorkers(ctx, n)
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				v, err := f(ctx, i)
				if err != nil {
					// The first cancel records its cause; later
					// failures (typically context.Canceled echoes
					// from aborted siblings) are no-ops.
					cancel(err)
					continue
				}
				out[i] = v
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	if ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}
	return out, nil
}
