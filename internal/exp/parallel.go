package exp

import (
	"runtime"
	"sync"
)

// parMap evaluates f(0..n-1) concurrently (bounded by GOMAXPROCS) and
// returns the results in index order. The first error wins; remaining
// results are still awaited. Simulation runs are independent — each builds
// its own runtime system and only reads the shared workload — so the
// fabric sweeps parallelise over combinations.
func parMap[T any](n int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
