package exp

import (
	"fmt"
	"io"
	"strings"

	"mrts/internal/arch"
)

// ASCII chart rendering: the experiment results can be printed as terminal
// charts that mirror the paper's figures — bar groups per fabric
// combination for Fig. 8/10, a multi-series line chart for Fig. 1.

const barGlyph = "#"

// bar renders a single horizontal bar scaled to max over width cells.
func bar(value, max float64, width int) string {
	if max <= 0 || value < 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	if n < 1 && value > 0 {
		n = 1
	}
	return strings.Repeat(barGlyph, n)
}

// RenderChart prints the Fig. 8 comparison as grouped horizontal bars
// (execution time per policy, one group per fabric combination), mirroring
// the paper's figure.
func (r Fig8Result) RenderChart(w io.Writer) {
	fprintf(w, "Fig. 8 (chart): execution time by policy, grouped by PRC/CG combination\n")
	max := float64(r.RISCCycles)
	fprintf(w, "%-6s %-9s %-*s\n", "0/0", "RISC", 40, bar(max, max, 40)+fmt.Sprintf(" %.1fM", r.RISCCycles.MCycles()))
	for _, row := range r.Rows {
		for i, p := range Fig8Policies {
			label := ""
			if i == 0 {
				label = fmt.Sprintf("%d/%d", row.Config.NPRC, row.Config.NCG)
			}
			c := row.Cycles[p]
			fprintf(w, "%-6s %-9s %s %.1fM\n", label, shortPolicy(p), bar(float64(c), max, 40), c.MCycles())
		}
		fprintf(w, "\n")
	}
}

// RenderChart prints the Fig. 10 speedups as one bar per combination,
// grouped by fabric class the way the paper sorts its x-axis.
func (r Fig10Result) RenderChart(w io.Writer) {
	fprintf(w, "Fig. 10 (chart): mRTS speedup over RISC mode\n")
	var max float64
	for _, row := range r.Rows {
		if row.Speedup > max {
			max = row.Speedup
		}
	}
	for _, class := range []arch.Grain{arch.GrainFG, arch.GrainCG, arch.GrainMG} {
		fprintf(w, "%s:\n", class)
		for _, row := range r.Rows {
			if row.Class != class {
				continue
			}
			fprintf(w, "  %d/%-3d %s %.2fx\n",
				row.Config.NPRC, row.Config.NCG, bar(row.Speedup, max, 40), row.Speedup)
		}
	}
	fprintf(w, "average %.2fx\n", r.Avg)
}

// RenderChart prints the Fig. 1 pif curves as an ASCII line chart: one
// column per sampled execution count, one glyph per ISE.
func (r Fig1Result) RenderChart(w io.Writer) {
	if len(r.Rows) == 0 {
		return
	}
	const height = 16
	glyphs := [3]byte{'1', '2', '3'}
	var max float64
	for _, row := range r.Rows {
		for _, v := range row.PIF {
			if v > max {
				max = v
			}
		}
	}
	if max <= 0 {
		return
	}
	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", len(r.Rows)))
	}
	for x, row := range r.Rows {
		for i, v := range row.PIF {
			y := height - 1 - int(v/max*float64(height-1))
			if y < 0 {
				y = 0
			}
			if y >= height {
				y = height - 1
			}
			grid[y][x] = glyphs[i]
		}
	}
	fprintf(w, "Fig. 1 (chart): pif of ISE-1 (FG), ISE-2 (CG), ISE-3 (MG); y max %.1f\n", max)
	for _, line := range grid {
		fprintf(w, "|%s\n", string(line))
	}
	fprintf(w, "+%s\n", strings.Repeat("-", len(r.Rows)))
	fprintf(w, " executions %d..%d (crossovers at %v)\n",
		r.Rows[0].Executions, r.Rows[len(r.Rows)-1].Executions, r.Crossovers)
}

func shortPolicy(p Policy) string {
	switch p {
	case PolicyRISPP:
		return "RISPP"
	case PolicyOffline:
		return "Offline"
	case PolicyMorpheus:
		return "Morph+4S"
	case PolicyMRTS:
		return "mRTS"
	default:
		return string(p)
	}
}

// RenderChart prints the Fig. 2 series as one bar per frame, annotated
// with the pif-best case-study ISE — the paper's visual argument that the
// best ISE changes at run time.
func (r Fig2Result) RenderChart(w io.Writer) {
	fprintf(w, "Fig. 2 (chart): deblocking-filter executions per frame (best ISE annotated)\n")
	var max float64
	for _, row := range r.Rows {
		if float64(row.Executions) > max {
			max = float64(row.Executions)
		}
	}
	for _, row := range r.Rows {
		fprintf(w, "frame %2d %s %d (ISE-%d)\n",
			row.Frame, bar(float64(row.Executions), max, 36), row.Executions, row.BestISE)
	}
	fprintf(w, "best-ISE changes: %d\n", r.Changes)
}
