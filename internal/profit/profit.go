// Package profit implements the mRTS profit function (paper Eqs. 1-4):
// the expected number of executions of each intermediate ISE (NoE, Eq. 3),
// the performance improvement each of them contributes (per_imp, Eq. 2),
// the total expected profit of an ISE (Eq. 4) and the Performance
// Improvement Factor (pif, Eq. 1) used by the motivational case study.
//
// The package also provides the RISPP-style cost model used by the
// RISPP-like baseline: a profit function tuned to the millisecond-range
// reconfiguration times of the fine-grained fabric, which therefore
// mis-costs coarse-grained data paths (paper Section 1).
package profit

import (
	"mrts/internal/arch"
	"mrts/internal/ise"
)

// Params carries the per-kernel forecast of a trigger instruction that the
// profit function consumes: the expected number of executions e, the time
// until the first execution tf, and the average time between two
// consecutive executions tb.
type Params struct {
	E  int64
	TF arch.Cycles
	TB arch.Cycles
}

// ParamsFromTrigger extracts the profit inputs from a trigger.
func ParamsFromTrigger(t ise.Trigger) Params {
	return Params{E: t.E, TF: t.TF, TB: t.TB}
}

// Model selects the cost model used to estimate reconfiguration times.
type Model int

const (
	// Multigrained is the mRTS profit function: each data path is costed
	// with the reconfiguration latency of its own fabric.
	Multigrained Model = iota
	// FGTuned is the RISPP-like cost model: every data path is costed as
	// if it reconfigured on the fine-grained fabric. This reproduces the
	// baseline's inefficiency on coarse-grained data paths.
	FGTuned
	// PortBlind is the Multigrained model without configuration-port
	// awareness: reconfiguration estimates assume an idle port, as the
	// paper's original profit function does. An ablation model
	// (BenchmarkAblationPortBlindProfit) quantifying what the port-aware
	// estimate contributes.
	PortBlind
)

// PIF computes the Performance Improvement Factor of an ISE (Eq. 1):
//
//	pif = sw_time*executions / (reconfiguration_latency + hw_time*executions)
//
// sw_time is the kernel's RISC-mode latency, hw_time the latency of the
// fully reconfigured ISE, and the reconfiguration latency is the total for
// all data paths from scratch. Used by the Fig. 1 case study.
func PIF(k *ise.Kernel, e *ise.ISE, executions int64) float64 {
	if executions <= 0 {
		return 0
	}
	sw := float64(k.RISCLatency) * float64(executions)
	hw := float64(e.TotalReconfigCycles()) + float64(e.FullLatency())*float64(executions)
	if hw <= 0 {
		return 0
	}
	return sw / hw
}

// RecT returns the effective cumulative reconfiguration times of the
// intermediate ISEs under the given fabric state and cost model:
// RecT[i] is the time until data paths 1..i are available, for i = 0..n.
// Data paths that are already configured (e.g. shared with a previously
// selected ISE) cost nothing. Each fabric reconfigures through its own
// serial configuration port; if the fabric view reports a port backlog
// (ise.PortView), new reconfigurations queue behind it.
func RecT(e *ise.ISE, fab ise.FabricView, m Model) []arch.Cycles {
	return AppendRecT(make([]arch.Cycles, 0, e.NumDataPaths()+1), e, fab, m)
}

// AppendRecT is RecT appending into dst (usually a reused scratch buffer
// sliced to length zero) instead of allocating: after the call,
// dst[len0+i] is the time until data paths 1..i are available, i = 0..n.
// The selector's inner loop uses it to evaluate profits without per-call
// allocations.
func AppendRecT(dst []arch.Cycles, e *ise.ISE, fab ise.FabricView, m Model) []arch.Cycles {
	dst = append(dst, 0)
	var fgT, cgT arch.Cycles
	if pv, ok := fab.(ise.PortView); ok && m != PortBlind {
		fgT = pv.PortBacklog(arch.FG)
		cgT = pv.PortBacklog(arch.CG)
	}
	var avail arch.Cycles
	for _, d := range e.DataPaths {
		if fab == nil || !fab.IsConfigured(d.ID) {
			dur := dataPathReconfig(d, m)
			kind := d.Kind
			if m == FGTuned {
				// The RISPP cost model charges everything to the
				// (single) fine-grained configuration port.
				kind = arch.FG
			}
			var ready arch.Cycles
			if kind == arch.FG {
				fgT += dur
				ready = fgT
			} else {
				cgT += dur
				ready = cgT
			}
			if ready > avail {
				avail = ready
			}
		}
		dst = append(dst, avail)
	}
	return dst
}

func dataPathReconfig(d ise.DataPath, m Model) arch.Cycles {
	if m == FGTuned {
		// The RISPP cost model assumes FPGA-class reconfiguration
		// latency for every data path.
		n := d.PRCs + d.CGs
		if n < 1 {
			n = 1
		}
		return arch.FGReconfigCycles * arch.Cycles(n)
	}
	return d.ReconfigCycles()
}

// NoE returns the expected number of executions of each intermediate ISE
// (Eq. 3): NoE[i-1] corresponds to intermediate ISE i, for i = 1..n-1.
// The i-th intermediate ISE is executed from the moment it is available
// (but not before tf) until the (i+1)-th becomes available; each execution
// occupies latency(ISE_i) + tb cycles of the schedule.
//
// The returned values are clamped so that their running sum never exceeds
// the total expected executions p.E after accounting for the RISC-mode
// executions that happen before the first intermediate ISE is ready.
func NoE(e *ise.ISE, k *ise.Kernel, fab ise.FabricView, p Params, m Model) []float64 {
	n := e.NumDataPaths()
	if n <= 1 {
		return nil
	}
	rec := RecT(e, fab, m)
	return AppendNoE(make([]float64, 0, n-1), e, k, rec, p)
}

// AppendNoE is NoE appending into dst instead of allocating, given the
// cumulative reconfiguration times rec already produced by RecT/AppendRecT
// for the same ISE. It appends exactly NumDataPaths()-1 values (none when
// the ISE has a single data path).
func AppendNoE(dst []float64, e *ise.ISE, k *ise.Kernel, rec []arch.Cycles, p Params) []float64 {
	n := e.NumDataPaths()
	if n <= 1 {
		return dst
	}
	len0 := len(dst)
	for i := 1; i < n; i++ {
		dst = append(dst, 0)
	}
	if p.E <= 0 {
		return dst
	}
	out := dst[len0:]
	// Executions consumed in RISC mode before intermediate ISE 1 exists.
	budget := float64(p.E) - riscModeExecutions(k, rec[1], p)
	if budget < 0 {
		budget = 0
	}
	for i := 1; i < n; i++ {
		start := rec[i]
		if p.TF > start {
			start = p.TF
		}
		window := rec[i+1] - start
		if window <= 0 {
			continue
		}
		per := float64(e.Latency(i)) + float64(p.TB)
		if per <= 0 {
			per = 1
		}
		v := float64(window) / per
		if v > budget {
			v = budget
		}
		out[i-1] = v
		budget -= v
	}
	return dst
}

// riscModeExecutions estimates NoE_RM of Fig. 5: the executions performed
// in RISC mode before the first intermediate ISE is available.
func riscModeExecutions(k *ise.Kernel, firstReady arch.Cycles, p Params) float64 {
	window := firstReady - p.TF
	if window <= 0 {
		return 0
	}
	per := float64(k.RISCLatency) + float64(p.TB)
	if per <= 0 {
		per = 1
	}
	v := float64(window) / per
	if v > float64(p.E) {
		v = float64(p.E)
	}
	return v
}

// Profit computes the total expected profit of an ISE (Eq. 4): the sum of
// the performance improvements (cycles saved versus RISC mode, Eq. 2) of
// its intermediate ISEs plus that of the fully reconfigured ISE, whose
// execution count is the forecast total e minus the executions already
// absorbed by RISC mode and the intermediate ISEs.
//
// fab supplies already-configured (shared) data paths and may be nil.
func Profit(k *ise.Kernel, e *ise.ISE, fab ise.FabricView, p Params, m Model) float64 {
	n := e.NumDataPaths()
	s := Scratch{rec: make([]arch.Cycles, 0, n+1), noe: make([]float64, 0, max(n-1, 0))}
	return s.Profit(k, e, fab, p, m)
}

// Scratch holds reusable buffers for repeated profit evaluations so that
// hot loops (the selector's greedy rounds, branch-and-bound walks) can
// compute profits without per-call allocations. The zero value is ready to
// use; buffers grow to the largest ISE seen and are then reused.
type Scratch struct {
	rec []arch.Cycles
	noe []float64
}

// Profit is profit.Profit evaluated on the scratch buffers. It returns
// exactly the same value as the package-level function.
func (s *Scratch) Profit(k *ise.Kernel, e *ise.ISE, fab ise.FabricView, p Params, m Model) float64 {
	if p.E <= 0 {
		return 0
	}
	n := e.NumDataPaths()
	s.rec = AppendRecT(s.rec[:0], e, fab, m)
	s.noe = AppendNoE(s.noe[:0], e, k, s.rec, p)
	rec, noe := s.rec, s.noe

	var total, used float64
	for i := 1; i < n; i++ {
		imp := float64(k.RISCLatency) - float64(e.Latency(i))
		if imp < 0 {
			imp = 0
		}
		total += noe[i-1] * imp
		used += noe[i-1]
	}
	used += riscModeExecutions(k, rec[1], p)
	rem := float64(p.E) - used
	if rem < 0 {
		rem = 0
	}
	impFull := float64(k.RISCLatency) - float64(e.FullLatency())
	if impFull < 0 {
		impFull = 0
	}
	total += rem * impFull
	return total
}

// MonoCGProfit computes the expected profit of executing the kernel's
// monoCG-Extension for all e executions. The ECU uses monoCG only to bridge
// reconfiguration delays; the selector never selects it, but baselines and
// ablations use this estimate.
func MonoCGProfit(k *ise.Kernel, p Params) float64 {
	if !k.MonoCG.Available() || p.E <= 0 {
		return 0
	}
	imp := float64(k.RISCLatency) - float64(k.MonoCG.Latency)
	if imp <= 0 {
		return 0
	}
	// The context streams in within microseconds; executions before that
	// moment run in RISC mode.
	rm := riscModeExecutions(k, k.MonoCG.ReconfigCycles(), p)
	return (float64(p.E) - rm) * imp
}

// SteadyStateProfit is the profit of an ISE ignoring reconfiguration
// transients: e executions, each saving RISC - full latency. It upper-bounds
// Profit and is used for branch-and-bound pruning and offline selection
// over aggregated traces.
func SteadyStateProfit(k *ise.Kernel, e *ise.ISE, executions int64) float64 {
	if executions <= 0 {
		return 0
	}
	imp := float64(k.RISCLatency) - float64(e.FullLatency())
	if imp < 0 {
		imp = 0
	}
	return imp * float64(executions)
}
