package profit

import (
	"testing"

	"mrts/internal/arch"
	"mrts/internal/ise"
)

// scratchCases spans the input surface of the profit kernels: every model,
// a nil fabric, shared (pre-configured) data paths and port backlogs.
func scratchCases() []struct {
	name string
	fab  ise.FabricView
	m    Model
} {
	return []struct {
		name string
		fab  ise.FabricView
		m    Model
	}{
		{"nil-multigrained", nil, Multigrained},
		{"nil-fgtuned", nil, FGTuned},
		{"nil-portblind", nil, PortBlind},
		{"shared", configuredFabric{"a": true}, Multigrained},
		{"backlogged", backloggedFabric{configuredFabric: configuredFabric{}, fg: 900, cg: 40}, Multigrained},
		{"backlogged-fgtuned", backloggedFabric{configuredFabric: configuredFabric{"c": true}, fg: 900, cg: 40}, FGTuned},
		{"backlogged-portblind", backloggedFabric{configuredFabric: configuredFabric{}, fg: 900, cg: 40}, PortBlind},
	}
}

// TestAppendRecTMatchesRecT pins the append-into API to the allocating
// one, including when dst already carries a prefix that must survive.
func TestAppendRecTMatchesRecT(t *testing.T) {
	k := testKernel()
	for _, tc := range scratchCases() {
		for _, e := range k.ISEs {
			want := RecT(e, tc.fab, tc.m)
			got := AppendRecT(nil, e, tc.fab, tc.m)
			if len(got) != len(want) {
				t.Fatalf("%s/%s: AppendRecT len = %d, want %d", tc.name, e.ID, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s/%s: AppendRecT[%d] = %d, want %d", tc.name, e.ID, i, got[i], want[i])
				}
			}
			prefix := []arch.Cycles{7, 8}
			got2 := AppendRecT(prefix, e, tc.fab, tc.m)
			if got2[0] != 7 || got2[1] != 8 {
				t.Errorf("%s/%s: AppendRecT clobbered the dst prefix", tc.name, e.ID)
			}
			for i := range want {
				if got2[2+i] != want[i] {
					t.Errorf("%s/%s: AppendRecT with prefix [%d] = %d, want %d", tc.name, e.ID, i, got2[2+i], want[i])
				}
			}
		}
	}
}

// TestAppendNoEMatchesNoE pins AppendNoE to NoE for every ISE and case.
func TestAppendNoEMatchesNoE(t *testing.T) {
	k := testKernel()
	params := []Params{
		{E: 500, TF: 100, TB: 60},
		{E: 0, TF: 0, TB: 0},
		{E: 3, TF: 5000, TB: 1},
	}
	for _, tc := range scratchCases() {
		for _, e := range k.ISEs {
			for _, p := range params {
				want := NoE(e, k, tc.fab, p, tc.m)
				rec := AppendRecT(nil, e, tc.fab, tc.m)
				got := AppendNoE(nil, e, k, rec, p)
				if len(got) != len(want) {
					t.Fatalf("%s/%s: AppendNoE len = %d, want %d", tc.name, e.ID, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("%s/%s: AppendNoE[%d] = %v, want %v", tc.name, e.ID, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestScratchProfitMatchesProfit pins the scratch-buffer evaluation to the
// package-level function bit-for-bit, across repeated reuse of the same
// scratch (the selector's usage pattern).
func TestScratchProfitMatchesProfit(t *testing.T) {
	k := testKernel()
	p := Params{E: 500, TF: 100, TB: 60}
	var s Scratch
	for round := 0; round < 3; round++ {
		for _, tc := range scratchCases() {
			for _, e := range k.ISEs {
				want := Profit(k, e, tc.fab, p, tc.m)
				got := s.Profit(k, e, tc.fab, p, tc.m)
				if got != want {
					t.Errorf("round %d %s/%s: Scratch.Profit = %v, want %v", round, tc.name, e.ID, got, want)
				}
			}
		}
	}
}

// TestScratchProfitNoAllocs asserts the selector's hot path allocates
// nothing once the scratch buffers are warm.
func TestScratchProfitNoAllocs(t *testing.T) {
	k := testKernel()
	e := k.ISEs[0]
	p := Params{E: 500, TF: 100, TB: 60}
	var s Scratch
	s.Profit(k, e, nil, p, Multigrained) // warm the buffers
	allocs := testing.AllocsPerRun(100, func() {
		s.Profit(k, e, nil, p, Multigrained)
	})
	if allocs != 0 {
		t.Errorf("Scratch.Profit allocates %v per run, want 0", allocs)
	}
}
