package profit_test

import (
	"fmt"

	"mrts/internal/arch"
	"mrts/internal/ise"
	"mrts/internal/profit"
)

// ExamplePIF reproduces the motivational observation of the paper's case
// study: a coarse-grained ISE dominates for few kernel executions, a
// fine-grained one once its millisecond reconfiguration amortises.
func ExamplePIF() {
	kernel := &ise.Kernel{ID: "k", RISCLatency: 2000}
	fgISE := &ise.ISE{
		ID: "k.fg", Kernel: "k",
		DataPaths: []ise.DataPath{{ID: "fg", Kind: arch.FG, PRCs: 1}},
		Latencies: []arch.Cycles{255},
	}
	cgISE := &ise.ISE{
		ID: "k.cg", Kernel: "k",
		DataPaths: []ise.DataPath{{ID: "cg", Kind: arch.CG, CGs: 1}},
		Latencies: []arch.Cycles{375},
	}
	for _, e := range []int64{100, 50000} {
		fg := profit.PIF(kernel, fgISE, e)
		cg := profit.PIF(kernel, cgISE, e)
		winner := "CG"
		if fg > cg {
			winner = "FG"
		}
		fmt.Printf("%d executions: %s wins\n", e, winner)
	}
	// Output:
	// 100 executions: CG wins
	// 50000 executions: FG wins
}

// ExampleProfit shows the expected profit (cycles saved) of an ISE under a
// trigger forecast; the reconfiguration transient is part of the estimate.
func ExampleProfit() {
	kernel := &ise.Kernel{ID: "k", RISCLatency: 1000}
	cgISE := &ise.ISE{
		ID: "k.cg", Kernel: "k",
		DataPaths: []ise.DataPath{{ID: "cg", Kind: arch.CG, CGs: 1}},
		Latencies: []arch.Cycles{200},
	}
	p := profit.Profit(kernel, cgISE, nil,
		profit.Params{E: 100, TF: 500, TB: 50}, profit.Multigrained)
	fmt.Printf("expected saving: %.0f cycles\n", p)
	// Output: expected saving: 80000 cycles
}
