package profit

import (
	"math"
	"testing"
	"testing/quick"

	"mrts/internal/arch"
	"mrts/internal/ise"
)

func fgDP(id string) ise.DataPath {
	return ise.DataPath{ID: ise.DataPathID(id), Kind: arch.FG, PRCs: 1}
}
func cgDP(id string) ise.DataPath { return ise.DataPath{ID: ise.DataPathID(id), Kind: arch.CG, CGs: 1} }

func testKernel() *ise.Kernel {
	return &ise.Kernel{
		ID:          "k",
		RISCLatency: 1000,
		MonoCG:      ise.MonoCGExt{Latency: 400, Instructions: 32},
		ISEs: []*ise.ISE{
			{
				ID: "k.fg2", Kernel: "k",
				DataPaths: []ise.DataPath{fgDP("a"), fgDP("b")},
				Latencies: []arch.Cycles{500, 100},
			},
			{
				ID: "k.cg1", Kernel: "k",
				DataPaths: []ise.DataPath{cgDP("c")},
				Latencies: []arch.Cycles{300},
			},
			{
				ID: "k.mg2", Kernel: "k",
				DataPaths: []ise.DataPath{fgDP("a"), cgDP("c")},
				Latencies: []arch.Cycles{500, 150},
			},
		},
	}
}

func TestPIFFormula(t *testing.T) {
	k := testKernel()
	e := k.ISEs[1] // cg1: reconfig 15 cycles, latency 300
	// Eq. 1 by hand: sw*e / (rec + hw*e).
	execs := int64(100)
	want := float64(1000*100) / float64(15+300*100)
	if got := PIF(k, e, execs); math.Abs(got-want) > 1e-9 {
		t.Errorf("PIF = %v, want %v", got, want)
	}
}

func TestPIFZeroExecutions(t *testing.T) {
	k := testKernel()
	if PIF(k, k.ISEs[0], 0) != 0 {
		t.Error("PIF(0 executions) should be 0")
	}
}

func TestPIFAsymptote(t *testing.T) {
	// For huge execution counts pif approaches sw/hw.
	k := testKernel()
	got := PIF(k, k.ISEs[1], 1_000_000_000)
	want := 1000.0 / 300.0
	if math.Abs(got-want) > 0.001 {
		t.Errorf("PIF asymptote = %v, want %v", got, want)
	}
}

func TestPIFOrderingSmallVsLargeCounts(t *testing.T) {
	// The motivational structure: the CG ISE dominates for few
	// executions (cheap reconfiguration), the FG ISE for many (better
	// latency amortises the 1.2 ms reconfiguration).
	k := testKernel()
	fg2, cg1 := k.ISEs[0], k.ISEs[1]
	if PIF(k, cg1, 10) <= PIF(k, fg2, 10) {
		t.Error("CG ISE should win at 10 executions")
	}
	if PIF(k, fg2, 100000) <= PIF(k, cg1, 100000) {
		t.Error("FG ISE should win at 100000 executions")
	}
}

func TestRecTFromScratch(t *testing.T) {
	k := testKernel()
	rec := RecT(k.ISEs[0], nil, Multigrained) // two FG data paths, serial port
	want := []arch.Cycles{0, arch.FGReconfigCycles, 2 * arch.FGReconfigCycles}
	for i := range want {
		if rec[i] != want[i] {
			t.Errorf("RecT[%d] = %d, want %d", i, rec[i], want[i])
		}
	}
}

func TestRecTParallelPorts(t *testing.T) {
	// mg2 = FG path then CG path: the CG context streams while the FG
	// bitstream loads, so availability is dominated by the FG port.
	k := testKernel()
	rec := RecT(k.ISEs[2], nil, Multigrained)
	if rec[1] != arch.FGReconfigCycles {
		t.Errorf("RecT[1] = %d, want %d", rec[1], arch.FGReconfigCycles)
	}
	if rec[2] != arch.FGReconfigCycles {
		t.Errorf("RecT[2] = %d (CG must overlap FG), want %d", rec[2], arch.FGReconfigCycles)
	}
}

type configuredFabric map[ise.DataPathID]bool

func (f configuredFabric) FreePRC() int                       { return 100 }
func (f configuredFabric) FreeCG() int                        { return 100 }
func (f configuredFabric) IsConfigured(d ise.DataPathID) bool { return f[d] }

func TestRecTSharedDataPaths(t *testing.T) {
	k := testKernel()
	fab := configuredFabric{"a": true}
	rec := RecT(k.ISEs[0], fab, Multigrained)
	if rec[1] != 0 {
		t.Errorf("configured data path should cost nothing, got %d", rec[1])
	}
	if rec[2] != arch.FGReconfigCycles {
		t.Errorf("RecT[2] = %d, want %d", rec[2], arch.FGReconfigCycles)
	}
}

type backloggedFabric struct {
	configuredFabric
	fg, cg arch.Cycles
}

func (f backloggedFabric) PortBacklog(k arch.FabricKind) arch.Cycles {
	if k == arch.FG {
		return f.fg
	}
	return f.cg
}

func TestRecTPortBacklog(t *testing.T) {
	k := testKernel()
	fab := backloggedFabric{configuredFabric: configuredFabric{}, fg: 1000}
	rec := RecT(k.ISEs[0], fab, Multigrained)
	if rec[1] != 1000+arch.FGReconfigCycles {
		t.Errorf("RecT[1] = %d, want backlog + reconfig", rec[1])
	}
}

func TestRecTFGTunedModel(t *testing.T) {
	// The RISPP cost model charges the CG data path with FG latency on
	// the FG port.
	k := testKernel()
	rec := RecT(k.ISEs[2], nil, FGTuned)
	if rec[2] != 2*arch.FGReconfigCycles {
		t.Errorf("FGTuned RecT[2] = %d, want %d", rec[2], 2*arch.FGReconfigCycles)
	}
}

func TestNoEBudget(t *testing.T) {
	k := testKernel()
	e := k.ISEs[0]
	p := Params{E: 50, TF: 100, TB: 10}
	noe := NoE(e, k, nil, p, Multigrained)
	if len(noe) != 1 {
		t.Fatalf("NoE length = %d, want n-1 = 1", len(noe))
	}
	var sum float64
	for _, v := range noe {
		if v < 0 {
			t.Errorf("negative NoE %v", v)
		}
		sum += v
	}
	if sum > float64(p.E) {
		t.Errorf("NoE sum %v exceeds expected executions %d", sum, p.E)
	}
}

func TestNoEZeroExecutions(t *testing.T) {
	k := testKernel()
	noe := NoE(k.ISEs[0], k, nil, Params{E: 0, TB: 10}, Multigrained)
	for _, v := range noe {
		if v != 0 {
			t.Errorf("NoE with e=0 should be all zero, got %v", noe)
		}
	}
}

func TestNoESingleDataPath(t *testing.T) {
	k := testKernel()
	if noe := NoE(k.ISEs[1], k, nil, Params{E: 100, TB: 10}, Multigrained); noe != nil {
		t.Errorf("single-data-path ISE has no intermediate ISEs, got %v", noe)
	}
}

func TestProfitZeroWhenNoExecutions(t *testing.T) {
	k := testKernel()
	if got := Profit(k, k.ISEs[0], nil, Params{E: 0}, Multigrained); got != 0 {
		t.Errorf("profit with e=0 = %v", got)
	}
}

func TestProfitCGBeatsFGAtFewExecutions(t *testing.T) {
	k := testKernel()
	p := Params{E: 30, TF: 50, TB: 100}
	cg := Profit(k, k.ISEs[1], nil, p, Multigrained)
	fg := Profit(k, k.ISEs[0], nil, p, Multigrained)
	if cg <= fg {
		t.Errorf("CG profit (%v) should beat FG profit (%v) at 30 executions", cg, fg)
	}
}

func TestProfitSharedDataPathsIncrease(t *testing.T) {
	k := testKernel()
	p := Params{E: 500, TF: 50, TB: 100}
	base := Profit(k, k.ISEs[0], nil, p, Multigrained)
	shared := Profit(k, k.ISEs[0], configuredFabric{"a": true, "b": true}, p, Multigrained)
	if shared <= base {
		t.Errorf("fully configured ISE profit (%v) should exceed from-scratch (%v)", shared, base)
	}
	// A fully configured ISE saves the full improvement on every
	// execution.
	want := float64(p.E) * float64(k.RISCLatency-k.ISEs[0].FullLatency())
	if math.Abs(shared-want) > 1 {
		t.Errorf("fully configured profit = %v, want %v", shared, want)
	}
}

func TestProfitBoundedBySteadyState(t *testing.T) {
	k := testKernel()
	f := func(e uint16, tf uint16, tb uint8) bool {
		p := Params{E: int64(e % 5000), TF: arch.Cycles(tf), TB: arch.Cycles(tb)}
		for _, ext := range k.ISEs {
			pr := Profit(k, ext, nil, p, Multigrained)
			if pr < 0 {
				return false
			}
			if pr > SteadyStateProfit(k, ext, p.E)+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProfitMonotonicInExecutions(t *testing.T) {
	k := testKernel()
	p1 := Params{E: 100, TF: 50, TB: 20}
	p2 := Params{E: 1000, TF: 50, TB: 20}
	for _, ext := range k.ISEs {
		if Profit(k, ext, nil, p2, Multigrained) < Profit(k, ext, nil, p1, Multigrained) {
			t.Errorf("ISE %s: profit decreased with more executions", ext.ID)
		}
	}
}

func TestMonoCGProfit(t *testing.T) {
	k := testKernel()
	p := Params{E: 100, TF: 50, TB: 20}
	got := MonoCGProfit(k, p)
	if got <= 0 {
		t.Fatalf("monoCG profit = %v, want positive", got)
	}
	max := float64(p.E) * float64(k.RISCLatency-k.MonoCG.Latency)
	if got > max {
		t.Errorf("monoCG profit %v exceeds bound %v", got, max)
	}
	none := &ise.Kernel{ID: "n", RISCLatency: 100}
	if MonoCGProfit(none, p) != 0 {
		t.Error("kernel without monoCG should have zero profit")
	}
}

func TestSteadyStateProfit(t *testing.T) {
	k := testKernel()
	if got := SteadyStateProfit(k, k.ISEs[1], 10); got != 7000 {
		t.Errorf("steady-state profit = %v, want 7000", got)
	}
	if SteadyStateProfit(k, k.ISEs[1], 0) != 0 {
		t.Error("zero executions should yield zero profit")
	}
}

func TestParamsFromTrigger(t *testing.T) {
	p := ParamsFromTrigger(ise.Trigger{Kernel: "k", E: 7, TF: 8, TB: 9})
	if p.E != 7 || p.TF != 8 || p.TB != 9 {
		t.Errorf("ParamsFromTrigger = %+v", p)
	}
}

func TestPortBlindIgnoresBacklog(t *testing.T) {
	k := testKernel()
	fab := backloggedFabric{configuredFabric: configuredFabric{}, fg: 500_000}
	aware := Profit(k, k.ISEs[0], fab, Params{E: 1000, TF: 100, TB: 50}, Multigrained)
	blind := Profit(k, k.ISEs[0], fab, Params{E: 1000, TF: 100, TB: 50}, PortBlind)
	if blind <= aware {
		t.Errorf("port-blind profit (%v) should exceed port-aware (%v) under a big backlog", blind, aware)
	}
	rec := RecT(k.ISEs[0], fab, PortBlind)
	if rec[1] != arch.FGReconfigCycles {
		t.Errorf("port-blind RecT[1] = %d, want bare reconfiguration time", rec[1])
	}
}
