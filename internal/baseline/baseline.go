// Package baseline implements the state-of-the-art runtime systems the
// paper compares against (Section 5.2):
//
//   - RISPP-like [6]: run-time greedy selection with a profit function
//     tuned to the millisecond reconfiguration times of fine-grained
//     fabrics (it mis-costs coarse-grained data paths), extended to use the
//     CG fabric, with intermediate-ISE execution (RISPP's signature
//     "upgrade" mechanism) but without monoCG-Extensions.
//   - Morpheus/4S-like [7][8]: loosely coupled architectures — a single
//     combined offline selection for all functional blocks, each kernel on
//     either a pure-FG or a pure-CG ISE (never multi-grained), configured
//     once at application start and never revised.
//   - Offline-optimal: optimal static multi-grained selection with full
//     knowledge of the trace; per-functional-block sets, but never revised
//     at run time and without ECU steering (no intermediate ISEs, no
//     monoCG-Extension).
//   - Online-optimal: the mRTS flow with the exhaustive selection
//     algorithm; the quality yardstick of Fig. 9 (its selection overhead is
//     not charged to the timeline).
package baseline

import (
	"mrts/internal/arch"
	"mrts/internal/core"
	"mrts/internal/ecu"
	"mrts/internal/profit"
	"mrts/internal/selector"
)

// NewRISPPLike builds the RISPP-like runtime system.
func NewRISPPLike(cfg arch.Config) (*core.MRTS, error) {
	return core.New(cfg, core.Options{
		Model:          profit.FGTuned,
		ECU:            ecu.Options{DisableMonoCG: true},
		ChargeOverhead: true,
		Name:           "RISPP-like",
	})
}

// NewOnlineOptimal builds the online-optimal yardstick: mRTS with the
// exhaustive branch-and-bound selector. Its (enormous) selection overhead
// is not charged, since Fig. 9 compares pure selection quality.
func NewOnlineOptimal(cfg arch.Config) (*core.MRTS, error) {
	return core.New(cfg, core.Options{
		Select:         selector.Optimal,
		ChargeOverhead: false,
		Name:           "Online-optimal",
	})
}
