package baseline

import (
	"testing"

	"mrts/internal/arch"
	"mrts/internal/ecu"
	"mrts/internal/ise"
	"mrts/internal/sim"
	"mrts/internal/workload"
)

func smallWorkload(t *testing.T) *workload.Result {
	t.Helper()
	return workload.MustBuild(workload.Options{
		Width: 64, Height: 48, Frames: 4,
	})
}

func TestRISPPLikeHasNoMonoCG(t *testing.T) {
	w := smallWorkload(t)
	r, err := NewRISPPLike(arch.Config{NPRC: 2, NCG: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(w.App, w.Trace, r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ModeExecs[ecu.MonoCG] != 0 {
		t.Errorf("RISPP-like used monoCG %d times", rep.ModeExecs[ecu.MonoCG])
	}
	if r.Name() != "RISPP-like" {
		t.Errorf("name = %q", r.Name())
	}
}

func TestOnlineOptimalChargesNoOverhead(t *testing.T) {
	w := smallWorkload(t)
	r, err := NewOnlineOptimal(arch.Config{NPRC: 1, NCG: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(w.App, w.Trace, r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OverheadCycles != 0 {
		t.Errorf("online-optimal charged %d overhead cycles", rep.OverheadCycles)
	}
}

func TestMorpheusIsPureGrainAndStatic(t *testing.T) {
	w := smallWorkload(t)
	m, err := NewMorpheus4S(arch.Config{NPRC: 2, NCG: 2}, w.App, w.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "Morpheus/4S-like" {
		t.Errorf("name = %q", m.Name())
	}
	anySelected := false
	for _, id := range w.App.KernelIDs() {
		e := m.Selected(id)
		if e == nil {
			continue
		}
		anySelected = true
		if g := e.Grain(); g != arch.GrainFG && g != arch.GrainCG {
			t.Errorf("Morpheus selected multi-grained ISE %s (%v)", e.ID, g)
		}
	}
	if !anySelected {
		t.Error("Morpheus selected nothing")
	}

	// Static: a simulation run schedules all reconfigurations at start
	// and never again.
	rep, err := sim.Run(w.App, w.Trace, m)
	if err != nil {
		t.Fatal(err)
	}
	total := rep.Reconfig.FGReconfigs + rep.Reconfig.CGReconfigs
	if total > 4 { // at most the budget, once
		t.Errorf("Morpheus scheduled %d reconfigurations, want at most budget", total)
	}
	if rep.Reconfig.Evictions != 0 {
		t.Errorf("static selection evicted %d data paths", rep.Reconfig.Evictions)
	}
}

func TestMorpheusRespectsBudget(t *testing.T) {
	w := smallWorkload(t)
	for _, cfg := range []arch.Config{{NPRC: 1}, {NCG: 1}, {NPRC: 2, NCG: 1}} {
		m, err := NewMorpheus4S(cfg, w.App, w.Trace)
		if err != nil {
			t.Fatal(err)
		}
		prc, cg := 0, 0
		seen := map[ise.DataPathID]bool{}
		for _, id := range w.App.KernelIDs() {
			e := m.Selected(id)
			if e == nil {
				continue
			}
			for _, d := range e.DataPaths {
				if seen[d.ID] {
					continue
				}
				seen[d.ID] = true
				prc += d.PRCs
				cg += d.CGs
			}
		}
		if prc > cfg.NPRC || cg > cfg.NCG {
			t.Errorf("config %v: selection uses %d/%d", cfg, prc, cg)
		}
	}
}

func TestOfflineOptimalStatic(t *testing.T) {
	w := smallWorkload(t)
	o, err := NewOfflineOptimal(arch.Config{NPRC: 2, NCG: 2}, w.App, w.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "Offline-optimal" {
		t.Errorf("name = %q", o.Name())
	}
	rep, err := sim.Run(w.App, w.Trace, o)
	if err != nil {
		t.Fatal(err)
	}
	// No ECU: only full-ISE or RISC executions.
	if rep.ModeExecs[ecu.MonoCG] != 0 || rep.ModeExecs[ecu.Intermediate] != 0 {
		t.Error("offline-optimal must not steer executions")
	}
	if rep.OverheadCycles != 0 {
		t.Error("offline selection has no run-time overhead")
	}
}

func TestOfflineOptimalAtLeastMorpheus(t *testing.T) {
	// With multi-grained ISEs allowed and an exact solver over the same
	// profits, the offline-optimal static selection can never be worse
	// than the Morpheus knapsack restricted to pure-grain ISEs —
	// measured by achievable steady-state profit, which on this static
	// workload maps to execution time.
	w := smallWorkload(t)
	for _, cfg := range []arch.Config{{NPRC: 2, NCG: 2}, {NPRC: 1, NCG: 3}, {NPRC: 3, NCG: 1}} {
		mo, err := NewMorpheus4S(cfg, w.App, w.Trace)
		if err != nil {
			t.Fatal(err)
		}
		off, err := NewOfflineOptimal(cfg, w.App, w.Trace)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := sim.Run(w.App, w.Trace, mo)
		if err != nil {
			t.Fatal(err)
		}
		ro, err := sim.Run(w.App, w.Trace, off)
		if err != nil {
			t.Fatal(err)
		}
		// Allow a tiny tolerance for reconfiguration transients.
		if float64(ro.TotalCycles) > 1.02*float64(rm.TotalCycles) {
			t.Errorf("config %v: offline-optimal (%d) notably slower than Morpheus (%d)",
				cfg, ro.TotalCycles, rm.TotalCycles)
		}
	}
}

func TestStaticRTSZeroBudget(t *testing.T) {
	w := smallWorkload(t)
	m, err := NewMorpheus4S(arch.Config{}, w.App, w.Trace)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(w.App, w.Trace, m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ModeExecs[ecu.Full] != 0 {
		t.Error("zero budget executed accelerated kernels")
	}
	risc, err := sim.RunRISC(w.App, w.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalCycles != risc.TotalCycles {
		t.Errorf("zero-budget Morpheus (%d) != RISC-mode (%d)", rep.TotalCycles, risc.TotalCycles)
	}
}

func TestStaticRTSResetRecommits(t *testing.T) {
	w := smallWorkload(t)
	m, err := NewMorpheus4S(arch.Config{NPRC: 1, NCG: 1}, w.App, w.Trace)
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	m.Reset() // must be idempotent
	r1, err := sim.Run(w.App, w.Trace, m)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Run(w.App, w.Trace, m)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalCycles != r2.TotalCycles {
		t.Error("static policy not reproducible across runs")
	}
}

func TestInvalidConfigs(t *testing.T) {
	w := smallWorkload(t)
	if _, err := NewMorpheus4S(arch.Config{NPRC: -1}, w.App, w.Trace); err == nil {
		t.Error("invalid config accepted by Morpheus")
	}
	if _, err := NewOfflineOptimal(arch.Config{NCG: -1}, w.App, w.Trace); err == nil {
		t.Error("invalid config accepted by offline-optimal")
	}
	if _, err := NewRISPPLike(arch.Config{NPRC: -1}); err == nil {
		t.Error("invalid config accepted by RISPP-like")
	}
}
