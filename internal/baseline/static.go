package baseline

import (
	"fmt"

	"mrts/internal/arch"
	"mrts/internal/core"
	"mrts/internal/ecu"
	"mrts/internal/ise"
	"mrts/internal/mpu"
	"mrts/internal/profit"
	"mrts/internal/reconfig"
	"mrts/internal/selector"
	"mrts/internal/trace"
)

// StaticRTS is a runtime system whose ISE selection was fixed offline. Two
// flavours exist:
//
//   - global mode (Morpheus/4S-like and high-budget offline-optimal): all
//     selected ISEs are configured once at application start;
//   - multiplex mode (low-budget offline-optimal): each functional block
//     has its own static set, committed — with eviction — whenever the
//     block is entered, time-multiplexing the fabric across blocks.
//
// Static systems have no Execution Control Unit: a kernel runs its selected
// ISE once it is fully reconfigured, and in RISC mode before that.
type StaticRTS struct {
	name string
	ctrl *reconfig.Controller

	// global is committed at Reset (empty in multiplex mode).
	global []*ise.ISE
	// perBlock is committed at block entry (empty in global mode).
	perBlock map[string][]*ise.ISE
	// byKernel is the static kernel -> ISE assignment.
	byKernel map[ise.KernelID]*ise.ISE

	// steady replays stable full-ISE verdicts per kernel (see
	// ecu.SteadyCache); assign memoizes the byKernel lookup under a
	// pointer key so the per-execution path never hashes a kernel ID.
	steady *ecu.SteadyCache
	assign map[*ise.Kernel]*ise.ISE

	stats core.Stats
}

var _ core.RuntimeSystem = (*StaticRTS)(nil)

// Name implements core.RuntimeSystem.
func (s *StaticRTS) Name() string { return s.name }

// Controller implements core.RuntimeSystem.
func (s *StaticRTS) Controller() *reconfig.Controller { return s.ctrl }

// Stats returns a snapshot of the accumulated counters.
func (s *StaticRTS) Stats() core.Stats { return s.stats }

// Selected returns the static ISE assignment of the kernel, or nil.
func (s *StaticRTS) Selected(id ise.KernelID) *ise.ISE { return s.byKernel[id] }

// OnTrigger implements core.RuntimeSystem. Static systems perform no
// run-time selection (zero overhead); in multiplex mode the block's
// precomputed set is committed to the fabric. The commit is the
// fault-tolerant variant: a static set that no longer fits the surviving
// fabric loses ISEs (their kernels run in RISC mode) instead of aborting
// the run — but, unlike mRTS, the selection is never revised to suit the
// remaining capacity.
func (s *StaticRTS) OnTrigger(block *ise.FunctionalBlock, _ string, _ []ise.Trigger, now arch.Cycles) (arch.Cycles, error) {
	s.ctrl.Advance(now)
	if set, ok := s.perBlock[block.ID]; ok {
		res := s.ctrl.CommitSelectionSafe(set, now)
		s.stats.Degradations += int64(len(res.Skipped))
	}
	return 0, nil
}

// Execute implements core.RuntimeSystem: the selected ISE when fully
// reconfigured, RISC mode otherwise.
func (s *StaticRTS) Execute(k *ise.Kernel, now arch.Cycles) ecu.Decision {
	s.ctrl.Advance(now)
	if s.assign == nil {
		s.assign = make(map[*ise.Kernel]*ise.ISE)
		s.steady = ecu.NewSteadyCache()
	}
	e, known := s.assign[k]
	if !known {
		e = s.byKernel[k.ID]
		s.assign[k] = e
	}
	d := ecu.Decision{Mode: ecu.RISC, Latency: k.RISCLatency}
	if e != nil {
		ver := s.ctrl.Version()
		if cd, ok := s.steady.Get(k, e, ver); ok {
			d = cd
		} else if s.ctrl.ConfiguredPrefix(e) == e.NumDataPaths() {
			d = ecu.Decision{Mode: ecu.Full, Level: e.NumDataPaths(), Latency: e.FullLatency()}
			// Full is stable until a version-bumping mutation (eviction,
			// migration, Reset); RISC is transient and never cached.
			s.steady.Put(k, e, ver, d)
		}
	}
	s.stats.Execs[d.Mode]++
	s.stats.ExecCycles[d.Mode] += d.Latency
	return d
}

// OnBlockEnd implements core.RuntimeSystem (static systems do not monitor).
func (s *StaticRTS) OnBlockEnd(*ise.FunctionalBlock, string, []ise.Trigger, []mpu.Observation, arch.Cycles) {
}

// Reset implements core.RuntimeSystem: in global mode the whole selection
// is configured at time zero (application start).
func (s *StaticRTS) Reset() {
	s.ctrl.Reset()
	s.stats = core.Stats{}
	if len(s.global) > 0 {
		if _, err := s.ctrl.CommitSelection(s.global, 0); err != nil {
			// The constructor verified the fit; a failure here is a bug.
			panic(fmt.Sprintf("baseline: %s: global selection no longer fits: %v", s.name, err))
		}
	}
}

// aggregateExecutions sums the per-kernel execution counts over the whole
// trace (the offline profile a compile-time selection works from).
func aggregateExecutions(tr *trace.Trace) map[ise.KernelID]int64 {
	total := make(map[ise.KernelID]int64)
	for i := range tr.Iterations {
		for _, l := range tr.Iterations[i].Loads {
			total[l.Kernel] += l.E
		}
	}
	return total
}

// NewMorpheus4S builds the Morpheus/4S-like baseline: one combined offline
// selection over all kernels of all functional blocks, restricted to
// pure-FG and pure-CG ISEs (loosely coupled fabrics cannot host one ISE
// across both), solved exactly as a two-dimensional multi-choice knapsack
// over steady-state profits, configured once at application start.
func NewMorpheus4S(cfg arch.Config, app *ise.Application, tr *trace.Trace) (*StaticRTS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctrl, err := reconfig.NewController(cfg)
	if err != nil {
		return nil, err
	}
	totals := aggregateExecutions(tr)

	var kernels []*ise.Kernel
	for _, b := range app.Blocks {
		kernels = append(kernels, b.Kernels...)
	}
	groups := make([][]selector.Option, len(kernels))
	for i, k := range kernels {
		for _, e := range k.ISEs {
			if g := e.Grain(); g != arch.GrainFG && g != arch.GrainCG {
				continue // no multi-grained ISEs on loosely coupled fabrics
			}
			groups[i] = append(groups[i], selector.Option{
				Label:  e.ID,
				PRC:    e.CostPRC(),
				CG:     e.CostCG(),
				Profit: profit.SteadyStateProfit(k, e, totals[k.ID]),
			})
		}
	}
	picks, _ := selector.MultiChoiceKnapsack(groups, cfg.NPRC, cfg.NCG)

	s := &StaticRTS{
		name:     "Morpheus/4S-like",
		ctrl:     ctrl,
		perBlock: map[string][]*ise.ISE{},
		byKernel: make(map[ise.KernelID]*ise.ISE),
	}
	for i, pi := range picks {
		if pi < 0 {
			continue
		}
		e := kernels[i].ISEByID(groups[i][pi].Label)
		s.global = append(s.global, e)
		s.byKernel[kernels[i].ID] = e
	}
	s.Reset()
	return s, nil
}

// NewOfflineOptimal builds the offline-optimal baseline: the optimal
// *static* selection for tightly coupled multi-grained fabrics (paper
// Section 5.2). Unlike Morpheus/4S it may pick multi-grained ISEs, and
// unlike mRTS it never revises the selection at run time — the paper notes
// that "run-time replacement gets less important" only as resources grow,
// which is exactly where this baseline catches up. The selection is the
// exact solution of the two-dimensional multi-choice knapsack over
// steady-state profits from the full trace (the offline scheme knows the
// true execution counts), configured once at application start.
func NewOfflineOptimal(cfg arch.Config, app *ise.Application, tr *trace.Trace) (*StaticRTS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctrl, err := reconfig.NewController(cfg)
	if err != nil {
		return nil, err
	}
	totals := aggregateExecutions(tr)

	var kernels []*ise.Kernel
	for _, b := range app.Blocks {
		kernels = append(kernels, b.Kernels...)
	}
	groups := make([][]selector.Option, len(kernels))
	for i, k := range kernels {
		for _, e := range k.ISEs {
			groups[i] = append(groups[i], selector.Option{
				Label:  e.ID,
				PRC:    e.CostPRC(),
				CG:     e.CostCG(),
				Profit: profit.SteadyStateProfit(k, e, totals[k.ID]),
			})
		}
	}
	picks, _ := selector.MultiChoiceKnapsack(groups, cfg.NPRC, cfg.NCG)

	s := &StaticRTS{
		name:     "Offline-optimal",
		ctrl:     ctrl,
		perBlock: map[string][]*ise.ISE{},
		byKernel: make(map[ise.KernelID]*ise.ISE),
	}
	for i, pi := range picks {
		if pi < 0 {
			continue
		}
		e := kernels[i].ISEByID(groups[i][pi].Label)
		s.global = append(s.global, e)
		s.byKernel[kernels[i].ID] = e
	}
	s.Reset()
	return s, nil
}
