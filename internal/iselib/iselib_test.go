package iselib

import (
	"testing"

	"mrts/internal/arch"
	"mrts/internal/h264"
	"mrts/internal/ise"
	"mrts/internal/profit"
)

func TestApplicationValidates(t *testing.T) {
	app, err := NewApplication()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range app.Blocks {
		if err := b.Validate(); err != nil {
			t.Errorf("block %s: %v", b.ID, err)
		}
	}
}

func TestApplicationStructure(t *testing.T) {
	app := MustNewApplication()
	if len(app.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3 (me, enc, dbf)", len(app.Blocks))
	}
	// The biggest functional block has more than six kernels (paper
	// Section 2: "the biggest one contains more than six kernels").
	max := 0
	for _, b := range app.Blocks {
		if len(b.Kernels) > max {
			max = len(b.Kernels)
		}
	}
	if max <= 6 {
		t.Errorf("largest block has %d kernels, want > 6", max)
	}
}

func TestEveryEncoderKernelCovered(t *testing.T) {
	app := MustNewApplication()
	for _, fb := range h264.FunctionalBlocks {
		blk := app.Block(fb.ID)
		if blk == nil {
			t.Fatalf("functional block %s missing from the ISE library", fb.ID)
		}
		for _, k := range fb.Kernels {
			if blk.Kernel(ise.KernelID(k)) == nil {
				t.Errorf("kernel %s missing from block %s", k, fb.ID)
			}
		}
	}
}

func TestKernelsSpanGrains(t *testing.T) {
	app := MustNewApplication()
	var haveFG, haveCG, haveMG bool
	for _, id := range app.KernelIDs() {
		k := app.Kernel(id)
		if len(k.ISEs) == 0 {
			t.Errorf("kernel %s has no ISEs", id)
		}
		for _, e := range k.ISEs {
			switch e.Grain() {
			case arch.GrainFG:
				haveFG = true
			case arch.GrainCG:
				haveCG = true
			case arch.GrainMG:
				haveMG = true
			}
		}
		if !k.MonoCG.Available() {
			t.Errorf("kernel %s has no monoCG-Extension", id)
		}
	}
	if !haveFG || !haveCG || !haveMG {
		t.Errorf("library grains: FG=%v CG=%v MG=%v, want all", haveFG, haveCG, haveMG)
	}
}

func TestCrossKernelDataPathSharing(t *testing.T) {
	// dct.cg2 and idct.cg2 share the transpose data path (paper
	// Section 4.1: reconfigurations completed by other ISEs that share
	// data paths).
	app := MustNewApplication()
	dct := app.Kernel(ise.KernelID(h264.KernelDCT)).ISEByID("dct.cg2")
	idct := app.Kernel(ise.KernelID(h264.KernelIDCT)).ISEByID("idct.cg2")
	if dct == nil || idct == nil {
		t.Fatal("expected shared-transpose ISEs missing")
	}
	shared := false
	for _, a := range dct.DataPaths {
		for _, b := range idct.DataPaths {
			if a.ID == b.ID {
				shared = true
			}
		}
	}
	if !shared {
		t.Error("dct.cg2 and idct.cg2 share no data path")
	}
}

func TestMixedKernelsHaveBestMGISE(t *testing.T) {
	// For the mixed kernels (filt, satd) the multi-grained ISE is the
	// steady-state best — the paper's core premise.
	app := MustNewApplication()
	for _, id := range []string{h264.KernelFilt, h264.KernelSATD} {
		k := app.Kernel(ise.KernelID(id))
		var best *ise.ISE
		for _, e := range k.ISEs {
			if best == nil || e.FullLatency() < best.FullLatency() {
				best = e
			}
		}
		if best.Grain() != arch.GrainMG {
			t.Errorf("kernel %s: fastest ISE %s is %v, want MG", id, best.ID, best.Grain())
		}
	}
}

func TestBitLevelKernelsFavourFG(t *testing.T) {
	app := MustNewApplication()
	for _, id := range []string{h264.KernelBS, h264.KernelCAVLC, h264.KernelIPred} {
		k := app.Kernel(ise.KernelID(id))
		bestFG, bestCG := arch.Cycles(1<<40), arch.Cycles(1<<40)
		for _, e := range k.ISEs {
			switch e.Grain() {
			case arch.GrainFG:
				if e.FullLatency() < bestFG {
					bestFG = e.FullLatency()
				}
			case arch.GrainCG:
				if e.FullLatency() < bestCG {
					bestCG = e.FullLatency()
				}
			}
		}
		if bestFG >= bestCG {
			t.Errorf("bit-level kernel %s: FG best %d !< CG best %d", id, bestFG, bestCG)
		}
	}
}

func TestWordLevelKernelsFavourCG(t *testing.T) {
	app := MustNewApplication()
	for _, id := range []string{h264.KernelSAD, h264.KernelDCT, h264.KernelMC} {
		k := app.Kernel(ise.KernelID(id))
		bestFG, bestCG := arch.Cycles(1<<40), arch.Cycles(1<<40)
		for _, e := range k.ISEs {
			switch e.Grain() {
			case arch.GrainFG:
				if e.FullLatency() < bestFG {
					bestFG = e.FullLatency()
				}
			case arch.GrainCG:
				if e.FullLatency() < bestCG {
					bestCG = e.FullLatency()
				}
			}
		}
		if bestCG >= bestFG {
			t.Errorf("word-level kernel %s: CG best %d !< FG best %d", id, bestCG, bestFG)
		}
	}
}

func TestCaseStudyKernel(t *testing.T) {
	k := CaseStudyKernel()
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(k.ISEs) != 3 {
		t.Fatalf("case study has %d ISEs, want 3", len(k.ISEs))
	}
	grains := []arch.Grain{arch.GrainFG, arch.GrainCG, arch.GrainMG}
	for i, e := range k.ISEs {
		if e.Grain() != grains[i] {
			t.Errorf("ISE-%d grain = %v, want %v", i+1, e.Grain(), grains[i])
		}
	}
	// ISE-3 shares its condition data path with ISE-1 and its filter
	// data path with ISE-2.
	if k.ISEs[2].DataPaths[0].ID != k.ISEs[0].DataPaths[0].ID {
		t.Error("ISE-3 condition path not shared with ISE-1")
	}
	if k.ISEs[2].DataPaths[1].ID != k.ISEs[1].DataPaths[1].ID {
		t.Error("ISE-3 filter path not shared with ISE-2")
	}
}

func TestCaseStudyThreeRegions(t *testing.T) {
	// pif dominance: ISE-2 (CG) at low counts, ISE-3 (MG) in the middle,
	// ISE-1 (FG) at high counts — Fig. 1's three regions.
	k := CaseStudyKernel()
	bestAt := func(e int64) int {
		best, bestPIF := 0, -1.0
		for i, ext := range k.ISEs {
			if p := profit.PIF(k, ext, e); p > bestPIF {
				best, bestPIF = i+1, p
			}
		}
		return best
	}
	if got := bestAt(200); got != 2 {
		t.Errorf("best at 200 executions = ISE-%d, want ISE-2", got)
	}
	if got := bestAt(2000); got != 3 {
		t.Errorf("best at 2000 executions = ISE-%d, want ISE-3", got)
	}
	if got := bestAt(20000); got != 1 {
		t.Errorf("best at 20000 executions = ISE-%d, want ISE-1", got)
	}
}

func TestCaseStudyBlock(t *testing.T) {
	if err := CaseStudyBlock().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSoftwareGapAndPrologue(t *testing.T) {
	for _, fb := range h264.FunctionalBlocks {
		if BlockPrologue(fb.ID) <= 0 {
			t.Errorf("prologue for %s not positive", fb.ID)
		}
		for _, k := range fb.Kernels {
			if SoftwareGap(k) <= 0 {
				t.Errorf("software gap for %s not positive", k)
			}
		}
	}
	if SoftwareGap("unknown") <= 0 || BlockPrologue("unknown") <= 0 {
		t.Error("defaults must be positive")
	}
}
