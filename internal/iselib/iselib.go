// Package iselib provides the compile-time prepared Instruction Set
// Extensions of the H.264 encoder application. It substitutes the authors'
// proprietary ISE generation tool chain (paper Section 4, references
// [18][19]): for every kernel of the encoder it defines the RISC-mode
// latency, a monoCG-Extension, and a set of candidate ISEs — pure-FG,
// pure-CG and multi-grained — whose data paths, areas, execution latencies
// and reconfiguration behaviour span the same trade-off space the paper
// describes:
//
//   - data-dominant (sub)word-level kernels (sad, dct, mc, ...) map well to
//     the CG fabric and reasonably to the FG fabric;
//   - control-dominant bit/byte-level kernels (bs, cavlc, ipred) map well
//     to the FG fabric and poorly to the CG fabric;
//   - mixed kernels (filt, satd) have multi-grained ISEs as their best
//     area/performance trade-off.
//
// Latencies are in core cycles (100 MHz) and include the fabric
// communication overheads of Section 5.1 (2 cycles CG<->CG, 1 cycle
// PRC<->PRC); data paths occupy one PRC or one CG-EDPE each.
package iselib

import (
	"fmt"

	"mrts/internal/arch"
	"mrts/internal/h264"
	"mrts/internal/ise"
)

// dp builds a data path occupying one unit of its fabric.
func dp(id string, kind arch.FabricKind) ise.DataPath {
	d := ise.DataPath{ID: ise.DataPathID(id), Kind: kind}
	if kind == arch.FG {
		d.PRCs = 1
	} else {
		d.CGs = 1
	}
	return d
}

func fg(id string) ise.DataPath { return dp(id, arch.FG) }
func cg(id string) ise.DataPath { return dp(id, arch.CG) }

// ext builds an ISE from data paths and the matching latency ladder.
func ext(id string, kernel ise.KernelID, lats []arch.Cycles, dps ...ise.DataPath) *ise.ISE {
	return &ise.ISE{ID: id, Kernel: kernel, DataPaths: dps, Latencies: lats}
}

func lat(v ...arch.Cycles) []arch.Cycles { return v }

// kernel assembles a kernel.
func kernel(id, name string, risc arch.Cycles, mono ise.MonoCGExt, ises ...*ise.ISE) *ise.Kernel {
	return &ise.Kernel{ID: ise.KernelID(id), Name: name, RISCLatency: risc, MonoCG: mono, ISEs: ises}
}

// NewApplication builds the H.264 encoder application: three functional
// blocks (motion estimation & mode decision, encoding engine, in-loop
// deblocking filter — the biggest with seven kernels, matching the paper's
// "more than six kernels" remark) with the full multi-grained ISE library.
func NewApplication() (*ise.Application, error) {
	me := &ise.FunctionalBlock{
		ID:   "me",
		Name: "Motion Estimation & Mode Decision",
		Kernels: []*ise.Kernel{
			// sad: data-dominant 16x16 sum of absolute differences.
			kernel(h264.KernelSAD, "SAD 16x16", 780,
				ise.MonoCGExt{Latency: 230, Instructions: 26},
				ext("sad.cg1", h264.KernelSAD, lat(200), cg("sad_acc_cg")),
				ext("sad.cg2", h264.KernelSAD, lat(200, 95), cg("sad_acc_cg"), cg("sad_row_cg")),
				ext("sad.cg3", h264.KernelSAD, lat(200, 95, 62), cg("sad_acc_cg"), cg("sad_row_cg"), cg("sad_quad_cg")),
				ext("sad.fg1", h264.KernelSAD, lat(420), fg("sad_pe_fg")),
				ext("sad.fg2", h264.KernelSAD, lat(420, 250), fg("sad_pe_fg"), fg("sad_tree_fg")),
				ext("sad.fg3", h264.KernelSAD, lat(420, 250, 225), fg("sad_pe_fg"), fg("sad_tree_fg"), fg("sad_agg_fg")),
				ext("sad.mg2", h264.KernelSAD, lat(200, 120), cg("sad_acc_cg"), fg("sad_tree_fg")),
			),
			// satd: Hadamard-transform cost metric, mixed processing.
			kernel(h264.KernelSATD, "SATD 4x4", 340,
				ise.MonoCGExt{Latency: 160, Instructions: 16},
				ext("satd.cg1", h264.KernelSATD, lat(140), cg("satd_had_cg")),
				ext("satd.fg1", h264.KernelSATD, lat(210), fg("satd_had_fg")),
				ext("satd.fg2", h264.KernelSATD, lat(210, 124), fg("satd_had_fg"), fg("satd_abs_fg")),
				ext("satd.mg2", h264.KernelSATD, lat(140, 58), cg("satd_had_cg"), fg("satd_abs_fg")),
			),
			// ipred: neighbour gathering and mode logic, byte-level.
			kernel(h264.KernelIPred, "Intra prediction 4x4", 160,
				ise.MonoCGExt{Latency: 130, Instructions: 12},
				ext("ipred.fg1", h264.KernelIPred, lat(64), fg("ipred_ngb_fg")),
				ext("ipred.fg2", h264.KernelIPred, lat(64, 32), fg("ipred_ngb_fg"), fg("ipred_ang_fg")),
				ext("ipred.cg1", h264.KernelIPred, lat(135), cg("ipred_ngb_cg")),
			),
		},
	}

	enc := &ise.FunctionalBlock{
		ID:   "enc",
		Name: "Encoding Engine",
		Kernels: []*ise.Kernel{
			// mc: motion compensation, word-level streaming.
			kernel(h264.KernelMC, "Motion compensation 8x8", 620,
				ise.MonoCGExt{Latency: 240, Instructions: 18},
				ext("mc.cg1", h264.KernelMC, lat(190), cg("mc_interp_cg")),
				ext("mc.cg2", h264.KernelMC, lat(190, 86), cg("mc_interp_cg"), cg("mc_avg_cg")),
				ext("mc.fg1", h264.KernelMC, lat(330), fg("mc_interp_fg")),
			),
			// dct: 4x4 integer transform, sub-word butterflies.
			kernel(h264.KernelDCT, "DCT 4x4", 220,
				ise.MonoCGExt{Latency: 90, Instructions: 20},
				ext("dct.cg1", h264.KernelDCT, lat(70), cg("dct_bfly_cg")),
				ext("dct.cg2", h264.KernelDCT, lat(70, 27), cg("dct_bfly_cg"), cg("xfrm_tr_cg")),
				ext("dct.fg1", h264.KernelDCT, lat(120), fg("dct_bfly_fg")),
				ext("dct.mg2", h264.KernelDCT, lat(70, 30), cg("dct_bfly_cg"), fg("dct_tr_fg")),
			),
			// quant: multiply/shift, word-level.
			kernel(h264.KernelQuant, "Quantisation 4x4", 190,
				ise.MonoCGExt{Latency: 70, Instructions: 12},
				ext("quant.cg1", h264.KernelQuant, lat(50), cg("quant_mul_cg")),
				ext("quant.fg1", h264.KernelQuant, lat(90), fg("quant_mul_fg")),
			),
			// cavlc: zig-zag scan and token coding, bit-level.
			kernel(h264.KernelCAVLC, "CAVLC bit estimation", 360,
				ise.MonoCGExt{Latency: 290, Instructions: 14},
				ext("cavlc.fg1", h264.KernelCAVLC, lat(170), fg("cavlc_scan_fg")),
				ext("cavlc.fg2", h264.KernelCAVLC, lat(170, 72), fg("cavlc_scan_fg"), fg("cavlc_lvl_fg")),
				ext("cavlc.cg1", h264.KernelCAVLC, lat(340), cg("cavlc_scan_cg")),
			),
			// iquant: rescale, word-level.
			kernel(h264.KernelIQuant, "Inverse quantisation 4x4", 150,
				ise.MonoCGExt{Latency: 60, Instructions: 10},
				ext("iquant.cg1", h264.KernelIQuant, lat(42), cg("iq_mul_cg")),
				ext("iquant.fg1", h264.KernelIQuant, lat(75), fg("iq_mul_fg")),
			),
			// idct: inverse transform; its transpose data path is shared
			// with dct.cg2 (cross-kernel data-path sharing, Section 4.1).
			kernel(h264.KernelIDCT, "IDCT 4x4", 210,
				ise.MonoCGExt{Latency: 85, Instructions: 18},
				ext("idct.cg1", h264.KernelIDCT, lat(68), cg("idct_bfly_cg")),
				ext("idct.cg2", h264.KernelIDCT, lat(68, 26), cg("idct_bfly_cg"), cg("xfrm_tr_cg")),
				ext("idct.fg1", h264.KernelIDCT, lat(100), fg("idct_bfly_fg")),
			),
			// hadamard: luma-DC transform, word-level, few executions.
			kernel(h264.KernelHadamard, "Hadamard DC 4x4", 170,
				ise.MonoCGExt{Latency: 66, Instructions: 10},
				ext("had.cg1", h264.KernelHadamard, lat(45), cg("had_bfly_cg")),
				ext("had.fg1", h264.KernelHadamard, lat(80), fg("had_bfly_fg")),
			),
		},
	}

	dbf := &ise.FunctionalBlock{
		ID:   "dbf",
		Name: "In-Loop Deblocking Filter",
		Kernels: []*ise.Kernel{
			// bs: boundary-strength decision, bit-level comparisons.
			kernel(h264.KernelBS, "Boundary strength", 110,
				ise.MonoCGExt{Latency: 95, Instructions: 8},
				ext("bs.fg1", h264.KernelBS, lat(32), fg("bs_cmp_fg")),
				ext("bs.cg1", h264.KernelBS, lat(102), cg("bs_cmp_cg")),
			),
			// filt: edge filter — bit-level condition plus word-level
			// filter taps: the paper's showcase for multi-grained ISEs.
			kernel(h264.KernelFilt, "Deblocking edge filter", 310,
				ise.MonoCGExt{Latency: 150, Instructions: 20},
				ext("filt.fg2", h264.KernelFilt, lat(195, 112), fg("filt_cond_fg"), fg("filt_tap_fg")),
				ext("filt.cg2", h264.KernelFilt, lat(290, 200), cg("filt_cond_cg"), cg("filt_tap_cg")),
				ext("filt.mg2", h264.KernelFilt, lat(195, 64), fg("filt_cond_fg"), cg("filt_tap_cg")),
				ext("filt.fg1", h264.KernelFilt, lat(230), fg("filt_mono_fg")),
			),
		},
	}

	app, err := ise.NewApplication("h264-encoder", me, enc, dbf)
	if err != nil {
		return nil, fmt.Errorf("iselib: %w", err)
	}
	return app, nil
}

// MustNewApplication panics on error; the library is static, so an error is
// a programming mistake.
func MustNewApplication() *ise.Application {
	app, err := NewApplication()
	if err != nil {
		panic(err)
	}
	return app
}

// SoftwareGap returns the pure-software cycles the core processor spends
// before each invocation of a kernel (loop control, address generation,
// data marshalling). Used by the trace builder.
func SoftwareGap(kernel string) arch.Cycles {
	switch kernel {
	case h264.KernelSAD:
		return 16
	case h264.KernelSATD:
		return 14
	case h264.KernelIPred:
		return 12
	case h264.KernelDCT:
		return 14
	case h264.KernelQuant:
		return 10
	case h264.KernelIQuant:
		return 10
	case h264.KernelIDCT:
		return 12
	case h264.KernelHadamard:
		return 15
	case h264.KernelMC:
		return 24
	case h264.KernelCAVLC:
		return 18
	case h264.KernelBS:
		return 8
	case h264.KernelFilt:
		return 10
	default:
		return 12
	}
}

// BlockPrologue returns the software cycles between a functional block's
// trigger instruction and its first kernel invocation.
func BlockPrologue(block string) arch.Cycles {
	switch block {
	case "me":
		return 2600
	case "enc":
		return 2100
	case "dbf":
		return 1800
	default:
		return 2000
	}
}
