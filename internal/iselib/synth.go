package iselib

import (
	"fmt"

	"mrts/internal/arch"
	"mrts/internal/ise"
)

// Synthetic ISE libraries. The paper notes that a single kernel may have up
// to 60 compile-time prepared ISEs and that six H.264 kernels already span
// more than 78 million ISE combinations (Section 4.1) — the reason the
// optimal selection algorithm is infeasible at run time. GenerateKernel and
// GenerateBlock produce deterministic synthetic kernels of any size for the
// selector scalability tests and benchmarks.

// synthRNG is a small deterministic generator (splitmix64), independent of
// math/rand so generated libraries are stable across Go versions.
type synthRNG struct{ state uint64 }

func (r *synthRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *synthRNG) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// GenerateKernel builds a synthetic kernel with nISEs candidate ISEs drawn
// from a shared per-kernel data-path pool (so candidates share data paths,
// as real ISE libraries do), spanning pure-FG, pure-CG and multi-grained
// variants with non-increasing latency ladders. The result always
// validates.
func GenerateKernel(id string, nISEs int, seed uint64) *ise.Kernel {
	rng := &synthRNG{state: seed ^ 0xA5A5A5A5}
	risc := arch.Cycles(300 + rng.intn(1700))
	k := &ise.Kernel{
		ID:          ise.KernelID(id),
		Name:        "synthetic " + id,
		RISCLatency: risc,
		MonoCG: ise.MonoCGExt{
			Latency:      risc/3 + arch.Cycles(rng.intn(int(risc)/4+1)),
			Instructions: 8 + rng.intn(56),
		},
	}

	// Per-kernel data-path pool: candidates draw from these, sharing
	// reconfigurations.
	poolSize := 6 + rng.intn(6)
	pool := make([]ise.DataPath, poolSize)
	for i := range pool {
		if rng.intn(2) == 0 {
			pool[i] = ise.DataPath{ID: ise.DataPathID(fmt.Sprintf("%s_dp%d_fg", id, i)), Kind: arch.FG, PRCs: 1}
		} else {
			pool[i] = ise.DataPath{ID: ise.DataPathID(fmt.Sprintf("%s_dp%d_cg", id, i)), Kind: arch.CG, CGs: 1}
		}
	}

	for n := 0; n < nISEs; n++ {
		ndps := 1 + rng.intn(4)
		if ndps > poolSize {
			ndps = poolSize
		}
		// Draw distinct data paths from the pool.
		perm := rng.intn(poolSize)
		var dps []ise.DataPath
		seen := map[int]bool{}
		for len(dps) < ndps {
			idx := (perm + rng.intn(poolSize)) % poolSize
			if seen[idx] {
				idx = (idx + 1) % poolSize
			}
			if seen[idx] {
				break
			}
			seen[idx] = true
			dps = append(dps, pool[idx])
		}
		// Non-increasing latency ladder below the RISC latency.
		lat := risc - arch.Cycles(rng.intn(int(risc)/3)) - 1
		lats := make([]arch.Cycles, len(dps))
		for i := range lats {
			lats[i] = lat
			drop := arch.Cycles(rng.intn(int(lat)/2 + 1))
			if lat-drop >= 1 {
				lat -= drop
			}
		}
		k.ISEs = append(k.ISEs, &ise.ISE{
			ID:        fmt.Sprintf("%s.s%d", id, n),
			Kernel:    k.ID,
			DataPaths: dps,
			Latencies: lats,
		})
	}
	return k
}

// GenerateBlock builds a synthetic functional block with nKernels kernels
// of nISEs candidates each, plus matching triggers with the given expected
// execution count.
func GenerateBlock(id string, nKernels, nISEs int, seed uint64) (*ise.FunctionalBlock, []ise.Trigger) {
	blk := &ise.FunctionalBlock{ID: id, Name: "synthetic " + id}
	var triggers []ise.Trigger
	rng := &synthRNG{state: seed}
	for i := 0; i < nKernels; i++ {
		kid := fmt.Sprintf("%s_k%d", id, i)
		blk.Kernels = append(blk.Kernels, GenerateKernel(kid, nISEs, seed+uint64(i)*7919))
		triggers = append(triggers, ise.Trigger{
			Kernel: ise.KernelID(kid),
			E:      int64(200 + rng.intn(5000)),
			TF:     arch.Cycles(500 + rng.intn(5000)),
			TB:     arch.Cycles(50 + rng.intn(1000)),
		})
	}
	return blk, triggers
}

// Combinations returns the nominal size of the ISE combination space of a
// block: the product over kernels of (candidates + 1), counting the
// "select nothing" choice — the number the optimal algorithm would have to
// enumerate without pruning.
func Combinations(blk *ise.FunctionalBlock) float64 {
	total := 1.0
	for _, k := range blk.Kernels {
		total *= float64(len(k.ISEs) + 1)
	}
	return total
}
