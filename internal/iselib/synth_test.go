package iselib

import (
	"testing"
	"testing/quick"
	"time"

	"mrts/internal/ise"
	"mrts/internal/profit"
	"mrts/internal/selector"
)

func TestGenerateKernelValidates(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		k := GenerateKernel("synth", int(n%64)+1, seed)
		return k.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGenerateKernelDeterministic(t *testing.T) {
	a := GenerateKernel("k", 20, 42)
	b := GenerateKernel("k", 20, 42)
	if len(a.ISEs) != len(b.ISEs) || a.RISCLatency != b.RISCLatency {
		t.Fatal("generation not deterministic")
	}
	for i := range a.ISEs {
		if a.ISEs[i].FullLatency() != b.ISEs[i].FullLatency() {
			t.Fatal("ISE latencies not deterministic")
		}
	}
}

func TestGenerateKernelSharesDataPaths(t *testing.T) {
	k := GenerateKernel("k", 30, 7)
	seen := map[ise.DataPathID]int{}
	for _, e := range k.ISEs {
		for _, d := range e.DataPaths {
			seen[d.ID]++
		}
	}
	shared := 0
	for _, n := range seen {
		if n > 1 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("30 candidates share no data path — unrealistic library")
	}
}

func TestGenerateBlockValidates(t *testing.T) {
	blk, triggers := GenerateBlock("b", 6, 20, 1)
	if err := blk.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(triggers) != 6 {
		t.Fatalf("triggers = %d", len(triggers))
	}
	for _, tr := range triggers {
		if err := tr.Validate(); err != nil {
			t.Error(err)
		}
		if blk.Kernel(tr.Kernel) == nil {
			t.Errorf("trigger for unknown kernel %s", tr.Kernel)
		}
	}
}

func TestCombinationsMatchesPaperScale(t *testing.T) {
	// The paper reports more than 78 million combinations for six H.264
	// kernels; six synthetic kernels with 20 candidates each exceed it.
	blk, _ := GenerateBlock("b", 6, 20, 1)
	if got := Combinations(blk); got < 78e6 {
		t.Errorf("combination space = %.0f, want > 78e6", got)
	}
}

// TestGreedyScalesToPaperSizes exercises the Fig. 6 heuristic on the
// paper's extreme library sizes: 6 kernels x 60 ISEs (O(N*M) per round)
// must finish in well under the millisecond range per selection, even
// though the nominal combination space is astronomically large.
func TestGreedyScalesToPaperSizes(t *testing.T) {
	blk, triggers := GenerateBlock("big", 6, 60, 3)
	req := selector.Request{
		Block:    blk,
		Triggers: triggers,
		Fabric:   ise.EmptyFabric{PRC: 4, CG: 4},
		Model:    profit.Multigrained,
	}
	start := time.Now()
	res, err := selector.Greedy(req)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 50*time.Millisecond {
		t.Errorf("greedy took %v on 6x60", elapsed)
	}
	// Evaluation count stays polynomial: at most N rounds x N*M
	// candidates.
	if res.Evaluations > 6*6*60 {
		t.Errorf("evaluations = %d, exceeds N^2*M bound", res.Evaluations)
	}
	if len(res.Selected) == 0 {
		t.Error("nothing selected from a rich library")
	}
}

// TestOptimalPrunesCombinationSpace verifies that branch-and-bound
// explores a vanishing fraction of the nominal combination space.
func TestOptimalPrunesCombinationSpace(t *testing.T) {
	blk, triggers := GenerateBlock("med", 5, 12, 9)
	req := selector.Request{
		Block:    blk,
		Triggers: triggers,
		Fabric:   ise.EmptyFabric{PRC: 3, CG: 3},
		Model:    profit.Multigrained,
	}
	res, err := selector.Optimal(req)
	if err != nil {
		t.Fatal(err)
	}
	nominal := Combinations(blk) // 13^5 = 371k
	if float64(res.Rounds) > nominal/10 {
		t.Errorf("explored %d nodes of %.0f nominal — pruning ineffective", res.Rounds, nominal)
	}
	// And it must still beat or match the greedy heuristic.
	g, err := selector.Greedy(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalProfit() < g.TotalProfit()-1e-6 {
		t.Errorf("optimal profit %v below greedy %v", res.TotalProfit(), g.TotalProfit())
	}
}

// TestGreedyHogsPRCsLikeThePaper reproduces the paper's Fig. 9 worst-case
// anecdote at the selection level: on a PRC-only budget of 4, the greedy
// heuristic "often assigns 3 out of 4 PRCs to one kernel, while the
// optimal algorithm shares them equally between the two most important
// kernels".
func TestGreedyHogsPRCsLikeThePaper(t *testing.T) {
	app := MustNewApplication()
	me := app.Block("me")
	triggers := []ise.Trigger{
		{Kernel: "sad", E: 3000, TF: 3000, TB: 900},
		{Kernel: "satd", E: 1500, TF: 4000, TB: 1200},
		{Kernel: "ipred", E: 1500, TF: 5000, TB: 1200},
	}
	req := selector.Request{
		Block:    me,
		Triggers: triggers,
		Fabric:   ise.EmptyFabric{PRC: 4, CG: 0},
		Model:    profit.Multigrained,
	}
	g, err := selector.Greedy(req)
	if err != nil {
		t.Fatal(err)
	}
	if sel := g.ByKernel("sad"); sel == nil || sel.CostPRC() != 3 {
		t.Fatalf("greedy did not give 3 PRCs to the dominant kernel: %v", g.Selected)
	}
	o, err := selector.Optimal(req)
	if err != nil {
		t.Fatal(err)
	}
	if sel := o.ByKernel("sad"); sel == nil || sel.CostPRC() != 2 {
		t.Fatalf("optimal should split the PRCs (2 for sad): %v", o.Selected)
	}
	if len(o.Selected) <= len(g.Selected) {
		t.Errorf("optimal accelerates %d kernels, greedy %d — expected the split to serve more kernels",
			len(o.Selected), len(g.Selected))
	}
	if o.TotalProfit() <= g.TotalProfit() {
		t.Error("optimal profit should exceed the greedy's in the hog scenario")
	}
}
