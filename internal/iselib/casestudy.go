package iselib

import (
	"mrts/internal/arch"
	"mrts/internal/ise"
)

// CaseStudyKernel returns the combined H.264 deblocking-filter kernel of
// the paper's motivational case study (Section 2, Fig. 1): one kernel with
// a control-dominant condition data path and a data-dominant filter data
// path, and exactly the three ISEs the paper discusses:
//
//	ISE-1: condition and filter data paths on the fine-grained fabric —
//	       long reconfiguration (2 x 1.2 ms), best execution latency;
//	       wins for large execution counts.
//	ISE-2: both data paths on the coarse-grained fabric — reconfigures in
//	       microseconds but executes the bit-level condition logic
//	       inefficiently; wins for small execution counts.
//	ISE-3: condition on FG, filter on CG (multi-grained) — the compromise
//	       that wins in the middle region.
//
// With these latencies the pif curves (Eq. 1) cross at roughly 1600 and
// 2700 executions, reproducing the three dominance regions of Fig. 1 (the
// absolute crossover positions differ from the paper because our substrate
// fixes the core clock at 100 MHz; the structure — CG wins low, MG wins
// mid, FG wins high — is preserved).
func CaseStudyKernel() *ise.Kernel {
	const kid = "deblock"
	return &ise.Kernel{
		ID:          kid,
		Name:        "H.264 Deblocking Filter (case study)",
		RISCLatency: 2000,
		MonoCG:      ise.MonoCGExt{Latency: 750, Instructions: 28},
		ISEs: []*ise.ISE{
			{
				ID:     "deblock.ise1",
				Kernel: kid,
				DataPaths: []ise.DataPath{
					{ID: "db_cond_fg", Kind: arch.FG, PRCs: 1},
					{ID: "db_filt_fg", Kind: arch.FG, PRCs: 1},
				},
				Latencies: []arch.Cycles{1200, 255},
			},
			{
				ID:     "deblock.ise2",
				Kernel: kid,
				DataPaths: []ise.DataPath{
					{ID: "db_cond_cg", Kind: arch.CG, CGs: 1},
					{ID: "db_filt_cg", Kind: arch.CG, CGs: 1},
				},
				Latencies: []arch.Cycles{1100, 375},
			},
			{
				ID:     "deblock.ise3",
				Kernel: kid,
				DataPaths: []ise.DataPath{
					{ID: "db_cond_fg", Kind: arch.FG, PRCs: 1},
					{ID: "db_filt_cg", Kind: arch.CG, CGs: 1},
				},
				Latencies: []arch.Cycles{1200, 300},
			},
		},
	}
}

// CaseStudyBlock wraps the case-study kernel in a functional block, ready
// for the selector and simulator.
func CaseStudyBlock() *ise.FunctionalBlock {
	return &ise.FunctionalBlock{
		ID:      "dbf-case",
		Name:    "Deblocking Filter (case study)",
		Kernels: []*ise.Kernel{CaseStudyKernel()},
	}
}
