package iselib

import (
	"testing"

	"mrts/internal/cgedpe"
	"mrts/internal/h264"
	"mrts/internal/ise"
	"mrts/internal/leon"
)

// The ISE library's latency constants model hand-optimised kernel
// implementations on the paper's platform. These calibration tests check
// every constant we can measure against the functional hardware models
// (internal/leon for RISC mode, internal/cgedpe for the CG fabric): the
// library value must lie within a factor-4 envelope of the measured cycle
// count, and the *orderings* the selection logic depends on must hold
// exactly.

func withinBand(t *testing.T, name string, library, measured int64) {
	t.Helper()
	if library <= 0 || measured <= 0 {
		t.Fatalf("%s: non-positive latencies %d/%d", name, library, measured)
	}
	ratio := float64(library) / float64(measured)
	if ratio < 0.25 || ratio > 4 {
		t.Errorf("%s: library %d vs measured %d cycles (ratio %.2f outside [0.25, 4])",
			name, library, measured, ratio)
	} else {
		t.Logf("%s: library %d vs measured %d cycles (ratio %.2f)", name, library, measured, ratio)
	}
}

func measuredInputs() ([]byte, []byte) {
	cur := make([]byte, 256)
	ref := make([]byte, 256)
	for i := range cur {
		cur[i] = byte(i * 7)
		ref[i] = byte(i*5 + 3)
	}
	return cur, ref
}

func TestRISCLatenciesAgainstLEONModel(t *testing.T) {
	app := MustNewApplication()

	cur, ref := measuredInputs()
	_, sadCycles, err := leon.MeasureSAD(cur, ref)
	if err != nil {
		t.Fatal(err)
	}
	withinBand(t, "sad RISC", int64(app.Kernel(ise.KernelID(h264.KernelSAD)).RISCLatency), sadCycles)

	coeffs := [16]int32{120, -55, 910, 3, -4, 0, 66, -2000, 8, 0, 1, -1, 300, -300, 12, 99}
	_, quantCycles, err := leon.MeasureQuant(coeffs, 13107, 43690, 17)
	if err != nil {
		t.Fatal(err)
	}
	withinBand(t, "quant RISC", int64(app.Kernel(ise.KernelID(h264.KernelQuant)).RISCLatency), quantCycles)

	// Boundary strength: measure the worst-path (motion-vector compare).
	_, bsCycles, err := leon.MeasureBS(false, false, false, false, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	withinBand(t, "bs RISC", int64(app.Kernel(ise.KernelID(h264.KernelBS)).RISCLatency), bsCycles)

	var blk [16]int32
	for i := range blk {
		blk[i] = int32(i*13 - 90)
	}
	_, dctCycles, err := leon.MeasureDCT(blk)
	if err != nil {
		t.Fatal(err)
	}
	withinBand(t, "dct RISC", int64(app.Kernel(ise.KernelID(h264.KernelDCT)).RISCLatency), dctCycles)

	// Edge filter: a segment where every row passes the gradient checks
	// (the expensive path).
	rows := [4][4]uint8{
		{100, 100, 104, 104}, {100, 101, 105, 104},
		{99, 100, 103, 104}, {101, 100, 105, 106},
	}
	_, filtCycles, err := leon.MeasureFilt(rows, 20, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	withinBand(t, "filt RISC", int64(app.Kernel(ise.KernelID(h264.KernelFilt)).RISCLatency), filtCycles)
}

// TestThreeModelsAgreeOnDCT cross-checks the reference implementation and
// both hardware models on the same transform: identical coefficients from
// the Go encoder code, the LEON ISS program and the CG-EDPE context.
func TestThreeModelsAgreeOnDCT(t *testing.T) {
	var blk [16]int32
	var ref h264.Block4
	for i := range blk {
		blk[i] = int32((i*37)%255 - 127)
		ref[i] = blk[i]
	}
	h264.DCT4(&ref)

	leonOut, _, err := leon.MeasureDCT(blk)
	if err != nil {
		t.Fatal(err)
	}
	cgOut, _, err := cgedpe.MeasureDCT(blk)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if leonOut[i] != ref[i] || cgOut[i] != ref[i] {
			t.Fatalf("coefficient %d: reference %d, LEON %d, CG-EDPE %d",
				i, ref[i], leonOut[i], cgOut[i])
		}
	}
}

func TestCGLatenciesAgainstEDPEModel(t *testing.T) {
	app := MustNewApplication()

	cur, ref := measuredInputs()
	_, sadCycles, err := cgedpe.MeasureSAD(cur, ref)
	if err != nil {
		t.Fatal(err)
	}
	sadCG1 := app.Kernel(ise.KernelID(h264.KernelSAD)).ISEByID("sad.cg1")
	withinBand(t, "sad.cg1", int64(sadCG1.FullLatency()), sadCycles)

	var blk [16]int32
	for i := range blk {
		blk[i] = int32(i*13 - 90)
	}
	_, dctCycles, err := cgedpe.MeasureDCT(blk)
	if err != nil {
		t.Fatal(err)
	}
	dctCG1 := app.Kernel(ise.KernelID(h264.KernelDCT)).ISEByID("dct.cg1")
	withinBand(t, "dct.cg1", int64(dctCG1.FullLatency()), dctCycles)

	coeffs := [16]int32{120, -55, 910, 3, -4, 0, 66, -2000, 8, 0, 1, -1, 300, -300, 12, 99}
	_, quantCycles, err := cgedpe.MeasureQuant(coeffs, 13107, 43690, 17)
	if err != nil {
		t.Fatal(err)
	}
	quantCG1 := app.Kernel(ise.KernelID(h264.KernelQuant)).ISEByID("quant.cg1")
	withinBand(t, "quant.cg1", int64(quantCG1.FullLatency()), quantCycles)

	var resid [16]int32
	for i := range resid {
		resid[i] = int32(i*7 - 50)
	}
	_, satdCycles, err := cgedpe.MeasureSATD(resid)
	if err != nil {
		t.Fatal(err)
	}
	satdCG1 := app.Kernel(ise.KernelID(h264.KernelSATD)).ISEByID("satd.cg1")
	withinBand(t, "satd.cg1", int64(satdCG1.FullLatency()), satdCycles)
}

func TestMeasuredSpeedupOrdering(t *testing.T) {
	// The central premise the selection logic relies on: the CG fabric
	// executes the word-level SAD kernel far faster than the RISC core —
	// and the measured models agree.
	cur, ref := measuredInputs()
	_, riscCycles, err := leon.MeasureSAD(cur, ref)
	if err != nil {
		t.Fatal(err)
	}
	_, cgCycles, err := cgedpe.MeasureSAD(cur, ref)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(riscCycles) / float64(cgCycles)
	if speedup < 4 {
		t.Errorf("measured CG speedup for SAD = %.1fx, want >= 4x", speedup)
	}
	t.Logf("measured SAD: RISC %d cycles, CG-EDPE %d cycles (%.1fx)", riscCycles, cgCycles, speedup)

	// And both models agree on the result itself.
	sadRISC, _, _ := leon.MeasureSAD(cur, ref)
	sadCG, _, _ := cgedpe.MeasureSAD(cur, ref)
	if sadRISC != sadCG {
		t.Errorf("models disagree on SAD: %d vs %d", sadRISC, sadCG)
	}
}
