package vfabric_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"mrts/internal/arch"
	"mrts/internal/core"
	"mrts/internal/exp"
	"mrts/internal/fault"
	"mrts/internal/obs"
	"mrts/internal/sim"
	"mrts/internal/vfabric"
	"mrts/internal/workload"
)

var allPolicies = []exp.Policy{
	exp.PolicyRISPP, exp.PolicyOffline, exp.PolicyMorpheus,
	exp.PolicyMRTS, exp.PolicyOptimal, exp.PolicyRISC,
}

func builder(p exp.Policy, w *workload.Result) func(arch.Config) (core.RuntimeSystem, error) {
	return func(cfg arch.Config) (core.RuntimeSystem, error) {
		return exp.NewPolicy(p, cfg, w.App, w.Trace)
	}
}

func tenantFor(p exp.Policy, w *workload.Result, sched *fault.Schedule) vfabric.Tenant {
	return vfabric.Tenant{App: w.App, Trace: w.Trace, Build: builder(p, w), Faults: sched}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestK1ByteIdentity pins the hypervisor's backward-compatibility
// contract: a single tenant under the migrating hypervisor produces a
// report byte-identical to the plain simulator — the Fig. 8 pipeline —
// for every policy, with and without faults.
func TestK1ByteIdentity(t *testing.T) {
	w := workload.Small()
	cfg := arch.Config{NPRC: 4, NCG: 3}
	scenarios := []struct {
		name string
		fo   fault.Options
	}{
		{"benign", fault.Options{}},
		{"faulted", fault.Options{FailPRC: 1, FlapCG: 1, CorruptFG: 2, Horizon: 20_000_000}},
	}
	for _, p := range allPolicies {
		for _, sc := range scenarios {
			for _, migrate := range []bool{false, true} {
				var schedSim, schedHyp *fault.Schedule
				if !sc.fo.IsZero() {
					schedSim = fault.MustSchedule(7, sc.fo)
					schedHyp = fault.MustSchedule(7, sc.fo)
				}
				rts, err := exp.NewPolicy(p, cfg, w.App, w.Trace)
				if err != nil {
					t.Fatal(err)
				}
				want, err := sim.RunOpts(w.App, w.Trace, rts, sim.Options{Faults: schedSim})
				if err != nil {
					t.Fatal(err)
				}
				rep, err := vfabric.Run(
					[]vfabric.Tenant{tenantFor(p, w, schedHyp)},
					vfabric.Options{Physical: cfg, Migrate: migrate},
				)
				if err != nil {
					t.Fatalf("%s/%s migrate=%v: %v", p, sc.name, migrate, err)
				}
				if rep.Repartitions != 0 || rep.Migrations != 0 {
					t.Errorf("%s/%s migrate=%v: K=1 run repartitioned (%d) or migrated (%d)",
						p, sc.name, migrate, rep.Repartitions, rep.Migrations)
				}
				got := rep.Tenants[0].Report
				if gb, wb := mustJSON(t, got), mustJSON(t, want); !bytes.Equal(gb, wb) {
					t.Errorf("%s/%s migrate=%v: K=1 report differs from sim.RunOpts\n got: %s\nwant: %s",
						p, sc.name, migrate, gb, wb)
				}
			}
		}
	}
}

// smallTenants builds k distinct small workloads (different seeds, so
// different content and demand).
func smallTenants(t *testing.T, k int, p exp.Policy) []vfabric.Tenant {
	t.Helper()
	out := make([]vfabric.Tenant, k)
	for i := range out {
		w := workload.MustBuild(workload.Options{Frames: 4, Seed: uint64(i + 1)})
		out[i] = vfabric.Tenant{App: w.App, Trace: w.Trace, Build: builder(p, w)}
	}
	return out
}

func TestRunDeterministic(t *testing.T) {
	tenants := smallTenants(t, 3, exp.PolicyMRTS)
	tenants[0].Weight = 4
	tenants[1].Weight = 2
	opts := vfabric.Options{Physical: arch.Config{NPRC: 4, NCG: 3}, Migrate: true}
	a, err := vfabric.Run(tenants, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := vfabric.Run(tenants, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ab, bb := mustJSON(t, a), mustJSON(t, b); !bytes.Equal(ab, bb) {
		t.Error("two identical hypervisor runs produced different reports")
	}
}

// TestMigratingK3FaultedDeterministicNoLostWork is the regression test
// for the migrating hypervisor under fault injection at K>1: three
// weighted tenants, each with its own fault scenario, on one shared
// fabric. Two identical runs must be byte-identical (repartition,
// migration and fault reactions all land on the deterministic shared
// clock), and no tenant may lose work — every trace replays completely
// no matter how often its window moves or its containers fault.
func TestMigratingK3FaultedDeterministicNoLostWork(t *testing.T) {
	scenarios := []fault.Options{
		{FailPRC: 1, Horizon: 20_000_000},
		{FlapCG: 1, CorruptFG: 2, Horizon: 20_000_000},
		{FailCG: 1, FlapPRC: 1, Horizon: 20_000_000},
	}
	// Fault schedules are consumed as the run advances, so every run gets
	// freshly built tenants with fresh schedules from the same seeds.
	mk := func() []vfabric.Tenant {
		out := make([]vfabric.Tenant, len(scenarios))
		for i, fo := range scenarios {
			w := workload.MustBuild(workload.Options{Frames: 4, Seed: uint64(i + 1)})
			out[i] = tenantFor(exp.PolicyMRTS, w, fault.MustSchedule(uint64(10+i), fo))
			out[i].Weight = []int{4, 2, 1}[i]
		}
		return out
	}
	opts := vfabric.Options{Physical: arch.Config{NPRC: 4, NCG: 3}, Migrate: true}
	a, err := vfabric.Run(mk(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := vfabric.Run(mk(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if ab, bb := mustJSON(t, a), mustJSON(t, b); !bytes.Equal(ab, bb) {
		t.Error("two identical faulted K=3 migrating runs produced different reports")
	}
	// No lost work: every tenant replays its full trace despite faults
	// and window moves.
	want := mk()
	for i, tr := range a.Tenants {
		if tr.Report == nil {
			t.Fatalf("tenant %d has no report", i)
		}
		if got, n := tr.Report.Iterations, len(want[i].Trace.Iterations); got != n {
			t.Errorf("tenant %d replayed %d/%d iterations under faults+migration", i, got, n)
		}
	}
	if a.Makespan <= 0 {
		t.Error("faulted K=3 run reports a non-positive makespan")
	}
}

// TestMigratingRepartitions checks the demand-tracking machinery engages:
// with skewed tenant lengths the short tenants finish, their demand goes
// to zero, and the epoch repartition hands their containers to the
// long-running tenant — migrating its configured paths.
func TestMigratingRepartitions(t *testing.T) {
	long := workload.MustBuild(workload.Options{Frames: 8, Seed: 1})
	short := workload.MustBuild(workload.Options{Frames: 2, Seed: 2})
	tenants := []vfabric.Tenant{
		{App: long.App, Trace: long.Trace, Build: builder(exp.PolicyMRTS, long)},
		{App: short.App, Trace: short.Trace, Build: builder(exp.PolicyMRTS, short)},
	}
	rec := obs.New()
	rep, err := vfabric.Run(tenants, vfabric.Options{
		Physical: arch.Config{NPRC: 4, NCG: 3}, Migrate: true, Observer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repartitions == 0 {
		t.Fatal("skewed tenants never repartitioned")
	}
	// After the short tenant finishes, the long one owns the full fabric.
	if got := rep.Tenants[0].Partition.Config(); got != rep.Physical {
		t.Errorf("long tenant's final partition = %v, want the full fabric %v", got, rep.Physical)
	}
	var sawRepartition bool
	tenantsSeen := map[string]bool{}
	for _, ev := range rec.Events() {
		tenantsSeen[ev.Tenant] = true
		if ev.Kind == obs.KindRepartition {
			sawRepartition = true
			if ev.Source != obs.SourceVFabric || ev.Tenant == "" {
				t.Errorf("repartition event missing source/tenant: %+v", ev)
			}
		}
	}
	if !sawRepartition {
		t.Error("no repartition event in the trace")
	}
	if !tenantsSeen["t0"] || !tenantsSeen["t1"] {
		t.Errorf("trace not tagged with both tenants: %v", tenantsSeen)
	}
	// Both tenants replay their full traces regardless of arbitration.
	for i, tr := range rep.Tenants {
		if tr.Report.Iterations != len(tenants[i].Trace.Iterations) {
			t.Errorf("tenant %d replayed %d/%d iterations", i, tr.Report.Iterations, len(tenants[i].Trace.Iterations))
		}
	}
}

// TestStaticVsMigratingSkewed: with one long and one short tenant the
// migrating hypervisor must not be slower overall than the static
// partition — reclaiming the finished tenant's containers can only help
// the straggler.
func TestStaticVsMigratingSkewed(t *testing.T) {
	long := workload.MustBuild(workload.Options{Frames: 8, Seed: 1})
	short := workload.MustBuild(workload.Options{Frames: 2, Seed: 2})
	mk := func() []vfabric.Tenant {
		return []vfabric.Tenant{
			{App: long.App, Trace: long.Trace, Build: builder(exp.PolicyMRTS, long)},
			{App: short.App, Trace: short.Trace, Build: builder(exp.PolicyMRTS, short)},
		}
	}
	phys := arch.Config{NPRC: 4, NCG: 3}
	st, err := vfabric.Run(mk(), vfabric.Options{Physical: phys})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := vfabric.Run(mk(), vfabric.Options{Physical: phys, Migrate: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Repartitions != 0 || st.Migrations != 0 {
		t.Errorf("static run repartitioned (%d) or migrated (%d)", st.Repartitions, st.Migrations)
	}
	if mg.Makespan > st.Makespan {
		t.Errorf("migrating makespan %d worse than static %d", mg.Makespan, st.Makespan)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := vfabric.Run(nil, vfabric.Options{Physical: arch.Config{NPRC: 1}}); err == nil {
		t.Error("empty tenant set accepted")
	}
	w := workload.Small()
	if _, err := vfabric.Run(
		[]vfabric.Tenant{{App: w.App, Trace: w.Trace}},
		vfabric.Options{Physical: arch.Config{NPRC: 1}},
	); err == nil {
		t.Error("tenant without Build accepted")
	}
}
