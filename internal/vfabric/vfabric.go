// Package vfabric is the multi-tenant fabric hypervisor: it slices one
// physical reconfigurable fabric (the FG PRC slots and the CG-EDPE
// containers) into per-tenant *vFabrics* and multiplexes K independent
// runtime-system instances — each tenant its own MPU, ECU and selector
// over its own trace — against their partitions under one shared fabric
// clock.
//
// Two arbitration modes exist. *Static* fixes the partition up front:
// each tenant's runtime system is built for exactly its window sizes and
// never sees the rest of the fabric. *Migrating* builds every tenant at
// the full physical fabric with the complement of its share reserved, and
// re-partitions at epoch boundaries as tenant demand shifts: windows are
// recomputed from weighted remaining work, and configured data paths that
// fall outside a tenant's new window are live-migrated — re-streamed into
// the new share at full destination reconfiguration cost (the existing
// FG/CG constants), with the donor container drained first because
// repartitions only happen between block iterations, never mid-execution.
//
// Determinism contract: tenants are stepped lowest-local-clock-first
// (ties broken by tenant index), allocation uses largest-remainder
// rounding with index-ordered ties, and migration is priced purely
// through the reconfiguration port. Two runs of the same tenant set are
// byte-identical; a single-tenant run is byte-identical to the plain
// single-application simulator (sim.RunOpts) because the hypervisor then
// reserves nothing and never repartitions.
package vfabric

import (
	"fmt"

	"mrts/internal/arch"
	"mrts/internal/core"
	"mrts/internal/fault"
	"mrts/internal/ise"
	"mrts/internal/obs"
	"mrts/internal/sim"
	"mrts/internal/trace"
)

// DefaultEpochCycles is the repartition period on the shared fabric
// clock: ~2M core cycles, a handful of functional-block windows — long
// enough to amortise a full FG migration (120k cycles), short enough to
// track scene-level demand shifts.
const DefaultEpochCycles arch.Cycles = 2_000_000

// Tenant is one application admitted to the hypervisor.
type Tenant struct {
	// Name labels the tenant in reports and trace events (default t<i>).
	Name string
	// App and Trace are the tenant's application model and workload.
	App   *ise.Application
	Trace *trace.Trace
	// Build constructs the tenant's runtime system for a fabric budget:
	// its window sizes under static partitioning, the full physical
	// fabric under the migrating hypervisor.
	Build func(arch.Config) (core.RuntimeSystem, error)
	// Weight scales the tenant's share of the fabric (default 1); the
	// priority tiers of the tenant experiments are weights 4/2/1.
	Weight int
	// Faults optionally injects this tenant's fault scenario.
	Faults *fault.Schedule
}

// Options configure one hypervisor run.
type Options struct {
	// Physical is the physical fabric being partitioned.
	Physical arch.Config
	// Migrate selects the migrating hypervisor; false = static partition.
	Migrate bool
	// EpochCycles is the repartition period (DefaultEpochCycles if zero).
	EpochCycles arch.Cycles
	// Observer taps the interleaved decision trace; events are stamped
	// with the tenant being stepped.
	Observer *obs.Recorder
}

// TenantReport is one tenant's outcome.
type TenantReport struct {
	Name      string         `json:"name"`
	Weight    int            `json:"weight"`
	Partition arch.Partition `json:"partition"` // final windows
	Report    *sim.Report    `json:"report"`
}

// Report is the hypervisor run outcome.
type Report struct {
	Physical arch.Config    `json:"physical"`
	Migrate  bool           `json:"migrate"`
	Tenants  []TenantReport `json:"tenants"`
	// Makespan is the largest tenant completion time on the shared clock.
	Makespan arch.Cycles `json:"makespan"`
	// Repartitions counts epoch boundaries at which at least one window
	// moved; Migrations/MigrationCycles aggregate the per-tenant path
	// migrations they triggered.
	Repartitions    int64       `json:"repartitions,omitempty"`
	Migrations      int64       `json:"migrations,omitempty"`
	MigrationCycles arch.Cycles `json:"migration_cycles,omitempty"`
}

// tenantState is the hypervisor's bookkeeping for one admitted tenant.
type tenantState struct {
	Tenant
	st  *sim.Stepper
	win arch.Partition
}

// Run partitions the physical fabric across the tenants and steps them to
// completion. See the package comment for the arbitration modes and the
// determinism contract.
func Run(tenants []Tenant, opts Options) (*Report, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("vfabric: no tenants")
	}
	if err := opts.Physical.Validate(); err != nil {
		return nil, fmt.Errorf("vfabric: physical fabric: %w", err)
	}
	epoch := opts.EpochCycles
	if epoch <= 0 {
		epoch = DefaultEpochCycles
	}

	states := make([]*tenantState, len(tenants))
	weights := make([]int64, len(tenants))
	demand := make([]int64, len(tenants))
	for i, t := range tenants {
		if t.Name == "" {
			t.Name = fmt.Sprintf("t%d", i)
		}
		if t.Weight <= 0 {
			t.Weight = 1
		}
		if t.App == nil || t.Trace == nil || t.Build == nil {
			return nil, fmt.Errorf("vfabric: tenant %s: App, Trace and Build are required", t.Name)
		}
		states[i] = &tenantState{Tenant: t}
		weights[i] = int64(t.Weight)
		demand[i] = int64(t.Weight) * int64(len(t.Trace.Iterations))
	}

	// Initial partition from the weighted total work.
	wins := partition(opts.Physical, demand)
	for i, ts := range states {
		ts.win = wins[i]
		var (
			rts core.RuntimeSystem
			err error
		)
		simOpts := sim.Options{Faults: ts.Faults, Observer: opts.Observer}
		if opts.Migrate {
			// The runtime system owns the whole physical fabric with the
			// other tenants' share reserved; with one tenant the
			// reservation is zero and this is exactly a single-app run.
			rts, err = ts.Build(opts.Physical)
			if err == nil {
				simOpts.ReservePRC = opts.Physical.NPRC - ts.win.PRC.N
				simOpts.ReserveCG = opts.Physical.NCG - ts.win.CG.N
			}
		} else {
			rts, err = ts.Build(ts.win.Config())
		}
		if err != nil {
			return nil, fmt.Errorf("vfabric: tenant %s: %w", ts.Name, err)
		}
		opts.Observer.SetTenant(ts.Name)
		st, err := sim.NewStepper(ts.App, ts.Trace, rts, simOpts)
		if err != nil {
			opts.Observer.SetTenant("")
			return nil, fmt.Errorf("vfabric: tenant %s: %w", ts.Name, err)
		}
		ts.st = st
	}
	defer opts.Observer.SetTenant("")

	rep := &Report{Physical: opts.Physical, Migrate: opts.Migrate}
	nextEpoch := epoch
	for {
		// Pick the laggard: the unfinished tenant with the lowest local
		// clock (ties by index) — the shared-fabric interleaving order.
		next := -1
		for i, ts := range states {
			if ts.st.Done() {
				continue
			}
			if next < 0 || ts.st.Now() < states[next].st.Now() {
				next = i
			}
		}
		if next < 0 {
			break
		}
		ts := states[next]
		opts.Observer.SetTenant(ts.Name)
		if err := ts.st.Step(); err != nil {
			return nil, fmt.Errorf("vfabric: tenant %s: %w", ts.Name, err)
		}

		if opts.Migrate && len(states) > 1 {
			// The shared clock is the slowest unfinished tenant; an epoch
			// boundary repartitions from weighted remaining work.
			clock := sharedClock(states)
			if clock >= nextEpoch {
				if err := repartition(states, opts, weights, rep); err != nil {
					return nil, err
				}
				for nextEpoch <= clock {
					nextEpoch += epoch
				}
			}
		}
	}

	for _, ts := range states {
		r := ts.st.Finish()
		rep.Tenants = append(rep.Tenants, TenantReport{
			Name: ts.Name, Weight: ts.Weight, Partition: ts.win, Report: r,
		})
		if r.TotalCycles > rep.Makespan {
			rep.Makespan = r.TotalCycles
		}
		rep.Migrations += r.Reconfig.Migrations
		rep.MigrationCycles += r.Reconfig.MigrationCycles
	}
	return rep, nil
}

// sharedClock is the hypervisor's notion of now: the lowest local clock
// among unfinished tenants (the makespan so far when all are done).
func sharedClock(states []*tenantState) arch.Cycles {
	var clock arch.Cycles = -1
	for _, ts := range states {
		if ts.st.Done() {
			continue
		}
		if clock < 0 || ts.st.Now() < clock {
			clock = ts.st.Now()
		}
	}
	return clock
}

// repartition recomputes the windows from weighted remaining work and
// applies every change: the tenant's reconfiguration controller resizes
// its share, migrating or evicting the data paths the move displaces, and
// a reacting runtime system is told about the invalidations so it
// re-selects over its new share (the visible cost lands on that tenant's
// critical path).
func repartition(states []*tenantState, opts Options, weights []int64, rep *Report) error {
	demand := make([]int64, len(states))
	for i, ts := range states {
		demand[i] = weights[i] * int64(ts.st.Remaining())
	}
	wins := partition(opts.Physical, demand)
	changed := false
	for i, ts := range states {
		nw := wins[i]
		if nw == ts.win {
			continue
		}
		changed = true
		old := ts.win
		ts.win = nw
		if ts.st.Done() {
			continue
		}
		now := ts.st.Now()
		ctrl := ts.st.RTS().Controller()
		opts.Observer.SetTenant(ts.Name)
		if _, _, err := ctrl.Repartition(arch.FG, nw.PRC.N, old.PRC.Overlap(nw.PRC), now); err != nil {
			return fmt.Errorf("vfabric: tenant %s: %w", ts.Name, err)
		}
		if _, _, err := ctrl.Repartition(arch.CG, nw.CG.N, old.CG.Overlap(nw.CG), now); err != nil {
			return fmt.Errorf("vfabric: tenant %s: %w", ts.Name, err)
		}
		if opts.Observer != nil {
			opts.Observer.Record(obs.Event{
				Cycle: now, Source: obs.SourceVFabric, Kind: obs.KindRepartition,
				Detail: fmt.Sprintf("prc=%s cg=%s (was prc=%s cg=%s)", nw.PRC, nw.CG, old.PRC, old.CG),
			})
		}
		// The displaced paths invalidate the ISEs referencing them; a
		// reacting runtime system re-selects over the new share and its
		// visible overhead extends this tenant's software path.
		lost := ctrl.TakeInvalidated()
		if fh, ok := ts.st.RTS().(core.FaultHandler); ok && len(lost) > 0 {
			visible, err := fh.OnFault(lost, now)
			if err != nil {
				return fmt.Errorf("vfabric: tenant %s: repartition reaction: %w", ts.Name, err)
			}
			ts.st.AddOverhead(visible)
		}
	}
	if changed {
		rep.Repartitions++
	}
	return nil
}

// partition allocates each fabric's containers across the demands by
// largest-remainder rounding and packs the shares into contiguous windows
// in tenant index order.
func partition(phys arch.Config, demand []int64) []arch.Partition {
	prc := allocate(phys.NPRC, demand)
	cg := allocate(phys.NCG, demand)
	out := make([]arch.Partition, len(demand))
	pStart, cStart := 0, 0
	for i := range demand {
		out[i] = arch.Partition{
			PRC: arch.Window{Start: pStart, N: prc[i]},
			CG:  arch.Window{Start: cStart, N: cg[i]},
		}
		pStart += prc[i]
		cStart += cg[i]
	}
	return out
}

// allocate splits total units proportionally to the demands using the
// largest-remainder method; ties go to the lower index. Zero total demand
// allocates nothing (every tenant is finished).
func allocate(total int, demand []int64) []int {
	out := make([]int, len(demand))
	var sum int64
	for _, d := range demand {
		sum += d
	}
	if total <= 0 || sum <= 0 {
		return out
	}
	type frac struct {
		i   int
		rem int64
	}
	rems := make([]frac, 0, len(demand))
	used := 0
	for i, d := range demand {
		share := int64(total) * d
		out[i] = int(share / sum)
		used += out[i]
		rems = append(rems, frac{i: i, rem: share % sum})
	}
	// Stable selection sort over the leftovers: largest remainder first,
	// ties by index — len(demand) is K ≤ a handful.
	for left := total - used; left > 0; left-- {
		best := -1
		for _, f := range rems {
			if f.rem < 0 {
				continue
			}
			if best < 0 || f.rem > rems[best].rem {
				best = f.i
			}
		}
		if best < 0 {
			break
		}
		out[best]++
		rems[best].rem = -1
	}
	return out
}
