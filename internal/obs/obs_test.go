package obs

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mrts/internal/arch"
)

// TestNilRecorderIsNoOp pins the disabled-state contract: every method of a
// nil *Recorder must be a safe no-op, because call sites across the stack
// hold a possibly-nil recorder and only hot paths add their own guard.
func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.SetRun("x")
	r.Record(Event{Source: SourceSim, Kind: KindRun})
	r.Reset()
	if got := r.Len(); got != 0 {
		t.Errorf("nil.Len() = %d, want 0", got)
	}
	if got := r.Events(); got != nil {
		t.Errorf("nil.Events() = %v, want nil", got)
	}
	if err := r.Flush(); err != nil {
		t.Errorf("nil.Flush() = %v, want nil", err)
	}
	if got := r.JSONL(); got != "" {
		t.Errorf("nil.JSONL() = %q, want empty", got)
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil.WriteJSONL wrote %q, err %v", buf.String(), err)
	}
}

func TestRecorderStampsRunLabel(t *testing.T) {
	r := New()
	r.Record(Event{Cycle: 1, Source: SourceSim, Kind: KindRun})
	r.SetRun("mrts/2x2")
	r.Record(Event{Cycle: 2, Source: SourceCore, Kind: KindCacheMiss})
	r.Record(Event{Cycle: 3, Source: SourceCore, Kind: KindCacheHit, Run: "explicit"})
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("Len = %d, want 3", len(evs))
	}
	if evs[0].Run != "" {
		t.Errorf("pre-label event got run %q, want empty", evs[0].Run)
	}
	if evs[1].Run != "mrts/2x2" {
		t.Errorf("labelled event got run %q", evs[1].Run)
	}
	if evs[2].Run != "explicit" {
		t.Errorf("explicit run overwritten: %q", evs[2].Run)
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	r := New()
	r.Record(Event{Cycle: 1})
	evs := r.Events()
	evs[0].Cycle = 99
	if got := r.Events()[0].Cycle; got != 1 {
		t.Errorf("mutating the returned slice reached the recorder: cycle = %d", got)
	}
}

// TestJSONLRoundTrip: every field written by WriteJSONL must survive
// ReadAll unchanged — the contract between the recorder and
// cmd/mrts-timeline.
func TestJSONLRoundTrip(t *testing.T) {
	r := New()
	r.SetRun("mrts/2x1")
	full := Event{
		Cycle: 42, Source: SourceSelector, Kind: KindClaim,
		Block: "enc", Phase: "P", Kernel: "sad", ISE: "sad-cg",
		Path: "PRC0/dp1", Fabric: "FG", Mode: "full-ISE",
		Level: 2, Round: 3, E: 1200, TF: 77, TB: 13,
		Profit: 1.5, Latency: 9, Ready: 51, Detail: "d",
	}
	r.Record(full)
	r.Record(Event{Cycle: 43, Source: SourceSim, Kind: KindFault})

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Events()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip changed events:\n got %+v\nwant %+v", got, want)
	}
	if got[0].Run != "mrts/2x1" {
		t.Errorf("run label lost: %q", got[0].Run)
	}
}

func TestReadAllSkipsBlankAndReportsLine(t *testing.T) {
	in := "\n{\"cycle\":1,\"source\":\"sim\",\"kind\":\"run\"}\n\n  \n{\"cycle\":2,\"source\":\"mpu\",\"kind\":\"observe\"}\n"
	evs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Cycle != 1 || evs[1].Cycle != 2 {
		t.Errorf("ReadAll = %+v", evs)
	}

	_, err = ReadAll(strings.NewReader("{\"cycle\":1}\n{oops\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("malformed line error = %v, want 1-based line number", err)
	}
}

func TestReadAllLenientSkipsMalformed(t *testing.T) {
	// A corrupt line in the middle and a torn line at the tail — the shape
	// of a trace whose writer was SIGKILLed mid-flush.
	in := "{\"cycle\":1,\"source\":\"sim\",\"kind\":\"run\"}\n" +
		"not json at all\n" +
		"{\"cycle\":2,\"source\":\"mpu\",\"kind\":\"observe\"}\n" +
		"\n" +
		"{\"cycle\":3,\"source\":\"ecu\",\"kind\":\"disp"
	evs, skipped, err := ReadAllLenient(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Cycle != 1 || evs[1].Cycle != 2 {
		t.Errorf("events = %+v, want the two intact lines", evs)
	}
	if len(skipped) != 2 || skipped[0] != 2 || skipped[1] != 5 {
		t.Errorf("skipped = %v, want [2 5] (1-based, blanks not counted as skips)", skipped)
	}
}

func TestReadAllLenientEmpty(t *testing.T) {
	evs, skipped, err := ReadAllLenient(strings.NewReader(""))
	if err != nil || len(evs) != 0 || len(skipped) != 0 {
		t.Errorf("empty trace: evs=%v skipped=%v err=%v", evs, skipped, err)
	}
}

func TestStreamingRecorderWritesAtRecordTime(t *testing.T) {
	var buf bytes.Buffer
	r := NewStreaming(&buf)
	r.SetRun("s")
	r.Record(Event{Cycle: 5, Source: SourceReconfig, Kind: KindConfig, Path: "CG0", Ready: 105, Latency: 100})
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Ready != 105 || evs[0].Run != "s" {
		t.Errorf("streamed events = %+v", evs)
	}
	// The in-memory copy is kept alongside the stream.
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestResetDropsEvents(t *testing.T) {
	r := New()
	r.Record(Event{Cycle: 1})
	r.Reset()
	if r.Len() != 0 {
		t.Errorf("Len after Reset = %d", r.Len())
	}
	r.Record(Event{Cycle: 2})
	if got := r.Events(); len(got) != 1 || got[0].Cycle != 2 {
		t.Errorf("recorder unusable after Reset: %+v", got)
	}
}

// TestRecorderConcurrent exercises the mutex under the race detector: the
// service records from worker goroutines and sweeps fan points across cores.
func TestRecorderConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Cycle: arch.Cycles(i), Source: SourceECU, Kind: KindDispatch, Round: g})
			}
		}(g)
	}
	wg.Wait()
	if got := r.Len(); got != 800 {
		t.Errorf("Len = %d, want 800", got)
	}
}
