// Package obs is the decision-trace observability layer of the simulator:
// a structured event recorder threaded through the runtime-system stack
// (MPU forecast corrections, greedy selection claims, ECU dispatch
// decisions, reconfiguration-port activity, fault deliveries, selection
// cache traffic) that answers the question every selection regression
// boils down to — *why* did mRTS pick this ISE variant at this instant?
//
// Events carry the monotonic simulation-cycle timestamp at which they were
// recorded and serialise to JSONL (one JSON object per line), the format
// `cmd/mrts-timeline` renders into per-container Gantt timelines.
//
// The recorder is strictly a tap: it never feeds back into the simulation,
// so a run with a recorder attached produces a report byte-identical to a
// run without one. Every recording method is nil-safe — a nil *Recorder is
// the disabled state, and call sites additionally guard with a nil check so
// that observation off costs neither time nor allocations on the hot path.
package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"mrts/internal/arch"
)

// Event sources, one per instrumented layer.
const (
	SourceMPU      = "mpu"      // forecast corrections, observations, disruptions
	SourceSelector = "selector" // per-round greedy claims with profit inputs
	SourceECU      = "ecu"      // per-execution dispatch decisions
	SourceReconfig = "reconfig" // configuration-port start/finish/retry/evict
	SourceSim      = "sim"      // run markers and fault deliveries
	SourceCore     = "core"     // selection-cache hits/misses, invalidations
	SourceVFabric  = "vfabric"  // hypervisor repartitions and tenant scheduling
	SourceNet      = "net"      // injected network faults and cluster liveness transitions
)

// Event kinds. Not every kind carries every field; zero-valued fields are
// omitted from the wire encoding.
const (
	KindRun        = "run"        // run marker: policy/fabric of the stream
	KindForecast   = "forecast"   // MPU-corrected trigger forecast
	KindObserve    = "observe"    // monitored ground truth folded into the MPU
	KindDisrupt    = "disrupt"    // MPU told to discard the iteration's observations
	KindClaim      = "claim"      // greedy round granted an ISE its resources
	KindDispatch   = "dispatch"   // ECU execution-mode decision
	KindConfig     = "config"     // configuration streaming scheduled (Cycle..Ready)
	KindRetry      = "retry"      // corrupted bitstream re-streamed after backoff
	KindEvict      = "evict"      // data path removed from the fabric
	KindUnitFail   = "unit-fail"  // container taken out of service
	KindUnitUp     = "unit-up"    // container recovered from a transient outage
	KindFault      = "fault"      // fault event delivered by the simulator
	KindCacheHit   = "cache-hit"  // selection replayed from the selection cache
	KindCacheMiss  = "cache-miss" // selection ran the selector for real
	KindInvalidate = "invalidate" // selected ISE dropped: a data path was lost
	KindSkip       = "skip"       // committed ISE skipped by the surviving fabric

	KindMigrate     = "migrate"     // configured data path re-streamed into a new container
	KindRepartition = "repartition" // a tenant's vFabric windows changed at an epoch boundary

	KindPartition   = "partition"    // a network partition opened (netfault)
	KindPartHeal    = "part-heal"    // a network partition healed
	KindSuspect     = "suspect"      // a peer entered the suspect state (flap damping)
	KindRejoin      = "rejoin"       // a dead peer rejoined; resync may follow
	KindFenceReject = "fence-reject" // a stale steal ack was rejected by its fencing token
)

// Event is one structured decision-trace record. Cycle is always the
// simulation time at which the event was recorded, so events of one run are
// non-decreasing in Cycle; spans (configuration streaming) carry their
// completion time in Ready.
type Event struct {
	Cycle  arch.Cycles `json:"cycle"`
	Source string      `json:"source"`
	Kind   string      `json:"kind"`

	// Run labels the run the event belongs to when several runs share one
	// trace stream (mrts-sweep -trace).
	Run string `json:"run,omitempty"`
	// Tenant labels the vFabric tenant the event belongs to when a
	// hypervisor multiplexes several runtime systems over one stream.
	Tenant string `json:"tenant,omitempty"`
	// Node labels the cluster member that produced the event when traces
	// from several mrts-serve nodes are merged for analysis.
	Node string `json:"node,omitempty"`

	Block  string `json:"block,omitempty"`
	Phase  string `json:"phase,omitempty"`
	Kernel string `json:"kernel,omitempty"`
	ISE    string `json:"ise,omitempty"`
	// Path is the data-path / container identifier of reconfiguration
	// events — the lane key of the per-container timeline.
	Path   string `json:"path,omitempty"`
	Fabric string `json:"fabric,omitempty"` // "FG" or "CG"
	Mode   string `json:"mode,omitempty"`   // ECU execution mode
	Level  int    `json:"level,omitempty"`  // intermediate-ISE level
	Round  int    `json:"round,omitempty"`  // greedy selection round

	// E / TF / TB are forecast or observation values (executions, time to
	// first execution, time between executions).
	E  int64 `json:"e,omitempty"`
	TF int64 `json:"tf,omitempty"`
	TB int64 `json:"tb,omitempty"`
	// Err is the absolute execution-count forecast error of a scored
	// observe event: |issued forecast - observed count|. Omitted when the
	// observation was discarded (disrupted iteration) or nothing was
	// issued; a perfect forecast encodes as 0 and is omitted too.
	Err int64 `json:"err,omitempty"`

	// Profit is the expected profit of a selector claim.
	Profit float64 `json:"profit,omitempty"`
	// Latency is an execution or backoff latency.
	Latency arch.Cycles `json:"latency,omitempty"`
	// Ready is the completion time of a span that starts at Cycle.
	Ready arch.Cycles `json:"ready,omitempty"`

	Detail string `json:"detail,omitempty"`
}

// Recorder collects events. The zero value is not usable; use New or
// NewStreaming. A nil *Recorder is the disabled recorder: every method is a
// no-op, so call sites need no guard (though hot paths keep one to skip
// event construction entirely).
//
// Recorders are safe for concurrent use: the service records from worker
// goroutines, and a sweep may fan points out across cores.
type Recorder struct {
	mu     sync.Mutex
	run    string
	tenant string
	node   string
	events []Event
	w      *bufio.Writer
	err    error
}

// New creates an in-memory recorder.
func New() *Recorder { return &Recorder{} }

// NewStreaming creates a recorder that additionally writes each event to w
// as JSONL at record time (buffered; call Flush when the run is done).
func NewStreaming(w io.Writer) *Recorder {
	return &Recorder{w: bufio.NewWriter(w)}
}

// SetRun labels every subsequently recorded event with the run identifier,
// so several runs can share one trace stream. Nil-safe.
func (r *Recorder) SetRun(run string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.run = run
	r.mu.Unlock()
}

// SetTenant labels every subsequently recorded event with the tenant
// identifier. The vfabric hypervisor switches it before stepping each
// tenant so that interleaved events stay attributable. Nil-safe.
func (r *Recorder) SetTenant(tenant string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tenant = tenant
	r.mu.Unlock()
}

// SetNode labels every subsequently recorded event with the cluster
// member that produced it, so traces captured on different mrts-serve
// nodes stay attributable after they are merged. Nil-safe.
func (r *Recorder) SetNode(node string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.node = node
	r.mu.Unlock()
}

// Record appends one event, stamping the current run and tenant labels.
// Nil-safe.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ev.Run == "" {
		ev.Run = r.run
	}
	if ev.Tenant == "" {
		ev.Tenant = r.tenant
	}
	if ev.Node == "" {
		ev.Node = r.node
	}
	r.events = append(r.events, ev)
	if r.w != nil && r.err == nil {
		b, err := json.Marshal(ev)
		if err == nil {
			_, err = r.w.Write(append(b, '\n'))
		}
		if err != nil {
			r.err = err
		}
	}
}

// Len returns the number of recorded events. Nil-safe (0).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of the recorded events in record order. Nil-safe
// (nil).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Reset drops every recorded event (the streaming sink, if any, is kept).
// Nil-safe.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = r.events[:0]
	r.mu.Unlock()
}

// Flush flushes the streaming sink and returns the first error the sink
// produced, if any. Nil-safe (nil).
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.w != nil && r.err == nil {
		r.err = r.w.Flush()
	}
	return r.err
}

// WriteJSONL serialises the recorded events to w, one JSON object per
// line. Nil-safe (writes nothing).
func (r *Recorder) WriteJSONL(w io.Writer) error {
	for _, ev := range r.Events() {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// JSONL returns the recorded events as one JSONL string. Nil-safe ("").
func (r *Recorder) JSONL() string {
	if r == nil {
		return ""
	}
	var buf bytes.Buffer
	_ = r.WriteJSONL(&buf) // bytes.Buffer writes cannot fail
	return buf.String()
}

// ReadAll parses a JSONL trace stream back into events. Blank lines are
// skipped; a malformed line fails with its 1-based line number.
func ReadAll(rd io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return out, nil
}

// ReadAllLenient parses a JSONL trace stream, skipping malformed lines
// instead of failing on the first one — the right behaviour for traces
// truncated by a crash or corrupted in transit. It returns the events it
// could parse and the 1-based line numbers it skipped; only I/O errors
// are fatal. Blank lines are neither events nor skips.
func ReadAllLenient(rd io.Reader) ([]Event, []int, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var out []Event
	var skipped []int
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			skipped = append(skipped, line)
			continue
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return out, skipped, nil
}
