package selector

import (
	"container/list"
	"reflect"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"mrts/internal/arch"
	"mrts/internal/ise"
)

// This file implements the cross-point selection memo behind the batch
// sweep engine (internal/batch): a full resource sweep evaluates thousands
// of selections whose inputs repeat — both within one run (the per-run
// cache in internal/core catches those) and *across* neighbouring sweep
// points, where the same block reaches the same fabric state under a
// slightly different capacity budget. Memo keys are exact fingerprints of
// the selector's entire input surface, with one twist that makes adjacent
// points share entries: free capacity is clamped at the block's demand
// bound (see DemandBound), because the greedy selection provably cannot
// distinguish capacity beyond it.

// DemandBound returns an upper bound on the fabric capacity any single
// greedy selection over the block can consume: per kernel, the maximum
// over its ISEs of the summed PRC (resp. CG-EDPE) units of the ISE's data
// paths, summed over the block's kernels. The two dimensions are bounded
// independently, which only loosens the bound.
//
// Its significance is the saturation-clamp property the cross-point memo
// rests on: the greedy algorithm reads free capacity only through
// state.fits, and the profit function never reads free capacity at all
// (it sees IsConfigured and PortBacklog). If the initial free capacity of
// one dimension is at least the block's demand bound, the remaining free
// capacity in that dimension exceeds the capacity cost of every surviving
// candidate in every round — fits can never fail on that dimension — so
// the selection Result (choices, evaluation counts, rounds) is invariant
// under further capacity. Two sweep points whose free capacity differs
// only beyond the bound therefore see byte-identical selections, and the
// fingerprint may clamp free capacity to min(free, bound).
func DemandBound(b *ise.FunctionalBlock) (prc, cg int) {
	if v, ok := demandCache.Load(b); ok {
		d := v.([2]int)
		return d[0], d[1]
	}
	for _, k := range b.Kernels {
		maxPRC, maxCG := 0, 0
		for _, e := range k.ISEs {
			p, c := 0, 0
			for _, d := range e.DataPaths {
				p += d.PRCs
				c += d.CGs
			}
			if p > maxPRC {
				maxPRC = p
			}
			if c > maxCG {
				maxCG = c
			}
		}
		prc += maxPRC
		cg += maxCG
	}
	demandCache.Store(b, [2]int{prc, cg})
	return prc, cg
}

// demandCache memoizes DemandBound per block object. Blocks are immutable
// once built and live as long as their workload, so the cache never needs
// invalidation.
var demandCache sync.Map // map[*ise.FunctionalBlock][2]int

// AppendFingerprint appends a canonical encoding of the request's entire
// selection-relevant input surface to dst and returns the extended buffer:
// the block's identity (object identity, not just ID — two workloads may
// reuse block names), the profit model, the demand-clamped free capacity,
// both configuration-port backlogs, the triggers in order, and the
// configured-bit of every candidate data path (the only configured state
// the greedy selection and the profit function can observe), enumerated in
// the deterministic candidate order. Requests with equal fingerprints are
// indistinguishable to Greedy, so a memoized Result replays exactly.
func AppendFingerprint(dst []byte, q Request) []byte {
	dst = strconv.AppendUint(dst, uint64(reflect.ValueOf(q.Block).Pointer()), 16)
	dst = append(dst, '|')
	dst = append(dst, q.Block.ID...)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(q.Model), 10)
	dst = append(dst, '|')
	dPRC, dCG := DemandBound(q.Block)
	dst = strconv.AppendInt(dst, int64(min(q.Fabric.FreePRC(), dPRC)), 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(min(q.Fabric.FreeCG(), dCG)), 10)
	dst = append(dst, '|')
	if pv, ok := q.Fabric.(ise.PortView); ok {
		dst = strconv.AppendInt(dst, int64(pv.PortBacklog(arch.FG)), 10)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(pv.PortBacklog(arch.CG)), 10)
	}
	for _, t := range q.Triggers {
		dst = append(dst, '|')
		dst = append(dst, string(t.Kernel)...)
		dst = append(dst, ':')
		dst = strconv.AppendInt(dst, t.E, 10)
		dst = append(dst, ':')
		dst = strconv.AppendInt(dst, int64(t.TF), 10)
		dst = append(dst, ':')
		dst = strconv.AppendInt(dst, int64(t.TB), 10)
	}
	// Configured-bits of the candidate data paths, in the deterministic
	// enumeration order of gatherCandidates. The IDs themselves are fully
	// determined by block identity and trigger order (both encoded above),
	// so positional bits suffice.
	dst = append(dst, '|')
	for _, t := range q.Triggers {
		k := q.Block.Kernel(t.Kernel)
		if k == nil {
			continue
		}
		for _, e := range k.ISEs {
			for _, d := range e.DataPaths {
				if q.Fabric.IsConfigured(d.ID) {
					dst = append(dst, '1')
				} else {
					dst = append(dst, '0')
				}
			}
		}
	}
	return dst
}

// Fingerprint is AppendFingerprint into a fresh string.
func Fingerprint(q Request) string {
	return string(AppendFingerprint(nil, q))
}

// DefaultMemoSize bounds a Memo created with NewMemo(0). A sweep touches
// a handful of blocks × a few dozen fabric states × the capacity lattice
// below each block's demand bound; 4096 entries hold all of it for the
// repo's workloads with room to spare.
const DefaultMemoSize = 4096

// MemoStats is a snapshot of a Memo's traffic.
type MemoStats struct {
	// Hits counts selections replayed from the memo (the seed hits of the
	// batch engine); Misses counts selections computed for real.
	Hits, Misses uint64
}

// Memo is a concurrency-safe, bounded LRU memo of Greedy results keyed by
// request fingerprint. It is the cross-point sharing layer of the batch
// engine: one Memo is scoped to one workload and shared by every (policy
// instance, sweep point) evaluated over it, so a selection computed at one
// lattice point seeds its neighbours. Soundness does not depend on the
// lattice walk order — keys are exact (see AppendFingerprint), so a hit
// replays precisely the Result Greedy would return — which is why batch
// output is byte-identical to sequential output under any worker count.
//
// Only use a Memo with the Greedy algorithm. Optimal's Result carries its
// branch-and-bound node count in Rounds, which feeds the modelled overhead
// and is not captured by the fingerprint.
type Memo struct {
	mu     sync.Mutex
	cap    int
	order  *list.List // front = most recent; values are *memoEntry
	byKey  map[string]*list.Element
	hits   atomic.Uint64
	misses atomic.Uint64
}

type memoEntry struct {
	key string
	res Result
}

// NewMemo creates a memo bounded to capacity entries (DefaultMemoSize if
// capacity <= 0).
func NewMemo(capacity int) *Memo {
	if capacity <= 0 {
		capacity = DefaultMemoSize
	}
	return &Memo{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

// Greedy returns Greedy(q), serving repeated fingerprints from the memo.
// Two goroutines racing on the same uncached fingerprint may both compute
// it; the second store is idempotent (the results are identical), keeping
// the selection itself outside the lock.
func (m *Memo) Greedy(q Request) (Result, error) {
	res, _, err := m.GreedyWithHit(q)
	return res, err
}

// GreedyWithHit is Greedy plus whether the result was replayed from the
// memo, for callers that attribute hits per policy instance.
func (m *Memo) GreedyWithHit(q Request) (Result, bool, error) {
	if err := q.Validate(); err != nil {
		return Result{}, false, err
	}
	key := Fingerprint(q)
	m.mu.Lock()
	if el, ok := m.byKey[key]; ok {
		m.order.MoveToFront(el)
		res := el.Value.(*memoEntry).res
		m.mu.Unlock()
		m.hits.Add(1)
		return res, true, nil
	}
	m.mu.Unlock()
	res, err := Greedy(q)
	if err != nil {
		return Result{}, false, err
	}
	m.misses.Add(1)
	m.mu.Lock()
	if el, ok := m.byKey[key]; ok {
		m.order.MoveToFront(el)
	} else {
		m.byKey[key] = m.order.PushFront(&memoEntry{key: key, res: res})
		if m.order.Len() > m.cap {
			oldest := m.order.Back()
			m.order.Remove(oldest)
			delete(m.byKey, oldest.Value.(*memoEntry).key)
		}
	}
	m.mu.Unlock()
	return res, false, nil
}

// Stats returns the memo's traffic counters.
func (m *Memo) Stats() MemoStats {
	return MemoStats{Hits: m.hits.Load(), Misses: m.misses.Load()}
}

// Len returns the number of memoized selections.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

// Batch evaluates many selection requests against one shared memo with a
// worker pool, returning one Result per request in request order. workers
// <= 0 uses GOMAXPROCS; the pool never exceeds len(qs). A nil memo gets a
// private one (pooling within the batch only). The output is independent
// of the worker count and of scheduling: every Result either comes from
// Greedy directly or replays a fingerprint-exact memo entry. On error the
// first failing request (by index) wins, deterministically.
func Batch(qs []Request, workers int, memo *Memo) ([]Result, error) {
	if memo == nil {
		memo = NewMemo(0)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(qs) {
		workers = len(qs)
	}
	out := make([]Result, len(qs))
	errs := make([]error, len(qs))
	if workers <= 1 {
		for i := range qs {
			out[i], errs[i] = memo.Greedy(qs[i])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(qs) {
						return
					}
					out[i], errs[i] = memo.Greedy(qs[i])
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
