package selector

import (
	"testing"

	"mrts/internal/arch"
	"mrts/internal/ise"
	"mrts/internal/iselib"
	"mrts/internal/profit"
)

// referenceGreedy is the Fig. 6 loop with no profit memo, no pooling and no
// incremental invalidation: every round recomputes every surviving
// candidate from scratch. It is the semantic reference the incremental
// Greedy must match result-for-result and counter-for-counter (except
// SavedEvaluations, which only the incremental version reports).
func referenceGreedy(q Request) (Result, error) {
	if err := q.Validate(); err != nil {
		return Result{}, err
	}
	var res Result
	st := newState(q.Fabric)
	cands := gatherCandidates(q)

	for len(cands) > 0 {
		res.Rounds++

		fitting := cands[:0]
		for _, c := range cands {
			if st.fits(c.e) {
				fitting = append(fitting, c)
			}
		}
		cands = fitting
		if len(cands) == 0 {
			break
		}

		covered := -1
		for i, c := range cands {
			if !st.covered(c.e) {
				continue
			}
			if covered < 0 ||
				c.e.FullLatency() < cands[covered].e.FullLatency() ||
				(c.e.FullLatency() == cands[covered].e.FullLatency() && c.e.ID < cands[covered].e.ID) {
				covered = i
			}
		}
		if covered >= 0 {
			picked := cands[covered]
			st.claim(picked.e)
			res.CoveredPicks++
			res.Selected = append(res.Selected, Choice{
				Kernel: picked.kernel.ID,
				ISE:    picked.e,
				Profit: profit.Profit(picked.kernel, picked.e, st, picked.params, q.Model),
			})
			cands = dropKernel(cands, picked.kernel.ID)
			continue
		}

		firstRound := res.Rounds == 1
		best := -1
		bestProfit := 0.0
		for i, c := range cands {
			p := profit.Profit(c.kernel, c.e, st, c.params, q.Model)
			res.Evaluations++
			if firstRound {
				res.FirstRoundEvaluations++
			}
			if p <= 0 {
				continue
			}
			if best < 0 || p > bestProfit || (p == bestProfit && c.e.ID < cands[best].e.ID) {
				best, bestProfit = i, p
			}
		}
		if best < 0 {
			break
		}
		chosen := cands[best]
		st.claim(chosen.e)
		res.Selected = append(res.Selected, Choice{
			Kernel: chosen.kernel.ID,
			ISE:    chosen.e,
			Profit: bestProfit,
		})
		cands = dropKernel(cands, chosen.kernel.ID)
	}
	return res, nil
}

func dropKernel(cands []candidate, id ise.KernelID) []candidate {
	next := cands[:0]
	for _, c := range cands {
		if c.kernel.ID != id {
			next = append(next, c)
		}
	}
	return next
}

// preloadedFabric is a base view with configured data paths and port
// backlogs, so the equivalence sweep also covers warm-fabric selections.
type preloadedFabric struct {
	prc, cg    int
	configured map[ise.DataPathID]bool
	fg, cgPort arch.Cycles
}

func (f preloadedFabric) FreePRC() int                        { return f.prc }
func (f preloadedFabric) FreeCG() int                         { return f.cg }
func (f preloadedFabric) IsConfigured(id ise.DataPathID) bool { return f.configured[id] }
func (f preloadedFabric) PortBacklog(k arch.FabricKind) arch.Cycles {
	if k == arch.FG {
		return f.fg
	}
	return f.cgPort
}

// TestGreedyIncrementalMatchesReference sweeps synthetic blocks of many
// shapes, every cost model and several fabric states, asserting the
// incremental Greedy is indistinguishable from the from-scratch reference:
// same selections, same profits, same evaluation/round counters.
func TestGreedyIncrementalMatchesReference(t *testing.T) {
	models := []profit.Model{profit.Multigrained, profit.FGTuned, profit.PortBlind}
	for seed := uint64(1); seed <= 20; seed++ {
		nK := int(2 + seed%5)
		nI := int(2 + seed%4)
		blk, trig := iselib.GenerateBlock("fp", nK, nI, seed)

		var someDPs map[ise.DataPathID]bool
		if len(blk.Kernels) > 0 && len(blk.Kernels[0].ISEs) > 0 {
			someDPs = map[ise.DataPathID]bool{}
			for _, d := range blk.Kernels[0].ISEs[len(blk.Kernels[0].ISEs)-1].DataPaths {
				someDPs[d.ID] = true
			}
		}
		fabrics := []ise.FabricView{
			ise.EmptyFabric{PRC: 1, CG: 1},
			ise.EmptyFabric{PRC: 3, CG: 3},
			ise.EmptyFabric{PRC: 8, CG: 8},
			preloadedFabric{prc: 3, cg: 3, configured: someDPs, fg: 1200, cgPort: 90},
		}
		for _, m := range models {
			for fi, fab := range fabrics {
				q := Request{Block: blk, Triggers: trig, Fabric: fab, Model: m}
				got, err := Greedy(q)
				if err != nil {
					t.Fatalf("seed %d model %d fabric %d: Greedy: %v", seed, m, fi, err)
				}
				want, err := referenceGreedy(q)
				if err != nil {
					t.Fatalf("seed %d model %d fabric %d: reference: %v", seed, m, fi, err)
				}
				if len(got.Selected) != len(want.Selected) {
					t.Fatalf("seed %d model %d fabric %d: selected %d ISEs, reference %d",
						seed, m, fi, len(got.Selected), len(want.Selected))
				}
				for i := range want.Selected {
					g, w := got.Selected[i], want.Selected[i]
					if g.Kernel != w.Kernel || g.ISE != w.ISE || g.Profit != w.Profit {
						t.Errorf("seed %d model %d fabric %d: choice %d = %v/%s/%v, reference %v/%s/%v",
							seed, m, fi, i, g.Kernel, g.ISE.ID, g.Profit, w.Kernel, w.ISE.ID, w.Profit)
					}
				}
				if got.Evaluations != want.Evaluations ||
					got.FirstRoundEvaluations != want.FirstRoundEvaluations ||
					got.Rounds != want.Rounds ||
					got.CoveredPicks != want.CoveredPicks {
					t.Errorf("seed %d model %d fabric %d: counters (eval %d first %d rounds %d covered %d), reference (%d %d %d %d)",
						seed, m, fi,
						got.Evaluations, got.FirstRoundEvaluations, got.Rounds, got.CoveredPicks,
						want.Evaluations, want.FirstRoundEvaluations, want.Rounds, want.CoveredPicks)
				}
				if got.SavedEvaluations < 0 || got.SavedEvaluations > got.Evaluations {
					t.Errorf("seed %d model %d fabric %d: SavedEvaluations %d out of range (evals %d)",
						seed, m, fi, got.SavedEvaluations, got.Evaluations)
				}
			}
		}
	}
}

// TestGreedyCoveredPickCounters pins Fig. 6 Step 2b accounting: an ISE
// fully covered by a previous choice is selected without a profit
// evaluation and counted in CoveredPicks only.
func TestGreedyCoveredPickCounters(t *testing.T) {
	shared := ise.DataPath{ID: "sh", Kind: arch.CG, CGs: 1}
	a := &ise.Kernel{
		ID: "a", RISCLatency: 1000,
		ISEs: []*ise.ISE{{ID: "a.x", Kernel: "a", DataPaths: []ise.DataPath{shared}, Latencies: []arch.Cycles{100}}},
	}
	b := &ise.Kernel{
		ID: "b", RISCLatency: 500,
		ISEs: []*ise.ISE{{ID: "b.x", Kernel: "b", DataPaths: []ise.DataPath{shared}, Latencies: []arch.Cycles{200}}},
	}
	blk := &ise.FunctionalBlock{ID: "cov", Kernels: []*ise.Kernel{a, b}}
	res, err := Greedy(Request{
		Block: blk,
		Triggers: []ise.Trigger{
			{Kernel: "a", E: 1000, TF: 100, TB: 50},
			{Kernel: "b", E: 500, TF: 100, TB: 50},
		},
		Fabric: ise.EmptyFabric{CG: 1},
		Model:  profit.Multigrained,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 2 {
		t.Fatalf("selected %d ISEs, want 2 (b.x is covered by a.x's data path)", len(res.Selected))
	}
	if res.Selected[0].ISE.ID != "a.x" || res.Selected[1].ISE.ID != "b.x" {
		t.Fatalf("selection order = %s, %s; want a.x then covered b.x",
			res.Selected[0].ISE.ID, res.Selected[1].ISE.ID)
	}
	if res.CoveredPicks != 1 {
		t.Errorf("CoveredPicks = %d, want 1", res.CoveredPicks)
	}
	// Round 1 evaluates both candidates; the covered pick in round 2 must
	// not count as an evaluation (that was the double-counting bug).
	if res.Evaluations != 2 {
		t.Errorf("Evaluations = %d, want 2 (covered pick must not count)", res.Evaluations)
	}
	if res.FirstRoundEvaluations != 2 {
		t.Errorf("FirstRoundEvaluations = %d, want 2", res.FirstRoundEvaluations)
	}
	if res.Selected[1].Profit <= 0 {
		t.Errorf("covered pick should still report its profit, got %v", res.Selected[1].Profit)
	}
}

// TestGreedySavedEvaluations pins the incremental memo: candidates whose
// profit inputs a claim did not touch are served from the memo in later
// rounds and reported in SavedEvaluations.
func TestGreedySavedEvaluations(t *testing.T) {
	mk := func(id string, risc arch.Cycles, dp ise.DataPath, lat arch.Cycles) *ise.Kernel {
		return &ise.Kernel{
			ID: ise.KernelID(id), RISCLatency: risc,
			ISEs: []*ise.ISE{{ID: id + ".x", Kernel: ise.KernelID(id),
				DataPaths: []ise.DataPath{dp}, Latencies: []arch.Cycles{lat}}},
		}
	}
	f := mk("f", 2000, ise.DataPath{ID: "f1", Kind: arch.FG, PRCs: 1}, 100)
	c1 := mk("c1", 800, ise.DataPath{ID: "c1", Kind: arch.CG, CGs: 1}, 100)
	c2 := mk("c2", 700, ise.DataPath{ID: "c2", Kind: arch.CG, CGs: 1}, 100)
	blk := &ise.FunctionalBlock{ID: "mem", Kernels: []*ise.Kernel{f, c1, c2}}
	res, err := Greedy(Request{
		Block: blk,
		Triggers: []ise.Trigger{
			{Kernel: "f", E: 1000, TF: 100, TB: 50},
			{Kernel: "c1", E: 500, TF: 100, TB: 50},
			{Kernel: "c2", E: 400, TF: 100, TB: 50},
		},
		Fabric: ise.EmptyFabric{PRC: 1, CG: 2},
		Model:  profit.Multigrained,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 3 {
		t.Fatalf("selected %d ISEs, want 3", len(res.Selected))
	}
	if res.Selected[0].Kernel != "f" {
		t.Fatalf("round 1 winner = %s, want f", res.Selected[0].Kernel)
	}
	// Round 1: 3 evaluations. Claiming f's FG data path queues only the FG
	// port, so the two CG-only candidates stay valid: round 2's 2
	// evaluations are both memo hits. Claiming the round-2 winner queues
	// the CG port, invalidating the last candidate: round 3 recomputes.
	if res.Evaluations != 6 {
		t.Errorf("Evaluations = %d, want 6", res.Evaluations)
	}
	if res.SavedEvaluations != 2 {
		t.Errorf("SavedEvaluations = %d, want 2 (both CG candidates in round 2)", res.SavedEvaluations)
	}
	if res.FirstRoundEvaluations != 3 {
		t.Errorf("FirstRoundEvaluations = %d, want 3", res.FirstRoundEvaluations)
	}
}
