package selector

import (
	"fmt"
	"reflect"
	"testing"

	"mrts/internal/ise"
	"mrts/internal/profit"
)

func TestDemandBound(t *testing.T) {
	blk := twoKernelBlock()
	prc, cg := DemandBound(blk)
	// big: max PRC over ISEs = 1 (big.fg1), max CG = 2 (big.cg2);
	// small: max PRC = 1, max CG = 1.
	if prc != 2 || cg != 3 {
		t.Fatalf("DemandBound = (%d,%d), want (2,3)", prc, cg)
	}
	// Cached second call agrees.
	prc2, cg2 := DemandBound(blk)
	if prc2 != prc || cg2 != cg {
		t.Fatalf("cached DemandBound = (%d,%d), want (%d,%d)", prc2, cg2, prc, cg)
	}
}

// TestSaturationClamp pins the theorem the cross-point memo rests on: once
// free capacity reaches the block's demand bound, growing it further can
// not change any part of the greedy Result, and the clamped fingerprints
// collapse to one key.
func TestSaturationClamp(t *testing.T) {
	blk := twoKernelBlock()
	dPRC, dCG := DemandBound(blk)
	for _, model := range []profit.Model{profit.Multigrained, profit.FGTuned, profit.PortBlind} {
		base, err := Greedy(Request{
			Block: blk, Triggers: triggers(),
			Fabric: ise.EmptyFabric{PRC: dPRC, CG: dCG}, Model: model,
		})
		if err != nil {
			t.Fatal(err)
		}
		baseFP := Fingerprint(Request{
			Block: blk, Triggers: triggers(),
			Fabric: ise.EmptyFabric{PRC: dPRC, CG: dCG}, Model: model,
		})
		for _, extra := range []int{1, 3, 17, 1000} {
			q := Request{
				Block: blk, Triggers: triggers(),
				Fabric: ise.EmptyFabric{PRC: dPRC + extra, CG: dCG + extra}, Model: model,
			}
			res, err := Greedy(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, base) {
				t.Fatalf("model %v: Result at demand+%d differs from result at the demand bound:\n%+v\nvs\n%+v",
					model, extra, res, base)
			}
			if fp := Fingerprint(q); fp != baseFP {
				t.Fatalf("model %v: fingerprint at demand+%d did not clamp:\n%q\nvs\n%q", model, extra, fp, baseFP)
			}
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	blk := twoKernelBlock()
	mk := func(prc, cg int, model profit.Model, trigs []ise.Trigger) string {
		return Fingerprint(Request{Block: blk, Triggers: trigs, Fabric: ise.EmptyFabric{PRC: prc, CG: cg}, Model: model})
	}
	base := mk(1, 1, profit.Multigrained, triggers())
	if got := mk(2, 1, profit.Multigrained, triggers()); got == base {
		t.Fatal("fingerprint ignores sub-bound free PRC")
	}
	if got := mk(1, 2, profit.Multigrained, triggers()); got == base {
		t.Fatal("fingerprint ignores sub-bound free CG")
	}
	if got := mk(1, 1, profit.FGTuned, triggers()); got == base {
		t.Fatal("fingerprint ignores the profit model")
	}
	bumped := triggers()
	bumped[0].E++
	if got := mk(1, 1, profit.Multigrained, bumped); got == base {
		t.Fatal("fingerprint ignores trigger forecasts")
	}
	// A configured candidate data path must split the key.
	conf := Fingerprint(Request{
		Block: blk, Triggers: triggers(), Model: profit.Multigrained,
		Fabric: coveredFabric{prc: 1, cg: 1, configured: map[ise.DataPathID]bool{"b1": true}},
	})
	if conf == base {
		t.Fatal("fingerprint ignores configured data paths")
	}
	// Distinct block objects with identical shape must not collide: memo
	// scope is the block identity, not its name.
	other := twoKernelBlock()
	if got := Fingerprint(Request{Block: other, Triggers: triggers(), Fabric: ise.EmptyFabric{PRC: 1, CG: 1}, Model: profit.Multigrained}); got == base {
		t.Fatal("fingerprint collides across distinct block objects")
	}
}

// latticeRequests builds a capacity lattice of requests, the shape a sweep
// produces, including points far beyond the demand bound (which the clamp
// folds together).
func latticeRequests(blk *ise.FunctionalBlock) []Request {
	var qs []Request
	for prc := 0; prc <= 6; prc++ {
		for cg := 0; cg <= 6; cg++ {
			for _, model := range []profit.Model{profit.Multigrained, profit.FGTuned} {
				qs = append(qs, Request{
					Block: blk, Triggers: triggers(),
					Fabric: ise.EmptyFabric{PRC: prc, CG: cg}, Model: model,
				})
			}
		}
	}
	return qs
}

func TestBatchMatchesSequential(t *testing.T) {
	blk := twoKernelBlock()
	qs := latticeRequests(blk)
	want := make([]Result, len(qs))
	for i, q := range qs {
		var err error
		want[i], err = Greedy(q)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 8} {
		memo := NewMemo(0)
		got, err := Batch(qs, workers, memo)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: batch results differ from sequential Greedy", workers)
		}
		st := memo.Stats()
		if st.Hits == 0 {
			t.Fatalf("workers=%d: expected clamp-induced memo hits on the lattice, got none (misses=%d)", workers, st.Misses)
		}
		if st.Hits+st.Misses < uint64(len(qs)) {
			t.Fatalf("workers=%d: hits+misses = %d < %d requests", workers, st.Hits+st.Misses, len(qs))
		}
	}
}

func TestBatchNilMemoAndError(t *testing.T) {
	blk := twoKernelBlock()
	qs := []Request{
		{Block: blk, Triggers: triggers(), Fabric: ise.EmptyFabric{PRC: 2, CG: 2}, Model: profit.Multigrained},
		{Block: nil}, // invalid: Validate fails
	}
	if _, err := Batch(qs, 4, nil); err == nil {
		t.Fatal("expected the invalid request's error to surface")
	}
	res, err := Batch(qs[:1], 4, nil)
	if err != nil || len(res) != 1 {
		t.Fatalf("Batch with nil memo: res=%v err=%v", res, err)
	}
}

func TestMemoBoundAndLRU(t *testing.T) {
	blk := twoKernelBlock()
	memo := NewMemo(2)
	mk := func(prc int) Request {
		return Request{Block: blk, Triggers: triggers(), Fabric: ise.EmptyFabric{PRC: prc, CG: 0}, Model: profit.Multigrained}
	}
	for _, prc := range []int{0, 1, 2} { // three distinct sub-bound keys
		if _, err := memo.Greedy(mk(prc)); err != nil {
			t.Fatal(err)
		}
	}
	if memo.Len() != 2 {
		t.Fatalf("memo holds %d entries, want 2 (bounded)", memo.Len())
	}
	// The oldest key (prc=0) was evicted; re-requesting it is a miss.
	before := memo.Stats().Misses
	if _, err := memo.Greedy(mk(0)); err != nil {
		t.Fatal(err)
	}
	if memo.Stats().Misses != before+1 {
		t.Fatal("evicted entry was served as a hit")
	}
}

func ExampleBatch() {
	blk := twoKernelBlock()
	qs := []Request{
		{Block: blk, Triggers: triggers(), Fabric: ise.EmptyFabric{PRC: 2, CG: 3}, Model: profit.Multigrained},
		{Block: blk, Triggers: triggers(), Fabric: ise.EmptyFabric{PRC: 8, CG: 8}, Model: profit.Multigrained},
	}
	memo := NewMemo(0)
	res, _ := Batch(qs, 2, memo)
	st := memo.Stats()
	fmt.Printf("points=%d selections=%d seed-hits=%d\n", len(res), len(res[0].Selected), st.Hits)
	// Output: points=2 selections=2 seed-hits=1
}
