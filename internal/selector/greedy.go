package selector

import (
	"sync"

	"mrts/internal/arch"
	"mrts/internal/ise"
	"mrts/internal/profit"
)

// gcand is a candidate plus its memoized profit. The incremental greedy
// keeps the last computed profit per candidate and only recomputes it when
// a claim actually changed the candidate's profit inputs.
type gcand struct {
	candidate
	profit float64
	valid  bool
}

// greedyScratch bundles the per-call working memory of Greedy so repeated
// selections (one per trigger instruction in the simulator's inner loop)
// allocate nothing beyond the escaping Result.
type greedyScratch struct {
	st    state
	prof  profit.Scratch
	cands []gcand
}

var greedyPool = sync.Pool{New: func() any { return new(greedyScratch) }}

func (gs *greedyScratch) release() {
	// Drop the caller's fabric view so the pool does not pin it; kernels
	// and ISEs referenced by leftover gcands belong to long-lived
	// applications and are cheap to retain.
	gs.st.base = nil
	greedyPool.Put(gs)
}

// Greedy runs the mRTS ISE selection algorithm of paper Fig. 6:
//
//	Step 1: build a candidate list of the ISEs of all kernels in the
//	        trigger instruction.
//	Step 2: remove ISEs that (a) require more reconfigurable fabric than
//	        available, and (b) are covered by data paths that are
//	        available from the already selected ISEs (those are selected
//	        directly — they cost nothing).
//	Step 3: compute the profit of each remaining candidate and select the
//	        ISE with the maximum profit.
//	Step 4: add it to the output set, update the fabric status, and
//	        remove all other ISEs of the same kernel.
//
// The loop repeats until the candidate list is empty. Kernels whose ISEs
// never fit (or never yield positive profit) stay unselected and execute in
// RISC mode or on a monoCG-Extension. Complexity is O(N*M) profit
// evaluations for N kernels with M ISEs each — Result.Evaluations models
// that full cost, while Result.SavedEvaluations reports how many of them
// the per-candidate profit memo answered without recomputation.
func Greedy(q Request) (Result, error) {
	if err := q.Validate(); err != nil {
		return Result{}, err
	}
	var res Result
	gs := greedyPool.Get().(*greedyScratch)
	defer gs.release()
	st := &gs.st
	st.reset(q.Fabric)
	gs.cands = appendCandidates(gs.cands[:0], q)
	cands := gs.cands

	for len(cands) > 0 {
		res.Rounds++

		// Step 2a: drop non-fitting candidates. Removals never change the
		// profit inputs of the surviving candidates, so memos stay valid.
		fitting := cands[:0]
		for _, c := range cands {
			if st.fits(c.e) {
				fitting = append(fitting, c)
			}
		}
		cands = fitting
		if len(cands) == 0 {
			break
		}

		// Step 2b: an ISE fully covered by available data paths is free;
		// select the fastest covered ISE per kernel outright, without a
		// profit evaluation (its profit is still computed for the report,
		// but does not count toward the modelled selection overhead).
		if ci := coveredIndex(cands, st); ci >= 0 {
			picked := cands[ci].candidate
			fg0, cg0 := st.pendingFG, st.pendingCG
			st.claim(picked.e)
			p := gs.prof.Profit(picked.kernel, picked.e, st, picked.params, q.Model)
			res.CoveredPicks++
			res.Selected = append(res.Selected, Choice{
				Kernel: picked.kernel.ID,
				ISE:    picked.e,
				Profit: p,
			})
			cands = removeKernel(cands, picked.kernel.ID)
			invalidateStale(cands, st, picked.e, q.Model,
				st.pendingFG != fg0, st.pendingCG != cg0)
			continue
		}

		// Step 3: profit of each candidate; keep the maximum. Candidates
		// whose inputs did not change since their last evaluation reuse
		// the memoized profit.
		firstRound := res.Rounds == 1
		best := -1
		bestProfit := 0.0
		for i := range cands {
			c := &cands[i]
			if !c.valid {
				c.profit = gs.prof.Profit(c.kernel, c.e, st, c.params, q.Model)
				c.valid = true
			} else {
				res.SavedEvaluations++
			}
			res.Evaluations++
			if firstRound {
				res.FirstRoundEvaluations++
			}
			p := c.profit
			if p <= 0 {
				continue
			}
			if best < 0 || p > bestProfit || (p == bestProfit && c.e.ID < cands[best].e.ID) {
				best, bestProfit = i, p
			}
		}
		if best < 0 {
			break // no candidate improves performance
		}

		// Step 4: select, update fabric, drop the kernel's other ISEs and
		// re-mark only the candidates the claim actually affected.
		chosen := cands[best].candidate
		fg0, cg0 := st.pendingFG, st.pendingCG
		st.claim(chosen.e)
		res.Selected = append(res.Selected, Choice{
			Kernel: chosen.kernel.ID,
			ISE:    chosen.e,
			Profit: bestProfit,
		})
		cands = removeKernel(cands, chosen.kernel.ID)
		invalidateStale(cands, st, chosen.e, q.Model,
			st.pendingFG != fg0, st.pendingCG != cg0)
	}
	return res, nil
}

// appendCandidates is gatherCandidates appending gcands into a reusable
// buffer, growing it at most once per call.
func appendCandidates(dst []gcand, q Request) []gcand {
	if n := numCandidates(q); cap(dst) < n {
		dst = make([]gcand, 0, n)
	}
	for _, t := range q.Triggers {
		k := q.Block.Kernel(t.Kernel)
		if k == nil {
			continue
		}
		p := profit.ParamsFromTrigger(t)
		for _, e := range k.ISEs {
			dst = append(dst, gcand{candidate: candidate{kernel: k, e: e, params: p}})
		}
	}
	return dst
}

// coveredIndex finds the covered candidate with the lowest full latency
// (ties broken by ISE ID); it returns -1 if no candidate is covered.
func coveredIndex(cands []gcand, st *state) int {
	best := -1
	for i, c := range cands {
		if !st.covered(c.e) {
			continue
		}
		if best < 0 ||
			c.e.FullLatency() < cands[best].e.FullLatency() ||
			(c.e.FullLatency() == cands[best].e.FullLatency() && c.e.ID < cands[best].e.ID) {
			best = i
		}
	}
	return best
}

// removeKernel compacts the candidate list in place, dropping every ISE of
// the given kernel (Fig. 6 Step 4).
func removeKernel(cands []gcand, id ise.KernelID) []gcand {
	next := cands[:0]
	for _, c := range cands {
		if c.kernel.ID != id {
			next = append(next, c)
		}
	}
	return next
}

// invalidateStale marks the candidates whose memoized profit the claim of
// picked made stale. Profit reads the selection state only through
// IsConfigured (for the candidate's own data paths) and PortBacklog (only
// for ports the candidate still has unconfigured work on), so a candidate's
// profit changed iff it shares a data path with the picked ISE, or a port
// backlog grew and the candidate queues unconfigured data paths on that
// port. PortBlind profits never read backlogs, and FGTuned charges every
// data path to the fine-grained port.
func invalidateStale(cands []gcand, st *state, picked *ise.ISE, m profit.Model, fgChanged, cgChanged bool) {
	portAware := m != profit.PortBlind && (fgChanged || cgChanged)
	for i := range cands {
		c := &cands[i]
		if !c.valid {
			continue
		}
		if sharesDataPath(c.e, picked) ||
			(portAware && portSensitive(c.e, st, m, fgChanged, cgChanged)) {
			c.valid = false
		}
	}
}

func sharesDataPath(a, b *ise.ISE) bool {
	for _, da := range a.DataPaths {
		for _, db := range b.DataPaths {
			if da.ID == db.ID {
				return true
			}
		}
	}
	return false
}

// portSensitive reports whether the ISE's profit depends on a changed port
// backlog: it has at least one not-yet-configured data path whose effective
// fabric kind reconfigures through that port.
func portSensitive(e *ise.ISE, st *state, m profit.Model, fgChanged, cgChanged bool) bool {
	for _, d := range e.DataPaths {
		if st.IsConfigured(d.ID) {
			continue
		}
		kind := d.Kind
		if m == profit.FGTuned {
			kind = arch.FG
		}
		if kind == arch.FG {
			if fgChanged {
				return true
			}
		} else if cgChanged {
			return true
		}
	}
	return false
}
