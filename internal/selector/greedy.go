package selector

import (
	"mrts/internal/profit"
)

// Greedy runs the mRTS ISE selection algorithm of paper Fig. 6:
//
//	Step 1: build a candidate list of the ISEs of all kernels in the
//	        trigger instruction.
//	Step 2: remove ISEs that (a) require more reconfigurable fabric than
//	        available, and (b) are covered by data paths that are
//	        available from the already selected ISEs (those are selected
//	        directly — they cost nothing).
//	Step 3: compute the profit of each remaining candidate and select the
//	        ISE with the maximum profit.
//	Step 4: add it to the output set, update the fabric status, and
//	        remove all other ISEs of the same kernel.
//
// The loop repeats until the candidate list is empty. Kernels whose ISEs
// never fit (or never yield positive profit) stay unselected and execute in
// RISC mode or on a monoCG-Extension. Complexity is O(N*M) profit
// evaluations for N kernels with M ISEs each.
func Greedy(q Request) (Result, error) {
	if err := q.Validate(); err != nil {
		return Result{}, err
	}
	var res Result
	st := newState(q.Fabric)
	cands := gatherCandidates(q)

	for len(cands) > 0 {
		res.Rounds++

		// Step 2a: drop non-fitting candidates.
		fitting := cands[:0]
		for _, c := range cands {
			if st.fits(c.e) {
				fitting = append(fitting, c)
			}
		}
		cands = fitting
		if len(cands) == 0 {
			break
		}

		// Step 2b: an ISE fully covered by available data paths is
		// free; select the fastest covered ISE per kernel outright.
		if picked, rest := pickCovered(cands, st); picked != nil {
			st.claim(picked.e)
			p := profitOf(*picked, st, q.Model, &res)
			if res.Rounds == 1 {
				res.FirstRoundEvaluations++
			}
			res.Selected = append(res.Selected, Choice{
				Kernel: picked.kernel.ID,
				ISE:    picked.e,
				Profit: p,
			})
			cands = rest
			continue
		}

		// Step 3: profit of each candidate; keep the maximum.
		firstRound := res.Rounds == 1
		best := -1
		bestProfit := 0.0
		for i, c := range cands {
			p := profitOf(c, st, q.Model, &res)
			if firstRound {
				res.FirstRoundEvaluations++
			}
			if p <= 0 {
				continue
			}
			if best < 0 || p > bestProfit || (p == bestProfit && c.e.ID < cands[best].e.ID) {
				best, bestProfit = i, p
			}
		}
		if best < 0 {
			break // no candidate improves performance
		}

		// Step 4: select, update fabric, drop the kernel's other ISEs.
		chosen := cands[best]
		st.claim(chosen.e)
		res.Selected = append(res.Selected, Choice{
			Kernel: chosen.kernel.ID,
			ISE:    chosen.e,
			Profit: bestProfit,
		})
		next := cands[:0]
		for _, c := range cands {
			if c.kernel.ID != chosen.kernel.ID {
				next = append(next, c)
			}
		}
		cands = next
	}
	return res, nil
}

// pickCovered finds the covered candidate with the lowest full latency (ties
// broken by ISE ID); it returns nil if no candidate is covered. rest is the
// candidate list with the picked kernel's ISEs removed.
func pickCovered(cands []candidate, st *state) (*candidate, []candidate) {
	best := -1
	for i, c := range cands {
		if !st.covered(c.e) {
			continue
		}
		if best < 0 ||
			c.e.FullLatency() < cands[best].e.FullLatency() ||
			(c.e.FullLatency() == cands[best].e.FullLatency() && c.e.ID < cands[best].e.ID) {
			best = i
		}
	}
	if best < 0 {
		return nil, cands
	}
	picked := cands[best]
	rest := make([]candidate, 0, len(cands))
	for _, c := range cands {
		if c.kernel.ID != picked.kernel.ID {
			rest = append(rest, c)
		}
	}
	return &picked, rest
}

func profitOf(c candidate, st *state, m profit.Model, res *Result) float64 {
	res.Evaluations++
	return profit.Profit(c.kernel, c.e, st, c.params, m)
}
