package selector_test

import (
	"fmt"

	"mrts/internal/arch"
	"mrts/internal/ise"
	"mrts/internal/profit"
	"mrts/internal/selector"
)

// ExampleGreedy selects ISEs for a functional block with one kernel that
// has a coarse-grained and a fine-grained candidate: at a small execution
// count the CG variant wins (its reconfiguration finishes in microseconds).
func ExampleGreedy() {
	kernel := &ise.Kernel{
		ID: "filter", RISCLatency: 1000,
		ISEs: []*ise.ISE{
			{
				ID: "filter.cg", Kernel: "filter",
				DataPaths: []ise.DataPath{{ID: "taps_cg", Kind: arch.CG, CGs: 1}},
				Latencies: []arch.Cycles{300},
			},
			{
				ID: "filter.fg", Kernel: "filter",
				DataPaths: []ise.DataPath{{ID: "taps_fg", Kind: arch.FG, PRCs: 1}},
				Latencies: []arch.Cycles{150},
			},
		},
	}
	block := &ise.FunctionalBlock{ID: "blk", Kernels: []*ise.Kernel{kernel}}

	res, err := selector.Greedy(selector.Request{
		Block: block,
		Triggers: []ise.Trigger{
			{Kernel: "filter", E: 150, TF: 1000, TB: 200},
		},
		Fabric: ise.EmptyFabric{PRC: 1, CG: 1},
		Model:  profit.Multigrained,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.ByKernel("filter").ID)
	// Output: filter.cg
}

// ExampleMultiChoiceKnapsack solves a tiny offline selection exactly.
func ExampleMultiChoiceKnapsack() {
	groups := [][]selector.Option{
		{{Label: "a1", PRC: 1, Profit: 6}, {Label: "a2", PRC: 2, Profit: 9}},
		{{Label: "b1", PRC: 1, Profit: 5}},
	}
	picks, total := selector.MultiChoiceKnapsack(groups, 2, 0)
	fmt.Println(groups[0][picks[0]].Label, groups[1][picks[1]].Label, total)
	// Output: a1 b1 11
}
