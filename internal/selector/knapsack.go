package selector

// Option is one alternative of a multi-choice knapsack group: selecting it
// consumes PRC fine-grained and CG coarse-grained fabric units and yields
// Profit. The zero option (select nothing from the group) is implicit.
type Option struct {
	// Label identifies the option for reconstruction (typically an ISE ID).
	Label  string
	PRC    int
	CG     int
	Profit float64
}

// MultiChoiceKnapsack solves the two-dimensional multi-choice knapsack that
// underlies offline ISE selection: from each group pick at most one option
// such that the summed PRC/CG consumption stays within (maxPRC, maxCG) and
// the summed profit is maximal. Profits are assumed independent across
// groups (no data-path sharing), which holds for the offline baselines that
// select across functional blocks.
//
// It returns, per group, the index of the chosen option or -1, plus the
// total profit. Complexity O(groups * options * maxPRC * maxCG).
func MultiChoiceKnapsack(groups [][]Option, maxPRC, maxCG int) ([]int, float64) {
	if maxPRC < 0 {
		maxPRC = 0
	}
	if maxCG < 0 {
		maxCG = 0
	}
	w := maxCG + 1
	cells := (maxPRC + 1) * w
	// dp[p*w+c] = best profit using exactly the first g groups with at
	// most p PRCs and c CG-EDPEs.
	dp := make([]float64, cells)
	choice := make([][]int16, len(groups))

	for g, opts := range groups {
		next := make([]float64, cells)
		copy(next, dp) // option "-1": skip the group
		ch := make([]int16, cells)
		for i := range ch {
			ch[i] = -1
		}
		for oi, o := range opts {
			if o.PRC < 0 || o.CG < 0 || o.Profit <= 0 {
				continue
			}
			if o.PRC > maxPRC || o.CG > maxCG {
				continue
			}
			for p := o.PRC; p <= maxPRC; p++ {
				base := p * w
				prev := (p - o.PRC) * w
				for c := o.CG; c <= maxCG; c++ {
					v := dp[prev+c-o.CG] + o.Profit
					if v > next[base+c] {
						next[base+c] = v
						ch[base+c] = int16(oi)
					}
				}
			}
		}
		dp = next
		choice[g] = ch
	}

	// Reconstruct.
	picks := make([]int, len(groups))
	p, c := maxPRC, maxCG
	total := dp[p*w+c]
	for g := len(groups) - 1; g >= 0; g-- {
		oi := choice[g][p*w+c]
		picks[g] = int(oi)
		if oi >= 0 {
			o := groups[g][oi]
			p -= o.PRC
			c -= o.CG
		}
	}
	return picks, total
}
