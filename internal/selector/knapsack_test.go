package selector

import (
	"testing"
	"testing/quick"
)

func TestKnapsackEmpty(t *testing.T) {
	picks, total := MultiChoiceKnapsack(nil, 3, 3)
	if len(picks) != 0 || total != 0 {
		t.Errorf("empty knapsack = %v, %v", picks, total)
	}
}

func TestKnapsackSingleGroup(t *testing.T) {
	groups := [][]Option{{
		{Label: "a", PRC: 1, Profit: 10},
		{Label: "b", PRC: 2, Profit: 15},
		{Label: "c", CG: 1, Profit: 12},
	}}
	picks, total := MultiChoiceKnapsack(groups, 2, 0)
	if picks[0] != 1 || total != 15 {
		t.Errorf("picks=%v total=%v, want option b / 15", picks, total)
	}
	picks, total = MultiChoiceKnapsack(groups, 1, 1)
	// 1 PRC + 1 CG: best single option is c (12) or a (10): only one
	// option per group, so c.
	if picks[0] != 2 || total != 12 {
		t.Errorf("picks=%v total=%v, want option c / 12", picks, total)
	}
}

func TestKnapsackSkipsUnprofitable(t *testing.T) {
	groups := [][]Option{{
		{Label: "bad", PRC: 1, Profit: 0},
	}}
	picks, total := MultiChoiceKnapsack(groups, 4, 4)
	if picks[0] != -1 || total != 0 {
		t.Errorf("zero-profit option selected: %v %v", picks, total)
	}
}

func TestKnapsackTwoDimensions(t *testing.T) {
	groups := [][]Option{
		{{Label: "a1", PRC: 1, CG: 1, Profit: 10}},
		{{Label: "b1", PRC: 1, Profit: 6}, {Label: "b2", CG: 1, Profit: 7}},
	}
	// Budget 1/1: either a1 alone (10) or b1+? a1 takes both dims, so
	// a1 (10) vs b1 (6) vs b2 (7): a1 wins.
	picks, total := MultiChoiceKnapsack(groups, 1, 1)
	if total != 10 || picks[0] != 0 || picks[1] != -1 {
		t.Errorf("picks=%v total=%v", picks, total)
	}
	// Budget 2/1: a1 + b1 = 16.
	picks, total = MultiChoiceKnapsack(groups, 2, 1)
	if total != 16 || picks[0] != 0 || picks[1] != 0 {
		t.Errorf("picks=%v total=%v, want a1+b1=16", picks, total)
	}
}

func TestKnapsackReconstructionConsistent(t *testing.T) {
	groups := [][]Option{
		{{Label: "x", PRC: 2, Profit: 9}, {Label: "y", PRC: 1, Profit: 5}},
		{{Label: "z", PRC: 1, Profit: 5}},
		{{Label: "w", PRC: 1, CG: 1, Profit: 4}},
	}
	picks, total := MultiChoiceKnapsack(groups, 2, 1)
	sum := 0.0
	prc, cg := 0, 0
	for g, pi := range picks {
		if pi < 0 {
			continue
		}
		o := groups[g][pi]
		sum += o.Profit
		prc += o.PRC
		cg += o.CG
	}
	if sum != total {
		t.Errorf("reconstructed profit %v != reported %v", sum, total)
	}
	if prc > 2 || cg > 1 {
		t.Errorf("reconstruction over budget: %d/%d", prc, cg)
	}
	if total != 10 { // y + z = 10 beats x = 9
		t.Errorf("total = %v, want 10", total)
	}
}

// Property: the DP matches brute-force enumeration on random small
// instances, and its reconstruction is always feasible and adds up.
func TestKnapsackMatchesBruteForce(t *testing.T) {
	f := func(seed uint32) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*1664525 + 1013904223
			return int(rng>>16) % n
		}
		groups := make([][]Option, next(4)+1)
		for g := range groups {
			for o := 0; o < next(3)+1; o++ {
				groups[g] = append(groups[g], Option{
					PRC:    next(3),
					CG:     next(3),
					Profit: float64(next(20)),
				})
			}
		}
		maxPRC, maxCG := next(4), next(4)
		picks, total := MultiChoiceKnapsack(groups, maxPRC, maxCG)

		// Reconstruction feasible and consistent.
		sum := 0.0
		prc, cg := 0, 0
		for g, pi := range picks {
			if pi < 0 {
				continue
			}
			o := groups[g][pi]
			sum += o.Profit
			prc += o.PRC
			cg += o.CG
		}
		if prc > maxPRC || cg > maxCG || sum != total {
			return false
		}

		// Brute force.
		best := 0.0
		var walk func(g int, prc, cg int, acc float64)
		walk = func(g, prc, cg int, acc float64) {
			if g == len(groups) {
				if acc > best {
					best = acc
				}
				return
			}
			walk(g+1, prc, cg, acc)
			for _, o := range groups[g] {
				if o.Profit <= 0 {
					continue
				}
				if prc+o.PRC <= maxPRC && cg+o.CG <= maxCG {
					walk(g+1, prc+o.PRC, cg+o.CG, acc+o.Profit)
				}
			}
		}
		walk(0, 0, 0, 0)
		return total == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
