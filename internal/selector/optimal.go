package selector

import (
	"sort"
	"strings"
	"sync"

	"mrts/internal/ise"
	"mrts/internal/profit"
)

// Optimal runs the optimal run-time selection algorithm the paper uses as a
// quality yardstick (Section 4.1, Fig. 9): it enumerates all combinations
// of ISEs (one or none per kernel), prunes combinations that violate the
// resource constraint, computes the profit of each feasible combination and
// returns the best. Branch-and-bound pruning keeps the enumeration
// tractable: subtrees whose optimistic bound cannot beat the incumbent are
// cut. The paper reports >78 million combinations for six H.264 kernels,
// which is why this algorithm is not used at run time.
func Optimal(q Request) (Result, error) {
	if err := q.Validate(); err != nil {
		return Result{}, err
	}
	var res Result

	// One group per trigger; per group the candidate ISEs plus their
	// stand-alone profit (against the initial fabric) used for bounding.
	type option struct {
		c          candidate
		standalone float64 // exact profit against the initial fabric
		prc        int
		cg         int
		shared     bool // shares data paths with some other kernel's ISE
	}
	type group struct {
		kernel ise.KernelID
		opts   []option
		best   float64 // upper bound on any option's profit in any context
	}

	dpOwners := countDataPathOwners(q)
	var prof profit.Scratch
	var groups []group
	base := newState(q.Fabric)
	for _, t := range q.Triggers {
		k := q.Block.Kernel(t.Kernel)
		if k == nil {
			continue
		}
		p := profit.ParamsFromTrigger(t)
		g := group{kernel: k.ID}
		for _, e := range k.ISEs {
			prc, cg := e.CostPRC(), e.CostCG()
			if prc > base.freePRC || cg > base.freeCG {
				continue // can never fit
			}
			res.Evaluations++
			pr := prof.Profit(k, e, q.Fabric, p, q.Model)
			shared := false
			for _, d := range e.DataPaths {
				if dpOwners[d.ID] > 1 {
					shared = true
					break
				}
			}
			// A zero stand-alone profit can still turn positive when
			// another kernel configures shared data paths, so only
			// unshared zero-profit options can be dropped outright.
			if pr <= 0 && !shared {
				continue
			}
			g.opts = append(g.opts, option{c: candidate{kernel: k, e: e, params: p}, standalone: pr, prc: prc, cg: cg, shared: shared})
			// Per-option upper bound on the profit in any context. An
			// unshared option's data paths are never configured by other
			// kernels' choices, so context can only add port backlog —
			// which delays availability and moves executions to
			// lower-improvement intermediate modes, strictly shrinking
			// profit. Its exact stand-alone profit therefore bounds it.
			// A shared option may get data paths for free from another
			// kernel, so only the steady-state profit (all transients
			// hidden) bounds it.
			b := pr
			if shared {
				b = profit.SteadyStateProfit(k, e, p.E)
			}
			if b > g.best {
				g.best = b
			}
		}
		groups = append(groups, g)
	}

	// Sort groups by descending best profit so bounds tighten early.
	sort.SliceStable(groups, func(i, j int) bool { return groups[i].best > groups[j].best })

	// suffixBound[i] = sum of best profits of groups i..end.
	suffixBound := make([]float64, len(groups)+1)
	for i := len(groups) - 1; i >= 0; i-- {
		suffixBound[i] = suffixBound[i+1] + groups[i].best
	}

	bestTotal := -1.0
	var bestChoices []Choice
	current := make([]Choice, 0, len(groups))

	var walk func(i int, st *state, total float64)
	walk = func(i int, st *state, total float64) {
		res.Rounds++
		if total+suffixBound[i] <= bestTotal {
			return
		}
		if i == len(groups) {
			if total > bestTotal {
				bestTotal = total
				bestChoices = append(bestChoices[:0], current...)
			}
			return
		}
		g := groups[i]
		for _, o := range g.opts {
			if !st.fits(o.c.e) {
				continue
			}
			// Exact profit in the context of already-chosen ISEs:
			// shared data paths cost nothing a second time, and the
			// reconfigurations queued by earlier choices delay this
			// ISE on the configuration ports.
			res.Evaluations++
			pr := prof.Profit(o.c.kernel, o.c.e, st, o.c.params, q.Model)
			if pr <= 0 {
				continue
			}
			// Claim / recurse / restore.
			savedPRC, savedCG := st.freePRC, st.freeCG
			savedFG, savedCGPort := st.pendingFG, st.pendingCG
			var newlyClaimed []ise.DataPathID
			for _, d := range o.c.e.DataPaths {
				if !st.claimed[d.ID] {
					newlyClaimed = append(newlyClaimed, d.ID)
				}
			}
			st.claim(o.c.e)
			current = append(current, Choice{Kernel: g.kernel, ISE: o.c.e, Profit: pr})
			walk(i+1, st, total+pr)
			current = current[:len(current)-1]
			st.freePRC, st.freeCG = savedPRC, savedCG
			st.pendingFG, st.pendingCG = savedFG, savedCGPort
			for _, id := range newlyClaimed {
				delete(st.claimed, id)
			}
		}
		// Also consider leaving this kernel unselected (RISC mode).
		walk(i+1, st, total)
	}
	walk(0, newState(q.Fabric), 0)

	res.Selected = bestChoices
	// The exhaustive algorithm cannot overlap its search with
	// reconfiguration: everything is on the critical path.
	res.FirstRoundEvaluations = res.Evaluations
	return res, nil
}

// dpOwnersCache memoizes countDataPathOwners across Optimal calls: the
// ownership map depends only on the functional block and the set of
// triggered kernels, both of which repeat on every trigger of the
// simulator's inner loop. The cached maps are read-only after insertion,
// so sharing them across goroutines is safe. The cache is dropped wholesale
// when it exceeds its bound (blocks are few and long-lived in practice).
var dpOwnersCache = struct {
	sync.Mutex
	m map[dpOwnersKey]map[ise.DataPathID]int
}{m: make(map[dpOwnersKey]map[ise.DataPathID]int)}

type dpOwnersKey struct {
	block   *ise.FunctionalBlock
	kernels string
}

const dpOwnersCacheCap = 64

// countDataPathOwners maps each data-path ID to the number of distinct
// kernels whose candidate ISEs reference it, memoized per (block,
// triggered-kernel sequence).
func countDataPathOwners(q Request) map[ise.DataPathID]int {
	var sb strings.Builder
	for _, t := range q.Triggers {
		sb.WriteString(string(t.Kernel))
		sb.WriteByte('|')
	}
	key := dpOwnersKey{block: q.Block, kernels: sb.String()}

	dpOwnersCache.Lock()
	if m, ok := dpOwnersCache.m[key]; ok {
		dpOwnersCache.Unlock()
		return m
	}
	dpOwnersCache.Unlock()

	out := computeDataPathOwners(q)

	dpOwnersCache.Lock()
	if len(dpOwnersCache.m) >= dpOwnersCacheCap {
		clear(dpOwnersCache.m)
	}
	dpOwnersCache.m[key] = out
	dpOwnersCache.Unlock()
	return out
}

func computeDataPathOwners(q Request) map[ise.DataPathID]int {
	owners := make(map[ise.DataPathID]map[ise.KernelID]bool)
	for _, t := range q.Triggers {
		k := q.Block.Kernel(t.Kernel)
		if k == nil {
			continue
		}
		for _, e := range k.ISEs {
			for _, d := range e.DataPaths {
				m := owners[d.ID]
				if m == nil {
					m = make(map[ise.KernelID]bool)
					owners[d.ID] = m
				}
				m[k.ID] = true
			}
		}
	}
	out := make(map[ise.DataPathID]int, len(owners))
	for id, m := range owners {
		out[id] = len(m)
	}
	return out
}
