// Package selector implements the ISE selection algorithms of the mRTS
// paper: the greedy run-time heuristic of Fig. 6 (the paper's core
// contribution, O(N*M)), the optimal run-time algorithm (exhaustive
// enumeration with branch-and-bound pruning, O(M^N), used only as a quality
// yardstick, Fig. 9), and a multi-choice two-dimensional knapsack solver
// used by the offline baselines.
package selector

import (
	"fmt"

	"mrts/internal/arch"
	"mrts/internal/ise"
	"mrts/internal/profit"
)

// Choice is one selected ISE for one kernel.
type Choice struct {
	Kernel ise.KernelID
	ISE    *ise.ISE
	// Profit is the expected profit (cycles saved) the selector computed
	// when it picked this ISE.
	Profit float64
}

// Result is the outcome of one selection run.
type Result struct {
	// Selected lists the chosen ISEs in selection order (the order the
	// greedy algorithm granted resources; priority order).
	Selected []Choice
	// Evaluations counts profit-function evaluations: the dominant cost
	// of the run-time system (paper Section 5.4).
	Evaluations int
	// FirstRoundEvaluations counts the evaluations of the first selection
	// round. Only this share of the overhead is visible on the critical
	// path: once the first ISE is selected its reconfiguration starts and
	// the remaining selection runs in parallel (paper Section 5.4).
	FirstRoundEvaluations int
	// Rounds counts selection rounds (iterations of the Fig. 6 loop or
	// explored nodes for the optimal algorithm).
	Rounds int
	// SavedEvaluations counts the evaluations the incremental greedy
	// served from its per-candidate profit memo instead of recomputing.
	// Saved evaluations are still included in Evaluations: the modelled
	// run-time overhead (paper Section 5.4) charges the full Fig. 6
	// evaluation count either way, the memo only removes host-side work.
	SavedEvaluations int
	// CoveredPicks counts ISEs selected directly by Fig. 6 Step 2b
	// because all their data paths were already covered by previously
	// selected ISEs. Covered picks need no profit evaluation and are not
	// counted in Evaluations or FirstRoundEvaluations.
	CoveredPicks int
}

// ISEs returns just the selected ISEs in selection order.
func (r Result) ISEs() []*ise.ISE {
	out := make([]*ise.ISE, len(r.Selected))
	for i, c := range r.Selected {
		out[i] = c.ISE
	}
	return out
}

// ByKernel returns the selected ISE for the kernel, or nil.
func (r Result) ByKernel(id ise.KernelID) *ise.ISE {
	for _, c := range r.Selected {
		if c.Kernel == id {
			return c.ISE
		}
	}
	return nil
}

// TotalProfit sums the per-choice profits.
func (r Result) TotalProfit() float64 {
	t := 0.0
	for _, c := range r.Selected {
		t += c.Profit
	}
	return t
}

// Request bundles the inputs of one selection: the functional block, the
// trigger forecasts, the fabric view and the profit model.
type Request struct {
	Block    *ise.FunctionalBlock
	Triggers []ise.Trigger
	Fabric   ise.FabricView
	Model    profit.Model
}

// Validate checks that every trigger references a kernel of the block.
func (q Request) Validate() error {
	if q.Block == nil {
		return fmt.Errorf("selector: nil functional block")
	}
	for _, t := range q.Triggers {
		if err := t.Validate(); err != nil {
			return err
		}
		if q.Block.Kernel(t.Kernel) == nil {
			return fmt.Errorf("selector: trigger references kernel %q not in block %q", t.Kernel, q.Block.ID)
		}
	}
	return nil
}

// candidate is one ISE under consideration together with its trigger.
type candidate struct {
	kernel *ise.Kernel
	e      *ise.ISE
	params profit.Params
}

// numCandidates counts the candidates gatherCandidates would produce, so
// candidate buffers can be sized in one allocation (or none, when pooled).
func numCandidates(q Request) int {
	n := 0
	for _, t := range q.Triggers {
		if k := q.Block.Kernel(t.Kernel); k != nil {
			n += len(k.ISEs)
		}
	}
	return n
}

// gatherCandidates builds the initial candidate list (Fig. 6 Step 1) in a
// deterministic order: triggers in given order, ISEs in kernel order.
func gatherCandidates(q Request) []candidate {
	out := make([]candidate, 0, numCandidates(q))
	for _, t := range q.Triggers {
		k := q.Block.Kernel(t.Kernel)
		if k == nil {
			continue
		}
		p := profit.ParamsFromTrigger(t)
		for _, e := range k.ISEs {
			out = append(out, candidate{kernel: k, e: e, params: p})
		}
	}
	return out
}

// state tracks remaining fabric capacity and the data paths that will be
// available once the selection's reconfigurations complete.
//
// Two distinct notions matter (paper Section 4.1):
//
//   - capacity: every data path of a selected ISE occupies fabric, whether
//     or not it happens to be configured already — data paths are only
//     shared (counted once) between ISEs of the *same selection*;
//   - reconfiguration time: a data path that is already on the fabric (left
//     over from the previous selection, or claimed by an earlier choice of
//     this selection) costs no reconfiguration time. The profit function
//     sees that through the FabricView this state implements.
type state struct {
	base    ise.FabricView
	freePRC int
	freeCG  int
	claimed map[ise.DataPathID]bool
	// pendingFG/pendingCG accumulate the reconfiguration time of data
	// paths claimed by earlier choices of this selection: later
	// candidates queue behind them on the serial configuration ports.
	pendingFG arch.Cycles
	pendingCG arch.Cycles
}

var (
	_ ise.FabricView = (*state)(nil)
	_ ise.PortView   = (*state)(nil)
)

func newState(base ise.FabricView) *state {
	s := &state{}
	s.reset(base)
	return s
}

// reset re-initialises the state onto a new base view, reusing the claimed
// map so pooled states allocate nothing on reuse.
func (s *state) reset(base ise.FabricView) {
	s.base = base
	s.freePRC = base.FreePRC()
	s.freeCG = base.FreeCG()
	if s.claimed == nil {
		s.claimed = make(map[ise.DataPathID]bool)
	} else {
		clear(s.claimed)
	}
	s.pendingFG = 0
	s.pendingCG = 0
}

func (s *state) FreePRC() int { return s.freePRC }
func (s *state) FreeCG() int  { return s.freeCG }

// PortBacklog implements ise.PortView: the physical port backlog plus the
// reconfigurations this selection has already queued.
func (s *state) PortBacklog(kind arch.FabricKind) arch.Cycles {
	var base arch.Cycles
	if pv, ok := s.base.(ise.PortView); ok {
		base = pv.PortBacklog(kind)
	}
	if kind == arch.FG {
		return base + s.pendingFG
	}
	return base + s.pendingCG
}

// IsConfigured is the reconfiguration-time view used by the profit
// function: physically configured or claimed by an earlier choice.
func (s *state) IsConfigured(id ise.DataPathID) bool {
	return s.claimed[id] || s.base.IsConfigured(id)
}

// capacityCost returns the fabric the ISE occupies beyond the data paths
// already claimed by this selection.
func (s *state) capacityCost(e *ise.ISE) (prc, cg int) {
	for _, d := range e.DataPaths {
		if s.claimed[d.ID] {
			continue
		}
		prc += d.PRCs
		cg += d.CGs
	}
	return prc, cg
}

// fits reports whether the ISE's capacity cost fits the remaining fabric.
func (s *state) fits(e *ise.ISE) bool {
	prc, cg := s.capacityCost(e)
	return prc <= s.freePRC && cg <= s.freeCG
}

// covered reports whether every data path of the ISE is already claimed by
// the selected ISEs (Fig. 6 Step 2b).
func (s *state) covered(e *ise.ISE) bool {
	prc, cg := s.capacityCost(e)
	return prc == 0 && cg == 0
}

// claim consumes fabric capacity for the ISE's unclaimed data paths, marks
// all of its data paths as claimed for later candidates, and queues the
// reconfiguration time of genuinely new data paths on the ports.
func (s *state) claim(e *ise.ISE) {
	prc, cg := s.capacityCost(e)
	s.freePRC -= prc
	s.freeCG -= cg
	for _, d := range e.DataPaths {
		if !s.claimed[d.ID] && !s.base.IsConfigured(d.ID) {
			if d.Kind == arch.FG {
				s.pendingFG += d.ReconfigCycles()
			} else {
				s.pendingCG += d.ReconfigCycles()
			}
		}
		s.claimed[d.ID] = true
	}
}
