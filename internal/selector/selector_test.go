package selector

import (
	"sort"
	"testing"
	"testing/quick"

	"mrts/internal/arch"
	"mrts/internal/ise"
	"mrts/internal/profit"
)

func fgDP(id string) ise.DataPath {
	return ise.DataPath{ID: ise.DataPathID(id), Kind: arch.FG, PRCs: 1}
}
func cgDP(id string) ise.DataPath {
	return ise.DataPath{ID: ise.DataPathID(id), Kind: arch.CG, CGs: 1}
}

// twoKernelBlock builds a block where kernel "big" dominates the profit and
// kernel "small" needs the leftovers.
func twoKernelBlock() *ise.FunctionalBlock {
	big := &ise.Kernel{
		ID: "big", RISCLatency: 1000,
		ISEs: []*ise.ISE{
			{ID: "big.cg1", Kernel: "big", DataPaths: []ise.DataPath{cgDP("b1")}, Latencies: []arch.Cycles{200}},
			{ID: "big.cg2", Kernel: "big", DataPaths: []ise.DataPath{cgDP("b1"), cgDP("b2")}, Latencies: []arch.Cycles{200, 120}},
			{ID: "big.fg1", Kernel: "big", DataPaths: []ise.DataPath{fgDP("bf")}, Latencies: []arch.Cycles{150}},
		},
	}
	small := &ise.Kernel{
		ID: "small", RISCLatency: 400,
		ISEs: []*ise.ISE{
			{ID: "small.cg1", Kernel: "small", DataPaths: []ise.DataPath{cgDP("s1")}, Latencies: []arch.Cycles{100}},
			{ID: "small.fg1", Kernel: "small", DataPaths: []ise.DataPath{fgDP("sf")}, Latencies: []arch.Cycles{80}},
		},
	}
	return &ise.FunctionalBlock{ID: "blk", Kernels: []*ise.Kernel{big, small}}
}

func triggers() []ise.Trigger {
	return []ise.Trigger{
		{Kernel: "big", E: 1000, TF: 100, TB: 50},
		{Kernel: "small", E: 500, TF: 200, TB: 80},
	}
}

func TestGreedyBasicSelection(t *testing.T) {
	blk := twoKernelBlock()
	res, err := Greedy(Request{
		Block:    blk,
		Triggers: triggers(),
		Fabric:   ise.EmptyFabric{PRC: 2, CG: 2},
		Model:    profit.Multigrained,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 2 {
		t.Fatalf("selected %d ISEs, want 2", len(res.Selected))
	}
	if res.ByKernel("big") == nil || res.ByKernel("small") == nil {
		t.Error("both kernels should get an ISE")
	}
	if res.Evaluations == 0 || res.Rounds == 0 {
		t.Error("evaluation counters not maintained")
	}
	if res.FirstRoundEvaluations == 0 || res.FirstRoundEvaluations > res.Evaluations {
		t.Errorf("FirstRoundEvaluations = %d (total %d)", res.FirstRoundEvaluations, res.Evaluations)
	}
}

func TestGreedyPriorityOrder(t *testing.T) {
	// The first selected ISE must belong to the kernel with the larger
	// profit ("the ISE with the maximum profit is selected first",
	// Fig. 6).
	res, err := Greedy(Request{
		Block:    twoKernelBlock(),
		Triggers: triggers(),
		Fabric:   ise.EmptyFabric{PRC: 2, CG: 2},
		Model:    profit.Multigrained,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected[0].Kernel != "big" {
		t.Errorf("first selection = %s, want big (max profit first)", res.Selected[0].Kernel)
	}
	if res.Selected[0].Profit < res.Selected[1].Profit {
		t.Error("selection order must be by decreasing profit")
	}
}

func TestGreedyOneISEPerKernel(t *testing.T) {
	res, err := Greedy(Request{
		Block:    twoKernelBlock(),
		Triggers: triggers(),
		Fabric:   ise.EmptyFabric{PRC: 4, CG: 4},
		Model:    profit.Multigrained,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[ise.KernelID]int{}
	for _, c := range res.Selected {
		seen[c.Kernel]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("kernel %s selected %d times", k, n)
		}
	}
}

func TestGreedyRespectsResources(t *testing.T) {
	// With zero fabric nothing can be selected.
	res, err := Greedy(Request{
		Block:    twoKernelBlock(),
		Triggers: triggers(),
		Fabric:   ise.EmptyFabric{},
		Model:    profit.Multigrained,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 0 {
		t.Errorf("selected %d ISEs with zero fabric", len(res.Selected))
	}

	// With 1 CG only, the two kernels compete; exactly one 1-CG ISE may
	// win and no FG ISE may appear.
	res, err = Greedy(Request{
		Block:    twoKernelBlock(),
		Triggers: triggers(),
		Fabric:   ise.EmptyFabric{CG: 1},
		Model:    profit.Multigrained,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 1 {
		t.Fatalf("selected %d ISEs with 1 CG, want 1", len(res.Selected))
	}
	if got := res.Selected[0].ISE; got.CostCG() > 1 || got.CostPRC() > 0 {
		t.Errorf("selected %s exceeds fabric", got.ID)
	}
}

func TestGreedyZeroExecutionsSelectsNothing(t *testing.T) {
	res, err := Greedy(Request{
		Block:    twoKernelBlock(),
		Triggers: []ise.Trigger{{Kernel: "big", E: 0}, {Kernel: "small", E: 0}},
		Fabric:   ise.EmptyFabric{PRC: 4, CG: 4},
		Model:    profit.Multigrained,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 0 {
		t.Errorf("selected %d ISEs for zero forecast executions", len(res.Selected))
	}
}

func TestGreedyCoveredRule(t *testing.T) {
	// big.cg2's data paths are already configured: it must be selected
	// outright (Fig. 6 Step 2b), leaving room for small.
	fab := coveredFabric{prc: 0, cg: 2, configured: map[ise.DataPathID]bool{"b1": true, "b2": true}}
	res, err := Greedy(Request{
		Block:    twoKernelBlock(),
		Triggers: triggers(),
		Fabric:   fab,
		Model:    profit.Multigrained,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ByKernel("big"); got == nil || got.ID != "big.cg2" {
		t.Fatalf("covered ISE big.cg2 not selected, got %v", res.Selected)
	}
	// Capacity accounting: big.cg2 occupies both CG-EDPEs even though
	// they are configured, so small gets nothing.
	if res.ByKernel("small") != nil {
		t.Error("small selected although covered ISE occupies all fabric")
	}
}

type coveredFabric struct {
	prc, cg    int
	configured map[ise.DataPathID]bool
}

func (f coveredFabric) FreePRC() int                       { return f.prc }
func (f coveredFabric) FreeCG() int                        { return f.cg }
func (f coveredFabric) IsConfigured(d ise.DataPathID) bool { return f.configured[d] }

func TestGreedyValidatesRequest(t *testing.T) {
	_, err := Greedy(Request{
		Block:    twoKernelBlock(),
		Triggers: []ise.Trigger{{Kernel: "missing", E: 5}},
		Fabric:   ise.EmptyFabric{PRC: 1, CG: 1},
	})
	if err == nil {
		t.Error("trigger for unknown kernel accepted")
	}
	_, err = Greedy(Request{Triggers: nil, Fabric: ise.EmptyFabric{}})
	if err == nil {
		t.Error("nil block accepted")
	}
}

func TestOptimalBeatsOrMatchesGreedy(t *testing.T) {
	for _, fab := range []ise.EmptyFabric{
		{PRC: 0, CG: 1}, {PRC: 1, CG: 0}, {PRC: 1, CG: 1}, {PRC: 2, CG: 2}, {PRC: 0, CG: 2},
	} {
		req := Request{
			Block:    twoKernelBlock(),
			Triggers: triggers(),
			Fabric:   fab,
			Model:    profit.Multigrained,
		}
		g, err := Greedy(req)
		if err != nil {
			t.Fatal(err)
		}
		o, err := Optimal(req)
		if err != nil {
			t.Fatal(err)
		}
		if o.TotalProfit() < g.TotalProfit()-1e-6 {
			t.Errorf("fabric %+v: optimal profit %v < greedy %v", fab, o.TotalProfit(), g.TotalProfit())
		}
	}
}

func TestOptimalRespectsResources(t *testing.T) {
	res, err := Optimal(Request{
		Block:    twoKernelBlock(),
		Triggers: triggers(),
		Fabric:   ise.EmptyFabric{PRC: 1, CG: 1},
		Model:    profit.Multigrained,
	})
	if err != nil {
		t.Fatal(err)
	}
	prc, cg := 0, 0
	seen := map[ise.DataPathID]bool{}
	for _, c := range res.Selected {
		for _, d := range c.ISE.DataPaths {
			if seen[d.ID] {
				continue
			}
			seen[d.ID] = true
			prc += d.PRCs
			cg += d.CGs
		}
	}
	if prc > 1 || cg > 1 {
		t.Errorf("optimal selection uses %d PRC / %d CG, budget 1/1", prc, cg)
	}
}

func TestOptimalSharesDataPaths(t *testing.T) {
	// Two kernels whose best ISEs share an FG data path: with one PRC,
	// the optimal algorithm can still select both.
	k1 := &ise.Kernel{
		ID: "k1", RISCLatency: 500,
		ISEs: []*ise.ISE{
			{ID: "k1.fg", Kernel: "k1", DataPaths: []ise.DataPath{fgDP("shared")}, Latencies: []arch.Cycles{100}},
		},
	}
	k2 := &ise.Kernel{
		ID: "k2", RISCLatency: 500,
		ISEs: []*ise.ISE{
			{ID: "k2.fg", Kernel: "k2", DataPaths: []ise.DataPath{fgDP("shared")}, Latencies: []arch.Cycles{120}},
		},
	}
	blk := &ise.FunctionalBlock{ID: "b", Kernels: []*ise.Kernel{k1, k2}}
	req := Request{
		Block: blk,
		Triggers: []ise.Trigger{
			{Kernel: "k1", E: 1000, TF: 10, TB: 10},
			{Kernel: "k2", E: 1000, TF: 10, TB: 10},
		},
		Fabric: ise.EmptyFabric{PRC: 1},
		Model:  profit.Multigrained,
	}
	res, err := Optimal(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 2 {
		t.Fatalf("optimal selected %d, want 2 (shared data path)", len(res.Selected))
	}
	g, err := Greedy(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Selected) != 2 {
		t.Fatalf("greedy selected %d, want 2 (shared data path)", len(g.Selected))
	}
}

func TestResultHelpers(t *testing.T) {
	e := &ise.ISE{ID: "x", Kernel: "k", DataPaths: []ise.DataPath{fgDP("a")}, Latencies: []arch.Cycles{10}}
	r := Result{Selected: []Choice{{Kernel: "k", ISE: e, Profit: 5}}}
	if len(r.ISEs()) != 1 || r.ISEs()[0] != e {
		t.Error("ISEs() wrong")
	}
	if r.ByKernel("k") != e || r.ByKernel("z") != nil {
		t.Error("ByKernel wrong")
	}
	if r.TotalProfit() != 5 {
		t.Error("TotalProfit wrong")
	}
}

// Property: greedy never over-commits fabric, never selects a kernel twice,
// and its total profit is never negative — over random budgets and
// forecasts.
func TestGreedyInvariantsProperty(t *testing.T) {
	blk := twoKernelBlock()
	f := func(prc, cg uint8, e1, e2 uint16) bool {
		req := Request{
			Block: blk,
			Triggers: []ise.Trigger{
				{Kernel: "big", E: int64(e1), TF: 10, TB: 10},
				{Kernel: "small", E: int64(e2), TF: 10, TB: 10},
			},
			Fabric: ise.EmptyFabric{PRC: int(prc % 5), CG: int(cg % 5)},
			Model:  profit.Multigrained,
		}
		res, err := Greedy(req)
		if err != nil {
			return false
		}
		prcUsed, cgUsed := 0, 0
		kernels := map[ise.KernelID]bool{}
		seen := map[ise.DataPathID]bool{}
		for _, c := range res.Selected {
			if kernels[c.Kernel] {
				return false
			}
			kernels[c.Kernel] = true
			if c.Profit < 0 {
				return false
			}
			for _, d := range c.ISE.DataPaths {
				if seen[d.ID] {
					continue
				}
				seen[d.ID] = true
				prcUsed += d.PRCs
				cgUsed += d.CGs
			}
		}
		return prcUsed <= int(prc%5) && cgUsed <= int(cg%5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the branch-and-bound optimal matches brute-force enumeration on
// small instances.
func TestOptimalMatchesBruteForce(t *testing.T) {
	blk := twoKernelBlock()
	f := func(prc, cg uint8, e1, e2 uint16) bool {
		req := Request{
			Block: blk,
			Triggers: []ise.Trigger{
				{Kernel: "big", E: int64(e1 % 3000), TF: 15, TB: 12},
				{Kernel: "small", E: int64(e2 % 3000), TF: 25, TB: 9},
			},
			Fabric: ise.EmptyFabric{PRC: int(prc % 4), CG: int(cg % 4)},
			Model:  profit.Multigrained,
		}
		opt, err := Optimal(req)
		if err != nil {
			return false
		}
		want := bruteForceBest(req)
		return opt.TotalProfit() >= want-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// bruteForceBest enumerates every combination (including skips) and returns
// the best total profit under the resource constraint, evaluating profits
// the same way Optimal does: kernels ordered by descending steady-state
// bound (profit is order-dependent through the configuration-port backlog,
// so the enumeration order must match for an exact comparison).
func bruteForceBest(q Request) float64 {
	type kern struct {
		k    *ise.Kernel
		p    profit.Params
		exts []*ise.ISE
	}
	var ks []kern
	for _, t := range q.Triggers {
		k := q.Block.Kernel(t.Kernel)
		ks = append(ks, kern{k: k, p: profit.ParamsFromTrigger(t), exts: k.ISEs})
	}
	// Mirror Optimal's group bound EXACTLY — including the unshared/shared
	// split (unshared options are bounded by their stand-alone profit,
	// shared ones by their steady-state profit). The bound only drives the
	// sort, but profit is order-dependent through the configuration-port
	// backlog, so any key mismatch makes the two enumerations walk
	// different orders and compare incomparable totals.
	dpOwners := computeDataPathOwners(q)
	bound := func(kn kern) float64 {
		best := 0.0
		for _, e := range kn.exts {
			if e.CostPRC() > q.Fabric.FreePRC() || e.CostCG() > q.Fabric.FreeCG() {
				continue
			}
			pr := profit.Profit(kn.k, e, q.Fabric, kn.p, q.Model)
			shared := false
			for _, d := range e.DataPaths {
				if dpOwners[d.ID] > 1 {
					shared = true
					break
				}
			}
			if pr <= 0 && !shared {
				continue
			}
			b := pr
			if shared {
				b = profit.SteadyStateProfit(kn.k, e, kn.p.E)
			}
			if b > best {
				best = b
			}
		}
		return best
	}
	sort.SliceStable(ks, func(i, j int) bool { return bound(ks[i]) > bound(ks[j]) })
	best := 0.0
	var walk func(i int, st *state, total float64)
	walk = func(i int, st *state, total float64) {
		if i == len(ks) {
			if total > best {
				best = total
			}
			return
		}
		walk(i+1, st, total)
		for _, e := range ks[i].exts {
			if !st.fits(e) {
				continue
			}
			pr := profit.Profit(ks[i].k, e, st, ks[i].p, q.Model)
			if pr <= 0 {
				continue
			}
			savedPRC, savedCG := st.freePRC, st.freeCG
			savedFG, savedCGP := st.pendingFG, st.pendingCG
			var added []ise.DataPathID
			for _, d := range e.DataPaths {
				if !st.claimed[d.ID] {
					added = append(added, d.ID)
				}
			}
			st.claim(e)
			walk(i+1, st, total+pr)
			st.freePRC, st.freeCG = savedPRC, savedCG
			st.pendingFG, st.pendingCG = savedFG, savedCGP
			for _, id := range added {
				delete(st.claimed, id)
			}
		}
	}
	walk(0, newState(q.Fabric), 0)
	return best
}
