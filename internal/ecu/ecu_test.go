package ecu

import (
	"testing"

	"mrts/internal/arch"
	"mrts/internal/ise"
	"mrts/internal/reconfig"
)

func fgDP(id string) ise.DataPath {
	return ise.DataPath{ID: ise.DataPathID(id), Kind: arch.FG, PRCs: 1}
}
func cgDP(id string) ise.DataPath {
	return ise.DataPath{ID: ise.DataPathID(id), Kind: arch.CG, CGs: 1}
}

func testKernel() *ise.Kernel {
	return &ise.Kernel{
		ID:          "k",
		RISCLatency: 1000,
		MonoCG:      ise.MonoCGExt{Latency: 400, Instructions: 16},
		ISEs: []*ise.ISE{
			{
				ID: "k.fg2", Kernel: "k",
				DataPaths: []ise.DataPath{fgDP("a"), fgDP("b")},
				Latencies: []arch.Cycles{500, 100},
			},
		},
	}
}

func newCtrl(t *testing.T, prc, cg int) *reconfig.Controller {
	t.Helper()
	c, err := reconfig.NewController(arch.Config{NPRC: prc, NCG: cg})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDecideFullISE(t *testing.T) {
	ctrl := newCtrl(t, 2, 0)
	k := testKernel()
	sel := k.ISEs[0]
	if _, err := ctrl.CommitSelection([]*ise.ISE{sel}, 0); err != nil {
		t.Fatal(err)
	}
	u := New(ctrl, Options{})
	d := u.Decide(k, sel, 2*arch.FGReconfigCycles)
	if d.Mode != Full || d.Latency != 100 || d.Level != 2 {
		t.Errorf("decision = %+v, want full ISE @100", d)
	}
}

func TestDecideIntermediate(t *testing.T) {
	ctrl := newCtrl(t, 2, 0)
	k := testKernel()
	sel := k.ISEs[0]
	if _, err := ctrl.CommitSelection([]*ise.ISE{sel}, 0); err != nil {
		t.Fatal(err)
	}
	u := New(ctrl, Options{})
	// After one FG reconfiguration only data path "a" is ready.
	d := u.Decide(k, sel, arch.FGReconfigCycles)
	if d.Mode != Intermediate || d.Level != 1 || d.Latency != 500 {
		t.Errorf("decision = %+v, want intermediate level 1 @500", d)
	}
}

func TestDecideMonoCGBridging(t *testing.T) {
	ctrl := newCtrl(t, 2, 1)
	k := testKernel()
	sel := k.ISEs[0]
	if _, err := ctrl.CommitSelection([]*ise.ISE{sel}, 0); err != nil {
		t.Fatal(err)
	}
	u := New(ctrl, Options{})
	// Long before the first FG data path is ready: no intermediate
	// exists; the ECU loads a monoCG-Extension. The triggering
	// execution itself still runs in RISC mode...
	d := u.Decide(k, sel, 100)
	if d.Mode != RISC {
		t.Errorf("first decision = %+v, want RISC while monoCG streams in", d)
	}
	// ...but the next execution (contexts streamed) uses the extension.
	d = u.Decide(k, sel, 100+k.MonoCG.ReconfigCycles())
	if d.Mode != MonoCG || d.Latency != 400 {
		t.Errorf("second decision = %+v, want monoCG @400", d)
	}
}

func TestDecideRISCFallback(t *testing.T) {
	// No CG-EDPE at all: no monoCG possible, no data path ready.
	ctrl := newCtrl(t, 2, 0)
	k := testKernel()
	sel := k.ISEs[0]
	if _, err := ctrl.CommitSelection([]*ise.ISE{sel}, 0); err != nil {
		t.Fatal(err)
	}
	u := New(ctrl, Options{})
	d := u.Decide(k, sel, 10)
	if d.Mode != RISC || d.Latency != 1000 {
		t.Errorf("decision = %+v, want RISC @1000", d)
	}
}

func TestDecideNoSelection(t *testing.T) {
	ctrl := newCtrl(t, 0, 1)
	k := testKernel()
	u := New(ctrl, Options{})
	// Unselected kernel with a free CG-EDPE: monoCG bridges.
	d := u.Decide(k, nil, 0)
	if d.Mode != RISC {
		t.Errorf("first decision = %v, want RISC (context streaming)", d.Mode)
	}
	d = u.Decide(k, nil, k.MonoCG.ReconfigCycles())
	if d.Mode != MonoCG {
		t.Errorf("second decision = %v, want monoCG", d.Mode)
	}
}

func TestDisableMonoCG(t *testing.T) {
	ctrl := newCtrl(t, 0, 1)
	k := testKernel()
	u := New(ctrl, Options{DisableMonoCG: true})
	d := u.Decide(k, nil, 0)
	if d.Mode != RISC {
		t.Errorf("decision = %v, want RISC with monoCG disabled", d.Mode)
	}
	d = u.Decide(k, nil, 1_000_000)
	if d.Mode != RISC {
		t.Errorf("monoCG used despite being disabled: %v", d.Mode)
	}
}

func TestDisableIntermediate(t *testing.T) {
	ctrl := newCtrl(t, 2, 0)
	k := testKernel()
	sel := k.ISEs[0]
	if _, err := ctrl.CommitSelection([]*ise.ISE{sel}, 0); err != nil {
		t.Fatal(err)
	}
	u := New(ctrl, Options{DisableIntermediate: true})
	d := u.Decide(k, sel, arch.FGReconfigCycles)
	if d.Mode != RISC {
		t.Errorf("decision = %v, want RISC with intermediates disabled", d.Mode)
	}
	d = u.Decide(k, sel, 2*arch.FGReconfigCycles)
	if d.Mode != Full {
		t.Errorf("full ISE not used once complete: %v", d.Mode)
	}
}

func TestPaperPriorityOrder(t *testing.T) {
	// Fig. 7: intermediate ISEs take precedence over monoCG even when a
	// free CG-EDPE exists.
	ctrl := newCtrl(t, 2, 1)
	k := testKernel()
	sel := k.ISEs[0]
	if _, err := ctrl.CommitSelection([]*ise.ISE{sel}, 0); err != nil {
		t.Fatal(err)
	}
	u := New(ctrl, Options{})
	d := u.Decide(k, sel, arch.FGReconfigCycles)
	if d.Mode != Intermediate {
		t.Errorf("decision = %v, want intermediate before monoCG", d.Mode)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		RISC: "RISC", MonoCG: "monoCG", Intermediate: "intermediate", Full: "full-ISE",
	} {
		if m.String() != want {
			t.Errorf("Mode(%d) = %q, want %q", m, m.String(), want)
		}
	}
	if Mode(17).String() == "" {
		t.Error("unknown mode should render")
	}
}

func TestIntermediateFromSharedDataPaths(t *testing.T) {
	// Paper Section 4.1: intermediate ISEs "may become available ... due
	// to the completed reconfigurations of other ISEs that share some
	// data paths with the specific ISE". Kernel B's selected ISE starts
	// with a data path that kernel A's committed ISE already configured:
	// B executes as an intermediate immediately.
	ctrl := newCtrl(t, 2, 0)
	shared := fgDP("shared")
	aISE := &ise.ISE{
		ID: "a.fg1", Kernel: "a",
		DataPaths: []ise.DataPath{shared},
		Latencies: []arch.Cycles{100},
	}
	bKernel := &ise.Kernel{
		ID: "b", RISCLatency: 900,
		ISEs: []*ise.ISE{{
			ID: "b.fg2", Kernel: "b",
			DataPaths: []ise.DataPath{shared, fgDP("own")},
			Latencies: []arch.Cycles{400, 120},
		}},
	}
	bISE := bKernel.ISEs[0]
	if _, err := ctrl.CommitSelection([]*ise.ISE{aISE, bISE}, 0); err != nil {
		t.Fatal(err)
	}
	u := New(ctrl, Options{})
	// After one FG reconfiguration, the shared path is up; B's second
	// path is still streaming — B runs as intermediate level 1.
	d := u.Decide(bKernel, bISE, arch.FGReconfigCycles)
	if d.Mode != Intermediate || d.Level != 1 || d.Latency != 400 {
		t.Errorf("decision = %+v, want intermediate level 1 via the shared path", d)
	}
}
