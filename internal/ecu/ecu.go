// Package ecu implements the Execution Control Unit of mRTS (paper
// Section 4.2, Fig. 7). For every kernel execution the ECU steers which
// implementation runs:
//
//  1. the selected ISE, if all of its data paths are reconfigured;
//  2. otherwise the best available intermediate ISE (the longest configured
//     prefix of the selected ISE's data paths, which may have been
//     completed by shared data paths of other ISEs);
//  3. otherwise a monoCG-Extension on a free CG-EDPE — the full kernel on
//     one coarse-grained fabric, bridging the long delay until the first
//     accelerated execution;
//  4. otherwise RISC mode on the core processor.
package ecu

import (
	"fmt"

	"mrts/internal/arch"
	"mrts/internal/ise"
	"mrts/internal/reconfig"
)

// Mode identifies which implementation the ECU dispatched.
type Mode int

const (
	// RISC executes the kernel with the core processor's base ISA.
	RISC Mode = iota
	// MonoCG executes the kernel's monoCG-Extension on one CG-EDPE.
	MonoCG
	// Intermediate executes an intermediate ISE (a configured prefix of
	// the selected ISE's data paths).
	Intermediate
	// Full executes the completely reconfigured selected ISE.
	Full
)

func (m Mode) String() string {
	switch m {
	case RISC:
		return "RISC"
	case MonoCG:
		return "monoCG"
	case Intermediate:
		return "intermediate"
	case Full:
		return "full-ISE"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Decision is the ECU's verdict for one kernel execution.
type Decision struct {
	Mode Mode
	// Level is the intermediate-ISE index (1..n-1) when Mode is
	// Intermediate, n for Full, otherwise 0.
	Level int
	// Latency is the execution latency of the dispatched implementation.
	Latency arch.Cycles
}

// Options tune the ECU for the ablation studies.
type Options struct {
	// DisableMonoCG removes step 3 of the flow.
	DisableMonoCG bool
	// DisableIntermediate removes step 2 of the flow: the kernel waits in
	// RISC/monoCG until the selected ISE is complete.
	DisableIntermediate bool
}

// steadyEntry caches a steady-state decision for one kernel: the verdict
// reached for `selected` while the controller sat at change version `ver`.
// Only decisions that are monotone-stable over time are cached — Full and a
// ready monoCG slot — so the entry stays valid at any later `now` until the
// controller's version advances (a data-path removal, migration or monoCG
// release) or the kernel's selected ISE changes.
type steadyEntry struct {
	ver      uint64
	selected *ise.ISE
	dec      Decision
}

// SteadyCache is a per-kernel steady-state decision cache validated by the
// reconfiguration controller's change version. Execution steering runs once
// per kernel execution — the hottest query in the simulator — and in the
// steady state every execution re-derives the same verdict from the same
// fabric state. The cache replays that verdict with one pointer-keyed map
// lookup instead of walking the configured-path map per data path. It is a
// pure host-side shortcut: callers may only Put decisions that are stable
// under an unchanged version (Full, or a ready monoCG slot with no selected
// ISE that could overtake it), so a hit returns exactly the Decision the
// full derivation would and simulated timelines stay byte-identical with
// the cache on or off. Both the ECU and the static baselines use it.
type SteadyCache struct {
	m map[*ise.Kernel]steadyEntry
}

// NewSteadyCache creates an empty steady-state decision cache.
func NewSteadyCache() *SteadyCache {
	return &SteadyCache{m: make(map[*ise.Kernel]steadyEntry)}
}

// Get returns the cached decision for (k, selected) if it was recorded at
// change version ver.
func (c *SteadyCache) Get(k *ise.Kernel, selected *ise.ISE, ver uint64) (Decision, bool) {
	e, ok := c.m[k]
	if !ok || e.ver != ver || e.selected != selected {
		return Decision{}, false
	}
	return e.dec, true
}

// Put records a stable decision for (k, selected) at change version ver.
func (c *SteadyCache) Put(k *ise.Kernel, selected *ise.ISE, ver uint64, d Decision) {
	c.m[k] = steadyEntry{ver: ver, selected: selected, dec: d}
}

// ECU steers kernel executions against a reconfiguration controller.
type ECU struct {
	ctrl   *reconfig.Controller
	opts   Options
	steady *SteadyCache
}

// New creates an ECU bound to a controller.
func New(ctrl *reconfig.Controller, opts Options) *ECU {
	return &ECU{ctrl: ctrl, opts: opts, steady: NewSteadyCache()}
}

// Decide returns the implementation for one execution of kernel k at time
// now, given the ISE the selector picked for it (nil if none was selected).
// Decide advances the controller clock to now.
func (u *ECU) Decide(k *ise.Kernel, selected *ise.ISE, now arch.Cycles) Decision {
	u.ctrl.Advance(now)

	ver := u.ctrl.Version()
	if d, ok := u.steady.Get(k, selected, ver); ok {
		return d
	}

	if selected != nil {
		prefix := u.ctrl.ConfiguredPrefix(selected)
		n := selected.NumDataPaths()
		if prefix == n {
			d := Decision{Mode: Full, Level: n, Latency: selected.FullLatency()}
			// Full is stable: ready times never move under an unchanged
			// version and the clock only advances.
			u.steady.Put(k, selected, ver, d)
			return d
		}
		if prefix >= 1 && !u.opts.DisableIntermediate {
			// Not cached: the prefix can grow as in-flight data paths
			// complete, without any controller mutation.
			return Decision{Mode: Intermediate, Level: prefix, Latency: selected.Latency(prefix)}
		}
	}

	if !u.opts.DisableMonoCG && k.MonoCG.Available() {
		if ready, ok := u.ctrl.MonoCGReady(k.ID); ok && ready <= now {
			d := Decision{Mode: MonoCG, Latency: k.MonoCG.Latency}
			if selected == nil {
				// A ready monoCG slot is stable (releasing it bumps the
				// version) and with no selected ISE nothing can overtake
				// it. With a selected ISE the verdict is NOT cached: its
				// in-flight data paths may complete — upgrading the next
				// execution to intermediate/full — without any
				// version-bumping mutation.
				u.steady.Put(k, nil, ver, d)
			}
			return d
		} else if !ok {
			// Load the extension into a free CG-EDPE; its context
			// streams in within microseconds, so it typically
			// serves the next execution. This one still runs in
			// RISC mode (paper: "readily available after few
			// RISC-mode executions").
			if ready, acquired := u.ctrl.AcquireMonoCG(k, now); acquired && ready <= now {
				return Decision{Mode: MonoCG, Latency: k.MonoCG.Latency}
			}
		}
	}

	// RISC verdicts are transient (a pending reconfiguration or monoCG
	// load may finish by the next execution) and are not cached.
	return Decision{Mode: RISC, Latency: k.RISCLatency}
}
