// Package ecu implements the Execution Control Unit of mRTS (paper
// Section 4.2, Fig. 7). For every kernel execution the ECU steers which
// implementation runs:
//
//  1. the selected ISE, if all of its data paths are reconfigured;
//  2. otherwise the best available intermediate ISE (the longest configured
//     prefix of the selected ISE's data paths, which may have been
//     completed by shared data paths of other ISEs);
//  3. otherwise a monoCG-Extension on a free CG-EDPE — the full kernel on
//     one coarse-grained fabric, bridging the long delay until the first
//     accelerated execution;
//  4. otherwise RISC mode on the core processor.
package ecu

import (
	"fmt"

	"mrts/internal/arch"
	"mrts/internal/ise"
	"mrts/internal/reconfig"
)

// Mode identifies which implementation the ECU dispatched.
type Mode int

const (
	// RISC executes the kernel with the core processor's base ISA.
	RISC Mode = iota
	// MonoCG executes the kernel's monoCG-Extension on one CG-EDPE.
	MonoCG
	// Intermediate executes an intermediate ISE (a configured prefix of
	// the selected ISE's data paths).
	Intermediate
	// Full executes the completely reconfigured selected ISE.
	Full
)

func (m Mode) String() string {
	switch m {
	case RISC:
		return "RISC"
	case MonoCG:
		return "monoCG"
	case Intermediate:
		return "intermediate"
	case Full:
		return "full-ISE"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Decision is the ECU's verdict for one kernel execution.
type Decision struct {
	Mode Mode
	// Level is the intermediate-ISE index (1..n-1) when Mode is
	// Intermediate, n for Full, otherwise 0.
	Level int
	// Latency is the execution latency of the dispatched implementation.
	Latency arch.Cycles
}

// Options tune the ECU for the ablation studies.
type Options struct {
	// DisableMonoCG removes step 3 of the flow.
	DisableMonoCG bool
	// DisableIntermediate removes step 2 of the flow: the kernel waits in
	// RISC/monoCG until the selected ISE is complete.
	DisableIntermediate bool
}

// ECU steers kernel executions against a reconfiguration controller.
type ECU struct {
	ctrl *reconfig.Controller
	opts Options
}

// New creates an ECU bound to a controller.
func New(ctrl *reconfig.Controller, opts Options) *ECU {
	return &ECU{ctrl: ctrl, opts: opts}
}

// Decide returns the implementation for one execution of kernel k at time
// now, given the ISE the selector picked for it (nil if none was selected).
// Decide advances the controller clock to now.
func (u *ECU) Decide(k *ise.Kernel, selected *ise.ISE, now arch.Cycles) Decision {
	u.ctrl.Advance(now)

	if selected != nil {
		prefix := u.ctrl.ConfiguredPrefix(selected)
		n := selected.NumDataPaths()
		if prefix == n {
			return Decision{Mode: Full, Level: n, Latency: selected.FullLatency()}
		}
		if prefix >= 1 && !u.opts.DisableIntermediate {
			return Decision{Mode: Intermediate, Level: prefix, Latency: selected.Latency(prefix)}
		}
	}

	if !u.opts.DisableMonoCG && k.MonoCG.Available() {
		if ready, ok := u.ctrl.MonoCGReady(k.ID); ok && ready <= now {
			return Decision{Mode: MonoCG, Latency: k.MonoCG.Latency}
		} else if !ok {
			// Load the extension into a free CG-EDPE; its context
			// streams in within microseconds, so it typically
			// serves the next execution. This one still runs in
			// RISC mode (paper: "readily available after few
			// RISC-mode executions").
			if ready, acquired := u.ctrl.AcquireMonoCG(k, now); acquired && ready <= now {
				return Decision{Mode: MonoCG, Latency: k.MonoCG.Latency}
			}
		}
	}

	return Decision{Mode: RISC, Latency: k.RISCLatency}
}
