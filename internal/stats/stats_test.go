package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestMaxMin(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Max(xs) != 7 || Min(xs) != -1 {
		t.Errorf("max/min = %v/%v", Max(xs), Min(xs))
	}
	if Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty max/min should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-9 {
		t.Errorf("geomean = %v, want 2", got)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("non-positive values should yield 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("empty should yield 0")
	}
}

func TestPercentDiff(t *testing.T) {
	if got := PercentDiff(200, 180); got != 10 {
		t.Errorf("diff = %v, want 10", got)
	}
	if PercentDiff(0, 5) != 0 {
		t.Error("zero base should yield 0")
	}
}

func TestMeanBetweenMinAndMaxProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGeoMeanLeqMeanProperty(t *testing.T) {
	// AM-GM inequality for positive values.
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			v = math.Abs(v)
			if v > 1e-6 && v < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
