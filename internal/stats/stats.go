// Package stats provides the small numeric helpers the experiment harness
// uses: means, maxima, geometric means and percentage differences.
package stats

import "math"

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// GeoMean returns the geometric mean of positive values, or 0 if any value
// is non-positive or the slice is empty.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// PercentDiff returns 100*(a-b)/a, the percentage by which b falls short of
// a; 0 when a is 0.
func PercentDiff(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return 100 * (a - b) / a
}
