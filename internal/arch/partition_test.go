package arch

import "testing"

func TestWindowOverlap(t *testing.T) {
	cases := []struct {
		a, b Window
		want int
	}{
		{Window{0, 4}, Window{0, 4}, 4},
		{Window{0, 4}, Window{2, 4}, 2},
		{Window{0, 2}, Window{2, 2}, 0},
		{Window{1, 3}, Window{0, 6}, 3},
		{Window{0, 0}, Window{0, 4}, 0},
		{Window{5, 2}, Window{0, 3}, 0},
	}
	for _, c := range cases {
		if got := c.a.Overlap(c.b); got != c.want {
			t.Errorf("%v.Overlap(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlap(c.a); got != c.want {
			t.Errorf("%v.Overlap(%v) = %d, want %d (not symmetric)", c.b, c.a, got, c.want)
		}
	}
}

func TestPartitionValidateAndConfig(t *testing.T) {
	phys := Config{NPRC: 4, NCG: 3}
	p := Partition{PRC: Window{1, 2}, CG: Window{0, 3}}
	if err := p.Validate(phys); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
	if got := p.Config(); got != (Config{NPRC: 2, NCG: 3}) {
		t.Fatalf("Config() = %v", got)
	}
	bad := Partition{PRC: Window{3, 2}, CG: Window{0, 1}}
	if err := bad.Validate(phys); err == nil {
		t.Fatal("overflowing PRC window accepted")
	}
	neg := Partition{PRC: Window{0, 1}, CG: Window{-1, 2}}
	if err := neg.Validate(phys); err == nil {
		t.Fatal("negative CG start accepted")
	}
}

func TestAvailableIn(t *testing.T) {
	f := NewFabric(Config{NPRC: 4, NCG: 3})
	full := Window{0, 4}
	if got := f.AvailableIn(FG, full); got != 4 {
		t.Fatalf("AvailableIn healthy = %d, want 4", got)
	}
	// Fail strikes the lowest-indexed healthy unit: PRC 0.
	f.Fail(FG, true)
	if got := f.AvailableIn(FG, Window{0, 2}); got != 1 {
		t.Fatalf("AvailableIn after fail = %d, want 1", got)
	}
	if got := f.AvailableIn(FG, Window{2, 2}); got != 2 {
		t.Fatalf("AvailableIn untouched window = %d, want 2", got)
	}
	// Out-of-range indices count as lost, never healthy.
	if got := f.AvailableIn(CG, Window{2, 5}); got != 1 {
		t.Fatalf("AvailableIn past the edge = %d, want 1", got)
	}
}
