package arch

import "fmt"

// Window is a contiguous range of container indices [Start, Start+N) on
// one fabric. The vfabric hypervisor slices each fabric's container index
// space into windows, one per tenant: contiguity keeps repartitioning a
// pure boundary shift, so the set of containers a tenant keeps across a
// repartition is exactly the overlap of its old and new windows.
type Window struct {
	// Start is the first container index of the window.
	Start int `json:"start"`
	// N is the number of containers in the window.
	N int `json:"n"`
}

// End returns the first index past the window.
func (w Window) End() int { return w.Start + w.N }

// Contains reports whether container index i falls inside the window.
func (w Window) Contains(i int) bool { return i >= w.Start && i < w.End() }

// Overlap returns the number of container indices the two windows share —
// the containers a tenant retains when its window moves from w to o.
func (w Window) Overlap(o Window) int {
	lo := max(w.Start, o.Start)
	hi := min(w.End(), o.End())
	if hi <= lo {
		return 0
	}
	return hi - lo
}

func (w Window) String() string {
	if w.N == 0 {
		return "[)"
	}
	return fmt.Sprintf("[%d,%d)", w.Start, w.End())
}

// Partition is one tenant's slice of the physical fabric: a window of FG
// PRC slots and a window of CG containers.
type Partition struct {
	PRC Window `json:"prc"`
	CG  Window `json:"cg"`
}

// Config returns the fabric configuration the partition presents to the
// tenant's runtime system: it sees a fabric of exactly its window sizes.
func (p Partition) Config() Config { return Config{NPRC: p.PRC.N, NCG: p.CG.N} }

// Window returns the partition's window on the given fabric kind.
func (p Partition) Window(k FabricKind) Window {
	if k == FG {
		return p.PRC
	}
	return p.CG
}

// Validate checks the partition fits inside a physical fabric.
func (p Partition) Validate(phys Config) error {
	if p.PRC.Start < 0 || p.PRC.N < 0 || p.PRC.End() > phys.NPRC {
		return fmt.Errorf("arch: PRC window %s outside physical fabric of %d", p.PRC, phys.NPRC)
	}
	if p.CG.Start < 0 || p.CG.N < 0 || p.CG.End() > phys.NCG {
		return fmt.Errorf("arch: CG window %s outside physical fabric of %d", p.CG, phys.NCG)
	}
	return nil
}

func (p Partition) String() string {
	return fmt.Sprintf("prc=%s cg=%s", p.PRC, p.CG)
}

// AvailableIn returns the number of healthy containers of the given kind
// whose index falls inside the window — the partition-aware view of
// Available. The hypervisor uses it to size a tenant's usable share when
// faults have taken containers down inside (or outside) its window.
func (f *Fabric) AvailableIn(k FabricKind, w Window) int {
	n := 0
	for i := w.Start; i < w.End(); i++ {
		if f.Health(k, i) == Healthy {
			n++
		}
	}
	return n
}
