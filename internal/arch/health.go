package arch

import "fmt"

// Health classifies the state of one reconfigurable container (a PRC or a
// CG-EDPE). The benign case — every container Healthy forever — is the
// model the paper evaluates; the fault subsystem (internal/fault) drives
// the other two states at run time.
type Health int

const (
	// Healthy containers accept configurations and execute them.
	Healthy Health = iota
	// Suspect containers are transiently down (an intermittent fault) and
	// are expected to recover; they hold no configuration meanwhile.
	Suspect
	// Failed containers are permanently lost.
	Failed
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("Health(%d)", int(h))
	}
}

// Fabric tracks per-container health for one processor instance. The zero
// count case (RISC-only configs) is valid and always reports zero
// availability. With every container Healthy — the initial state — the
// available counts equal the configured totals, so a fault-free run is
// indistinguishable from the pre-fault capacity arithmetic.
type Fabric struct {
	prc []Health
	cg  []Health
}

// NewFabric creates an all-healthy fabric for the budget.
func NewFabric(cfg Config) *Fabric {
	return &Fabric{
		prc: make([]Health, cfg.NPRC),
		cg:  make([]Health, cfg.NCG),
	}
}

func (f *Fabric) units(kind FabricKind) []Health {
	if kind == FG {
		return f.prc
	}
	return f.cg
}

func countHealthy(hs []Health) int {
	n := 0
	for _, h := range hs {
		if h == Healthy {
			n++
		}
	}
	return n
}

// AvailablePRC returns the number of healthy PRCs.
func (f *Fabric) AvailablePRC() int { return countHealthy(f.prc) }

// AvailableCG returns the number of healthy CG-EDPEs.
func (f *Fabric) AvailableCG() int { return countHealthy(f.cg) }

// Available returns the number of healthy containers of the kind.
func (f *Fabric) Available(kind FabricKind) int { return countHealthy(f.units(kind)) }

// Lost returns the number of containers of the kind currently not healthy
// (failed or suspect).
func (f *Fabric) Lost(kind FabricKind) int {
	hs := f.units(kind)
	return len(hs) - countHealthy(hs)
}

// Health returns the state of container i of the kind.
func (f *Fabric) Health(kind FabricKind, i int) Health {
	hs := f.units(kind)
	if i < 0 || i >= len(hs) {
		return Failed
	}
	return hs[i]
}

// Fail marks the lowest-indexed healthy container of the kind as Failed
// (permanent) or Suspect (transient). It reports whether a healthy
// container was found; failing an already-dead fabric is a no-op.
func (f *Fabric) Fail(kind FabricKind, permanent bool) bool {
	hs := f.units(kind)
	for i, h := range hs {
		if h != Healthy {
			continue
		}
		if permanent {
			hs[i] = Failed
		} else {
			hs[i] = Suspect
		}
		return true
	}
	return false
}

// Recover returns the lowest-indexed Suspect container of the kind to
// Healthy. It reports whether a suspect container was found; permanent
// failures never recover.
func (f *Fabric) Recover(kind FabricKind) bool {
	hs := f.units(kind)
	for i, h := range hs {
		if h == Suspect {
			hs[i] = Healthy
			return true
		}
	}
	return false
}

// Reset returns every container to Healthy.
func (f *Fabric) Reset() {
	for i := range f.prc {
		f.prc[i] = Healthy
	}
	for i := range f.cg {
		f.cg[i] = Healthy
	}
}
