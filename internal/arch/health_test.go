package arch

import "testing"

func TestFabricAllHealthy(t *testing.T) {
	f := NewFabric(Config{NPRC: 3, NCG: 2})
	if f.AvailablePRC() != 3 || f.AvailableCG() != 2 {
		t.Errorf("fresh fabric available = %d/%d, want 3/2", f.AvailablePRC(), f.AvailableCG())
	}
	if f.Lost(FG) != 0 || f.Lost(CG) != 0 {
		t.Errorf("fresh fabric lost = %d/%d, want 0/0", f.Lost(FG), f.Lost(CG))
	}
}

func TestFabricFailAndRecover(t *testing.T) {
	f := NewFabric(Config{NPRC: 2, NCG: 1})

	if !f.Fail(FG, true) {
		t.Fatal("permanent failure rejected on healthy fabric")
	}
	if f.AvailablePRC() != 1 || f.Lost(FG) != 1 {
		t.Errorf("after one failure: available=%d lost=%d", f.AvailablePRC(), f.Lost(FG))
	}
	// Permanent failures never recover.
	if f.Recover(FG) {
		t.Error("Recover resurrected a permanently failed PRC")
	}

	if !f.Fail(CG, false) {
		t.Fatal("transient failure rejected")
	}
	if f.AvailableCG() != 0 {
		t.Errorf("suspect container still available")
	}
	if !f.Recover(CG) {
		t.Fatal("suspect container did not recover")
	}
	if f.AvailableCG() != 1 {
		t.Errorf("recovered container not available")
	}

	// Exhaust the PRCs, then further failures report false.
	if !f.Fail(FG, true) {
		t.Fatal("second PRC failure rejected")
	}
	if f.Fail(FG, true) {
		t.Error("failure accepted on an exhausted fabric")
	}

	f.Reset()
	if f.AvailablePRC() != 2 || f.AvailableCG() != 1 {
		t.Errorf("Reset did not restore health: %d/%d", f.AvailablePRC(), f.AvailableCG())
	}
}

func TestFabricHealthStates(t *testing.T) {
	f := NewFabric(Config{NPRC: 2})
	f.Fail(FG, true)  // unit 0 -> Failed
	f.Fail(FG, false) // unit 1 -> Suspect
	if got := f.Health(FG, 0); got != Failed {
		t.Errorf("unit 0 health = %v, want %v", got, Failed)
	}
	if got := f.Health(FG, 1); got != Suspect {
		t.Errorf("unit 1 health = %v, want %v", got, Suspect)
	}
	if f.Available(FG) != 0 {
		t.Errorf("Available = %d, want 0", f.Available(FG))
	}
	// Recover targets the suspect unit, not the failed one.
	if !f.Recover(FG) {
		t.Fatal("recover failed")
	}
	if got := f.Health(FG, 1); got != Healthy {
		t.Errorf("unit 1 health after recover = %v, want %v", got, Healthy)
	}
	if got := f.Health(FG, 0); got != Failed {
		t.Errorf("unit 0 health after recover = %v, want %v", got, Failed)
	}
}

func TestHealthString(t *testing.T) {
	for h, want := range map[Health]string{Healthy: "healthy", Suspect: "suspect", Failed: "failed"} {
		if h.String() != want {
			t.Errorf("%d.String() = %q, want %q", h, h.String(), want)
		}
	}
}
