package arch

import "testing"

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{}, true},
		{Config{NPRC: 4, NCG: 3}, true},
		{Config{NPRC: -1}, false},
		{Config{NCG: -2}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.cfg, err, c.ok)
		}
	}
}

func TestConfigString(t *testing.T) {
	if got := (Config{NPRC: 2, NCG: 1}).String(); got != "2/1" {
		t.Errorf("String() = %q, want 2/1", got)
	}
}

func TestConfigClass(t *testing.T) {
	cases := []struct {
		cfg  Config
		want Grain
	}{
		{Config{}, GrainNone},
		{Config{NPRC: 1}, GrainFG},
		{Config{NCG: 2}, GrainCG},
		{Config{NPRC: 1, NCG: 1}, GrainMG},
	}
	for _, c := range cases {
		if got := c.cfg.Class(); got != c.want {
			t.Errorf("Class(%+v) = %v, want %v", c.cfg, got, c.want)
		}
	}
}

func TestConfigIsRISCOnly(t *testing.T) {
	if !(Config{}).IsRISCOnly() {
		t.Error("empty config should be RISC-only")
	}
	if (Config{NPRC: 1}).IsRISCOnly() {
		t.Error("1 PRC is not RISC-only")
	}
}

func TestFabricKindReconfigCycles(t *testing.T) {
	if FG.ReconfigCycles() != FGReconfigCycles {
		t.Errorf("FG reconfig = %d, want %d", FG.ReconfigCycles(), FGReconfigCycles)
	}
	if CG.ReconfigCycles() != CGReconfigCycles {
		t.Errorf("CG reconfig = %d, want %d", CG.ReconfigCycles(), CGReconfigCycles)
	}
	if FG.ReconfigCycles() <= CG.ReconfigCycles() {
		t.Error("FG reconfiguration must be orders of magnitude slower than CG")
	}
}

func TestFabricKindString(t *testing.T) {
	if FG.String() != "FG" || CG.String() != "CG" {
		t.Errorf("FabricKind strings wrong: %s %s", FG, CG)
	}
	if FabricKind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestGrainString(t *testing.T) {
	for g, want := range map[Grain]string{
		GrainNone: "none", GrainFG: "FG", GrainCG: "CG", GrainMG: "MG",
	} {
		if g.String() != want {
			t.Errorf("Grain(%d).String() = %q, want %q", g, g.String(), want)
		}
	}
}

func TestCyclesConversions(t *testing.T) {
	// 1.2 ms at the 100 MHz core clock.
	if got := FGReconfigCycles.Millis(); got < 1.19 || got > 1.21 {
		t.Errorf("FG reconfiguration = %.3f ms, want ~1.2 ms", got)
	}
	// 0.15 us for the CG fabric.
	if got := CGReconfigCycles.Micros(); got < 0.14 || got > 0.16 {
		t.Errorf("CG reconfiguration = %.3f us, want ~0.15 us", got)
	}
	if got := Cycles(2_500_000).MCycles(); got != 2.5 {
		t.Errorf("MCycles = %v, want 2.5", got)
	}
}

func TestPaperTimingRatio(t *testing.T) {
	// The paper's footnote 2: FG reconfiguration is ~4 orders of
	// magnitude slower than CG reconfiguration.
	ratio := float64(FGReconfigCycles) / float64(CGReconfigCycles)
	if ratio < 1000 || ratio > 100000 {
		t.Errorf("FG/CG reconfiguration ratio = %.0f, want around 8000", ratio)
	}
}
