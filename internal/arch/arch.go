// Package arch models the multi-grained reconfigurable processor of the
// mRTS paper (DATE 2011): a core RISC processor tightly coupled with a
// fine-grained (FG) fabric — an embedded FPGA partitioned into Partially
// Reconfigurable Containers (PRCs) — and a coarse-grained (CG) fabric — an
// array of CG-EDPEs with context memories.
//
// All times in this module (and everywhere else in the repository) are
// expressed in core clock cycles. The LEON (SPARC V8) core and the FG
// fabric (a Virtex-4 class FPGA) run at 100 MHz; the CG fabric runs at
// 400 MHz (paper Section 5.1), i.e. four CG-fabric cycles per core cycle.
package arch

import "fmt"

// Cycles counts core clock cycles at 100 MHz (10 ns per cycle).
type Cycles int64

// Timing constants of the modelled processor, taken from the paper
// (Sections 2 and 5.1).
const (
	// CoreClockHz is the clock of the core processor and the FG fabric.
	CoreClockHz = 100_000_000
	// CGClockHz is the clock of the CG fabric (CG-EDPE array).
	CGClockHz = 400_000_000
	// CGCyclesPerCycle converts CG-fabric cycles to core cycles.
	CGCyclesPerCycle = CGClockHz / CoreClockHz

	// FGReconfigCycles is the time to reconfigure a single data path in
	// the FG fabric: ~1.2 ms (paper footnote 2) at the 100 MHz core clock.
	FGReconfigCycles Cycles = 120_000
	// CGReconfigCycles is the time to reconfigure the same data path on
	// the CG fabric: ~0.15 us (paper footnote 2), rounded up to 15 core
	// cycles.
	CGReconfigCycles Cycles = 15

	// CGContextSwitchCycles is the cost of switching between contexts
	// already stored in a CG-EDPE's context memory.
	CGContextSwitchCycles Cycles = 2
	// CGContextInstructions is the capacity of a CG-EDPE context memory.
	CGContextInstructions = 32
	// CGInstructionBits is the instruction word width of the CG fabric.
	CGInstructionBits = 80

	// CGCommCycles is the latency of the point-to-point connection
	// between two CG-EDPEs.
	CGCommCycles Cycles = 2
	// FGCommCycles is the latency of communication between two PRCs.
	FGCommCycles Cycles = 1

	// FGReconfigBandwidthKBps is the configuration-port bandwidth of the
	// FG fabric (paper Section 5.1). It is exposed for documentation and
	// for deriving per-data-path bitstream sizes; the per-data-path
	// reconfiguration latency above is what the simulator consumes.
	FGReconfigBandwidthKBps = 67_584
)

// Millis converts cycles to milliseconds at the core clock.
func (c Cycles) Millis() float64 { return float64(c) * 1e3 / CoreClockHz }

// Micros converts cycles to microseconds at the core clock.
func (c Cycles) Micros() float64 { return float64(c) * 1e6 / CoreClockHz }

// MCycles converts cycles to millions of cycles.
func (c Cycles) MCycles() float64 { return float64(c) / 1e6 }

// FabricKind distinguishes the two reconfigurable fabrics of the processor.
type FabricKind int

const (
	// FG is the fine-grained fabric (embedded FPGA, PRC-partitioned).
	FG FabricKind = iota
	// CG is the coarse-grained fabric (CG-EDPE array).
	CG
)

func (k FabricKind) String() string {
	switch k {
	case FG:
		return "FG"
	case CG:
		return "CG"
	default:
		return fmt.Sprintf("FabricKind(%d)", int(k))
	}
}

// ReconfigCycles returns the per-data-path reconfiguration latency of the
// fabric kind.
func (k FabricKind) ReconfigCycles() Cycles {
	if k == FG {
		return FGReconfigCycles
	}
	return CGReconfigCycles
}

// Grain classifies an ISE by the fabrics its data paths occupy.
type Grain int

const (
	// GrainNone marks an ISE with no data paths (RISC-mode placeholder).
	GrainNone Grain = iota
	// GrainFG marks a pure fine-grained ISE.
	GrainFG
	// GrainCG marks a pure coarse-grained ISE.
	GrainCG
	// GrainMG marks a multi-grained ISE (both fabrics).
	GrainMG
)

func (g Grain) String() string {
	switch g {
	case GrainNone:
		return "none"
	case GrainFG:
		return "FG"
	case GrainCG:
		return "CG"
	case GrainMG:
		return "MG"
	default:
		return fmt.Sprintf("Grain(%d)", int(g))
	}
}

// Config fixes the reconfigurable-fabric budget of one processor instance.
// The amount of fabric is fixed and known at compile time (paper Section 4);
// run-time sharing with other tasks is modelled by shrinking the budget via
// Reserve on the fabric State.
type Config struct {
	// NPRC is the total number of Partially Reconfigurable Containers
	// across all FG fabrics.
	NPRC int
	// NCG is the number of CG-EDPEs.
	NCG int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.NPRC < 0 {
		return fmt.Errorf("arch: negative PRC count %d", c.NPRC)
	}
	if c.NCG < 0 {
		return fmt.Errorf("arch: negative CG-EDPE count %d", c.NCG)
	}
	return nil
}

// String renders the combination the way the paper's figures label them,
// e.g. "2/1" for 2 PRCs and 1 CG-EDPE.
func (c Config) String() string { return fmt.Sprintf("%d/%d", c.NPRC, c.NCG) }

// IsRISCOnly reports whether no reconfigurable fabric is present, i.e. the
// whole application executes in RISC mode.
func (c Config) IsRISCOnly() bool { return c.NPRC == 0 && c.NCG == 0 }

// Class groups a configuration the way Fig. 10 groups the x-axis.
func (c Config) Class() Grain {
	switch {
	case c.NPRC == 0 && c.NCG == 0:
		return GrainNone
	case c.NCG == 0:
		return GrainFG
	case c.NPRC == 0:
		return GrainCG
	default:
		return GrainMG
	}
}
