package mpu

import (
	"testing"

	"mrts/internal/ise"
)

func TestParseKind(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
		ok   bool
	}{
		{"", KindBackProp, true},
		{"backprop", KindBackProp, true},
		{"BackProp", KindBackProp, true},
		{"phase", KindPhase, true},
		{"decay", KindDecay, true},
		{"oracle", "", false},
	}
	for _, c := range cases {
		got, err := ParseKind(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseKind(%q) accepted", c.in)
		}
	}
	if len(Kinds()) != 3 {
		t.Errorf("Kinds() = %v, want 3 entries", Kinds())
	}
}

// driveIterations replays a sequence of per-iteration observed counts
// through the full trigger/observe/block-end protocol and returns the
// predictor's accumulated error accounting.
func driveIterations(p *Predictor, prof ise.Trigger, counts []int64) ErrorReport {
	for _, e := range counts {
		p.ForecastAll("blk", []ise.Trigger{prof})
		p.Observe("blk", prof, Observation{Kernel: prof.Kernel, E: e, TF: prof.TF, TB: prof.TB})
		p.BlockEnd("blk")
	}
	return p.Errors()
}

// phasePattern alternates two execution regimes in runs, the workload
// shape back-propagation keeps re-converging on and a phase table recalls.
func phasePattern(runs, runLen int, a, b int64) []int64 {
	var out []int64
	for r := 0; r < runs; r++ {
		v := a
		if r%2 == 1 {
			v = b
		}
		for i := 0; i < runLen; i++ {
			out = append(out, v)
		}
	}
	return out
}

func TestPhasePredictorBeatsBackPropOnRecurringRegimes(t *testing.T) {
	prof := ise.Trigger{Kernel: "k", E: 500, TF: 100, TB: 10}
	counts := phasePattern(12, 4, 1000, 100)

	bp := driveIterations(New(), prof, counts)
	ph := driveIterations(New(WithPredictor(KindPhase)), prof, counts)

	if bp.Total.Samples != int64(len(counts)) || ph.Total.Samples != bp.Total.Samples {
		t.Fatalf("samples: backprop %d, phase %d, want %d", bp.Total.Samples, ph.Total.Samples, len(counts))
	}
	if ph.Total.AbsErrE >= bp.Total.AbsErrE {
		t.Errorf("phase tables no better than back-propagation on recurring regimes: phase %d >= backprop %d",
			ph.Total.AbsErrE, bp.Total.AbsErrE)
	}
}

func TestDecayBlendBeatsBackPropOnLevelShifts(t *testing.T) {
	prof := ise.Trigger{Kernel: "k", E: 500, TF: 100, TB: 10}
	// Long level shifts: the fast average locks on within an iteration or
	// two while alpha=0.25 back-propagation crawls over the gap.
	counts := phasePattern(6, 8, 2000, 200)

	bp := driveIterations(New(), prof, counts)
	dc := driveIterations(New(WithPredictor(KindDecay)), prof, counts)

	if dc.Total.AbsErrE >= bp.Total.AbsErrE {
		t.Errorf("decay blending no better than back-propagation on level shifts: decay %d >= backprop %d",
			dc.Total.AbsErrE, bp.Total.AbsErrE)
	}
}

func TestPredictorKindsDeterministic(t *testing.T) {
	prof := ise.Trigger{Kernel: "k", E: 500, TF: 100, TB: 10}
	counts := phasePattern(8, 3, 900, 150)
	for _, k := range []Kind{KindBackProp, KindPhase, KindDecay} {
		a := driveIterations(New(WithPredictor(k)), prof, counts)
		b := driveIterations(New(WithPredictor(k)), prof, counts)
		if a.Total != b.Total {
			t.Errorf("%s: repeat run diverged: %+v vs %+v", k, a.Total, b.Total)
		}
		if a.Predictor != string(k) {
			t.Errorf("ErrorReport.Predictor = %q, want %q", a.Predictor, k)
		}
	}
}

func TestErrorAccounting(t *testing.T) {
	p := New(WithAlpha(0.5))
	prof := ise.Trigger{Kernel: "k", E: 100, TF: 500, TB: 40}

	// First iteration: the issued forecast is the profile value (100),
	// the observation is 140 -> error 40.
	p.ForecastAll("blk", []ise.Trigger{prof})
	absErr, scored := p.Observe("blk", prof, Observation{Kernel: "k", E: 140})
	if !scored || absErr != 40 {
		t.Fatalf("first observation: absErr=%d scored=%v, want 40 true", absErr, scored)
	}
	p.BlockEnd("blk")

	// Second iteration: the corrected forecast is 100+0.5*40 = 120, the
	// observation 140 again -> error 20.
	p.ForecastAll("blk", []ise.Trigger{prof})
	absErr, scored = p.Observe("blk", prof, Observation{Kernel: "k", E: 140})
	if !scored || absErr != 20 {
		t.Fatalf("second observation: absErr=%d scored=%v, want 20 true", absErr, scored)
	}
	p.BlockEnd("blk")

	rep := p.Errors()
	want := ErrorStats{Samples: 2, AbsErrE: 60, ObsE: 280}
	if rep.Total != want {
		t.Errorf("total error stats = %+v, want %+v", rep.Total, want)
	}
	if got := rep.Keys["blk"]; got != want {
		t.Errorf("per-key error stats = %+v, want %+v", got, want)
	}
	if m := rep.Total.MeanAbsE(); m != 30 {
		t.Errorf("MeanAbsE = %v, want 30", m)
	}
	if rep.IsZero() {
		t.Error("scored report claims IsZero")
	}

	p.Reset()
	if got := p.Errors(); !got.IsZero() || got.Keys != nil {
		t.Errorf("error accounting survived Reset: %+v", got)
	}
}

func TestErrorAccountingSkipsDisruptedAndDisabled(t *testing.T) {
	p := New()
	prof := ise.Trigger{Kernel: "k", E: 100, TF: 500, TB: 40}
	p.ForecastAll("blk", []ise.Trigger{prof})
	p.NoteDisruption("blk")
	if _, scored := p.Observe("blk", prof, Observation{Kernel: "k", E: 9999}); scored {
		t.Error("disrupted observation was scored")
	}
	p.BlockEnd("blk")
	if got := p.Errors(); !got.IsZero() {
		t.Errorf("disrupted observation entered the accounting: %+v", got)
	}

	d := New(Disabled())
	d.ForecastAll("blk", []ise.Trigger{prof})
	if _, scored := d.Observe("blk", prof, Observation{Kernel: "k", E: 120}); scored {
		t.Error("disabled predictor scored an observation")
	}
	if got := d.Errors(); !got.IsZero() {
		t.Errorf("disabled predictor accumulated errors: %+v", got)
	}
}

// An observation with no issued forecast (the driver never pulled
// ForecastAll for the key) folds into the state but is not scored: there
// was no forecast to be wrong.
func TestObservationWithoutIssuedForecastUnscored(t *testing.T) {
	p := New()
	prof := ise.Trigger{Kernel: "k", E: 100, TF: 500, TB: 40}
	if _, scored := p.Observe("blk", prof, Observation{Kernel: "k", E: 200}); scored {
		t.Error("observation scored without an issued forecast")
	}
	if got := p.Forecast("blk", prof); got.E == prof.E {
		t.Error("unscored observation was not folded into the state")
	}
}

func TestPhaseRegimeTableBounded(t *testing.T) {
	p := New(WithPredictor(KindPhase))
	prof := ise.Trigger{Kernel: "k", E: 100, TF: 1, TB: 1}
	// Far more distinct regimes than the table holds; each iteration's
	// count is far outside matchThreshold of every other.
	for i := 0; i < 4*maxRegimes; i++ {
		e := int64(100) << uint(i%16)
		p.ForecastAll("blk", []ise.Trigger{prof})
		p.Observe("blk", prof, Observation{Kernel: "k", E: e})
		p.BlockEnd("blk")
	}
	if n := len(p.phases["blk"].regimes); n > maxRegimes {
		t.Errorf("regime table grew to %d entries, bound is %d", n, maxRegimes)
	}
}

func TestKindAccessor(t *testing.T) {
	if k := New().Kind(); k != KindBackProp {
		t.Errorf("default kind = %v", k)
	}
	if k := New(WithPredictor(KindDecay)).Kind(); k != KindDecay {
		t.Errorf("kind = %v, want decay", k)
	}
	if k := New(WithPredictor("")).Kind(); k != KindBackProp {
		t.Errorf("empty WithPredictor changed the kind to %q", k)
	}
}
