package mpu

import (
	"math"
	"testing"
	"testing/quick"

	"mrts/internal/arch"
	"mrts/internal/ise"
)

func profileTrigger() ise.Trigger {
	return ise.Trigger{Kernel: "k", E: 100, TF: 500, TB: 40}
}

func TestForecastPassthroughFirstTime(t *testing.T) {
	p := New()
	got := p.Forecast("blk", profileTrigger())
	if got != profileTrigger() {
		t.Errorf("first forecast = %+v, want profile values", got)
	}
}

func TestObserveCorrectsForecast(t *testing.T) {
	p := New(WithTimingTracking(), WithAlpha(0.5))
	prof := profileTrigger()
	p.Observe("blk", prof, Observation{Kernel: "k", E: 200, TF: 600, TB: 60})
	got := p.Forecast("blk", prof)
	// pred = profile + 0.5*(obs - profile).
	if got.E != 150 {
		t.Errorf("E forecast = %d, want 150", got.E)
	}
	if got.TF != 550 {
		t.Errorf("TF forecast = %d, want 550", got.TF)
	}
	if got.TB != 50 {
		t.Errorf("TB forecast = %d, want 50", got.TB)
	}
}

func TestForecastConverges(t *testing.T) {
	p := New(WithAlpha(0.5), WithTimingTracking())
	prof := profileTrigger()
	for i := 0; i < 20; i++ {
		p.Observe("blk", prof, Observation{Kernel: "k", E: 1000, TF: 90, TB: 7})
	}
	got := p.Forecast("blk", prof)
	if got.E != 1000 || got.TF != 90 || got.TB != 7 {
		t.Errorf("forecast did not converge: %+v", got)
	}
}

func TestConvergenceProperty(t *testing.T) {
	// Under a constant observation stream, the forecast converges to the
	// observation for any alpha in (0, 1].
	f := func(alphaRaw uint8, target uint16) bool {
		alpha := 0.1 + 0.9*float64(alphaRaw)/255
		p := New(WithAlpha(alpha))
		prof := profileTrigger()
		obs := Observation{Kernel: "k", E: int64(target), TF: 10, TB: 10}
		for i := 0; i < 200; i++ {
			p.Observe("blk", prof, obs)
		}
		got := p.Forecast("blk", prof)
		return math.Abs(float64(got.E)-float64(target)) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDefaultTracksCountsOnly(t *testing.T) {
	p := New(WithAlpha(0.5))
	prof := profileTrigger()
	p.Observe("blk", prof, Observation{Kernel: "k", E: 200, TF: 9999, TB: 9999})
	got := p.Forecast("blk", prof)
	if got.E != 150 {
		t.Errorf("E forecast = %d, want 150", got.E)
	}
	if got.TF != prof.TF || got.TB != prof.TB {
		t.Errorf("timing corrected by default: %+v", got)
	}
}

func TestBlocksIndependent(t *testing.T) {
	p := New()
	prof := profileTrigger()
	p.Observe("b1", prof, Observation{Kernel: "k", E: 999, TF: 1, TB: 1})
	if got := p.Forecast("b2", prof); got != prof {
		t.Errorf("observation leaked across blocks: %+v", got)
	}
}

func TestDisabled(t *testing.T) {
	p := New(Disabled())
	prof := profileTrigger()
	p.Observe("blk", prof, Observation{Kernel: "k", E: 999, TF: 1, TB: 1})
	if got := p.Forecast("blk", prof); got != prof {
		t.Errorf("disabled predictor corrected the forecast: %+v", got)
	}
	if p.Enabled() {
		t.Error("Enabled() should be false")
	}
	if p.Len() != 0 {
		t.Error("disabled predictor stored state")
	}
}

func TestAlphaClamped(t *testing.T) {
	p := New(WithAlpha(5)) // clamped to 1
	prof := profileTrigger()
	p.Observe("blk", prof, Observation{Kernel: "k", E: 300, TF: 500, TB: 40})
	if got := p.Forecast("blk", prof); got.E != 300 {
		t.Errorf("alpha=1: forecast = %d, want 300", got.E)
	}
	p2 := New(WithAlpha(-2)) // clamped to 0
	p2.Observe("blk", prof, Observation{Kernel: "k", E: 300, TF: 500, TB: 40})
	if got := p2.Forecast("blk", prof); got.E != prof.E {
		t.Errorf("alpha=0: forecast = %d, want profile %d", got.E, prof.E)
	}
}

func TestForecastAll(t *testing.T) {
	p := New()
	prof := []ise.Trigger{
		{Kernel: "a", E: 10, TF: 1, TB: 1},
		{Kernel: "b", E: 20, TF: 2, TB: 2},
	}
	p.Observe("blk", prof[0], Observation{Kernel: "a", E: 30, TF: 1, TB: 1})
	out := p.ForecastAll("blk", prof)
	if len(out) != 2 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0].E != 15 { // 10 + 0.25*(30-10), default damped alpha
		t.Errorf("corrected E = %d, want 15", out[0].E)
	}
	if out[1] != prof[1] {
		t.Errorf("untouched trigger changed: %+v", out[1])
	}
}

func TestReset(t *testing.T) {
	p := New()
	prof := profileTrigger()
	p.Observe("blk", prof, Observation{Kernel: "k", E: 999, TF: 1, TB: 1})
	p.Reset()
	if p.Len() != 0 {
		t.Error("state survived Reset")
	}
	if got := p.Forecast("blk", prof); got != prof {
		t.Errorf("forecast after Reset = %+v, want profile", got)
	}
}

func TestObservationTypes(t *testing.T) {
	o := Observation{Kernel: "k", E: 1, TF: arch.Cycles(2), TB: arch.Cycles(3)}
	if o.Kernel != "k" || o.E != 1 || o.TF != 2 || o.TB != 3 {
		t.Error("observation fields wrong")
	}
}

func TestNoteDisruptionSkipsObservations(t *testing.T) {
	p := New(WithAlpha(0.5))
	prof := profileTrigger()
	p.NoteDisruption("blk")
	// The disrupted iteration's observation is discarded: the forecast
	// stays at the profile values.
	p.Observe("blk", prof, Observation{Kernel: "k", E: 200})
	if got := p.Forecast("blk", prof); got.E != prof.E {
		t.Errorf("disrupted observation leaked into the forecast: E = %d", got.E)
	}
	// Other keys are unaffected.
	p.Observe("other", prof, Observation{Kernel: "k", E: 200})
	if got := p.Forecast("other", prof); got.E == prof.E {
		t.Error("undisrupted key skipped its observation")
	}
	// Pulling the next iteration's forecasts does NOT clear the mark — a
	// pipelined driver may fetch them before the tainted observations
	// arrive, and those must still be discarded.
	p.ForecastAll("blk", []ise.Trigger{prof})
	if !p.Disrupted("blk") {
		t.Error("ForecastAll cleared the disruption mark (pipelined-driver bug)")
	}
	p.Observe("blk", prof, Observation{Kernel: "k", E: 200})
	if got := p.Forecast("blk", prof); got.E != prof.E {
		t.Errorf("tainted observation after a pipelined forecast pull leaked in: E = %d", got.E)
	}
	// BlockEnd — the end of the iteration the fault perturbed — consumes
	// the mark, so the following iteration's observation counts again.
	p.BlockEnd("blk")
	if p.Disrupted("blk") {
		t.Error("BlockEnd did not consume the disruption mark")
	}
	p.Observe("blk", prof, Observation{Kernel: "k", E: 200})
	if got := p.Forecast("blk", prof); got.E == prof.E {
		t.Error("observation after the consuming block end still skipped")
	}
}

func TestNoteDisruptionResetAndDisabled(t *testing.T) {
	p := New(WithAlpha(0.5))
	p.NoteDisruption("blk")
	p.Reset()
	prof := profileTrigger()
	p.Observe("blk", prof, Observation{Kernel: "k", E: 200})
	if got := p.Forecast("blk", prof); got.E == prof.E {
		t.Error("disruption mark survived Reset")
	}
	d := New(Disabled())
	d.NoteDisruption("blk") // must not panic or allocate state
	if got := d.Forecast("blk", prof); got != prof {
		t.Error("disabled predictor changed the forecast")
	}
}
