// Package mpu implements the Monitoring & Prediction Unit of mRTS
// (paper Section 4): it keeps track of the observed kernel execution
// behaviour per functional block and corrects the forecasts embedded in the
// trigger instructions with a lightweight error back-propagation update
// (paper reference [12]), so the ISE selector works with run-time accurate
// execution counts even when the input data changes.
package mpu

import (
	"mrts/internal/arch"
	"mrts/internal/ise"
)

// Observation is the monitored ground truth of one kernel in one completed
// functional-block iteration: how often it actually executed, the wall-clock
// time from block start to its first execution, and the average wall-clock
// time between consecutive executions.
type Observation struct {
	Kernel ise.KernelID
	E      int64
	TF     arch.Cycles
	TB     arch.Cycles
}

// Predictor is the MPU forecast store. The zero value is not usable; use New.
type Predictor struct {
	// alpha is the error back-propagation learning rate: the fraction of
	// the forecast error folded back into the prediction after each
	// functional-block iteration.
	alpha float64
	// enabled gates the correction (ablation switch); when disabled the
	// Predictor passes the static profile forecasts through unchanged.
	enabled bool
	// timing gates the TF/TB correction. Execution counts are always
	// corrected when enabled; the inter-execution timing observed under
	// accelerated execution differs wildly from the profile values, and
	// folding it back can destabilise selection.
	timing bool

	state map[key]*entry
	// disrupted marks trigger-instruction keys whose next observations
	// must be discarded: a fabric fault mid-iteration perturbs the
	// monitored timings in a way that says nothing about the workload.
	disrupted map[string]bool
}

type key struct {
	block  string
	kernel ise.KernelID
}

type entry struct {
	e  float64
	tf float64
	tb float64
}

// Option configures a Predictor.
type Option func(*Predictor)

// WithAlpha sets the error back-propagation rate (default 0.25 — a damped
// correction: forecast noise otherwise oscillates the ISE selection, and
// the reconfiguration churn costs more than the accuracy gains). Values are
// clamped to [0, 1].
func WithAlpha(a float64) Option {
	return func(p *Predictor) {
		if a < 0 {
			a = 0
		}
		if a > 1 {
			a = 1
		}
		p.alpha = a
	}
}

// Disabled turns the run-time correction off; forecasts stay at their
// profile values. Used by the ablation benchmarks.
func Disabled() Option {
	return func(p *Predictor) { p.enabled = false }
}

// WithTimingTracking also folds the observed wall-clock TF/TB values into
// the forecasts (off by default: only execution counts are corrected).
func WithTimingTracking() Option {
	return func(p *Predictor) { p.timing = true }
}

// New creates a Predictor.
func New(opts ...Option) *Predictor {
	p := &Predictor{alpha: 0.25, enabled: true, state: make(map[key]*entry), disrupted: make(map[string]bool)}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Enabled reports whether run-time correction is active.
func (p *Predictor) Enabled() bool { return p.enabled }

// Forecast corrects the profile trigger of a kernel in a block with the
// MPU's learned state. On first sight (or when disabled) the profile values
// pass through unchanged.
func (p *Predictor) Forecast(block string, t ise.Trigger) ise.Trigger {
	if !p.enabled {
		return t
	}
	en, ok := p.state[key{block, t.Kernel}]
	if !ok {
		return t
	}
	t.E = int64(en.e + 0.5)
	if p.timing {
		t.TF = arch.Cycles(en.tf + 0.5)
		t.TB = arch.Cycles(en.tb + 0.5)
	}
	return t
}

// ForecastAll corrects a whole trigger instruction. Reaching the next
// trigger instruction also clears a pending disruption mark for the key:
// the iteration the fault perturbed is over.
func (p *Predictor) ForecastAll(block string, ts []ise.Trigger) []ise.Trigger {
	delete(p.disrupted, block)
	out := make([]ise.Trigger, len(ts))
	for i, t := range ts {
		out[i] = p.Forecast(block, t)
	}
	return out
}

// NoteDisruption tells the MPU that a fabric fault disturbed the current
// iteration of the trigger instruction: the observations delivered at its
// block end reflect executions stalled by dying containers, not workload
// behaviour, and folding them back would poison the learned forecasts.
func (p *Predictor) NoteDisruption(block string) {
	if p.enabled {
		p.disrupted[block] = true
	}
}

// Observe folds the monitored values of a completed block iteration back
// into the forecasts: pred += alpha * (observed - pred). The first
// observation seeds the state from the profile trigger that was used.
func (p *Predictor) Observe(block string, profile ise.Trigger, obs Observation) {
	if !p.enabled || p.disrupted[block] {
		return
	}
	k := key{block, obs.Kernel}
	en, ok := p.state[k]
	if !ok {
		en = &entry{e: float64(profile.E), tf: float64(profile.TF), tb: float64(profile.TB)}
		p.state[k] = en
	}
	en.e += p.alpha * (float64(obs.E) - en.e)
	en.tf += p.alpha * (float64(obs.TF) - en.tf)
	en.tb += p.alpha * (float64(obs.TB) - en.tb)
}

// Reset clears all learned state.
func (p *Predictor) Reset() {
	p.state = make(map[key]*entry)
	p.disrupted = make(map[string]bool)
}

// Len returns the number of (block, kernel) forecasts currently tracked.
func (p *Predictor) Len() int { return len(p.state) }
