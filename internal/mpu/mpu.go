// Package mpu implements the Monitoring & Prediction Unit of mRTS
// (paper Section 4): it keeps track of the observed kernel execution
// behaviour per functional block and corrects the forecasts embedded in the
// trigger instructions, so the ISE selector works with run-time accurate
// execution counts even when the input data changes.
//
// Three predictors are selectable via WithPredictor:
//
//   - KindBackProp (default): the paper's lightweight error
//     back-propagation update, pred += alpha * (observed - pred). Ideal for
//     content-driven but regular workloads like the H.264 traces.
//   - KindPhase: per-phase history tables. Completed iterations are matched
//     against a bounded set of learned execution regimes; a recurring phase
//     is recalled instantly instead of re-converged to, which wins on
//     abruptly phase-changing control flow (see internal/workload's Phased
//     generator).
//   - KindDecay: exponential-decay blending. A fast and a slow EWMA track
//     each kernel; the forecast blends them weighted by their recent error,
//     so the predictor follows shifts quickly without giving up the slow
//     average's stability within a phase.
//
// The Predictor also keeps forecast-error accounting: every issued
// execution-count forecast is scored against the iteration's monitored
// ground truth, and Errors() reports the absolute-error totals per trigger
// instruction — the surface sim.Report and the decision trace expose so
// mrts-timeline can show where prediction wins or loses.
package mpu

import (
	"fmt"
	"strings"

	"mrts/internal/arch"
	"mrts/internal/ise"
)

// Observation is the monitored ground truth of one kernel in one completed
// functional-block iteration: how often it actually executed, the wall-clock
// time from block start to its first execution, and the average wall-clock
// time between consecutive executions.
type Observation struct {
	Kernel ise.KernelID
	E      int64
	TF     arch.Cycles
	TB     arch.Cycles
}

// Kind selects the forecast-correction algorithm of a Predictor.
type Kind string

// Predictor kinds, in presentation order.
const (
	// KindBackProp is the paper's error back-propagation update (default).
	KindBackProp Kind = "backprop"
	// KindPhase keeps per-phase history tables and recalls recurring
	// execution regimes.
	KindPhase Kind = "phase"
	// KindDecay blends a fast and a slow exponentially decaying average by
	// their recent error.
	KindDecay Kind = "decay"
)

// Kinds returns the valid predictor names, in presentation order. It is
// the single predictor-name table shared by the CLIs and the service API.
func Kinds() []string {
	return []string{string(KindBackProp), string(KindPhase), string(KindDecay)}
}

// ParseKind resolves a predictor name; the empty string is the default
// back-propagation predictor. The error lists the valid names.
func ParseKind(name string) (Kind, error) {
	switch Kind(strings.ToLower(name)) {
	case "", KindBackProp:
		return KindBackProp, nil
	case KindPhase:
		return KindPhase, nil
	case KindDecay:
		return KindDecay, nil
	}
	return "", fmt.Errorf("mpu: unknown predictor %q (valid: %s)", name, strings.Join(Kinds(), ", "))
}

// ErrorStats accumulate forecast-error accounting: for every scored
// observation, the absolute difference between the issued execution-count
// forecast and the monitored count.
type ErrorStats struct {
	// Samples counts scored observations (one per kernel per completed,
	// undisrupted iteration).
	Samples int64
	// AbsErrE is the summed absolute execution-count forecast error.
	AbsErrE int64
	// ObsE is the summed observed execution count (the error's scale).
	ObsE int64
}

// MeanAbsE is the mean absolute execution-count error per scored
// observation (0 with no samples).
func (s ErrorStats) MeanAbsE() float64 {
	if s.Samples == 0 {
		return 0
	}
	return float64(s.AbsErrE) / float64(s.Samples)
}

// IsZero reports whether no observation was scored.
func (s ErrorStats) IsZero() bool { return s == ErrorStats{} }

func (s *ErrorStats) add(absErr, obsE int64) {
	s.Samples++
	s.AbsErrE += absErr
	s.ObsE += obsE
}

// ErrorReport is the Predictor's forecast-accuracy summary: totals plus a
// per-trigger-instruction breakdown (keys are the block IDs core hands
// ForecastAll, i.e. "block" or "block#phase").
type ErrorReport struct {
	// Predictor is the kind that produced the forecasts.
	Predictor string
	Total     ErrorStats
	// Keys breaks the totals down per trigger-instruction key; nil when
	// nothing was scored.
	Keys map[string]ErrorStats
}

// IsZero reports whether no observation was scored.
func (r ErrorReport) IsZero() bool { return r.Total.IsZero() }

// Predictor is the MPU forecast store. The zero value is not usable; use New.
type Predictor struct {
	// alpha is the error back-propagation learning rate: the fraction of
	// the forecast error folded back into the prediction after each
	// functional-block iteration. The decay predictor reuses it as its
	// slow-average rate.
	alpha float64
	// enabled gates the correction (ablation switch); when disabled the
	// Predictor passes the static profile forecasts through unchanged.
	enabled bool
	// timing gates the TF/TB correction. Execution counts are always
	// corrected when enabled; the inter-execution timing observed under
	// accelerated execution differs wildly from the profile values, and
	// folding it back can destabilise selection.
	timing bool
	// kind selects the forecast-correction algorithm.
	kind Kind

	state  map[key]*entry       // back-propagation state
	phases map[string]*phaseTbl // per-phase history tables (KindPhase)
	blend  map[key]*blendEntry  // fast/slow EWMA pairs (KindDecay)

	// disrupted marks trigger-instruction keys whose pending observations
	// must be discarded: a fabric fault mid-iteration perturbs the
	// monitored timings in a way that says nothing about the workload. The
	// mark lives until the iteration it taints is over — BlockEnd consumes
	// it at the discard site; pulling the next iteration's forecasts early
	// (a pipelined driver) must not launder the tainted observations in.
	disrupted map[string]bool

	// issued remembers the last execution-count forecast handed out per
	// (key, kernel), so the matching observation can be scored.
	issued  map[key]int64
	errTot  ErrorStats
	errKeys map[string]*ErrorStats
}

type key struct {
	block  string
	kernel ise.KernelID
}

type entry struct {
	e  float64
	tf float64
	tb float64
}

// fold moves the entry toward the observation at rate a.
func (en *entry) fold(a float64, obs Observation) {
	en.e += a * (float64(obs.E) - en.e)
	en.tf += a * (float64(obs.TF) - en.tf)
	en.tb += a * (float64(obs.TB) - en.tb)
}

// apply writes the entry's values into the trigger (counts always, timing
// only when tracked).
func (en *entry) apply(t ise.Trigger, timing bool) ise.Trigger {
	t.E = int64(en.e + 0.5)
	if timing {
		t.TF = arch.Cycles(en.tf + 0.5)
		t.TB = arch.Cycles(en.tb + 0.5)
	}
	return t
}

// Phase-table tuning. A regime is one learned execution phase of a trigger
// instruction; iterations whose counts sit within matchThreshold relative
// distance of a regime's predictions refine that regime, anything farther
// founds a new one (evicting the least recently used beyond maxRegimes).
const (
	maxRegimes     = 6
	matchThreshold = 0.30
	phaseAlpha     = 0.5
)

type phaseTbl struct {
	regimes []*regime
	cur     *regime
	clock   int64
	pending []pendingObs
}

type regime struct {
	vals map[ise.KernelID]*entry
	used int64
}

type pendingObs struct {
	obs  Observation
	prof ise.Trigger
}

// Decay-blend tuning: the fast average follows shifts within a couple of
// iterations, the slow one (rate alpha) smooths within a phase; errDecay
// is the EWMA rate of the per-average error trackers that weight the blend.
const (
	fastAlpha = 0.8
	errDecay  = 0.5
)

type blendEntry struct {
	fast, slow       entry
	errFast, errSlow float64
}

// Option configures a Predictor.
type Option func(*Predictor)

// WithAlpha sets the error back-propagation rate (default 0.25 — a damped
// correction: forecast noise otherwise oscillates the ISE selection, and
// the reconfiguration churn costs more than the accuracy gains). Values are
// clamped to [0, 1]. The decay predictor uses it as its slow-average rate.
func WithAlpha(a float64) Option {
	return func(p *Predictor) {
		if a < 0 {
			a = 0
		}
		if a > 1 {
			a = 1
		}
		p.alpha = a
	}
}

// Disabled turns the run-time correction off; forecasts stay at their
// profile values. Used by the ablation benchmarks.
func Disabled() Option {
	return func(p *Predictor) { p.enabled = false }
}

// WithTimingTracking also folds the observed wall-clock TF/TB values into
// the forecasts (off by default: only execution counts are corrected).
func WithTimingTracking() Option {
	return func(p *Predictor) { p.timing = true }
}

// WithPredictor selects the forecast-correction algorithm (KindBackProp by
// default). An empty kind keeps the default.
func WithPredictor(k Kind) Option {
	return func(p *Predictor) {
		if k != "" {
			p.kind = k
		}
	}
}

// New creates a Predictor.
func New(opts ...Option) *Predictor {
	p := &Predictor{
		alpha:     0.25,
		enabled:   true,
		kind:      KindBackProp,
		state:     make(map[key]*entry),
		disrupted: make(map[string]bool),
		issued:    make(map[key]int64),
	}
	for _, o := range opts {
		o(p)
	}
	switch p.kind {
	case KindPhase:
		p.phases = make(map[string]*phaseTbl)
	case KindDecay:
		p.blend = make(map[key]*blendEntry)
	}
	return p
}

// Enabled reports whether run-time correction is active.
func (p *Predictor) Enabled() bool { return p.enabled }

// Kind returns the active forecast-correction algorithm.
func (p *Predictor) Kind() Kind { return p.kind }

// Forecast corrects the profile trigger of a kernel in a block with the
// MPU's learned state. On first sight (or when disabled) the profile values
// pass through unchanged.
func (p *Predictor) Forecast(block string, t ise.Trigger) ise.Trigger {
	if !p.enabled {
		return t
	}
	switch p.kind {
	case KindPhase:
		pt := p.phases[block]
		if pt == nil || pt.cur == nil {
			return t
		}
		en, ok := pt.cur.vals[t.Kernel]
		if !ok {
			return t
		}
		return en.apply(t, p.timing)
	case KindDecay:
		en, ok := p.blend[key{block, t.Kernel}]
		if !ok {
			return t
		}
		// Weight each average by the other's recent error: the one that
		// has been wrong lately contributes less.
		w := 0.5
		if denom := en.errFast + en.errSlow; denom > 0 {
			w = en.errSlow / denom
		}
		t.E = int64(w*en.fast.e + (1-w)*en.slow.e + 0.5)
		if p.timing {
			t.TF = arch.Cycles(w*en.fast.tf + (1-w)*en.slow.tf + 0.5)
			t.TB = arch.Cycles(w*en.fast.tb + (1-w)*en.slow.tb + 0.5)
		}
		return t
	default:
		en, ok := p.state[key{block, t.Kernel}]
		if !ok {
			return t
		}
		return en.apply(t, p.timing)
	}
}

// ForecastAll corrects a whole trigger instruction and records the issued
// execution-count forecasts for error accounting, so the iteration's
// observations can be scored against what the selector actually saw.
func (p *Predictor) ForecastAll(block string, ts []ise.Trigger) []ise.Trigger {
	out := make([]ise.Trigger, len(ts))
	for i, t := range ts {
		out[i] = p.Forecast(block, t)
		if p.enabled {
			p.issued[key{block, t.Kernel}] = out[i].E
		}
	}
	return out
}

// NoteDisruption tells the MPU that a fabric fault disturbed the current
// iteration of the trigger instruction: the observations delivered at its
// block end reflect executions stalled by dying containers, not workload
// behaviour, and folding them back would poison the learned forecasts. The
// mark is consumed by BlockEnd — the end of the iteration it taints — not
// by the next forecast pull, so a driver that pre-fetches the next
// iteration's forecasts cannot launder the tainted observations in.
func (p *Predictor) NoteDisruption(block string) {
	if p.enabled {
		p.disrupted[block] = true
	}
}

// Disrupted reports whether the key's pending observations are marked for
// discard (tests and diagnostics).
func (p *Predictor) Disrupted(block string) bool { return p.disrupted[block] }

// Observe folds the monitored values of one kernel of a completed block
// iteration back into the forecasts and scores the issued forecast against
// the observation. It returns the absolute execution-count error and
// whether the observation was scored; disrupted or disabled observations
// are discarded unscored. The first observation seeds the state from the
// profile trigger that was used.
//
// The caller signals the end of the iteration with BlockEnd, which consumes
// a pending disruption mark and lets the phase predictor match the
// iteration's observation vector against its regime table.
func (p *Predictor) Observe(block string, profile ise.Trigger, obs Observation) (absErr int64, scored bool) {
	if !p.enabled || p.disrupted[block] {
		return 0, false
	}
	k := key{block, obs.Kernel}
	if iss, ok := p.issued[k]; ok {
		absErr = iss - obs.E
		if absErr < 0 {
			absErr = -absErr
		}
		scored = true
		p.errTot.add(absErr, obs.E)
		if p.errKeys == nil {
			p.errKeys = make(map[string]*ErrorStats)
		}
		ks := p.errKeys[block]
		if ks == nil {
			ks = &ErrorStats{}
			p.errKeys[block] = ks
		}
		ks.add(absErr, obs.E)
	}
	switch p.kind {
	case KindPhase:
		pt := p.phases[block]
		if pt == nil {
			pt = &phaseTbl{}
			p.phases[block] = pt
		}
		pt.pending = append(pt.pending, pendingObs{obs: obs, prof: profile})
	case KindDecay:
		en, ok := p.blend[k]
		if !ok {
			seed := entry{e: float64(profile.E), tf: float64(profile.TF), tb: float64(profile.TB)}
			en = &blendEntry{fast: seed, slow: seed}
			p.blend[k] = en
		}
		ef, es := float64(obs.E)-en.fast.e, float64(obs.E)-en.slow.e
		if ef < 0 {
			ef = -ef
		}
		if es < 0 {
			es = -es
		}
		en.errFast += errDecay * (ef - en.errFast)
		en.errSlow += errDecay * (es - en.errSlow)
		en.fast.fold(fastAlpha, obs)
		en.slow.fold(p.alpha, obs)
	default:
		en, ok := p.state[k]
		if !ok {
			en = &entry{e: float64(profile.E), tf: float64(profile.TF), tb: float64(profile.TB)}
			p.state[k] = en
		}
		en.fold(p.alpha, obs)
	}
	return absErr, scored
}

// BlockEnd marks the end of the trigger instruction's current iteration:
// it consumes a pending disruption mark (every observation of the tainted
// iteration has been delivered and discarded by now) and, for the phase
// predictor, matches the iteration's buffered observation vector against
// the learned regimes. Runtime systems call it once per OnBlockEnd, after
// the iteration's Observes.
func (p *Predictor) BlockEnd(block string) {
	delete(p.disrupted, block)
	if p.kind != KindPhase || !p.enabled {
		return
	}
	pt := p.phases[block]
	if pt == nil || len(pt.pending) == 0 {
		return
	}
	pt.clock++
	best, bestD := (*regime)(nil), matchThreshold
	for _, r := range pt.regimes {
		if d := pt.distance(r); d <= bestD {
			best, bestD = r, d
		}
	}
	if best == nil {
		best = pt.newRegime()
	}
	for _, po := range pt.pending {
		en, ok := best.vals[po.obs.Kernel]
		if !ok {
			en = &entry{e: float64(po.prof.E), tf: float64(po.prof.TF), tb: float64(po.prof.TB)}
			best.vals[po.obs.Kernel] = en
		}
		en.fold(phaseAlpha, po.obs)
	}
	best.used = pt.clock
	pt.cur = best
	pt.pending = pt.pending[:0]
}

// distance is the relative L1 distance between the pending observation
// vector and the regime's predicted execution counts. Kernels the regime
// has not seen yet contribute nothing — a regime is judged on what it
// claims to know.
func (pt *phaseTbl) distance(r *regime) float64 {
	var num, den float64
	seen := false
	for _, po := range pt.pending {
		en, ok := r.vals[po.obs.Kernel]
		if !ok {
			continue
		}
		seen = true
		d := float64(po.obs.E) - en.e
		if d < 0 {
			d = -d
		}
		num += d
		o := float64(po.obs.E)
		if en.e > o {
			o = en.e
		}
		if o < 1 {
			o = 1
		}
		den += o
	}
	if !seen {
		return matchThreshold + 1
	}
	return num / den
}

// newRegime founds a regime for an unseen execution phase, evicting the
// least recently used one beyond the table bound.
func (pt *phaseTbl) newRegime() *regime {
	r := &regime{vals: make(map[ise.KernelID]*entry), used: pt.clock}
	if len(pt.regimes) < maxRegimes {
		pt.regimes = append(pt.regimes, r)
		return r
	}
	lru := 0
	for i, cand := range pt.regimes {
		if cand.used < pt.regimes[lru].used {
			lru = i
		}
	}
	pt.regimes[lru] = r
	return r
}

// Errors returns a snapshot of the forecast-error accounting.
func (p *Predictor) Errors() ErrorReport {
	rep := ErrorReport{Predictor: string(p.kind), Total: p.errTot}
	if len(p.errKeys) > 0 {
		rep.Keys = make(map[string]ErrorStats, len(p.errKeys))
		for k, v := range p.errKeys {
			rep.Keys[k] = *v
		}
	}
	return rep
}

// Reset clears all learned state, disruption marks and error accounting.
func (p *Predictor) Reset() {
	p.state = make(map[key]*entry)
	p.disrupted = make(map[string]bool)
	p.issued = make(map[key]int64)
	p.errTot = ErrorStats{}
	p.errKeys = nil
	switch p.kind {
	case KindPhase:
		p.phases = make(map[string]*phaseTbl)
	case KindDecay:
		p.blend = make(map[key]*blendEntry)
	}
}

// Len returns the number of (block, kernel) forecasts currently tracked.
func (p *Predictor) Len() int {
	switch p.kind {
	case KindPhase:
		n := 0
		for _, pt := range p.phases {
			kernels := map[ise.KernelID]bool{}
			for _, r := range pt.regimes {
				for k := range r.vals {
					kernels[k] = true
				}
			}
			n += len(kernels)
		}
		return n
	case KindDecay:
		return len(p.blend)
	default:
		return len(p.state)
	}
}
