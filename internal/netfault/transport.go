package netfault

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// LinkError is the transport-level failure the engine injects on blocked
// or dropped deliveries. It reports Temporary so retry classifiers treat
// it like any other transient dial failure.
type LinkError struct {
	From, To, Reason string
}

func (e *LinkError) Error() string {
	return fmt.Sprintf("netfault: %s->%s %s", e.From, e.To, e.Reason)
}

// Timeout and Temporary implement net.Error: an injected fault looks like
// a transient network failure, never a deadline.
func (e *LinkError) Timeout() bool   { return false }
func (e *LinkError) Temporary() bool { return true }

// Transport wraps base (http.DefaultTransport if nil) with the engine's
// fault decisions for deliveries originating at the named member.
// Requests to hosts that were never Registered — or to the member itself
// — pass through untouched, so a wrapped client keeps working against
// non-cluster endpoints.
func (n *Network) Transport(from string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{n: n, from: from, base: base}
}

type transport struct {
	n    *Network
	from string
	base http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := t.n
	to := n.memberOf(req.URL.Host)
	if to == "" || to == t.from {
		return t.base.RoundTrip(req)
	}
	l := link(t.from, to)
	n.requests.Add(1)
	now := time.Now()

	if n.blockedAt(t.from, to, now) {
		n.blocked.Add(1)
		closeBody(req)
		return nil, &LinkError{From: t.from, To: to, Reason: "partitioned"}
	}

	// One ordinal per delivery; every per-delivery category keys its
	// decision off the same (link, k) so categories stay independent yet
	// individually prefix-stable.
	k := n.nextOrdinal(l)

	if d := n.spikeAt(t.from, to, now); d > 0 {
		n.delayed.Add(1)
		if err := sleepCtx(req.Context(), d); err != nil {
			closeBody(req)
			return nil, err
		}
	}
	if n.opts.ReorderRate > 0 && decision(n.seed, catReorder, l, k) < n.opts.ReorderRate {
		n.delayed.Add(1)
		if err := sleepCtx(req.Context(), n.opts.ReorderDelay); err != nil {
			closeBody(req)
			return nil, err
		}
	}
	if n.opts.DropRate > 0 {
		if d := decision(n.seed, catDrop, l, k); d < n.opts.DropRate {
			if d < n.opts.DropRate/2 {
				// The request is lost before the receiver sees it.
				n.dropReq.Add(1)
				closeBody(req)
				return nil, &LinkError{From: t.from, To: to, Reason: "request dropped"}
			}
			// The receiver processes the request; the response is lost on
			// the way back — the ack-loss case that makes senders retry
			// work the receiver already did.
			resp, err := t.base.RoundTrip(req)
			if err == nil {
				drainClose(resp)
			}
			n.dropResp.Add(1)
			return nil, &LinkError{From: t.from, To: to, Reason: "response dropped"}
		}
	}
	if n.opts.DupRate > 0 && decision(n.seed, catDup, l, k) < n.opts.DupRate {
		if dup, ok := cloneRequest(req); ok {
			n.duplicated.Add(1)
			resp, err := t.base.RoundTrip(req)
			if err != nil {
				// First copy died in the base transport; the duplicate is
				// now just a retry.
				return t.base.RoundTrip(dup)
			}
			drainClose(resp)
			return t.base.RoundTrip(dup)
		}
	}
	return t.base.RoundTrip(req)
}

// cloneRequest builds a second sendable copy of req. Requests with a
// non-replayable body (no GetBody) cannot be duplicated and report !ok.
func cloneRequest(req *http.Request) (*http.Request, bool) {
	dup := req.Clone(req.Context())
	if req.Body == nil {
		return dup, true
	}
	if req.GetBody == nil {
		return nil, false
	}
	body, err := req.GetBody()
	if err != nil {
		return nil, false
	}
	dup.Body = body
	return dup, true
}

func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

func drainClose(resp *http.Response) {
	if resp.Body != nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// sleepCtx sleeps for d or until ctx is done, returning the context's
// error in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
