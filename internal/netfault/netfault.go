// Package netfault is a seeded, deterministic network-fault scheduler for
// the mrts-serve cluster: the wire-level sibling of internal/fault. Where
// internal/fault corrupts the fabric under the runtime system, netfault
// sickens the network under the cluster — symmetric partitions that cut a
// minority off, asymmetric one-way link failures, per-link latency spikes,
// and per-delivery drops, duplications and reorderings — all drawn from a
// seed so every partition scenario is reproducible.
//
// Two mechanisms compose:
//
//   - Scheduled windows: partitions, link failures and latency spikes are
//     time intervals drawn over a horizon, anchored at Start. While a
//     window is open, deliveries on its links fail (or slow down).
//   - Per-delivery decisions: the k-th delivery on a directed link is
//     dropped / duplicated / delayed by a decision that is a pure function
//     of (seed, category, link, k) — independent of wall time, so a test
//     replaying the same request sequence sees the same decisions.
//
// Like internal/fault, each category draws from its own sub-stream:
// raising the partition count never moves the latency spikes, and a
// scenario that grows one knob grows prefix-stably. The whole engine is
// exposed as an http.RoundTripper (Network.Transport) that every cluster
// code path — membership probes, redirect submission, replication,
// steal/adopt RPCs, and the failover client — can route through; with no
// Network configured the cluster never touches this package and its wire
// behavior is byte-identical to an unfaulted build.
package netfault

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Options parameterise a network-fault schedule. The zero value is the
// benign no-fault network.
type Options struct {
	// Members are the participant IDs the scheduler draws partitions and
	// link events over. Required whenever any scheduled count is non-zero.
	Members []string

	// Partitions is the number of symmetric partition windows: each cuts
	// a seeded minority group off from the rest, both directions, for
	// PartitionDur.
	Partitions int
	// LinkFails is the number of asymmetric link-failure windows: one
	// directed link goes dark for PartitionDur while the reverse
	// direction keeps working.
	LinkFails int
	// Spikes is the number of per-link latency-spike windows: deliveries
	// on one directed link are delayed by SpikeDelay for SpikeDur.
	Spikes int

	// PartitionDur is the length of one partition or link-failure window
	// (default 2s).
	PartitionDur time.Duration
	// SpikeDur is the length of one latency-spike window (default 1s).
	SpikeDur time.Duration
	// SpikeDelay is the added per-delivery latency inside a spike window
	// (default 50ms).
	SpikeDelay time.Duration

	// DropRate is the per-delivery probability that a delivery is lost.
	// Half of the drops (drawn from the same decision) lose the request
	// before the receiver sees it; the other half deliver the request and
	// lose the response — the ack-loss case that opens duplicate-run
	// windows. In [0,1].
	DropRate float64
	// DupRate is the per-delivery probability that the receiver sees the
	// request twice (the sender gets the second response). In [0,1].
	DupRate float64
	// ReorderRate is the per-delivery probability that a delivery is
	// held for ReorderDelay before being forwarded, letting later
	// deliveries on the same link overtake it. In [0,1].
	ReorderRate float64
	// ReorderDelay is the hold applied to reordered deliveries
	// (default 20ms).
	ReorderDelay time.Duration

	// Horizon is the window scheduled events are drawn from. Required
	// (> 0) whenever any scheduled count is non-zero.
	Horizon time.Duration
}

// IsZero reports whether the options describe the benign network.
func (o Options) IsZero() bool {
	return o.Partitions == 0 && o.LinkFails == 0 && o.Spikes == 0 &&
		o.DropRate == 0 && o.DupRate == 0 && o.ReorderRate == 0
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	for _, c := range []struct {
		name string
		n    int
	}{
		{"Partitions", o.Partitions}, {"LinkFails", o.LinkFails}, {"Spikes", o.Spikes},
	} {
		if c.n < 0 {
			return fmt.Errorf("netfault: negative %s %d", c.name, c.n)
		}
	}
	for _, c := range []struct {
		name string
		r    float64
	}{
		{"DropRate", o.DropRate}, {"DupRate", o.DupRate}, {"ReorderRate", o.ReorderRate},
	} {
		if c.r < 0 || c.r > 1 {
			return fmt.Errorf("netfault: %s %v outside [0,1]", c.name, c.r)
		}
	}
	scheduled := o.Partitions > 0 || o.LinkFails > 0 || o.Spikes > 0
	if scheduled && o.Horizon <= 0 {
		return fmt.Errorf("netfault: horizon %v must be positive when windows are requested", o.Horizon)
	}
	if scheduled && len(o.Members) < 2 {
		return fmt.Errorf("netfault: scheduled windows need at least 2 members, have %d", len(o.Members))
	}
	return nil
}

// Defaults for zero-valued durations.
const (
	DefaultPartitionDur = 2 * time.Second
	DefaultSpikeDur     = time.Second
	DefaultSpikeDelay   = 50 * time.Millisecond
	DefaultReorderDelay = 20 * time.Millisecond
)

// rng is the same splitmix64 stream internal/fault uses: tiny,
// full-period, owned by the schedule, race-free by construction.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// within draws a uniform duration in [0, horizon).
func (r *rng) within(horizon time.Duration) time.Duration {
	return time.Duration(r.next() % uint64(horizon))
}

// intn draws a uniform int in [0, n).
func (r *rng) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Per-category stream identifiers. Each category consumes only its own
// stream, so growing one count never perturbs another category — or that
// category's own prefix.
const (
	catPartition = iota
	catLinkFail
	catSpike
	catDrop
	catDup
	catReorder
	catChaos // minority pick + heal delay for the chaos harness
)

// stream derives an independent sub-stream for an event category,
// mirroring internal/fault's derivation.
func stream(seed uint64, category uint64) *rng {
	base := rng{s: seed}
	for i := uint64(0); i <= category; i++ {
		base.next()
	}
	return &rng{s: base.next() ^ (category+1)*0xd1342543de82ef95}
}

// decision is the deterministic per-delivery draw: a pure function of
// (seed, category, directed link, delivery ordinal) in [0,1). It is NOT a
// stream cursor — replaying the same delivery sequence replays the same
// decisions, and decisions for one link never depend on traffic on
// another.
func decision(seed uint64, category uint64, link string, k uint64) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(link))
	r := rng{s: seed ^ (category+1)*0x9e3779b97f4a7c15 ^ h.Sum64()}
	r.next()
	r.s += k * 0xd1342543de82ef95
	return float64(r.next()>>11) / (1 << 53)
}

// window is one scheduled interval during which a set of directed links
// is blocked (partitions, link failures) or slowed (spikes).
type window struct {
	start, end time.Duration // offsets from the anchor
	links      map[string]bool
	delay      time.Duration // zero for blocking windows
	kind       string        // "partition" | "linkfail" | "spike"
}

// link names a directed edge.
func link(from, to string) string { return from + ">" + to }

// Stats count the engine's applied decisions since construction.
type Stats struct {
	// Requests is the number of deliveries inspected by the transport.
	Requests int64
	// Blocked is the number of deliveries refused by an open partition or
	// link-failure window (scheduled or manual).
	Blocked int64
	// DroppedRequests / DroppedResponses split the drop decisions by
	// which half of the round trip was lost.
	DroppedRequests  int64
	DroppedResponses int64
	// Duplicated is the number of deliveries the receiver saw twice.
	Duplicated int64
	// Delayed is the number of deliveries held by a spike or reorder.
	Delayed int64
}

// Network is the runtime engine: an immutable schedule plus mutable
// anchor, manual-partition state and counters. Safe for concurrent use by
// every node's transport.
type Network struct {
	seed    uint64
	opts    Options
	windows []window

	mu       sync.Mutex
	anchor   time.Time         // zero until Start
	manual   []map[string]bool // manually partitioned groups
	registry map[string]string
	counts   map[string]*uint64 // per-link delivery ordinals
	chaos    *rng               // seeded draws for the chaos harness

	requests, blocked   atomic.Int64
	dropReq, dropResp   atomic.Int64
	duplicated, delayed atomic.Int64
}

// New draws a network-fault engine from the seed and options.
func New(seed uint64, opts Options) (*Network, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.PartitionDur <= 0 {
		opts.PartitionDur = DefaultPartitionDur
	}
	if opts.SpikeDur <= 0 {
		opts.SpikeDur = DefaultSpikeDur
	}
	if opts.SpikeDelay <= 0 {
		opts.SpikeDelay = DefaultSpikeDelay
	}
	if opts.ReorderDelay <= 0 {
		opts.ReorderDelay = DefaultReorderDelay
	}
	n := &Network{
		seed:     seed,
		opts:     opts,
		registry: make(map[string]string),
		counts:   make(map[string]*uint64),
		chaos:    stream(seed, catChaos),
	}
	members := append([]string(nil), opts.Members...)
	sort.Strings(members) // draws must not depend on caller order

	r := stream(seed, catPartition)
	for i := 0; i < opts.Partitions; i++ {
		at := r.within(opts.Horizon)
		group := drawMinority(r, members)
		n.windows = append(n.windows, window{
			start: at, end: at + opts.PartitionDur,
			links: cutLinks(group, members), kind: "partition",
		})
	}
	r = stream(seed, catLinkFail)
	for i := 0; i < opts.LinkFails; i++ {
		at := r.within(opts.Horizon)
		from, to := drawPair(r, members)
		n.windows = append(n.windows, window{
			start: at, end: at + opts.PartitionDur,
			links: map[string]bool{link(from, to): true}, kind: "linkfail",
		})
	}
	r = stream(seed, catSpike)
	for i := 0; i < opts.Spikes; i++ {
		at := r.within(opts.Horizon)
		from, to := drawPair(r, members)
		n.windows = append(n.windows, window{
			start: at, end: at + opts.SpikeDur,
			links: map[string]bool{link(from, to): true},
			delay: opts.SpikeDelay, kind: "spike",
		})
	}
	// Windows stay in draw order: category sub-streams make each
	// category's list grow prefix-stably, and sorting would hide that.
	return n, nil
}

// Must is New for options known to be valid.
func Must(seed uint64, opts Options) *Network {
	n, err := New(seed, opts)
	if err != nil {
		panic(err)
	}
	return n
}

// drawMinority picks a strict minority subset (1 <= k <= (len-1)/2,
// clamped to at least one member) of the sorted member list.
func drawMinority(r *rng, members []string) []string {
	maxK := (len(members) - 1) / 2
	if maxK < 1 {
		maxK = 1
	}
	k := 1 + r.intn(maxK)
	picked := make(map[int]bool, k)
	for len(picked) < k {
		picked[r.intn(len(members))] = true
	}
	out := make([]string, 0, k)
	for i, m := range members {
		if picked[i] {
			out = append(out, m)
		}
	}
	return out
}

// drawPair picks an ordered pair of distinct members.
func drawPair(r *rng, members []string) (from, to string) {
	i := r.intn(len(members))
	j := r.intn(len(members) - 1)
	if j >= i {
		j++
	}
	return members[i], members[j]
}

// cutLinks returns every directed link between the group and the rest,
// both directions — a symmetric partition.
func cutLinks(group, members []string) map[string]bool {
	in := make(map[string]bool, len(group))
	for _, g := range group {
		in[g] = true
	}
	links := make(map[string]bool)
	for _, a := range members {
		for _, b := range members {
			if a != b && in[a] != in[b] {
				links[link(a, b)] = true
			}
		}
	}
	return links
}

// Seed returns the seed the engine was drawn from.
func (n *Network) Seed() uint64 { return n.seed }

// Options returns the (defaulted) options.
func (n *Network) Options() Options { return n.opts }

// Windows returns a human-readable description of the scheduled windows,
// in start order — the reproduction recipe a seed implies.
func (n *Network) Windows() []string {
	out := make([]string, 0, len(n.windows))
	for _, w := range n.windows {
		links := make([]string, 0, len(w.links))
		for l := range w.links {
			links = append(links, l)
		}
		sort.Strings(links)
		out = append(out, fmt.Sprintf("%s @%v..%v %s", w.kind, w.start, w.end, strings.Join(links, ",")))
	}
	return out
}

// Start anchors the scheduled windows at now. Before Start only manual
// partitions and per-delivery decisions apply. Calling Start twice keeps
// the first anchor.
func (n *Network) Start(now time.Time) {
	n.mu.Lock()
	if n.anchor.IsZero() {
		n.anchor = now
	}
	n.mu.Unlock()
}

// Register maps an HTTP host ("127.0.0.1:8341") to a member ID so the
// transport can resolve request destinations. Unregistered hosts pass
// through the transport untouched.
func (n *Network) Register(member, host string) {
	n.mu.Lock()
	n.registry[host] = member
	n.mu.Unlock()
}

// memberOf resolves a request host to its member ID ("" if unknown).
func (n *Network) memberOf(host string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.registry[host]
}

// PartitionNow manually cuts the group off from every other member (both
// directions) until Heal. The chaos harness uses it to place a partition
// at an exact moment mid-sweep; scheduled windows keep applying
// independently. A delivery is blocked when exactly one of its endpoints
// is inside a partitioned group, so the universe of members never needs
// enumerating.
func (n *Network) PartitionNow(group []string) {
	in := make(map[string]bool, len(group))
	for _, g := range group {
		in[g] = true
	}
	n.mu.Lock()
	n.manual = append(n.manual, in)
	n.mu.Unlock()
}

// Heal clears every manual partition.
func (n *Network) Heal() {
	n.mu.Lock()
	n.manual = nil
	n.mu.Unlock()
}

// DrawMinority returns a seeded strict-minority subset of members — the
// chaos harness's reproducible victim pick.
func (n *Network) DrawMinority(members []string) []string {
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	n.mu.Lock()
	defer n.mu.Unlock()
	return drawMinority(n.chaos, sorted)
}

// DrawHealDelay returns a seeded duration in [min, max) — the chaos
// harness's reproducible heal interval.
func (n *Network) DrawHealDelay(min, max time.Duration) time.Duration {
	if max <= min {
		return min
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return min + n.chaos.within(max-min)
}

// blockedAt reports whether the directed link is inside an open blocking
// window (scheduled or manual) at now.
func (n *Network) blockedAt(from, to string, now time.Time) bool {
	l := link(from, to)
	n.mu.Lock()
	manual := false
	for _, in := range n.manual {
		if in[from] != in[to] {
			manual = true
			break
		}
	}
	anchor := n.anchor
	n.mu.Unlock()
	if manual {
		return true
	}
	if anchor.IsZero() {
		return false
	}
	off := now.Sub(anchor)
	for _, w := range n.windows {
		if w.delay == 0 && off >= w.start && off < w.end && w.links[l] {
			return true
		}
	}
	return false
}

// spikeAt returns the latency-spike delay open on the directed link at
// now (zero outside every spike window).
func (n *Network) spikeAt(from, to string, now time.Time) time.Duration {
	n.mu.Lock()
	anchor := n.anchor
	n.mu.Unlock()
	if anchor.IsZero() {
		return 0
	}
	off := now.Sub(anchor)
	l := link(from, to)
	for _, w := range n.windows {
		if w.delay > 0 && off >= w.start && off < w.end && w.links[l] {
			return w.delay
		}
	}
	return 0
}

// nextOrdinal returns the 0-based ordinal of the next delivery on the
// directed link.
func (n *Network) nextOrdinal(l string) uint64 {
	n.mu.Lock()
	c, ok := n.counts[l]
	if !ok {
		c = new(uint64)
		n.counts[l] = c
	}
	n.mu.Unlock()
	return atomic.AddUint64(c, 1) - 1
}

// Stats snapshots the applied-decision counters.
func (n *Network) Stats() Stats {
	return Stats{
		Requests:         n.requests.Load(),
		Blocked:          n.blocked.Load(),
		DroppedRequests:  n.dropReq.Load(),
		DroppedResponses: n.dropResp.Load(),
		Duplicated:       n.duplicated.Load(),
		Delayed:          n.delayed.Load(),
	}
}

// ParseSpec parses the CLI scenario syntax
//
//	"seed=1,partitions=2,linkfails=1,spikes=2,drop=0.02,dup=0.02,reorder=0.02,horizon=30s"
//
// into a seed and Options (Members are filled in by the caller). Keys may
// appear in any order; unknown keys are an error.
func ParseSpec(spec string) (seed uint64, opts Options, err error) {
	seed = 1
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return 0, Options{}, fmt.Errorf("netfault: bad spec entry %q (want key=value)", part)
		}
		switch k {
		case "seed":
			seed, err = strconv.ParseUint(v, 10, 64)
		case "partitions":
			opts.Partitions, err = strconv.Atoi(v)
		case "linkfails":
			opts.LinkFails, err = strconv.Atoi(v)
		case "spikes":
			opts.Spikes, err = strconv.Atoi(v)
		case "drop":
			opts.DropRate, err = strconv.ParseFloat(v, 64)
		case "dup":
			opts.DupRate, err = strconv.ParseFloat(v, 64)
		case "reorder":
			opts.ReorderRate, err = strconv.ParseFloat(v, 64)
		case "horizon":
			opts.Horizon, err = time.ParseDuration(v)
		case "partdur":
			opts.PartitionDur, err = time.ParseDuration(v)
		case "spikedur":
			opts.SpikeDur, err = time.ParseDuration(v)
		case "spikedelay":
			opts.SpikeDelay, err = time.ParseDuration(v)
		case "reorderdelay":
			opts.ReorderDelay, err = time.ParseDuration(v)
		default:
			return 0, Options{}, fmt.Errorf("netfault: unknown spec key %q", k)
		}
		if err != nil {
			return 0, Options{}, fmt.Errorf("netfault: bad %s: %w", k, err)
		}
	}
	return seed, opts, nil
}
