package netfault

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

var members = []string{"n1", "n2", "n3", "n4", "n5"}

func opts(mod func(*Options)) Options {
	o := Options{Members: members, Horizon: 30 * time.Second}
	if mod != nil {
		mod(&o)
	}
	return o
}

func TestScheduleDeterministic(t *testing.T) {
	o := opts(func(o *Options) { o.Partitions = 3; o.LinkFails = 2; o.Spikes = 4 })
	a := Must(7, o)
	b := Must(7, o)
	if !reflect.DeepEqual(a.Windows(), b.Windows()) {
		t.Fatalf("same seed diverged:\n%v\n%v", a.Windows(), b.Windows())
	}
	c := Must(8, o)
	if reflect.DeepEqual(a.Windows(), c.Windows()) {
		t.Fatalf("different seeds produced identical schedules")
	}
}

// Growing one category's count must neither move another category's
// windows nor the category's own existing windows — the prefix-stability
// property internal/fault established.
func TestScheduleGrowsPrefixStably(t *testing.T) {
	base := Must(11, opts(func(o *Options) { o.Partitions = 2; o.Spikes = 2 }))
	grown := Must(11, opts(func(o *Options) { o.Partitions = 4; o.Spikes = 2 }))

	filter := func(ws []string, kind string) []string {
		var out []string
		for _, w := range ws {
			if strings.HasPrefix(w, kind) {
				out = append(out, w)
			}
		}
		return out
	}
	bp, gp := filter(base.Windows(), "partition"), filter(grown.Windows(), "partition")
	if len(gp) != 4 || !reflect.DeepEqual(bp, gp[:2]) {
		t.Fatalf("partition prefix moved:\nbase  %v\ngrown %v", bp, gp)
	}
	bs, gs := filter(base.Windows(), "spike"), filter(grown.Windows(), "spike")
	if !reflect.DeepEqual(bs, gs) {
		t.Fatalf("growing partitions moved the spikes:\nbase  %v\ngrown %v", bs, gs)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		o    Options
		ok   bool
	}{
		{"zero", Options{}, true},
		{"negative count", Options{Partitions: -1}, false},
		{"rate above one", Options{DropRate: 1.5}, false},
		{"windows without horizon", Options{Partitions: 1, Members: members}, false},
		{"windows without members", Options{Partitions: 1, Horizon: time.Second}, false},
		{"full", opts(func(o *Options) { o.Partitions = 2; o.DropRate = 0.5 }), true},
	}
	for _, c := range cases {
		if err := c.o.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestDecisionIsPerLinkStable(t *testing.T) {
	// The k-th decision on a link is a pure function of (seed, cat, link,
	// k): replaying it gives the same value, and traffic on other links
	// cannot shift it.
	for k := uint64(0); k < 64; k++ {
		if decision(3, catDrop, "a>b", k) != decision(3, catDrop, "a>b", k) {
			t.Fatalf("decision not deterministic at k=%d", k)
		}
	}
	same := 0
	for k := uint64(0); k < 64; k++ {
		if decision(3, catDrop, "a>b", k) == decision(3, catDup, "a>b", k) {
			same++
		}
	}
	if same > 4 {
		t.Fatalf("drop and dup decisions track each other (%d/64 equal)", same)
	}
}

func TestDrawMinorityIsStrictAndSeeded(t *testing.T) {
	a := Must(5, Options{})
	b := Must(5, Options{})
	ga, gb := a.DrawMinority(members), b.DrawMinority(members)
	if !reflect.DeepEqual(ga, gb) {
		t.Fatalf("same seed drew different minorities: %v vs %v", ga, gb)
	}
	if len(ga) == 0 || len(ga) > (len(members)-1)/2 {
		t.Fatalf("minority %v is not a strict minority of %v", ga, members)
	}
}

func TestParseSpec(t *testing.T) {
	seed, o, err := ParseSpec("seed=9,partitions=2,linkfails=1,spikes=3,drop=0.1,dup=0.05,reorder=0.2,horizon=45s,partdur=3s")
	if err != nil {
		t.Fatal(err)
	}
	if seed != 9 || o.Partitions != 2 || o.LinkFails != 1 || o.Spikes != 3 ||
		o.DropRate != 0.1 || o.DupRate != 0.05 || o.ReorderRate != 0.2 ||
		o.Horizon != 45*time.Second || o.PartitionDur != 3*time.Second {
		t.Fatalf("parsed %d %+v", seed, o)
	}
	if _, _, err := ParseSpec("bogus=1"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, _, err := ParseSpec("drop"); err == nil {
		t.Fatal("entry without '=' accepted")
	}
}

// twoNodes wires a registered httptest server plus a transport from a
// second member, returning the server hit counter.
func twoNodes(t *testing.T, n *Network) (*httptest.Server, *http.Client, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "ok")
	}))
	t.Cleanup(srv.Close)
	n.Register("n2", strings.TrimPrefix(srv.URL, "http://"))
	client := &http.Client{Transport: n.Transport("n1", nil)}
	return srv, client, &hits
}

func TestTransportManualPartitionAndHeal(t *testing.T) {
	n := Must(1, Options{})
	srv, client, hits := twoNodes(t, n)

	if _, err := client.Get(srv.URL); err != nil {
		t.Fatalf("healthy link failed: %v", err)
	}
	n.PartitionNow([]string{"n2"})
	_, err := client.Get(srv.URL)
	var le *LinkError
	if !errors.As(err, &le) || le.To != "n2" {
		t.Fatalf("partitioned link returned %v, want LinkError to n2", err)
	}
	if !le.Temporary() || le.Timeout() {
		t.Fatalf("LinkError should be temporary, not a timeout")
	}
	n.Heal()
	if _, err := client.Get(srv.URL); err != nil {
		t.Fatalf("healed link failed: %v", err)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2 (partitioned one never delivered)", got)
	}
	st := n.Stats()
	if st.Requests != 3 || st.Blocked != 1 {
		t.Fatalf("stats %+v, want Requests=3 Blocked=1", st)
	}
}

func TestTransportUnregisteredHostPassesThrough(t *testing.T) {
	n := Must(1, Options{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	n.PartitionNow([]string{"n2"}) // must not affect unknown hosts
	client := &http.Client{Transport: n.Transport("n1", nil)}
	if _, err := client.Get(srv.URL); err != nil {
		t.Fatalf("unregistered host blocked: %v", err)
	}
	if st := n.Stats(); st.Requests != 0 {
		t.Fatalf("pass-through delivery was counted: %+v", st)
	}
}

func TestTransportDropsSplitRequestAndResponse(t *testing.T) {
	n := Must(1, Options{DropRate: 1})
	srv, client, hits := twoNodes(t, n)
	for i := 0; i < 20; i++ {
		if _, err := client.Get(srv.URL); err == nil {
			t.Fatalf("delivery %d survived DropRate=1", i)
		}
	}
	st := n.Stats()
	if st.DroppedRequests+st.DroppedResponses != 20 {
		t.Fatalf("stats %+v, want 20 drops", st)
	}
	if st.DroppedRequests == 0 || st.DroppedResponses == 0 {
		t.Fatalf("drops all on one side: %+v — want a mix of lost requests and lost responses", st)
	}
	// Response drops mean the server DID the work the sender will retry.
	if hits.Load() != st.DroppedResponses {
		t.Fatalf("server saw %d requests, want %d (one per response drop)", hits.Load(), st.DroppedResponses)
	}
}

func TestTransportDuplicatesDeliveries(t *testing.T) {
	n := Must(1, Options{DupRate: 1})
	srv, client, hits := twoNodes(t, n)
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Fatalf("server saw %d deliveries, want 2", hits.Load())
	}
	if st := n.Stats(); st.Duplicated != 1 {
		t.Fatalf("stats %+v, want Duplicated=1", st)
	}
}

func TestTransportScheduledPartitionWindow(t *testing.T) {
	o := Options{
		Members:      []string{"n1", "n2"},
		Partitions:   1,
		PartitionDur: 200 * time.Millisecond,
		Horizon:      time.Nanosecond, // window opens immediately at the anchor
	}
	n := Must(1, o)
	srv, client, _ := twoNodes(t, n)

	// Before Start nothing is anchored: the link works.
	if _, err := client.Get(srv.URL); err != nil {
		t.Fatalf("pre-anchor delivery failed: %v", err)
	}
	n.Start(time.Now())
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("delivery inside the partition window succeeded")
	}
	time.Sleep(250 * time.Millisecond)
	if _, err := client.Get(srv.URL); err != nil {
		t.Fatalf("delivery after the window closed failed: %v", err)
	}
}

func TestTransportSpikeDelaysDelivery(t *testing.T) {
	o := Options{
		Members:    []string{"n1", "n2"},
		Spikes:     1,
		SpikeDur:   time.Minute,
		SpikeDelay: 80 * time.Millisecond,
		Horizon:    time.Nanosecond,
	}
	n := Must(1, o)
	mkSrv := func(member string) *httptest.Server {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, "ok")
		}))
		t.Cleanup(srv.Close)
		n.Register(member, strings.TrimPrefix(srv.URL, "http://"))
		return srv
	}
	srv1, srv2 := mkSrv("n1"), mkSrv("n2")
	n.Start(time.Now())

	// The single spike hits one directed link between n1 and n2; probe
	// both directions and assert exactly one is slowed.
	probe := func(from string, srv *httptest.Server) time.Duration {
		client := &http.Client{Transport: n.Transport(from, nil)}
		t0 := time.Now()
		if _, err := client.Get(srv.URL); err != nil {
			t.Fatalf("spiked delivery failed: %v", err)
		}
		return time.Since(t0)
	}
	d12, d21 := probe("n1", srv2), probe("n2", srv1)
	if d12 < 80*time.Millisecond && d21 < 80*time.Millisecond {
		t.Fatalf("no direction saw the spike delay (n1>n2 %v, n2>n1 %v)", d12, d21)
	}
	if st := n.Stats(); st.Delayed == 0 {
		t.Fatalf("delayed delivery not counted: %+v", st)
	}
}
