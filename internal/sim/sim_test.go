package sim

import (
	"testing"

	"mrts/internal/arch"
	"mrts/internal/core"
	"mrts/internal/ecu"
	"mrts/internal/ise"
	"mrts/internal/trace"
)

// testWorld builds a tiny application and trace with fully predictable
// numbers: one block, one kernel (RISC 100 cycles), one CG ISE (latency 40,
// reconfig 15 cycles).
func testWorld(t *testing.T) (*ise.Application, *trace.Trace) {
	t.Helper()
	k := &ise.Kernel{
		ID: "k", RISCLatency: 100,
		ISEs: []*ise.ISE{{
			ID: "k.cg1", Kernel: "k",
			DataPaths: []ise.DataPath{{ID: "k_cg", Kind: arch.CG, CGs: 1}},
			Latencies: []arch.Cycles{40},
		}},
	}
	blk := &ise.FunctionalBlock{ID: "b", Kernels: []*ise.Kernel{k}}
	app, err := ise.NewApplication("tiny", blk)
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{
		App: "tiny",
		Iterations: []trace.Iteration{
			{Block: "b", Seq: 0, Prologue: 50, Loads: []trace.KernelLoad{{Kernel: "k", E: 10, GapSW: 5}}},
			{Block: "b", Seq: 1, Prologue: 50, Loads: []trace.KernelLoad{{Kernel: "k", E: 10, GapSW: 5}}},
		},
	}
	if err := tr.BuildProfile(app); err != nil {
		t.Fatal(err)
	}
	return app, tr
}

func TestRunRISCAnalytic(t *testing.T) {
	app, tr := testWorld(t)
	rep, err := RunRISC(app, tr)
	if err != nil {
		t.Fatal(err)
	}
	// 2 iterations x (prologue 50 + 10 x (gap 5 + RISC 100)).
	want := arch.Cycles(2 * (50 + 10*(5+100)))
	if rep.TotalCycles != want {
		t.Errorf("RISC total = %d, want %d", rep.TotalCycles, want)
	}
	if rep.Executions != 20 {
		t.Errorf("executions = %d, want 20", rep.Executions)
	}
	if rep.ModeExecs[ecu.RISC] != 20 {
		t.Errorf("RISC executions = %d", rep.ModeExecs[ecu.RISC])
	}
}

func TestRunConservation(t *testing.T) {
	app, tr := testWorld(t)
	m := core.MustNew(arch.Config{NCG: 1}, core.Options{ChargeOverhead: true})
	rep, err := Run(app, tr, m)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle accounting must add up exactly.
	sum := rep.SoftwareCycles + rep.KernelCycles + rep.OverheadCycles
	if rep.TotalCycles != sum {
		t.Errorf("total %d != software %d + kernels %d + overhead %d",
			rep.TotalCycles, rep.SoftwareCycles, rep.KernelCycles, rep.OverheadCycles)
	}
	var modeSum arch.Cycles
	for _, c := range rep.ModeCycles {
		modeSum += c
	}
	if modeSum != rep.KernelCycles {
		t.Errorf("mode cycles %d != kernel cycles %d", modeSum, rep.KernelCycles)
	}
	var blockSum arch.Cycles
	for _, c := range rep.BlockCycles {
		blockSum += c
	}
	if blockSum != rep.TotalCycles {
		t.Errorf("block cycles %d != total %d", blockSum, rep.TotalCycles)
	}
}

func TestRunAcceleratedBeatsRISC(t *testing.T) {
	app, tr := testWorld(t)
	ref, err := RunRISC(app, tr)
	if err != nil {
		t.Fatal(err)
	}
	m := core.MustNew(arch.Config{NCG: 1}, core.Options{ChargeOverhead: true})
	rep, err := Run(app, tr, m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalCycles >= ref.TotalCycles {
		t.Errorf("accelerated run (%d) not faster than RISC (%d)", rep.TotalCycles, ref.TotalCycles)
	}
	if s := rep.Speedup(ref); s <= 1 {
		t.Errorf("speedup = %v", s)
	}
	// Most executions should use the full ISE (reconfig is 15 cycles).
	if rep.ModeExecs[ecu.Full] < 15 {
		t.Errorf("full-ISE executions = %d, want most of 20", rep.ModeExecs[ecu.Full])
	}
}

func TestRunDeterministic(t *testing.T) {
	app, tr := testWorld(t)
	m := core.MustNew(arch.Config{NCG: 1}, core.Options{ChargeOverhead: true})
	r1, err := Run(app, tr, m)
	if err != nil {
		t.Fatal(err)
	}
	// Re-running on the same policy instance must reset state and give
	// identical results.
	r2, err := Run(app, tr, m)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalCycles != r2.TotalCycles || r1.Executions != r2.Executions {
		t.Errorf("runs differ: %d vs %d cycles", r1.TotalCycles, r2.TotalCycles)
	}
}

func TestRunValidatesTrace(t *testing.T) {
	app, tr := testWorld(t)
	tr.Iterations = append(tr.Iterations, trace.Iteration{Block: "missing"})
	if _, err := RunRISC(app, tr); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestRunPerBlockAccounting(t *testing.T) {
	app, tr := testWorld(t)
	rep, err := RunRISC(app, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlockIterations["b"] != 2 || rep.Iterations != 2 {
		t.Errorf("iterations = %d / %v", rep.Iterations, rep.BlockIterations)
	}
}

func TestModeShare(t *testing.T) {
	app, tr := testWorld(t)
	rep, err := RunRISC(app, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.ModeShare(ecu.RISC); got != 1 {
		t.Errorf("RISC share = %v, want 1", got)
	}
	if got := rep.ModeShare(ecu.Full); got != 0 {
		t.Errorf("full share = %v, want 0", got)
	}
}

func TestObservationsReachMPU(t *testing.T) {
	// The MPU should learn from observations: after running iteration 1
	// with profile E=10, the forecast for the next trigger reflects it.
	app, tr := testWorld(t)
	m := core.MustNew(arch.Config{NCG: 1}, core.Options{ChargeOverhead: true})
	if _, err := Run(app, tr, m); err != nil {
		t.Fatal(err)
	}
	if m.Predictor().Len() == 0 {
		t.Error("MPU learned nothing from the run")
	}
}

func TestRunReserved(t *testing.T) {
	app, tr := testWorld(t)
	// Reserving the only CG-EDPE forces pure RISC execution.
	m := core.MustNew(arch.Config{NCG: 1}, core.Options{ChargeOverhead: true})
	rep, err := RunReserved(app, tr, m, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ModeExecs[ecu.Full] != 0 {
		t.Errorf("reserved fabric still executed %d full-ISE", rep.ModeExecs[ecu.Full])
	}
	ref, err := RunRISC(app, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Apart from selection overhead the run degenerates to RISC mode.
	if rep.KernelCycles != ref.KernelCycles {
		t.Errorf("kernel cycles %d != RISC %d under full reservation", rep.KernelCycles, ref.KernelCycles)
	}
	// An impossible reservation errors.
	if _, err := RunReserved(app, tr, m, 5, 0); err == nil {
		t.Error("over-budget reservation accepted")
	}
}
