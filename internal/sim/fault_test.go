package sim

import (
	"encoding/json"
	"reflect"
	"testing"

	"mrts/internal/arch"
	"mrts/internal/core"
	"mrts/internal/ecu"
	"mrts/internal/fault"
)

func newMRTS(t *testing.T, cfg arch.Config) *core.MRTS {
	t.Helper()
	rts, err := core.New(cfg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rts
}

// TestZeroRateScheduleIdentical is the determinism guard: installing a
// fault schedule that contains no events must leave the report — stats,
// timings, JSON encoding — bit-identical to the plain fault-free Run.
func TestZeroRateScheduleIdentical(t *testing.T) {
	app, tr := testWorld(t)
	rts := newMRTS(t, arch.Config{NCG: 1})

	plain, err := Run(app, tr, rts)
	if err != nil {
		t.Fatal(err)
	}
	zero := fault.MustSchedule(1, fault.Options{})
	faulted, err := RunOpts(app, tr, rts, Options{Faults: zero})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, faulted) {
		t.Errorf("zero-rate schedule changed the report:\nplain:   %+v\nfaulted: %+v", plain, faulted)
	}
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(faulted)
	if string(a) != string(b) {
		t.Errorf("JSON encodings differ:\n%s\n%s", a, b)
	}
	if !plain.Fault.IsZero() {
		t.Errorf("fault-free run reports fault activity: %+v", plain.Fault)
	}
}

func TestFaultedRunNeverAborts(t *testing.T) {
	app, tr := testWorld(t)
	rts := newMRTS(t, arch.Config{NCG: 1})

	clean, err := Run(app, tr, rts)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the only CG-EDPE somewhere inside the run: the accelerated
	// kernel must fall back to RISC and the run must still complete.
	sched := fault.MustSchedule(3, fault.Options{FailCG: 1, Horizon: clean.TotalCycles})
	rep, err := RunOpts(app, tr, rts, Options{Faults: sched})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != clean.Iterations || rep.Executions != clean.Executions {
		t.Errorf("faulted run dropped work: %d/%d iterations, %d/%d executions",
			rep.Iterations, clean.Iterations, rep.Executions, clean.Executions)
	}
	if rep.Fault.Events != 1 || rep.Fault.UnitsFailed != 1 {
		t.Errorf("Fault stats = %+v, want 1 event / 1 unit failed", rep.Fault)
	}
	if rep.TotalCycles < clean.TotalCycles {
		t.Errorf("losing the whole fabric sped the run up: %d < %d", rep.TotalCycles, clean.TotalCycles)
	}
	if rep.ModeExecs[ecu.RISC] == 0 {
		t.Error("no RISC fallback executions after losing the only CG-EDPE")
	}
}

func TestFaultedRunReproducible(t *testing.T) {
	app, tr := testWorld(t)
	rts := newMRTS(t, arch.Config{NCG: 1})
	// Keep the whole flap well inside the run (~1000 cycles for this
	// world), so both events hit delivery points.
	sched := fault.MustSchedule(7, fault.Options{FlapCG: 1, DownCycles: 100, Horizon: 400})

	a, err := RunOpts(app, tr, rts, Options{Faults: sched})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOpts(app, tr, rts, Options{Faults: sched})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same schedule, different reports:\n%+v\n%+v", a, b)
	}
	if a.Fault.Events != 2 { // down + recover
		t.Errorf("Fault.Events = %d, want 2", a.Fault.Events)
	}
	if a.Fault.UnitsFailed != 1 || a.Fault.UnitsRecovered != 1 {
		t.Errorf("UnitsFailed/Recovered = %d/%d, want 1/1", a.Fault.UnitsFailed, a.Fault.UnitsRecovered)
	}
}

func TestCorruptionRetriesVisible(t *testing.T) {
	app, tr := testWorld(t)
	rts := newMRTS(t, arch.Config{NCG: 1})

	// Corruption at time zero hits the first CG context load; MaxRun 1
	// means exactly one retry fixes it.
	sched := fault.MustSchedule(5, fault.Options{CorruptCG: 1, MaxRun: 1, Horizon: 1})
	rep, err := RunOpts(app, tr, rts, Options{Faults: sched})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fault.CRCFailures != 1 || rep.Fault.Retries != 1 {
		t.Errorf("CRCFailures/Retries = %d/%d, want 1/1", rep.Fault.CRCFailures, rep.Fault.Retries)
	}
	if rep.Fault.RetryCycles == 0 {
		t.Error("retry backoff not accounted")
	}
}
