// Package sim is the architecture simulator: it replays a workload trace
// against a runtime system managing a multi-grained reconfigurable
// processor and accounts every cycle — software, kernel executions in their
// ECU-chosen modes, and visible runtime-system overhead. It substitutes the
// authors' proprietary cycle-accurate instruction-set simulator; the
// quantities the paper's experiments observe (execution time in cycles,
// execution-mode distribution, selection overhead) are exactly what it
// models.
package sim

import (
	"fmt"

	"mrts/internal/arch"
	"mrts/internal/core"
	"mrts/internal/ecu"
	"mrts/internal/ise"
	"mrts/internal/mpu"
	"mrts/internal/reconfig"
	"mrts/internal/trace"
)

// Report is the outcome of one simulation run.
type Report struct {
	// Policy is the runtime system's name.
	Policy string
	// Config is the fabric budget of the run.
	Config arch.Config
	// TotalCycles is the end-to-end execution time.
	TotalCycles arch.Cycles
	// SoftwareCycles counts prologue and inter-execution software time.
	SoftwareCycles arch.Cycles
	// KernelCycles counts cycles spent inside kernel executions.
	KernelCycles arch.Cycles
	// OverheadCycles is the runtime system's visible selection overhead.
	OverheadCycles arch.Cycles
	// ModeExecs / ModeCycles break kernel executions down by ECU mode.
	ModeExecs  [4]int64
	ModeCycles [4]arch.Cycles
	// BlockCycles aggregates time per functional block.
	BlockCycles map[string]arch.Cycles
	// BlockIterations counts iterations per functional block.
	BlockIterations map[string]int
	// Iterations is the total number of block iterations replayed.
	Iterations int
	// Executions is the total number of kernel executions replayed.
	Executions int64
	// Reconfig summarises the reconfiguration controller's activity.
	Reconfig reconfig.Stats
}

// Speedup returns how much faster this run is than the reference run.
func (r *Report) Speedup(reference *Report) float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return float64(reference.TotalCycles) / float64(r.TotalCycles)
}

// ModeShare returns the fraction of executions dispatched in the mode.
func (r *Report) ModeShare(m ecu.Mode) float64 {
	if r.Executions == 0 {
		return 0
	}
	return float64(r.ModeExecs[m]) / float64(r.Executions)
}

// Run replays the trace against the runtime system. The runtime system is
// Reset first, so a Run is reproducible on a reused policy instance.
func Run(app *ise.Application, tr *trace.Trace, rts core.RuntimeSystem) (*Report, error) {
	return RunReserved(app, tr, rts, 0, 0)
}

// RunReserved replays the trace with part of the fabric reserved by
// competing tasks for the whole run (paper Section 1: the reconfigurable
// fabric is shared among various tasks). The reservation is applied after
// the policy's Reset, before the first trigger instruction.
func RunReserved(app *ise.Application, tr *trace.Trace, rts core.RuntimeSystem, reservePRC, reserveCG int) (*Report, error) {
	if err := tr.Validate(app); err != nil {
		return nil, err
	}
	rts.Reset()
	if reservePRC > 0 || reserveCG > 0 {
		if err := rts.Controller().Reserve(reservePRC, reserveCG); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	rep := &Report{
		Policy:          rts.Name(),
		Config:          rts.Controller().Config(),
		BlockCycles:     make(map[string]arch.Cycles),
		BlockIterations: make(map[string]int),
	}

	type track struct {
		first   arch.Cycles
		lastEnd arch.Cycles
		gaps    arch.Cycles
		n       int64
	}

	var t arch.Cycles
	for i := range tr.Iterations {
		it := &tr.Iterations[i]
		blk := app.Block(it.Block)
		start := t

		// Trigger instruction: the runtime system selects ISEs and
		// starts reconfigurations; its visible overhead extends the
		// software path.
		profile := tr.ProfileFor(it.Block, it.Phase)
		visible, err := rts.OnTrigger(blk, it.Phase, profile, t)
		if err != nil {
			return nil, fmt.Errorf("sim: iteration %d: %w", i, err)
		}
		t += visible
		rep.OverheadCycles += visible

		t += it.Prologue
		rep.SoftwareCycles += it.Prologue

		// Replay the merged single-core execution schedule.
		tracks := make(map[ise.KernelID]*track, len(it.Loads))
		for _, ev := range trace.Merge(it.Loads) {
			k := blk.Kernel(ev.Kernel)
			t += ev.Gap
			rep.SoftwareCycles += ev.Gap

			d := rts.Execute(k, t)
			rep.ModeExecs[d.Mode]++
			rep.ModeCycles[d.Mode] += d.Latency
			rep.KernelCycles += d.Latency
			rep.Executions++

			tk := tracks[ev.Kernel]
			if tk == nil {
				tk = &track{first: t - start}
				tracks[ev.Kernel] = tk
			} else {
				tk.gaps += t - tk.lastEnd
			}
			tk.n++
			t += d.Latency
			tk.lastEnd = t
		}

		// Monitored ground truth for the MPU.
		obs := make([]mpu.Observation, 0, len(tracks))
		for _, l := range it.Loads {
			tk, ok := tracks[l.Kernel]
			if !ok {
				continue
			}
			var tb arch.Cycles
			if tk.n > 1 {
				tb = tk.gaps / arch.Cycles(tk.n-1)
			}
			obs = append(obs, mpu.Observation{Kernel: l.Kernel, E: tk.n, TF: tk.first, TB: tb})
		}
		rts.OnBlockEnd(blk, it.Phase, profile, obs, t)

		rep.BlockCycles[it.Block] += t - start
		rep.BlockIterations[it.Block]++
		rep.Iterations++
	}
	rep.TotalCycles = t
	rep.Reconfig = rts.Controller().Stats()
	return rep, nil
}

// RunRISC replays the trace in pure RISC mode and returns the reference
// report for speedup computations.
func RunRISC(app *ise.Application, tr *trace.Trace) (*Report, error) {
	return Run(app, tr, core.NewRISCOnly())
}
