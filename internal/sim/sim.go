// Package sim is the architecture simulator: it replays a workload trace
// against a runtime system managing a multi-grained reconfigurable
// processor and accounts every cycle — software, kernel executions in their
// ECU-chosen modes, and visible runtime-system overhead. It substitutes the
// authors' proprietary cycle-accurate instruction-set simulator; the
// quantities the paper's experiments observe (execution time in cycles,
// execution-mode distribution, selection overhead) are exactly what it
// models.
package sim

import (
	"fmt"

	"mrts/internal/arch"
	"mrts/internal/core"
	"mrts/internal/ecu"
	"mrts/internal/fault"
	"mrts/internal/ise"
	"mrts/internal/mpu"
	"mrts/internal/obs"
	"mrts/internal/reconfig"
	"mrts/internal/trace"
)

// Report is the outcome of one simulation run.
type Report struct {
	// Policy is the runtime system's name.
	Policy string
	// Config is the fabric budget of the run.
	Config arch.Config
	// TotalCycles is the end-to-end execution time.
	TotalCycles arch.Cycles
	// SoftwareCycles counts prologue and inter-execution software time.
	SoftwareCycles arch.Cycles
	// KernelCycles counts cycles spent inside kernel executions.
	KernelCycles arch.Cycles
	// OverheadCycles is the runtime system's visible selection overhead.
	OverheadCycles arch.Cycles
	// ModeExecs / ModeCycles break kernel executions down by ECU mode.
	ModeExecs  [4]int64
	ModeCycles [4]arch.Cycles
	// BlockCycles aggregates time per functional block.
	BlockCycles map[string]arch.Cycles
	// BlockIterations counts iterations per functional block.
	BlockIterations map[string]int
	// Iterations is the total number of block iterations replayed.
	Iterations int
	// Executions is the total number of kernel executions replayed.
	Executions int64
	// Reconfig summarises the reconfiguration controller's activity.
	Reconfig reconfig.Stats
	// Fault summarises fault injection and the runtime system's
	// reaction; all-zero (and omitted from the wire encoding) for
	// fault-free runs.
	Fault FaultStats
	// Forecast summarises the MPU's forecast accuracy: per-trigger and
	// total absolute execution-count error of the forecasts the selector
	// actually saw. Zero for policies without a predictor (static
	// baselines, RISC mode) and for runs with correction disabled.
	Forecast mpu.ErrorReport
}

// FaultStats aggregates fault activity of one run: what the fault engine
// did to the fabric (from reconfig.Stats) and how the runtime system
// reacted (from core.Stats).
type FaultStats struct {
	// Events counts fabric fault events applied (failures, outages,
	// recoveries — corruptions are consumed by the configuration port
	// and show up as CRCFailures instead).
	Events int64
	// UnitsFailed / UnitsRecovered count containers lost / returned.
	UnitsFailed    int64
	UnitsRecovered int64
	// CRCFailures / Retries / RetryCycles mirror the configuration
	// port's corruption handling.
	CRCFailures int64
	Retries     int64
	RetryCycles arch.Cycles
	// Reselections / Invalidations / Degradations mirror the runtime
	// system's reaction (zero for static systems, which cannot react).
	Reselections  int64
	Invalidations int64
	Degradations  int64
}

// IsZero reports whether no fault activity occurred.
func (f FaultStats) IsZero() bool { return f == FaultStats{} }

// Speedup returns how much faster this run is than the reference run.
func (r *Report) Speedup(reference *Report) float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return float64(reference.TotalCycles) / float64(r.TotalCycles)
}

// ModeShare returns the fraction of executions dispatched in the mode.
func (r *Report) ModeShare(m ecu.Mode) float64 {
	if r.Executions == 0 {
		return 0
	}
	return float64(r.ModeExecs[m]) / float64(r.Executions)
}

// Options parameterise a simulation run beyond workload and policy. The
// zero value is the plain fault-free, unreserved run.
type Options struct {
	// ReservePRC / ReserveCG shrink the fabric for the whole run
	// (competing tasks, paper Section 1).
	ReservePRC int
	ReserveCG  int
	// Faults is the fault schedule to interleave with the trace (nil for
	// the benign scenario). The schedule is immutable and may be shared
	// across concurrent runs; each run replays it through its own engine
	// cursor.
	Faults *fault.Schedule
	// Observer, when non-nil, receives the run's decision-trace events
	// (MPU corrections, selector claims, ECU dispatches, reconfiguration
	// port activity, fault deliveries, cache traffic). The observer is
	// strictly a tap: a traced run's Report is byte-identical to an
	// untraced one.
	Observer *obs.Recorder
}

// Run replays the trace against the runtime system. The runtime system is
// Reset first, so a Run is reproducible on a reused policy instance.
func Run(app *ise.Application, tr *trace.Trace, rts core.RuntimeSystem) (*Report, error) {
	return RunOpts(app, tr, rts, Options{})
}

// RunReserved replays the trace with part of the fabric reserved by
// competing tasks for the whole run (paper Section 1: the reconfigurable
// fabric is shared among various tasks). The reservation is applied after
// the policy's Reset, before the first trigger instruction.
func RunReserved(app *ise.Application, tr *trace.Trace, rts core.RuntimeSystem, reservePRC, reserveCG int) (*Report, error) {
	return RunOpts(app, tr, rts, Options{ReservePRC: reservePRC, ReserveCG: reserveCG})
}

// RunOpts replays the trace under the given options. Fault events are
// delivered at trigger instructions and between kernel executions — the
// points where the modelled hardware raises its fault interrupts — and a
// fault never aborts the run: affected kernels degrade through the ECU
// fallback chain, and a reacting runtime system re-selects over the
// surviving fabric.
func RunOpts(app *ise.Application, tr *trace.Trace, rts core.RuntimeSystem, opts Options) (*Report, error) {
	s, err := NewStepper(app, tr, rts, opts)
	if err != nil {
		return nil, err
	}
	for !s.Done() {
		if err := s.Step(); err != nil {
			return nil, err
		}
	}
	return s.Finish(), nil
}

// Stepper replays a trace one functional-block iteration at a time. It is
// the single replay implementation underneath RunOpts — a monolithic run
// is NewStepper followed by Step until Done and Finish — and the primitive
// the vfabric hypervisor interleaves to run K tenants against one shared
// fabric clock: between two Steps a tenant is *drained* (no execution in
// flight), which is exactly when the hypervisor may repartition its
// vFabric or migrate its configured data paths.
type Stepper struct {
	app  *ise.Application
	tr   *trace.Trace
	rts  core.RuntimeSystem
	opts Options

	ctrl   *reconfig.Controller
	eng    *fault.Engine
	fh     core.FaultHandler
	reacts bool

	rep  *Report
	t    arch.Cycles
	next int

	// Per-Step scratch, reused across iterations: the kernel-tracking map
	// and its arena, and the observation batch handed to OnBlockEnd. The
	// runtime-system contract is that OnBlockEnd consumes the observations
	// synchronously (the MPU copies what it keeps), so the slice can be
	// recycled next Step.
	tracks   map[ise.KernelID]*track
	trackBuf []track
	obsvBuf  []mpu.Observation
}

// NewStepper validates the trace, resets the runtime system, applies the
// reservation, installs the fault verifier and observer, and positions the
// stepper before the first iteration. It performs exactly the setup
// RunOpts performs, so a Stepper-driven run is byte-identical to a
// monolithic one.
func NewStepper(app *ise.Application, tr *trace.Trace, rts core.RuntimeSystem, opts Options) (*Stepper, error) {
	if err := tr.Validate(app); err != nil {
		return nil, err
	}
	rts.Reset()
	if opts.ReservePRC > 0 || opts.ReserveCG > 0 {
		if err := rts.Controller().Reserve(opts.ReservePRC, opts.ReserveCG); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	ctrl := rts.Controller()
	var eng *fault.Engine
	if opts.Faults != nil {
		eng = opts.Faults.Engine()
		ctrl.SetVerifier(eng)
	} else {
		// Reset cleared any previous verifier; be explicit anyway so a
		// reused policy instance never replays stale faults.
		ctrl.SetVerifier(nil)
	}
	// Install the decision-trace observer (or, explicitly, none — same
	// stale-state reasoning as the verifier). Runtime systems with their
	// own recording sites get it via the optional interface; static
	// policies still trace reconfiguration-port activity through the
	// controller.
	if so, ok := rts.(interface{ SetObserver(*obs.Recorder) }); ok {
		so.SetObserver(opts.Observer)
	} else {
		ctrl.SetObserver(opts.Observer)
	}
	if opts.Observer != nil {
		cfg := rts.Controller().Config()
		opts.Observer.Record(obs.Event{
			Source: obs.SourceSim, Kind: obs.KindRun,
			Detail: fmt.Sprintf("policy=%s prc=%d cg=%d", rts.Name(), cfg.NPRC, cfg.NCG),
		})
	}
	fh, reacts := rts.(core.FaultHandler)
	return &Stepper{
		app:    app,
		tr:     tr,
		rts:    rts,
		opts:   opts,
		ctrl:   ctrl,
		eng:    eng,
		fh:     fh,
		reacts: reacts,
		rep: &Report{
			Policy:          rts.Name(),
			Config:          rts.Controller().Config(),
			BlockCycles:     make(map[string]arch.Cycles),
			BlockIterations: make(map[string]int),
		},
	}, nil
}

// Done reports whether every iteration has been replayed.
func (s *Stepper) Done() bool { return s.next >= len(s.tr.Iterations) }

// Now returns the run's local clock: the end time of the last replayed
// iteration (0 before the first Step).
func (s *Stepper) Now() arch.Cycles { return s.t }

// Remaining returns the number of iterations not yet replayed — the
// demand signal the vfabric hypervisor repartitions on.
func (s *Stepper) Remaining() int { return len(s.tr.Iterations) - s.next }

// RTS exposes the runtime system the stepper drives (the hypervisor
// reaches its reconfiguration controller through it between Steps).
func (s *Stepper) RTS() core.RuntimeSystem { return s.rts }

// AddOverhead charges extra visible runtime-system overhead between
// iterations, advancing the local clock. The vfabric hypervisor uses it
// for repartition work performed on the tenant's critical path; a plain
// RunOpts run never calls it.
func (s *Stepper) AddOverhead(c arch.Cycles) {
	if c <= 0 {
		return
	}
	s.t += c
	s.rep.OverheadCycles += c
}

type track struct {
	first   arch.Cycles
	lastEnd arch.Cycles
	gaps    arch.Cycles
	n       int64
}

// deliver applies the container fault events due at `now` to the
// reconfiguration controller and notifies the runtime system once per
// batch; it returns the visible re-selection overhead.
func (s *Stepper) deliver(now arch.Cycles) (arch.Cycles, error) {
	if s.eng == nil {
		return 0, nil
	}
	events := s.eng.Next(now)
	if len(events) == 0 {
		return 0, nil
	}
	// The fault strikes at `now`; the controller's clock may still sit
	// at its last Advance. Move it forward before applying so the
	// controller's own trace events carry the delivery time. Nothing in
	// the fault application reads the clock, and every runtime system
	// re-advances to `now` on its next call, so this cannot change the
	// simulated outcome.
	s.ctrl.Advance(now)
	for _, ev := range events {
		if s.opts.Observer != nil {
			s.opts.Observer.Record(obs.Event{
				Cycle: now, Source: obs.SourceSim, Kind: obs.KindFault,
				Fabric: ev.Fabric.String(), Detail: ev.Kind.String(),
			})
		}
		switch ev.Kind {
		case fault.PermanentFail:
			s.ctrl.FailUnit(ev.Fabric, true)
		case fault.TransientDown:
			s.ctrl.FailUnit(ev.Fabric, false)
		case fault.Recover:
			s.ctrl.RecoverUnit(ev.Fabric)
		}
	}
	s.rep.Fault.Events += int64(len(events))
	lost := s.ctrl.TakeInvalidated()
	if !s.reacts {
		return 0, nil
	}
	visible, err := s.fh.OnFault(lost, now)
	if err != nil {
		return 0, fmt.Errorf("sim: fault reaction: %w", err)
	}
	return visible, nil
}

// Step replays exactly one functional-block iteration: fault delivery,
// the trigger instruction, the prologue, the merged execution schedule,
// and the block-end observation feedback.
func (s *Stepper) Step() error {
	if s.Done() {
		return fmt.Errorf("sim: step past the end of the trace")
	}
	i := s.next
	it := &s.tr.Iterations[i]
	blk := s.app.Block(it.Block)
	rep := s.rep
	t := s.t
	start := t

	// Fault events that struck since the last delivery point are
	// applied before the trigger instruction sees the fabric.
	fv, err := s.deliver(t)
	if err != nil {
		return err
	}
	t += fv
	rep.OverheadCycles += fv

	// Trigger instruction: the runtime system selects ISEs and
	// starts reconfigurations; its visible overhead extends the
	// software path.
	profile := s.tr.ProfileFor(it.Block, it.Phase)
	visible, err := s.rts.OnTrigger(blk, it.Phase, profile, t)
	if err != nil {
		return fmt.Errorf("sim: iteration %d: %w", i, err)
	}
	t += visible
	rep.OverheadCycles += visible

	t += it.Prologue
	rep.SoftwareCycles += it.Prologue

	// Replay the merged single-core execution schedule (memoized on the
	// trace — identical for every run over the same workload).
	if s.tracks == nil {
		s.tracks = make(map[ise.KernelID]*track, len(it.Loads))
	} else {
		clear(s.tracks)
	}
	// The arena must never reallocate mid-loop (the map holds pointers
	// into it); one entry per load is an upper bound on distinct kernels.
	if cap(s.trackBuf) < len(it.Loads) {
		s.trackBuf = make([]track, 0, len(it.Loads))
	}
	s.trackBuf = s.trackBuf[:0]
	tracks := s.tracks
	for _, ev := range s.tr.MergedLoads(i) {
		k := blk.Kernel(ev.Kernel)
		t += ev.Gap
		rep.SoftwareCycles += ev.Gap

		fv, err := s.deliver(t)
		if err != nil {
			return err
		}
		t += fv
		rep.OverheadCycles += fv

		d := s.rts.Execute(k, t)
		rep.ModeExecs[d.Mode]++
		rep.ModeCycles[d.Mode] += d.Latency
		rep.KernelCycles += d.Latency
		rep.Executions++

		tk := tracks[ev.Kernel]
		if tk == nil {
			s.trackBuf = append(s.trackBuf, track{first: t - start})
			tk = &s.trackBuf[len(s.trackBuf)-1]
			tracks[ev.Kernel] = tk
		} else {
			tk.gaps += t - tk.lastEnd
		}
		tk.n++
		t += d.Latency
		tk.lastEnd = t
	}

	// Monitored ground truth for the MPU.
	obsv := s.obsvBuf[:0]
	for _, l := range it.Loads {
		tk, ok := tracks[l.Kernel]
		if !ok {
			continue
		}
		var tb arch.Cycles
		if tk.n > 1 {
			tb = tk.gaps / arch.Cycles(tk.n-1)
		}
		obsv = append(obsv, mpu.Observation{Kernel: l.Kernel, E: tk.n, TF: tk.first, TB: tb})
	}
	s.rts.OnBlockEnd(blk, it.Phase, profile, obsv, t)
	s.obsvBuf = obsv[:0]

	rep.BlockCycles[it.Block] += t - start
	rep.BlockIterations[it.Block]++
	rep.Iterations++
	s.t = t
	s.next = i + 1
	return nil
}

// Finish seals the report: total time and the controller's and runtime
// system's final counters. Call it once, after Done; the returned Report
// is owned by the caller.
func (s *Stepper) Finish() *Report {
	rep := s.rep
	rep.TotalCycles = s.t
	rep.Reconfig = s.rts.Controller().Stats()
	rep.Fault.UnitsFailed = rep.Reconfig.UnitsFailed
	rep.Fault.UnitsRecovered = rep.Reconfig.UnitsRecovered
	rep.Fault.CRCFailures = rep.Reconfig.CRCFailures
	rep.Fault.Retries = rep.Reconfig.Retries
	rep.Fault.RetryCycles = rep.Reconfig.RetryCycles
	if cs, ok := s.rts.(interface{ Stats() core.Stats }); ok {
		st := cs.Stats()
		rep.Fault.Reselections = st.Reselections
		rep.Fault.Invalidations = st.Invalidations
		rep.Fault.Degradations = st.Degradations
	}
	if fe, ok := s.rts.(interface{ ForecastErrors() mpu.ErrorReport }); ok {
		rep.Forecast = fe.ForecastErrors()
	}
	return rep
}

// RunRISC replays the trace in pure RISC mode and returns the reference
// report for speedup computations.
func RunRISC(app *ise.Application, tr *trace.Trace) (*Report, error) {
	return Run(app, tr, core.NewRISCOnly())
}
