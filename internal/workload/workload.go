// Package workload produces the traces the experiments replay: it runs the
// simplified H.264 encoder (internal/h264) over deterministic synthetic
// video (internal/video) and converts the per-frame, per-functional-block
// kernel invocation counts into a trace (internal/trace) against the ISE
// library's application model (internal/iselib). The content dependence of
// the counts — moving objects, noise, scene cuts — is what drives the
// paper's run-time effects.
package workload

import (
	"fmt"

	"mrts/internal/arch"
	"mrts/internal/h264"
	"mrts/internal/ise"
	"mrts/internal/iselib"
	"mrts/internal/trace"
	"mrts/internal/video"
)

// OracleProfileSeed is a ProfileSeed sentinel requesting an oracle profile
// (profiling on the deployment content) without having to know the
// effective deployment seed. Setting ProfileSeed equal to Seed does the
// same when Seed is explicit, but Seed's own zero-default (0 means 1)
// makes "ProfileSeed: 0, Seed: 0" mean a *separate* profiling sequence —
// this sentinel is the unambiguous spelling.
const OracleProfileSeed = ^uint64(0)

// Options configure a workload build.
//
// Zero-value convention: a zero field means "use the documented default",
// never "literally zero". Fields for which a real zero is meaningful
// (h264.Config.QP, SkipThreshold, SearchRange; PhasedOptions.Divergence)
// accept a negative value as the explicit-zero spelling, and ProfileSeed
// has the OracleProfileSeed sentinel. Canonical resolves every sentinel
// to its effective value.
type Options struct {
	// Width, Height are the frame dimensions (default QCIF, 176x144,
	// which puts the functional-block windows in the paper's regime of a
	// few multiples of the FG reconfiguration time).
	Width, Height int
	// Frames is the sequence length (default 16, as in Fig. 2).
	Frames int
	// Seed drives the synthetic video generator (default 1; 0 is not a
	// usable seed — it selects the default).
	Seed uint64
	// ProfileSeed drives the separate profiling sequence from which the
	// static trigger-instruction values are derived — the binary's
	// forecasts come from an offline profiling run on different content
	// than the deployment input (paper Section 4). Default Seed + 1000.
	// Set ProfileSeed == Seed (or the OracleProfileSeed sentinel) to
	// profile on the deployment content (oracle forecasts).
	ProfileSeed uint64
	// Video tunes the synthetic content.
	Video video.Options
	// Encoder tunes the encoder.
	Encoder h264.Config
	// Phased, when non-nil, selects the dynamic control-flow generator
	// (Markov regime walks over a synthetic application) instead of the
	// encoder pipeline. Width/Height/Frames/Video/Encoder are unused
	// then; Seed drives both the structure and the deployment walk, and
	// ProfileSeed the profiling walk.
	Phased *PhasedOptions `json:"Phased,omitempty"`
}

func (o *Options) defaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	switch o.ProfileSeed {
	case OracleProfileSeed:
		o.ProfileSeed = o.Seed
	case 0:
		o.ProfileSeed = o.Seed + 1000
	}
	if o.Phased != nil {
		// The encoder pipeline is not involved; leave its knobs alone so
		// the canonical form does not invent irrelevant detail.
		return
	}
	if o.Width == 0 {
		o.Width = 176
	}
	if o.Height == 0 {
		o.Height = 144
	}
	if o.Frames == 0 {
		o.Frames = 16
	}
	// Experiment defaults: a moderate QP keeps enough coded blocks for
	// the entropy-coding and reconstruction kernels, and the skip
	// threshold makes motion-estimation effort content-dependent.
	if o.Encoder.QP == 0 {
		o.Encoder.QP = 24
	}
	if o.Encoder.SkipThreshold == 0 {
		o.Encoder.SkipThreshold = 1400
	}
}

// Canonical returns the options with every default applied and every
// sentinel resolved. Two Options values that build the same workload have
// the same Canonical form, which is what content-addressed caches (the
// mrts-serve result and workload caches) hash instead of the raw user
// input; Canonical is idempotent, so re-canonicalising a cached key is
// harmless.
func (o Options) Canonical() Options {
	o.defaults()
	if o.Phased != nil {
		// Only the fields the phased generator reads participate in the
		// identity; the pointer is deep-copied so the caller's options
		// are never aliased by the cache key.
		p := o.Phased.Canonical()
		return Options{Seed: o.Seed, ProfileSeed: o.ProfileSeed, Phased: &p}
	}
	o.Video = o.Video.Canonical()
	o.Encoder = o.Encoder.Canonical()
	return o
}

// Result bundles everything a workload build produces.
type Result struct {
	App    *ise.Application
	Trace  *trace.Trace
	Frames []*h264.FrameStats
}

// Build runs the encoder and assembles the trace. The static trigger
// values (tr.Profile) are derived from a RISC-mode profiling pass over a
// *separate* profiling sequence (ProfileSeed), as in the paper: the
// programmer embeds numbers from offline profiling, the MPU corrects them
// at run time when the deployment content behaves differently.
func Build(opts Options) (*Result, error) {
	opts.defaults()
	if opts.Phased != nil {
		return buildPhased(opts)
	}
	app, err := iselib.NewApplication()
	if err != nil {
		return nil, err
	}
	tr, frames, err := encodeTrace(app, opts, opts.Seed)
	if err != nil {
		return nil, err
	}
	if opts.ProfileSeed == opts.Seed {
		if err := tr.BuildProfile(app); err != nil {
			return nil, err
		}
	} else {
		profOpts := opts
		profOpts.Video.SceneCuts = nil // a plain profiling sequence
		profTr, _, err := encodeTrace(app, profOpts, opts.ProfileSeed)
		if err != nil {
			return nil, err
		}
		if err := profTr.BuildProfile(app); err != nil {
			return nil, err
		}
		tr.Profile = profTr.Profile
	}
	if err := tr.Validate(app); err != nil {
		return nil, err
	}
	return &Result{App: app, Trace: tr, Frames: frames}, nil
}

// encodeTrace encodes one synthetic sequence and returns its iterations.
func encodeTrace(app *ise.Application, opts Options, seed uint64) (*trace.Trace, []*h264.FrameStats, error) {
	gen, err := video.NewGenerator(opts.Width, opts.Height, seed, opts.Video)
	if err != nil {
		return nil, nil, err
	}
	enc, err := h264.NewEncoder(opts.Width, opts.Height, opts.Encoder)
	if err != nil {
		return nil, nil, err
	}
	tr := &trace.Trace{App: app.Name}
	var frames []*h264.FrameStats
	for f := 0; f < opts.Frames; f++ {
		st, err := enc.EncodeFrame(gen.Next())
		if err != nil {
			return nil, nil, fmt.Errorf("workload: frame %d: %w", f, err)
		}
		frames = append(frames, st)
		phase := "P"
		if st.Inter == 0 && st.Skip == 0 {
			phase = "I"
		}
		for _, fb := range h264.FunctionalBlocks {
			it := trace.Iteration{
				Block:    fb.ID,
				Seq:      f,
				Phase:    phase,
				Prologue: iselib.BlockPrologue(fb.ID),
			}
			for _, kname := range fb.Kernels {
				e := st.Counts[kname]
				if e <= 0 {
					continue
				}
				it.Loads = append(it.Loads, trace.KernelLoad{
					Kernel: ise.KernelID(kname),
					E:      e,
					GapSW:  iselib.SoftwareGap(kname),
				})
			}
			if len(it.Loads) > 0 {
				tr.Iterations = append(tr.Iterations, it)
			}
		}
	}
	return tr, frames, nil
}

// MustBuild panics on error (static inputs cannot fail at runtime).
func MustBuild(opts Options) *Result {
	r, err := Build(opts)
	if err != nil {
		panic(err)
	}
	return r
}

// Default builds the standard experiment workload: 16 QCIF frames with
// scene cuts at frames 5 and 11, matching the 16-frame excerpt of Fig. 2
// (different scenes exercise different workload regimes).
func Default() *Result {
	return MustBuild(Options{
		Frames: 16,
		Video:  video.Options{SceneCuts: []int{5, 11}},
	})
}

// Small builds a reduced QCIF workload for fast unit tests.
func Small() *Result {
	return MustBuild(Options{
		Width:  176,
		Height: 144,
		Frames: 6,
		Video:  video.Options{SceneCuts: []int{3}},
	})
}

// Synthetic builds a workload over a generated application — nBlocks
// functional blocks of nKernels kernels with nISEs candidate ISEs each —
// and a pseudo-random trace of block iterations whose execution counts
// vary around the generated trigger values. It stress-tests the selector
// and simulator beyond the H.264 application (e.g. the paper's "up to 60
// ISEs per kernel" regime) and demonstrates that the runtime system is not
// tied to one workload.
func Synthetic(nBlocks, nKernels, nISEs, iterations int, seed uint64) (*Result, error) {
	if nBlocks <= 0 || nKernels <= 0 || nISEs <= 0 || iterations <= 0 {
		return nil, fmt.Errorf("workload: synthetic sizes must be positive")
	}
	rng := video.NewRNG(seed ^ 0x5EED)

	var blocks []*ise.FunctionalBlock
	baseTriggers := make(map[string][]ise.Trigger, nBlocks)
	for b := 0; b < nBlocks; b++ {
		id := fmt.Sprintf("sb%d", b)
		blk, triggers := iselib.GenerateBlock(id, nKernels, nISEs, seed+uint64(b)*104729)
		blocks = append(blocks, blk)
		baseTriggers[id] = triggers
	}
	app, err := ise.NewApplication("synthetic", blocks...)
	if err != nil {
		return nil, err
	}

	tr := &trace.Trace{App: app.Name}
	for it := 0; it < iterations; it++ {
		for _, blk := range blocks {
			iter := trace.Iteration{
				Block:    blk.ID,
				Seq:      it,
				Prologue: arch.Cycles(500 + rng.Intn(2000)),
			}
			for _, tg := range baseTriggers[blk.ID] {
				// Vary each kernel's count by up to +/-50% per
				// iteration.
				e := tg.E/2 + int64(rng.Intn(int(tg.E)))
				if e <= 0 {
					e = 1
				}
				iter.Loads = append(iter.Loads, trace.KernelLoad{
					Kernel: tg.Kernel,
					E:      e,
					GapSW:  arch.Cycles(8 + rng.Intn(24)),
				})
			}
			tr.Iterations = append(tr.Iterations, iter)
		}
	}
	if err := tr.BuildProfile(app); err != nil {
		return nil, err
	}
	if err := tr.Validate(app); err != nil {
		return nil, err
	}
	return &Result{App: app, Trace: tr}, nil
}
