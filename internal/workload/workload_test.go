package workload

import (
	"reflect"
	"testing"

	"mrts/internal/h264"
	"mrts/internal/ise"
	"mrts/internal/video"
)

func TestBuildSmall(t *testing.T) {
	w, err := Build(Options{Width: 64, Height: 48, Frames: 3})
	if err != nil {
		t.Fatal(err)
	}
	if w.App == nil || w.Trace == nil {
		t.Fatal("missing app or trace")
	}
	if len(w.Frames) != 3 {
		t.Errorf("frame stats = %d, want 3", len(w.Frames))
	}
	if err := w.Trace.Validate(w.App); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
}

func TestBuildProfilePerBlock(t *testing.T) {
	w := MustBuild(Options{Width: 64, Height: 48, Frames: 3})
	// Frame 0 is intra, later frames are inter: both program paths must
	// carry profiled trigger instructions for every block.
	for _, b := range w.App.Blocks {
		for _, phase := range []string{"I", "P"} {
			prof := w.Trace.ProfileFor(b.ID, phase)
			if len(prof) == 0 {
				t.Errorf("no profile triggers for block %s phase %s", b.ID, phase)
			}
			for _, tr := range prof {
				if tr.E <= 0 {
					t.Errorf("block %s trigger %s has E=%d", b.ID, tr.Kernel, tr.E)
				}
			}
		}
	}
}

func TestPhasesAssigned(t *testing.T) {
	w := MustBuild(Options{Width: 64, Height: 48, Frames: 3})
	for _, it := range w.Trace.Iterations {
		want := "P"
		if it.Seq == 0 {
			want = "I"
		}
		if it.Phase != want {
			t.Errorf("frame %d block %s phase = %q, want %q", it.Seq, it.Block, it.Phase, want)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	opts := Options{Width: 64, Height: 48, Frames: 3, Seed: 9}
	a := MustBuild(opts)
	b := MustBuild(opts)
	if !reflect.DeepEqual(a.Trace, b.Trace) {
		t.Error("identical options produced different traces")
	}
}

func TestBuildSeedMatters(t *testing.T) {
	a := MustBuild(Options{Width: 64, Height: 48, Frames: 3, Seed: 1})
	b := MustBuild(Options{Width: 64, Height: 48, Frames: 3, Seed: 2})
	if reflect.DeepEqual(a.Trace.Iterations, b.Trace.Iterations) {
		t.Error("different seeds produced identical traces")
	}
}

func TestIterationOrder(t *testing.T) {
	w := MustBuild(Options{Width: 64, Height: 48, Frames: 2})
	// Per frame: me, enc, dbf in pipeline order.
	var blocks []string
	for _, it := range w.Trace.Iterations {
		blocks = append(blocks, it.Block)
	}
	want := []string{"me", "enc", "dbf", "me", "enc", "dbf"}
	if !reflect.DeepEqual(blocks, want) {
		t.Errorf("iteration order = %v", blocks)
	}
}

func TestSceneCutChangesCounts(t *testing.T) {
	w := MustBuild(Options{
		Width: 64, Height: 48, Frames: 6,
		Video: video.Options{SceneCuts: []int{3}},
	})
	// The scene-cut frame forces widespread intra coding: the dbf filt
	// count jumps.
	var filt []int64
	for _, it := range w.Trace.Iterations {
		if it.Block != "dbf" {
			continue
		}
		var e int64
		for _, l := range it.Loads {
			if l.Kernel == ise.KernelID(h264.KernelFilt) {
				e = l.E
			}
		}
		filt = append(filt, e)
	}
	if len(filt) != 6 {
		t.Fatalf("filt counts = %v", filt)
	}
	if filt[3] <= filt[2] {
		t.Errorf("scene cut did not raise deblocking work: %v", filt)
	}
}

func TestDefaultAndSmall(t *testing.T) {
	s := Small()
	if len(s.Frames) != 6 {
		t.Errorf("Small() frames = %d", len(s.Frames))
	}
	if err := s.Trace.Validate(s.App); err != nil {
		t.Error(err)
	}
}

func TestGapsComeFromLibrary(t *testing.T) {
	w := MustBuild(Options{Width: 64, Height: 48, Frames: 1})
	for _, it := range w.Trace.Iterations {
		for _, l := range it.Loads {
			if l.GapSW <= 0 {
				t.Errorf("kernel %s has no software gap", l.Kernel)
			}
		}
	}
}

func TestProfileFromSeparateSequence(t *testing.T) {
	// Default: profile triggers come from a different profiling sequence
	// and therefore differ from the deployment averages.
	w := MustBuild(Options{Width: 64, Height: 48, Frames: 4, Seed: 7})
	oracle := MustBuild(Options{Width: 64, Height: 48, Frames: 4, Seed: 7, ProfileSeed: 7})
	differs := false
	for key, ts := range w.Trace.Profile {
		ots := oracle.Trace.Profile[key]
		if len(ots) != len(ts) {
			differs = true
			break
		}
		for i := range ts {
			if ts[i].E != ots[i].E {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("separate profiling sequence produced identical forecasts")
	}
	// ProfileSeed == Seed profiles on the deployment content itself.
	if err := oracle.Trace.Validate(oracle.App); err != nil {
		t.Error(err)
	}
}

func TestSyntheticWorkload(t *testing.T) {
	w, err := Synthetic(2, 4, 12, 5, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.App.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(w.App.Blocks))
	}
	if err := w.Trace.Validate(w.App); err != nil {
		t.Fatal(err)
	}
	if len(w.Trace.Iterations) != 10 { // 5 iterations x 2 blocks
		t.Errorf("iterations = %d", len(w.Trace.Iterations))
	}
	for _, b := range w.App.Blocks {
		if len(w.Trace.ProfileFor(b.ID, "")) == 0 {
			t.Errorf("block %s has no profile", b.ID)
		}
	}
	// Determinism.
	w2, err := Synthetic(2, 4, 12, 5, 77)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w.Trace, w2.Trace) {
		t.Error("synthetic workload not deterministic")
	}
	if _, err := Synthetic(0, 1, 1, 1, 1); err == nil {
		t.Error("invalid sizes accepted")
	}
}
