package workload

import (
	"crypto/sha256"
	"encoding/json"
	"reflect"
	"testing"

	"mrts/internal/h264"
)

func phasedOpts(divergence float64) Options {
	return Options{Seed: 7, Phased: &PhasedOptions{Divergence: divergence}}
}

func TestPhasedBuildDeterministic(t *testing.T) {
	a := MustBuild(phasedOpts(0.8))
	for i := 0; i < 3; i++ {
		b := MustBuild(phasedOpts(0.8))
		if len(a.Trace.Iterations) != len(b.Trace.Iterations) {
			t.Fatalf("iteration counts differ: %d vs %d", len(a.Trace.Iterations), len(b.Trace.Iterations))
		}
		if !reflect.DeepEqual(a.Trace.Iterations, b.Trace.Iterations) {
			t.Fatal("repeat phased build produced a different trace")
		}
		if !reflect.DeepEqual(a.Trace.Profile, b.Trace.Profile) {
			t.Fatal("repeat phased build produced a different profile")
		}
	}
}

func TestPhasedSeedAndDivergenceMatter(t *testing.T) {
	base := MustBuild(phasedOpts(0.8))
	other := MustBuild(Options{Seed: 8, Phased: &PhasedOptions{Divergence: 0.8}})
	if reflect.DeepEqual(base.Trace.Iterations, other.Trace.Iterations) {
		t.Error("different seeds produced identical phased traces")
	}
	static := MustBuild(phasedOpts(-1)) // explicit zero divergence
	if reflect.DeepEqual(base.Trace.Iterations, static.Trace.Iterations) {
		t.Error("divergence has no effect on the trace")
	}
}

func TestPhasedZeroDivergenceIsStatic(t *testing.T) {
	r := MustBuild(phasedOpts(-1))
	// With no regime switches, no shifts, and no noise every iteration of
	// a block repeats the first one's counts exactly.
	first := map[string][]int64{}
	for _, it := range r.Trace.Iterations {
		var counts []int64
		for _, ld := range it.Loads {
			counts = append(counts, ld.E)
		}
		if prev, ok := first[it.Block]; !ok {
			first[it.Block] = counts
		} else if !reflect.DeepEqual(prev, counts) {
			t.Fatalf("block %s: counts vary at zero divergence: %v vs %v", it.Block, prev, counts)
		}
	}
}

func TestPhasedDivergenceVariesCounts(t *testing.T) {
	r := MustBuild(phasedOpts(1))
	varies := false
	first := map[string][]int64{}
	for _, it := range r.Trace.Iterations {
		var counts []int64
		for _, ld := range it.Loads {
			counts = append(counts, ld.E)
		}
		if prev, ok := first[it.Block]; !ok {
			first[it.Block] = counts
		} else if !reflect.DeepEqual(prev, counts) {
			varies = true
		}
	}
	if !varies {
		t.Error("full divergence produced a static trace")
	}
}

func TestPhasedProfileSharesStructure(t *testing.T) {
	r := MustBuild(phasedOpts(0.8))
	if len(r.Trace.Profile) == 0 {
		t.Fatal("no profile built")
	}
	// The profile (from the separate ProfileSeed walk) must cover exactly
	// the blocks the deployment trace iterates.
	blocks := map[string]bool{}
	for _, it := range r.Trace.Iterations {
		blocks[it.Block] = true
	}
	for b := range blocks {
		if _, ok := r.Trace.Profile[b]; !ok {
			t.Errorf("block %s has no profile entry", b)
		}
	}
	// An oracle build (ProfileSeed == Seed) differs from the offline one.
	oracle := MustBuild(Options{Seed: 7, ProfileSeed: 7, Phased: &PhasedOptions{Divergence: 0.8}})
	if reflect.DeepEqual(r.Trace.Profile, oracle.Trace.Profile) {
		t.Error("offline profile identical to the oracle profile")
	}
	if !reflect.DeepEqual(r.Trace.Iterations, oracle.Trace.Iterations) {
		t.Error("profiling choice changed the deployment trace")
	}
}

func TestOracleProfileSeedSentinel(t *testing.T) {
	c := Options{Seed: 7, ProfileSeed: OracleProfileSeed}.Canonical()
	if c.ProfileSeed != 7 {
		t.Errorf("sentinel resolved to %d, want the deployment seed 7", c.ProfileSeed)
	}
	// The sentinel works even when Seed itself is defaulted — the case
	// ProfileSeed == Seed cannot express.
	c = Options{ProfileSeed: OracleProfileSeed}.Canonical()
	if c.ProfileSeed != c.Seed {
		t.Errorf("sentinel with defaulted seed: ProfileSeed %d != Seed %d", c.ProfileSeed, c.Seed)
	}
	oracle := MustBuild(Options{Seed: 7, ProfileSeed: OracleProfileSeed, Phased: &PhasedOptions{Divergence: 0.8}})
	direct := MustBuild(Options{Seed: 7, ProfileSeed: 7, Phased: &PhasedOptions{Divergence: 0.8}})
	if !reflect.DeepEqual(oracle.Trace.Profile, direct.Trace.Profile) {
		t.Error("OracleProfileSeed build differs from ProfileSeed == Seed build")
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	cases := []Options{
		{},
		{Seed: 5, Encoder: h264.Config{QP: -5, SkipThreshold: -1, SearchRange: -2}},
		phasedOpts(0),
		phasedOpts(-1),
		{Seed: 3, ProfileSeed: OracleProfileSeed},
	}
	for i, o := range cases {
		once := o.Canonical()
		twice := once.Canonical()
		if !reflect.DeepEqual(once, twice) {
			t.Errorf("case %d: Canonical not idempotent:\n once: %+v\ntwice: %+v", i, once, twice)
		}
	}
}

// Every negative spelling of an explicit zero must land on one canonical
// cache key, and the sentinel must reach the encoder as a real zero.
func TestEncoderSentinelsCanonicalise(t *testing.T) {
	a := Options{Encoder: h264.Config{QP: -1, SkipThreshold: -7}}.Canonical()
	b := Options{Encoder: h264.Config{QP: -9, SkipThreshold: -2}}.Canonical()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("negative sentinel spellings canonicalise differently:\n%+v\n%+v", a, b)
	}
	if a.Encoder.QP != -1 || a.Encoder.SkipThreshold != -1 {
		t.Errorf("canonical sentinel form = %+v, want -1s", a.Encoder)
	}
	def := Options{}.Canonical()
	if def.Encoder.QP != 24 || def.Encoder.SkipThreshold != 1400 {
		t.Errorf("zero still selects the defaults: %+v", def.Encoder)
	}
}

func TestCanonicalDoesNotAliasPhased(t *testing.T) {
	o := phasedOpts(0.8)
	c := o.Canonical()
	if c.Phased == o.Phased {
		t.Fatal("Canonical aliased the caller's PhasedOptions")
	}
	c.Phased.Divergence = 0.1
	if o.Phased.Divergence != 0.8 {
		t.Error("mutating the canonical form changed the caller's options")
	}
}

// TestCanonicalHashStability pins the cache key of the standard regular
// workload: the canonical JSON — and hence every content-addressed cache
// entry keyed on it — must not change when options grow new fields, which
// is why Phased is a pointer with omitempty.
func TestCanonicalHashStability(t *testing.T) {
	b, err := json.Marshal(Options{}.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	const want = "e43a3f62ec419e50d810115c1cc719d6afe40541cd1e9b8bdbf5e1be745a8108"
	if got := shaHex(b); got != want {
		t.Errorf("canonical JSON of the default options changed:\n%s\nhash %s, want %s\n"+
			"(this invalidates every mrts-serve cache key; bump the pinned hash only "+
			"if the workload identity really changed)", b, got, want)
	}
}

func shaHex(b []byte) string {
	s := sha256.Sum256(b)
	const hex = "0123456789abcdef"
	out := make([]byte, 0, 64)
	for _, c := range s {
		out = append(out, hex[c>>4], hex[c&0xf])
	}
	return string(out)
}
