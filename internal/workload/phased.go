package workload

import (
	"fmt"

	"mrts/internal/arch"
	"mrts/internal/ise"
	"mrts/internal/iselib"
	"mrts/internal/trace"
	"mrts/internal/video"
)

// PhasedOptions configure the dynamic control-flow workload generator: a
// synthetic application whose per-iteration kernel execution counts follow
// a Markov chain over a small set of control-flow regimes ("phases"), with
// data-dependent noise and occasional abrupt mid-iteration regime shifts.
// It models branchy, input-driven codes — the regime the static profile
// averages over is rarely the regime any single iteration runs in, which
// is exactly the workload class where forecast quality separates the MPU
// predictors (see exp.Phase).
//
// The regime definitions and the application structure derive from the
// deployment Seed alone, so a profiling pass (ProfileSeed) sees the same
// regimes but walks them in a different order with different noise — the
// paper's offline-profiling setup transplanted to dynamic control flow.
type PhasedOptions struct {
	// Blocks, Kernels, ISEs size the generated application (defaults
	// 3 functional blocks of 4 kernels with 4 candidate ISEs each).
	Blocks  int
	Kernels int
	ISEs    int
	// Rounds is the number of iterations generated per block (default 48).
	Rounds int
	// Phases is the number of control-flow regimes per block (default 3).
	Phases int
	// Divergence in [0, 1] scales how dynamic the control flow is: the
	// regime-switch probability, the data-dependent count noise, and the
	// mid-iteration shift probability all grow with it. 0 selects the
	// default (0.5); pass a negative value for an explicitly static
	// workload (as with h264.Config, the canonical form folds every
	// negative spelling to -1 so re-canonicalising cannot resurrect the
	// default).
	Divergence float64
}

func (p *PhasedOptions) defaults() {
	if p.Blocks == 0 {
		p.Blocks = 3
	}
	if p.Kernels == 0 {
		p.Kernels = 4
	}
	if p.ISEs == 0 {
		p.ISEs = 4
	}
	if p.Rounds == 0 {
		p.Rounds = 48
	}
	if p.Phases == 0 {
		p.Phases = 3
	}
	// Zero-value sentinel, documented on the field: 0 means "default",
	// negative means "explicitly zero divergence" and stays negative so
	// that canonicalising twice cannot turn it back into the default.
	if p.Divergence == 0 {
		p.Divergence = 0.5
	} else if p.Divergence < 0 {
		p.Divergence = -1
	} else if p.Divergence > 1 {
		p.Divergence = 1
	}
}

// divergence resolves the explicit-zero sentinel to the effective value.
func (p PhasedOptions) divergence() float64 {
	if p.Divergence < 0 {
		return 0
	}
	return p.Divergence
}

// Canonical returns the options with every default applied; the explicit-
// zero divergence sentinel stays -1 (resolved at build time).
func (p PhasedOptions) Canonical() PhasedOptions {
	p.defaults()
	return p
}

// regime is one control-flow phase of a block: a per-kernel multiplier on
// the block's base execution counts, in fixed-point thousandths (the
// generator is integer-only for cross-platform determinism).
type regimeVec []int64

// phasedStructure holds everything derived from the deployment seed alone:
// the generated application, the per-block profile triggers, and the
// per-block regime tables. Profiling and deployment traces share one
// structure so the profile describes the same program.
type phasedStructure struct {
	app      *ise.Application
	blocks   []*ise.FunctionalBlock
	triggers map[string][]ise.Trigger
	regimes  map[string][]regimeVec
}

func phasedApp(seed uint64, p PhasedOptions) (*phasedStructure, error) {
	var blocks []*ise.FunctionalBlock
	triggers := make(map[string][]ise.Trigger, p.Blocks)
	for b := 0; b < p.Blocks; b++ {
		id := fmt.Sprintf("pb%d", b)
		blk, tg := iselib.GenerateBlock(id, p.Kernels, p.ISEs, seed+uint64(b)*104729)
		blocks = append(blocks, blk)
		triggers[id] = tg
	}
	app, err := ise.NewApplication("phased", blocks...)
	if err != nil {
		return nil, err
	}
	// Regime multipliers come from a structural RNG stream separate from
	// the block generator so that resizing one knob does not reshuffle the
	// other. Each regime scales each kernel by 0.25x .. 2.75x.
	rng := video.NewRNG(seed ^ 0xFA5ED)
	regimes := make(map[string][]regimeVec, p.Blocks)
	for _, blk := range blocks {
		vecs := make([]regimeVec, p.Phases)
		for ph := range vecs {
			v := make(regimeVec, p.Kernels)
			for k := range v {
				v[k] = int64(250 + rng.Intn(2501))
			}
			vecs[ph] = v
		}
		regimes[blk.ID] = vecs
	}
	return &phasedStructure{app: app, blocks: blocks, triggers: triggers, regimes: regimes}, nil
}

// phasedTrace walks the regime Markov chain with content drawn from
// contentSeed and emits one trace. The iteration's Phase field is left
// empty on purpose: the runtime system is not told which regime it is in —
// inferring that from observations is the phase-aware predictors' job.
func phasedTrace(s *phasedStructure, p PhasedOptions, contentSeed uint64) *trace.Trace {
	rng := video.NewRNG(contentSeed ^ 0xD1CE)
	// Fixed-point probabilities per thousand, all proportional to the
	// divergence so an explicitly static workload really is static.
	// The switch probability caps at 25% so regimes keep a dwell time of a
	// few iterations even at full divergence — the workload stays *phased*
	// rather than collapsing into white noise, where no predictor could
	// beat the global average.
	d := p.divergence()
	switchP := int(250 * d)
	shiftP := int(350 * d)
	noiseP := int(400 * d) // +/- noise amplitude, thousandths

	cur := make(map[string]int, len(s.blocks))
	tr := &trace.Trace{App: s.app.Name}
	for round := 0; round < p.Rounds; round++ {
		for _, blk := range s.blocks {
			vecs := s.regimes[blk.ID]
			// Markov step: mostly stay, sometimes jump to another regime.
			if len(vecs) > 1 && rng.Intn(1000) < switchP {
				next := rng.Intn(len(vecs) - 1)
				if next >= cur[blk.ID] {
					next++
				}
				cur[blk.ID] = next
			}
			from := vecs[cur[blk.ID]]
			to := from
			blend := int64(1000) // fraction of the iteration spent in `from`
			if len(vecs) > 1 && rng.Intn(1000) < shiftP {
				// Abrupt mid-iteration shift: the counts blend the old
				// and new regime by where in the iteration it struck.
				next := rng.Intn(len(vecs) - 1)
				if next >= cur[blk.ID] {
					next++
				}
				to = vecs[next]
				cur[blk.ID] = next
				blend = int64(100 + rng.Intn(801))
			}
			iter := trace.Iteration{
				Block:    blk.ID,
				Seq:      round,
				Prologue: arch.Cycles(500 + rng.Intn(2000)),
			}
			for ki, tg := range s.triggers[blk.ID] {
				mult := (from[ki]*blend + to[ki]*(1000-blend)) / 1000
				e := tg.E * mult / 1000
				if noiseP > 0 {
					// Data-dependent iteration count: uniform noise of
					// +/- noiseP thousandths around the regime value.
					e += e * int64(rng.Intn(2*noiseP+1)-noiseP) / 1000
				}
				if e <= 0 {
					e = 1
				}
				iter.Loads = append(iter.Loads, trace.KernelLoad{
					Kernel: tg.Kernel,
					E:      e,
					GapSW:  arch.Cycles(8 + rng.Intn(24)),
				})
			}
			tr.Iterations = append(tr.Iterations, iter)
		}
	}
	return tr
}

// buildPhased builds a dynamic control-flow workload: structure from the
// deployment seed, the deployment walk from Seed, and the static profile
// from a separate ProfileSeed walk over the same structure (or an oracle
// profile when ProfileSeed == Seed, as in Build).
func buildPhased(opts Options) (*Result, error) {
	p := opts.Phased.Canonical()
	if p.Blocks < 0 || p.Kernels <= 0 || p.ISEs <= 0 || p.Rounds < 0 || p.Phases <= 0 {
		return nil, fmt.Errorf("workload: phased sizes must be positive")
	}
	s, err := phasedApp(opts.Seed, p)
	if err != nil {
		return nil, err
	}
	tr := phasedTrace(s, p, opts.Seed)
	if opts.ProfileSeed == opts.Seed {
		if err := tr.BuildProfile(s.app); err != nil {
			return nil, err
		}
	} else {
		profTr := phasedTrace(s, p, opts.ProfileSeed)
		if err := profTr.BuildProfile(s.app); err != nil {
			return nil, err
		}
		tr.Profile = profTr.Profile
	}
	if err := tr.Validate(s.app); err != nil {
		return nil, err
	}
	return &Result{App: s.app, Trace: tr}, nil
}
