package service

import (
	"bytes"
	"context"
	"testing"
	"time"

	"mrts/internal/arch"
	"mrts/internal/exp"
	"mrts/internal/service/api"
)

// TestPhaseFigJob pins the service's phase sweep to the offline harness:
// the job's rendered text must be byte-identical to what exp.Phase
// renders directly for the same seed and fabric.
func TestPhaseFigJob(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()

	want, err := exp.Phase(ctx, exp.DirectWorkloads(), arch.Config{NPRC: 2, NCG: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wantText bytes.Buffer
	want.Render(&wantText)

	spec := api.JobSpec{Type: api.JobFig, Fig: "phase"}
	st, err := c.Run(ctx, spec, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Fatalf("phase fig job %s: %s", st.State, st.Error)
	}
	if st.Result.Text != wantText.String() {
		t.Errorf("service phase fig differs from offline render:\n--- service ---\n%s--- offline ---\n%s",
			st.Result.Text, wantText.String())
	}
}

// The per-divergence phased workloads flow through the workload cache: a
// second identical job rebuilds nothing.
func TestPhaseFigUsesWorkloadCache(t *testing.T) {
	s, c := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()
	spec := api.JobSpec{Type: api.JobFig, Fig: "phase"}
	if _, err := c.Run(ctx, spec, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	misses := s.metrics.Counter("mrts_workload_cache_misses_total").Value()
	if misses == 0 {
		t.Fatal("first phase job built no workloads through the cache")
	}
	if _, err := c.Run(ctx, spec, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := s.metrics.Counter("mrts_workload_cache_misses_total").Value(); got != misses {
		t.Errorf("second phase job rebuilt workloads: misses %d -> %d", misses, got)
	}
}

func TestPhasedSpecValidation(t *testing.T) {
	base := api.JobSpec{
		Type: api.JobSim, Policy: "mrts", PRC: 1, CG: 1,
		Workload: api.WorkloadSpec{Phased: &api.PhasedSpec{Divergence: 0.5}},
	}
	if err := base.Validate(); err != nil {
		t.Errorf("phased sim spec rejected: %v", err)
	}
	for name, mutate := range map[string]func(*api.JobSpec){
		"oversized blocks":  func(s *api.JobSpec) { s.Workload.Phased.Blocks = api.MaxPhasedBlocks + 1 },
		"oversized rounds":  func(s *api.JobSpec) { s.Workload.Phased.Rounds = api.MaxPhasedRounds + 1 },
		"negative kernels":  func(s *api.JobSpec) { s.Workload.Phased.Kernels = -1 },
		"divergence over 1": func(s *api.JobSpec) { s.Workload.Phased.Divergence = 1.5 },
	} {
		s := base
		p := *base.Workload.Phased
		s.Workload.Phased = &p
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// A sim job on a phased workload runs end to end and surfaces the MPU
// forecast-error summary in its report.
func TestPhasedSimJobReportsForecast(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()
	spec := api.JobSpec{
		Type: api.JobSim, Policy: "mrts", PRC: 1, CG: 1,
		Workload: api.WorkloadSpec{Seed: 3, Phased: &api.PhasedSpec{Divergence: 0.5, Rounds: 12}},
	}
	st, err := c.Run(ctx, spec, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Fatalf("phased sim job %s: %s", st.State, st.Error)
	}
	rep := st.Result.Report
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.Forecast == nil || rep.Forecast.Samples == 0 {
		t.Fatalf("phased mrts report lacks forecast accounting: %+v", rep.Forecast)
	}
	if rep.Forecast.Predictor == "" {
		t.Error("forecast summary lacks the predictor name")
	}
	if rep.Speedup <= 1 {
		t.Errorf("phased mrts speedup %.2f, want > 1", rep.Speedup)
	}
}
