package service

import (
	"bytes"
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"mrts/internal/arch"
	"mrts/internal/exp"
	"mrts/internal/service/api"
	"mrts/internal/sim"
	"mrts/internal/workload"
)

// EvalStats counts the result-cache traffic of one job.
type EvalStats struct {
	Hits, Misses atomic.Int64
}

// Evaluator returns the service's job-execution path as an exp.Evaluator:
// every (fabric, policy) point is first looked up in the content-addressed
// result cache; on a miss the workload is fetched from the singleflight
// workload cache (building it at most once per options) and the point is
// simulated and cached. Figure sweeps, sweep batches and single sim jobs
// all run through this one path. Two jobs racing on the same uncached
// point may simulate it twice — the second Put is idempotent — which keeps
// the hot path lock-free outside the cache lookups.
func (s *Server) Evaluator(opts workload.Options) (exp.Evaluator, *EvalStats) {
	canon := opts.Canonical()
	stats := &EvalStats{}
	eval := func(ctx context.Context, cfg arch.Config, p exp.Policy) (*sim.Report, error) {
		key := PointKey(canon, cfg, p)
		if rep, ok := s.results.Get(key); ok {
			stats.Hits.Add(1)
			return rep, nil
		}
		stats.Misses.Add(1)
		w, err := s.workloads.Get(ctx, canon)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rep, err := exp.RunPoint(ctx, w, cfg, p)
		if err != nil {
			return nil, err
		}
		s.pointSeconds.Observe(time.Since(start).Seconds())
		s.results.Put(key, rep)
		return rep, nil
	}
	return eval, stats
}

// execute runs one job spec to completion under ctx.
func (s *Server) execute(ctx context.Context, spec api.JobSpec) (*api.JobResult, error) {
	opts := spec.Workload.Options()
	eval, stats := s.Evaluator(opts)
	res := &api.JobResult{}

	var err error
	switch spec.Type {
	case api.JobSim:
		err = s.execSim(ctx, spec, eval, res)
	case api.JobFig:
		err = s.execFig(ctx, spec, opts, eval, res)
	case api.JobSweep:
		err = s.execSweep(ctx, spec.Points, eval, res)
	default:
		err = fmt.Errorf("service: unknown job type %q", spec.Type)
	}
	if err != nil {
		return nil, err
	}
	res.CacheHits = stats.Hits.Load()
	res.CacheMisses = stats.Misses.Load()
	return res, nil
}

func (s *Server) execSim(ctx context.Context, spec api.JobSpec, eval exp.Evaluator, res *api.JobResult) error {
	p, err := spec.SimPolicy()
	if err != nil {
		return err
	}
	rep, err := eval(ctx, arch.Config{NPRC: spec.PRC, NCG: spec.CG}, p)
	if err != nil {
		return err
	}
	ref, err := eval(ctx, arch.Config{}, exp.PolicyRISC)
	if err != nil {
		return err
	}
	r := api.NewReport(rep, ref)
	res.Report = &r
	return nil
}

// execFig regenerates one figure. The rendered text is byte-identical to
// what `mrts-sweep -fig <name>` prints for the same workload and bounds,
// because the identical harness and renderer run underneath.
func (s *Server) execFig(ctx context.Context, spec api.JobSpec, opts workload.Options, eval exp.Evaluator, res *api.JobResult) error {
	maxPRC, maxCG := spec.MaxPRC, spec.MaxCG
	if maxPRC == 0 {
		maxPRC = 4
	}
	if maxCG == 0 {
		maxCG = 3
	}
	var buf bytes.Buffer
	switch spec.Fig {
	case "8":
		r, err := exp.Fig8(ctx, eval, maxPRC, maxCG)
		if err != nil {
			return err
		}
		r.Render(&buf)
	case "9":
		r, err := exp.Fig9(ctx, eval, maxPRC, maxCG)
		if err != nil {
			return err
		}
		r.Render(&buf)
	case "10":
		r, err := exp.Fig10(ctx, eval, min(maxPRC, 3), maxCG)
		if err != nil {
			return err
		}
		r.Render(&buf)
	case "mix":
		for _, total := range []int{3, 5, 7} {
			r, err := exp.MixFrontier(ctx, eval, total)
			if err != nil {
				return err
			}
			r.Render(&buf)
			fmt.Fprintln(&buf)
		}
	case "shared":
		w, err := s.workloads.Get(ctx, opts)
		if err != nil {
			return err
		}
		r, err := exp.Shared(ctx, w, arch.Config{NPRC: maxPRC, NCG: maxCG})
		if err != nil {
			return err
		}
		r.Render(&buf)
	case "overhead":
		w, err := s.workloads.Get(ctx, opts)
		if err != nil {
			return err
		}
		r, err := exp.Overhead(w, arch.Config{NPRC: 2, NCG: 2})
		if err != nil {
			return err
		}
		r.Render(&buf)
	default:
		return fmt.Errorf("service: unknown fig %q", spec.Fig)
	}
	res.Text = buf.String()
	return nil
}

// execSweep evaluates an explicit batch of points (the body of both sweep
// jobs and the streaming /v1/sweep endpoint's final result).
func (s *Server) execSweep(ctx context.Context, points []api.Point, eval exp.Evaluator, res *api.JobResult) error {
	ref, err := eval(ctx, arch.Config{}, exp.PolicyRISC)
	if err != nil {
		return err
	}
	reports, err := exp.ParMap(ctx, len(points), func(ctx context.Context, i int) (api.Report, error) {
		p, err := exp.ParsePolicy(points[i].Policy)
		if err != nil {
			return api.Report{}, err
		}
		rep, err := eval(ctx, points[i].Config(), p)
		if err != nil {
			return api.Report{}, err
		}
		return api.NewReport(rep, ref), nil
	})
	if err != nil {
		return err
	}
	res.Reports = reports
	return nil
}
