package service

import (
	"bytes"
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"mrts/internal/arch"
	"mrts/internal/exp"
	"mrts/internal/fault"
	"mrts/internal/obs"
	"mrts/internal/selector"
	"mrts/internal/service/api"
	"mrts/internal/sim"
	"mrts/internal/workload"
)

// EvalStats counts the result-cache traffic of one job.
type EvalStats struct {
	Hits, Misses atomic.Int64

	// memo is the job's shared selection memo: greedy selections computed
	// at one sweep point seed neighbouring points of the same job (see
	// selector.Memo). seedReported is the high-water mark of memo hits
	// already published to the server-wide counter, so concurrent flushes
	// count every hit exactly once.
	memo         *selector.Memo
	seedReported atomic.Int64
}

// flushSeedHits publishes memo hits accrued since the last flush to the
// counter. Safe for concurrent use; cumulative counts never double-report.
func (st *EvalStats) flushSeedHits(c *Counter) {
	if st.memo == nil {
		return
	}
	total := int64(st.memo.Stats().Hits)
	for {
		prev := st.seedReported.Load()
		if total <= prev {
			return
		}
		if st.seedReported.CompareAndSwap(prev, total) {
			c.Add(total - prev)
			return
		}
	}
}

// FaultEvaluator returns the service's job-execution path as an
// exp.FaultEvaluator: every (fabric, policy, fault scenario) point is
// first looked up in the content-addressed result cache; on a miss the
// workload is fetched from the singleflight workload cache (building it at
// most once per options) and the point is simulated and cached. Figure
// sweeps, sweep batches and single sim jobs all run through this one path.
// Two jobs racing on the same uncached point may simulate it twice — the
// second Put is idempotent — which keeps the hot path lock-free outside
// the cache lookups.
//
// Points that miss the result cache simulate under a shared per-evaluator
// selection memo, so the ISE selections computed at one sweep point seed
// neighbouring points of the same job (byte-identical results; see
// selector.Memo). The memo's traffic feeds the mrts_batch_* metrics.
func (s *Server) FaultEvaluator(opts workload.Options) (exp.FaultEvaluator, *EvalStats) {
	canon := opts.Canonical()
	stats := &EvalStats{memo: selector.NewMemo(0)}
	eval := func(ctx context.Context, cfg arch.Config, p exp.Policy, seed uint64, fo fault.Options) (*sim.Report, error) {
		s.batchPoints.Inc()
		key := PointKeyFaults(canon, cfg, p, seed, fo)
		if rep, ok := s.results.Get(key); ok {
			stats.Hits.Add(1)
			return rep, nil
		}
		stats.Misses.Add(1)
		w, err := s.workloads.Get(ctx, canon)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rep, err := exp.RunPointFaults(exp.WithSelectionMemo(ctx, stats.memo), w, cfg, p, seed, fo)
		if err != nil {
			return nil, err
		}
		s.pointSeconds.Observe(time.Since(start).Seconds())
		stats.flushSeedHits(s.batchSeedHits)
		s.results.Put(key, rep)
		return rep, nil
	}
	return eval, stats
}

// Evaluator is FaultEvaluator restricted to the benign scenario — the
// fault-free sweep path used by figures and the streaming endpoint.
func (s *Server) Evaluator(opts workload.Options) (exp.Evaluator, *EvalStats) {
	feval, stats := s.FaultEvaluator(opts)
	eval := func(ctx context.Context, cfg arch.Config, p exp.Policy) (*sim.Report, error) {
		return feval(ctx, cfg, p, 0, fault.Options{})
	}
	return eval, stats
}

// execute runs one job spec to completion under ctx.
func (s *Server) execute(ctx context.Context, spec api.JobSpec) (*api.JobResult, error) {
	opts := spec.Workload.Options()
	feval, stats := s.FaultEvaluator(opts)
	eval := func(ctx context.Context, cfg arch.Config, p exp.Policy) (*sim.Report, error) {
		return feval(ctx, cfg, p, 0, fault.Options{})
	}
	// Figures that build runtime instances outside the evaluator (the
	// tenant sweep's per-tenant systems) pick the job's selection memo up
	// from the context.
	ctx = exp.WithSelectionMemo(ctx, stats.memo)
	res := &api.JobResult{}

	start := time.Now()
	var err error
	switch spec.Type {
	case api.JobSim:
		err = s.execSim(ctx, spec, feval, res)
	case api.JobFig:
		err = s.execFig(ctx, spec, opts, eval, feval, res)
	case api.JobSweep:
		err = s.execSweep(ctx, spec.Points, spec.Faults, feval, res)
	default:
		err = fmt.Errorf("service: unknown job type %q", spec.Type)
	}
	if err != nil {
		return nil, err
	}
	if spec.Type == api.JobFig || spec.Type == api.JobSweep {
		s.batchSeconds.Observe(time.Since(start).Seconds())
	}
	stats.flushSeedHits(s.batchSeedHits)
	res.CacheHits = stats.Hits.Load()
	res.CacheMisses = stats.Misses.Load()
	return res, nil
}

// faultScenario resolves a job's fault spec against the RISC reference
// run: scenarios that gave no horizon get a tenth of the RISC-mode
// execution time, the same derivation the faults figure uses.
func faultScenario(spec *api.FaultSpec, ref *sim.Report) (uint64, fault.Options) {
	if spec.IsZero() {
		return 0, fault.Options{}
	}
	fo := spec.Options()
	if fo.Horizon == 0 {
		fo.Horizon = ref.TotalCycles / 10
	}
	return spec.Seed, fo
}

func (s *Server) execSim(ctx context.Context, spec api.JobSpec, eval exp.FaultEvaluator, res *api.JobResult) error {
	p, err := spec.SimPolicy()
	if err != nil {
		return err
	}
	// The RISC reference is always fault-free: it has no fabric to fail,
	// and it anchors the speedup of the degraded run.
	ref, err := eval(ctx, arch.Config{}, exp.PolicyRISC, 0, fault.Options{})
	if err != nil {
		return err
	}
	seed, fo := faultScenario(spec.Faults, ref)
	cfg := arch.Config{NPRC: spec.PRC, NCG: spec.CG}

	var rep *sim.Report
	if spec.Trace {
		// Traced points bypass the result-cache lookup — the trace must
		// come from a real run — but the report (identical by the
		// observer-off byte-identity guarantee) is still cached for
		// untraced followers.
		w, err := s.workloads.Get(ctx, spec.Workload.Options().Canonical())
		if err != nil {
			return err
		}
		rec := obs.New()
		if s.opts.Node != "" {
			rec.SetNode(s.opts.Node)
		}
		rec.SetRun(fmt.Sprintf("%s/%dx%d", p, cfg.NPRC, cfg.NCG))
		start := time.Now()
		rep, err = exp.RunPointObserved(ctx, w, cfg, p, seed, fo, rec)
		if err != nil {
			return err
		}
		s.pointSeconds.Observe(time.Since(start).Seconds())
		s.results.Put(PointKeyFaults(spec.Workload.Options().Canonical(), cfg, p, seed, fo), rep)
		res.TraceJSONL = rec.JSONL()
	} else {
		rep, err = eval(ctx, cfg, p, seed, fo)
		if err != nil {
			return err
		}
	}
	r := api.NewReport(rep, ref)
	res.Report = &r
	return nil
}

// execFig regenerates one figure. The rendered text is byte-identical to
// what `mrts-sweep -fig <name>` prints for the same workload and bounds,
// because the identical harness and renderer run underneath.
func (s *Server) execFig(ctx context.Context, spec api.JobSpec, opts workload.Options, eval exp.Evaluator, feval exp.FaultEvaluator, res *api.JobResult) error {
	maxPRC, maxCG := spec.MaxPRC, spec.MaxCG
	if maxPRC == 0 {
		maxPRC = 4
	}
	if maxCG == 0 {
		maxCG = 3
	}
	var buf bytes.Buffer
	switch spec.Fig {
	case "8":
		r, err := exp.Fig8(ctx, eval, maxPRC, maxCG)
		if err != nil {
			return err
		}
		r.Render(&buf)
	case "9":
		r, err := exp.Fig9(ctx, eval, maxPRC, maxCG)
		if err != nil {
			return err
		}
		r.Render(&buf)
	case "10":
		r, err := exp.Fig10(ctx, eval, min(maxPRC, 3), maxCG)
		if err != nil {
			return err
		}
		r.Render(&buf)
	case "mix":
		for _, total := range []int{3, 5, 7} {
			r, err := exp.MixFrontier(ctx, eval, total)
			if err != nil {
				return err
			}
			r.Render(&buf)
			fmt.Fprintln(&buf)
		}
	case "shared":
		w, err := s.workloads.Get(ctx, opts)
		if err != nil {
			return err
		}
		r, err := exp.Shared(ctx, w, arch.Config{NPRC: maxPRC, NCG: maxCG})
		if err != nil {
			return err
		}
		r.Render(&buf)
	case "overhead":
		w, err := s.workloads.Get(ctx, opts)
		if err != nil {
			return err
		}
		r, err := exp.Overhead(w, arch.Config{NPRC: 2, NCG: 2})
		if err != nil {
			return err
		}
		r.Render(&buf)
	case "faults":
		seed := uint64(1)
		if spec.Faults != nil && spec.Faults.Seed != 0 {
			seed = spec.Faults.Seed
		}
		r, err := exp.Faults(ctx, feval, exp.FaultsConfig, seed)
		if err != nil {
			return err
		}
		r.Render(&buf)
	case "tenants":
		maxK := spec.Tenants
		if maxK == 0 {
			maxK = api.MaxTenants
		}
		mix := spec.Mix
		if mix == "" {
			mix = "uniform"
		}
		// Tenant workloads flow through the singleflight workload cache:
		// each tenant's derived options build at most once per server.
		wp := func(ctx context.Context, o workload.Options) (*workload.Result, error) {
			return s.workloads.Get(ctx, o.Canonical())
		}
		r, err := exp.Tenants(ctx, wp, opts, arch.Config{NPRC: maxPRC, NCG: maxCG}, maxK, mix)
		if err != nil {
			return err
		}
		r.Render(&buf)
	case "phase":
		// The sweep builds one phased workload per divergence level; the
		// singleflight workload cache dedupes them across jobs.
		wp := func(ctx context.Context, o workload.Options) (*workload.Result, error) {
			return s.workloads.Get(ctx, o.Canonical())
		}
		seed := spec.Workload.Seed
		if seed == 0 {
			seed = 1
		}
		r, err := exp.Phase(ctx, wp, arch.Config{NPRC: min(maxPRC, 2), NCG: min(maxCG, 2)}, seed)
		if err != nil {
			return err
		}
		r.Render(&buf)
	default:
		return fmt.Errorf("service: unknown fig %q", spec.Fig)
	}
	res.Text = buf.String()
	return nil
}

// execSweep evaluates an explicit batch of points (the body of both sweep
// jobs and the streaming /v1/sweep endpoint's final result). A job-level
// fault scenario applies to every point of the batch.
func (s *Server) execSweep(ctx context.Context, points []api.Point, faults *api.FaultSpec, eval exp.FaultEvaluator, res *api.JobResult) error {
	ref, err := eval(ctx, arch.Config{}, exp.PolicyRISC, 0, fault.Options{})
	if err != nil {
		return err
	}
	seed, fo := faultScenario(faults, ref)
	reports, err := exp.ParMap(ctx, len(points), func(ctx context.Context, i int) (api.Report, error) {
		p, err := exp.ParsePolicy(points[i].Policy)
		if err != nil {
			return api.Report{}, err
		}
		rep, err := eval(ctx, points[i].Config(), p, seed, fo)
		if err != nil {
			return api.Report{}, err
		}
		return api.NewReport(rep, ref), nil
	})
	if err != nil {
		return err
	}
	res.Reports = reports
	return nil
}
