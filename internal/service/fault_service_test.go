package service

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"mrts/internal/exp"
	"mrts/internal/service/api"
	"mrts/internal/workload"
)

func TestFaultSpecValidation(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()

	bad := api.JobSpec{
		Type: api.JobSim, Workload: testWorkload, PRC: 1, CG: 1, Policy: "mrts",
		Faults: &api.FaultSpec{FailPRC: -1},
	}
	_, err := c.Submit(ctx, bad)
	if err == nil {
		t.Fatal("negative fault count accepted")
	}
	if !strings.Contains(err.Error(), "negative") || !strings.Contains(err.Error(), "HTTP 400") {
		t.Errorf("err = %v, want a 400 naming the negative count", err)
	}
	if _, err := c.Submit(ctx, api.JobSpec{
		Type: api.JobSim, Workload: testWorkload, Policy: "risc",
		Faults: &api.FaultSpec{HorizonMCycles: -1},
	}); err == nil {
		t.Error("negative horizon accepted")
	}
}

func TestFaultedSimJob(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()

	plain := api.JobSpec{Type: api.JobSim, Workload: testWorkload, PRC: 2, CG: 1, Policy: "mrts"}
	base, err := c.Run(ctx, plain, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if base.Result.Report.Fault != nil {
		t.Errorf("fault-free report carries fault stats: %+v", base.Result.Report.Fault)
	}

	faulted := plain
	faulted.Faults = &api.FaultSpec{Seed: 3, FailPRC: 2, FailCG: 1}
	st, err := c.Run(ctx, faulted, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Fatalf("faulted job %s: %s", st.State, st.Error)
	}
	r := st.Result.Report
	if r.Fault == nil || r.Fault.Events == 0 || r.Fault.UnitsFailed != 3 {
		t.Fatalf("faulted report fault stats = %+v, want 3 failed units", r.Fault)
	}
	if r.TotalCycles < base.Result.Report.TotalCycles {
		t.Errorf("losing the whole fabric sped the job up: %d < %d",
			r.TotalCycles, base.Result.Report.TotalCycles)
	}
	// The scenario is part of the cache identity: the faulted run was a
	// miss, a repeat of it is a pure hit with the identical report.
	if st.Result.CacheMisses == 0 {
		t.Error("faulted point served from the fault-free cache entry")
	}
	again, err := c.Run(ctx, faulted, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if again.Result.CacheMisses != 0 {
		t.Errorf("repeated faulted job had %d misses", again.Result.CacheMisses)
	}
	if again.Result.Report.TotalCycles != r.TotalCycles {
		t.Error("cached faulted report differs")
	}

	// A zero-count scenario is the benign run: it shares the plain job's
	// cache entry (the reports are bit-identical by the determinism guard).
	benign := plain
	benign.Faults = &api.FaultSpec{Seed: 99}
	z, err := c.Run(ctx, benign, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if z.Result.CacheMisses != 0 {
		t.Errorf("zero-fault job missed the plain job's cache entry (%d misses)", z.Result.CacheMisses)
	}
}

func TestFaultsFigMatchesOfflineSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("degradation sweep is expensive")
	}
	_, c := newTestServer(t, Options{Workers: 4})
	ctx := context.Background()

	w, err := workload.Build(testWorkload.Options())
	if err != nil {
		t.Fatal(err)
	}
	want, err := exp.Faults(ctx, exp.DirectFaultEvaluator(w), exp.FaultsConfig, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wantText bytes.Buffer
	want.Render(&wantText)

	spec := api.JobSpec{Type: api.JobFig, Fig: "faults", Workload: testWorkload}
	st, err := c.Run(ctx, spec, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Fatalf("faults fig job %s: %s", st.State, st.Error)
	}
	if st.Result.Text != wantText.String() {
		t.Errorf("service faults fig differs from offline render:\n--- service ---\n%s--- offline ---\n%s",
			st.Result.Text, wantText.String())
	}

	// A different fault seed is a different figure (and a cache miss).
	seeded := spec
	seeded.Faults = &api.FaultSpec{Seed: 2}
	other, err := c.Run(ctx, seeded, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if other.Result.Text == st.Result.Text {
		t.Error("fault seed ignored by the faults figure")
	}
}

func TestFaultedSweepJobAndStream(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()

	fs := &api.FaultSpec{Seed: 5, FailCG: 1}
	spec := api.JobSpec{
		Type: api.JobSweep, Workload: testWorkload,
		Points: []api.Point{{PRC: 1, CG: 1, Policy: "mrts"}, {PRC: 0, CG: 1, Policy: "mrts"}},
		Faults: fs,
	}
	st, err := c.Run(ctx, spec, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Fatalf("sweep %s: %s", st.State, st.Error)
	}
	if len(st.Result.Reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(st.Result.Reports))
	}
	for i, r := range st.Result.Reports {
		if r.Fault == nil || r.Fault.UnitsFailed != 1 {
			t.Errorf("sweep point %d fault stats = %+v, want the scenario applied", i, r.Fault)
		}
	}

	// The streaming endpoint shares the same cache identity: the same
	// scenario over the same points is served from the cache.
	var cached int
	final, err := c.Sweep(ctx, api.SweepRequest{Workload: testWorkload, Points: spec.Points, Faults: fs},
		func(ev api.SweepEvent) {
			if ev.Cached {
				cached++
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if final.Completed != 2 || cached != 2 {
		t.Errorf("streamed faulted sweep: completed %d, cached %d, want 2/2", final.Completed, cached)
	}

	// An invalid scenario on the stream is rejected up front.
	if _, err := c.Sweep(ctx, api.SweepRequest{
		Workload: testWorkload, Points: spec.Points,
		Faults: &api.FaultSpec{FailPRC: -2},
	}, nil); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("invalid stream scenario: err = %v, want 400 naming the negative count", err)
	}
}
