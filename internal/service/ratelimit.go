package service

import (
	"math"
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket: each client key owns a
// bucket of burst tokens refilled at rate tokens/second, and each
// admission consumes one. It answers not just yes/no but, on a no, how
// long until a token is available — the Retry-After hint the HTTP layer
// sends back so well-behaved clients pace themselves instead of
// hammering a saturated daemon.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the client table; beyond it, idle (full) buckets are
// evicted. A full bucket is indistinguishable from a brand-new one, so
// dropping it changes nothing for that client.
const maxBuckets = 4096

func newRateLimiter(rate float64, burst int) *rateLimiter {
	b := float64(burst)
	if b <= 0 {
		b = math.Ceil(rate)
	}
	if b < 1 {
		b = 1
	}
	return &rateLimiter{rate: rate, burst: b, buckets: make(map[string]*bucket)}
}

// allow consumes one token from key's bucket if available. When it is
// not, it returns how long the client should wait before the next
// attempt can succeed.
func (l *rateLimiter) allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, found := l.buckets[key]
	if !found {
		if len(l.buckets) >= maxBuckets {
			l.pruneLocked(now)
			// Pruning frees only idle buckets; a flood of distinct
			// spoofed client IDs leaves none. The cap is hard: make room
			// by evicting the longest-idle bucket instead, so the table
			// never grows past maxBuckets and an attacker costs a real
			// client at most its partially-refilled bucket.
			for len(l.buckets) >= maxBuckets {
				l.evictStalestLocked()
			}
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens = math.Min(l.burst, b.tokens+elapsed*l.rate)
			b.last = now
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(need * float64(time.Second))
}

// pruneLocked evicts buckets that have refilled completely — idle
// clients whose state carries no information.
func (l *rateLimiter) pruneLocked(now time.Time) {
	for k, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, k)
		}
	}
}

// evictStalestLocked drops the bucket untouched the longest — the
// closest to fully refilled, so the client it belonged to loses the
// least. Linear scan: it runs only when the table is at its hard cap.
func (l *rateLimiter) evictStalestLocked() {
	var (
		victim string
		oldest time.Time
		found  bool
	)
	for k, b := range l.buckets {
		if !found || b.last.Before(oldest) {
			victim, oldest, found = k, b.last, true
		}
	}
	if !found {
		return
	}
	delete(l.buckets, victim)
}
