package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mrts/internal/service/api"
)

// flaky returns a handler that answers `failures` requests with the given
// status before succeeding, and the total request count.
func flaky(failures int, code int) (http.Handler, *atomic.Int64) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(failures) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			w.Write([]byte(`{"error":"try again"}`))
			return
		}
		w.Write([]byte(`[]`))
	})
	return h, &calls
}

func retryClient(url string, attempts int) *Client {
	c := New(url)
	c.Retry = RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	return c
}

func TestRetryRecoversFromGatewayErrors(t *testing.T) {
	h, calls := flaky(2, http.StatusServiceUnavailable)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := retryClient(ts.URL, 3)
	if _, err := c.Jobs(context.Background()); err != nil {
		t.Fatalf("Jobs with retries = %v, want success on third attempt", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
}

func TestRetryBounded(t *testing.T) {
	h, calls := flaky(1000, http.StatusBadGateway)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := retryClient(ts.URL, 3)
	_, err := c.Jobs(context.Background())
	if err == nil {
		t.Fatal("permanently failing daemon reported success")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("attempts = %d, want exactly MaxAttempts", got)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadGateway {
		t.Errorf("err = %v, want StatusError with the last status", err)
	}
	if !strings.Contains(err.Error(), "HTTP 502") || !strings.Contains(err.Error(), "try again") {
		t.Errorf("error text lost context: %v", err)
	}
}

func TestNoRetryOnClientError(t *testing.T) {
	h, calls := flaky(1000, http.StatusBadRequest)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := retryClient(ts.URL, 5)
	_, err := c.Submit(context.Background(), api.JobSpec{})
	if err == nil {
		t.Fatal("400 reported as success")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("definitive 4xx retried: %d attempts", got)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Temporary() {
		t.Errorf("4xx classified as temporary: %v", err)
	}
}

func TestRetryConnectionError(t *testing.T) {
	// A server that is already closed: every attempt is a transport error.
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()

	c := retryClient(url, 2)
	start := time.Now()
	if err := c.Healthz(context.Background()); err == nil {
		t.Fatal("dead daemon reported healthy")
	}
	// Two attempts with a ~1ms backoff in between: well under a second.
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("bounded retry took %v", d)
	}
}

func TestRetryHonoursContext(t *testing.T) {
	h, calls := flaky(1000, http.StatusServiceUnavailable)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := New(ts.URL)
	// Long backoff: the context must cut the sleep short.
	c.Retry = RetryPolicy{MaxAttempts: 100, BaseDelay: time.Hour, MaxDelay: time.Hour}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Jobs(ctx); err == nil {
		t.Fatal("cancelled retry loop reported success")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("context-cancelled retry took %v", d)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("attempts after immediate cancel = %d, want 1", got)
	}
}

func TestZeroPolicySingleAttempt(t *testing.T) {
	h, calls := flaky(1000, http.StatusServiceUnavailable)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := New(ts.URL) // zero RetryPolicy
	if _, err := c.Jobs(context.Background()); err == nil {
		t.Fatal("failure swallowed")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("zero policy made %d attempts, want 1", got)
	}
}

// A Retry-After hint from the server is preferred over the computed
// exponential backoff: with a huge BaseDelay and a zero hint, the retry
// happens immediately.
func TestRetryAfterPreferredOverBackoff(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"rate limited"}`))
			return
		}
		w.Write([]byte(`[]`))
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = RetryPolicy{MaxAttempts: 2, BaseDelay: time.Hour, MaxDelay: time.Hour}
	start := time.Now()
	if _, err := c.Jobs(context.Background()); err != nil {
		t.Fatalf("Jobs = %v, want success after rate-limited retry", err)
	}
	if calls.Load() != 2 {
		t.Errorf("attempts = %d, want 2", calls.Load())
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("Retry-After 0 not honoured: retry took %v (backoff would be ~1h)", d)
	}
}

// A huge Retry-After hint is capped at the policy's MaxDelay.
func TestRetryAfterCapped(t *testing.T) {
	h, calls := flaky(1, http.StatusServiceUnavailable)
	wrapped := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3600")
		h.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(wrapped)
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond}
	start := time.Now()
	if _, err := c.Jobs(context.Background()); err != nil {
		t.Fatalf("Jobs = %v, want success on second attempt", err)
	}
	if calls.Load() != 2 {
		t.Errorf("attempts = %d, want 2", calls.Load())
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("hour-long Retry-After not capped at MaxDelay: took %v", d)
	}
}

func TestTooManyRequestsIsTemporary(t *testing.T) {
	se := &StatusError{Code: http.StatusTooManyRequests}
	if !se.Temporary() {
		t.Error("429 not classified as temporary")
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", -1},
		{"garbage", -1},
		{"-3", -1},
		{"0", 0},
		{"2", 2 * time.Second},
		{"0.5", 500 * time.Millisecond},
		{" 1 ", time.Second},
		// An HTTP-date in the past means "retry now", not "no hint".
		{"Tue, 29 Oct 2024 16:56:32 GMT", 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestParseRetryAfterHTTPDate pins the RFC 7231 HTTP-date form against a
// fixed clock: the hint is the remaining wait until the given instant.
func TestParseRetryAfterHTTPDate(t *testing.T) {
	now := time.Date(2024, 10, 29, 16, 56, 30, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"Tue, 29 Oct 2024 16:56:32 GMT", 2 * time.Second},   // IMF-fixdate
		{"Tuesday, 29-Oct-24 16:56:32 GMT", 2 * time.Second}, // RFC 850
		{"Tue Oct 29 16:56:32 2024", 2 * time.Second},        // asctime
		{"Tue, 29 Oct 2024 16:56:30 GMT", 0},                 // exactly now
		{"Tue, 29 Oct 2024 16:55:00 GMT", 0},                 // past: retry now
		{"Tue, 29 Oct 2024 17:56:30 GMT", time.Hour},         // far future
		{"Tue, 32 Oct 2024 16:56:32 GMT", -1},                // invalid date
		{"29 Oct 2024", -1},                                  // not an HTTP-date layout
	}
	for _, tc := range cases {
		if got := parseRetryAfterAt(tc.in, now); got != tc.want {
			t.Errorf("parseRetryAfterAt(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestHTTPDateRetryAfterHonoured runs the full loop: a 503 whose
// Retry-After is an HTTP-date a moment away is slept through, and the
// retry succeeds.
func TestHTTPDateRetryAfterHonoured(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", time.Now().Add(20*time.Millisecond).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"draining"}`))
			return
		}
		w.Write([]byte(`[]`))
	}))
	defer ts.Close()

	c := New(ts.URL)
	// Backoff would be an hour; the date hint (≤20ms, capped at MaxDelay)
	// must win.
	c.Retry = RetryPolicy{MaxAttempts: 2, BaseDelay: time.Hour, MaxDelay: 100 * time.Millisecond}
	start := time.Now()
	if _, err := c.Jobs(context.Background()); err != nil {
		t.Fatalf("Jobs = %v, want success after date-hinted retry", err)
	}
	if calls.Load() != 2 {
		t.Errorf("attempts = %d, want 2", calls.Load())
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("HTTP-date hint not honoured: took %v", d)
	}
}

// TestCancelDuringRetrySleep pins that a context cancelled while the
// client is sleeping between attempts aborts the sleep promptly instead
// of serving out the full backoff.
func TestCancelDuringRetrySleep(t *testing.T) {
	h, calls := flaky(1000, http.StatusServiceUnavailable)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = RetryPolicy{MaxAttempts: 10, BaseDelay: time.Hour, MaxDelay: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Let the first attempt fail and the hour-long sleep begin.
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Jobs(ctx)
	if err == nil {
		t.Fatal("cancelled retry loop reported success")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancel during retry sleep took %v, want prompt return", d)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("attempts = %d, want 1 (cancel hit during the first sleep)", got)
	}
}

func TestStatusErrorText(t *testing.T) {
	with := &StatusError{Method: "GET", Path: "/v1/jobs", Code: 503, Message: "queue full"}
	if got := with.Error(); got != "GET /v1/jobs: queue full (HTTP 503)" {
		t.Errorf("Error() = %q", got)
	}
	without := &StatusError{Method: "GET", Path: "/healthz", Code: 500}
	if got := without.Error(); got != "GET /healthz: HTTP 500" {
		t.Errorf("Error() = %q", got)
	}
}

// TestErrorBodySurfaced pins the error-message fallback: a daemon (or the
// proxy in front of it) that answers with a plain-text body instead of the
// api.ErrorResponse envelope must still have its explanation surface in
// the client error, not a bare HTTP status.
func TestErrorBodySurfaced(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"json envelope", `{"error":"fig \"nope\" unknown"}`, `fig "nope" unknown`},
		{"plain text", "service restarting, come back later\n", "service restarting, come back later"},
		{"html-ish proxy page", "502 Bad Gateway: upstream unreachable", "upstream unreachable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.WriteHeader(http.StatusBadRequest)
				w.Write([]byte(tc.body))
			}))
			defer ts.Close()

			_, err := New(ts.URL).Jobs(context.Background())
			if err == nil {
				t.Fatal("400 reported as success")
			}
			var se *StatusError
			if !errors.As(err, &se) {
				t.Fatalf("err = %T, want *StatusError", err)
			}
			if !strings.Contains(se.Message, tc.want) {
				t.Errorf("Message = %q, want it to contain %q", se.Message, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Error() = %q lost the server's explanation", err)
			}
		})
	}
}

// An empty error body keeps the bare-status rendering.
func TestEmptyErrorBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	}))
	defer ts.Close()

	_, err := New(ts.URL).Job(context.Background(), "missing")
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *StatusError", err)
	}
	if se.Message != "" {
		t.Errorf("Message = %q, want empty for an empty body", se.Message)
	}
	if !strings.Contains(err.Error(), "HTTP 404") {
		t.Errorf("Error() = %q, want bare status", err)
	}
}

// The backoff jitter is a per-client stream: seeding it pins the delay
// schedule (reproducible chaos tests), different seeds diverge, and a
// zero-literal Client without New still draws from the shared fallback.
func TestRetryJitterSeededReproducible(t *testing.T) {
	r := RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	seq := func(seed int64) []time.Duration {
		c := New("http://example.invalid")
		c.SeedRetryJitter(seed)
		ds := make([]time.Duration, 0, 8)
		for a := 1; a <= 8; a++ {
			ds = append(ds, r.delay(a, c.jitterSrc()))
		}
		return ds
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at delay %d: %v vs %v", i, a[i], b[i])
		}
	}
	c, d := seq(1), seq(2)
	same := true
	for i := range c {
		if c[i] != d[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical delay schedule")
	}
}

func TestRetryDelayBounds(t *testing.T) {
	r := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	var zero Client // no New: must fall back, not panic
	for attempt := 1; attempt <= 12; attempt++ {
		full := r.BaseDelay << uint(attempt-1)
		if full > r.MaxDelay || full <= 0 {
			full = r.MaxDelay
		}
		got := r.delay(attempt, zero.jitterSrc())
		if got < full/2 || got > full {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, got, full/2, full)
		}
	}
}

// Cluster backoff shares the same seedable stream.
func TestClusterSeedRetryJitter(t *testing.T) {
	cc := NewCluster([]string{"http://a.invalid", "http://b.invalid"})
	cc.SeedRetryJitter(7)
	r := RetryPolicy{BaseDelay: 50 * time.Millisecond, MaxDelay: 400 * time.Millisecond}
	first := r.delay(2, cc.jitterSrc())
	cc.SeedRetryJitter(7)
	if again := r.delay(2, cc.jitterSrc()); again != first {
		t.Errorf("reseeded cluster jitter diverged: %v vs %v", first, again)
	}
}
