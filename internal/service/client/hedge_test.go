package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mrts/internal/service/api"
)

// hedgeMember is a fake cluster member that records the Idempotency-Key
// of every submission it sees and answers with a fixed job ID after an
// optional delay.
type hedgeMember struct {
	id    string
	delay time.Duration

	mu   sync.Mutex
	keys []string
}

func (m *hedgeMember) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/jobs" {
			http.NotFound(w, r)
			return
		}
		m.mu.Lock()
		m.keys = append(m.keys, r.Header.Get("Idempotency-Key"))
		m.mu.Unlock()
		if m.delay > 0 {
			select {
			case <-time.After(m.delay):
			case <-r.Context().Done():
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(api.SubmitResponse{ID: m.id})
	})
}

func (m *hedgeMember) seenKeys() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.keys...)
}

// TestHedgedSubmitRacesSlowMember: when the preferred member sits on the
// wrong side of a partition (here: very slow), the hedge fires the same
// submission — same Idempotency-Key — at the next member instead of
// waiting out a full timeout, and the fast answer wins.
func TestHedgedSubmitRacesSlowMember(t *testing.T) {
	slow := &hedgeMember{id: "jslow", delay: 2 * time.Second}
	fast := &hedgeMember{id: "jfast"}
	tsSlow := httptest.NewServer(slow.handler())
	defer tsSlow.Close()
	tsFast := httptest.NewServer(fast.handler())
	defer tsFast.Close()

	cc := NewCluster([]string{tsSlow.URL, tsFast.URL})
	cc.Hedge = 30 * time.Millisecond

	start := time.Now()
	id, err := cc.Submit(context.Background(), api.JobSpec{Type: api.JobSim})
	if err != nil {
		t.Fatal(err)
	}
	if id != "jfast" {
		t.Errorf("hedged submit returned %q, want the fast member's jfast", id)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("hedged submit took %v — it waited out the slow member instead of racing", elapsed)
	}

	// At-most-once depends on every racing attempt sharing one key: the
	// slow member saw the very same Idempotency-Key the fast one did.
	slowKeys, fastKeys := slow.seenKeys(), fast.seenKeys()
	if len(slowKeys) != 1 || len(fastKeys) != 1 {
		t.Fatalf("attempt fan-out wrong: slow saw %d, fast saw %d, want 1 each", len(slowKeys), len(fastKeys))
	}
	if slowKeys[0] == "" || slowKeys[0] != fastKeys[0] {
		t.Errorf("hedged attempts split keys: slow %q, fast %q — duplicates would not dedupe", slowKeys[0], fastKeys[0])
	}

	// The answering member becomes preferred: the next submit goes to it
	// first and the slow member is not bothered again.
	if _, err := cc.Submit(context.Background(), api.JobSpec{Type: api.JobSim}); err != nil {
		t.Fatal(err)
	}
	if got := len(slow.seenKeys()); got != 1 {
		t.Errorf("slow member saw %d submissions, want 1 — the winner was not pinned", got)
	}
}

// TestHedgedSubmitFailsOverOnDeadMember: a hard-down preferred member
// (connection refused) frees its hedge slot immediately — the client
// does not wait for the hedge interval to try the next member.
func TestHedgedSubmitFailsOverOnDeadMember(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from here on

	up := &hedgeMember{id: "jup"}
	tsUp := httptest.NewServer(up.handler())
	defer tsUp.Close()

	cc := NewCluster([]string{deadURL, tsUp.URL})
	cc.Hedge = 10 * time.Second // immediate failover must not wait for this

	start := time.Now()
	id, err := cc.Submit(context.Background(), api.JobSpec{Type: api.JobSim})
	if err != nil {
		t.Fatal(err)
	}
	if id != "jup" {
		t.Errorf("submit returned %q, want jup", id)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("failover took %v — the hedge interval gated an already-failed attempt", elapsed)
	}
}

// TestHedgedSubmitStopsOnDefinitiveError: a non-retryable answer (the
// daemon rejected the spec) ends the race — hedging is for members that
// cannot answer, not for re-asking a question that was answered.
func TestHedgedSubmitStopsOnDefinitiveError(t *testing.T) {
	reject := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"bad spec"}`, http.StatusBadRequest)
	}))
	defer reject.Close()
	up := &hedgeMember{id: "jup"}
	tsUp := httptest.NewServer(up.handler())
	defer tsUp.Close()

	cc := NewCluster([]string{reject.URL, tsUp.URL})
	cc.Hedge = 50 * time.Millisecond

	if _, err := cc.Submit(context.Background(), api.JobSpec{}); err == nil {
		t.Fatal("submit of a rejected spec returned no error")
	}
	if got := len(up.seenKeys()); got != 0 {
		t.Errorf("second member saw %d attempts after a definitive 400, want 0", got)
	}
}
