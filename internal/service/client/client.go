// Package client is the Go client of the mrts-serve HTTP API, used by
// cmd/mrts-submit and by programs that want to run sweeps against a
// shared daemon instead of simulating in-process.
package client

import (
	"bufio"
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"mrts/internal/service/api"
)

// RetryPolicy bounds the client's retry loop for transient failures:
// connection errors and gateway-class responses (502/503/504) are retried
// with capped exponential backoff plus jitter; definitive responses (4xx,
// or a 5xx the daemon itself produced) are returned immediately. The zero
// value performs no retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try included).
	// Values below 1 mean a single attempt.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 100ms);
	// it doubles per attempt up to MaxDelay (default 2s). The actual
	// sleep is drawn uniformly from [delay/2, delay] (jitter), and is
	// cut short when the context expires.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (r RetryPolicy) maxDelay() time.Duration {
	if r.MaxDelay > 0 {
		return r.MaxDelay
	}
	return 2 * time.Second
}

// delay returns the jittered backoff before attempt+1 (attempt is 1-based),
// drawing the jitter from j.
func (r RetryPolicy) delay(attempt int, j *jitter) time.Duration {
	base := r.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxd := r.maxDelay()
	d := base << uint(attempt-1)
	if d > maxd || d <= 0 {
		d = maxd
	}
	return d/2 + time.Duration(j.int63n(int64(d/2)+1))
}

// nextDelay picks the sleep before the next attempt: when the server
// sent a Retry-After hint (429 rate limit, 503 queue-full/draining) the
// hint wins over the computed exponential backoff — the server knows its
// own load — but is capped at MaxDelay so a large hint cannot stall the
// client beyond its own patience.
func (r RetryPolicy) nextDelay(attempt int, lastErr error, j *jitter) time.Duration {
	var se *StatusError
	if errors.As(lastErr, &se) && se.RetryAfter >= 0 {
		if maxd := r.maxDelay(); se.RetryAfter > maxd {
			return maxd
		}
		return se.RetryAfter
	}
	return r.delay(attempt, j)
}

// jitter is a concurrency-safe random stream for backoff jitter, seeded
// per client from the OS entropy pool. The global math/rand source it
// replaces handed every client in the process the same backoff schedule
// (and one contended lock): clients retrying against the same recovering
// daemon would sleep in lockstep and arrive together. The seed is drawn
// lazily on first use so idle clients cost no entropy.
type jitter struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newJitter() *jitter { return &jitter{} }

// fallbackJitter serves zero-literal clients built without New; they all
// share one stream, which is still properly seeded and race-free.
var fallbackJitter = newJitter()

func (j *jitter) int63n(n int64) int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.rng == nil {
		j.rng = rand.New(rand.NewSource(cryptoSeed()))
	}
	return j.rng.Int63n(n)
}

// reseed pins the stream to a fixed seed, making delays reproducible.
func (j *jitter) reseed(seed int64) {
	j.mu.Lock()
	j.rng = rand.New(rand.NewSource(seed))
	j.mu.Unlock()
}

// cryptoSeed draws a 63-bit seed from crypto/rand. Entropy failure is
// not worth crashing a retry loop over: the wall clock still separates
// clients well enough for backoff spreading.
func cryptoSeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return time.Now().UnixNano()
	}
	return int64(binary.LittleEndian.Uint64(b[:]) >> 1)
}

// StatusError is the error returned for every non-2xx response, so
// callers (and the retry loop) can inspect the status code.
type StatusError struct {
	Method  string
	Path    string
	Code    int
	Message string
	// RetryAfter is the server's Retry-After hint; -1 when the response
	// carried none (a zero hint — "retry immediately" — is meaningful).
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("%s %s: %s (HTTP %d)", e.Method, e.Path, e.Message, e.Code)
	}
	return fmt.Sprintf("%s %s: HTTP %d", e.Method, e.Path, e.Code)
}

// Temporary reports whether the response is worth retrying: gateway
// class (the request may never have reached a healthy daemon) or an
// overload rejection (429 rate limit, 503 queue-full/draining) that a
// later attempt may clear.
func (e *StatusError) Temporary() bool {
	return e.Code == http.StatusBadGateway ||
		e.Code == http.StatusServiceUnavailable ||
		e.Code == http.StatusGatewayTimeout ||
		e.Code == http.StatusTooManyRequests
}

// Client talks to one mrts-serve daemon.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://localhost:8341".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Retry bounds the transient-failure retry loop of every JSON call
	// (not the streaming Sweep, which cannot resume mid-stream). The
	// zero value performs no retries.
	Retry RetryPolicy

	// jitter is the client's private backoff jitter stream. A pointer so
	// the shallow copies the cluster client makes share one stream.
	jitter *jitter
}

// New creates a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), jitter: newJitter()}
}

func (c *Client) jitterSrc() *jitter {
	if c.jitter != nil {
		return c.jitter
	}
	return fallbackJitter
}

// SeedRetryJitter pins the client's backoff jitter to a fixed seed, making
// retry delays reproducible. Intended for tests and simulations; production
// clients keep the default entropy-seeded stream. Not safe to call
// concurrently with in-flight requests.
func (c *Client) SeedRetryJitter(seed int64) {
	if c.jitter == nil {
		c.jitter = newJitter()
	}
	c.jitter.reseed(seed)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// retryable reports whether the error is transient: a transport-level
// failure (connection refused/reset, daemon restarting) or a
// gateway-class response. Definitive daemon answers are not retried.
func retryable(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Temporary()
	}
	// Everything else from Do is transport-level: the request may not
	// have produced a definitive answer.
	return true
}

// do performs one JSON round trip, retrying transient failures under the
// client's RetryPolicy. The attempt loop is bounded by MaxAttempts and by
// the context: both the sleep and the request honour ctx cancellation.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.doHdr(ctx, method, path, nil, in, out)
}

// doHdr is do with extra request headers, applied to every attempt. Retried
// POSTs must carry the same Idempotency-Key on each attempt, which is why
// the headers are fixed here rather than per attempt.
func (c *Client) doHdr(ctx context.Context, method, path string, hdr http.Header, in, out any) error {
	var payload []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		payload = b
	}
	attempts := c.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		lastErr = c.doOnce(ctx, method, path, hdr, payload, out)
		if lastErr == nil {
			return nil
		}
		if attempt >= attempts || !retryable(lastErr) || ctx.Err() != nil {
			return lastErr
		}
		select {
		case <-ctx.Done():
			return lastErr
		case <-time.After(c.Retry.nextDelay(attempt, lastErr, c.jitterSrc())):
		}
	}
}

// parseRetryAfter parses a Retry-After header in either RFC 7231 form:
// delta-seconds (integer or fractional, the daemon's own format) or an
// HTTP-date (what proxies and load balancers in front of a cluster
// emit), which is converted to the remaining wait from now. A date in
// the past means "retry immediately" (0), not "no hint". Absent or
// unparsable values yield -1, "no hint".
func parseRetryAfter(v string) time.Duration {
	return parseRetryAfterAt(v, time.Now())
}

// parseRetryAfterAt is parseRetryAfter against an explicit clock, so
// the HTTP-date arithmetic is testable without real sleeps.
func parseRetryAfterAt(v string, now time.Time) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return -1
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil {
		if secs < 0 {
			return -1
		}
		return time.Duration(secs * float64(time.Second))
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
		return 0
	}
	return -1
}

func (c *Client) doOnce(ctx context.Context, method, path string, hdr http.Header, payload []byte, out any) error {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		se := &StatusError{
			Method:     method,
			Path:       path,
			Code:       resp.StatusCode,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
			Message:    errorMessage(resp.Body),
		}
		return se
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// errorMessage extracts the human-readable message of a non-2xx body:
// the api.ErrorResponse JSON the daemon sends, or — when a proxy or a
// non-JSON handler produced the response — the trimmed raw body, so the
// server's explanation always surfaces instead of a bare HTTP status.
func errorMessage(body io.Reader) string {
	raw, err := io.ReadAll(io.LimitReader(body, 8*1024))
	if err != nil {
		return ""
	}
	var e api.ErrorResponse
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}

// Submit enqueues a job and returns its ID. Submission is made safe to
// retry by a per-call idempotency key: POST /v1/jobs is not naturally
// idempotent, and the retry loop re-sends it whenever the transport failed
// — including after the daemon accepted the job but the response was lost.
// The key, constant across attempts, lets the daemon map the replay onto
// the already-created job instead of duplicating it.
func (c *Client) Submit(ctx context.Context, spec api.JobSpec) (string, error) {
	hdr := http.Header{"Idempotency-Key": []string{newIdemKey()}}
	var resp api.SubmitResponse
	if err := c.doHdr(ctx, http.MethodPost, "/v1/jobs", hdr, spec, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// newIdemKey draws a fresh 128-bit idempotency key.
func newIdemKey() string {
	var b [16]byte
	if _, err := crand.Read(b[:]); err != nil {
		panic("client: idempotency key entropy: " + err.Error())
	}
	return "idem-" + hex.EncodeToString(b[:])
}

// Job polls one job.
func (c *Client) Job(ctx context.Context, id string) (*api.JobStatus, error) {
	var st api.JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists every retained job.
func (c *Client) Jobs(ctx context.Context) ([]api.JobStatus, error) {
	var out []api.JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Cancel cancels a job and returns its (possibly already terminal) status.
func (c *Client) Cancel(ctx context.Context, id string) (*api.JobStatus, error) {
	var st api.JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls the job every interval until it is terminal or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (*api.JobStatus, error) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, context.Cause(ctx)
		case <-t.C:
		}
	}
}

// Run submits a job and waits for its terminal state.
func (c *Client) Run(ctx context.Context, spec api.JobSpec, poll time.Duration) (*api.JobStatus, error) {
	id, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	return c.Wait(ctx, id, poll)
}

// Sweep streams a point batch. onEvent (may be nil) is called for every
// progress event in arrival order; the final summary event is returned.
func (c *Client) Sweep(ctx context.Context, req api.SweepRequest, onEvent func(api.SweepEvent)) (*api.SweepEvent, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/sweep", bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if msg := errorMessage(resp.Body); msg != "" {
			return nil, fmt.Errorf("sweep: %s (HTTP %d)", msg, resp.StatusCode)
		}
		return nil, fmt.Errorf("sweep: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev api.SweepEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("sweep: bad event: %w", err)
		}
		if ev.Done {
			return &ev, nil
		}
		if onEvent != nil {
			onEvent(ev)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("sweep: stream ended without summary event")
}

// Healthz checks liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the plain-text metrics page.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if msg := errorMessage(resp.Body); msg != "" {
			return "", fmt.Errorf("metrics: %s (HTTP %d)", msg, resp.StatusCode)
		}
		return "", fmt.Errorf("metrics: HTTP %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
