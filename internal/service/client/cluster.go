package client

import (
	"context"
	"net/http"
	"sync"
	"time"

	"mrts/internal/service/api"
)

// Cluster is a failover client for a sharded mrts-serve cluster: it
// holds one Client per member and routes every call to a preferred
// member, rotating to the next on transport failures and gateway-class
// responses. Submission redirects (a non-owner answers 307 with the
// owner's URL) are followed transparently by net/http — request bodies
// built from bytes are replayable — so the cluster client only has to
// survive members that are down, not members that merely don't own the
// key.
//
// The preferred member is sticky: after a successful call the member
// that answered stays preferred, so a healthy cluster sees each client
// pinned to one entry point instead of spraying connections.
type Cluster struct {
	// Retry bounds the per-call failover loop. MaxAttempts counts total
	// tries across members; it is raised to the member count so every
	// member gets at least one try. BaseDelay/MaxDelay shape the sleep
	// inserted after a full rotation of failures (every member down or
	// overloaded), honouring server Retry-After hints like Client does.
	Retry RetryPolicy
	// HTTPClient is shared by every member client (default
	// http.DefaultClient).
	HTTPClient *http.Client
	// Hedge, when positive, makes Submit race members instead of trying
	// them strictly in sequence: if the preferred member has not answered
	// within Hedge, the submission is also sent to the next member, and
	// so on until one answers. All racing attempts share one
	// Idempotency-Key, so however many land — on however many entry
	// points, each redirecting to the same owner — at most one job is
	// created. This keeps tail latency bounded when the preferred member
	// sits on the wrong side of a partition: the client does not have to
	// burn a full timeout before failing over. Zero disables hedging
	// (strictly sequential failover, the default).
	Hedge time.Duration

	clients []*Client

	// jitter is the cluster's private backoff jitter stream (see
	// Client.jitter); rotations across members draw from one source.
	jitter *jitter

	mu  sync.Mutex
	cur int
}

// NewCluster creates a failover client over the member base URLs. A
// single address behaves exactly like New(addr) with retries.
func NewCluster(addrs []string) *Cluster {
	cc := &Cluster{jitter: newJitter()}
	for _, a := range addrs {
		c := New(a)
		cc.clients = append(cc.clients, c)
	}
	return cc
}

func (cc *Cluster) jitterSrc() *jitter {
	if cc.jitter != nil {
		return cc.jitter
	}
	return fallbackJitter
}

// SeedRetryJitter pins the cluster's backoff jitter to a fixed seed,
// making failover delays reproducible (see Client.SeedRetryJitter).
func (cc *Cluster) SeedRetryJitter(seed int64) {
	if cc.jitter == nil {
		cc.jitter = newJitter()
	}
	cc.jitter.reseed(seed)
}

// Addrs returns the configured member base URLs.
func (cc *Cluster) Addrs() []string {
	out := make([]string, len(cc.clients))
	for i, c := range cc.clients {
		out[i] = c.BaseURL
	}
	return out
}

// pick returns the preferred member index.
func (cc *Cluster) pick() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.cur
}

// pin records the member that last answered successfully.
func (cc *Cluster) pin(i int) {
	cc.mu.Lock()
	cc.cur = i
	cc.mu.Unlock()
}

// call runs f against members starting at the preferred one, advancing
// on retryable failures. After each full rotation of failures it sleeps
// (Retry-After hint or exponential backoff) before going around again,
// until the attempt budget or ctx runs out. Definitive answers — 2xx,
// 4xx — end the loop immediately.
func (cc *Cluster) call(ctx context.Context, f func(*Client) error) error {
	n := len(cc.clients)
	if n == 0 {
		return &StatusError{Code: http.StatusBadGateway, Message: "cluster client has no members", RetryAfter: -1}
	}
	attempts := cc.Retry.MaxAttempts
	if attempts < n {
		attempts = n
	}
	start := cc.pick()
	var lastErr error
	for i := 0; i < attempts; i++ {
		idx := (start + i) % n
		// Shallow copy: concurrent calls must not race on the shared
		// member clients when overriding the HTTP transport.
		c := *cc.clients[idx]
		c.HTTPClient = cc.HTTPClient
		lastErr = f(&c)
		if lastErr == nil {
			cc.pin(idx)
			return nil
		}
		if !retryable(lastErr) || ctx.Err() != nil {
			return lastErr
		}
		if (i+1)%n == 0 && i+1 < attempts {
			// Every member failed this round: back off before the next
			// rotation instead of hammering a struggling cluster.
			select {
			case <-ctx.Done():
				return lastErr
			case <-time.After(cc.Retry.nextDelay((i+1)/n, lastErr, cc.jitterSrc())):
			}
		}
	}
	return lastErr
}

// Submit enqueues a job on the owning member (following its redirect)
// and returns the job ID. One idempotency key spans every attempt and
// every member — hedged or sequential — so a retry that lands on a
// different entry point still dedupes onto the already-created job.
func (cc *Cluster) Submit(ctx context.Context, spec api.JobSpec) (string, error) {
	hdr := http.Header{"Idempotency-Key": []string{newIdemKey()}}
	if cc.Hedge > 0 && len(cc.clients) > 1 {
		if id, err := cc.hedgedSubmit(ctx, spec, hdr); err == nil || !retryable(err) || ctx.Err() != nil {
			return id, err
		}
		// Every raced attempt failed retryably (the whole cluster looked
		// down from here). Fall through to the sequential loop, which
		// backs off between rotations — still under the same key.
	}
	var resp api.SubmitResponse
	err := cc.call(ctx, func(c *Client) error {
		return c.doHdr(ctx, http.MethodPost, "/v1/jobs", hdr, spec, &resp)
	})
	if err != nil {
		return "", err
	}
	return resp.ID, nil
}

// hedgedSubmit races the submission across members: the preferred member
// goes first, and every Hedge interval without an answer (or immediately
// when an attempt fails retryably) the next member is tried too. The
// first success wins; its member becomes preferred. Because every
// attempt carries the caller's single Idempotency-Key, concurrent
// landings dedupe server-side onto one job — hedging trades duplicate
// requests for bounded tail latency, never for duplicate work.
func (cc *Cluster) hedgedSubmit(ctx context.Context, spec api.JobSpec, hdr http.Header) (string, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // reels in the losing attempts
	n := len(cc.clients)
	type outcome struct {
		idx int
		id  string
		err error
	}
	results := make(chan outcome, n) // buffered: losers must not leak
	attempt := func(idx int) {
		c := *cc.clients[idx]
		c.HTTPClient = cc.HTTPClient
		var resp api.SubmitResponse
		err := c.doHdr(ctx, http.MethodPost, "/v1/jobs", hdr, spec, &resp)
		results <- outcome{idx: idx, id: resp.ID, err: err}
	}
	start := cc.pick()
	launched := 1
	go attempt(start % n)
	t := time.NewTimer(cc.Hedge)
	defer t.Stop()
	var lastErr error
	for done := 0; done < launched; {
		select {
		case <-ctx.Done():
			return "", context.Cause(ctx)
		case <-t.C:
			if launched < n {
				go attempt((start + launched) % n)
				launched++
				t.Reset(cc.Hedge)
			}
		case out := <-results:
			done++
			if out.err == nil {
				cc.pin(out.idx % n)
				return out.id, nil
			}
			lastErr = out.err
			if !retryable(out.err) {
				return "", out.err
			}
			if launched < n {
				// A failed attempt frees its slot: hedge immediately
				// rather than waiting out the interval.
				go attempt((start + launched) % n)
				launched++
			}
		}
	}
	return "", lastErr
}

// Job polls one job; any member can answer (lookups fan out
// server-side), so a job owned by a dead member is still reachable.
func (cc *Cluster) Job(ctx context.Context, id string) (*api.JobStatus, error) {
	var st api.JobStatus
	err := cc.call(ctx, func(c *Client) error {
		return c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists the merged job table of the cluster.
func (cc *Cluster) Jobs(ctx context.Context) ([]api.JobStatus, error) {
	var out []api.JobStatus
	err := cc.call(ctx, func(c *Client) error {
		return c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Cancel cancels a job wherever it lives.
func (cc *Cluster) Cancel(ctx context.Context, id string) (*api.JobStatus, error) {
	var st api.JobStatus
	err := cc.call(ctx, func(c *Client) error {
		return c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, &st)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls the job every interval until it is terminal or ctx
// expires, failing over between members as needed — the poll loop rides
// straight through a member death once a survivor adopts the job.
func (cc *Cluster) Wait(ctx context.Context, id string, interval time.Duration) (*api.JobStatus, error) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	var last *api.JobStatus
	for {
		st, err := cc.Job(ctx, id)
		if err == nil {
			last = st
			if st.State.Terminal() {
				return st, nil
			}
		} else if !retryable(err) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return last, context.Cause(ctx)
		case <-t.C:
		}
	}
}

// Run submits a job and waits for its terminal state.
func (cc *Cluster) Run(ctx context.Context, spec api.JobSpec, poll time.Duration) (*api.JobStatus, error) {
	id, err := cc.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	return cc.Wait(ctx, id, poll)
}

// Sweep streams a point batch from the first member that accepts it. A
// stream that breaks mid-way is not resumed (events are not replayable
// across members); the caller re-runs the sweep — every completed point
// is already in the serving member's result cache.
func (cc *Cluster) Sweep(ctx context.Context, req api.SweepRequest, onEvent func(api.SweepEvent)) (*api.SweepEvent, error) {
	var final *api.SweepEvent
	err := cc.call(ctx, func(c *Client) error {
		ev, serr := c.Sweep(ctx, req, onEvent)
		if serr != nil {
			return serr
		}
		final = ev
		return nil
	})
	return final, err
}

// Healthz succeeds when any member is alive.
func (cc *Cluster) Healthz(ctx context.Context) error {
	return cc.call(ctx, func(c *Client) error { return c.Healthz(ctx) })
}

// Metrics fetches the /metrics page of the first answering member.
func (cc *Cluster) Metrics(ctx context.Context) (string, error) {
	var text string
	err := cc.call(ctx, func(c *Client) error {
		t, merr := c.Metrics(ctx)
		if merr != nil {
			return merr
		}
		text = t
		return nil
	})
	return text, err
}
