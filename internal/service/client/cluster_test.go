package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mrts/internal/service/api"
)

// TestClusterFailsOverToLiveMember: a dead first member is skipped and
// the live member answers; the live member then stays preferred.
func TestClusterFailsOverToLiveMember(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	var liveCalls atomic.Int64
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		liveCalls.Add(1)
		w.Write([]byte(`[]`))
	}))
	defer live.Close()

	cc := NewCluster([]string{deadURL, live.URL})
	cc.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	if _, err := cc.Jobs(context.Background()); err != nil {
		t.Fatalf("Jobs with one dead member = %v, want failover success", err)
	}
	if liveCalls.Load() != 1 {
		t.Fatalf("live member saw %d calls, want 1", liveCalls.Load())
	}
	// The answering member is pinned: the second call goes straight to it.
	if _, err := cc.Jobs(context.Background()); err != nil {
		t.Fatalf("second Jobs = %v", err)
	}
	if liveCalls.Load() != 2 {
		t.Errorf("live member saw %d calls after pinning, want 2", liveCalls.Load())
	}
}

// TestClusterAllMembersDown: every member down yields the last error,
// bounded by the attempt budget.
func TestClusterAllMembersDown(t *testing.T) {
	mk := func() string {
		ts := httptest.NewServer(http.NotFoundHandler())
		url := ts.URL
		ts.Close()
		return url
	}
	cc := NewCluster([]string{mk(), mk()})
	cc.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	start := time.Now()
	if err := cc.Healthz(context.Background()); err == nil {
		t.Fatal("dead cluster reported healthy")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("bounded failover took %v", d)
	}
}

// TestClusterFollowsSubmitRedirect: a non-owner member answers 307 with
// the owner's URL; the redirect is followed with the body and the
// idempotency key intact, the owner accepts.
func TestClusterFollowsSubmitRedirect(t *testing.T) {
	var ownerKey atomic.Value
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var spec api.JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil || spec.Type != api.JobSim {
			w.WriteHeader(http.StatusBadRequest)
			w.Write([]byte(`{"error":"body lost in redirect"}`))
			return
		}
		ownerKey.Store(r.Header.Get("Idempotency-Key"))
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(api.SubmitResponse{ID: "j42", State: api.StateQueued})
	}))
	defer owner.Close()

	nonOwner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Location", owner.URL+r.URL.Path)
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer nonOwner.Close()

	cc := NewCluster([]string{nonOwner.URL})
	id, err := cc.Submit(context.Background(), api.JobSpec{Type: api.JobSim, PRC: 1, CG: 1, Policy: "mrts"})
	if err != nil {
		t.Fatalf("Submit through redirect = %v", err)
	}
	if id != "j42" {
		t.Errorf("job ID = %q, want j42", id)
	}
	key, _ := ownerKey.Load().(string)
	if key == "" {
		t.Error("Idempotency-Key dropped across the redirect")
	}
}
