package service

import (
	"context"
	"strings"
	"testing"
	"time"

	"mrts/internal/service/api"
)

// TestBatchMetrics pins the /metrics surface of the batch sweep path: the
// point counter ticks for every evaluator call, the tenant sweep's shared
// selection memo reports its seed hits, and fig/sweep jobs land in the
// batch wall-clock histogram.
func TestBatchMetrics(t *testing.T) {
	s, c := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()

	run := func(spec api.JobSpec) {
		t.Helper()
		id, err := c.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		st, err := c.Wait(ctx, id, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != api.StateDone {
			t.Fatalf("job state = %s (%s), want done", st.State, st.Error)
		}
	}

	// A sim job evaluates the RISC reference plus the point itself.
	run(api.JobSpec{Type: api.JobSim, Workload: testWorkload, PRC: 1, CG: 1, Policy: "mrts"})
	if got := s.batchPoints.Value(); got < 2 {
		t.Errorf("mrts_batch_points_total = %d after sim job, want >= 2", got)
	}
	if got := s.batchSeconds.Count(); got != 0 {
		t.Errorf("mrts_batch_seconds count = %d after sim job, want 0 (sim is not a sweep)", got)
	}

	// The K=1 tenant sweep runs the same tenant workload twice — once under
	// the static partition, once migrating — so the second run's selections
	// are guaranteed seed hits on the job's shared memo.
	run(api.JobSpec{Type: api.JobFig, Fig: "tenants", Workload: testWorkload,
		Tenants: 1, MaxPRC: 2, MaxCG: 1})
	if got := s.batchSeedHits.Value(); got == 0 {
		t.Error("mrts_batch_seed_hits_total = 0 after K=1 tenant sweep, want > 0")
	}
	if got := s.batchSeconds.Count(); got != 1 {
		t.Errorf("mrts_batch_seconds count = %d after fig job, want 1", got)
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mrts_batch_points_total", "mrts_batch_seed_hits_total", "mrts_batch_seconds_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics page missing %s", want)
		}
	}
}
