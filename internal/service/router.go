package service

import (
	"container/list"
	"context"
	"sync/atomic"
	"time"

	"mrts/internal/service/api"
	"mrts/internal/service/journal"
)

// Router owns the admission half of the daemon — everything that decides
// *whether* a job enters the system, as opposed to running it: draining
// state, the per-client rate limiter, the idempotency dedupe table and
// the queue-slot reservation that decides admission before any durable
// state exists. The Server keeps the execution half (worker pool, job
// table, journal, caches, result serving).
//
// The split is what the cluster layer builds on: internal/cluster places
// jobs on nodes by consistent hashing and calls the owning node's
// router-backed submission path (SubmitWithID, so a pre-replicated job ID
// survives the hop), steals queued-but-unstarted jobs from hot nodes
// (TakeQueued / Requeue / Forget) and adopts a dead peer's replicated
// journal (Adopt) — all without touching the execution machinery.
type Router struct {
	s       *Server
	limiter *rateLimiter

	draining atomic.Bool
	// queued counts reserved queue slots: incremented under s.mu by
	// submit before the job is published anywhere, decremented by a
	// worker when it receives the job (or by Forget after a successful
	// steal handoff). Because only reservation holders send on s.queue
	// and queued never exceeds cap(s.queue), the send is guaranteed not
	// to block — admission is decided entirely under the lock, before the
	// job table, idem table or journal have seen the job.
	queued atomic.Int64

	// idem dedupes client idempotency keys; guarded by s.mu.
	idem *idemTable
}

func newRouter(s *Server, opts Options) *Router {
	r := &Router{
		s:    s,
		idem: newIdemTable(opts.IdemTableSize, s.metrics),
	}
	if opts.RatePerSec > 0 {
		r.limiter = newRateLimiter(opts.RatePerSec, opts.RateBurst)
	}
	return r
}

// Draining reports whether the router has stopped admitting jobs.
func (r *Router) Draining() bool { return r.draining.Load() }

// SetDraining flips admission off (or back on, for tests).
func (r *Router) SetDraining(v bool) { r.draining.Store(v) }

// Admit applies the per-client rate limit. When the client is rejected,
// retryAfter is how long it should wait before the next attempt can
// succeed. A router without a limiter admits everyone.
func (r *Router) Admit(clientKey string, now time.Time) (ok bool, retryAfter time.Duration) {
	if r.limiter == nil {
		return true, 0
	}
	return r.limiter.allow(clientKey, now)
}

// release frees one reserved queue slot (a worker took the job, or a
// steal handoff completed).
func (r *Router) release() {
	r.queued.Add(-1)
}

// SubmitIdem admits one job: validation, dedupe, slot reservation,
// durable journaling, enqueue. An empty id draws a fresh job ID; the
// cluster layer passes a pre-generated one so the ID it replicated to the
// follower is the ID that runs. An id this server already knows returns
// the existing job (deduped=true); with an EMPTY id, so does a non-empty
// key that was already accepted.
//
// A caller-chosen id deliberately bypasses the key dedupe: identity is
// by ID. A stolen or adopted job may share its idempotency key with a
// local duplicate admitted during an ownership flip, but its ID is the
// one the submitting client holds — diverting the admission onto the
// duplicate would let the steal ack (or the adoption) erase the only
// copy of that ID cluster-wide. A duplicate run is byte-identical; a
// lost ID is a 404 forever.
func (r *Router) SubmitIdem(id, key string, spec api.JobSpec) (job *Job, deduped bool, err error) {
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	if r.draining.Load() {
		return nil, false, ErrDraining
	}
	s := r.s
	callerID := id != ""
	if !callerID {
		id = newJobID()
	}
	ctx, cancel := context.WithCancelCause(s.baseCtx)
	job = &Job{
		ID:      id,
		Spec:    spec,
		State:   api.StateQueued,
		Created: time.Now(),
		IdemKey: key,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		durable: make(chan struct{}),
	}
	s.mu.Lock()
	if prev, ok := s.jobs[id]; ok {
		// The caller-supplied ID already exists here — a replayed
		// adoption or steal handoff. Treat it exactly like an idempotent
		// retry of that job.
		s.mu.Unlock()
		cancel(nil)
		s.jobsDeduped.Inc()
		<-prev.durable
		return prev, true, nil
	}
	if !callerID && key != "" {
		// Only a server-drawn ID consults the key table (see above).
		if jid, ok := r.idem.get(key); ok {
			if prev, ok := s.jobs[jid]; ok {
				s.mu.Unlock()
				cancel(nil)
				s.jobsDeduped.Inc()
				// The original submission may still be fsyncing its
				// submit record; a deduped 202 makes the same durability
				// promise, so wait until the job it points at is safe.
				<-prev.durable
				return prev, true, nil
			}
			// The deduped job was retired; fall through and accept the
			// retry as a fresh submission.
		}
	}
	// Reserve a queue slot before publishing the job anywhere. A job
	// that cannot run is rejected here, while neither the job table, the
	// idem table nor the journal has seen it — so there is no multi-step
	// rollback to race, and a deduped retry can never be handed a job
	// that queue-full later revokes.
	if r.queued.Load() >= int64(cap(s.queue)) {
		s.mu.Unlock()
		cancel(ErrQueueFull)
		return nil, false, ErrQueueFull
	}
	r.queued.Add(1)
	if key != "" {
		r.idem.put(key, job.ID)
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.retireOldLocked()
	s.mu.Unlock()

	// Journal the submission before enqueueing it, durably: once the
	// client sees 202 the job must survive a crash, and the submit record
	// must precede the start record a worker may write at any moment
	// after the enqueue below.
	s.appendJournal(journal.Record{
		Kind:    journal.KindSubmit,
		ID:      job.ID,
		IdemKey: key,
		Spec:    &spec,
	}, true)
	close(job.durable)

	s.queue <- job // cannot block: the reserved slot guarantees room
	s.jobsSubmitted.Inc()
	s.queueDepth.Set(int64(len(s.queue)))
	return job, false, nil
}

// idemTable is the bounded idempotency dedupe table: client keys map to
// job IDs so a retried POST lands on the already-created job. It is an
// LRU — beyond cap the least-recently-used key is evicted, which degrades
// gracefully: an evicted key's retry is accepted as a fresh submission
// (at-least-once, deterministic jobs ⇒ identical result) instead of the
// table growing without bound across a long-lived server. Guarded by the
// owning Server's mu.
type idemTable struct {
	cap     int
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	entries *Gauge
}

type idemEntry struct {
	key   string
	jobID string
}

// DefaultIdemTableSize bounds the idempotency table when Options leave
// IdemTableSize zero.
const DefaultIdemTableSize = 4096

func newIdemTable(capacity int, m *Metrics) *idemTable {
	if capacity <= 0 {
		capacity = DefaultIdemTableSize
	}
	return &idemTable{
		cap:     capacity,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		entries: m.Gauge("mrts_idem_entries"),
	}
}

// get returns the job ID mapped to key, marking it most recently used.
func (t *idemTable) get(key string) (string, bool) {
	el, ok := t.items[key]
	if !ok {
		return "", false
	}
	t.ll.MoveToFront(el)
	return el.Value.(*idemEntry).jobID, true
}

// put maps key to jobID, evicting the least-recently-used mapping when
// the table is full.
func (t *idemTable) put(key, jobID string) {
	if el, ok := t.items[key]; ok {
		el.Value.(*idemEntry).jobID = jobID
		t.ll.MoveToFront(el)
		return
	}
	t.items[key] = t.ll.PushFront(&idemEntry{key: key, jobID: jobID})
	if t.ll.Len() > t.cap {
		oldest := t.ll.Back()
		t.ll.Remove(oldest)
		delete(t.items, oldest.Value.(*idemEntry).key)
	}
	t.entries.Set(int64(t.ll.Len()))
}

// remove drops key's mapping if it still points at jobID (a newer job may
// have taken the key over).
func (t *idemTable) remove(key, jobID string) {
	el, ok := t.items[key]
	if !ok || el.Value.(*idemEntry).jobID != jobID {
		return
	}
	t.ll.Remove(el)
	delete(t.items, key)
	t.entries.Set(int64(t.ll.Len()))
}

// len returns the number of live mappings.
func (t *idemTable) len() int { return t.ll.Len() }

// snapshot copies the key → job-ID mappings (tests and debugging).
func (t *idemTable) snapshot() map[string]string {
	out := make(map[string]string, len(t.items))
	for k, el := range t.items {
		out[k] = el.Value.(*idemEntry).jobID
	}
	return out
}
