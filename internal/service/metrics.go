package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics is an in-process metric registry rendered as plain text on
// /metrics (Prometheus exposition style, no external dependencies).
// Counters, gauges and histograms are created on first use and are safe
// for concurrent access.
type Metrics struct {
	mu    sync.Mutex
	names []string // registration order for stable rendering
	items map[string]any
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{items: make(map[string]any)}
}

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into cumulative buckets (upper
// bounds in seconds, +Inf implied), plus a running sum and count.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1, last is +Inf
	sum    float64
	n      int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// DefBuckets spans 100 µs .. ~100 s, matching the range from a cached
// point lookup to a long cold sweep.
var DefBuckets = []float64{0.0001, 0.001, 0.01, 0.1, 0.5, 1, 5, 10, 30, 60, 120}

func register[T any](m *Metrics, name string, mk func() T) T {
	m.mu.Lock()
	defer m.mu.Unlock()
	if it, ok := m.items[name]; ok {
		v, ok := it.(T)
		if !ok {
			panic(fmt.Sprintf("service: metric %q re-registered with a different type", name))
		}
		return v
	}
	v := mk()
	m.items[name] = v
	m.names = append(m.names, name)
	return v
}

// Counter returns (registering if needed) the named counter.
func (m *Metrics) Counter(name string) *Counter {
	return register(m, name, func() *Counter { return &Counter{} })
}

// Gauge returns (registering if needed) the named gauge.
func (m *Metrics) Gauge(name string) *Gauge {
	return register(m, name, func() *Gauge { return &Gauge{} })
}

// Histogram returns (registering if needed) the named histogram with
// DefBuckets bounds.
func (m *Metrics) Histogram(name string) *Histogram {
	return register(m, name, func() *Histogram {
		return &Histogram{bounds: DefBuckets, counts: make([]int64, len(DefBuckets)+1)}
	})
}

// WriteText renders every metric in registration order.
func (m *Metrics) WriteText(w io.Writer) {
	m.mu.Lock()
	names := append([]string(nil), m.names...)
	items := make(map[string]any, len(names))
	for _, n := range names {
		items[n] = m.items[n]
	}
	m.mu.Unlock()

	for _, name := range names {
		switch it := items[name].(type) {
		case *Counter:
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, it.Value())
		case *Gauge:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, it.Value())
		case *Histogram:
			it.mu.Lock()
			fmt.Fprintf(w, "# TYPE %s histogram\n", name)
			var cum int64
			for i, b := range it.bounds {
				cum += it.counts[i]
				fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum)
			}
			cum += it.counts[len(it.bounds)]
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			fmt.Fprintf(w, "%s_sum %g\n", name, it.sum)
			fmt.Fprintf(w, "%s_count %d\n", name, it.n)
			it.mu.Unlock()
		}
	}
}
