package service

import (
	"context"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mrts/internal/service/journal"
)

// TestJournalReplayStatsOnMetrics pins the /metrics surface of crash
// recovery: after a restart over a journal holding intact records, a
// corrupt line, and an unfinished job, the endpoint reports how many
// records replayed, how many lines were skipped, and how many jobs were
// re-enqueued — not just the startup log.
func TestJournalReplayStatsOnMetrics(t *testing.T) {
	dir := t.TempDir()
	spec := simSpec()

	j1, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Two intact records of an unfinished job (submit + start, no
	// complete): the crash case that re-enqueues on replay.
	if err := j1.Append(journal.Record{Kind: journal.KindSubmit, ID: "jreplay1", Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	if err := j1.Append(journal.Record{Kind: journal.KindStart, ID: "jreplay1"}); err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	// A torn tail: half a record, no valid CRC envelope.
	f, err := os.OpenFile(filepath.Join(dir, journal.FileName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"crc":123,"rec":{"kind":"sub`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Workers: 1, Journal: j2})
	defer s.Close()

	job, ok := s.Job("jreplay1")
	if !ok {
		t.Fatal("unfinished job not recovered")
	}
	if err := s.Wait(context.Background(), job); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"mrts_journal_replayed_total 2\n",
		"mrts_journal_replay_skipped_total 1\n",
		"mrts_jobs_recovered_total 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}
