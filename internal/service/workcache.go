package service

import (
	"container/list"
	"context"
	"sync"
	"time"

	"mrts/internal/workload"
)

// WorkloadCache deduplicates workload builds: concurrent jobs over the
// same (video, encoder) parameters run the H.264 encode once and share
// the resulting trace (singleflight), and completed builds stay cached in
// a small LRU because traces are the most expensive artifact the service
// produces. A *workload.Result is immutable after Build, so sharing one
// instance across concurrent simulations is safe — the simulator and
// runtime systems only read it.
type WorkloadCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // completed entries, front = most recently used
	items map[string]*workEntry

	hits, misses, waits, evictions *Counter
	buildSeconds                   *Histogram
}

type workEntry struct {
	key  string
	done chan struct{} // closed when the build finishes
	w    *workload.Result
	err  error
	el   *list.Element // non-nil once the entry is in the LRU list
}

// NewWorkloadCache creates a cache keeping at most capacity built
// workloads (capacity <= 0 means 16) and registers its metrics.
func NewWorkloadCache(capacity int, m *Metrics) *WorkloadCache {
	if capacity <= 0 {
		capacity = 16
	}
	return &WorkloadCache{
		cap:          capacity,
		ll:           list.New(),
		items:        make(map[string]*workEntry),
		hits:         m.Counter("mrts_workload_cache_hits_total"),
		misses:       m.Counter("mrts_workload_cache_misses_total"),
		waits:        m.Counter("mrts_workload_cache_shared_builds_total"),
		evictions:    m.Counter("mrts_workload_cache_evictions_total"),
		buildSeconds: m.Histogram("mrts_workload_build_seconds"),
	}
}

// Get returns the workload for opts, building it if no other job already
// has. If a build for the same options is in flight, Get waits for it
// instead of encoding the sequence a second time. The build itself is not
// interrupted by ctx (another waiter may still want it); only the wait is.
func (c *WorkloadCache) Get(ctx context.Context, opts workload.Options) (*workload.Result, error) {
	key := WorkloadKey(opts)

	c.mu.Lock()
	if e, ok := c.items[key]; ok {
		select {
		case <-e.done: // completed: a plain cache hit
			if e.err == nil {
				c.hits.Inc()
				c.ll.MoveToFront(e.el)
			}
		default: // in flight: join the build
			c.waits.Inc()
		}
		c.mu.Unlock()
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
		return e.w, e.err
	}
	e := &workEntry{key: key, done: make(chan struct{})}
	c.items[key] = e
	c.misses.Inc()
	c.mu.Unlock()

	start := time.Now()
	e.w, e.err = workload.Build(opts)
	c.buildSeconds.Observe(time.Since(start).Seconds())
	close(e.done)

	c.mu.Lock()
	if e.err != nil {
		// Do not cache failures: a later retry should rebuild.
		delete(c.items, key)
	} else {
		e.el = c.ll.PushFront(e)
		if c.ll.Len() > c.cap {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*workEntry).key)
			c.evictions.Inc()
		}
	}
	c.mu.Unlock()
	return e.w, e.err
}

// Len returns the number of completed cached workloads.
func (c *WorkloadCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
