package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"time"

	"mrts/internal/arch"
	"mrts/internal/exp"
	"mrts/internal/fault"
	"mrts/internal/service/api"
)

// Handler returns the HTTP API:
//
//	POST   /v1/jobs             submit a job            -> 202 SubmitResponse
//	GET    /v1/jobs             list jobs               -> 200 []JobStatus
//	GET    /v1/jobs/{id}        poll a job              -> 200 JobStatus
//	POST   /v1/jobs/{id}/cancel cancel a job            -> 200 JobStatus
//	DELETE /v1/jobs/{id}        cancel a job            -> 200 JobStatus
//	POST   /v1/sweep            evaluate a point batch, streaming one
//	                            ndjson SweepEvent per completed point
//	GET    /healthz             liveness                -> 200 "ok"
//	GET    /readyz              readiness: 200 while admitting,
//	                            503 "draining" during drain/shutdown,
//	                            503 "journal error: ..." once the journal
//	                            can no longer persist submissions
//	GET    /metrics             plain-text metrics
//
// Overload responses carry a Retry-After hint (seconds): 503 when the
// queue is full or the server is draining, 429 when the per-client rate
// limit (Options.RatePerSec) rejects a submission. The service client
// honours the hint in its backoff loop.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.Ready() {
			w.Header().Set("Retry-After", "5")
			w.WriteHeader(http.StatusServiceUnavailable)
			// A node whose journal can no longer persist submissions must
			// leave the load balancer's rotation even though it is up: an
			// accepted job could be lost by the next crash.
			if jerr := s.JournalErr(); jerr != nil {
				fmt.Fprintf(w, "journal error: %v\n", jerr)
				return
			}
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.metrics.WriteText(w)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, api.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// admitClient applies the per-client rate limit (when configured) and
// writes the 429 + Retry-After response itself on rejection. Clients are
// keyed by the X-Client-ID header when present, else by remote IP.
func (s *Server) admitClient(w http.ResponseWriter, r *http.Request) bool {
	key := r.Header.Get("X-Client-ID")
	if key == "" {
		key = r.RemoteAddr
		if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
			key = host
		}
	}
	ok, wait := s.router.Admit(key, time.Now())
	if ok {
		return true
	}
	s.rateLimited.Inc()
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests, "rate limited, retry in %ds", secs)
	return false
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.admitClient(w, r) {
		return
	}
	var spec api.JobSpec
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	job, deduped, err := s.SubmitIdem(r.Header.Get("Idempotency-Key"), spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// A deduped retry gets the original job back — possibly already past
	// queued — so the client's poll loop lands on the same result either
	// way.
	st := s.Status(job, false)
	if deduped {
		w.Header().Set("Idempotent-Replayed", "true")
	}
	writeJSON(w, http.StatusAccepted, api.SubmitResponse{ID: job.ID, State: st.State})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.Status(job, true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.Status(job, true))
}

// handleSweep evaluates a batch of points synchronously in the request,
// streaming one newline-delimited JSON SweepEvent as each point
// completes, then a final summary event. Closing the request aborts the
// remaining points.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !s.admitClient(w, r) {
		return
	}
	if s.router.Draining() {
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "%v", ErrDraining)
		return
	}
	var req api.SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid sweep request: %v", err)
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, "sweep needs at least one point")
		return
	}
	for _, p := range req.Points {
		if err := p.Config().Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if _, err := exp.ParsePolicy(p.Policy); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if err := req.Faults.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx := r.Context()
	feval, _ := s.FaultEvaluator(req.Workload.Options())
	ref, err := feval(ctx, arch.Config{}, exp.PolicyRISC, 0, fault.Options{})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	seed, fo := faultScenario(req.Faults, ref)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	start := time.Now()

	events := make(chan api.SweepEvent)
	go func() {
		defer close(events)
		_, _ = exp.ParMap(ctx, len(req.Points), func(ctx context.Context, i int) (struct{}, error) {
			pt := req.Points[i]
			ev := api.SweepEvent{Index: i, Point: pt}
			pol, _ := exp.ParsePolicy(pt.Policy) // validated above
			ev.Cached = s.results.Peek(PointKeyFaults(req.Workload.Options(), pt.Config(), pol, seed, fo))
			rep, err := feval(ctx, pt.Config(), pol, seed, fo)
			if err != nil {
				ev.Error = err.Error()
			} else {
				r := api.NewReport(rep, ref)
				ev.Report = &r
			}
			select {
			case events <- ev:
			case <-ctx.Done():
			}
			return struct{}{}, err
		})
	}()

	var completed, failed int
	for ev := range events {
		if ev.Error != "" {
			failed++
		} else {
			completed++
		}
		_ = enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = enc.Encode(api.SweepEvent{
		Index:      len(req.Points),
		Done:       true,
		Completed:  completed,
		Failed:     failed,
		ElapsedSec: time.Since(start).Seconds(),
	})
	if flusher != nil {
		flusher.Flush()
	}
}
