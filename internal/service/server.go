// Package service is the mrts-serve daemon core: a concurrent simulation
// service that accepts simulation, figure and sweep jobs over HTTP/JSON,
// executes them on a bounded worker pool with per-job cancellation and
// timeouts, and amortises repeated work across requests with a
// content-addressed result cache and a singleflight workload cache. It is
// the long-lived counterpart of the one-shot CLIs: the same experiment
// pipeline (internal/exp) runs underneath, but sweeps over many (fabric x
// policy x workload) points share traces and previously simulated points
// instead of rebuilding them per process.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mrts/internal/service/api"
)

// errJobCancelled is the cancel cause distinguishing an API cancellation
// from a timeout or a server shutdown.
var errJobCancelled = errors.New("job cancelled")

// Options configure a server.
type Options struct {
	// Workers is the size of the worker pool (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs;
	// submissions beyond it are rejected with 503 (default 256).
	QueueDepth int
	// ResultCacheSize bounds the point-result LRU (default 4096).
	ResultCacheSize int
	// WorkloadCacheSize bounds the built-workload LRU (default 16).
	WorkloadCacheSize int
	// JobTimeout is the default per-job execution deadline; a job spec
	// may override it with TimeoutSec (default 10 minutes).
	JobTimeout time.Duration
	// KeepJobs bounds how many terminal jobs are retained for polling
	// before the oldest are forgotten (default 1024).
	KeepJobs int
}

func (o *Options) defaults() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 10 * time.Minute
	}
	if o.KeepJobs <= 0 {
		o.KeepJobs = 1024
	}
}

// Job is the server-side state of one submitted job. Fields are guarded
// by the owning Server's mu.
type Job struct {
	ID       string
	Spec     api.JobSpec
	State    api.JobState
	Err      string
	Result   *api.JobResult
	Created  time.Time
	Started  time.Time
	Finished time.Time
	// IdemKey is the client-supplied idempotency key, if any; it maps back
	// to this job in the server's dedupe table until the job is retired.
	IdemKey string

	ctx    context.Context
	cancel context.CancelCauseFunc
	done   chan struct{} // closed when the job reaches a terminal state
}

// Server owns the worker pool, the job table and the caches.
type Server struct {
	opts      Options
	metrics   *Metrics
	results   *ResultCache
	workloads *WorkloadCache

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order, for listing and retention
	queue chan *Job
	// idem maps client idempotency keys to job IDs, so a retried
	// submission (the client's POST is replayed after a dropped response)
	// lands on the already-created job instead of duplicating it. Entries
	// live as long as their job is retained.
	idem map[string]string

	jobsSubmitted, jobsDone, jobsFailed, jobsCancelled *Counter
	jobsDeduped                                        *Counter
	queueDepth, running                                *Gauge
	jobSeconds, queueWaitSeconds, e2eSeconds           *Histogram
	pointSeconds                                       *Histogram
}

// New creates a server and starts its worker pool.
func New(opts Options) *Server {
	opts.defaults()
	m := NewMetrics()
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		opts:      opts,
		metrics:   m,
		results:   NewResultCache(opts.ResultCacheSize, m),
		workloads: NewWorkloadCache(opts.WorkloadCacheSize, m),
		baseCtx:   ctx,
		stop:      stop,
		jobs:      make(map[string]*Job),
		queue:     make(chan *Job, opts.QueueDepth),
		idem:      make(map[string]string),

		jobsSubmitted:    m.Counter("mrts_jobs_submitted_total"),
		jobsDone:         m.Counter("mrts_jobs_done_total"),
		jobsFailed:       m.Counter("mrts_jobs_failed_total"),
		jobsCancelled:    m.Counter("mrts_jobs_cancelled_total"),
		jobsDeduped:      m.Counter("mrts_jobs_deduped_total"),
		queueDepth:       m.Gauge("mrts_queue_depth"),
		running:          m.Gauge("mrts_jobs_running"),
		jobSeconds:       m.Histogram("mrts_job_seconds"),
		queueWaitSeconds: m.Histogram("mrts_job_queue_seconds"),
		e2eSeconds:       m.Histogram("mrts_job_e2e_seconds"),
		pointSeconds:     m.Histogram("mrts_point_eval_seconds"),
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics exposes the registry (for /metrics and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// ResultCache exposes the point cache (for tests and benchmarks).
func (s *Server) ResultCache() *ResultCache { return s.results }

// Close cancels every running job, stops the workers and waits for them.
func (s *Server) Close() {
	s.stop()
	s.wg.Wait()
}

// Submit validates and enqueues a job. It returns the job with state
// queued, or an error (ErrQueueFull when the pool is saturated).
func (s *Server) Submit(spec api.JobSpec) (*Job, error) {
	job, _, err := s.SubmitIdem("", spec)
	return job, err
}

// SubmitIdem is Submit with an optional client idempotency key: a key that
// was already accepted returns the existing job (deduped=true) instead of
// creating a duplicate — the contract that makes retrying a POST whose
// response was lost safe. An empty key never dedupes.
func (s *Server) SubmitIdem(key string, spec api.JobSpec) (job *Job, deduped bool, err error) {
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	ctx, cancel := context.WithCancelCause(s.baseCtx)
	job = &Job{
		ID:      newJobID(),
		Spec:    spec,
		State:   api.StateQueued,
		Created: time.Now(),
		IdemKey: key,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	s.mu.Lock()
	if key != "" {
		if id, ok := s.idem[key]; ok {
			if prev, ok := s.jobs[id]; ok {
				s.mu.Unlock()
				cancel(nil)
				s.jobsDeduped.Inc()
				return prev, true, nil
			}
			// The deduped job was retired; fall through and accept the
			// retry as a fresh submission.
		}
		s.idem[key] = job.ID
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.retireOldLocked()
	s.mu.Unlock()

	select {
	case s.queue <- job:
	default:
		s.mu.Lock()
		delete(s.jobs, job.ID)
		s.order = s.order[:len(s.order)-1]
		if key != "" && s.idem[key] == job.ID {
			delete(s.idem, key)
		}
		s.mu.Unlock()
		cancel(ErrQueueFull)
		return nil, false, ErrQueueFull
	}
	s.jobsSubmitted.Inc()
	s.queueDepth.Set(int64(len(s.queue)))
	return job, false, nil
}

// ErrQueueFull is returned by Submit when the job queue is saturated.
var ErrQueueFull = errors.New("service: job queue full")

// retireOldLocked drops the oldest terminal jobs beyond the retention
// bound so the job table cannot grow without limit.
func (s *Server) retireOldLocked() {
	for len(s.order) > s.opts.KeepJobs {
		dropped := false
		for i, id := range s.order {
			if j, ok := s.jobs[id]; ok && j.State.Terminal() {
				delete(s.jobs, id)
				if j.IdemKey != "" && s.idem[j.IdemKey] == id {
					delete(s.idem, j.IdemKey)
				}
				s.order = append(s.order[:i], s.order[i+1:]...)
				dropped = true
				break
			}
		}
		if !dropped {
			return // everything live; keep them all
		}
	}
}

// Job returns the job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel moves a queued job straight to cancelled, or cancels the context
// of a running one (its worker then marks it cancelled and frees the
// slot). Cancelling a terminal job is a no-op. The second return reports
// whether the job exists.
func (s *Server) Cancel(id string) (*Job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	switch j.State {
	case api.StateQueued:
		s.finishLocked(j, api.StateCancelled, "cancelled while queued", nil)
	case api.StateRunning:
		// The worker observes the cancellation at the next point
		// boundary and finishes the job itself.
	}
	s.mu.Unlock()
	j.cancel(errJobCancelled)
	return j, true
}

// Status snapshots a job as its API representation.
func (s *Server) Status(j *Job, includeResult bool) api.JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := api.JobStatus{
		ID:      j.ID,
		State:   j.State,
		Spec:    j.Spec,
		Error:   j.Err,
		Created: j.Created.UTC().Format(time.RFC3339Nano),
	}
	if !j.Started.IsZero() {
		st.Started = j.Started.UTC().Format(time.RFC3339Nano)
	}
	if !j.Finished.IsZero() {
		st.Finished = j.Finished.UTC().Format(time.RFC3339Nano)
	}
	if includeResult {
		st.Result = j.Result
	}
	return st
}

// Jobs snapshots every retained job in submission order.
func (s *Server) Jobs() []api.JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]api.JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.Job(id); ok {
			out = append(out, s.Status(j, false))
		}
	}
	return out
}

// Wait blocks until the job is terminal or ctx expires.
func (s *Server) Wait(ctx context.Context, j *Job) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// worker is the pool loop: one goroutine per worker slot.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case job := <-s.queue:
			s.queueDepth.Set(int64(len(s.queue)))
			s.runJob(job)
		}
	}
}

// runJob executes one job and records its terminal state.
func (s *Server) runJob(job *Job) {
	s.mu.Lock()
	if job.State != api.StateQueued { // cancelled while queued
		s.mu.Unlock()
		return
	}
	job.State = api.StateRunning
	job.Started = time.Now()
	s.queueWaitSeconds.Observe(job.Started.Sub(job.Created).Seconds())
	s.mu.Unlock()
	s.running.Inc()
	defer s.running.Dec()

	timeout := s.opts.JobTimeout
	if job.Spec.TimeoutSec > 0 {
		timeout = time.Duration(job.Spec.TimeoutSec * float64(time.Second))
	}
	ctx, cancel := context.WithTimeout(job.ctx, timeout)
	defer cancel()

	start := time.Now()
	res, err := s.execute(ctx, job.Spec)
	elapsed := time.Since(start)
	s.jobSeconds.Observe(elapsed.Seconds())
	if res != nil {
		res.ElapsedSec = elapsed.Seconds()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		s.finishLocked(job, api.StateDone, "", res)
	case errors.Is(err, errJobCancelled):
		s.finishLocked(job, api.StateCancelled, "cancelled", nil)
	case errors.Is(err, context.DeadlineExceeded):
		s.finishLocked(job, api.StateFailed, fmt.Sprintf("timeout after %s", timeout), nil)
	default:
		s.finishLocked(job, api.StateFailed, err.Error(), nil)
	}
}

// finishLocked moves a job to a terminal state exactly once.
func (s *Server) finishLocked(j *Job, state api.JobState, msg string, res *api.JobResult) {
	if j.State.Terminal() {
		return
	}
	j.State = state
	j.Err = msg
	j.Result = res
	j.Finished = time.Now()
	s.e2eSeconds.Observe(j.Finished.Sub(j.Created).Seconds())
	close(j.done)
	switch state {
	case api.StateDone:
		s.jobsDone.Inc()
	case api.StateFailed:
		s.jobsFailed.Inc()
	case api.StateCancelled:
		s.jobsCancelled.Inc()
	}
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("service: job id entropy: " + err.Error())
	}
	return "j" + hex.EncodeToString(b[:])
}
